package fraccascade

import (
	"math/rand"
	"testing"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/pram"
	"fraccascade/internal/rangetree"
	"fraccascade/internal/segtree"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// TestIntegrationFullStack exercises every layer together at a larger
// scale than the unit tests: one big catalog tree searched explicitly,
// implicitly, on long paths, over subtrees, on the PRAM simulator, and
// under dynamic churn; plus every geometric application against its
// oracle. Any disagreement anywhere fails the test.
func TestIntegrationFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(99))

	// --- core stack ---
	leaves := 1 << 9
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		t.Fatal(err)
	}
	cats := benchCatalogs(bt, 40000, rng)
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inorder, err := bt.InorderIndex()
	if err != nil {
		t.Fatal(err)
	}
	var leafIDs []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leafIDs = append(leafIDs, v)
		}
	}
	for q := 0; q < 300; q++ {
		leaf := leafIDs[rng.Intn(len(leafIDs))]
		path := bt.RootPath(leaf)
		y := catalog.Key(rng.Intn(320000))
		p := 1 + rng.Intn(1<<18)

		want, err := st.Cascade().SearchPath(y, path)
		if err != nil {
			t.Fatal(err)
		}
		gotE, _, err := st.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatal(err)
		}
		branch := func(r cascade.Result) core.Branch {
			if inorder[r.Node] < inorder[leaf] {
				return core.Right
			}
			return core.Left
		}
		gotI, iLeaf, _, err := st.SearchImplicit(y, branch, p)
		if err != nil {
			t.Fatal(err)
		}
		if iLeaf != leaf {
			t.Fatalf("implicit search reached %d, want %d", iLeaf, leaf)
		}
		gotS, _, err := st.SearchSubtree(y, []tree.NodeID{leaf}, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if gotE[i].Key != want[i].Key || gotI[i].Key != want[i].Key {
				t.Fatalf("explicit/implicit mismatch at %d", path[i])
			}
			if r, ok := gotS[path[i]]; !ok || r.Key != want[i].Key {
				t.Fatalf("subtree mismatch at %d", path[i])
			}
		}
	}

	// PRAM-machine spot checks.
	for q := 0; q < 5; q++ {
		leaf := leafIDs[rng.Intn(len(leafIDs))]
		path := bt.RootPath(leaf)
		y := catalog.Key(rng.Intn(320000))
		m := pram.MustNew(pram.CREW, 1<<21)
		gotP, _, err := st.SearchExplicitPRAM(m, y, path, 256)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := st.Cascade().SearchPath(y, path)
		for i := range want {
			if gotP[i].Key != want[i].Key {
				t.Fatalf("PRAM mismatch at %d", path[i])
			}
		}
	}

	// Dynamic churn over the same tree shape.
	d, err := dynamic.New(bt, cats, core.Config{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 500; op++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		if op%2 == 0 {
			_ = d.Insert(v, catalog.Key(rng.Int63n(1<<40)), int32(op))
		} else {
			leaf := leafIDs[rng.Intn(len(leafIDs))]
			path := bt.RootPath(leaf)
			y := catalog.Key(rng.Intn(320000))
			res, _, err := d.SearchExplicit(y, path, 64)
			if err != nil {
				t.Fatal(err)
			}
			for i, node := range path {
				wk, _ := d.Find(node, y)
				if res[i].Key != wk {
					t.Fatalf("dynamic mismatch at node %d", node)
				}
			}
		}
	}

	// --- geometric applications ---
	s, err := subdivision.Generate(256, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loc.Debug = true
	for q := 0; q < 300; q++ {
		pt, want := s.RandomInteriorPoint(rng)
		got, _, err := loc.LocateCoop(pt, 1+rng.Intn(1<<16))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point location mismatch at %v", pt)
		}
	}

	c, err := spatial.Generate(120, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	sloc, err := spatial.NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 150; q++ {
		x, y, z, want := c.RandomInteriorPoint(rng)
		got, _, err := sloc.LocateCoop(x, y, z, 1+rng.Intn(1<<16))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatal("spatial mismatch")
		}
	}

	pts := make([]rangetree.Point2, 2500)
	for i := range pts {
		pts[i] = rangetree.Point2{X: rng.Int63n(5000), Y: rng.Int63n(5000)}
	}
	rt, err := rangetree.New2D(pts, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]segtree.VSegment, 2000)
	for i := range segs {
		y1 := 2 * rng.Int63n(4000)
		segs[i] = segtree.VSegment{X: 2 * rng.Int63n(4000), Y1: y1, Y2: y1 + 2 + 2*rng.Int63n(2000)}
	}
	it, err := segtree.NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		x1, y1 := rng.Int63n(5000), rng.Int63n(5000)
		query := rangetree.Query2{X1: x1, X2: x1 + rng.Int63n(1500), Y1: y1, Y2: y1 + rng.Int63n(1500)}
		got, _, err := rt.QueryDirect(query, 1+rng.Intn(4096))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rt.NaiveQuery(query)) {
			t.Fatal("range tree mismatch")
		}
		hq := segtree.HQuery{Y: 2*rng.Int63n(4000) + 1, X1: x1, X2: x1 + rng.Int63n(3000)}
		hits, _, err := it.QueryDirect(hq, 1+rng.Intn(4096))
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(it.NaiveQuery(hq)) {
			t.Fatal("segment intersection mismatch")
		}
	}
}
