// Package fraccascade's root benchmark suite: one testing.B benchmark per
// reproduction experiment (E1–E18, see DESIGN.md). Wall-clock numbers are
// host-dependent; the PRAM-relevant quantities (simulated steps, hops,
// processor slots) are emitted as custom benchmark metrics so that
// `go test -bench` regenerates the EXPERIMENTS.md tables' shape.
package fraccascade

import (
	"fmt"
	"math/rand"
	"testing"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/pram"
	"fraccascade/internal/rangetree"
	"fraccascade/internal/segtree"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

func benchCatalogs(t *tree.Tree, total int, rng *rand.Rand) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	per := total / t.N()
	for v := range cats {
		size := rng.Intn(2*per + 2)
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(total * 8))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

func buildBenchStructure(b *testing.B, leaves, total int, cfg core.Config) (*core.Structure, *tree.Tree, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		b.Fatal(err)
	}
	cats := benchCatalogs(bt, total, rng)
	st, err := core.Build(bt, cats, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st, bt, rng
}

// BenchmarkE1ExplicitCoopSearch measures explicit cooperative search
// across the processor range (Theorem 1).
func BenchmarkE1ExplicitCoopSearch(b *testing.B) {
	st, bt, rng := buildBenchStructure(b, 1<<10, 60000, core.Config{})
	path := bt.RootPath(tree.NodeID(bt.N() - 1))
	for _, p := range []int{1, 16, 256, 65536} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps, hops int64
			for i := 0; i < b.N; i++ {
				y := catalog.Key(rng.Intn(480000))
				_, stats, err := st.SearchExplicit(y, path, p)
				if err != nil {
					b.Fatal(err)
				}
				steps += int64(stats.Steps)
				hops += int64(stats.Hops)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
	// Sequential fractional cascading and the naive repeated binary
	// search, for the work comparison.
	b.Run("seqFC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			y := catalog.Key(rng.Intn(480000))
			if _, err := st.Cascade().SearchPath(y, path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2ImplicitCoopSearch measures implicit search (Section 2.3).
func BenchmarkE2ImplicitCoopSearch(b *testing.B) {
	st, bt, rng := buildBenchStructure(b, 1<<9, 30000, core.Config{})
	inorder, err := bt.InorderIndex()
	if err != nil {
		b.Fatal(err)
	}
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	for _, p := range []int{1, 256, 65536} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				target := leaves[rng.Intn(len(leaves))]
				branch := func(r cascade.Result) core.Branch {
					if inorder[r.Node] < inorder[target] {
						return core.Right
					}
					return core.Left
				}
				_, _, stats, err := st.SearchImplicit(catalog.Key(rng.Intn(240000)), branch, p)
				if err != nil {
					b.Fatal(err)
				}
				steps += int64(stats.Steps)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE3Preprocess measures T' construction (Theorem 1 preprocessing).
func BenchmarkE3Preprocess(b *testing.B) {
	for _, leaves := range []int{1 << 8, 1 << 10, 1 << 12} {
		rng := rand.New(rand.NewSource(1))
		bt, err := tree.NewBalancedBinary(leaves)
		if err != nil {
			b.Fatal(err)
		}
		cats := benchCatalogs(bt, leaves*40, rng)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				st, err := core.Build(bt, cats, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(st.Cascade().Stats().Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkE4Space measures structure space per input entry (Lemma 2).
func BenchmarkE4Space(b *testing.B) {
	for _, leaves := range []int{1 << 8, 1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				st, _, _ := buildBenchStructure(b, leaves, leaves*40, core.Config{})
				r := st.SpaceReport()
				ratio = float64(r.AugEntries+r.SkeletonSlots) / float64(r.NativeEntries)
			}
			b.ReportMetric(ratio, "space/entry")
		})
	}
}

// BenchmarkE5LongPaths measures the Theorem 2 long-path search.
func BenchmarkE5LongPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const k = 2000
	pt, err := tree.NewPath(k)
	if err != nil {
		b.Fatal(err)
	}
	cats := benchCatalogs(pt, k*4, rng)
	st, err := core.Build(pt, cats, core.Config{NoTruncation: true})
	if err != nil {
		b.Fatal(err)
	}
	full := pt.RootPath(tree.NodeID(k - 1))
	for _, p := range []int{1, 256, 65536} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				_, stats, err := st.SearchLongPath(catalog.Key(rng.Intn(k*32)), full, p, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				steps += int64(stats.Steps)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE6DegreeD measures Theorem 3's log d factor.
func BenchmarkE6DegreeD(b *testing.B) {
	for _, d := range []int{2, 8} {
		rng := rand.New(rand.NewSource(1))
		tr, err := tree.NewRandom(2000, d, rng)
		if err != nil {
			b.Fatal(err)
		}
		cats := benchCatalogs(tr, 8000, rng)
		ds, err := core.BuildDegreeD(tr, cats, core.Config{NoTruncation: true})
		if err != nil {
			b.Fatal(err)
		}
		deepest := tree.NodeID(0)
		for v := tree.NodeID(0); int(v) < tr.N(); v++ {
			if tr.Depth(v) > tr.Depth(deepest) {
				deepest = v
			}
		}
		path := tr.RootPath(deepest)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				_, stats, err := ds.SearchExplicit(catalog.Key(rng.Intn(64000)), path, 256)
				if err != nil {
					b.Fatal(err)
				}
				steps += int64(stats.Steps)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE7PointLocation measures cooperative planar point location
// (Theorem 4), validated per query.
func BenchmarkE7PointLocation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, err := subdivision.Generate(512, 40, rng)
	if err != nil {
		b.Fatal(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 256, 65536} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				pt, want := s.RandomInteriorPoint(rng)
				got, stats, err := loc.LocateCoop(pt, p)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("wrong region: %d vs %d", got, want)
				}
				steps += int64(stats.Steps)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt, _ := s.RandomInteriorPoint(rng)
			if _, err := loc.LocateSeq(pt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8Spatial measures spatial point location (Theorem 5).
func BenchmarkE8Spatial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := spatial.Generate(400, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	loc, err := spatial.NewLocator(c)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 256, 65536} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				x, y, z, want := c.RandomInteriorPoint(rng)
				got, stats, err := loc.LocateCoop(x, y, z, p)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatal("wrong cell")
				}
				steps += int64(stats.Steps)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE9Retrieval measures the Theorem 6 retrieval structures.
func BenchmarkE9Retrieval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	segs := make([]segtree.VSegment, 4000)
	for i := range segs {
		y1 := 2 * rng.Int63n(8000)
		segs[i] = segtree.VSegment{X: 2 * rng.Int63n(8000), Y1: y1, Y2: y1 + 2 + 2*rng.Int63n(4000)}
	}
	it, err := segtree.NewIntersector(segs, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	q := segtree.HQuery{Y: 6001, X1: 1000, X2: 9000}
	b.Run("segint/direct/p=256", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			_, stats, err := it.QueryDirect(q, 256)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(stats.Total())
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/op")
	})
	b.Run("segint/indirect/p=256", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			_, stats, err := it.QueryIndirect(q, 256)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(stats.SearchSteps + stats.AllocSteps)
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/op")
	})
	rects := make([]segtree.Rect, 4000)
	for i := range rects {
		x1, y1 := 2*rng.Int63n(8000), 2*rng.Int63n(8000)
		rects[i] = segtree.Rect{X1: x1, X2: x1 + 2*rng.Int63n(3000), Y1: y1, Y2: y1 + 2*rng.Int63n(3000)}
	}
	en, err := segtree.NewEncloser(rects, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("enclosure/p=256", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			_, stats, err := en.QueryDirect(6001, 6001, 256)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(stats.Total())
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/op")
	})
	pts := make([]rangetree.Point2, 4000)
	for i := range pts {
		pts[i] = rangetree.Point2{X: rng.Int63n(8000), Y: rng.Int63n(8000)}
	}
	rt, err := rangetree.New2D(pts, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("range2d/p=256", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			_, stats, err := rt.QueryDirect(rangetree.Query2{X1: 1000, X2: 5000, Y1: 1000, Y2: 5000}, 256)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(stats.Total())
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/op")
	})
}

// BenchmarkE10MultiDim measures Corollary 2's d-dimensional recursion.
func BenchmarkE10MultiDim(b *testing.B) {
	for _, d := range []int{2, 3} {
		rng := rand.New(rand.NewSource(1))
		n := 2000
		if d == 3 {
			n = 500
		}
		pts := make([][]int64, n)
		for i := range pts {
			pt := make([]int64, d)
			for c := range pt {
				pt[c] = rng.Int63n(2000)
			}
			pts[i] = pt
		}
		kd, err := rangetree.NewKD(pts, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		lo := make([]int64, d)
		hi := make([]int64, d)
		for c := 0; c < d; c++ {
			lo[c], hi[c] = 300, 1500
		}
		b.Run(fmt.Sprintf("d=%d/p=256", d), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				_, stats, err := kd.QueryDirect(rangetree.QueryKD{Lo: lo, Hi: hi}, 256)
				if err != nil {
					b.Fatal(err)
				}
				total += int64(stats.Total())
			}
			b.ReportMetric(float64(total)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE11SkeletonBuild measures the skeleton forest construction
// whose disjointness Lemma 1 guarantees.
func BenchmarkE11SkeletonBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bt, err := tree.NewBalancedBinary(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	cats := benchCatalogs(bt, 60000, rng)
	s, err := cascade.Build(bt, cats, cascade.Options{Bidirectional: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildFromCascade(s, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15SubtreeSearch measures the generalized-search-path
// extension (open problem 3): steps stay flat as subtree breadth grows.
func BenchmarkE15SubtreeSearch(b *testing.B) {
	st, bt, rng := buildBenchStructure(b, 1<<10, 60000, core.Config{})
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	for _, k := range []int{1, 16, 64} {
		targets := make([]tree.NodeID, k)
		for i := range targets {
			targets[i] = leaves[rng.Intn(len(leaves))]
		}
		b.Run(fmt.Sprintf("targets=%d", k), func(b *testing.B) {
			var steps, slots int64
			for i := 0; i < b.N; i++ {
				_, stats, err := st.SearchSubtree(catalog.Key(rng.Intn(480000)), targets, 256)
				if err != nil {
					b.Fatal(err)
				}
				steps += int64(stats.Steps)
				slots += int64(stats.SlotsPeak)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
			b.ReportMetric(float64(slots)/float64(b.N), "slotsPeak/op")
		})
	}
}

// BenchmarkE16DynamicChurn measures the dynamic extension (open problem
// 4): mixed insert/delete/query workload with amortized rebuilds.
func BenchmarkE16DynamicChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bt, err := tree.NewBalancedBinary(1 << 6)
	if err != nil {
		b.Fatal(err)
	}
	native := benchCatalogs(bt, 4000, rng)
	d, err := dynamic.New(bt, native, core.Config{}, 256)
	if err != nil {
		b.Fatal(err)
	}
	path := bt.RootPath(tree.NodeID(bt.N() - 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 3 {
		case 0:
			_ = d.Insert(tree.NodeID(rng.Intn(bt.N())), catalog.Key(rng.Int63n(1<<40)), int32(i))
		case 1:
			v := tree.NodeID(rng.Intn(bt.N()))
			if k, _ := d.Find(v, catalog.Key(rng.Intn(16000))); k != catalog.PlusInf {
				_ = d.Delete(v, k)
			}
		default:
			if _, _, err := d.SearchExplicit(catalog.Key(rng.Intn(16000)), path, 256); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(d.Rebuilds()), "rebuilds")
}

// BenchmarkBatchedVsSequential measures the E20 engine claim as a
// benchmark: queries/step for batched execution versus the
// one-query-at-a-time baseline at the same total processor budget. The
// simulated throughput is emitted as a custom metric; the hard floor
// (batched > sequential at b=64) is enforced by TestBatchThroughputGuard
// via `make bench-check`.
func BenchmarkBatchedVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	fx := buildEngineFixture(b, 4096, rng)
	for _, bs := range []int{8, 64} {
		b.Run(fmt.Sprintf("batched/b=%d", bs), func(b *testing.B) {
			var qPerStep float64
			for i := 0; i < b.N; i++ {
				batched, _ := fx.measure(b, rng, bs, 2)
				qPerStep = batched
			}
			b.ReportMetric(qPerStep, "q/step")
		})
		b.Run(fmt.Sprintf("sequential/b=%d", bs), func(b *testing.B) {
			var qPerStep float64
			for i := 0; i < b.N; i++ {
				_, sequential := fx.measure(b, rng, bs, 2)
				qPerStep = sequential
			}
			b.ReportMetric(qPerStep, "q/step")
		})
	}
}

// BenchmarkE14CoopBinarySearch measures the Step-1 primitive. The key
// array is staged into machine memory once per processor count (as a
// resident structure would be); each iteration measures one search.
func BenchmarkE14CoopBinarySearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 20
	keys := make([]int64, n)
	v := int64(0)
	for i := range keys {
		v += 1 + rng.Int63n(5)
		keys[i] = v
	}
	for _, p := range []int{1, 15, 255, 65535} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s := parallel.NewCoopSearcher(keys, p)
			b.ResetTimer()
			var rounds int64
			for i := 0; i < b.N; i++ {
				y := rng.Int63n(keys[n-1] + 2)
				_, r := s.Search(y)
				rounds += int64(r)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkE17SearchPRAM runs the E17 experiment body — a complete
// explicit search executed as a machine program — on both tracing
// executors at the seed parameters, so `-bench E17` compares the
// goroutine-barrier machine against the sequential virtual machine
// directly. The executor differential tests pin their step counts, work,
// and conflict verdicts to be identical; this benchmark shows the
// wall-clock gap that makes virtual the default.
func BenchmarkE17SearchPRAM(b *testing.B) {
	st, bt, rng := buildBenchStructure(b, 1<<6, 6000, core.Config{})
	path := bt.RootPath(tree.NodeID(bt.N() - 1))
	for _, kind := range []pram.ExecutorKind{pram.KindBarrier, pram.KindVirtual} {
		b.Run(fmt.Sprintf("executor=%s", kind), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				for _, p := range []int{1, 4, 16, 256, 65536} {
					m := pram.MustNewExecutor(kind, pram.CREW, 1<<21)
					y := catalog.Key(rng.Intn(48000))
					_, rep, err := st.SearchExplicitPRAM(m, y, path, p)
					if err != nil {
						b.Fatal(err)
					}
					steps += int64(rep.MachineSteps)
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}
