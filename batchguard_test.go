// Regression guard for the batched query engine (experiment E20): batched
// execution at b=64 must beat the one-query-at-a-time baseline in
// queries/step under the same total processor budget. `make bench-check`
// runs exactly this test; if an engine change sinks batched throughput to
// or below sequential, the target fails.
package fraccascade

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/engine"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// engineFixture bundles the structures behind a mixed-workload engine.
type engineFixture struct {
	eng   *engine.Engine
	bt    *tree.Tree
	sub   *subdivision.Subdivision
	cx    *spatial.Complex
	bound int64
	procs int
}

// buildEngineFixture assembles an engine over one static catalog shard, a
// planar subdivision, and a spatial complex — the E20 workload at root-test
// scale.
func buildEngineFixture(tb testing.TB, procs int, rng *rand.Rand) *engineFixture {
	tb.Helper()
	const total = 8000
	bt, err := tree.NewBalancedBinary(1 << 7)
	if err != nil {
		tb.Fatal(err)
	}
	st, err := core.Build(bt, benchCatalogs(bt, total, rng), core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := subdivision.Generate(64, 16, rng)
	if err != nil {
		tb.Fatal(err)
	}
	pl, err := pointloc.Build(s, core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	cx, err := spatial.Generate(60, 4, rng)
	if err != nil {
		tb.Fatal(err)
	}
	sp, err := spatial.NewLocator(cx)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Procs: procs},
		[]engine.CatalogBackend{engine.StaticShard{St: st}}, pl, sp)
	if err != nil {
		tb.Fatal(err)
	}
	return &engineFixture{eng: eng, bt: bt, sub: s, cx: cx, bound: int64(total) * 8, procs: procs}
}

// randomQuery draws a mixed query; half the catalog keys come from narrow
// bands so the entry cache sees locality, as in E20.
func (fx *engineFixture) randomQuery(rng *rand.Rand) engine.Query {
	switch rng.Intn(4) {
	case 0, 1:
		y := catalog.Key(rng.Int63n(fx.bound))
		if rng.Intn(2) == 0 {
			y = catalog.Key((fx.bound/8)*int64(1+rng.Intn(7)) + rng.Int63n(128) - 64)
		}
		return engine.CatalogQuery(0, y, fx.bt.RootPath(tree.NodeID(rng.Intn(fx.bt.N()))))
	case 2:
		pt, _ := fx.sub.RandomInteriorPoint(rng)
		return engine.PointQuery(pt)
	default:
		x, y, z, _ := fx.cx.RandomInteriorPoint(rng)
		return engine.SpatialQuery(x, y, z)
	}
}

// measure runs rounds batches of size b and returns (batched q/step,
// sequential q/step) over the whole stream.
func (fx *engineFixture) measure(tb testing.TB, rng *rand.Rand, b, rounds int) (float64, float64) {
	tb.Helper()
	var batchSteps, seqSteps int64
	for r := 0; r < rounds; r++ {
		qs := make([]engine.Query, b)
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		answers, rep, err := fx.eng.ExecuteBatch(qs)
		if err != nil {
			tb.Fatal(err)
		}
		for i := range answers {
			if answers[i].Err != nil {
				tb.Fatalf("round %d query %d: %v", r, i, answers[i].Err)
			}
		}
		batchSteps += int64(rep.Steps)
		_, sTotal, err := fx.eng.ExecuteSequential(qs)
		if err != nil {
			tb.Fatal(err)
		}
		seqSteps += int64(sTotal)
	}
	n := float64(b * rounds)
	return n / float64(batchSteps), n / float64(seqSteps)
}

// TestBatchThroughputGuard fails when batched execution at b=64 stops
// beating the sequential baseline at equal processor budget — the E20
// acceptance bar, kept as a cheap deterministic test.
//
// The bar is environment-tunable so constrained or shared runners can
// relax (or tighten) it without editing the test:
//
//	FRACCASCADE_GUARD=skip          skip the guard entirely
//	FRACCASCADE_GUARD_MARGIN=1.5    require batched ≥ 1.5× sequential
//	                                (default 1.0: strictly above baseline)
func TestBatchThroughputGuard(t *testing.T) {
	if os.Getenv("FRACCASCADE_GUARD") == "skip" {
		t.Skip("throughput guard skipped via FRACCASCADE_GUARD=skip")
	}
	margin := 1.0
	if s := os.Getenv("FRACCASCADE_GUARD_MARGIN"); s != "" {
		m, err := strconv.ParseFloat(s, 64)
		if err != nil || m <= 0 {
			t.Fatalf("bad FRACCASCADE_GUARD_MARGIN %q: want a positive float", s)
		}
		margin = m
	}
	rng := rand.New(rand.NewSource(20))
	fx := buildEngineFixture(t, 4096, rng)
	batched, sequential := fx.measure(t, rng, 64, 6)
	t.Logf("b=64: batched %.3f q/step, sequential %.3f q/step (%.1fx, margin %.2f)",
		batched, sequential, batched/sequential, margin)
	if batched <= sequential*margin {
		t.Fatalf("batched throughput regressed: %.3f q/step is not above the sequential baseline %.3f q/step × margin %.2f",
			batched, sequential, margin)
	}
}
