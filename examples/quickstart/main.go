// Command quickstart demonstrates the core library: build a balanced
// binary tree of catalogs, preprocess it into the cooperative search
// structure T′, and run explicit cooperative searches with different
// processor budgets, comparing the simulated parallel time against the
// sequential fractional-cascading walk.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A balanced binary tree with 256 leaves (511 nodes), each node
	// holding a sorted catalog of random keys.
	const leaves = 256
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		log.Fatal(err)
	}
	cats := make([]catalog.Catalog, bt.N())
	total := 0
	for v := range cats {
		keys := map[catalog.Key]bool{}
		for len(keys) < rng.Intn(40) {
			keys[catalog.Key(rng.Intn(100000))] = true
		}
		flat := make([]catalog.Key, 0, len(keys))
		for k := range keys {
			flat = append(flat, k)
		}
		total += len(flat)
		cats[v] = catalog.MustFromKeys(flat, nil)
	}
	fmt.Printf("tree: %d nodes, %d catalog entries\n", bt.N(), total)

	// Preprocess (Theorem 1): O(log n) rounds, O(n) space.
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	report := st.SpaceReport()
	fmt.Printf("preprocessed: %d augmented entries, %d skeleton slots across %d substructures\n",
		report.AugEntries, report.SkeletonSlots, st.NumSubstructures())

	// A root-to-leaf search path and a query key.
	leaf := tree.NodeID(bt.N() - 1 - rng.Intn(leaves))
	path := bt.RootPath(leaf)
	y := catalog.Key(rng.Intn(100000))
	fmt.Printf("\nquery y=%d along a %d-node root-to-leaf path\n", y, len(path))

	// Sequential baseline: one binary search plus bridge walks.
	seqResults, err := st.Cascade().SearchPath(y, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential FC search: find(y, leaf) = %d\n", seqResults[len(seqResults)-1].Key)

	// Cooperative searches across the processor range.
	fmt.Println("\n   p    steps  hops  seq-tail  substructure")
	for _, p := range []int{1, 4, 16, 256, 65536} {
		results, stats, err := st.SearchExplicit(y, path, p)
		if err != nil {
			log.Fatal(err)
		}
		// Same answers as the sequential search, in fewer parallel steps.
		for i := range results {
			if results[i].Key != seqResults[i].Key {
				log.Fatalf("cooperative search diverged at node %d", path[i])
			}
		}
		fmt.Printf("%6d %8d %5d %9d %13d\n", p, stats.Steps, stats.Hops, stats.SeqLevels, stats.Sub)
	}
}
