// Command spatial demonstrates spatial point location (Theorem 5,
// Corollary 1): build an acyclic cell complex of stacked boxes, construct
// the separating-surface tree, and locate 3-D points sequentially and
// cooperatively — the O((log² n)/log² p) bound showing its quadratic
// log-p decay.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/spatial"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	c, err := spatial.Generate(250, 6, rng)
	if err != nil {
		panic(err)
	}
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complex: %d cells, %d facets (acyclic dominance, topologically ordered)\n",
		len(c.Cells), len(c.Facets))

	loc, err := spatial.NewLocator(c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n      p   steps  hops  seq   (steps fall ~quadratically in log p)")
	for _, p := range []int{1, 16, 256, 65536} {
		var agg spatial.Stats
		const reps = 50
		for q := 0; q < reps; q++ {
			x, y, z, want := c.RandomInteriorPoint(rng)
			got, stats, err := loc.LocateCoop(x, y, z, p)
			if err != nil {
				log.Fatal(err)
			}
			if got != want {
				log.Fatalf("wrong cell: got %d, want %d", got, want)
			}
			agg.Steps += stats.Steps
			agg.Hops += stats.Hops
			agg.SeqLevels += stats.SeqLevels
		}
		fmt.Printf("%7d %7d %5d %4d\n", p, agg.Steps/reps, agg.Hops/reps, agg.SeqLevels/reps)
	}

	// Batch validation.
	const batch = 3000
	for q := 0; q < batch; q++ {
		x, y, z, want := c.RandomInteriorPoint(rng)
		got, err := loc.LocateSeq(x, y, z)
		if err != nil || got != want {
			log.Fatalf("sequential locator wrong at (%d,%d,%d): (%d, %v), want %d", x, y, z, got, err, want)
		}
	}
	fmt.Printf("\n%d sequential queries matched the brute-force oracle\n", batch)
}
