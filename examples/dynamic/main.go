// Command dynamic demonstrates the dynamic extension (the paper's open
// problem 4): catalog inserts and deletes over a live cooperative search
// structure, with buffered overlays and amortized rebuilds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(8))

	bt, err := tree.NewBalancedBinary(128)
	if err != nil {
		log.Fatal(err)
	}
	native := make([]catalog.Catalog, bt.N())
	for v := range native {
		seen := map[catalog.Key]bool{}
		var keys []catalog.Key
		for len(keys) < 20 {
			k := catalog.Key(rng.Intn(100000))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		native[v] = catalog.MustFromKeys(keys, nil)
	}
	d, err := dynamic.New(bt, native, core.Config{}, 0 /* default capacity ~sqrt(n) */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic structure over %d nodes, rebuild capacity %d\n", bt.N(), d.Capacity())

	path := bt.RootPath(tree.NodeID(bt.N() - 1))
	probe := func(tag string, y catalog.Key) {
		res, stats, err := d.SearchExplicit(y, path, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s find(%d, leaf) = %-8d (%d steps, %d pending, %d rebuilds)\n",
			tag, y, res[len(res)-1].Key, stats.Steps, d.Buffered(), d.Rebuilds())
	}

	leaf := path[len(path)-1]
	probe("initial", 50000)

	// Insert a key right at the probe point on the leaf.
	if err := d.Insert(leaf, 50001, 777); err != nil {
		log.Fatal(err)
	}
	probe("after insert 50001", 50000)

	// Delete it again.
	if err := d.Delete(leaf, 50001); err != nil {
		log.Fatal(err)
	}
	probe("after delete", 50000)

	// Churn past the rebuild threshold.
	inserted := 0
	for inserted <= d.Capacity() {
		v := tree.NodeID(rng.Intn(bt.N()))
		if d.Insert(v, catalog.Key(rng.Int63n(1<<40)), int32(inserted)) == nil {
			inserted++
		}
	}
	probe(fmt.Sprintf("after %d inserts", inserted), 50000)

	if d.Rebuilds() == 0 {
		log.Fatal("expected an amortized rebuild")
	}
	fmt.Println("\nanswers stayed consistent through overlays and rebuilds")
}
