// Command implicit demonstrates basic implicit cooperative search
// (Section 2.3): the root-to-leaf path is not known in advance — a branch
// function satisfying the consistency assumption steers the search, and
// the structure still jumps Θ(log p) levels per hop.
//
// The demo models a two-key dictionary: each leaf owns an x-interval, and
// a query (x, y) must find, at every node on x's root-to-leaf path, the
// smallest catalog key ≥ y.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	const leaves = 512
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		log.Fatal(err)
	}
	cats := make([]catalog.Catalog, bt.N())
	for v := range cats {
		keySet := map[catalog.Key]bool{}
		for len(keySet) < 5+rng.Intn(30) {
			keySet[catalog.Key(rng.Intn(1<<20))] = true
		}
		keys := make([]catalog.Key, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Each leaf owns one x-slot in left-to-right order; the branch
	// function compares the query's x-slot with the inorder position of
	// the node the search is visiting — left/right exactly as the
	// consistency assumption prescribes.
	inorder, err := bt.InorderIndex()
	if err != nil {
		log.Fatal(err)
	}
	var leafByOrder []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leafByOrder = append(leafByOrder, v)
		}
	}
	// Sort leaves by inorder (left-to-right).
	for i := 1; i < len(leafByOrder); i++ {
		for j := i; j > 0 && inorder[leafByOrder[j]] < inorder[leafByOrder[j-1]]; j-- {
			leafByOrder[j], leafByOrder[j-1] = leafByOrder[j-1], leafByOrder[j]
		}
	}

	fmt.Println("   p    steps  hops  target-found")
	for _, p := range []int{1, 16, 1024, 1 << 18} {
		xSlot := rng.Intn(leaves)
		target := leafByOrder[xSlot]
		branch := func(r cascade.Result) core.Branch {
			if inorder[r.Node] < inorder[target] {
				return core.Right
			}
			return core.Left
		}
		y := catalog.Key(rng.Intn(1 << 20))
		if err := st.CheckConsistency(y, branch); err != nil {
			log.Fatalf("branch function violates the consistency assumption: %v", err)
		}
		results, leaf, stats, err := st.SearchImplicit(y, branch, p)
		if err != nil {
			log.Fatal(err)
		}
		if leaf != target {
			log.Fatalf("implicit search reached leaf %d, want %d", leaf, target)
		}
		// The discovered path's results must match the explicit search
		// over the now-known path.
		path := bt.RootPath(target)
		want, _, err := st.SearchExplicit(y, path, p)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if results[i].Key != want[i].Key {
				log.Fatalf("implicit result differs at node %d", path[i])
			}
		}
		fmt.Printf("%7d %7d %5d  leaf %d (x-slot %d)\n", p, stats.Steps, stats.Hops, leaf, xSlot)
	}
	fmt.Println("\nimplicit cooperative search discovered every path correctly")
}
