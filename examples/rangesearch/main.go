// Command rangesearch demonstrates the Theorem 6 retrieval structures:
// orthogonal range search on a layered range tree, orthogonal segment
// intersection, and point enclosure, with direct and indirect cooperative
// retrieval.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/core"
	"fraccascade/internal/rangetree"
	"fraccascade/internal/segtree"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// --- Orthogonal range search (2-D) ---
	pts := make([]rangetree.Point2, 5000)
	for i := range pts {
		pts[i] = rangetree.Point2{X: rng.Int63n(10000), Y: rng.Int63n(10000)}
	}
	rt, err := rangetree.New2D(pts, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	q := rangetree.Query2{X1: 2000, X2: 4000, Y1: 3000, Y2: 6000}
	ids, stats, err := rt.QueryDirect(q, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range search %+v: k=%d points, steps=%d (search %d + alloc %d + report %d)\n",
		q, stats.K, stats.Total(), stats.SearchSteps, stats.AllocSteps, stats.ReportSteps)
	if want := rt.NaiveQuery(q); len(want) != len(ids) {
		log.Fatalf("range tree disagrees with scan: %d vs %d", len(ids), len(want))
	}

	// --- Orthogonal segment intersection ---
	segs := make([]segtree.VSegment, 3000)
	for i := range segs {
		y1 := 2 * rng.Int63n(5000)
		segs[i] = segtree.VSegment{X: 2 * rng.Int63n(5000), Y1: y1, Y2: y1 + 2 + 2*rng.Int63n(3000)}
	}
	it, err := segtree.NewIntersector(segs, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	hq := segtree.HQuery{Y: 4001, X1: 1000, X2: 6000}
	hits, hstats, err := it.QueryDirect(hq, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segment intersection %+v: k=%d segments, steps=%d\n", hq, hstats.K, hstats.Total())
	ranges, istats, err := it.QueryIndirect(hq, 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indirect retrieval: %d catalog ranges in %d steps (no per-item work)\n",
		len(ranges), istats.SearchSteps+istats.AllocSteps)
	if got := it.Expand(ranges); len(got) != len(hits) {
		log.Fatalf("indirect expansion disagrees: %d vs %d", len(got), len(hits))
	}

	// --- Point enclosure ---
	rects := make([]segtree.Rect, 3000)
	for i := range rects {
		x1, y1 := 2*rng.Int63n(5000), 2*rng.Int63n(5000)
		rects[i] = segtree.Rect{X1: x1, X2: x1 + 2*rng.Int63n(2000), Y1: y1, Y2: y1 + 2*rng.Int63n(2000)}
	}
	en, err := segtree.NewEncloser(rects, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	px, py := int64(4001), int64(4001)
	encl, estats, err := en.QueryDirect(px, py, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point enclosure (%d,%d): k=%d rectangles, steps=%d\n", px, py, estats.K, estats.Total())
	if want := en.NaiveQuery(px, py); len(want) != len(encl) {
		log.Fatalf("encloser disagrees with scan: %d vs %d", len(encl), len(want))
	}

	// --- d-dimensional range search (Corollary 2) ---
	pts3 := make([][]int64, 800)
	for i := range pts3 {
		pts3[i] = []int64{rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000)}
	}
	kd, err := rangetree.NewKD(pts3, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	q3 := rangetree.QueryKD{Lo: []int64{100, 100, 100}, Hi: []int64{700, 700, 700}}
	ids3, kstats, err := kd.QueryDirect(q3, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-D range search: k=%d points, steps=%d\n", len(ids3), kstats.Total())
	if want := kd.NaiveQuery(q3); len(want) != len(ids3) {
		log.Fatalf("3-D tree disagrees with scan")
	}
	fmt.Println("\nall structures matched their brute-force oracles")
}
