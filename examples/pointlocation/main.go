// Command pointlocation demonstrates cooperative planar point location
// (Theorem 4): generate a random monotone subdivision, build the bridged
// separator tree, and locate query points both sequentially and
// cooperatively, cross-checking against a brute-force oracle.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/core"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/subdivision"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A monotone subdivision with 64 regions over 40 y-levels. Chains may
	// share edges, so separators have gaps — the case that defeats the
	// basic implicit search and needs the paper's Section 3.1 hop.
	s, err := subdivision.Generate(64, 40, rng)
	if err != nil {
		panic(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subdivision: %d regions, %d edges, ~%d vertices\n",
		s.NumRegions, len(s.Edges), s.TotalVertices())

	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	loc.Debug = true // validate the Step-3 pair invariant on every hop

	fmt.Println("\nquery          brute  seq  coop(p=1)  coop(p=4096)  steps(1)  steps(4096)")
	for q := 0; q < 8; q++ {
		pt, want := s.RandomInteriorPoint(rng)
		seq, err := loc.LocateSeq(pt)
		if err != nil {
			log.Fatal(err)
		}
		c1, st1, err := loc.LocateCoop(pt, 1)
		if err != nil {
			log.Fatal(err)
		}
		cp, stp, err := loc.LocateCoop(pt, 4096)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%6d,%4d) %6d %4d %10d %13d %9d %12d\n",
			pt.X, pt.Y, want, seq, c1, cp, st1.Steps, stp.Steps)
		if seq != want || c1 != want || cp != want {
			log.Fatalf("locator disagrees with oracle at %v", pt)
		}
	}

	// Batch check over many random queries.
	const batch = 2000
	for q := 0; q < batch; q++ {
		pt, want := s.RandomInteriorPoint(rng)
		got, _, err := loc.LocateCoop(pt, 1+rng.Intn(1<<14))
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("mismatch at %v: got %d, want %d", pt, got, want)
		}
	}
	fmt.Printf("\n%d random cooperative queries matched the brute-force oracle\n", batch)
}
