module fraccascade

go 1.22
