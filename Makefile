GO ?= go
COVER_THRESHOLD ?= 80

.PHONY: check vet build lint test test-engine test-snapshot test-flat race cover bench bench-check bench-json bench-diff bench-smoke bench-wall bench-build bench-restore bench-telemetry metrics-smoke chaos chaos-smoke

check: vet build lint test test-engine test-snapshot test-flat race cover bench-check bench-smoke bench-wall bench-build bench-restore bench-telemetry metrics-smoke

vet:
	$(GO) vet ./...

# Lint with whatever is installed, in preference order: golangci-lint
# (the CI linter, config in .golangci.yml), then staticcheck, then plain
# go vet so the target never silently passes on a bare toolchain.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	elif command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: golangci-lint/staticcheck not installed, falling back to go vet"; \
		$(GO) vet ./...; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Engine-specific gate: race-check the batched engine and smoke both fuzz
# targets (oracle-differential batch replay and entry-cache invalidation).
test-engine:
	$(GO) test -race ./internal/engine/...
	$(GO) test -run='^$$' -fuzz=FuzzBatchSearch -fuzztime=10s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzEntryCache -fuzztime=10s ./internal/engine

# Persistence gate: the snapshot round-trip/corruption suite and the disk
# fault injector's own tests, plus a short fuzz smoke of the snapshot
# decoder (arbitrary bytes must yield a typed error or a valid store,
# never a panic).
test-snapshot:
	$(GO) test ./internal/snapshot ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/snapshot
	$(GO) test -run='^$$' -fuzz=FuzzFlatMmap -fuzztime=10s ./internal/snapshot

# Flat-layout gate: the 1000-case flat-vs-pointer differential and the
# zero-alloc guards under the race detector, plus short fuzz smokes of the
# freeze round-trip and the bounds-validated blob decoder (hostile bytes:
# typed error or a queryable structure, never a panic).
test-flat:
	$(GO) test -race ./internal/flat
	$(GO) test -run='^$$' -fuzz=FuzzFlatFreeze -fuzztime=10s ./internal/flat
	$(GO) test -run='^$$' -fuzz=FuzzFlatDecode -fuzztime=10s ./internal/flat

race:
	$(GO) test -race ./internal/pram/... ./internal/parallel/... ./internal/buildpool/... ./internal/cascade/... ./internal/engine/... ./internal/obs/... ./internal/flat/...

# Coverage floor on the paper-critical packages: the core cascaded
# structure, the batch engine, and the instrumentation they publish
# through (the PRAM simulator/profiler and the obs layer). Override with
# COVER_THRESHOLD=NN.
cover:
	$(GO) test -coverprofile=cover.out ./internal/core ./internal/engine ./internal/obs ./internal/pram
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_THRESHOLD) \
		'/^total:/ { sub(/%/, "", $$3); \
		  if ($$3+0 < min) { printf "cover: total %.1f%% below threshold %d%%\n", $$3, min; exit 1 } \
		  else { printf "cover: total %.1f%% (threshold %d%%)\n", $$3, min } }'

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Throughput regression guard: fails when batched execution at b=64 stops
# beating the one-query-at-a-time baseline (see batchguard_test.go).
bench-check:
	$(GO) test -run='^TestBatchThroughputGuard$$' -v .

# Machine-readable benchmark tables: run every experiment and write one
# BENCH_<EXP>.json per experiment (wall time plus instrumented rows).
bench-json:
	$(GO) run ./cmd/coopbench -experiment=all -json

# Benchmark regression gate: regenerate the gated experiments' JSON into
# bench/out and diff against the committed baselines in bench/baselines.
# Step metrics (E17 machine/phase steps, E18 adversary rounds) are
# deterministic and diff exact by default; E20 throughput gets generous
# slack for scheduling noise. Tune with BENCH_STEP_TOL / BENCH_THR_TOL;
# refresh baselines by copying bench/out/*.json into bench/baselines.
BENCH_STEP_TOL ?= 0
BENCH_THR_TOL ?= 0.35
BENCH_WALL_TOL ?= 3.0
BENCH_BUILD_TOL ?= 3.0
BENCH_RESTORE_TOL ?= 3.0
BENCH_TELEMETRY_TOL ?= 0.5
bench-diff:
	@mkdir -p bench/out
	$(GO) build -o bench/out/coopbench ./cmd/coopbench
	cd bench/out && ./coopbench -experiment=e17 -json >/dev/null \
		&& ./coopbench -experiment=e18 -json >/dev/null \
		&& ./coopbench -experiment=e20 -json >/dev/null \
		&& ./coopbench -experiment=e22 -executor=wall -json >/dev/null \
		&& ./coopbench -experiment=e23 -json >/dev/null \
		&& ./coopbench -experiment=e24 -json >/dev/null \
		&& ./coopbench -experiment=e25 -json >/dev/null
	$(GO) run ./cmd/benchdiff -baseline bench/baselines -candidate bench/out \
		-step-tol $(BENCH_STEP_TOL) -throughput-tol $(BENCH_THR_TOL) -wall-tol $(BENCH_WALL_TOL) \
		-build-tol $(BENCH_BUILD_TOL) -restore-tol $(BENCH_RESTORE_TOL) \
		-telemetry-tol $(BENCH_TELEMETRY_TOL)

# Wall-executor smoke: run E22 on the native goroutine pool and hold the
# tentpole claim — the flat and wall hot paths allocate nothing per query.
# (bench-diff holds the same claim against the committed baseline; this
# target works without one.)
bench-wall:
	@mkdir -p bench/out
	cd bench/out && $(GO) run ../../cmd/coopbench -experiment=e22 -executor=wall -json
	@awk '/"(flat|wall)_allocs_per_op":/ { v=$$2; gsub(/[",]/, "", v); \
		if (v+0 != 0) { print "bench-wall: FAIL: " $$0; bad=1 } } \
		END { if (bad) exit 1; print "bench-wall: zero-alloc hot path confirmed" }' \
		bench/out/BENCH_E22.json

# Build-throughput smoke: run E23 (sequential vs parallel construction)
# and diff it against the committed baseline under BENCH_BUILD_TOL. The
# speedup column is informational — the baseline is taken on a single-core
# box, so multi-core runs only ever improve it — while build/freeze wall
# times are gated with the same generous slack as the E22 latencies.
bench-build:
	@mkdir -p bench/out
	cd bench/out && $(GO) run ../../cmd/coopbench -experiment=e23 -json
	$(GO) run ./cmd/benchdiff -baseline bench/baselines -candidate bench/out \
		-build-tol $(BENCH_BUILD_TOL) e23

# Snapshot cold-start smoke: run E24 (per-backend restore latency and
# pinned heap across the mmap / deserialized / refrozen paths) and diff
# it against the committed baseline under BENCH_RESTORE_TOL. The mmap
# rows are the claim a coopserve -flat restart rides on: reopening the
# sidecar must stay cheap and near-zero-heap however large the frozen
# structures grow.
bench-restore:
	@mkdir -p bench/out
	cd bench/out && $(GO) run ../../cmd/coopbench -experiment=e24 -json
	$(GO) run ./cmd/benchdiff -baseline bench/baselines -candidate bench/out \
		-restore-tol $(BENCH_RESTORE_TOL) e24

# Executor differential gate: the harnesses asserting that the barrier and
# virtual executors produce identical results, step counts, work, conflict
# verdicts, and fault skip counts — plus one short BenchmarkE17 run
# comparing their wall clocks on the same end-to-end search program.
bench-smoke:
	$(GO) test -run='Executor' ./internal/pram ./internal/parallel ./internal/core
	$(GO) test -run='^$$' -bench='^BenchmarkE17SearchPRAM$$' -benchtime=3x .

# Serving-telemetry smoke: run E25 (flight recorder + latency windows on
# vs off over identical batches) and diff the overhead ratio against the
# committed baseline under BENCH_TELEMETRY_TOL. The ratio is
# machine-normalized (both arms run here), so unlike the raw ns columns
# the slack prices measurement noise only.
bench-telemetry:
	@mkdir -p bench/out
	cd bench/out && $(GO) run ../../cmd/coopbench -experiment=e25 -json
	$(GO) run ./cmd/benchdiff -baseline bench/baselines -candidate bench/out \
		-telemetry-tol $(BENCH_TELEMETRY_TOL) e25

# Observability smoke: the -metrics surfaces must run end to end and
# print the counters the dashboards key on (engine batch counters from
# E20, machine step counters from E17), and the serving telemetry
# families (latency windows, SLO burn rates, flight recorder) must stay
# Prometheus-lint-clean behind a live /metrics endpoint.
metrics-smoke:
	$(GO) run ./cmd/coopbench -experiment=e20 -metrics | grep '^engine\.batches ' >/dev/null
	$(GO) run ./cmd/coopbench -experiment=e17 -metrics | grep '^pram\.steps ' >/dev/null
	$(GO) run ./cmd/coopbench -experiment=e17 -metrics -stepsprofile=steps-smoke.pb.gz \
		| grep '^pram\.phase\.root-coop\.steps ' >/dev/null
	@test -s steps-smoke.pb.gz && rm -f steps-smoke.pb.gz
	$(GO) test -run='^TestMetricsTelemetryFamilies$$' ./cmd/coopserve
	@echo "metrics-smoke: ok"

chaos:
	$(GO) run ./cmd/coopbench -chaos

# Deterministic robustness smoke: the E21 kill/restart/corrupt loop plus a
# real coopserve SIGTERM drain / restore-from-snapshot round trip.
chaos-smoke:
	./scripts/chaos_smoke.sh
