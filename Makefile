GO ?= go

.PHONY: check vet build test test-engine race bench bench-check chaos

check: vet build test test-engine race bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Engine-specific gate: race-check the batched engine and smoke both fuzz
# targets (oracle-differential batch replay and entry-cache invalidation).
test-engine:
	$(GO) test -race ./internal/engine/...
	$(GO) test -run='^$$' -fuzz=FuzzBatchSearch -fuzztime=10s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzEntryCache -fuzztime=10s ./internal/engine

race:
	$(GO) test -race ./internal/pram/... ./internal/parallel/... ./internal/engine/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Throughput regression guard: fails when batched execution at b=64 stops
# beating the one-query-at-a-time baseline (see batchguard_test.go).
bench-check:
	$(GO) test -run='^TestBatchThroughputGuard$$' -v .

chaos:
	$(GO) run ./cmd/coopbench -chaos
