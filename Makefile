GO ?= go

.PHONY: check vet build test race bench chaos

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pram/... ./internal/parallel/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

chaos:
	$(GO) run ./cmd/coopbench -chaos
