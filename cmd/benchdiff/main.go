// Command benchdiff gates benchmark regressions: it compares candidate
// BENCH_<EXP>.json files (written by `coopbench -json`) against committed
// baselines and exits non-zero when a metric regressed beyond tolerance.
//
// Step-class metrics (simulated machine steps, phase step counts, peak
// processors) are deterministic for a fixed seed, so their tolerance
// defaults to exact; throughput-class metrics (queries/step, cache hit
// rate) depend on concurrent cache-fill order and get generous slack.
// Host-clock latency metrics (E22's ns/op columns) get the widest slack
// of all (-wall-tol, default 3.0 = 4x) since the gate may run on a very
// different machine than the baseline; allocs/op columns, by contrast,
// are machine-independent and diff exact — the zero-alloc hot path may
// never grow a malloc.
//
// Usage:
//
//	benchdiff -baseline bench/baselines -candidate bench/out
//	benchdiff -baseline bench/baselines -candidate bench/out e17 e20
//	benchdiff -step-tol 0.02 -throughput-tol 0.5 -wall-tol 3.0 ...
//
// `make bench-diff` regenerates the candidate files and runs this.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	baseDir := flag.String("baseline", "bench/baselines", "directory holding baseline BENCH_<EXP>.json files")
	candDir := flag.String("candidate", ".", "directory holding freshly generated BENCH_<EXP>.json files")
	stepTol := flag.Float64("step-tol", 0, "relative tolerance for deterministic step metrics (0 = exact)")
	thrTol := flag.Float64("throughput-tol", 0.35, "relative tolerance for throughput metrics")
	wallTol := flag.Float64("wall-tol", 3.0, "relative tolerance for host-clock ns/op metrics (3.0 = candidate may be 4x the baseline)")
	buildTol := flag.Float64("build-tol", 3.0, "relative tolerance for host-clock construction metrics (E23's build/freeze ms)")
	restoreTol := flag.Float64("restore-tol", 3.0, "relative tolerance for snapshot cold-start metrics (E24's restore ms and pinned-heap KB)")
	telemetryTol := flag.Float64("telemetry-tol", 0.5, "relative tolerance for the serving-telemetry overhead ratio (E25's enabled/disabled ns per query)")
	flag.Parse()

	names := flag.Args() // e.g. "e17" — empty means every baseline present
	var files []string
	if len(names) == 0 {
		matches, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: no baselines in %s\n", *baseDir)
			os.Exit(2)
		}
		files = matches
	} else {
		for _, n := range names {
			files = append(files, filepath.Join(*baseDir, "BENCH_"+strings.ToUpper(n)+".json"))
		}
	}

	tol := tolerance{Steps: *stepTol, Throughput: *thrTol, Latency: *wallTol, Build: *buildTol, Restore: *restoreTol, Telemetry: *telemetryTol}
	failed := false
	for _, bf := range files {
		base, err := loadBench(bf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		cf := filepath.Join(*candDir, filepath.Base(bf))
		cand, err := loadBench(cf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: candidate for %s: %v\n", base.Experiment, err)
			failed = true
			continue
		}
		regs := compare(base, cand, tol)
		if len(regs) == 0 {
			fmt.Printf("benchdiff: %s ok (%d rows, step tol %.0f%%, throughput tol %.0f%%)\n",
				base.Experiment, len(base.Rows), 100*tol.Steps, 100*tol.Throughput)
			continue
		}
		failed = true
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION "+r)
		}
	}
	if failed {
		os.Exit(1)
	}
}
