package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadBaseline(t *testing.T, exp string) benchFile {
	t.Helper()
	b, err := loadBench(filepath.Join("..", "..", "bench", "baselines", "BENCH_"+exp+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) == 0 {
		t.Fatalf("baseline %s has no rows", exp)
	}
	return b
}

// cloneRows deep-copies the row maps so tests can perturb a candidate
// without mutating the loaded baseline.
func cloneRows(b benchFile) benchFile {
	c := b
	c.Rows = make([]map[string]any, len(b.Rows))
	for i, r := range b.Rows {
		m := make(map[string]any, len(r))
		for k, v := range r {
			m[k] = v
		}
		c.Rows[i] = m
	}
	return c
}

// TestCompareIdenticalPasses: the committed baselines must diff clean
// against themselves — the `make bench-diff` pass-on-unchanged-tree
// guarantee, minus the regeneration step.
func TestCompareIdenticalPasses(t *testing.T) {
	for _, exp := range []string{"E17", "E18", "E20", "E22"} {
		b := loadBaseline(t, exp)
		if regs := compare(b, cloneRows(b), tolerance{}); len(regs) != 0 {
			t.Fatalf("%s: self-compare regressed: %v", exp, regs)
		}
	}
}

// TestCompareFlagsSlowedPhase injects an artificial phase slowdown into
// E17's per-phase step counts and requires the diff to fail — the ISSUE's
// failure-injection acceptance check for the regression gate.
func TestCompareFlagsSlowedPhase(t *testing.T) {
	base := loadBaseline(t, "E17")
	for _, phase := range []string{"root_steps", "hop_steps", "machine_steps"} {
		cand := cloneRows(base)
		slowed := false
		for _, row := range cand.Rows {
			if v, ok := num(row[phase]); ok && v > 0 {
				row[phase] = v * 2
				slowed = true
			}
		}
		if !slowed {
			t.Fatalf("no row has positive %s to slow down", phase)
		}
		regs := compare(base, cand, tolerance{})
		if len(regs) == 0 {
			t.Fatalf("doubling %s was not flagged", phase)
		}
		if !strings.Contains(regs[0], phase) {
			t.Fatalf("regression message does not name %s: %q", phase, regs[0])
		}
		// A step improvement (fewer steps) must NOT fail the gate.
		better := cloneRows(base)
		for _, row := range better.Rows {
			if v, ok := num(row[phase]); ok && v > 1 {
				row[phase] = v - 1
			}
		}
		if regs := compare(base, better, tolerance{}); len(regs) != 0 {
			t.Fatalf("step improvement in %s flagged as regression: %v", phase, regs)
		}
	}
}

// TestCompareStepToleranceAbsorbsSmallDrift: with a 10% step tolerance a
// 5% inflation passes and a 2x inflation still fails.
func TestCompareStepToleranceAbsorbsSmallDrift(t *testing.T) {
	base := loadBaseline(t, "E17")
	small := cloneRows(base)
	for _, row := range small.Rows {
		if v, ok := num(row["machine_steps"]); ok {
			row["machine_steps"] = v * 1.05
		}
	}
	if regs := compare(base, small, tolerance{Steps: 0.10}); len(regs) != 0 {
		t.Fatalf("5%% drift flagged under 10%% tolerance: %v", regs)
	}
	big := cloneRows(base)
	for _, row := range big.Rows {
		if v, ok := num(row["machine_steps"]); ok {
			row["machine_steps"] = v * 2
		}
	}
	if regs := compare(base, big, tolerance{Steps: 0.10}); len(regs) == 0 {
		t.Fatal("2x drift passed under 10% tolerance")
	}
}

// TestCompareThroughputDirection: throughput regresses downward — a dip
// beyond tolerance fails, a dip within it passes, and a gain never fails.
func TestCompareThroughputDirection(t *testing.T) {
	base := loadBaseline(t, "E20")
	scale := func(f float64) benchFile {
		c := cloneRows(base)
		for _, row := range c.Rows {
			if v, ok := num(row["queries_per_step"]); ok {
				row["queries_per_step"] = v * f
			}
		}
		return c
	}
	tol := tolerance{Throughput: 0.35}
	if regs := compare(base, scale(0.8), tol); len(regs) != 0 {
		t.Fatalf("20%% throughput dip flagged under 35%% tolerance: %v", regs)
	}
	if regs := compare(base, scale(0.5), tol); len(regs) == 0 {
		t.Fatal("50% throughput dip passed under 35% tolerance")
	}
	if regs := compare(base, scale(3), tol); len(regs) != 0 {
		t.Fatalf("throughput gain flagged: %v", regs)
	}
}

// TestCompareExactAndIdentityFields: the Snir lower bound may not drift in
// either direction, and identity-field changes invalidate the comparison.
func TestCompareExactAndIdentityFields(t *testing.T) {
	base := loadBaseline(t, "E18")
	drift := cloneRows(base)
	v, ok := num(drift.Rows[0]["lower_bound"])
	if !ok {
		t.Fatal("E18 rows lack lower_bound")
	}
	drift.Rows[0]["lower_bound"] = v - 1 // an "improvement" — still a drift
	if regs := compare(base, drift, tolerance{Steps: 10}); len(regs) == 0 {
		t.Fatal("lower_bound drift passed")
	}

	ident := cloneRows(base)
	ident.Rows[0]["n"] = 12345.0
	regs := compare(base, ident, tolerance{})
	if len(regs) == 0 || !strings.Contains(regs[0], "identity") {
		t.Fatalf("identity change not flagged: %v", regs)
	}

	reseeded := cloneRows(base)
	reseeded.Seed = 999
	if regs := compare(base, reseeded, tolerance{}); len(regs) == 0 {
		t.Fatal("seed mismatch passed")
	}
}

// TestCompareRowShapeChanges: row-count changes and missing metric fields
// are regressions, not silent skips.
func TestCompareRowShapeChanges(t *testing.T) {
	base := loadBaseline(t, "E17")
	short := cloneRows(base)
	short.Rows = short.Rows[:len(short.Rows)-1]
	if regs := compare(base, short, tolerance{}); len(regs) == 0 {
		t.Fatal("dropped row passed")
	}
	gone := cloneRows(base)
	delete(gone.Rows[0], "machine_steps")
	regs := compare(base, gone, tolerance{})
	if len(regs) == 0 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing field not flagged: %v", regs)
	}
}

// TestCompareLatencyDirection: E22's host-clock ns/op columns regress
// upward under the wide -wall-tol slack — machine noise inside the slack
// passes, an order-of-magnitude slowdown fails, and getting faster never
// fails. Injected on each latency column separately so a class mixup in
// the field tables cannot hide.
func TestCompareLatencyDirection(t *testing.T) {
	base := loadBaseline(t, "E22")
	tol := tolerance{Latency: 3.0}
	for _, field := range []string{"pointer_ns_per_op", "flat_ns_per_op", "wall_ns_per_op"} {
		scale := func(f float64) benchFile {
			c := cloneRows(base)
			for _, row := range c.Rows {
				if v, ok := num(row[field]); ok {
					row[field] = v * f
				}
			}
			return c
		}
		if regs := compare(base, scale(2), tol); len(regs) != 0 {
			t.Fatalf("2x %s flagged under 4x tolerance: %v", field, regs)
		}
		regs := compare(base, scale(10), tol)
		if len(regs) == 0 {
			t.Fatalf("10x %s passed under 4x tolerance", field)
		}
		if !strings.Contains(regs[0], field) {
			t.Fatalf("regression message does not name %s: %q", field, regs[0])
		}
		if regs := compare(base, scale(0.1), tol); len(regs) != 0 {
			t.Fatalf("%s speedup flagged: %v", field, regs)
		}
	}
}

// TestCompareAllocsExact: the committed E22 baseline claims 0 allocs/op on
// the flat and wall hot paths, and the gate holds that claim exactly —
// even a fraction of a malloc per op (one allocation somewhere in a timed
// loop) fails regardless of the latency slack.
func TestCompareAllocsExact(t *testing.T) {
	base := loadBaseline(t, "E22")
	for _, field := range []string{"flat_allocs_per_op", "wall_allocs_per_op"} {
		v, ok := num(base.Rows[0][field])
		if !ok || v != 0 {
			t.Fatalf("baseline row 0 %s = %v, want the committed zero-alloc claim", field, base.Rows[0][field])
		}
		leak := cloneRows(base)
		leak.Rows[0][field] = 0.5
		regs := compare(base, leak, tolerance{Latency: 100})
		if len(regs) == 0 {
			t.Fatalf("half a malloc per op in %s passed", field)
		}
		if !strings.Contains(regs[0], field) {
			t.Fatalf("regression message does not name %s: %q", field, regs[0])
		}
	}
	// The workload tag is a string, not a metric: renaming it is invisible
	// to the numeric diff (the shape is pinned by n/p identity fields).
	tagged := cloneRows(base)
	tagged.Rows[0]["workload"] = "renamed"
	if regs := compare(base, tagged, tolerance{}); len(regs) != 0 {
		t.Fatalf("string field change flagged as numeric regression: %v", regs)
	}
}

// TestCompareTelemetryOverheadGate: E25's overhead ratio regresses upward
// under its own knob — a regression past the slack fails naming the field,
// growth inside it passes, and cheaper telemetry never fails. The raw
// ns-per-query columns ride the latency class, so a machine-speed shift
// that moves both arms equally leaves the gated ratio untouched.
func TestCompareTelemetryOverheadGate(t *testing.T) {
	base := loadBaseline(t, "E25")
	tol := tolerance{Telemetry: 0.5, Latency: 3.0}
	if regs := compare(base, cloneRows(base), tol); len(regs) != 0 {
		t.Fatalf("E25 self-compare regressed: %v", regs)
	}
	scale := func(field string, f float64) benchFile {
		c := cloneRows(base)
		for _, row := range c.Rows {
			if v, ok := num(row[field]); ok {
				row[field] = v * f
			}
		}
		return c
	}
	if regs := compare(base, scale("telemetry_overhead_ratio", 1.2), tol); len(regs) != 0 {
		t.Fatalf("20%% ratio growth flagged under 50%% tolerance: %v", regs)
	}
	regs := compare(base, scale("telemetry_overhead_ratio", 2), tol)
	if len(regs) == 0 {
		t.Fatal("2x overhead ratio passed under 50% tolerance")
	}
	if !strings.Contains(regs[0], "telemetry_overhead_ratio") {
		t.Fatalf("regression message does not name the ratio: %q", regs[0])
	}
	if regs := compare(base, scale("telemetry_overhead_ratio", 0.5), tol); len(regs) != 0 {
		t.Fatalf("cheaper telemetry flagged: %v", regs)
	}
	// Both ns columns are latency-class: 10x fails, 2x passes under the
	// wide machine slack.
	for _, field := range []string{"disabled_ns_per_query", "enabled_ns_per_query"} {
		if regs := compare(base, scale(field, 2), tol); len(regs) != 0 {
			t.Fatalf("2x %s flagged under 4x tolerance: %v", field, regs)
		}
		if regs := compare(base, scale(field, 10), tol); len(regs) == 0 {
			t.Fatalf("10x %s passed under 4x tolerance", field)
		}
	}
}
