package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchFile mirrors coopbench's BENCH_<EXP>.json recorder output.
type benchFile struct {
	Experiment string           `json:"experiment"`
	Seed       int64            `json:"seed"`
	Executor   string           `json:"executor"`
	WallMS     float64          `json:"wall_ms"`
	Rows       []map[string]any `json:"rows"`
}

func loadBench(path string) (benchFile, error) {
	var b benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// tolerance holds the relative slack per metric class. Step counts come
// from the deterministic simulator (seeded workloads, executor-independent
// by the differential tests), so their tolerance defaults to exact;
// throughput rates depend on concurrent cache-fill order and get generous
// slack. Latency covers host-clock ns/op columns (E22's flat-vs-pointer
// hot path), which vary with the machine running the gate — the default
// slack is very generous, so only an order-of-magnitude regression fails.
type tolerance struct {
	Steps      float64
	Throughput float64
	Latency    float64
	Build      float64
	Restore    float64
	Telemetry  float64
}

// Metric classification. Step-class fields regress upward (more simulated
// steps/procs is worse); throughput-class fields regress downward
// (fewer queries per step, lower hit rate is worse). Exact fields may not
// drift in either direction — they are statements (the Snir lower bound),
// not measurements. Identity fields key the row: a mismatch means the
// benchmark's shape changed and the baseline must be regenerated, not
// tolerated.
var (
	stepFields = map[string]bool{
		"machine_steps": true, "root_steps": true, "hop_steps": true,
		"seq_steps": true, "peak_procs": true, "uniform": true, "binary": true,
	}
	throughputFields = map[string]bool{
		"queries_per_step": true, "sequential_queries_per_step": true,
		"cache_hit_rate": true, "build_speedup": true,
	}
	// Host-clock latencies regress upward under the generous Latency slack;
	// allocation counts regress upward with no slack at all — the flat hot
	// path's zero allocs/op is a statement, and one malloc per op is the
	// exact failure the gate exists to catch.
	latencyFields = map[string]bool{
		"pointer_ns_per_op": true, "flat_ns_per_op": true, "wall_ns_per_op": true,
		"disabled_ns_per_query": true, "enabled_ns_per_query": true,
	}
	// The telemetry overhead ratio (E25's enabled/disabled ns per query)
	// regresses upward under its own knob (-telemetry-tol,
	// BENCH_TELEMETRY_TOL). Unlike the raw ns columns it is
	// machine-normalized — both arms run on the gating machine — so its
	// slack prices measurement noise, not hardware variance.
	telemetryFields = map[string]bool{"telemetry_overhead_ratio": true}
	allocFields = map[string]bool{"flat_allocs_per_op": true, "wall_allocs_per_op": true}
	// Host-clock construction times (E23) regress upward under their own
	// slack: like the latency class they vary with the gating machine, but
	// a separate knob (-build-tol, BENCH_BUILD_TOL) lets CI track build
	// throughput independently of query latency.
	buildFields = map[string]bool{"build_ms": true, "freeze_ms": true}
	// Snapshot cold-start metrics (E24) regress upward under their own
	// knob (-restore-tol, BENCH_RESTORE_TOL): restore latency and the
	// heap a restore path pins. Both get a small absolute slack on top of
	// the relative one — the cheap rows (a sub-millisecond mmap, a few KB
	// of view bookkeeping) would otherwise fail on scheduler and
	// allocator noise alone.
	restoreFields  = map[string]bool{"restore_ms": true, "heap_kb": true}
	exactFields    = map[string]bool{"lower_bound": true}
	identityFields = map[string]bool{"n": true, "p": true, "batch": true, "procs_per_query": true, "par": true, "kind": true, "mode": true}
)

// compare returns one message per regression of cand against base (empty
// means the candidate is no worse than the baseline within tolerance).
// Improvements are not reported: they pass, and the baseline is refreshed
// by re-running `make bench-json` into bench/baselines.
func compare(base, cand benchFile, tol tolerance) []string {
	var regs []string
	fail := func(format string, args ...any) {
		regs = append(regs, fmt.Sprintf("%s: ", base.Experiment)+fmt.Sprintf(format, args...))
	}
	if base.Seed != cand.Seed {
		fail("seed mismatch: baseline %d, candidate %d (not comparable)", base.Seed, cand.Seed)
		return regs
	}
	if len(base.Rows) != len(cand.Rows) {
		fail("row count changed: baseline %d, candidate %d", len(base.Rows), len(cand.Rows))
		return regs
	}
	for i, br := range base.Rows {
		cr := cand.Rows[i]
		// The rows are emitted in deterministic program order; identity
		// fields double-check the alignment.
		for f := range identityFields {
			bv, bok := num(br[f])
			cv, cok := num(cr[f])
			if bok && cok {
				if bv != cv {
					fail("row %d: identity field %s changed (%v -> %v); regenerate the baseline", i, f, br[f], cr[f])
					return regs
				}
				continue
			}
			// Non-numeric identities (E24's kind/mode strings) compare
			// by their rendered value; absent on both sides is fine.
			if fmt.Sprint(br[f]) != fmt.Sprint(cr[f]) {
				fail("row %d: identity field %s changed (%v -> %v); regenerate the baseline", i, f, br[f], cr[f])
				return regs
			}
		}
		for _, f := range sortedKeys(br) {
			bv, ok := num(br[f])
			if !ok {
				continue
			}
			cv, ok := num(cr[f])
			if !ok {
				fail("row %d: field %s missing from candidate", i, f)
				continue
			}
			switch {
			case stepFields[f]:
				if cv > bv*(1+tol.Steps)+1e-9 {
					fail("row %d (%s): %s regressed %v -> %v (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Steps)
				}
			case throughputFields[f]:
				if cv < bv*(1-tol.Throughput)-1e-9 {
					fail("row %d (%s): %s regressed %.4f -> %.4f (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Throughput)
				}
			case latencyFields[f]:
				if cv > bv*(1+tol.Latency)+1e-9 {
					fail("row %d (%s): %s regressed %.1fns -> %.1fns (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Latency)
				}
			case buildFields[f]:
				if cv > bv*(1+tol.Build)+1e-9 {
					fail("row %d (%s): %s regressed %.2fms -> %.2fms (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Build)
				}
			case restoreFields[f]:
				// 1 ms / 64 KB absolute slack keeps the near-zero mmap
				// rows from failing on pure noise.
				slack := 1.0
				if f == "heap_kb" {
					slack = 64.0
				}
				if cv > bv*(1+tol.Restore)+slack {
					fail("row %d (%s): %s regressed %.3f -> %.3f (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Restore)
				}
			case telemetryFields[f]:
				if cv > bv*(1+tol.Telemetry)+1e-9 {
					fail("row %d (%s): %s regressed %.3fx -> %.3fx (tol %.0f%%)",
						i, rowKey(br), f, bv, cv, 100*tol.Telemetry)
				}
			case allocFields[f]:
				if cv > bv+1e-9 {
					fail("row %d (%s): %s regressed %.3f -> %.3f (allocations are exact: the hot path must not grow a malloc)",
						i, rowKey(br), f, bv, cv)
				}
			case exactFields[f]:
				if cv != bv {
					fail("row %d (%s): %s drifted %v -> %v (must be exact)",
						i, rowKey(br), f, bv, cv)
				}
			}
		}
	}
	return regs
}

// num coerces a decoded JSON value to float64.
func num(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// rowKey renders the identity fields present in a row for messages.
func rowKey(row map[string]any) string {
	s := ""
	for _, f := range []string{"n", "p", "batch", "procs_per_query", "par", "kind", "mode", "workload"} {
		if v, ok := row[f]; ok {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%v", f, v)
		}
	}
	return s
}

func sortedKeys(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
