package main

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"fraccascade/internal/engine"
	"fraccascade/internal/obs"
)

// initTelemetry wires the serving telemetry: the flight recorder, the
// rolling latency window, the latency SLO, and their /metrics families.
// With FlightRecords == 0 everything stays nil — the engine then takes no
// per-query clock readings and the recorder hot path is the 0-alloc nil
// no-op — and none of the families are registered, so scrapes don't show
// dead series.
func (s *server) initTelemetry() {
	// Correlation ids are minted whether or not the recorder is on — spans
	// and response headers carry them either way.
	s.bootID = fmt.Sprintf("%06x%04x", time.Now().UnixNano()&0xffffff, os.Getpid()&0xffff)
	if s.cfg.FlightRecords <= 0 {
		return
	}
	s.recorder = obs.NewFlightRecorder(obs.FlightRecorderConfig{Reservoir: s.cfg.FlightRecords})
	s.latWin = obs.NewWindowedHistogram(telemetrySubWindow, telemetrySubCount)
	s.slo = obs.NewSLO(s.cfg.SLOLatency, s.cfg.SLOObjective, telemetrySubWindow, telemetrySubCount)

	// Live windowed quantiles (nanoseconds over the last 2 minutes;
	// obs.NoData = -1 when the window is empty). One snapshot per gauge
	// read is fine: /metrics scrapes are seconds apart, not hot-path.
	s.reg.RegisterFunc("serve.latency.window.p50_ns", func() int64 { return s.latWin.Snapshot().P50 })
	s.reg.RegisterFunc("serve.latency.window.p95_ns", func() int64 { return s.latWin.Snapshot().P95 })
	s.reg.RegisterFunc("serve.latency.window.p99_ns", func() int64 { return s.latWin.Snapshot().P99 })
	s.reg.RegisterFunc("serve.latency.window.count", func() int64 { return s.latWin.Snapshot().Count })

	// SLO burn rates in milli-units (gauges are int64): 1000 = burning
	// the error budget exactly at the sustainable rate.
	s.reg.RegisterFunc("serve.slo.latency.burn_short_milli", func() int64 {
		return int64(s.slo.BurnRate(burnShortSubs) * 1000)
	})
	s.reg.RegisterFunc("serve.slo.latency.burn_long_milli", func() int64 {
		return int64(s.slo.BurnRate(0) * 1000)
	})
	s.reg.Gauge("serve.slo.latency.threshold_ns").Set(int64(s.cfg.SLOLatency))
	s.reg.Gauge("serve.slo.latency.objective_milli").Set(int64(s.cfg.SLOObjective * 1000))

	s.reg.RegisterFunc("serve.flight.recorded", func() int64 { return s.recorder.Stats().Total })
	s.reg.RegisterFunc("serve.flight.errored", func() int64 { return s.recorder.Stats().Errored })
	s.reg.RegisterFunc("serve.flight.dropped", func() int64 { return s.recorder.Stats().Dropped })
}

// requestID returns the request's correlation id: an inbound X-Request-ID
// (sanitized — header-safe bytes only, bounded length) or a freshly
// minted "cs-<boot>-<seq>".
func (s *server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	return fmt.Sprintf("cs-%s-%06d", s.bootID, s.reqSeq.Add(1))
}

// sanitizeRequestID keeps printable non-space ASCII and caps the length,
// so a hostile header can't smuggle control bytes into the echoed
// response header, the spans, or the slowlog.
func sanitizeRequestID(id string) string {
	const maxLen = 128
	if len(id) > maxLen {
		id = id[:maxLen]
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return ""
		}
	}
	return id
}

// observeAnswers feeds the rolling latency window and the SLO with each
// answer's host wall time. A no-op with telemetry disabled (the engine
// did not measure wall times either).
func (s *server) observeAnswers(answers []engine.Answer) {
	if s.latWin == nil {
		return
	}
	for i := range answers {
		s.latWin.Observe(answers[i].WallNS)
		s.slo.Observe(answers[i].WallNS)
	}
}

// handleSlowlog dumps the flight recorder as JSON, newest first. Query
// params: shard=N (default all), kind=catalog|point|spatial, min_ms=F
// (minimum wall milliseconds), errors=1 (failures only), limit=N
// (default 100, 0 = everything retained). With telemetry disabled the
// endpoint degrades to an empty enabled=false dump rather than erroring.
func (s *server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	type slowlogResponse struct {
		Enabled bool               `json:"enabled"`
		Total   int64              `json:"total"`
		Errored int64              `json:"errored"`
		Dropped int64              `json:"dropped"`
		Count   int                `json:"count"`
		Records []obs.FlightRecord `json:"records"`
	}
	resp := slowlogResponse{Records: []obs.FlightRecord{}}
	q := r.URL.Query()
	shard := -1
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad shard", http.StatusBadRequest)
			return
		}
		shard = n
	}
	minWall := int64(0)
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		minWall = int64(f * float64(time.Millisecond))
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	kind := q.Get("kind")
	errsOnly := q.Get("errors") == "1"

	if s.recorder != nil {
		st := s.recorder.Stats()
		resp.Enabled = true
		resp.Total, resp.Errored, resp.Dropped = st.Total, st.Errored, st.Dropped
		for _, rec := range s.recorder.Records() {
			if shard >= 0 && (rec.Kind != "catalog" || rec.Shard != shard) {
				continue
			}
			if kind != "" && rec.Kind != kind {
				continue
			}
			if rec.WallNS < minWall {
				continue
			}
			if errsOnly && rec.Err == "" {
				continue
			}
			resp.Records = append(resp.Records, rec)
			if limit > 0 && len(resp.Records) >= limit {
				break
			}
		}
	}
	resp.Count = len(resp.Records)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// handleStatusz serves a dependency-free HTML status page: lifecycle and
// restore provenance, live windowed quantiles, SLO burn rates, per-shard
// cache and finger-hit rates, and the recent slow and failed queries from
// the flight recorder. Everything dynamic is HTML-escaped; the page
// degrades gracefully while building, after a restart (records are
// in-memory only), and with telemetry disabled.
func (s *server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var stateName string
	switch s.state.Load() {
	case stateBuilding:
		stateName = "building"
	case stateDraining:
		stateName = "draining"
	default:
		stateName = "ready"
	}
	fmt.Fprintf(w, `<!doctype html><html><head><meta charset="utf-8"><title>coopserve statusz</title>
<style>
body{font-family:monospace;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.4em;border-bottom:1px solid #ccc}
table{border-collapse:collapse;margin:.4em 0}
td,th{border:1px solid #ccc;padding:.2em .6em;text-align:right}
th{background:#eee}td.l,th.l{text-align:left}
.warn{color:#b00}.ok{color:#070}.dim{color:#888}
</style></head><body>
<h1>coopserve <span class="%s">%s</span></h1>
<p>uptime %s · procs %d · batch %d · shards %d</p>
`,
		map[string]string{"ready": "ok"}[stateName], stateName,
		html.EscapeString(time.Since(s.started).Round(time.Second).String()),
		s.cfg.Procs, s.cfg.BatchSize, s.cfg.Shards)
	if s.restoreMode != "" {
		fmt.Fprintf(w, `<p>restore mode: <b>%s</b></p>`, html.EscapeString(s.restoreMode))
	}

	if s.eng == nil {
		fmt.Fprint(w, `<p class="warn">structures are still building; no engine yet.</p></body></html>`)
		return
	}

	m := s.eng.Metrics()
	fmt.Fprintf(w, `<h2>engine</h2>
<table><tr><th class="l">queries</th><th>batches</th><th>errors</th><th>steps total</th></tr>
<tr><td class="l">%d</td><td>%d</td><td>%d</td><td>%d</td></tr></table>
`, m.Queries, m.Batches, m.Errors, m.StepsTotal)

	if s.latWin == nil {
		fmt.Fprint(w, `<p class="dim">telemetry disabled (-flight-records=0): no live quantiles, SLO, or slowlog.</p></body></html>`)
		return
	}

	win := s.latWin.Snapshot()
	fmt.Fprintf(w, `<h2>latency (last %s window)</h2>
<table><tr><th class="l">count</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>
<tr><td class="l">%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr></table>
`, s.latWin.Window(), win.Count, fmtQuantile(win.P50), fmtQuantile(win.P95), fmtQuantile(win.P99), fmtQuantile(win.Max))

	good, total := s.slo.GoodTotal(0)
	burnShort, burnLong := s.slo.BurnRate(burnShortSubs), s.slo.BurnRate(0)
	cls := func(b float64) string {
		if b > 1 {
			return "warn"
		}
		return "ok"
	}
	fmt.Fprintf(w, `<h2>slo: %.1f%% under %s</h2>
<table><tr><th class="l">good/total</th><th>burn (30s)</th><th>burn (2m)</th></tr>
<tr><td class="l">%d/%d</td><td class="%s">%.2fx</td><td class="%s">%.2fx</td></tr></table>
`, s.cfg.SLOObjective*100, s.cfg.SLOLatency, good, total, cls(burnShort), burnShort, cls(burnLong), burnLong)

	fmt.Fprint(w, `<h2>entry caches</h2>
<table><tr><th class="l">shard</th><th>hits</th><th>misses</th><th>hit rate</th><th>finger hits</th><th>finger rate</th><th>size</th></tr>
`)
	for i := 0; i < s.eng.NumShards(); i++ {
		cs := s.eng.CacheStatsFor(i)
		fingerRate := 0.0
		if cs.Misses > 0 {
			fingerRate = float64(cs.FingerHits) / float64(cs.Misses)
		}
		fmt.Fprintf(w, `<tr><td class="l">%d</td><td>%d</td><td>%d</td><td>%.1f%%</td><td>%d</td><td>%.1f%%</td><td>%d</td></tr>
`, i, cs.Hits, cs.Misses, cs.HitRate()*100, cs.FingerHits, fingerRate*100, cs.Size)
	}
	fmt.Fprint(w, `</table>
`)

	st := s.recorder.Stats()
	fmt.Fprintf(w, `<h2>flight recorder</h2>
<p>recorded %d · errored %d · dropped %d (in-memory only; empty after restart)</p>
`, st.Total, st.Errored, st.Dropped)
	recs := s.recorder.Records()
	if len(recs) == 0 {
		fmt.Fprint(w, `<p class="dim">no queries recorded yet.</p>`)
	} else {
		slowest := append([]obs.FlightRecord(nil), recs...)
		sort.Slice(slowest, func(i, j int) bool { return slowest[i].WallNS > slowest[j].WallNS })
		if len(slowest) > 10 {
			slowest = slowest[:10]
		}
		writeRecordTable(w, "slowest recent queries", slowest)
		var failed []obs.FlightRecord
		for _, rec := range recs {
			if rec.Err != "" {
				failed = append(failed, rec)
				if len(failed) == 5 {
					break
				}
			}
		}
		if len(failed) > 0 {
			writeRecordTable(w, "recent failures", failed)
		}
	}
	fmt.Fprint(w, `<p class="dim"><a href="/debug/slowlog">/debug/slowlog</a> · <a href="/metrics">/metrics</a> · <a href="/spans?replay=1">/spans</a></p></body></html>`)
}

// writeRecordTable renders flight records as an HTML table (all dynamic
// strings escaped).
func writeRecordTable(w http.ResponseWriter, title string, recs []obs.FlightRecord) {
	fmt.Fprintf(w, `<h2>%s</h2>
<table><tr><th class="l">request id</th><th>kind</th><th>shard</th><th>wall</th><th>steps</th><th>cache</th><th>finger d</th><th class="l">error</th></tr>
`, html.EscapeString(title))
	for _, rec := range recs {
		fmt.Fprintf(w, `<tr><td class="l">%s</td><td>%s</td><td>%d</td><td>%s</td><td>%d</td><td>%s</td><td>%d</td><td class="l">%s</td></tr>
`,
			html.EscapeString(rec.RequestID), html.EscapeString(rec.Kind), rec.Shard,
			time.Duration(rec.WallNS), rec.Steps, html.EscapeString(rec.Cache),
			rec.FingerD, html.EscapeString(rec.Err))
	}
	fmt.Fprint(w, `</table>
`)
}

// fmtQuantile renders a windowed-quantile nanosecond value, mapping the
// obs.NoData sentinel to a dash instead of a negative duration.
func fmtQuantile(ns int64) string {
	if ns < 0 {
		return "–"
	}
	return time.Duration(ns).String()
}
