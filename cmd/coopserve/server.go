package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/engine"
	"fraccascade/internal/obs"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// serverConfig sizes the served structures and the engine.
type serverConfig struct {
	Seed      int64
	Procs     int
	BatchSize int
	Leaves    int // catalog-tree leaves per shard
	Entries   int // approximate catalog entries per shard
	Shards    int
	Regions   int // planar subdivision regions
	Tiles     int // spatial complex tiles
	RingSize  int // span flight-recorder capacity
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		Seed:      1,
		Procs:     4096,
		BatchSize: 32,
		Leaves:    1 << 7,
		Entries:   8000,
		Shards:    2,
		Regions:   64,
		Tiles:     60,
		RingSize:  4096,
	}
}

// server wires the batched engine and its observability surfaces behind
// HTTP: POST /query, Prometheus /metrics, health/readiness, pprof (host
// CPU/heap plus the simulated-steps profile), and JSONL span streaming.
type server struct {
	cfg    serverConfig
	eng    *engine.Engine
	reg    *obs.Registry
	ring   *obs.Ring
	stream *spanStream
	trees  []*tree.Tree
	sub    *subdivision.Subdivision
	cx     *spatial.Complex
	ready  atomic.Bool
}

// newServer builds the served structures (seeded, so a restart serves the
// same data) and the engine.
func newServer(cfg serverConfig) (*server, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &server{
		cfg:    cfg,
		reg:    obs.NewRegistry(),
		ring:   obs.NewRing(cfg.RingSize),
		stream: newSpanStream(),
	}
	var shards []engine.CatalogBackend
	for i := 0; i < cfg.Shards; i++ {
		bt, err := tree.NewBalancedBinary(cfg.Leaves)
		if err != nil {
			return nil, err
		}
		st, err := core.Build(bt, randomCatalogs(bt, cfg.Entries, rng), core.Config{})
		if err != nil {
			return nil, err
		}
		shards = append(shards, engine.StaticShard{St: st})
		s.trees = append(s.trees, bt)
	}
	sub, err := subdivision.Generate(cfg.Regions, 24, rng)
	if err != nil {
		return nil, err
	}
	pl, err := pointloc.Build(sub, core.Config{})
	if err != nil {
		return nil, err
	}
	s.sub = sub
	cx, err := spatial.Generate(cfg.Tiles, 4, rng)
	if err != nil {
		return nil, err
	}
	sp, err := spatial.NewLocator(cx)
	if err != nil {
		return nil, err
	}
	s.cx = cx
	s.eng, err = engine.New(engine.Config{
		Procs:     cfg.Procs,
		BatchSize: cfg.BatchSize,
		Obs:       s.reg,
		Tracer:    obs.Fanout(s.ring, s.stream),
	}, shards, pl, sp)
	if err != nil {
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

// randomCatalogs builds one random catalog per node totalling roughly
// `total` entries, with skewed per-node sizes (the same workload shape the
// benchmarks use).
func randomCatalogs(t *tree.Tree, total int, rng *rand.Rand) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	for v := range cats {
		var size int
		switch rng.Intn(3) {
		case 0:
			size = rng.Intn(4)
		case 1:
			size = rng.Intn(2*total/(t.N()+1) + 1)
		default:
			size = rng.Intn(4 * total / (t.N() + 1))
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(total * 8))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

// routes builds the HTTP mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/pprof/steps", s.handleStepsProfile)
	return mux
}

// wireQuery is the POST /query request item. Kind selects the fields read:
// "catalog" uses shard/key/leaf (the server resolves the root path to the
// leaf), "point" uses x/y, "spatial" uses x/y/z.
type wireQuery struct {
	Kind  string `json:"kind"`
	Shard int    `json:"shard"`
	Key   int64  `json:"key"`
	Leaf  int64  `json:"leaf"`
	X     int64  `json:"x"`
	Y     int64  `json:"y"`
	Z     int64  `json:"z"`
}

// wireResult is one per-node catalog answer.
type wireResult struct {
	Node    int64 `json:"node"`
	Key     int64 `json:"key"`
	Payload int64 `json:"payload"`
}

// wireAnswer is one query's response entry.
type wireAnswer struct {
	Kind       string         `json:"kind"`
	P          int            `json:"p"`
	Steps      int            `json:"steps"`
	Rounds     int            `json:"rounds"`
	Cache      string         `json:"cache,omitempty"`
	PhaseSteps map[string]int `json:"phase_steps,omitempty"`
	Results    []wireResult   `json:"results,omitempty"`
	Region     int            `json:"region,omitempty"`
	Cell       int            `json:"cell,omitempty"`
	Err        string         `json:"err,omitempty"`
}

// wireBatchReport mirrors engine.BatchReport plus throughput.
type wireBatchReport struct {
	B           int     `json:"b"`
	PShare      int     `json:"p_share"`
	Steps       int     `json:"steps"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Errors      int     `json:"errors"`
	Throughput  float64 `json:"queries_per_step"`
}

type queryRequest struct {
	Queries []wireQuery `json:"queries"`
}

type queryResponse struct {
	Batches []wireBatchReport `json:"batches"`
	Answers []wireAnswer      `json:"answers"`
}

// handleQuery executes a batch of queries. The request body is a
// queryRequest; queries are executed through the engine's batched path in
// groups of the configured batch size.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty query list", http.StatusBadRequest)
		return
	}
	qs := make([]engine.Query, 0, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := s.toEngineQuery(wq)
		if err != nil {
			http.Error(w, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		qs = append(qs, q)
	}
	var resp queryResponse
	for lo := 0; lo < len(qs); lo += s.cfg.BatchSize {
		hi := min(lo+s.cfg.BatchSize, len(qs))
		answers, rep, err := s.eng.ExecuteBatch(qs[lo:hi])
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Batches = append(resp.Batches, wireBatchReport{
			B: rep.B, PShare: rep.PShare, Steps: rep.Steps,
			CacheHits: rep.CacheHits, CacheMisses: rep.CacheMisses,
			Errors: rep.Errors, Throughput: rep.Throughput(),
		})
		for i := range answers {
			resp.Answers = append(resp.Answers, toWireAnswer(&answers[i]))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Too late for an error status; the client sees the broken body.
		return
	}
}

// toEngineQuery validates and converts one wire query.
func (s *server) toEngineQuery(wq wireQuery) (engine.Query, error) {
	switch wq.Kind {
	case "catalog":
		if wq.Shard < 0 || wq.Shard >= len(s.trees) {
			return engine.Query{}, fmt.Errorf("shard %d out of range [0, %d)", wq.Shard, len(s.trees))
		}
		t := s.trees[wq.Shard]
		if wq.Leaf < 0 || wq.Leaf >= int64(t.N()) {
			return engine.Query{}, fmt.Errorf("leaf %d out of range [0, %d)", wq.Leaf, t.N())
		}
		return engine.CatalogQuery(wq.Shard, catalog.Key(wq.Key), t.RootPath(tree.NodeID(wq.Leaf))), nil
	case "point":
		return engine.PointQuery(geomPoint(wq.X, wq.Y)), nil
	case "spatial":
		return engine.SpatialQuery(wq.X, wq.Y, wq.Z), nil
	default:
		return engine.Query{}, fmt.Errorf("unknown kind %q (want catalog, point, or spatial)", wq.Kind)
	}
}

func toWireAnswer(a *engine.Answer) wireAnswer {
	wa := wireAnswer{
		Kind:       a.Query.Kind.String(),
		P:          a.P,
		Steps:      a.Steps,
		Rounds:     a.Rounds,
		PhaseSteps: a.PhaseSteps,
		Region:     a.Region,
		Cell:       a.Cell,
	}
	if a.Query.Kind == engine.KindCatalog && a.Err == nil {
		switch {
		case a.CacheHit:
			wa.Cache = "hit"
		case a.CacheStale:
			wa.Cache = "stale"
		default:
			wa.Cache = "miss"
		}
	}
	for _, r := range a.Results {
		wa.Results = append(wa.Results, wireResult{Node: int64(r.Node), Key: int64(r.Key), Payload: int64(r.Payload)})
	}
	if a.Err != nil {
		wa.Err = a.Err.Error()
	}
	return wa
}

// handleMetrics serves the registry snapshot in the Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "structures not built", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStepsProfile serves a pprof profile of *simulated parallel time*:
// one sample per engine phase, value = cumulative engine.phase.<label>.steps
// from the registry, stack = the phase path. `go tool pprof -top` (and
// flamegraph UIs) then break simulated steps down by phase exactly like
// host CPU profiles break down nanoseconds.
func (s *server) handleStepsProfile(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	var samples []obs.ProfileSample
	var labels []string
	steps := map[string]int64{}
	for name, v := range snap.Counters {
		label, ok := strings.CutPrefix(name, "engine.phase.")
		if !ok {
			continue
		}
		label, ok = strings.CutSuffix(label, ".steps")
		if !ok || v == 0 {
			continue
		}
		steps[label] = v
		labels = append(labels, label)
	}
	// Sorted for deterministic output.
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			if labels[j] < labels[i] {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
	}
	for _, label := range labels {
		samples = append(samples, obs.ProfileSample{
			Stack:  strings.Split(label, "/"),
			Values: []int64{steps[label]},
		})
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="steps.pb.gz"`)
	if err := obs.WriteProfile(w, [][2]string{{"steps", "count"}}, samples); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSpans streams spans as JSONL (one span per line). Query params:
// replay=1 first dumps the ring buffer's retained history and closes
// (add follow=1 to keep tailing live spans afterwards); limit=N closes
// the stream after N spans (0 = no cap).
func (s *server) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sent := 0
	emit := func(sp obs.Span) bool {
		if err := enc.Encode(sp); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		return limit == 0 || sent < limit
	}
	replay := r.URL.Query().Get("replay") == "1"
	if replay {
		for _, sp := range s.ring.Spans() {
			if !emit(sp) {
				return
			}
		}
		// A pure replay closes here; tailing past history is opt-in so
		// curl and tests terminate without killing the connection.
		if r.URL.Query().Get("follow") != "1" {
			return
		}
	}
	ch := s.stream.subscribe()
	defer s.stream.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case sp := <-ch:
			if !emit(sp) {
				return
			}
		}
	}
}
