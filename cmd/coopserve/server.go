package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/engine"
	"fraccascade/internal/flat"
	"fraccascade/internal/obs"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/snapshot"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// serverConfig sizes the served structures and the engine, and configures
// the hardened request lifecycle. The zero values of the lifecycle knobs
// disable them (no snapshot, no per-request deadline, unlimited inflight).
type serverConfig struct {
	Seed      int64
	Procs     int
	BatchSize int
	Leaves    int // catalog-tree leaves per shard
	Entries   int // approximate catalog entries per shard
	Shards    int
	Regions   int // planar subdivision regions
	Tiles     int // spatial complex tiles
	RingSize  int // span flight-recorder capacity

	Dynamic          bool          // serve dynamic (updatable) catalog shards
	Flat             bool          // serve catalog shards from the frozen flat layout
	BuildParallelism int           // host workers for builds, freezes, and snapshot restores (0 = all cores)
	FingerCache      bool          // distance-sensitive finger search from cached entries
	SnapshotPath     string        // load-on-start / save-on-build / save-on-drain path
	RequestTimeout   time.Duration // per-request deadline on POST /query (0 = none)
	MaxInflight      int           // admission-control cap on concurrent queries (0 = unlimited)
	DrainTimeout     time.Duration // how long SIGTERM waits for in-flight queries

	// FlightRecords sizes the per-query flight recorder's uniform
	// reservoir (errors and slowest-K pools ride along at fixed sizes);
	// 0 disables the recorder, per-query wall timing, and the rolling
	// latency windows wholesale — the engine hot path then takes no clock
	// readings and records nothing (the 0-alloc disabled path).
	FlightRecords int
	// SLOLatency and SLOObjective define the latency SLO surfaced on
	// /metrics and /statusz: SLOObjective (e.g. 0.99) of queries must
	// finish within SLOLatency. Only meaningful with FlightRecords > 0.
	SLOLatency   time.Duration
	SLOObjective float64
}

// Rolling-window geometry: 12 sub-windows of 10s give a 2-minute visible
// window for the live quantiles; the short SLO burn window is the last 3
// sub-windows (30s), the long one the full 2 minutes.
const (
	telemetrySubWindow = 10 * time.Second
	telemetrySubCount  = 12
	burnShortSubs      = 3
)

func defaultServerConfig() serverConfig {
	return serverConfig{
		Seed:           1,
		Procs:          4096,
		BatchSize:      32,
		Leaves:         1 << 7,
		Entries:        8000,
		Shards:         2,
		Regions:        64,
		Tiles:          60,
		RingSize:       4096,
		RequestTimeout: 10 * time.Second,
		MaxInflight:    256,
		DrainTimeout:   10 * time.Second,
		FlightRecords:  2048,
		SLOLatency:     250 * time.Millisecond,
		SLOObjective:   0.99,
	}
}

// Lifecycle states: the server starts building, flips to ready when the
// structures are live, and moves to draining on SIGTERM, never back.
// Overload is not a state — it is ready plus a saturated inflight gauge.
const (
	stateBuilding int32 = iota
	stateReady
	stateDraining
)

// server wires the batched engine and its observability surfaces behind
// HTTP: POST /query, Prometheus /metrics, health/readiness, pprof (host
// CPU/heap plus the simulated-steps profile), and JSONL span streaming.
// Requests pass a lifecycle gate (building/draining → 503), an admission
// gate (inflight cap → 503 + Retry-After), and run under a per-request
// deadline threaded into the engine's context-aware search path.
type server struct {
	cfg    serverConfig
	eng    *engine.Engine
	reg    *obs.Registry
	ring   *obs.Ring
	stream *spanStream
	shards []engine.CatalogBackend
	// flatShards holds the flat wrappers the engine serves from when
	// cfg.Flat is set; s.shards keeps the inner (snapshotable) backends.
	flatShards []*engine.FlatShard
	trees      []*tree.Tree
	sub        *subdivision.Subdivision
	cx         *spatial.Complex

	state    atomic.Int32
	inflight atomic.Int64
	// loadedSnapshot reports whether build restored the catalog shards from
	// cfg.SnapshotPath instead of rebuilding them from the seed.
	loadedSnapshot bool
	// flatView is the opened (possibly memory-mapped) sidecar the frozen
	// backends were preloaded from. Zero-copy structures alias its pages,
	// so it stays open for the server's lifetime; nil when the layouts
	// were refrozen or read into private memory.
	flatView *snapshot.FlatView
	// restoreMode records how the frozen layouts came to be under flat
	// serving: "mmap", "deserialized", or "refrozen" (empty without
	// -flat). Written before the ready flip; surfaced on /readyz and as
	// the serve.restore_mode gauge.
	restoreMode string

	obsShed        *obs.Counter // admission-control 503s
	obsPanics      *obs.Counter // handler panics recovered to 500s
	obsTimeouts    *obs.Counter // per-request deadlines fired
	obsCanceled    *obs.Counter // client disconnects observed mid-query
	obsSnapSave    *obs.Counter // snapshots written
	obsSnapLoad    *obs.Counter // snapshots restored on start
	obsRestoreMode *obs.Gauge   // 2 = mmap, 1 = deserialized, 0 = refrozen
	obsQueryErrs   *obs.Counter // per-query engine failures (sums BatchReport.Errors)

	// Serving telemetry (all nil with FlightRecords == 0): the per-query
	// flight recorder behind /debug/slowlog and /statusz, and the rolling
	// latency window + SLO behind the live quantile and burn-rate gauges.
	recorder *obs.FlightRecorder
	latWin   *obs.WindowedHistogram
	slo      *obs.SLO
	started  time.Time
	reqSeq   atomic.Uint64
	bootID   string
}

// newServerShell creates the server with its observability plumbing but no
// structures: handlers are servable immediately (reporting "building") while
// build runs, typically in a goroutine.
func newServerShell(cfg serverConfig) *server {
	s := &server{
		cfg:    cfg,
		reg:    obs.NewRegistry(),
		ring:   obs.NewRing(cfg.RingSize),
		stream: newSpanStream(),
	}
	s.state.Store(stateBuilding)
	s.started = time.Now()
	s.obsShed = s.reg.Counter("serve.shed")
	s.obsPanics = s.reg.Counter("serve.panics")
	s.obsTimeouts = s.reg.Counter("serve.timeouts")
	s.obsCanceled = s.reg.Counter("serve.canceled")
	s.obsSnapSave = s.reg.Counter("serve.snapshot.saves")
	s.obsSnapLoad = s.reg.Counter("serve.snapshot.loads")
	s.obsRestoreMode = s.reg.Gauge("serve.restore_mode")
	s.obsQueryErrs = s.reg.Counter("serve.query.errors")
	s.initTelemetry()
	return s
}

// newServer builds the served structures (seeded, so a restart serves the
// same data) and the engine, synchronously.
func newServer(cfg serverConfig) (*server, error) {
	s := newServerShell(cfg)
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// build constructs or restores the catalog shards, builds the geometric
// locators, wires the engine, and flips the server to ready. The catalog
// shards and the geometry draw from independently seeded streams so a
// snapshot restore (which skips shard generation) serves the exact same
// subdivision and complex as a from-scratch build.
func (s *server) build() error {
	shards, trees, loaded := s.restoreShards()
	if !loaded {
		var err error
		shards, trees, err = buildShards(s.cfg)
		if err != nil {
			return err
		}
	}
	s.shards, s.trees = shards, trees

	// Flat serving: the engine gets the frozen wrappers; s.shards keeps the
	// inner backends so the snapshot path is unchanged. The sidecar — when
	// the shards were just restored and one of the matching generation sits
	// next to the snapshot — is opened once (memory-mapped where the
	// platform allows) and its blobs routed to the backends by kind.
	engineShards := shards
	var catBlobs [][]byte
	var spatialBlob []byte
	if s.cfg.Flat {
		catBlobs, spatialBlob = s.openFlatSidecar(loaded, len(shards))
		wrapped, err := s.wrapFlat(shards, catBlobs)
		if err != nil {
			return err
		}
		engineShards = wrapped
	}

	geomRNG := rand.New(rand.NewSource(s.cfg.Seed ^ 0x67656f6d)) // "geom"
	sub, err := subdivision.Generate(s.cfg.Regions, 24, geomRNG)
	if err != nil {
		return err
	}
	pl, err := pointloc.Build(sub, core.Config{Parallelism: s.cfg.BuildParallelism})
	if err != nil {
		return err
	}
	s.sub = sub
	cx, err := spatial.Generate(s.cfg.Tiles, 4, geomRNG)
	if err != nil {
		return err
	}
	sp, err := spatial.NewLocatorParallel(cx, s.cfg.BuildParallelism)
	if err != nil {
		return err
	}
	s.cx = cx
	var frozenSp *spatial.Frozen
	if s.cfg.Flat && spatialBlob != nil {
		frozenSp = preloadFlatSpatial(sp, cx, spatialBlob)
	}
	s.eng, err = engine.New(engine.Config{
		Procs:            s.cfg.Procs,
		BatchSize:        s.cfg.BatchSize,
		BuildParallelism: s.cfg.BuildParallelism,
		FingerCache:      s.cfg.FingerCache,
		Obs:              s.reg,
		Tracer:           obs.Fanout(s.ring, s.stream),
		Recorder:         s.recorder,
		Flat:             s.cfg.Flat,
		FrozenSpatial:    frozenSp,
	}, engineShards, pl, sp)
	if err != nil {
		return err
	}
	s.setRestoreMode()
	if !loaded {
		// Save-on-build: the next restart skips the shard rebuild entirely.
		if err := s.saveSnapshot(); err != nil {
			log.Printf("coopserve: snapshot save failed (serving anyway): %v", err)
		}
	}
	s.state.Store(stateReady)
	return nil
}

// setRestoreMode classifies how the frozen layouts were restored and
// publishes it ("mmap" > "deserialized" > "refrozen": any backend that had
// to refreeze demotes the whole restore). A no-op without flat serving.
func (s *server) setRestoreMode() {
	if !s.cfg.Flat {
		return
	}
	preloaded := s.flatView != nil
	for _, fb := range s.eng.FrozenBackends() {
		if fb.Refreezes() != 0 {
			preloaded = false
		}
	}
	switch {
	case preloaded && s.flatView.Mapped:
		s.restoreMode = "mmap"
		s.obsRestoreMode.Set(2)
	case preloaded:
		s.restoreMode = "deserialized"
		s.obsRestoreMode.Set(1)
	default:
		s.restoreMode = "refrozen"
		s.obsRestoreMode.Set(0)
	}
}

// buildShards generates the catalog shards from the seed.
func buildShards(cfg serverConfig) ([]engine.CatalogBackend, []*tree.Tree, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var shards []engine.CatalogBackend
	var trees []*tree.Tree
	for i := 0; i < cfg.Shards; i++ {
		bt, err := tree.NewBalancedBinary(cfg.Leaves)
		if err != nil {
			return nil, nil, err
		}
		cats := randomCatalogs(bt, cfg.Entries, rng)
		coreCfg := core.Config{Parallelism: cfg.BuildParallelism}
		if cfg.Dynamic {
			d, err := dynamic.New(bt, cats, coreCfg, 0)
			if err != nil {
				return nil, nil, err
			}
			shards = append(shards, engine.DynamicShard{D: d})
		} else {
			st, err := core.Build(bt, cats, coreCfg)
			if err != nil {
				return nil, nil, err
			}
			shards = append(shards, engine.StaticShard{St: st})
		}
		trees = append(trees, bt)
	}
	return shards, trees, nil
}

// restoreShards attempts to load the catalog shards from the configured
// snapshot. Any failure — missing file, corruption, or a shape that does
// not match the flags — logs and falls back to rebuild-from-source; it
// never aborts startup.
func (s *server) restoreShards() ([]engine.CatalogBackend, []*tree.Tree, bool) {
	if s.cfg.SnapshotPath == "" {
		return nil, nil, false
	}
	store, err := snapshot.LoadParallel(s.cfg.SnapshotPath, s.cfg.BuildParallelism)
	if err != nil {
		log.Printf("coopserve: snapshot %s unusable, rebuilding: %v", s.cfg.SnapshotPath, err)
		return nil, nil, false
	}
	if len(store.Shards) != s.cfg.Shards {
		log.Printf("coopserve: snapshot has %d shards, flags want %d; rebuilding", len(store.Shards), s.cfg.Shards)
		return nil, nil, false
	}
	wantKind := snapshot.KindStatic
	if s.cfg.Dynamic {
		wantKind = snapshot.KindDynamic
	}
	for i, sh := range store.Shards {
		if sh.Kind != wantKind {
			log.Printf("coopserve: snapshot shard %d has kind %d, flags want %d; rebuilding", i, sh.Kind, wantKind)
			return nil, nil, false
		}
	}
	backends, err := engine.BackendsFromStore(store)
	if err != nil {
		log.Printf("coopserve: snapshot %s unusable, rebuilding: %v", s.cfg.SnapshotPath, err)
		return nil, nil, false
	}
	trees := make([]*tree.Tree, len(backends))
	for i, be := range backends {
		trees[i] = shardTree(be)
	}
	s.loadedSnapshot = true
	s.obsSnapLoad.Inc()
	return backends, trees, true
}

// shardTree returns the catalog tree behind a snapshotable backend.
func shardTree(be engine.CatalogBackend) *tree.Tree {
	switch b := be.(type) {
	case engine.StaticShard:
		return b.St.Tree()
	case engine.DynamicShard:
		return b.D.Static().Tree()
	default:
		panic(fmt.Sprintf("coopserve: unsnapshotable backend %T", be))
	}
}

// snapshotStore assembles the persistable view of the catalog shards. The
// store generation sums the dynamic shard generations, so it advances with
// every flush and a freshly loaded snapshot is distinguishable from stale
// ones.
func (s *server) snapshotStore() (*snapshot.Store, error) {
	st := &snapshot.Store{}
	for i, be := range s.shards {
		switch b := be.(type) {
		case engine.StaticShard:
			st.Shards = append(st.Shards, snapshot.Shard{Kind: snapshot.KindStatic, Static: b.St})
		case engine.DynamicShard:
			st.Shards = append(st.Shards, snapshot.Shard{Kind: snapshot.KindDynamic, Dynamic: b.D})
			st.Generation += b.D.Generation()
		default:
			return nil, fmt.Errorf("coopserve: shard %d: unsnapshotable backend %T", i, be)
		}
	}
	return st, nil
}

// saveSnapshot writes the current shard state crash-safely to the
// configured path; a no-op without one (or before the shards exist). Under
// flat serving it also writes the frozen-layout sidecar next to the
// snapshot; a sidecar failure only logs — it is a cache, and the loader
// refreezes without one.
func (s *server) saveSnapshot() error {
	if s.cfg.SnapshotPath == "" || s.shards == nil {
		return nil
	}
	st, err := s.snapshotStore()
	if err != nil {
		return err
	}
	if err := snapshot.Save(s.cfg.SnapshotPath, st); err != nil {
		return err
	}
	s.obsSnapSave.Inc()
	if err := s.saveFlatSidecar(); err != nil {
		log.Printf("coopserve: flat sidecar save failed (snapshot itself is intact): %v", err)
	}
	return nil
}

// flatSidecarPath locates the frozen-layout sidecar next to the snapshot.
func (s *server) flatSidecarPath() string {
	if s.cfg.SnapshotPath == "" {
		return ""
	}
	return s.cfg.SnapshotPath + ".flat"
}

// shardsGeneration sums the shard generations — the same quantity the
// snapshot store records, used to pair a sidecar with its snapshot.
func shardsGeneration(shards []engine.CatalogBackend) uint64 {
	var g uint64
	for _, be := range shards {
		g += be.Generation()
	}
	return g
}

// openFlatSidecar opens the sidecar next to the snapshot — memory-mapped
// where the platform allows — and splits its blobs by kind: the catalog
// shard blobs in shard order plus the spatial locator's blob. Any defect
// (missing, corrupt, generation skew, wrong shard count, unknown kinds)
// logs, discards the view, and returns nils: every backend then refreezes
// from its pointer structure. On success the view is retained on s for the
// server's lifetime, because zero-copy layouts serve straight out of it.
func (s *server) openFlatSidecar(fromSnapshot bool, nShards int) (catBlobs [][]byte, spatialBlob []byte) {
	path := s.flatSidecarPath()
	if path == "" || !fromSnapshot {
		return nil, nil
	}
	v, err := snapshot.OpenFlat(path)
	if err != nil {
		log.Printf("coopserve: flat sidecar %s unusable, refreezing: %v", path, err)
		return nil, nil
	}
	if v.Generation != shardsGeneration(s.shards) {
		log.Printf("coopserve: flat sidecar %s is for another snapshot (generation %d); refreezing", path, v.Generation)
		_ = v.Close()
		return nil, nil
	}
	for _, b := range v.Blobs {
		switch b.Kind {
		case flat.StoreKindCatalog:
			catBlobs = append(catBlobs, b.Data)
		case flat.StoreKindSpatial:
			spatialBlob = b.Data
		default:
			log.Printf("coopserve: flat sidecar %s has a blob of unknown kind %d; refreezing", path, b.Kind)
			_ = v.Close()
			return nil, nil
		}
	}
	if len(catBlobs) != nShards {
		log.Printf("coopserve: flat sidecar %s has %d catalog blobs, want %d; refreezing", path, len(catBlobs), nShards)
		_ = v.Close()
		return nil, nil
	}
	s.flatView = v
	return catBlobs, spatialBlob
}

// wrapFlat wraps every shard for flat serving, preloading the frozen
// layout from the matching sidecar blob when one was opened; any defect
// (corruption, shape or content mismatch) falls back to freezing from the
// pointer structures.
func (s *server) wrapFlat(shards []engine.CatalogBackend, blobs [][]byte) ([]engine.CatalogBackend, error) {
	out := make([]engine.CatalogBackend, len(shards))
	s.flatShards = make([]*engine.FlatShard, len(shards))
	for i, be := range shards {
		var fs *engine.FlatShard
		if blobs != nil {
			fs = preloadFlatShard(i, be, blobs[i])
		}
		if fs == nil {
			var err error
			fs, err = engine.NewFlatShardParallel(be, s.cfg.BuildParallelism)
			if err != nil {
				return nil, err
			}
		}
		s.flatShards[i] = fs
		out[i] = fs
	}
	return out, nil
}

// preloadFlatShard decodes one sidecar blob — zero-copy, so a mapped blob
// serves from the page cache — and wraps the backend around it,
// spot-checking entry probes against the live catalogs so a sidecar
// swapped in from a different dataset is rejected rather than served. Any
// failure returns nil and the caller refreezes.
func preloadFlatShard(i int, be engine.CatalogBackend, blob []byte) *engine.FlatShard {
	f, _, err := flat.OpenStructure(blob)
	if err != nil {
		log.Printf("coopserve: flat sidecar shard %d undecodable, refreezing: %v", i, err)
		return nil
	}
	fs, err := engine.NewFlatShardFrom(be, f)
	if err != nil {
		log.Printf("coopserve: flat sidecar shard %d rejected, refreezing: %v", i, err)
		return nil
	}
	root := be.Root()
	for _, y := range []catalog.Key{0, 1, 1 << 10, 1 << 20, catalog.PlusInf} {
		if f.EntryProbe(root, y) != be.EntryProbe(root, y) {
			log.Printf("coopserve: flat sidecar shard %d disagrees with the snapshot at key %d, refreezing", i, y)
			return nil
		}
	}
	return fs
}

// preloadFlatSpatial decodes the sidecar's spatial blob — zero-copy, like
// the catalog shards — and spot-checks a few located cells against the
// freshly built locator so a sidecar from a different complex is rejected.
// Any failure returns nil and the engine freezes the locator itself.
func preloadFlatSpatial(sp *spatial.Locator, cx *spatial.Complex, blob []byte) *spatial.Frozen {
	f, _, err := spatial.OpenFrozen(blob)
	if err != nil {
		log.Printf("coopserve: flat sidecar spatial blob undecodable, refreezing: %v", err)
		return nil
	}
	if f.Cells() != sp.Cells() {
		log.Printf("coopserve: flat sidecar spatial blob has %d cells, locator has %d; refreezing", f.Cells(), sp.Cells())
		return nil
	}
	rng := rand.New(rand.NewSource(0x73706f74)) // "spot"
	sc := f.NewScratch()
	for i := 0; i < 5; i++ {
		x, y, z, _ := cx.RandomInteriorPoint(rng)
		wantCell, wantStats, wantErr := sp.LocateCoop(x, y, z, 64)
		gotCell, gotStats, gotErr := f.LocateCoopInto(x, y, z, 64, sc)
		if gotCell != wantCell || gotStats != wantStats || (gotErr == nil) != (wantErr == nil) {
			log.Printf("coopserve: flat sidecar spatial blob disagrees with the locator at (%d,%d,%d), refreezing", x, y, z)
			return nil
		}
	}
	return f
}

// saveFlatSidecar persists the current frozen layouts — every backend the
// engine serves flat, catalog shards and spatial locator alike — next to
// the snapshot; a no-op unless flat serving and snapshotting are both on.
func (s *server) saveFlatSidecar() error {
	path := s.flatSidecarPath()
	if path == "" || s.eng == nil {
		return nil
	}
	fbs := s.eng.FrozenBackends()
	if len(fbs) == 0 {
		return nil
	}
	blobs := make([]snapshot.FlatBlob, len(fbs))
	for i, fb := range fbs {
		b, err := fb.FrozenBlob()
		if err != nil {
			return err
		}
		blobs[i] = snapshot.FlatBlob{Kind: fb.FrozenKind(), Data: b}
	}
	return snapshot.SaveFlat(path, shardsGeneration(s.shards), blobs)
}

// beginDrain moves the server to draining: new queries are refused with
// 503 while in-flight ones run to completion.
func (s *server) beginDrain() { s.state.Store(stateDraining) }

// awaitDrain polls until no queries are in flight or the timeout lapses,
// reporting whether the server drained fully. (http.Server.Shutdown
// provides the connection-level guarantee; this bounds the wait and lets
// the final snapshot observe a quiesced engine.)
func (s *server) awaitDrain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.inflight.Load() == 0 {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// randomCatalogs builds one random catalog per node totalling roughly
// `total` entries, with skewed per-node sizes (the same workload shape the
// benchmarks use).
func randomCatalogs(t *tree.Tree, total int, rng *rand.Rand) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	for v := range cats {
		var size int
		switch rng.Intn(3) {
		case 0:
			size = rng.Intn(4)
		case 1:
			size = rng.Intn(2*total/(t.N()+1) + 1)
		default:
			size = rng.Intn(4 * total / (t.N() + 1))
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(total * 8))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

// handler is the servable root: the mux wrapped in panic recovery.
func (s *server) handler() http.Handler { return s.withRecovery(s.routes()) }

// withRecovery converts a handler panic into a 500 and a counter instead of
// tearing down the connection (and, under some servers, the process).
func (s *server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.obsPanics.Inc()
				log.Printf("coopserve: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// unavailable writes the load-shedding 503: the reason in the body and a
// Retry-After so well-behaved clients back off instead of hammering.
func unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, reason, http.StatusServiceUnavailable)
}

// routes builds the HTTP mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/pprof/steps", s.handleStepsProfile)
	return mux
}

// wireQuery is the POST /query request item. Kind selects the fields read:
// "catalog" uses shard/key/leaf (the server resolves the root path to the
// leaf), "point" uses x/y, "spatial" uses x/y/z.
type wireQuery struct {
	Kind  string `json:"kind"`
	Shard int    `json:"shard"`
	Key   int64  `json:"key"`
	Leaf  int64  `json:"leaf"`
	X     int64  `json:"x"`
	Y     int64  `json:"y"`
	Z     int64  `json:"z"`
}

// wireResult is one per-node catalog answer.
type wireResult struct {
	Node    int64 `json:"node"`
	Key     int64 `json:"key"`
	Payload int64 `json:"payload"`
}

// wireAnswer is one query's response entry.
type wireAnswer struct {
	Kind       string         `json:"kind"`
	P          int            `json:"p"`
	Steps      int            `json:"steps"`
	Rounds     int            `json:"rounds"`
	Cache      string         `json:"cache,omitempty"`
	PhaseSteps map[string]int `json:"phase_steps,omitempty"`
	Results    []wireResult   `json:"results,omitempty"`
	Region     int            `json:"region,omitempty"`
	Cell       int            `json:"cell,omitempty"`
	Err        string         `json:"err,omitempty"`
}

// wireBatchReport mirrors engine.BatchReport plus throughput.
type wireBatchReport struct {
	B           int     `json:"b"`
	PShare      int     `json:"p_share"`
	Steps       int     `json:"steps"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Errors      int     `json:"errors"`
	Throughput  float64 `json:"queries_per_step"`
}

type queryRequest struct {
	Queries []wireQuery `json:"queries"`
}

type queryResponse struct {
	// RequestID is the correlation id (inbound X-Request-ID honored,
	// minted otherwise) — also echoed as the X-Request-ID response header
	// and stamped on every span and flight record of the request.
	RequestID string            `json:"request_id"`
	Batches   []wireBatchReport `json:"batches"`
	Answers   []wireAnswer      `json:"answers"`
}

// handleQuery executes a batch of queries. The request body is a
// queryRequest; queries are executed through the engine's batched path in
// groups of the configured batch size.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	switch s.state.Load() {
	case stateBuilding:
		unavailable(w, "building")
		return
	case stateDraining:
		unavailable(w, "draining")
		return
	}
	// Admission control: count the request in flight for the drain path and
	// shed it if the cap is already saturated.
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if max := s.cfg.MaxInflight; max > 0 && n > int64(max) {
		s.obsShed.Inc()
		unavailable(w, "overloaded")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty query list", http.StatusBadRequest)
		return
	}
	qs := make([]engine.Query, 0, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := s.toEngineQuery(wq)
		if err != nil {
			http.Error(w, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		qs = append(qs, q)
	}
	// The request context carries the client disconnect; the configured
	// per-request deadline stacks on top. Both propagate into the engine's
	// context-aware search path, as does the correlation id (inbound
	// X-Request-ID honored, minted otherwise) that every span and flight
	// record of this request will carry.
	reqID := s.requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	ctx := obs.WithRequestID(r.Context(), reqID)
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	resp := queryResponse{RequestID: reqID}
	for lo := 0; lo < len(qs); lo += s.cfg.BatchSize {
		hi := min(lo+s.cfg.BatchSize, len(qs))
		answers, rep, err := s.eng.ExecuteBatchContext(ctx, qs[lo:hi])
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Failure counters and latency windows are fed before the
		// context-expiry early return so /metrics, /spans, and
		// /debug/slowlog agree on failure counts even for batches whose
		// response was never written.
		s.obsQueryErrs.Add(int64(rep.Errors))
		s.observeAnswers(answers)
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.obsTimeouts.Inc()
				http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
			} else {
				// Client gone: nobody is listening for a status.
				s.obsCanceled.Inc()
			}
			return
		}
		resp.Batches = append(resp.Batches, wireBatchReport{
			B: rep.B, PShare: rep.PShare, Steps: rep.Steps,
			CacheHits: rep.CacheHits, CacheMisses: rep.CacheMisses,
			Errors: rep.Errors, Throughput: rep.Throughput(),
		})
		for i := range answers {
			resp.Answers = append(resp.Answers, toWireAnswer(&answers[i]))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Too late for an error status; the client sees the broken body.
		return
	}
}

// toEngineQuery validates and converts one wire query.
func (s *server) toEngineQuery(wq wireQuery) (engine.Query, error) {
	switch wq.Kind {
	case "catalog":
		if wq.Shard < 0 || wq.Shard >= len(s.trees) {
			return engine.Query{}, fmt.Errorf("shard %d out of range [0, %d)", wq.Shard, len(s.trees))
		}
		t := s.trees[wq.Shard]
		if wq.Leaf < 0 || wq.Leaf >= int64(t.N()) {
			return engine.Query{}, fmt.Errorf("leaf %d out of range [0, %d)", wq.Leaf, t.N())
		}
		return engine.CatalogQuery(wq.Shard, catalog.Key(wq.Key), t.RootPath(tree.NodeID(wq.Leaf))), nil
	case "point":
		return engine.PointQuery(geomPoint(wq.X, wq.Y)), nil
	case "spatial":
		return engine.SpatialQuery(wq.X, wq.Y, wq.Z), nil
	default:
		return engine.Query{}, fmt.Errorf("unknown kind %q (want catalog, point, or spatial)", wq.Kind)
	}
}

func toWireAnswer(a *engine.Answer) wireAnswer {
	wa := wireAnswer{
		Kind:       a.Query.Kind.String(),
		P:          a.P,
		Steps:      a.Steps,
		Rounds:     a.Rounds,
		PhaseSteps: a.PhaseSteps,
		Region:     a.Region,
		Cell:       a.Cell,
	}
	if a.Query.Kind == engine.KindCatalog && a.Err == nil {
		switch {
		case a.CacheHit:
			wa.Cache = "hit"
		case a.CacheStale:
			wa.Cache = "stale"
		default:
			wa.Cache = "miss"
		}
	}
	for _, r := range a.Results {
		wa.Results = append(wa.Results, wireResult{Node: int64(r.Node), Key: int64(r.Key), Payload: int64(r.Payload)})
	}
	if a.Err != nil {
		wa.Err = a.Err.Error()
	}
	return wa
}

// handleMetrics serves the registry snapshot in the Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz names the lifecycle state distinctly so probes (and the
// drain script) can tell building, draining, and overload apart.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch s.state.Load() {
	case stateBuilding:
		unavailable(w, "building")
	case stateDraining:
		unavailable(w, "draining")
	default:
		if max := s.cfg.MaxInflight; max > 0 && s.inflight.Load() >= int64(max) {
			unavailable(w, "overloaded")
			return
		}
		if s.restoreMode != "" {
			fmt.Fprintf(w, "ready restore_mode=%s\n", s.restoreMode)
		} else {
			fmt.Fprintln(w, "ready")
		}
	}
}

// handleStepsProfile serves a pprof profile of *simulated parallel time*:
// one sample per engine phase, value = cumulative engine.phase.<label>.steps
// from the registry, stack = the phase path. `go tool pprof -top` (and
// flamegraph UIs) then break simulated steps down by phase exactly like
// host CPU profiles break down nanoseconds.
func (s *server) handleStepsProfile(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	var samples []obs.ProfileSample
	var labels []string
	steps := map[string]int64{}
	for name, v := range snap.Counters {
		label, ok := strings.CutPrefix(name, "engine.phase.")
		if !ok {
			continue
		}
		label, ok = strings.CutSuffix(label, ".steps")
		if !ok || v == 0 {
			continue
		}
		steps[label] = v
		labels = append(labels, label)
	}
	// Sorted for deterministic output.
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			if labels[j] < labels[i] {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
	}
	for _, label := range labels {
		samples = append(samples, obs.ProfileSample{
			Stack:  strings.Split(label, "/"),
			Values: []int64{steps[label]},
		})
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="steps.pb.gz"`)
	if err := obs.WriteProfile(w, [][2]string{{"steps", "count"}}, samples); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSpans streams spans as JSONL (one span per line). Query params:
// replay=1 first dumps the ring buffer's retained history and closes
// (add follow=1 to keep tailing live spans afterwards); limit=N closes
// the stream after N spans (0 = no cap).
func (s *server) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// Flush the headers up front: a live tail with no retained history
	// would otherwise leave the client blocked on the status line until
	// the first span happens to arrive.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	sent := 0
	emit := func(sp obs.Span) bool {
		if err := enc.Encode(sp); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		return limit == 0 || sent < limit
	}
	replay := r.URL.Query().Get("replay") == "1"
	if replay {
		for _, sp := range s.ring.Spans() {
			if !emit(sp) {
				return
			}
		}
		// A pure replay closes here; tailing past history is opt-in so
		// curl and tests terminate without killing the connection.
		if r.URL.Query().Get("follow") != "1" {
			return
		}
	}
	ch := s.stream.subscribe()
	defer s.stream.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case sp := <-ch:
			if !emit(sp) {
				return
			}
		}
	}
}
