package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fraccascade/internal/obs"
)

// TestSpanStreamConcurrent hammers the broadcaster with concurrent
// writers while one subscriber never drains: Emit must never block, the
// draining subscriber must see spans, and unsubscribe mid-traffic must
// not panic or deadlock. Run under -race this is the hot-path safety
// proof for the /spans fan-out.
func TestSpanStreamConcurrent(t *testing.T) {
	st := newSpanStream()
	fast := st.subscribe()
	slow := st.subscribe() // never drained: every Emit past its buffer drops
	defer st.unsubscribe(slow)

	const writers, perWriter = 8, 500
	var drained sync.WaitGroup
	drained.Add(1)
	received := 0
	done := make(chan struct{})
	go func() {
		defer drained.Done()
		for {
			select {
			case <-fast:
				received++
			case <-done:
				// Drain what is still buffered, then stop.
				for {
					select {
					case <-fast:
						received++
					default:
						return
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				st.Emit(obs.Span{ID: uint64(w*perWriter + i + 1)})
			}
		}(w)
	}
	// Churn subscriptions while the writers run.
	for i := 0; i < 50; i++ {
		ch := st.subscribe()
		st.unsubscribe(ch)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	drained.Wait()
	st.unsubscribe(fast)

	if received == 0 {
		t.Fatal("draining subscriber received no spans")
	}
	if received > writers*perWriter {
		t.Fatalf("received %d spans, more than the %d emitted", received, writers*perWriter)
	}
	// The slow subscriber must not have stalled the writers: 4000 emits
	// against a full buffer finish in microseconds when dropping; seconds
	// would mean Emit blocked on it.
	if elapsed > 5*time.Second {
		t.Fatalf("emitting took %v; a slow subscriber stalled the writers", elapsed)
	}
}

// TestSpansFollowMode exercises GET /spans?follow=1 end to end: a live
// tail subscribed before traffic sees the spans of queries posted
// afterwards as decodable JSONL, and the limit closes the stream.
func TestSpansFollowMode(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/spans?replay=1&follow=1&limit=8", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /spans follow = %d", resp.StatusCode)
	}

	// Wait for the handler to register its live-tail subscription (the
	// ring was empty, so the replay contributed nothing), then drive
	// traffic that emits spans.
	for deadline := time.Now().Add(5 * time.Second); ; {
		s.stream.mu.Lock()
		n := len(s.stream.subs)
		s.stream.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follow handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		q := queryRequest{Queries: []wireQuery{
			{Kind: "point", X: 3, Y: 4}, {Kind: "spatial", X: 1, Y: 1, Z: 0},
			{Kind: "catalog", Shard: 0, Key: 9, Leaf: 1},
		}}
		body, _ := json.Marshal(q)
		// Each batch emits a handful of spans; several batches guarantee
		// the stream's limit fills whatever the exact per-query span count.
		for i := 0; i < 4; i++ {
			resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	// The server closes the stream after 8 spans; read them all.
	sc := bufio.NewScanner(resp.Body)
	spans := 0
	parents := map[uint64]bool{}
	children := 0
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("follow line %d undecodable: %v", spans, err)
		}
		spans++
		if sp.Parent == 0 {
			parents[sp.ID] = true
		} else {
			children++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans != 8 {
		t.Fatalf("follow stream delivered %d spans, want 8 (limit)", spans)
	}
	if len(parents) == 0 || children == 0 {
		t.Fatalf("follow stream lacks structure: %d parents, %d children", len(parents), children)
	}

	// A client that disconnects tears the subscription down.
	ctx2, cancel2 := context.WithCancel(context.Background())
	req2, _ := http.NewRequestWithContext(ctx2, http.MethodGet, ts.URL+"/spans?follow=1&replay=1", nil)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	resp2.Body.Close()
	for deadline := time.Now().Add(5 * time.Second); ; {
		s.stream.mu.Lock()
		n := len(s.stream.subs)
		s.stream.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnected follow subscription never unsubscribed")
		}
		time.Sleep(time.Millisecond)
	}
}
