package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"fraccascade/internal/snapshot"
)

// lifecycleConfig is the small-structure config the lifecycle suite uses.
func lifecycleConfig() serverConfig {
	return serverConfig{
		Seed: 7, Procs: 512, BatchSize: 8,
		Leaves: 1 << 4, Entries: 800, Shards: 2,
		Regions: 24, Tiles: 20, RingSize: 1024,
	}
}

func getStatus(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// counterValue reads one counter from the registry snapshot.
func counterValue(t *testing.T, s *server, name string) int64 {
	t.Helper()
	return s.reg.Snapshot().Counters[name]
}

// TestReadyzNamesLifecycleStates: /readyz distinguishes building, ready,
// draining, and overloaded, and POST /query honours the same gates.
func TestReadyzNamesLifecycleStates(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.MaxInflight = 2
	s := newServerShell(cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if code, body := getStatus(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "building") {
		t.Fatalf("building: /readyz = %d %q", code, body)
	}
	req := queryRequest{Queries: []wireQuery{{Kind: "point", X: 1, Y: 2}}}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /query while building = %d, want 503", resp.StatusCode)
	}

	if err := s.build(); err != nil {
		t.Fatal(err)
	}
	if code, body := getStatus(t, ts, "/readyz"); code != http.StatusOK || body != "ready" {
		t.Fatalf("ready: /readyz = %d %q", code, body)
	}

	// Overload is ready + saturated inflight.
	s.inflight.Add(int64(cfg.MaxInflight))
	if code, body := getStatus(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "overloaded") {
		t.Fatalf("overloaded: /readyz = %d %q", code, body)
	}
	s.inflight.Add(-int64(cfg.MaxInflight))

	s.beginDrain()
	if code, body := getStatus(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining: /readyz = %d %q", code, body)
	}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /query while draining = %d, want 503", resp.StatusCode)
	}
}

// TestAdmissionControlShedsAndRecovers: past the inflight cap, /query sheds
// with 503 + Retry-After and a counter; once load clears, it serves again.
func TestAdmissionControlShedsAndRecovers(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.MaxInflight = 1
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Saturate the gauge as a stand-in for a stuck request.
	s.inflight.Add(1)
	body, _ := json.Marshal(queryRequest{Queries: []wireQuery{{Kind: "point", X: 3, Y: 4}}})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded POST /query = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	if n := counterValue(t, s, "serve.shed"); n != 1 {
		t.Fatalf("serve.shed = %d, want 1", n)
	}

	// Load clears; the same request now succeeds and nothing leaked.
	s.inflight.Add(-1)
	if resp, out := postQuery(t, ts, queryRequest{Queries: []wireQuery{{Kind: "point", X: 3, Y: 4}}}); resp.StatusCode != http.StatusOK || len(out.Answers) != 1 {
		t.Fatalf("post-overload POST /query = %d (%d answers)", resp.StatusCode, len(out.Answers))
	}
	if n := s.inflight.Load(); n != 0 {
		t.Fatalf("inflight leaked: %d", n)
	}
}

// TestRequestDeadline: an unmeetable per-request deadline turns into 504
// and the timeout counter, not a hang.
func TestRequestDeadline(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.RequestTimeout = time.Nanosecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, _ := postQuery(t, ts, queryRequest{Queries: []wireQuery{{Kind: "point", X: 1, Y: 1}}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("POST /query with 1ns deadline = %d, want 504", resp.StatusCode)
	}
	if n := counterValue(t, s, "serve.timeouts"); n != 1 {
		t.Fatalf("serve.timeouts = %d, want 1", n)
	}
}

// TestClientDisconnect: a canceled request context (the client hung up)
// stops the work and is counted, without fabricating a response.
func TestClientDisconnect(t *testing.T) {
	s, err := newServer(lifecycleConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(queryRequest{Queries: []wireQuery{{Kind: "point", X: 5, Y: 6}}})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	if n := counterValue(t, s, "serve.canceled"); n != 1 {
		t.Fatalf("serve.canceled = %d, want 1", n)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected client got a body: %q", rec.Body.String())
	}
}

// TestPanicRecovery: a panicking handler yields 500 plus the panic counter;
// the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	s := newServerShell(lifecycleConfig())
	h := s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 1; i <= 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic request %d = %d, want 500", i, resp.StatusCode)
		}
		if n := counterValue(t, s, "serve.panics"); n != int64(i) {
			t.Fatalf("serve.panics = %d, want %d", n, i)
		}
	}
}

// TestSnapshotLifecycle is the full drain/restart loop for both shard
// kinds: build writes a snapshot, a drain writes the final one, and a new
// server restores from it — skipping the rebuild — with identical answers.
func TestSnapshotLifecycle(t *testing.T) {
	for _, dynamic := range []bool{false, true} {
		cfg := lifecycleConfig()
		cfg.Dynamic = dynamic
		cfg.SnapshotPath = filepath.Join(t.TempDir(), "shards.snap")
		cfg.DrainTimeout = 2 * time.Second

		first, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first.loadedSnapshot {
			t.Fatalf("dynamic=%v: first boot claims a snapshot load", dynamic)
		}
		if n := counterValue(t, first, "serve.snapshot.saves"); n != 1 {
			t.Fatalf("dynamic=%v: save-on-build counter = %d, want 1", dynamic, n)
		}
		ts := httptest.NewServer(first.handler())
		var req queryRequest
		for i := 0; i < 8; i++ {
			req.Queries = append(req.Queries, wireQuery{Kind: "catalog", Shard: i % 2, Key: int64(97 * i), Leaf: int64(i)})
		}
		resp, want := postQuery(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dynamic=%v: seed query = %d", dynamic, resp.StatusCode)
		}

		// SIGTERM path minus the signal: drain, final snapshot, stop.
		first.beginDrain()
		if !first.awaitDrain(cfg.DrainTimeout) {
			t.Fatalf("dynamic=%v: drain timed out", dynamic)
		}
		if err := first.saveSnapshot(); err != nil {
			t.Fatalf("dynamic=%v: final snapshot: %v", dynamic, err)
		}
		ts.Close()
		if _, err := snapshot.Load(cfg.SnapshotPath); err != nil {
			t.Fatalf("dynamic=%v: final snapshot unreadable: %v", dynamic, err)
		}

		second, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !second.loadedSnapshot {
			t.Fatalf("dynamic=%v: restart rebuilt instead of restoring", dynamic)
		}
		if n := counterValue(t, second, "serve.snapshot.loads"); n != 1 {
			t.Fatalf("dynamic=%v: snapshot load counter = %d, want 1", dynamic, n)
		}
		ts2 := httptest.NewServer(second.handler())
		resp2, got := postQuery(t, ts2, req)
		ts2.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("dynamic=%v: restored query = %d", dynamic, resp2.StatusCode)
		}
		if !reflect.DeepEqual(want.Answers, got.Answers) {
			t.Fatalf("dynamic=%v: restored server answers diverge", dynamic)
		}
	}
}

// TestSnapshotFallbackOnCorruption: a damaged snapshot file logs and falls
// back to rebuild-from-source — startup never fails on bad bytes.
func TestSnapshotFallbackOnCorruption(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "shards.snap")
	first, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	// Flip one byte mid-file.
	data, err := os.ReadFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(cfg.SnapshotPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := newServer(cfg)
	if err != nil {
		t.Fatalf("corrupt snapshot aborted startup: %v", err)
	}
	if second.loadedSnapshot {
		t.Fatalf("corrupt snapshot was served")
	}
	// The rebuild refreshed the snapshot; a third boot restores cleanly.
	third, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !third.loadedSnapshot {
		t.Fatalf("refreshed snapshot not restored")
	}
}

// TestSnapshotShapeMismatchRebuilds: a snapshot whose shard count or kind
// disagrees with the flags is ignored, not served.
func TestSnapshotShapeMismatchRebuilds(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "shards.snap")
	if _, err := newServer(cfg); err != nil {
		t.Fatal(err)
	}
	// Same file, dynamic flags: the kinds no longer match.
	cfg.Dynamic = true
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.loadedSnapshot {
		t.Fatalf("static snapshot served as dynamic shards")
	}
	// Same file (now dynamic), different shard count.
	cfg.Shards = 3
	s, err = newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.loadedSnapshot {
		t.Fatalf("2-shard snapshot served for 3-shard flags")
	}
}

// TestFlatServingLifecycle: -flat serves the same answers as the pointer
// engine, persists a frozen-layout sidecar next to the snapshot, and
// preloads it on restart (refreezing zero times when the sidecar is good).
func TestFlatServingLifecycle(t *testing.T) {
	for _, dynamic := range []bool{false, true} {
		dir := t.TempDir()
		cfg := lifecycleConfig()
		cfg.Dynamic = dynamic
		cfg.SnapshotPath = filepath.Join(dir, "shards.snap")

		var req queryRequest
		for i := 0; i < 10; i++ {
			req.Queries = append(req.Queries, wireQuery{Kind: "catalog", Shard: i % 2, Key: int64(131 * i), Leaf: int64(i)})
		}

		// Pointer baseline.
		ptrCfg := cfg
		ptrCfg.SnapshotPath = filepath.Join(dir, "ptr.snap")
		ptr, err := newServer(ptrCfg)
		if err != nil {
			t.Fatal(err)
		}
		tsPtr := httptest.NewServer(ptr.handler())
		respPtr, want := postQuery(t, tsPtr, req)
		tsPtr.Close()
		if respPtr.StatusCode != http.StatusOK {
			t.Fatalf("dynamic=%v: pointer query = %d", dynamic, respPtr.StatusCode)
		}

		// Flat server over the same seed: identical wire answers.
		cfg.Flat = true
		first, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(first.flatShards) != cfg.Shards {
			t.Fatalf("dynamic=%v: %d flat shards, want %d", dynamic, len(first.flatShards), cfg.Shards)
		}
		ts := httptest.NewServer(first.handler())
		resp, got := postQuery(t, ts, req)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dynamic=%v: flat query = %d", dynamic, resp.StatusCode)
		}
		if !reflect.DeepEqual(want.Answers, got.Answers) {
			t.Fatalf("dynamic=%v: flat answers diverge from pointer answers", dynamic)
		}

		// Save-on-build wrote the sidecar next to the snapshot: one blob
		// per catalog shard plus the spatial locator's.
		sidecar := cfg.SnapshotPath + ".flat"
		if _, err := os.Stat(sidecar); err != nil {
			t.Fatalf("dynamic=%v: sidecar missing: %v", dynamic, err)
		}
		gen, blobs, err := snapshot.LoadFlat(sidecar)
		if err != nil || len(blobs) != cfg.Shards+1 {
			t.Fatalf("dynamic=%v: sidecar unreadable: gen=%d blobs=%d err=%v (want %d blobs)",
				dynamic, gen, len(blobs), err, cfg.Shards+1)
		}

		// Restart: shards restore from the snapshot, every frozen layout —
		// catalog and spatial — from the sidecar, with no refreeze on boot.
		second, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !second.loadedSnapshot {
			t.Fatalf("dynamic=%v: restart rebuilt instead of restoring", dynamic)
		}
		fbs := second.eng.FrozenBackends()
		if len(fbs) != cfg.Shards+1 {
			t.Fatalf("dynamic=%v: %d frozen backends, want %d", dynamic, len(fbs), cfg.Shards+1)
		}
		for i, fb := range fbs {
			if fb.Refreezes() != 0 {
				t.Fatalf("dynamic=%v: frozen backend %d (kind %d) refroze %d times despite a good sidecar",
					dynamic, i, fb.FrozenKind(), fb.Refreezes())
			}
		}
		if second.flatView == nil {
			t.Fatalf("dynamic=%v: restart did not retain the sidecar view", dynamic)
		}
		wantMode := "deserialized"
		if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
			wantMode = "mmap"
		}
		if second.restoreMode != wantMode {
			t.Fatalf("dynamic=%v: restore mode %q, want %q", dynamic, second.restoreMode, wantMode)
		}
		ts2r := httptest.NewServer(second.handler())
		code, readyBody := getStatus(t, ts2r, "/readyz")
		ts2r.Close()
		if code != http.StatusOK || !strings.HasPrefix(readyBody, "ready") || !strings.Contains(readyBody, "restore_mode="+wantMode) {
			t.Fatalf("dynamic=%v: /readyz = %d %q, want ready restore_mode=%s", dynamic, code, readyBody, wantMode)
		}
		ts2 := httptest.NewServer(second.handler())
		resp2, got2 := postQuery(t, ts2, req)
		ts2.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("dynamic=%v: restored flat query = %d", dynamic, resp2.StatusCode)
		}
		if !reflect.DeepEqual(want.Answers, got2.Answers) {
			t.Fatalf("dynamic=%v: restored flat answers diverge", dynamic)
		}

		// Corrupt the sidecar: the next boot logs, refreezes, and still
		// serves correct answers.
		data, err := os.ReadFile(sidecar)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(sidecar, data, 0o644); err != nil {
			t.Fatal(err)
		}
		third, err := newServer(cfg)
		if err != nil {
			t.Fatalf("dynamic=%v: corrupt sidecar aborted startup: %v", dynamic, err)
		}
		refroze := false
		for _, fb := range third.eng.FrozenBackends() {
			if fb.Refreezes() > 0 {
				refroze = true
			}
		}
		if !refroze {
			t.Fatalf("dynamic=%v: corrupt sidecar served without a refreeze", dynamic)
		}
		if third.restoreMode != "refrozen" {
			t.Fatalf("dynamic=%v: post-corruption restore mode %q, want refrozen", dynamic, third.restoreMode)
		}
		ts3 := httptest.NewServer(third.handler())
		resp3, got3 := postQuery(t, ts3, req)
		ts3.Close()
		if resp3.StatusCode != http.StatusOK || !reflect.DeepEqual(want.Answers, got3.Answers) {
			t.Fatalf("dynamic=%v: post-corruption flat answers diverge (status %d)", dynamic, resp3.StatusCode)
		}
	}
}
