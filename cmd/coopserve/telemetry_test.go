package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/engine"
	"fraccascade/internal/obs"
	"fraccascade/internal/tree"
)

// telemetryServer builds a small server with the flight recorder and the
// latency windows on (testServer leaves them disabled).
func telemetryServer(t *testing.T, mutate func(*serverConfig)) *server {
	t.Helper()
	cfg := serverConfig{
		Seed: 7, Procs: 512, BatchSize: 8,
		Leaves: 1 << 4, Entries: 800, Shards: 2,
		Regions: 24, Tiles: 20, RingSize: 1024,
		FlightRecords: 256, SLOLatency: 250 * time.Millisecond, SLOObjective: 0.99,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seedTraffic pushes a mixed workload through POST /query.
func seedTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	var req queryRequest
	for i := 0; i < 8; i++ {
		req.Queries = append(req.Queries,
			wireQuery{Kind: "catalog", Shard: i % 2, Key: int64(100 * i), Leaf: int64(i)},
			wireQuery{Kind: "point", X: int64(3*i + 1), Y: int64(5*i + 2)},
			wireQuery{Kind: "spatial", X: int64(i), Y: int64(2 * i), Z: int64(i % 4)},
		)
	}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding traffic failed: %d", resp.StatusCode)
	}
}

// injectEngineError runs one failing query (shard out of range) straight
// through the engine so the recorder and spans retain an error record;
// the HTTP layer validates shards away, so this is the only way in.
func injectEngineError(t *testing.T, s *server) {
	t.Helper()
	qs := []engine.Query{{
		Kind: engine.KindCatalog, Shard: 99, Key: catalog.Key(1),
		Path: s.trees[0].RootPath(tree.NodeID(0)),
	}}
	_, rep, err := s.eng.ExecuteBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 {
		t.Fatalf("injected batch reported %d errors, want 1", rep.Errors)
	}
}

type slowlogDump struct {
	Enabled bool               `json:"enabled"`
	Total   int64              `json:"total"`
	Errored int64              `json:"errored"`
	Dropped int64              `json:"dropped"`
	Count   int                `json:"count"`
	Records []obs.FlightRecord `json:"records"`
}

func getSlowlog(t *testing.T, ts *httptest.Server, params string) (int, slowlogDump) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/debug/slowlog" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out slowlogDump
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestRequestIDCorrelation pins the correlation chain at the HTTP layer:
// an inbound X-Request-ID is echoed on the response header and body and
// stamped on every span and flight record of the request; without one a
// unique id is minted; a header with control bytes is discarded.
func TestRequestIDCorrelation(t *testing.T) {
	s := telemetryServer(t, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	req := queryRequest{Queries: []wireQuery{
		{Kind: "catalog", Shard: 0, Key: 42, Leaf: 3},
		{Kind: "point", X: 5, Y: 9},
	}}
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	hreq.Header.Set("X-Request-ID", "test-req-42")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Fatalf("response header X-Request-ID = %q, want the inbound id", got)
	}
	if out.RequestID != "test-req-42" {
		t.Fatalf("response body request_id = %q", out.RequestID)
	}
	spans := 0
	for _, sp := range s.ring.Spans() {
		if sp.RequestID == "test-req-42" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("no spans carry the inbound request id")
	}
	_, dump := getSlowlog(t, ts, "")
	recs := 0
	for _, r := range dump.Records {
		if r.RequestID == "test-req-42" {
			recs++
		}
	}
	if recs != len(req.Queries) {
		t.Fatalf("slowlog retains %d records with the request id, want %d", recs, len(req.Queries))
	}

	// No inbound header: a unique id is minted and echoed.
	resp1, out1 := postQuery(t, ts, req)
	resp2, out2 := postQuery(t, ts, req)
	for _, pair := range [][2]string{
		{resp1.Header.Get("X-Request-ID"), out1.RequestID},
		{resp2.Header.Get("X-Request-ID"), out2.RequestID},
	} {
		if !strings.HasPrefix(pair[0], "cs-") || pair[0] != pair[1] {
			t.Fatalf("minted id header %q / body %q malformed", pair[0], pair[1])
		}
	}
	if out1.RequestID == out2.RequestID {
		t.Fatalf("minted ids collide: %q", out1.RequestID)
	}

	// A header that fails sanitization (embedded space) is discarded, not
	// echoed.
	hreq, _ = http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	hreq.Header.Set("X-Request-ID", "evil id")
	resp, err = ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "cs-") {
		t.Fatalf("hostile inbound id was echoed: %q", got)
	}
}

// TestSlowlogEndpoint drives the filterable flight-recorder dump: shard,
// kind, minimum latency, errors-only, and limit, plus parameter
// validation.
func TestSlowlogEndpoint(t *testing.T) {
	s := telemetryServer(t, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	seedTraffic(t, ts)
	injectEngineError(t, s)

	code, dump := getSlowlog(t, ts, "")
	if code != http.StatusOK || !dump.Enabled {
		t.Fatalf("slowlog = %d enabled=%v, want 200 enabled", code, dump.Enabled)
	}
	// The seed workload can contain legitimately failing queries (e.g.
	// spatial points outside the complex), so pin the injected error as a
	// lower bound and check the errors filter agrees with the stats.
	if dump.Total != 25 || dump.Errored < 1 {
		t.Fatalf("slowlog total=%d errored=%d, want 25 and ≥ 1", dump.Total, dump.Errored)
	}
	if dump.Count != len(dump.Records) || dump.Count == 0 {
		t.Fatalf("slowlog count=%d records=%d", dump.Count, len(dump.Records))
	}
	for i := 1; i < len(dump.Records); i++ {
		a, b := dump.Records[i-1], dump.Records[i]
		if a.Time < b.Time {
			t.Fatal("slowlog records not newest-first")
		}
	}

	_, byShard := getSlowlog(t, ts, "?shard=1")
	if byShard.Count == 0 {
		t.Fatal("shard filter returned nothing")
	}
	for _, r := range byShard.Records {
		if r.Kind != "catalog" || r.Shard != 1 {
			t.Fatalf("shard=1 filter leaked record kind=%q shard=%d", r.Kind, r.Shard)
		}
	}
	_, byKind := getSlowlog(t, ts, "?kind=point")
	if byKind.Count == 0 {
		t.Fatal("kind filter returned nothing")
	}
	for _, r := range byKind.Records {
		if r.Kind != "point" {
			t.Fatalf("kind=point filter leaked %q", r.Kind)
		}
	}
	if _, slow := getSlowlog(t, ts, "?min_ms=100000"); slow.Count != 0 {
		t.Fatalf("min_ms=100000 matched %d records", slow.Count)
	}
	_, errs := getSlowlog(t, ts, "?errors=1")
	if int64(errs.Count) != dump.Errored {
		t.Fatalf("errors=1 returned %d records, stats say %d errored", errs.Count, dump.Errored)
	}
	for _, r := range errs.Records {
		if r.Err == "" {
			t.Fatalf("errors=1 record lacks error text: %+v", r)
		}
	}
	if _, lim := getSlowlog(t, ts, "?limit=2"); lim.Count != 2 {
		t.Fatalf("limit=2 returned %d records", lim.Count)
	}

	for _, bad := range []string{"?shard=x", "?shard=-2", "?min_ms=-1", "?min_ms=nope", "?limit=-3"} {
		if code, _ := getSlowlog(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("slowlog%s = %d, want 400", bad, code)
		}
	}
}

// TestSlowlogDisabled pins the graceful degradation: with the recorder
// off the endpoint still answers 200 with an empty enabled=false dump.
func TestSlowlogDisabled(t *testing.T) {
	s := testServer(t) // FlightRecords unset → telemetry off
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	seedTraffic(t, ts)

	code, dump := getSlowlog(t, ts, "")
	if code != http.StatusOK {
		t.Fatalf("disabled slowlog = %d, want 200", code)
	}
	if dump.Enabled || dump.Total != 0 || dump.Count != 0 || len(dump.Records) != 0 {
		t.Fatalf("disabled slowlog not empty: %+v", dump)
	}
}

func getStatusz(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statusz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("statusz Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestStatuszEndpoint checks the status page across its states: serving
// with traffic (quantiles, SLO, caches, slow and failed queries), fresh
// with no traffic, telemetry disabled, and still building.
func TestStatuszEndpoint(t *testing.T) {
	s := telemetryServer(t, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	seedTraffic(t, ts)
	injectEngineError(t, s)

	body := getStatusz(t, ts)
	for _, want := range []string{
		"coopserve", "ready", "engine", "latency", "slo", "burn",
		"entry caches", "finger", "flight recorder",
		"slowest recent queries", "recent failures", "/debug/slowlog",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("statusz missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "no data") && !strings.Contains(body, "count") {
		t.Fatalf("statusz shows no latency data after traffic:\n%s", body)
	}

	// Fresh server: graceful with nothing recorded yet.
	s2 := telemetryServer(t, nil)
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	if body := getStatusz(t, ts2); !strings.Contains(body, "no queries recorded yet") {
		t.Fatalf("fresh statusz not graceful:\n%s", body)
	}

	// Telemetry disabled: the page still serves.
	s3 := testServer(t)
	ts3 := httptest.NewServer(s3.routes())
	defer ts3.Close()
	if body := getStatusz(t, ts3); !strings.Contains(body, "telemetry disabled") {
		t.Fatalf("disabled statusz does not say so:\n%s", body)
	}

	// Still building (no engine yet): the shell serves a building page.
	s4 := newServerShell(s.cfg)
	ts4 := httptest.NewServer(s4.routes())
	defer ts4.Close()
	if body := getStatusz(t, ts4); !strings.Contains(body, "building") {
		t.Fatalf("building statusz does not say so:\n%s", body)
	}
}

// TestTelemetrySurvivesRestart pins that flight records are in-memory
// only: a restart from the snapshot serves the same data but an empty
// recorder, and both telemetry endpoints degrade gracefully.
func TestTelemetrySurvivesRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")
	s := telemetryServer(t, func(cfg *serverConfig) { cfg.SnapshotPath = snap })
	ts := httptest.NewServer(s.routes())
	seedTraffic(t, ts)
	_, dump := getSlowlog(t, ts, "")
	if dump.Total == 0 {
		t.Fatal("no records before restart")
	}
	ts.Close()

	s2 := telemetryServer(t, func(cfg *serverConfig) { cfg.SnapshotPath = snap })
	if !s2.loadedSnapshot {
		t.Fatal("restart did not restore from the snapshot")
	}
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	code, dump := getSlowlog(t, ts2, "")
	if code != http.StatusOK || !dump.Enabled || dump.Total != 0 || dump.Count != 0 {
		t.Fatalf("post-restart slowlog = %d %+v, want 200 enabled and empty", code, dump)
	}
	if body := getStatusz(t, ts2); !strings.Contains(body, "no queries recorded yet") {
		t.Fatalf("post-restart statusz not graceful:\n%s", body)
	}
}

// TestTelemetryErrorAgreement pins the serving-layer failure contract:
// after a request whose deadline expires mid-flight, the serve.query.errors
// counter, the spans' error attributes, and the slowlog all count the same
// failures.
func TestTelemetryErrorAgreement(t *testing.T) {
	s := telemetryServer(t, func(cfg *serverConfig) { cfg.RequestTimeout = time.Nanosecond })
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	req := queryRequest{Queries: []wireQuery{
		{Kind: "catalog", Shard: 0, Key: 7, Leaf: 2},
		{Kind: "point", X: 1, Y: 1},
		{Kind: "spatial", X: 2, Y: 2, Z: 1},
	}}
	resp, _ := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request = %d, want 504", resp.StatusCode)
	}

	counted := s.reg.Snapshot().Counters["serve.query.errors"]
	if counted == 0 {
		t.Fatal("serve.query.errors did not count the deadline failures")
	}
	spanErrs := int64(0)
	for _, sp := range s.ring.Spans() {
		if sp.Parent == 0 && sp.Err != "" {
			spanErrs++
		}
	}
	st := s.recorder.Stats()
	if spanErrs != counted || st.Errored != counted {
		t.Fatalf("failure counts disagree: counter=%d spans=%d recorder=%d",
			counted, spanErrs, st.Errored)
	}
	_, dump := getSlowlog(t, ts, "?errors=1")
	if int64(dump.Count) != counted {
		t.Fatalf("slowlog retains %d error records, counter says %d", dump.Count, counted)
	}
	for _, r := range dump.Records {
		if r.Err == "" {
			t.Fatalf("errors=1 record lacks error text: %+v", r)
		}
	}
}

// TestMetricsTelemetryFamilies checks the new gauge families are exported
// and the enabled /metrics page stays lint-clean.
func TestMetricsTelemetryFamilies(t *testing.T) {
	s := telemetryServer(t, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	seedTraffic(t, ts)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintProm(string(text)); len(errs) != 0 {
		t.Fatalf("/metrics fails Prometheus lint:\n%s", strings.Join(errs, "\n"))
	}
	for _, want := range []string{
		"serve_latency_window_p50_ns", "serve_latency_window_p95_ns",
		"serve_latency_window_p99_ns", "serve_latency_window_count",
		"serve_slo_latency_burn_short_milli", "serve_slo_latency_burn_long_milli",
		"serve_slo_latency_threshold_ns", "serve_slo_latency_objective_milli",
		"serve_flight_recorded", "serve_flight_errored", "serve_flight_dropped",
		"serve_query_errors",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	// The workload may contain legitimately failing queries; whatever the
	// count, the serving counter and the recorder must agree on it.
	snap := s.reg.Snapshot()
	if snap.Counters["serve.query.errors"] != s.recorder.Stats().Errored {
		t.Fatalf("serve.query.errors = %d, recorder errored = %d",
			snap.Counters["serve.query.errors"], s.recorder.Stats().Errored)
	}
	if g := snap.Funcs["serve.flight.recorded"]; g != 24 {
		t.Fatalf("serve.flight.recorded = %d, want 24", g)
	}
	if g := snap.Funcs["serve.latency.window.count"]; g != 24 {
		t.Fatalf("serve.latency.window.count = %d, want 24", g)
	}
	if g := snap.Funcs["serve.latency.window.p50_ns"]; g <= 0 {
		t.Fatalf("serve.latency.window.p50_ns = %d, want > 0", g)
	}
	if g := snap.Gauges["serve.slo.latency.threshold_ns"]; g != int64(250*time.Millisecond) {
		t.Fatalf("serve.slo.latency.threshold_ns = %d", g)
	}
}

// TestSanitizeRequestID covers the header sanitizer's edges.
func TestSanitizeRequestID(t *testing.T) {
	long := strings.Repeat("a", 200)
	for in, want := range map[string]string{
		"":              "",
		"ok-id_42":      "ok-id_42",
		"has space":     "",
		"ctrl\x01byte":  "",
		"utf8-\xc3\xa9": "",
		long:            long[:128],
	} {
		if got := sanitizeRequestID(in); got != want {
			t.Fatalf("sanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
