package main

import (
	"sync"

	"fraccascade/internal/obs"
)

// spanStream is an obs.Tracer broadcasting every span to the currently
// connected /spans subscribers. Emit never blocks the engine: a subscriber
// whose buffer is full drops spans (the endpoint is a live tail, not a
// durable log — the ring tracer holds replayable history).
type spanStream struct {
	mu   sync.Mutex
	subs map[chan obs.Span]struct{}
}

func newSpanStream() *spanStream {
	return &spanStream{subs: make(map[chan obs.Span]struct{})}
}

// Emit implements obs.Tracer.
func (s *spanStream) Emit(sp obs.Span) {
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- sp:
		default: // slow client: drop rather than stall the engine
		}
	}
	s.mu.Unlock()
}

// subscribe registers a new live-tail channel.
func (s *spanStream) subscribe() chan obs.Span {
	ch := make(chan obs.Span, 256)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch
}

// unsubscribe removes ch; pending spans in its buffer are discarded.
func (s *spanStream) unsubscribe(ch chan obs.Span) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}
