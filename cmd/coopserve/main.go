// Command coopserve is a long-running HTTP daemon serving cooperative
// searches from the batched engine, with live observability and a hardened
// lifecycle:
//
//	POST /query               batched catalog/point/spatial queries (JSON)
//	GET  /metrics             Prometheus text exposition of the obs registry
//	GET  /healthz             liveness (always 200 once serving)
//	GET  /readyz              readiness (503 building/draining/overloaded)
//	GET  /spans?limit=N       JSONL span stream (replay=1 prepends history,
//	                          follow=1 keeps tailing live spans)
//	GET  /statusz             human-readable status page: live windowed
//	                          latency quantiles, SLO burn rates, restore
//	                          mode, cache/finger rates, recent slow queries
//	GET  /debug/slowlog       flight-recorder dump (JSON), filterable by
//	                          ?shard=N&kind=K&min_ms=F&errors=1&limit=N
//	GET  /debug/pprof/        host CPU/heap/goroutine profiles
//	GET  /debug/pprof/steps   simulated-parallel-time profile (phase stacks);
//	                          loadable with `go tool pprof steps.pb.gz`
//
// Every request carries a correlation id (inbound X-Request-ID honored,
// minted otherwise), echoed on the response and stamped on the request's
// spans and flight records. The always-on flight recorder (sized by
// -flight-records; 0 disables it and the per-query wall clocks entirely)
// tail-samples per-query records — all errors, the slowest per window, and
// a uniform reservoir — behind /debug/slowlog and /statusz, and feeds the
// rolling-window latency quantiles and the -slo-latency/-slo-objective
// burn-rate gauges on /metrics.
//
// With -snapshot the daemon restores its catalog shards from a crash-safe
// snapshot on start (falling back to rebuild on any corruption), saves one
// after building, and writes a final snapshot on SIGTERM after draining
// in-flight queries. Requests run under -request-timeout and are shed with
// 503 + Retry-After past -max-inflight.
//
// Usage:
//
//	coopserve -addr=:8080 -procs=4096 -batch=32 -seed=1 -snapshot=/var/lib/coopserve/shards.snap
//	curl -d '{"queries":[{"kind":"point","x":101,"y":51}]}' localhost:8080/query
//	go tool pprof -top http://localhost:8080/debug/pprof/steps
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fraccascade/internal/geom"
)

// geomPoint builds the planar query point.
func geomPoint(x, y int64) geom.Point { return geom.Point{X: x, Y: y} }

func main() {
	cfg := defaultServerConfig()
	addr := flag.String("addr", ":8080", "listen address")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "structure generator seed")
	flag.IntVar(&cfg.Procs, "procs", cfg.Procs, "total simulated processor budget per batch")
	flag.IntVar(&cfg.BatchSize, "batch", cfg.BatchSize, "queries per engine batch")
	flag.IntVar(&cfg.Leaves, "leaves", cfg.Leaves, "catalog-tree leaves per shard")
	flag.IntVar(&cfg.Entries, "entries", cfg.Entries, "approximate catalog entries per shard")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "catalog shards")
	flag.IntVar(&cfg.Regions, "regions", cfg.Regions, "planar subdivision regions")
	flag.IntVar(&cfg.Tiles, "tiles", cfg.Tiles, "spatial complex tiles")
	flag.IntVar(&cfg.RingSize, "ring", cfg.RingSize, "span flight-recorder capacity")
	flag.BoolVar(&cfg.Dynamic, "dynamic", cfg.Dynamic, "serve dynamic (updatable) catalog shards")
	flag.BoolVar(&cfg.Flat, "flat", cfg.Flat, "serve catalog shards from the frozen flat layout (zero-alloc hot path; with -snapshot, persists a .flat sidecar)")
	flag.IntVar(&cfg.BuildParallelism, "build-parallelism", cfg.BuildParallelism, "host workers for shard builds, flat freezes, and snapshot restores (0 = all cores, 1 = sequential)")
	flag.BoolVar(&cfg.FingerCache, "finger-cache", cfg.FingerCache, "serve catalog queries with distance-sensitive finger search from cached entry points")
	flag.StringVar(&cfg.SnapshotPath, "snapshot", cfg.SnapshotPath, "snapshot path: load on start, save after build and on drain (empty = disabled)")
	flag.DurationVar(&cfg.RequestTimeout, "request-timeout", cfg.RequestTimeout, "per-request deadline on POST /query (0 = none)")
	flag.IntVar(&cfg.MaxInflight, "max-inflight", cfg.MaxInflight, "concurrent /query cap before shedding with 503 (0 = unlimited)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "how long SIGTERM waits for in-flight queries")
	flag.IntVar(&cfg.FlightRecords, "flight-records", cfg.FlightRecords, "per-query flight-recorder reservoir size behind /debug/slowlog and /statusz (0 disables the recorder, wall timing, and the latency windows)")
	flag.DurationVar(&cfg.SLOLatency, "slo-latency", cfg.SLOLatency, "latency SLO threshold surfaced as burn-rate gauges on /metrics")
	flag.Float64Var(&cfg.SLOObjective, "slo-objective", cfg.SLOObjective, "fraction of queries that must finish within -slo-latency (0 < objective < 1)")
	flag.Parse()

	srv := newServerShell(cfg)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.handler(),
		// Slowloris and stuck-peer guards: a hostile or wedged client can
		// hold a connection only this long at each phase.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Serve immediately — /healthz answers and /readyz reports "building"
	// while the structures come up in the background.
	go func() {
		start := time.Now()
		if err := srv.build(); err != nil {
			log.Fatalf("coopserve: build: %v", err)
		}
		src := "built"
		if srv.loadedSnapshot {
			src = "restored from " + cfg.SnapshotPath
		}
		log.Printf("coopserve: ready in %v (%s): %d shards, %d-leaf trees, P=%d, batch=%d",
			time.Since(start).Round(time.Millisecond), src, cfg.Shards, cfg.Leaves, cfg.Procs, cfg.BatchSize)
	}()
	log.Printf("coopserve: listening on %s", *addr)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("coopserve: %v: draining (%d in flight)", got, srv.inflight.Load())
		srv.beginDrain()
		if !srv.awaitDrain(cfg.DrainTimeout) {
			log.Printf("coopserve: drain timeout with %d still in flight", srv.inflight.Load())
		}
		if err := srv.saveSnapshot(); err != nil {
			log.Printf("coopserve: final snapshot: %v", err)
		} else if cfg.SnapshotPath != "" {
			log.Printf("coopserve: final snapshot written to %s", cfg.SnapshotPath)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("coopserve: shutdown: %v", err)
		}
		log.Printf("coopserve: drained, exiting")
	}
}
