// Command coopserve is a long-running HTTP daemon serving cooperative
// searches from the batched engine, with live observability:
//
//	POST /query               batched catalog/point/spatial queries (JSON)
//	GET  /metrics             Prometheus text exposition of the obs registry
//	GET  /healthz             liveness (always 200 once serving)
//	GET  /readyz              readiness (503 until structures are built)
//	GET  /spans?limit=N       JSONL span stream (replay=1 prepends history)
//	GET  /debug/pprof/        host CPU/heap/goroutine profiles
//	GET  /debug/pprof/steps   simulated-parallel-time profile (phase stacks);
//	                          loadable with `go tool pprof steps.pb.gz`
//
// Usage:
//
//	coopserve -addr=:8080 -procs=4096 -batch=32 -seed=1
//	curl -d '{"queries":[{"kind":"point","x":101,"y":51}]}' localhost:8080/query
//	go tool pprof -top http://localhost:8080/debug/pprof/steps
package main

import (
	"flag"
	"log"
	"net/http"

	"fraccascade/internal/geom"
)

// geomPoint builds the planar query point.
func geomPoint(x, y int64) geom.Point { return geom.Point{X: x, Y: y} }

func main() {
	cfg := defaultServerConfig()
	addr := flag.String("addr", ":8080", "listen address")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "structure generator seed")
	flag.IntVar(&cfg.Procs, "procs", cfg.Procs, "total simulated processor budget per batch")
	flag.IntVar(&cfg.BatchSize, "batch", cfg.BatchSize, "queries per engine batch")
	flag.IntVar(&cfg.Leaves, "leaves", cfg.Leaves, "catalog-tree leaves per shard")
	flag.IntVar(&cfg.Entries, "entries", cfg.Entries, "approximate catalog entries per shard")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "catalog shards")
	flag.IntVar(&cfg.Regions, "regions", cfg.Regions, "planar subdivision regions")
	flag.IntVar(&cfg.Tiles, "tiles", cfg.Tiles, "spatial complex tiles")
	flag.IntVar(&cfg.RingSize, "ring", cfg.RingSize, "span flight-recorder capacity")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coopserve: %d shards, %d-leaf trees, P=%d, batch=%d; listening on %s",
		cfg.Shards, cfg.Leaves, cfg.Procs, cfg.BatchSize, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}
