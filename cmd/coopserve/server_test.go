package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fraccascade/internal/obs"
)

// testServer builds a small server so the httptest suite stays fast.
func testServer(t *testing.T) *server {
	t.Helper()
	cfg := serverConfig{
		Seed: 7, Procs: 512, BatchSize: 8,
		Leaves: 1 << 4, Entries: 800, Shards: 2,
		Regions: 24, Tiles: 20, RingSize: 1024,
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (*http.Response, queryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

// TestQueryEndpoint drives all three query kinds through POST /query and
// checks the wire answers carry the cost model: per-answer phase
// decompositions summing to the step count, cache attribution on catalog
// answers, and batch reports covering the whole request.
func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var req queryRequest
	for i := 0; i < 10; i++ {
		req.Queries = append(req.Queries,
			wireQuery{Kind: "catalog", Shard: i % 2, Key: int64(100 * i), Leaf: int64(i)},
			wireQuery{Kind: "point", X: int64(3*i + 1), Y: int64(5*i + 2)},
			wireQuery{Kind: "spatial", X: int64(i), Y: int64(2 * i), Z: int64(i % 4)},
		)
	}
	resp, out := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}
	if len(out.Answers) != len(req.Queries) {
		t.Fatalf("answers = %d, want %d", len(out.Answers), len(req.Queries))
	}
	// 30 queries at batch size 8 → 4 engine batches.
	if len(out.Batches) != 4 {
		t.Fatalf("batches = %d, want 4", len(out.Batches))
	}
	var reported int
	for _, b := range out.Batches {
		reported += b.B
		if b.Steps < 0 || b.PShare < 1 {
			t.Fatalf("malformed batch report: %+v", b)
		}
	}
	if reported != len(req.Queries) {
		t.Fatalf("batch reports cover %d queries, want %d", reported, len(req.Queries))
	}
	for i, a := range out.Answers {
		if a.Err != "" {
			continue
		}
		var phased int
		for _, n := range a.PhaseSteps {
			phased += n
		}
		if phased != a.Steps {
			t.Fatalf("answer %d (%s): phase_steps sum to %d, steps = %d (%v)",
				i, a.Kind, phased, a.Steps, a.PhaseSteps)
		}
		if a.Kind == "catalog" && a.Cache == "" {
			t.Fatalf("answer %d: catalog answer missing cache attribution", i)
		}
		if a.Kind != "catalog" && a.Cache != "" {
			t.Fatalf("answer %d (%s): unexpected cache attribution %q", i, a.Kind, a.Cache)
		}
	}
}

// TestQueryEndpointRejections covers the request-validation paths.
func TestQueryEndpointRejections(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}

	resp, err = ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}

	for name, bad := range map[string]queryRequest{
		"empty":        {},
		"unknown kind": {Queries: []wireQuery{{Kind: "mystery"}}},
		"bad shard":    {Queries: []wireQuery{{Kind: "catalog", Shard: 99}}},
		"bad leaf":     {Queries: []wireQuery{{Kind: "catalog", Shard: 0, Leaf: 1 << 30}}},
	} {
		resp, _ := postQuery(t, ts, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestMetricsEndpoint checks /metrics is lint-clean Prometheus text and
// reflects traffic served through /query.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	req := queryRequest{Queries: []wireQuery{
		{Kind: "point", X: 11, Y: 3}, {Kind: "spatial", X: 1, Y: 2, Z: 0},
	}}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding query failed: %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintProm(string(text)); len(errs) != 0 {
		t.Fatalf("/metrics fails Prometheus lint:\n%s", strings.Join(errs, "\n"))
	}
	for _, want := range []string{"engine_queries", "engine_batch_steps", "engine_phase_"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestHealthEndpoints(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	s.state.Store(stateBuilding)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz while building = %d, want 503", resp.StatusCode)
	}
}

// TestSpansEndpoint replays ring history as JSONL and checks the spans
// decode with phase children referencing their parents.
func TestSpansEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	req := queryRequest{Queries: []wireQuery{
		{Kind: "point", X: 9, Y: 4}, {Kind: "point", X: 2, Y: 8},
		{Kind: "spatial", X: 3, Y: 1, Z: 1},
	}}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatal("seeding query failed")
	}

	resp, err := ts.Client().Get(ts.URL + "/spans?replay=1&limit=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /spans = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	parents := map[uint64]bool{}
	var queries, children int
	for dec.More() {
		var sp obs.Span
		if err := dec.Decode(&sp); err != nil {
			t.Fatal(err)
		}
		if sp.Parent == 0 {
			queries++
			parents[sp.ID] = true
		} else {
			children++
			if sp.Phase == "" {
				t.Fatalf("child span %d lacks phase label", sp.ID)
			}
			if !parents[sp.Parent] {
				t.Fatalf("child %d references unseen parent %d", sp.ID, sp.Parent)
			}
		}
	}
	if queries != len(req.Queries) {
		t.Fatalf("replayed %d query spans, want %d", queries, len(req.Queries))
	}
	if children == 0 {
		t.Fatal("no phase child spans replayed")
	}

	badResp, err := ts.Client().Get(ts.URL + "/spans?limit=nope")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", badResp.StatusCode)
	}
}

func TestPprofIndexEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

// TestStepsProfileEndpoint fetches the simulated-steps profile, verifies it
// is a valid gzipped profile.proto mentioning the engine phases, and — when
// the go tool is on PATH — feeds it to `go tool pprof -top` to prove the
// acceptance criterion end to end.
func TestStepsProfileEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var req queryRequest
	for i := 0; i < 16; i++ {
		req.Queries = append(req.Queries,
			wireQuery{Kind: "point", X: int64(7 * i), Y: int64(3 * i)},
			wireQuery{Kind: "catalog", Shard: i % 2, Key: int64(50 * i), Leaf: int64(i % 8)},
		)
	}
	if resp, _ := postQuery(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatal("seeding query failed")
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/steps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/steps = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("steps profile is not gzipped: %v", err)
	}
	proto, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// "steps" is the sample type; root-coop and hop-descent always accrue
	// steps on this workload (seq-tail can legitimately be zero and is
	// omitted, so it is not asserted).
	for _, phase := range []string{"steps", "root-coop", "hop-descent"} {
		if !bytes.Contains(proto, []byte(phase)) {
			t.Fatalf("steps profile missing %q in string table", phase)
		}
	}

	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; skipping pprof -top check")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "steps.pb.gz")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goTool, "tool", "pprof", "-top", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("root-coop")) || !bytes.Contains(out, []byte("steps")) {
		t.Fatalf("pprof -top output does not break down phases:\n%s", out)
	}
}
