// Command plquery is an interactive/scripted planar point-location demo:
// it generates a random monotone subdivision, preprocesses it, and locates
// points — either a batch of random ones or coordinates supplied as
// arguments.
//
// With -batch=b the random queries are instead pushed through the batched
// engine (internal/engine): the processor budget p is split across each
// batch of b concurrent queries and the tool reports queries/step against
// the one-at-a-time baseline.
//
// Usage:
//
//	plquery -regions=64 -levels=30 -p=256 -queries=10
//	plquery -regions=64 -levels=30 -p=256 101,51 33,77
//	plquery -regions=64 -levels=30 -p=1024 -queries=256 -batch=32
//	plquery -queries=256 -batch=32 -trace=spans.jsonl -metrics
//	plquery -pramcheck=20 -executor=virtual   # machine-executed searches vs the oracle
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/engine"
	"fraccascade/internal/geom"
	"fraccascade/internal/obs"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/pram"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

func main() {
	regions := flag.Int("regions", 64, "number of regions")
	levels := flag.Int("levels", 30, "number of y-levels")
	p := flag.Int("p", 256, "processor budget for cooperative queries")
	queries := flag.Int("queries", 10, "random queries to run when no coordinates are given")
	batch := flag.Int("batch", 0, "run the random queries through the batched engine in batches of this size (0 = one at a time)")
	seed := flag.Int64("seed", 1, "generator seed")
	executor := flag.String("executor", "virtual", "PRAM executor for -pramcheck: barrier, virtual, or uncosted")
	pramcheck := flag.Int("pramcheck", 0, "run this many machine-executed catalog searches on the separator structure and verify them against the cascade oracle")
	trace := flag.String("trace", "", "with -batch: write one JSONL span per query to this file (- for stdout)")
	metrics := flag.Bool("metrics", false, "with -batch: print an obs metrics snapshot after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	s, err := subdivision.Generate(*regions, *levels, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subdivision: %d regions, %d edges; queries must have %d < y < %d\n",
		s.NumRegions, len(s.Edges), s.YMin, s.YMax)

	if *pramcheck > 0 {
		kind, err := pram.ParseExecutorKind(*executor)
		if err != nil {
			log.Fatal(err)
		}
		pramVerify(loc.Structure(), rng, kind, *p, *pramcheck)
		return
	}

	locate := func(pt geom.Point) {
		region, stats, err := loc.LocateCoop(pt, *p)
		if err != nil {
			fmt.Printf("(%d,%d): error: %v\n", pt.X, pt.Y, err)
			return
		}
		brute, _ := s.LocateBrute(pt)
		status := "ok"
		if brute != region {
			status = fmt.Sprintf("MISMATCH (oracle says r_%d)", brute)
		}
		fmt.Printf("(%6d,%6d) -> r_%-4d  steps=%d hops=%d seq=%d  [%s]\n",
			pt.X, pt.Y, region, stats.Steps, stats.Hops, stats.SeqLevels, status)
	}

	if args := flag.Args(); len(args) > 0 {
		for _, arg := range args {
			parts := strings.SplitN(arg, ",", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "bad coordinate %q (want x,y)\n", arg)
				os.Exit(2)
			}
			x, err1 := strconv.ParseInt(parts[0], 10, 64)
			y, err2 := strconv.ParseInt(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "bad coordinate %q\n", arg)
				os.Exit(2)
			}
			locate(geom.Point{X: x, Y: y})
		}
		return
	}
	if *batch > 0 {
		var reg *obs.Registry
		if *metrics {
			reg = obs.NewRegistry()
		}
		var tracer *obs.JSONL
		if *trace != "" {
			w := os.Stdout
			if *trace != "-" {
				f, err := os.Create(*trace)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				w = f
			}
			tracer = obs.NewJSONL(w)
		}
		runBatched(s, loc, rng, *p, *queries, *batch, reg, tracer)
		return
	}
	if *metrics || *trace != "" {
		fmt.Fprintln(os.Stderr, "note: -metrics and -trace instrument the batched engine; add -batch=b to use them")
	}
	for q := 0; q < *queries; q++ {
		pt, _ := s.RandomInteriorPoint(rng)
		locate(pt)
	}
}

// pramVerify runs n complete catalog searches over the point-location
// separator structure as programs on the selected PRAM executor and checks
// every per-node answer against the fractional cascading oracle. This is
// the same single-source program the experiments measure, so it exercises
// the real machine path — conflict checking included on the costed
// executors — against live point-location data rather than a synthetic
// catalog tree.
func pramVerify(st *core.Structure, rng *rand.Rand, kind pram.ExecutorKind, p, n int) {
	tr := st.Tree()
	oracle := st.Cascade()
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < tr.N(); v++ {
		if tr.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	totalSteps := 0
	for q := 0; q < n; q++ {
		path := tr.RootPath(leaves[rng.Intn(len(leaves))])
		y := catalog.Key(rng.Int63n(1 << 20))
		m := pram.MustNewExecutor(kind, pram.CREW, max(4*p, 1<<16))
		got, rep, err := st.SearchExplicitPRAM(m, y, path, p)
		if err != nil {
			log.Fatalf("pram-verify query %d: %v", q, err)
		}
		want, err := oracle.SearchPath(y, path)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("pram-verify query %d: node %d: machine %+v, oracle %+v",
					q, path[i], got[i], want[i])
			}
		}
		totalSteps += rep.MachineSteps
	}
	fmt.Printf("pram-verify: %d machine searches on the %s executor (p=%d) all match the cascade oracle; avg %d machine steps\n",
		n, kind, p, totalSteps/n)
}

// runBatched pushes n random point-location queries through the batched
// engine in batches of b, verifies every answer against the brute-force
// oracle, and reports queries/step for batched vs one-at-a-time execution
// under the same total processor budget p.
func runBatched(s *subdivision.Subdivision, loc *pointloc.Locator, rng *rand.Rand, p, n, b int, reg *obs.Registry, tracer *obs.JSONL) {
	cfg := engine.Config{Procs: p, BatchSize: b, Obs: reg}
	if tracer != nil {
		cfg.Tracer = tracer
	}
	e, err := engine.New(cfg, nil, loc, nil)
	if err != nil {
		log.Fatal(err)
	}
	qs := make([]engine.Query, n)
	for i := range qs {
		pt, _ := s.RandomInteriorPoint(rng)
		qs[i] = engine.PointQuery(pt)
		e.Submit(qs[i])
	}
	answers, reports, err := e.Flush()
	if err != nil {
		log.Fatal(err)
	}
	batchSteps := 0
	for _, rep := range reports {
		batchSteps += rep.Steps
	}
	mismatches := 0
	for i, a := range answers {
		if a.Err != nil {
			log.Fatalf("query %d: %v", i, a.Err)
		}
		if brute, _ := s.LocateBrute(qs[i].Point); brute != a.Region {
			mismatches++
			fmt.Printf("(%d,%d): MISMATCH engine r_%d, oracle r_%d\n",
				qs[i].Point.X, qs[i].Point.Y, a.Region, brute)
		}
	}
	_, seqSteps, err := e.ExecuteSequential(qs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched: %d queries in %d batches of %d, p/query=%d, total %d steps (%.3f q/step)\n",
		n, len(reports), b, reports[0].PShare, batchSteps, float64(n)/float64(batchSteps))
	fmt.Printf("one-at-a-time baseline: %d steps (%.3f q/step) -> speedup %.1fx; mismatches: %d\n",
		seqSteps, float64(n)/float64(seqSteps), float64(seqSteps)/float64(batchSteps), mismatches)
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			log.Fatalf("trace sink: %v", err)
		}
	}
	if reg != nil {
		fmt.Println("\n=== metrics snapshot ===")
		if err := reg.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
