// Command plquery is an interactive/scripted planar point-location demo:
// it generates a random monotone subdivision, preprocesses it, and locates
// points — either a batch of random ones or coordinates supplied as
// arguments.
//
// Usage:
//
//	plquery -regions=64 -levels=30 -p=256 -queries=10
//	plquery -regions=64 -levels=30 -p=256 101,51 33,77
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/subdivision"
)

func main() {
	regions := flag.Int("regions", 64, "number of regions")
	levels := flag.Int("levels", 30, "number of y-levels")
	p := flag.Int("p", 256, "processor budget for cooperative queries")
	queries := flag.Int("queries", 10, "random queries to run when no coordinates are given")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	s, err := subdivision.Generate(*regions, *levels, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subdivision: %d regions, %d edges; queries must have %d < y < %d\n",
		s.NumRegions, len(s.Edges), s.YMin, s.YMax)

	locate := func(pt geom.Point) {
		region, stats, err := loc.LocateCoop(pt, *p)
		if err != nil {
			fmt.Printf("(%d,%d): error: %v\n", pt.X, pt.Y, err)
			return
		}
		brute, _ := s.LocateBrute(pt)
		status := "ok"
		if brute != region {
			status = fmt.Sprintf("MISMATCH (oracle says r_%d)", brute)
		}
		fmt.Printf("(%6d,%6d) -> r_%-4d  steps=%d hops=%d seq=%d  [%s]\n",
			pt.X, pt.Y, region, stats.Steps, stats.Hops, stats.SeqLevels, status)
	}

	if args := flag.Args(); len(args) > 0 {
		for _, arg := range args {
			parts := strings.SplitN(arg, ",", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "bad coordinate %q (want x,y)\n", arg)
				os.Exit(2)
			}
			x, err1 := strconv.ParseInt(parts[0], 10, 64)
			y, err2 := strconv.ParseInt(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "bad coordinate %q\n", arg)
				os.Exit(2)
			}
			locate(geom.Point{X: x, Y: y})
		}
		return
	}
	for q := 0; q < *queries; q++ {
		pt, _ := s.RandomInteriorPoint(rng)
		locate(pt)
	}
}
