package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/obs"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/subdivision"
)

// TestRunBatchedTraceJSONLRoundTrip drives the batched path with a JSONL
// tracer and decodes every line back into an obs.Span: query spans and
// their per-phase children must survive the encode/decode round trip with
// ids, phase labels, step windows, and processor shares intact.
func TestRunBatchedTraceJSONLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := subdivision.Generate(32, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewJSONL(&buf)
	runBatched(s, loc, rng, 256, 48, 8, obs.NewRegistry(), tracer)
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}

	var spans []obs.Span
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var sp obs.Span
		if err := dec.Decode(&sp); err != nil {
			t.Fatalf("decoding span %d: %v", len(spans), err)
		}
		spans = append(spans, sp)
	}

	parents := map[uint64]obs.Span{}
	var queries, children int
	for _, sp := range spans {
		if sp.StepHi-sp.StepLo != uint64(sp.Steps) {
			t.Fatalf("span %d: window [%d,%d) inconsistent with steps=%d", sp.ID, sp.StepLo, sp.StepHi, sp.Steps)
		}
		if sp.Parent == 0 {
			queries++
			if sp.Kind != "point" || sp.P < 1 || sp.Phase != "" {
				t.Fatalf("query span malformed: %+v", sp)
			}
			parents[sp.ID] = sp
		} else {
			children++
			if sp.Phase == "" {
				t.Fatalf("child span %d lost its phase label: %+v", sp.ID, sp)
			}
		}
	}
	// 48 batched queries plus the one-at-a-time baseline's absence: the
	// sequential path emits no spans, so exactly the batched queries trace.
	if queries != 48 {
		t.Fatalf("query spans = %d, want 48", queries)
	}
	if children == 0 {
		t.Fatal("no per-phase child spans were traced")
	}
	// Children reference existing parents and partition their windows.
	phased := map[uint64]int{}
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		par, ok := parents[sp.Parent]
		if !ok {
			t.Fatalf("child %d references unknown parent %d", sp.ID, sp.Parent)
		}
		if sp.StepLo < par.StepLo || sp.StepHi > par.StepHi {
			t.Fatalf("child %d window [%d,%d) escapes parent [%d,%d)",
				sp.ID, sp.StepLo, sp.StepHi, par.StepLo, par.StepHi)
		}
		phased[sp.Parent] += sp.Steps
	}
	for id, sum := range phased {
		if sum != parents[id].Steps {
			t.Fatalf("parent %d: children sum to %d steps, parent has %d", id, sum, parents[id].Steps)
		}
	}
}
