package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/engine"
	"fraccascade/internal/obs"
	"fraccascade/internal/tree"
)

const (
	e25BatchSet = 64 // distinct pre-generated batches replayed round-robin
	e25Reps     = 5  // timing repeats; min survives (GC/scheduler noise)
	e25Rounds   = 96 // timed batches per measurement pass
)

// e25Workload is one engine configuration plus a fixed batch stream; the
// enabled and disabled measurements replay the identical batches.
type e25Workload struct {
	name    string
	n       int
	batches [][]engine.Query
}

// e25Engine builds the serving engine for one measurement arm. Both arms
// carry the production observability baseline (metrics registry and span
// ring); only the flight recorder — the subsystem E25 prices — differs.
func e25Engine(seed int64, flat bool, rec *obs.FlightRecorder) (*engine.Engine, []*tree.Tree, int) {
	rng := rand.New(rand.NewSource(seed))
	const total = 20000
	st, bt := buildTree(1<<8, total, rng, core.Config{})
	st2, bt2 := buildTree(1<<8, total, rng, core.Config{})
	e, err := engine.New(engine.Config{
		Procs: 4096, Obs: obs.NewRegistry(), Tracer: obs.NewRing(4096),
		CacheSize: 64, FingerCache: true, Flat: flat, Recorder: rec,
	}, []engine.CatalogBackend{engine.StaticShard{St: st}, engine.StaticShard{St: st2}}, nil, nil)
	if err != nil {
		panic(err)
	}
	return e, []*tree.Tree{bt, bt2}, total
}

// e25Batches pre-generates the catalog batch stream: the E20 key mix (half
// clustered in narrow bands, half uniform), so the entry cache and finger
// gallop see the locality the recorder's cache/finger columns exist for.
func e25Batches(seed int64, trees []*tree.Tree, total, batch int) [][]engine.Query {
	rng := rand.New(rand.NewSource(seed ^ 0x653235)) // "e25"
	keyBound := int64(total) * 8
	clustered := func() catalog.Key {
		if rng.Intn(2) == 0 {
			return catalog.Key((keyBound/8)*int64(1+rng.Intn(7)) + rng.Int63n(128) - 64)
		}
		return catalog.Key(rng.Int63n(keyBound))
	}
	batches := make([][]engine.Query, e25BatchSet)
	for b := range batches {
		qs := make([]engine.Query, batch)
		for i := range qs {
			shard := rng.Intn(len(trees))
			t := trees[shard]
			qs[i] = engine.CatalogQuery(shard, clustered(), t.RootPath(tree.NodeID(rng.Intn(t.N()))))
		}
		batches[b] = qs
	}
	return batches
}

// e25Time replays the batch stream and returns host ns/query, min of
// e25Reps passes, with a warmup pass and a forced GC up front (same
// discipline as e22Time).
func e25Time(e *engine.Engine, batches [][]engine.Query, observe func([]engine.Answer)) float64 {
	batch := len(batches[0])
	runPass := func() time.Duration {
		start := time.Now()
		for i := 0; i < e25Rounds; i++ {
			answers, _, err := e.ExecuteBatch(batches[i%len(batches)])
			if err != nil {
				panic(err)
			}
			if observe != nil {
				observe(answers)
			}
		}
		return time.Since(start)
	}
	runPass() // warmup: caches fill, pool state grows
	runtime.GC()
	var best time.Duration
	for rep := 0; rep < e25Reps; rep++ {
		if d := runPass(); rep == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(e25Rounds*batch)
}

// runE25 prices the serving telemetry: identical engine workloads executed
// with the flight recorder off (the 0-alloc nil path coopserve runs under
// -flight-records=0) and on (recorder + rolling latency window + SLO fed
// per answer, exactly the coopserve serving loop). The ratio column is
// what the benchdiff telemetry gate holds; the engine arms replay the E20
// batched mix over the pointer and flat backends (E22's serving layout).
func runE25(seed int64) {
	fmt.Println("extension: serving-telemetry overhead — flight recorder + latency windows on vs off, identical batches")
	fmt.Printf("%-8s %9s %7s %15s %15s %10s\n",
		"workload", "n", "batch", "off ns/query", "on ns/query", "ratio")
	for _, arm := range []struct {
		name string
		flat bool
	}{{"pointer", false}, {"flat", true}} {
		for _, batch := range []int{8, 32, 128} {
			// Disabled arm: no recorder — the engine takes no per-query
			// clock readings and records nothing.
			eOff, trees, total := e25Engine(seed, arm.flat, nil)
			batches := e25Batches(seed, trees, total, batch)
			offNS := e25Time(eOff, batches, nil)

			// Enabled arm: recorder sized like coopserve's default, plus
			// the rolling window and SLO fed per answer.
			rec := obs.NewFlightRecorder(obs.FlightRecorderConfig{Reservoir: 2048})
			latWin := obs.NewWindowedHistogram(10*time.Second, 12)
			slo := obs.NewSLO(250*time.Millisecond, 0.99, 10*time.Second, 12)
			eOn, trees, total := e25Engine(seed, arm.flat, rec)
			batches = e25Batches(seed, trees, total, batch)
			onNS := e25Time(eOn, batches, func(answers []engine.Answer) {
				for i := range answers {
					latWin.Observe(answers[i].WallNS)
					slo.Observe(answers[i].WallNS)
				}
			})

			ratio := onNS / offNS
			fmt.Printf("%-8s %9d %7d %15.1f %15.1f %9.3fx\n",
				arm.name, total, batch, offNS, onNS, ratio)
			record(map[string]any{
				"workload": arm.name, "n": total, "batch": batch,
				"disabled_ns_per_query":    offNS,
				"enabled_ns_per_query":     onNS,
				"telemetry_overhead_ratio": ratio,
			})
			if st := rec.Stats(); st.Total == 0 {
				panic("e25: enabled arm recorded nothing — the measurement is vacuous")
			}
		}
	}
	fmt.Println("ratio is gated by benchdiff -telemetry-tol; the disabled arm is additionally pinned at 0 allocs/query by the engine alloc guards.")
}
