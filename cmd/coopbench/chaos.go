package main

import (
	"fmt"
	"math"
	"math/rand"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/faults"
	"fraccascade/internal/tree"
)

// runE19 is the chaos-mode experiment: it sweeps seeded fault rates across
// processor budgets and measures how the degrading cooperative search
// survives. For every (rate, p) cell it runs many searches, each under an
// independent seeded fault plan (crashes at the given per-processor rate,
// stragglers at half of it), and reports:
//
//	ok      — searches that completed (≥1 processor survived throughout)
//	dead    — searches aborted because every processor died
//	bad     — completed searches whose answers differ from the sequential
//	          oracle (must be 0: degradation may cost steps, never answers)
//	min p′  — average of the smallest live processor count per search
//	steps   — average steps of completed searches
//	factor  — average steps / ((log n)/log(min p′+1)), the constant in the
//	          degraded Theorem 1 shape
//	redrv   — average substructure re-derivations per completed search
func runE19(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("chaos mode: seeded fault plans vs the degrading cooperative search")
	leaves := 1 << 10
	total := leaves * 60
	st, bt := buildTree(leaves, total, rng, core.Config{})
	logN := st.Params().LogN
	fmt.Printf("structure: n=%d, log n=%d, substructures=%d\n\n", total, logN, st.NumSubstructures())
	fmt.Printf("%6s %8s %6s %6s %6s %8s %8s %8s %7s\n",
		"rate", "p", "ok", "dead", "bad", "min p'", "steps", "factor", "redrv")
	const runs = 200
	for _, rate := range []float64{0, 0.1, 0.3, 0.6, 0.9} {
		for _, p := range []int{16, 256, 4096} {
			var ok, dead, bad int
			var sumMin, sumSteps, sumRedrives int64
			var sumFactor float64
			for r := 0; r < runs; r++ {
				planSeed := seed*1_000_000 + int64(r)
				plan, err := faults.Random(planSeed, p, faults.Options{
					CrashRate:     rate,
					StragglerRate: rate / 2,
					MaxStall:      4,
					Horizon:       64,
				})
				if err != nil {
					panic(err)
				}
				leaf := tree.NodeID(bt.N() - 1 - rng.Intn(leaves))
				path := bt.RootPath(leaf)
				y := catalog.Key(rng.Intn(total * 8))
				got, ds, err := st.SearchExplicitDegraded(y, path, p, plan)
				if err != nil {
					dead++
					continue
				}
				ok++
				want, werr := st.Cascade().SearchPath(y, path)
				if werr != nil {
					panic(werr)
				}
				for i := range want {
					if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
						bad++
						break
					}
				}
				sumMin += int64(ds.MinLiveP)
				sumSteps += int64(ds.Steps)
				sumRedrives += int64(ds.Redrives)
				sumFactor += float64(ds.Steps) / (float64(logN) / math.Log2(float64(ds.MinLiveP)+1))
			}
			avg := func(sum int64) float64 {
				if ok == 0 {
					return 0
				}
				return float64(sum) / float64(ok)
			}
			avgFactor := 0.0
			if ok > 0 {
				avgFactor = sumFactor / float64(ok)
			}
			fmt.Printf("%6.2f %8d %6d %6d %6d %8.1f %8.1f %8.2f %7.2f\n",
				rate, p, ok, dead, bad, avg(sumMin), avg(sumSteps), avgFactor, avg(sumRedrives))
		}
	}
	// Second table: targeted mass crashes that force the surviving count
	// across substructure boundaries, exercising mid-search re-derivation.
	fmt.Println("\nmass crash at step 3: p=4096 collapses to p' survivors mid-search")
	fmt.Printf("%8s %6s %6s %8s %8s %7s\n", "p'", "ok", "bad", "steps", "factor", "redrv")
	p := 4096
	for _, survivors := range []int{1024, 64, 4, 1} {
		plan, err := faults.NewPlan(p)
		if err != nil {
			panic(err)
		}
		for proc := survivors; proc < p; proc++ {
			if err := plan.Crash(proc, 3); err != nil {
				panic(err)
			}
		}
		var ok, bad int
		var sumSteps, sumRedrives int64
		var sumFactor float64
		for r := 0; r < runs; r++ {
			leaf := tree.NodeID(bt.N() - 1 - rng.Intn(leaves))
			path := bt.RootPath(leaf)
			y := catalog.Key(rng.Intn(total * 8))
			got, ds, err := st.SearchExplicitDegraded(y, path, p, plan)
			if err != nil {
				panic(err) // survivors ≥ 1: the search must complete
			}
			ok++
			want, werr := st.Cascade().SearchPath(y, path)
			if werr != nil {
				panic(werr)
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
					bad++
					break
				}
			}
			sumSteps += int64(ds.Steps)
			sumRedrives += int64(ds.Redrives)
			sumFactor += float64(ds.Steps) / (float64(logN) / math.Log2(float64(ds.MinLiveP)+1))
		}
		fmt.Printf("%8d %6d %6d %8.1f %8.2f %7.2f\n",
			survivors, ok, bad, float64(sumSteps)/float64(ok), sumFactor/float64(ok), float64(sumRedrives)/float64(ok))
	}
	fmt.Println("\nanswers stay oracle-exact whenever one processor survives (bad = 0);")
	fmt.Println("steps degrade smoothly toward the surviving count's (log n)/log p' shape.")
}
