package main

import "testing"

// TestExperimentsSmoke runs the cheaper experiments end to end: they must
// complete without panicking (each panics on any oracle mismatch or
// internal error, so completing is a correctness statement, not just a
// crash check).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, e := range []struct {
		name string
		run  func(int64)
	}{
		{"e5", runE5},
		{"e9", runE9},
		{"e10", runE10},
		{"e12", runE12},
		{"e14", runE14},
		{"e15", runE15},
		{"e16", runE16},
		{"e17", runE17},
		{"e19", runE19},
		{"e21", runE21},
		{"e24", runE24},
		{"fig5", runFig5},
	} {
		e := e
		t.Run(e.name, func(t *testing.T) {
			e.run(2)
		})
	}
}
