package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/faults"
	"fraccascade/internal/snapshot"
	"fraccascade/internal/tree"
)

// E21 constants: one static and one dynamic shard, small enough that the
// smoke test replays the whole kill/restart/corrupt loop in seconds.
const (
	e21Leaves   = 16
	e21PerNode  = 15
	e21Rounds   = 8
	e21Ops      = 20
	e21Queries  = 40
	e21Capacity = 120
)

// e21Op is one replayable mutation of the dynamic shard. The op log plus
// the seeded initial catalogs are E21's "source": rebuild-from-source
// regenerates the catalogs and replays the log, which must reproduce the
// live structure exactly (same answers, same generation).
type e21Op struct {
	node    tree.NodeID
	key     catalog.Key
	payload int32
	del     bool
	flush   bool
}

// e21Catalogs generates the deterministic initial catalogs: per node, keys
// at even offsets in a node-private band, leaving odd offsets for inserts.
// Both shards share the layout (the static one never mutates away from it),
// so every differential query exercises both.
func e21Catalogs(t *tree.Tree, base int64) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	for v := range cats {
		keys := make([]catalog.Key, e21PerNode)
		for i := range keys {
			keys[i] = catalog.Key(base + int64(v)*100000 + int64(i)*20)
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

// e21Replay rebuilds the dynamic shard from source: fresh catalogs, then
// the full op log.
func e21Replay(t *tree.Tree, ops []e21Op) *dynamic.Structure {
	d, err := dynamic.New(t, e21Catalogs(t, 0), core.Config{}, e21Capacity)
	if err != nil {
		panic(err)
	}
	for _, op := range ops {
		switch {
		case op.flush:
			err = d.Flush()
		case op.del:
			err = d.Delete(op.node, op.key)
		default:
			err = d.Insert(op.node, op.key, op.payload)
		}
		if err != nil {
			panic(fmt.Sprintf("e21: replay diverged from live history: %v", err))
		}
	}
	return d
}

// e21Answers records the differential query set against both shards.
type e21Answer struct {
	statRes []cascade0
	dynRes  []cascade0
	statSteps,
	dynSteps int
}

// cascade0 is the comparable projection of a cascade.Result.
type cascade0 struct {
	Key     catalog.Key
	Payload int32
}

// e21Query runs one differential query against a shard pair.
func e21Query(st *core.Structure, d *dynamic.Structure, y catalog.Key, leaf tree.NodeID, p int) e21Answer {
	var a e21Answer
	sr, ss, err := st.SearchExplicit(y, st.Tree().RootPath(leaf), p)
	if err != nil {
		panic(err)
	}
	dr, ds, err := d.SearchExplicit(y, d.Static().Tree().RootPath(leaf), p)
	if err != nil {
		panic(err)
	}
	for _, r := range sr {
		a.statRes = append(a.statRes, cascade0{r.Key, r.Payload})
	}
	for _, r := range dr {
		a.dynRes = append(a.dynRes, cascade0{r.Key, r.Payload})
	}
	a.statSteps, a.dynSteps = ss.Steps, ds.Steps
	return a
}

// runE21 is the crash-safe persistence experiment: a kill/restart/corrupt
// loop over snapshot save and load. Each round churns a dynamic shard,
// records a seeded differential query set, saves a snapshot through a
// seeded disk fault plan (torn writes, truncation, bit flips, rename
// failures), "crashes" (drops the structures), and recovers — from the
// snapshot when it loads clean and generation-fresh, by rebuild-from-source
// otherwise. Every injected write fault must be detected at load (typed
// corruption, never a panic or a silent wrong load), and after every
// recovery the answers must match the pre-crash recording exactly (bad must
// be 0). Snapshot-restored structures must also reproduce step counts
// bit-identically.
func runE21(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir, err := os.MkdirTemp("", "coopbench-e21-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "shards.snap")

	bt, err := tree.NewBalancedBinary(e21Leaves)
	if err != nil {
		panic(err)
	}
	st, err := core.Build(bt, e21Catalogs(bt, 0), core.Config{})
	if err != nil {
		panic(err)
	}
	d, err := dynamic.New(bt, e21Catalogs(bt, 0), core.Config{}, e21Capacity)
	if err != nil {
		panic(err)
	}
	// live tracks insertable/deletable keys per node so churn stays valid.
	live := make([]map[catalog.Key]bool, bt.N())
	for v := range live {
		live[v] = map[catalog.Key]bool{}
		for i := 0; i < e21PerNode; i++ {
			live[v][catalog.Key(int64(v)*100000+int64(i)*20)] = true
		}
	}
	var ops []e21Op

	fmt.Println("crash-safe snapshot persistence: kill/restart/corrupt loop")
	fmt.Printf("shards: 1 static + 1 dynamic, %d leaves, %d keys/node, capacity %d\n\n", e21Leaves, e21PerNode, e21Capacity)
	fmt.Printf("%6s %-44s %-18s %5s %5s\n", "round", "fault schedule", "recovery", "gen", "bad")
	loadedRounds, rebuiltRounds, bad := 0, 0, 0
	for round := 0; round < e21Rounds; round++ {
		// Churn: apply ops to the live dynamic shard, logging each for
		// replay. Odd key offsets guarantee inserts never collide.
		for i := 0; i < e21Ops; i++ {
			v := tree.NodeID(rng.Intn(bt.N()))
			var op e21Op
			switch {
			case rng.Intn(6) == 0:
				op = e21Op{flush: true}
			case rng.Intn(3) == 0 && len(live[v]) > 1:
				var victim catalog.Key
				pick, k := rng.Intn(len(live[v])), 0
				for key := range live[v] {
					if k == pick {
						victim = key
						break
					}
					k++
				}
				op = e21Op{node: v, key: victim, del: true}
				delete(live[v], victim)
			default:
				key := catalog.Key(int64(v)*100000 + int64(round*e21Ops+i)*2 + 1)
				op = e21Op{node: v, key: key, payload: int32(round*1000 + i)}
				live[v][key] = true
			}
			switch {
			case op.flush:
				err = d.Flush()
			case op.del:
				err = d.Delete(op.node, op.key)
			default:
				err = d.Insert(op.node, op.key, op.payload)
			}
			if err != nil {
				panic(err)
			}
			ops = append(ops, op)
		}

		// Record the differential query set against the live structures.
		type q struct {
			y    catalog.Key
			leaf tree.NodeID
			p    int
		}
		qs := make([]q, e21Queries)
		want := make([]e21Answer, e21Queries)
		for i := range qs {
			qs[i] = q{
				y:    catalog.Key(rng.Int63n(int64(bt.N())*100000 + 1000)),
				leaf: tree.NodeID(bt.N() - 1 - rng.Intn(e21Leaves)),
				p:    []int{4, 64, 1024}[rng.Intn(3)],
			}
			want[i] = e21Query(st, d, qs[i].y, qs[i].leaf, qs[i].p)
		}

		// Save through a seeded disk fault plan, stamping the generation
		// with the round so a stale (pre-crash) snapshot is detectable.
		plan, err := faults.RandomDisk(seed*1_000_000+int64(round), faults.DiskOptions{
			TornRate: 0.25, TruncateRate: 0.2, FlipRate: 0.25, RenameFailRate: 0.15, Horizon: 1,
		})
		if err != nil {
			panic(err)
		}
		store := &snapshot.Store{Generation: uint64(round + 1), Shards: []snapshot.Shard{
			{Kind: snapshot.KindStatic, Static: st},
			{Kind: snapshot.KindDynamic, Dynamic: d},
		}}
		saveErr := snapshot.SaveFS(plan, path, store)
		schedule := strings.Join(plan.Events(), ", ")
		if schedule == "" {
			schedule = "clean"
		}
		dataFault := false
		for _, ev := range plan.Events() {
			if strings.Contains(ev, "call=0") && !strings.Contains(ev, "rename-fail") {
				dataFault = true
			}
		}

		// Crash and recover. A clean, generation-fresh load serves the
		// snapshot; anything else falls back to rebuild-from-source.
		st, d = nil, nil
		loaded, loadErr := snapshot.Load(path)
		outcome := ""
		gen := uint64(0)
		switch {
		case loadErr != nil:
			if saveErr == nil && !snapshot.IsCorrupt(loadErr) {
				panic(fmt.Sprintf("e21 round %d: untyped load error %v (schedule %s)", round, loadErr, schedule))
			}
			outcome = "rebuild (corrupt)"
			if saveErr != nil {
				outcome = "rebuild (no file)"
			}
		case loaded.Generation != uint64(round+1):
			outcome = "rebuild (stale)"
			gen = loaded.Generation
		default:
			if saveErr == nil && dataFault {
				panic(fmt.Sprintf("e21 round %d: injected write fault not detected at load (schedule %s)", round, schedule))
			}
			outcome = "loaded"
			gen = loaded.Generation
		}
		fromSnapshot := outcome == "loaded"
		if fromSnapshot {
			st, d = loaded.Shards[0].Static, loaded.Shards[1].Dynamic
			loadedRounds++
		} else {
			st, err = core.Build(bt, e21Catalogs(bt, 0), core.Config{})
			if err != nil {
				panic(err)
			}
			d = e21Replay(bt, ops)
			rebuiltRounds++
		}

		// Differential check: recovered answers must equal the pre-crash
		// recording; snapshot loads must also match steps bit-exactly.
		roundBad := 0
		for i := range qs {
			got := e21Query(st, d, qs[i].y, qs[i].leaf, qs[i].p)
			if !reflect.DeepEqual(got.statRes, want[i].statRes) || !reflect.DeepEqual(got.dynRes, want[i].dynRes) {
				roundBad++
				continue
			}
			if fromSnapshot && (got.statSteps != want[i].statSteps || got.dynSteps != want[i].dynSteps) {
				roundBad++
			}
		}
		bad += roundBad
		fmt.Printf("%6d %-44s %-18s %5d %5d\n", round, schedule, outcome, gen, roundBad)
	}
	fmt.Printf("\nrounds: %d served from snapshot, %d rebuilt from source, %d bad answers\n",
		loadedRounds, rebuiltRounds, bad)
	if bad != 0 {
		panic("e21: recovery served wrong answers")
	}
	fmt.Println("every injected fault was detected at load; every recovery is oracle-exact.")
}
