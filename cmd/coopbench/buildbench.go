package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// e23TimeReps is how many timing passes each (n, par) cell runs; the
// fastest survives, discarding GC pauses and scheduler noise exactly as
// E22's query timings do.
const e23TimeReps = 2

// e23TimeMS runs fn reps times and returns the fastest wall time in ms.
func e23TimeMS(reps int, fn func()) float64 {
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		start := time.Now()
		fn()
		ms := float64(time.Since(start).Microseconds()) / 1000
		if rep == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// runE23 measures construction throughput: wall time to build the pointer
// cascade (core.Build — catalog augmentation, bridges, skeleton blocks)
// and to freeze it into the flat layout, sequential vs fanned out over the
// build pool (internal/buildpool). The output is bit-identical for every
// parallelism — pinned by the determinism property tests — so the only
// thing allowed to move here is wall time. build_speedup is the row's
// sequential build time over its parallel build time; on a single-core
// host it stays ~1.0, while 4+ host cores should clear 2x on the largest
// tree (the informational claim `make bench-build` tracks).
func runE23(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cores := runtime.GOMAXPROCS(0)
	fmt.Printf("construction throughput: pointer build + flat freeze, sequential vs build-pool fan-out (%d host cores)\n", cores)
	fmt.Printf("%9s %5s %12s %12s %14s\n", "n", "par", "build ms", "freeze ms", "build speedup")

	for _, leaves := range []int{1 << 8, 1 << 10, 1 << 11} {
		total := leaves * 94
		bt, err := tree.NewBalancedBinary(leaves)
		if err != nil {
			panic(err)
		}
		cats := randomCatalogs(bt, total, rng)
		seqMS := 0.0
		for _, par := range []int{1, 2, 4} {
			cfg := core.Config{Parallelism: par}
			var st *core.Structure
			buildMS := e23TimeMS(e23TimeReps, func() {
				st, err = core.Build(bt, cats, cfg)
				if err != nil {
					panic(err)
				}
			})
			freezeMS := e23TimeMS(e23TimeReps, func() {
				if _, err := flat.FreezeParallel(st, par); err != nil {
					panic(err)
				}
			})
			if par == 1 {
				seqMS = buildMS
			}
			speedup := seqMS / buildMS
			fmt.Printf("%9d %5d %12.2f %12.2f %14.2f\n", total, par, buildMS, freezeMS, speedup)
			record(map[string]any{
				"n": total, "par": par,
				"build_ms":      buildMS,
				"freeze_ms":     freezeMS,
				"build_speedup": speedup,
				"host_cores":    cores,
			})
		}
	}
	fmt.Println("build_speedup is informational on single-core hosts; the layout is bit-identical at every parallelism (determinism property tests).")
}
