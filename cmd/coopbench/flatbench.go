package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// e22Query is one pre-generated (key, root path) pair; every timing loop
// in E22 replays the same fixed query set so the pointer, flat, and wall
// measurements cover identical work.
type e22Query struct {
	y    catalog.Key
	path []tree.NodeID
}

// e22Workload bundles one structure with its query set.
type e22Workload struct {
	name    string
	n       int // augmented-entry scale reported in the table
	st      *core.Structure
	queries []e22Query
}

const (
	e22QuerySet  = 256 // distinct queries replayed round-robin
	e22BatchSize = 64  // wall-executor batch width
	e22BatchReps = 32  // timed batches per row
	e22TimeReps  = 3   // timing repeats; min survives (GC/scheduler noise)
)

// e22CatalogWorkload builds the same balanced catalog trees E17 measures
// in simulated steps, with a matching query distribution.
func e22CatalogWorkload(leaves, total int, rng *rand.Rand) e22Workload {
	st, bt := buildTree(leaves, total, rng, core.Config{})
	qs := make([]e22Query, e22QuerySet)
	for i := range qs {
		qs[i] = e22Query{
			y:    catalog.Key(rng.Intn(total * 8)),
			path: bt.RootPath(tree.NodeID(rng.Intn(bt.N()))),
		}
	}
	return e22Workload{name: "catalog", n: total, st: st, queries: qs}
}

// e22PlanarWorkload freezes the separator-tree structure behind the planar
// point locator: unbalanced tree, catalogs keyed by edge order — the shape
// the flat layout must not be tuned against.
func e22PlanarWorkload(rng *rand.Rand) e22Workload {
	s, err := subdivision.Generate(128, 24, rng)
	if err != nil {
		panic(err)
	}
	pl, err := pointloc.Build(s, core.Config{})
	if err != nil {
		panic(err)
	}
	st := pl.Structure()
	bt := st.Tree()
	qs := make([]e22Query, e22QuerySet)
	for i := range qs {
		qs[i] = e22Query{
			y:    catalog.Key(rng.Int63n(1 << 21)),
			path: bt.RootPath(tree.NodeID(rng.Intn(bt.N()))),
		}
	}
	return e22Workload{name: "planar", n: bt.N(), st: st, queries: qs}
}

// e22Time runs fn over the query set ops times and returns host ns/op and
// heap allocations/op (runtime mallocs delta — exact, not sampled). The
// loop repeats e22TimeReps times and keeps the fastest pass — min-of-reps
// discards GC pauses and scheduler noise, which the regression gate would
// otherwise see as 4x spikes — while allocations take the worst pass, so
// a malloc cannot hide behind a lucky repeat. A forced GC up front drains
// the debt left by whatever allocated before the measurement.
func e22Time(ops int, qs []e22Query, fn func(q e22Query)) (nsPerOp, allocsPerOp float64) {
	runtime.GC()
	var before, after runtime.MemStats
	for rep := 0; rep < e22TimeReps; rep++ {
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < ops; i++ {
			fn(qs[i%len(qs)])
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(ops)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(ops)
		if rep == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if allocs > allocsPerOp {
			allocsPerOp = allocs
		}
	}
	return nsPerOp, allocsPerOp
}

// runE22 times the frozen flat layout against the pointer structure on the
// host clock — the tentpole claim that the simulated-step tables (E17)
// leave open. Three measurements per row over the identical query set:
// the pointer SearchExplicit (allocates results per call), the flat
// SearchExplicitInto hot path (zero-alloc), and the native wall executor
// batching queries across min(p, GOMAXPROCS) goroutines. machine_steps is
// the cost model's deterministic average for the row, so the JSON keeps
// simulated steps beside the ns/op and allocs/op columns.
func runE22(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("extension: flat-memory hot path vs pointer structure, host ns/op (cost model held bit-identical by the differential suite)")
	fmt.Printf("%-8s %9s %8s %7s %12s %12s %12s %11s %11s\n",
		"workload", "n", "p", "steps", "ptr ns/op", "flat ns/op", "wall ns/op", "flat allocs", "wall allocs")

	workloads := []e22Workload{
		e22CatalogWorkload(1<<6, 6000, rng), // the seed configuration, pinned for the benchmarks
		e22CatalogWorkload(1<<9, (1<<9)*94, rng),
		e22CatalogWorkload(1<<11, (1<<11)*94, rng),
		e22PlanarWorkload(rng),
	}
	for _, w := range workloads {
		f, err := flat.Freeze(w.st)
		if err != nil {
			panic(err)
		}
		maxPath := 0
		for _, q := range w.queries {
			if len(q.path) > maxPath {
				maxPath = len(q.path)
			}
		}
		out := make([]cascade.Result, maxPath)
		for _, p := range []int{1, 4, 16, 256, 65536} {
			// Deterministic simulated cost, averaged over the query set.
			var steps int64
			for _, q := range w.queries {
				_, stats, err := w.st.SearchExplicit(q.y, q.path, p)
				if err != nil {
					panic(err)
				}
				steps += int64(stats.Steps)
			}
			avgSteps := steps / int64(len(w.queries))

			ptrNS, _ := e22Time(2000, w.queries, func(q e22Query) {
				if _, _, err := w.st.SearchExplicit(q.y, q.path, p); err != nil {
					panic(err)
				}
			})
			flatNS, flatAllocs := e22Time(4000, w.queries, func(q e22Query) {
				if _, err := f.SearchExplicitInto(q.y, q.path, p, out[:len(q.path)]); err != nil {
					panic(err)
				}
			})
			wallNS, wallAllocs := e22Wall(f, w.queries, p)

			fmt.Printf("%-8s %9d %8d %7d %12.1f %12.1f %12.1f %11.3f %11.3f\n",
				w.name, w.n, p, avgSteps, ptrNS, flatNS, wallNS, flatAllocs, wallAllocs)
			record(map[string]any{
				"workload": w.name, "n": w.n, "p": p,
				"machine_steps":      avgSteps,
				"pointer_ns_per_op":  ptrNS,
				"flat_ns_per_op":     flatNS,
				"wall_ns_per_op":     wallNS,
				"flat_allocs_per_op": flatAllocs,
				"wall_allocs_per_op": wallAllocs,
				"wall_procs":         minInt(p, runtime.GOMAXPROCS(0)),
			})
		}
	}
	fmt.Println("flat/wall allocs columns must stay 0.000: the hot path never touches the heap (pinned by make bench-wall and the alloc guards).")
}

// e22Wall times the native wall executor: batches of e22BatchSize queries
// fanned across min(p, GOMAXPROCS) worker goroutines, buffers reused so
// the steady state is allocation-free. Warmup batches run first — the
// pool's first rounds grow per-worker state that the guard test also
// excludes.
func e22Wall(f *flat.Structure, qs []e22Query, p int) (nsPerOp, allocsPerOp float64) {
	procs := minInt(p, runtime.GOMAXPROCS(0))
	w, err := flat.NewWall(f, procs)
	if err != nil {
		panic(err)
	}
	defer w.Close()

	ys := make([]catalog.Key, e22BatchSize)
	paths := make([][]tree.NodeID, e22BatchSize)
	out := make([][]cascade.Result, e22BatchSize)
	errs := make([]error, e22BatchSize)
	for i := 0; i < e22BatchSize; i++ {
		q := qs[i%len(qs)]
		ys[i], paths[i] = q.y, q.path
		out[i] = make([]cascade.Result, len(q.path))
	}
	runBatch := func() {
		if err := w.SearchBatch(ys, paths, out, errs); err != nil {
			panic(err)
		}
		for _, e := range errs {
			if e != nil {
				panic(e)
			}
		}
	}
	for i := 0; i < 4; i++ {
		runBatch()
	}
	runtime.GC()
	ops := float64(e22BatchReps * e22BatchSize)
	var before, after runtime.MemStats
	for rep := 0; rep < e22TimeReps; rep++ {
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < e22BatchReps; i++ {
			runBatch()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / ops
		allocs := float64(after.Mallocs-before.Mallocs) / ops
		if rep == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if allocs > allocsPerOp {
			allocsPerOp = allocs
		}
	}
	return nsPerOp, allocsPerOp
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
