package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/rangetree"
	"fraccascade/internal/segtree"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// randomCatalogs builds one random catalog per node totalling roughly
// `total` entries, with skewed per-node sizes.
func randomCatalogs(t *tree.Tree, total int, rng *rand.Rand) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	for v := range cats {
		var size int
		switch rng.Intn(3) {
		case 0:
			size = rng.Intn(4)
		case 1:
			size = rng.Intn(2*total/(t.N()+1) + 1)
		default:
			size = rng.Intn(4 * total / (t.N() + 1))
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(total * 8))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

func buildTree(leaves, total int, rng *rand.Rand, cfg core.Config) (*core.Structure, *tree.Tree) {
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		panic(err)
	}
	cats := randomCatalogs(bt, total, rng)
	st, err := core.Build(bt, cats, cfg)
	if err != nil {
		panic(err)
	}
	return st, bt
}

var e1Procs = []int{1, 4, 16, 256, 65536, 1 << 20}

func runE1(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: explicit search in O((log n)/log p) CREW steps, any 1 <= p <= n")
	fmt.Println("\n-- default parameters (paper constants; hop height pinned near 1 at these n) --")
	fmt.Printf("%10s %8s %8s %6s %6s %6s %6s %10s\n", "n", "p", "sub(h)", "steps", "root", "hops", "seq", "logn/logp")
	for _, leaves := range []int{1 << 8, 1 << 10} {
		total := leaves * 60
		st, bt := buildTree(leaves, total, rng, core.Config{})
		path := bt.RootPath(tree.NodeID(bt.N() - 1))
		for _, p := range e1Procs {
			var agg core.Stats
			const reps = 20
			for r := 0; r < reps; r++ {
				y := catalog.Key(rng.Intn(total * 8))
				_, stats, err := st.SearchExplicit(y, path, p)
				if err != nil {
					panic(err)
				}
				agg.Steps += stats.Steps
				agg.RootRounds += stats.RootRounds
				agg.Hops += stats.Hops
				agg.SeqLevels += stats.SeqLevels
				agg.Sub = stats.Sub
			}
			pred := math.Log2(float64(total)) / math.Log2(float64(p)+1.5)
			fmt.Printf("%10d %8d %5d(%d) %6d %6d %6d %6d %10.1f\n",
				total, p, agg.Sub, st.Substructure(agg.Sub).H,
				agg.Steps/reps, agg.RootRounds/reps, agg.Hops/reps, agg.SeqLevels/reps, pred)
			record(map[string]any{"n": total, "p": p, "steps": agg.Steps / reps, "predicted": pred})
		}
	}
	fmt.Println("\n-- large n (~1M entries): the default constants reach h=3 and beat sequential --")
	fmt.Printf("%10s %8s %8s %6s %6s %6s %6s\n", "n", "p", "sub(h)", "steps", "root", "hops", "seq")
	{
		stBig, btBig := buildTree(1<<12, 1<<20, rng, core.Config{})
		pathBig := btBig.RootPath(tree.NodeID(btBig.N() - 1))
		nBig := stBig.Cascade().Stats().NativeEntries
		for _, p := range []int{1, 256, 65536, 1 << 19} {
			var agg core.Stats
			const reps = 20
			for r := 0; r < reps; r++ {
				y := catalog.Key(rng.Int63n(1 << 40))
				_, stats, err := stBig.SearchExplicit(y, pathBig, p)
				if err != nil {
					panic(err)
				}
				agg.Steps += stats.Steps
				agg.RootRounds += stats.RootRounds
				agg.Hops += stats.Hops
				agg.SeqLevels += stats.SeqLevels
				agg.Sub = stats.Sub
			}
			fmt.Printf("%10d %8d %5d(%d) %6d %6d %6d %6d\n",
				nBig, p, agg.Sub, stBig.Substructure(agg.Sub).H,
				agg.Steps/reps, agg.RootRounds/reps, agg.Hops/reps, agg.SeqLevels/reps)
		}
	}

	fmt.Println("\n-- hop-height ablation (HOverride, no truncation): the 1/h curve in isolation --")
	fmt.Printf("%6s %8s %8s %8s\n", "h", "steps", "hops", "seq")
	bt, _ := tree.NewBalancedBinary(1 << 10)
	cats := randomCatalogs(bt, 1<<16, rng)
	for _, h := range []int{1, 2, 3, 5} {
		h := h
		st, err := core.Build(bt, cats, core.Config{MaxSubs: 1, NoTruncation: true,
			HOverride: func(int) int { return h }})
		if err != nil {
			panic(err)
		}
		path := bt.RootPath(tree.NodeID(bt.N() - 1))
		var steps, hops, seq int
		const reps = 20
		for r := 0; r < reps; r++ {
			y := catalog.Key(rng.Intn(1 << 19))
			_, stats, err := st.SearchExplicit(y, path, 64)
			if err != nil {
				panic(err)
			}
			steps += stats.Steps - stats.RootRounds
			hops += stats.Hops
			seq += stats.SeqLevels
		}
		fmt.Printf("%6d %8d %8d %8d\n", h, steps/reps, hops/reps, seq/reps)
	}
}

func runE2(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: implicit search (branch chosen at each node) in the same O((log n)/log p)")
	st, bt := buildTree(1<<9, 30000, rng, core.Config{})
	inorder, err := bt.InorderIndex()
	if err != nil {
		panic(err)
	}
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	fmt.Printf("%8s %6s %6s %6s %6s %10s\n", "p", "steps", "root", "hops", "seq", "slotsPeak")
	for _, p := range e1Procs {
		var agg core.Stats
		const reps = 20
		for r := 0; r < reps; r++ {
			target := leaves[rng.Intn(len(leaves))]
			branch := func(res cascade.Result) core.Branch {
				if inorder[res.Node] < inorder[target] {
					return core.Right
				}
				return core.Left
			}
			y := catalog.Key(rng.Intn(240000))
			_, leaf, stats, err := st.SearchImplicit(y, branch, p)
			if err != nil {
				panic(err)
			}
			if leaf != target {
				panic("implicit search missed its target")
			}
			agg.Steps += stats.Steps
			agg.RootRounds += stats.RootRounds
			agg.Hops += stats.Hops
			agg.SeqLevels += stats.SeqLevels
			if stats.SlotsPeak > agg.SlotsPeak {
				agg.SlotsPeak = stats.SlotsPeak
			}
		}
		fmt.Printf("%8d %6d %6d %6d %6d %10d\n",
			p, agg.Steps/reps, agg.RootRounds/reps, agg.Hops/reps, agg.SeqLevels/reps, agg.SlotsPeak)
	}
}

func runE3(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: preprocessing in O(log n) time with n/log n EREW processors")
	fmt.Printf("%10s %8s %10s %12s %12s %10s\n", "n", "rounds", "logn", "aug-entries", "work", "wall")
	for _, leaves := range []int{1 << 6, 1 << 8, 1 << 10, 1 << 12} {
		total := leaves * 40
		bt, _ := tree.NewBalancedBinary(leaves)
		cats := randomCatalogs(bt, total, rng)
		start := time.Now()
		st, err := core.Build(bt, cats, core.Config{})
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)
		cs := st.Cascade().Stats()
		fmt.Printf("%10d %8d %10d %12d %12d %10s\n",
			cs.NativeEntries, cs.Rounds, parallel.CeilLog2(int(cs.NativeEntries)),
			cs.AugEntries, cs.Work, wall.Round(time.Millisecond))
	}
	fmt.Println("rounds grow with tree height = Θ(log n); work stays linear in n (EREW-legality of the")
	fmt.Println("level-parallel schedule is machine-checked in the test suite on the PRAM simulator).")
}

func runE4(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: T' uses O(n) space; per-T_i sizes sum geometrically (Lemma 2)")
	fmt.Printf("%10s %10s %10s %10s %12s  per-substructure slots\n", "n", "aug", "skeleton", "total", "total/n")
	for _, leaves := range []int{1 << 6, 1 << 8, 1 << 10, 1 << 12} {
		total := leaves * 40
		st, _ := buildTree(leaves, total, rng, core.Config{})
		r := st.SpaceReport()
		tot := r.AugEntries + r.SkeletonSlots
		fmt.Printf("%10d %10d %10d %10d %12.2f  %v\n",
			r.NativeEntries, r.AugEntries, r.SkeletonSlots, tot,
			float64(tot)/float64(r.NativeEntries), r.PerSub)
	}
}

func runE5(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: path of length k in O(log n/log p + k/(p^(1-eps) log p)) (Theorem 2, eps=0.5)")
	fmt.Printf("%8s %8s %8s %8s %8s\n", "k", "p", "steps", "hops", "seq")
	for _, k := range []int{1000, 4000} {
		pt, err := tree.NewPath(k)
		if err != nil {
			panic(err)
		}
		cats := randomCatalogs(pt, k*4, rng)
		st, err := core.Build(pt, cats, core.Config{NoTruncation: true})
		if err != nil {
			panic(err)
		}
		full := pt.RootPath(tree.NodeID(k - 1))
		for _, p := range []int{1, 16, 256, 4096, 65536} {
			y := catalog.Key(rng.Intn(k * 32))
			_, stats, err := st.SearchLongPath(y, full, p, 0.5)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%8d %8d %8d %8d %8d\n", k, p, stats.Steps, stats.Hops, stats.SeqLevels)
		}
	}
}

func runE6(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: degree-d trees searched in O(log n · log d / log p) (Theorem 3)")
	fmt.Printf("%6s %10s %8s %8s %12s\n", "d", "expanded", "p", "steps", "per-orig-node")
	for _, d := range []int{2, 4, 8, 16} {
		tr, err := tree.NewRandom(2000, d, rng)
		if err != nil {
			panic(err)
		}
		cats := randomCatalogs(tr, 8000, rng)
		ds, err := core.BuildDegreeD(tr, cats, core.Config{NoTruncation: true})
		if err != nil {
			panic(err)
		}
		// Deepest node's path.
		deepest := tree.NodeID(0)
		for v := tree.NodeID(0); int(v) < tr.N(); v++ {
			if tr.Depth(v) > tr.Depth(deepest) {
				deepest = v
			}
		}
		path := tr.RootPath(deepest)
		for _, p := range []int{16, 4096} {
			y := catalog.Key(rng.Intn(64000))
			_, stats, err := ds.SearchExplicit(y, path, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%6d %10d %8d %8d %12.2f\n",
				d, ds.Expanded().N(), p, stats.Steps, float64(stats.Steps)/float64(len(path)))
		}
	}
}

func runE7(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: planar point location in O((log n)/log p) with O(n) space (Theorem 4)")
	fmt.Printf("%8s %8s %8s %8s %8s %8s %10s\n", "regions", "edges", "p", "steps", "hops", "seq", "validated")
	for _, f := range []int{64, 256, 1024} {
		s, err := subdivision.Generate(f, 40, rng)
		if err != nil {
			panic(err)
		}
		loc, err := pointloc.Build(s, core.Config{})
		if err != nil {
			panic(err)
		}
		for _, p := range []int{1, 64, 65536} {
			var agg core.Stats
			const reps = 40
			ok := 0
			for r := 0; r < reps; r++ {
				pt, want := s.RandomInteriorPoint(rng)
				got, stats, err := loc.LocateCoop(pt, p)
				if err != nil {
					panic(err)
				}
				if got == want {
					ok++
				}
				agg.Steps += stats.Steps
				agg.Hops += stats.Hops
				agg.SeqLevels += stats.SeqLevels
			}
			fmt.Printf("%8d %8d %8d %8d %8d %8d %8d/%d\n",
				f, len(s.Edges), p, agg.Steps/reps, agg.Hops/reps, agg.SeqLevels/reps, ok, reps)
		}
	}
	fmt.Println("\n-- hop-height ablation (the (log n)/log p curve for point location) --")
	fmt.Printf("%6s %8s %8s\n", "h", "steps", "hops")
	s, err := subdivision.Generate(1024, 50, rng)
	if err != nil {
		panic(err)
	}
	for _, h := range []int{1, 2, 4} {
		h := h
		loc, err := pointloc.Build(s, core.Config{MaxSubs: 1, NoTruncation: true,
			HOverride: func(int) int { return h }})
		if err != nil {
			panic(err)
		}
		var steps, hops int
		const reps = 40
		for r := 0; r < reps; r++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, stats, err := loc.LocateCoop(pt, 64)
			if err != nil {
				panic(err)
			}
			if got != want {
				panic("wrong region")
			}
			steps += stats.Steps - stats.RootRounds
			hops += stats.Hops
		}
		fmt.Printf("%6d %8d %8d\n", h, steps/reps, hops/reps)
	}
}

func runE8(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: spatial point location in O((log^2 n)/log^2 p) (Theorem 5, Corollary 1)")
	fmt.Printf("%8s %8s %8s %8s %8s %8s\n", "cells", "facets", "p", "steps", "hops", "seq")
	for _, tiles := range []int{50, 200, 800} {
		c, err := spatial.Generate(tiles, 5, rng)
		if err != nil {
			panic(err)
		}
		loc, err := spatial.NewLocator(c)
		if err != nil {
			panic(err)
		}
		for _, p := range []int{1, 64, 65536} {
			var agg spatial.Stats
			const reps = 30
			for r := 0; r < reps; r++ {
				x, y, z, want := c.RandomInteriorPoint(rng)
				got, stats, err := loc.LocateCoop(x, y, z, p)
				if err != nil {
					panic(err)
				}
				if got != want {
					panic("wrong cell")
				}
				agg.Steps += stats.Steps
				agg.Hops += stats.Hops
				agg.SeqLevels += stats.SeqLevels
			}
			fmt.Printf("%8d %8d %8d %8d %8d %8d\n",
				len(c.Cells), len(c.Facets), p, agg.Steps/reps, agg.Hops/reps, agg.SeqLevels/reps)
		}
	}
}

func runE9(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: direct retrieval O(log n/log p + loglog n + k/p); indirect O(log n/log p) (Theorem 6)")
	// Segment intersection.
	segs := make([]segtree.VSegment, 4000)
	for i := range segs {
		y1 := 2 * rng.Int63n(8000)
		segs[i] = segtree.VSegment{X: 2 * rng.Int63n(8000), Y1: y1, Y2: y1 + 2 + 2*rng.Int63n(4000)}
	}
	it, err := segtree.NewIntersector(segs, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("\n-- segment intersection (k sweep via query width) --")
	fmt.Printf("%8s %8s %6s | direct: %6s %6s %6s | indirect: %6s %7s\n",
		"width", "p", "k", "search", "alloc", "report", "steps", "ranges")
	for _, width := range []int64{200, 2000, 16000} {
		for _, p := range []int{1, 64, 65536} {
			q := segtree.HQuery{Y: 6001, X1: 1000, X2: 1000 + width}
			_, ds, err := it.QueryDirect(q, p)
			if err != nil {
				panic(err)
			}
			ranges, is, err := it.QueryIndirect(q, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%8d %8d %6d | %14d %6d %6d | %16d %7d\n",
				width, p, ds.K, ds.SearchSteps, ds.AllocSteps, ds.ReportSteps,
				is.SearchSteps+is.AllocSteps, len(ranges))
		}
	}
	// Point enclosure.
	rects := make([]segtree.Rect, 4000)
	for i := range rects {
		x1, y1 := 2*rng.Int63n(8000), 2*rng.Int63n(8000)
		rects[i] = segtree.Rect{X1: x1, X2: x1 + 2*rng.Int63n(3000), Y1: y1, Y2: y1 + 2*rng.Int63n(3000)}
	}
	en, err := segtree.NewEncloser(rects, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("\n-- point enclosure --")
	fmt.Printf("%8s %6s %8s %8s %8s\n", "p", "k", "search", "alloc", "report")
	for _, p := range []int{1, 64, 65536} {
		_, st2, err := en.QueryDirect(6001, 6001, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%8d %6d %8d %8d %8d\n", p, st2.K, st2.SearchSteps, st2.AllocSteps, st2.ReportSteps)
	}
}

func runE10(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: d-dim range search in O(((log n)/log p)^(d-1) + loglog n + k/p) (Corollary 2)")
	fmt.Printf("%4s %8s %8s %6s %8s\n", "d", "n", "p", "k", "steps")
	for _, d := range []int{2, 3} {
		n := 2000
		if d == 3 {
			n = 600
		}
		pts := make([][]int64, n)
		for i := range pts {
			pt := make([]int64, d)
			for c := range pt {
				pt[c] = rng.Int63n(2000)
			}
			pts[i] = pt
		}
		kd, err := rangetree.NewKD(pts, core.Config{})
		if err != nil {
			panic(err)
		}
		lo := make([]int64, d)
		hi := make([]int64, d)
		for c := 0; c < d; c++ {
			lo[c], hi[c] = 300, 1500
		}
		for _, p := range []int{1, 64, 65536} {
			ids, stats, err := kd.QueryDirect(rangetree.QueryKD{Lo: lo, Hi: hi}, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%4d %8d %8d %6d %8d\n", d, n, p, len(ids), stats.Total())
		}
	}
	fmt.Println("\n-- d-dimensional point enclosure --")
	fmt.Printf("%4s %8s %8s %6s %8s\n", "d", "n", "p", "k", "steps")
	for _, d := range []int{2, 3} {
		n := 1500
		if d == 3 {
			n = 300
		}
		boxes := make([]segtree.BoxKD, n)
		for i := range boxes {
			loC := make([]int64, d)
			hiC := make([]int64, d)
			for c := 0; c < d; c++ {
				loC[c] = 2 * rng.Int63n(1000)
				hiC[c] = loC[c] + 2*rng.Int63n(500)
			}
			boxes[i] = segtree.BoxKD{Lo: loC, Hi: hiC}
		}
		en, err := segtree.NewEncloserKD(boxes, core.Config{})
		if err != nil {
			panic(err)
		}
		pt := make([]int64, d)
		for c := range pt {
			pt[c] = 1001
		}
		for _, p := range []int{1, 64, 65536} {
			ids, stats, err := en.QueryDirect(pt, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%4d %8d %8d %6d %8d\n", d, n, p, len(ids), stats.Total())
		}
	}
}

func runE11(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: skeleton trees U_1..U_m assign distinct keys to every block node (Lemma 1)")
	st, _ := buildTree(1<<10, 1<<10*60, rng, core.Config{})
	blocks, multi, nodesChecked, violations := 0, 0, 0, 0
	for i := 0; i < st.NumSubstructures(); i++ {
		sub := st.Substructure(i)
		for _, blk := range sub.Blocks() {
			blocks++
			if blk.M < 2 {
				continue
			}
			multi++
			for z, v := range blk.Nodes {
				nodesChecked++
				seen := map[catalog.Key]bool{}
				cat := st.Cascade().Aug(v)
				for j := 0; j < blk.M; j++ {
					k := cat.Key(int(blk.KeyPos[j][z]))
					if seen[k] {
						violations++
					}
					seen[k] = true
				}
			}
		}
	}
	fmt.Printf("blocks: %d (m>1: %d), block-nodes checked: %d, disjointness violations: %d\n",
		blocks, multi, nodesChecked, violations)
}

func runE12(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: Step-3 windows always contain find(y, v) (Lemma 3)")
	st, bt := buildTree(1<<8, 20000, rng, core.Config{})
	trials, misses := 0, 0
	for q := 0; q < 2000; q++ {
		leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<8))
		path := bt.RootPath(leaf)
		y := catalog.Key(rng.Intn(200000))
		got, _, err := st.SearchExplicit(y, path, 1+rng.Intn(1<<16))
		if err != nil {
			misses++ // a window miss surfaces as an error
			continue
		}
		want, err := st.Cascade().SearchPath(y, path)
		if err != nil {
			panic(err)
		}
		for i := range want {
			if got[i].Key != want[i].Key {
				misses++
			}
		}
		trials++
	}
	fmt.Printf("searches: %d, window misses / wrong results: %d\n", trials, misses)
}

func runE13(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: explicit hop uses <= 2 s_i (2b+1)^{h_i} = O(p) slots; implicit <= 2^{h_i} s_i^2 = O(p)")
	st, bt := buildTree(1<<10, 60000, rng, core.Config{})
	params := st.Params()
	fmt.Printf("%4s %4s %8s %10s %14s %14s\n", "sub", "h", "s_i", "p-range", "peak(explicit)", "bound 4F^2h+2F^h+s")
	for i := 0; i < st.NumSubstructures(); i++ {
		sub := st.Substructure(i)
		fh := 1
		for l := 0; l < sub.H; l++ {
			fh *= params.F
		}
		bound := 4*fh*fh + 2*fh + sub.S
		pMin := 2
		if i > 0 && i < 5 {
			pMin = 1<<(1<<uint(i)) + 1
		}
		peak := 0
		for r := 0; r < 30; r++ {
			leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<10))
			_, stats, err := st.SearchExplicit(catalog.Key(rng.Intn(480000)), bt.RootPath(leaf), pMin)
			if err != nil {
				panic(err)
			}
			if stats.Sub == i && stats.SlotsPeak > peak {
				peak = stats.SlotsPeak
			}
		}
		fmt.Printf("%4d %4d %8d %10s %14d %14d\n",
			i, sub.H, sub.S, fmt.Sprintf(">2^%d", 1<<uint(i)), peak, bound)
	}
}

func runE14(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("paper: p-processor CREW search of n sorted keys in ceil(log(n+1)/log(p+1)) rounds (Snir-optimal)")
	fmt.Printf("%10s %8s %10s %10s\n", "n", "p", "rounds", "predicted")
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		keys := make([]int64, n)
		v := int64(0)
		for i := range keys {
			v += 1 + rng.Int63n(5)
			keys[i] = v
		}
		for _, p := range []int{1, 3, 15, 255, 65535} {
			// Stage the array once per (n, p) and reuse the machine for
			// every query, as a resident structure would.
			s := parallel.NewCoopSearcher(keys, p)
			worst := 0
			for q := 0; q < 50; q++ {
				y := rng.Int63n(keys[n-1] + 2)
				_, rounds := s.Search(y)
				if rounds > worst {
					worst = rounds
				}
			}
			fmt.Printf("%10d %8d %10d %10d\n", n, p, worst, parallel.CoopSearchSteps(n, p))
			record(map[string]any{"n": n, "p": p, "worst_rounds": worst, "predicted": parallel.CoopSearchSteps(n, p)})
		}
	}
}

func runFig5(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("Fig. 5 reproduction: the natural gap branch violates the consistency assumption.")
	fmt.Println("Scanning subdivisions for a query with an off-path separator whose natural branch")
	fmt.Println("points away from the search path (as at sigma_4/sigma_13 in the paper's figure):")
	found := 0
	for trial := 0; trial < 50 && found < 5; trial++ {
		s, err := subdivision.Generate(16, 10, rng)
		if err != nil {
			panic(err)
		}
		loc, err := pointloc.Build(s, core.Config{})
		if err != nil {
			panic(err)
		}
		_ = loc
		for q := 0; q < 50 && found < 5; q++ {
			pt, region := s.RandomInteriorPoint(rng)
			for j := 1; j < s.NumRegions; j++ {
				e, err := s.EdgeAt(j, pt.Y)
				if err != nil {
					continue
				}
				minS, maxS := e.MinSep(), e.MaxSep()
				if minS == maxS {
					continue // proper at sigma_j itself: active node
				}
				// The natural branch of an inactive sigma_j points toward
				// the edge's home; consistency demands pointing toward
				// the query's region.
				home := (minS + maxS) / 2 // stand-in: any separator in the shared range != j
				if int32(j) == home {
					continue
				}
				natural := "right"
				if int32(j) < home {
					natural = "left"
				}
				consistent := "left"
				if j < region {
					consistent = "right"
				}
				if natural != consistent {
					fmt.Printf("  query (%d,%d) in r_%d: inactive sigma_%d (edge shared by sigma_%d..sigma_%d) branches %s, consistency needs %s\n",
						pt.X, pt.Y, region, j, minS, maxS, natural, consistent)
					found++
					break
				}
			}
		}
	}
	if found == 0 {
		fmt.Println("  (no violation found this seed; rerun with another -seed)")
	} else {
		fmt.Println("the Section 3.1 hop handles these via the (L,R) bracket instead of stored branches.")
	}
}
