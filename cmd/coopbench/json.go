package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// benchRecorder accumulates machine-readable benchmark rows for one
// experiment run and writes them (plus the run's wall-clock time) to
// BENCH_<EXP>.json when -json is set. Experiments call record() next to
// every table line they print; experiments that only print prose still get
// a file with the wall time, so a -json sweep over -experiment=all leaves
// a complete performance trajectory on disk.
type benchRecorder struct {
	Experiment string           `json:"experiment"`
	Seed       int64            `json:"seed"`
	Executor   string           `json:"executor"`
	WallMS     float64          `json:"wall_ms"`
	Rows       []map[string]any `json:"rows"`
}

// benchOut is non-nil only while an experiment runs under -json.
var benchOut *benchRecorder

func newBenchRecorder(exp string, seed int64, executor string) *benchRecorder {
	return &benchRecorder{Experiment: exp, Seed: seed, Executor: executor, Rows: []map[string]any{}}
}

// record appends one row to the active recorder; a no-op without -json, so
// experiments can call it unconditionally.
func record(row map[string]any) {
	if benchOut == nil {
		return
	}
	benchOut.Rows = append(benchOut.Rows, row)
}

func (r *benchRecorder) flush(wall time.Duration) error {
	r.WallMS = float64(wall.Microseconds()) / 1000
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_%s.json", strings.ToUpper(r.Experiment))
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %.1f ms)\n", name, len(r.Rows), r.WallMS)
	return nil
}
