package main

import (
	"fmt"
	"math/rand"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/engine"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// runE20 measures batched multi-query throughput: a mixed stream of
// catalog, planar, and spatial queries executed by internal/engine in
// batches of b over a fixed total processor budget P. Each query in a
// batch runs on a disjoint group of P/b processors (the paper's p-way cost
// model), so the batch's parallel time is the slowest query, not the sum —
// queries/step grows almost linearly in b while the per-query step count
// only inflates by log P / log(P/b). The one-query-at-a-time baseline
// gives every query the full budget but serialises them. The cache column
// reports the entry-point cache hit rate over the batch's catalog queries
// (the workload draws half its keys from narrow bands, so locality is
// present by construction).
func runE20(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("batched engine: throughput (queries/step) vs batch size b at fixed budget P = 4096")
	const total = 20000
	keyBound := int64(total) * 8
	st, bt := buildTree(1<<8, total, rng, core.Config{})
	st2, bt2 := buildTree(1<<8, total, rng, core.Config{})
	s, err := subdivision.Generate(128, 24, rng)
	if err != nil {
		panic(err)
	}
	pl, err := pointloc.Build(s, core.Config{})
	if err != nil {
		panic(err)
	}
	cx, err := spatial.Generate(120, 4, rng)
	if err != nil {
		panic(err)
	}
	sp, err := spatial.NewLocator(cx)
	if err != nil {
		panic(err)
	}
	const procs = 4096
	e, err := engine.New(engine.Config{Procs: procs, Obs: obsRegistry},
		[]engine.CatalogBackend{engine.StaticShard{St: st}, engine.StaticShard{St: st2}}, pl, sp)
	if err != nil {
		panic(err)
	}
	trees := []*tree.Tree{bt, bt2}
	clustered := func() catalog.Key {
		if rng.Intn(2) == 0 {
			return catalog.Key((keyBound/8)*int64(1+rng.Intn(7)) + rng.Int63n(128) - 64)
		}
		return catalog.Key(rng.Int63n(keyBound))
	}
	randomQuery := func() engine.Query {
		switch rng.Intn(4) {
		case 0, 1:
			shard := rng.Intn(2)
			t := trees[shard]
			return engine.CatalogQuery(shard, clustered(), t.RootPath(tree.NodeID(rng.Intn(t.N()))))
		case 2:
			pt, _ := s.RandomInteriorPoint(rng)
			return engine.PointQuery(pt)
		default:
			x, y, z, _ := cx.RandomInteriorPoint(rng)
			return engine.SpatialQuery(x, y, z)
		}
	}
	fmt.Printf("%6s %8s %10s %12s %12s %10s %10s\n",
		"b", "p/query", "batchStep", "q/step", "q/step(seq)", "speedup", "cacheHit")
	for _, b := range []int{1, 2, 8, 32, 64, 128} {
		const rounds = 8
		var batchSteps, seqSteps int64
		var hits, catQ int
		for r := 0; r < rounds; r++ {
			qs := make([]engine.Query, b)
			for i := range qs {
				qs[i] = randomQuery()
			}
			_, rep, err := e.ExecuteBatch(qs)
			if err != nil {
				panic(err)
			}
			batchSteps += int64(rep.Steps)
			hits += rep.CacheHits
			catQ += rep.CacheHits + rep.CacheMisses
			_, sTotal, err := e.ExecuteSequential(qs)
			if err != nil {
				panic(err)
			}
			seqSteps += int64(sTotal)
		}
		nQ := float64(b * rounds)
		batched := nQ / float64(batchSteps)
		sequential := nQ / float64(seqSteps)
		hitRate := 0.0
		if catQ > 0 {
			hitRate = float64(hits) / float64(catQ)
		}
		fmt.Printf("%6d %8d %10d %12.3f %12.3f %9.1fx %9.1f%%\n",
			b, max(1, procs/b), batchSteps/rounds, batched, sequential, batched/sequential, 100*hitRate)
		record(map[string]any{
			"batch": b, "procs_per_query": max(1, procs/b),
			"queries_per_step": batched, "sequential_queries_per_step": sequential,
			"cache_hit_rate": hitRate,
		})
	}
	m := e.Metrics()
	fmt.Printf("pool: %d workers, %d tasks, %d steals; shards: %d\n",
		e.Pool().Workers(), m.Tasks, m.Steals, e.NumShards())
}
