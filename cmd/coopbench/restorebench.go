package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/rangetree"
	"fraccascade/internal/segtree"
	"fraccascade/internal/snapshot"
	"fraccascade/internal/spatial"
	"fraccascade/internal/tree"
)

// e24TimeReps is how many timing passes each (kind, mode) cell runs; the
// fastest survives, as in E22/E23.
const e24TimeReps = 3

// e24Sink keeps decoded structures reachable so the compiler cannot
// discard the work being timed.
var e24Sink any

// e24Measure times fn (best of reps) and reports the heap grown by the
// final pass: GC, snapshot HeapAlloc, run, snapshot again. The delta is
// the live bytes a restore path pins — near zero for the zero-copy mmap
// path, the full structure for a deserializing restore.
func e24Measure(reps int, fn func()) (ms, heapKB float64) {
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn()
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		runtime.ReadMemStats(&after)
		if rep == 0 || elapsed < best {
			best = elapsed
		}
		if d := float64(after.HeapAlloc) - float64(before.HeapAlloc); d > 0 {
			heapKB = d / 1024
		} else {
			heapKB = 0
		}
	}
	return best, heapKB
}

// e24RSSKB reads the process resident set from /proc/self/status, or -1
// where unavailable; informational only (not gated by benchdiff).
func e24RSSKB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	var kb float64
	for _, line := range splitLines(string(data)) {
		if n, _ := fmt.Sscanf(line, "VmRSS: %f kB", &kb); n == 1 {
			return kb
		}
	}
	return -1
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// runE24 measures snapshot cold-start: the wall time and pinned heap to
// bring each frozen backend kind back to a queryable state from the flat
// sidecar, across the three restore paths coopserve reports as
// serve.restore_mode — mmap (zero-copy view over the mapped sidecar),
// deserialized (read the file, copy-decode every array), and refrozen
// (no usable sidecar: re-freeze from the pointer structure, the path a
// corrupt or stale sidecar degrades to). The mmap rows are the tentpole
// claim: restore cost stays flat as structures grow because nothing is
// copied until queries touch pages.
func runE24(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("snapshot cold-start: per-backend restore latency and pinned heap, mmap vs deserialized vs refrozen")

	// One fixture per store kind, sized like a small production shard set.
	leaves := 1 << 10
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		panic(err)
	}
	cats := randomCatalogs(bt, leaves*94, rng)
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		panic(err)
	}
	cx, err := spatial.Generate(40, 4, rng)
	if err != nil {
		panic(err)
	}
	sp, err := spatial.NewLocator(cx)
	if err != nil {
		panic(err)
	}
	pts := make([]rangetree.Point2, 3000)
	for i := range pts {
		pts[i] = rangetree.Point2{X: rng.Int63n(4000), Y: rng.Int63n(4000)}
	}
	rt, err := rangetree.New2D(pts, core.Config{})
	if err != nil {
		panic(err)
	}
	segs := make([]segtree.VSegment, 1500)
	for i := range segs {
		y1 := 2 * rng.Int63n(2000)
		segs[i] = segtree.VSegment{X: 2 * rng.Int63n(2000), Y1: y1, Y2: y1 + 2 + 2*rng.Int63n(2000)}
	}
	it, err := segtree.NewIntersector(segs, core.Config{})
	if err != nil {
		panic(err)
	}

	type kindFixture struct {
		name     string
		kind     uint32
		marshal  func() ([]byte, error)
		open     func(data []byte) error // zero-copy decode
		copyDec  func(data []byte) error // copying decode
		refreeze func() error
	}
	fixtures := []kindFixture{
		{
			name: "catalog", kind: flat.StoreKindCatalog,
			marshal: func() ([]byte, error) {
				f, err := flat.Freeze(st)
				if err != nil {
					return nil, err
				}
				return f.MarshalBinary()
			},
			open: func(data []byte) error {
				f, _, err := flat.OpenStructure(data)
				e24Sink = f
				return err
			},
			copyDec: func(data []byte) error {
				f := new(flat.Structure)
				err := f.UnmarshalBinary(data)
				e24Sink = f
				return err
			},
			refreeze: func() error {
				f, err := flat.Freeze(st)
				e24Sink = f
				return err
			},
		},
		{
			name: "spatial", kind: flat.StoreKindSpatial,
			marshal: func() ([]byte, error) {
				f, err := sp.Freeze()
				if err != nil {
					return nil, err
				}
				return f.MarshalBinary()
			},
			open: func(data []byte) error {
				f, _, err := spatial.OpenFrozen(data)
				e24Sink = f
				return err
			},
			copyDec: func(data []byte) error {
				f, err := spatial.UnmarshalFrozen(data)
				e24Sink = f
				return err
			},
			refreeze: func() error {
				f, err := sp.Freeze()
				e24Sink = f
				return err
			},
		},
		{
			name: "rangetree", kind: flat.StoreKindRangeTree,
			marshal: func() ([]byte, error) {
				f, err := rt.Freeze()
				if err != nil {
					return nil, err
				}
				return f.MarshalBinary()
			},
			open: func(data []byte) error {
				f, _, err := rangetree.OpenFrozen2D(data)
				e24Sink = f
				return err
			},
			copyDec: func(data []byte) error {
				f, err := rangetree.UnmarshalFrozen2D(data)
				e24Sink = f
				return err
			},
			refreeze: func() error {
				f, err := rt.Freeze()
				e24Sink = f
				return err
			},
		},
		{
			name: "segtree", kind: flat.StoreKindSegTree,
			marshal: func() ([]byte, error) {
				f, err := it.Freeze()
				if err != nil {
					return nil, err
				}
				return f.MarshalBinary()
			},
			open: func(data []byte) error {
				f, _, err := segtree.OpenFrozenIntersector(data)
				e24Sink = f
				return err
			},
			copyDec: func(data []byte) error {
				f, err := segtree.UnmarshalFrozenIntersector(data)
				e24Sink = f
				return err
			},
			refreeze: func() error {
				f, err := it.Freeze()
				e24Sink = f
				return err
			},
		},
	}

	// Write the unified sidecar: one blob per kind, the exact layout
	// coopserve -flat saves.
	dir, err := os.MkdirTemp("", "coopbench-e24-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "snapshot.flat")
	blobs := make([]snapshot.FlatBlob, len(fixtures))
	for i, fx := range fixtures {
		data, err := fx.marshal()
		if err != nil {
			panic(err)
		}
		blobs[i] = snapshot.FlatBlob{Kind: fx.kind, Data: data}
	}
	if err := snapshot.SaveFlat(path, 1, blobs); err != nil {
		panic(err)
	}

	fmt.Printf("%-10s %-13s %12s %12s %10s\n", "kind", "mode", "restore ms", "heap KB", "blob KB")

	// Sidecar open itself: map vs full read.
	var view *snapshot.FlatView
	openMS, openHeap := e24Measure(e24TimeReps, func() {
		if view != nil {
			view.Close()
		}
		v, err := snapshot.OpenFlat(path)
		if err != nil {
			panic(err)
		}
		view = v
	})
	fmt.Printf("%-10s %-13s %12.3f %12.1f %10s\n", "sidecar", "mmap", openMS, openHeap, "-")
	record(map[string]any{
		"kind": "sidecar", "mode": "mmap",
		"restore_ms": openMS, "heap_kb": openHeap,
		"mapped": boolToInt(view.Mapped), "rss_kb": e24RSSKB(),
	})
	var loaded []snapshot.FlatBlob
	readMS, readHeap := e24Measure(e24TimeReps, func() {
		_, bs, err := snapshot.LoadFlat(path)
		if err != nil {
			panic(err)
		}
		loaded = bs
	})
	fmt.Printf("%-10s %-13s %12.3f %12.1f %10s\n", "sidecar", "deserialized", readMS, readHeap, "-")
	record(map[string]any{
		"kind": "sidecar", "mode": "deserialized",
		"restore_ms": readMS, "heap_kb": readHeap,
		"mapped": 0, "rss_kb": e24RSSKB(),
	})

	for i, fx := range fixtures {
		mapped := view.Blobs[i].Data
		copied := loaded[i].Data
		if view.Blobs[i].Kind != fx.kind || loaded[i].Kind != fx.kind {
			panic("sidecar blob kind out of order")
		}
		modes := []struct {
			name string
			fn   func()
		}{
			{"mmap", func() {
				if err := fx.open(mapped); err != nil {
					panic(err)
				}
			}},
			{"deserialized", func() {
				if err := fx.copyDec(copied); err != nil {
					panic(err)
				}
			}},
			{"refrozen", func() {
				if err := fx.refreeze(); err != nil {
					panic(err)
				}
			}},
		}
		for _, m := range modes {
			ms, heapKB := e24Measure(e24TimeReps, m.fn)
			fmt.Printf("%-10s %-13s %12.3f %12.1f %10.1f\n",
				fx.name, m.name, ms, heapKB, float64(len(mapped))/1024)
			record(map[string]any{
				"kind": fx.name, "mode": m.name,
				"restore_ms": ms, "heap_kb": heapKB,
				"blob_kb": float64(len(mapped)) / 1024,
				"rss_kb":  e24RSSKB(),
			})
		}
	}
	view.Close()
	e24Sink = nil
	fmt.Println("mmap rows must stay cheapest in both columns: the zero-copy view pins no heap and defers page faults to first query touch.")
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
