package main

import (
	"fmt"
	"math/rand"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// runE15 measures the generalized-search-path extension (the paper's open
// problem 3): searching a root-anchored subtree spanned by several leaves.
func runE15(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("extension (open problem 3): subtree search — steps track depth, slots track breadth")
	st, bt := buildTree(1<<10, 60000, rng, core.Config{})
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	fmt.Printf("%8s %8s %8s %8s %12s\n", "targets", "p", "steps", "hops", "slotsPeak")
	for _, k := range []int{1, 4, 16, 64} {
		targets := make([]tree.NodeID, k)
		for i := range targets {
			targets[i] = leaves[rng.Intn(len(leaves))]
		}
		for _, p := range []int{256, 65536} {
			y := catalog.Key(rng.Intn(480000))
			_, stats, err := st.SearchSubtree(y, targets, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%8d %8d %8d %8d %12d\n", k, p, stats.Steps, stats.Hops, stats.SlotsPeak)
		}
	}
}

// runE17 executes complete explicit searches as programs on the CREW PRAM
// simulator: real conflict-checked machine steps, not the cost model. The
// -executor flag picks the machine (virtual by default); the executor
// differential tests guarantee the numbers are identical either way.
func runE17(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("machine-measured Theorem 1: whole searches executed on the CREW simulator (%s executor)\n", execKind)
	fmt.Printf("%10s %8s %12s %6s %6s %6s %10s\n", "n", "p", "machineSteps", "root", "hop", "seq", "peakProcs")
	for _, leaves := range []int{1 << 6, 1 << 9} {
		total := leaves * 94
		if leaves == 1<<6 {
			total = 6000 // the seed configuration, pinned for the benchmarks
		}
		st, bt := buildTree(leaves, total, rng, core.Config{})
		path := bt.RootPath(tree.NodeID(bt.N() - 1))
		for _, p := range []int{1, 4, 16, 256, 65536, 1 << 18} {
			var agg core.PRAMSearchReport
			const reps = 10
			for r := 0; r < reps; r++ {
				m := newPRAM(pram.CREW, 1<<21)
				m.SetMetrics(obsRegistry)
				y := catalog.Key(rng.Intn(total * 8))
				_, rep, err := st.SearchExplicitPRAM(m, y, path, p)
				if err != nil {
					panic(err)
				}
				agg.MachineSteps += rep.MachineSteps
				agg.RootSteps += rep.RootSteps
				agg.HopSteps += rep.HopSteps
				agg.SeqSteps += rep.SeqSteps
				if rep.PeakProcs > agg.PeakProcs {
					agg.PeakProcs = rep.PeakProcs
				}
			}
			fmt.Printf("%10d %8d %12d %6d %6d %6d %10d\n",
				total, p, agg.MachineSteps/reps, agg.RootSteps/reps, agg.HopSteps/reps, agg.SeqSteps/reps, agg.PeakProcs)
			record(map[string]any{
				"n": total, "p": p,
				"machine_steps": agg.MachineSteps / reps,
				"root_steps":    agg.RootSteps / reps,
				"hop_steps":     agg.HopSteps / reps,
				"seq_steps":     agg.SeqSteps / reps,
				"peak_procs":    agg.PeakProcs,
			})
		}
	}
}

// runE18 plays the Snir lower-bound adversary game: no strategy beats
// ⌈log(n+1)/log(p+1)⌉ rounds, and the cooperative (p+1)-ary split matches
// it — the "optimal" in the paper's title, demonstrated mechanically.
func runE18(seed int64) {
	_ = seed
	fmt.Println("optimality (Snir bound): adversary game rounds, lower bound vs strategies")
	fmt.Printf("%10s %8s %12s %10s %10s\n", "n", "p", "lower bound", "uniform", "binary")
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20, 1 << 24} {
		for _, p := range []int{3, 63, 1023, 16383} {
			uni, _ := parallel.PlayGame(n, p, parallel.UniformStrategy, 10000)
			bin, _ := parallel.PlayGame(n, p, parallel.BinaryStrategy, 10000)
			lb := parallel.LowerBoundRounds(n, p)
			fmt.Printf("%10d %8d %12d %10d %10d\n", n, p, lb, uni, bin)
			record(map[string]any{"n": n, "p": p, "lower_bound": lb, "uniform": uni, "binary": bin})
		}
	}
	fmt.Println("uniform (the CoopSearch split) meets the bound; the p-oblivious binary split stays at log n.")
}

// runE16 measures the dynamic extension (open problem 4): query cost and
// rebuild cadence under churn.
func runE16(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("extension (open problem 4): lazy dynamic updates with amortized rebuilds")
	bt, err := tree.NewBalancedBinary(1 << 7)
	if err != nil {
		panic(err)
	}
	native := randomCatalogs(bt, 8000, rng)
	for _, capacity := range []int{32, 128, 512} {
		d, err := dynamic.New(bt, native, core.Config{}, capacity)
		if err != nil {
			panic(err)
		}
		const ops = 2000
		inserts, deletes, queries := 0, 0, 0
		var querySteps int64
		for op := 0; op < ops; op++ {
			v := tree.NodeID(rng.Intn(bt.N()))
			switch rng.Intn(3) {
			case 0:
				if d.Insert(v, catalog.Key(rng.Int63n(1<<40)), int32(op)) == nil {
					inserts++
				}
			case 1:
				k, _ := d.Find(v, catalog.Key(rng.Intn(32000)))
				if k != catalog.PlusInf && d.Delete(v, k) == nil {
					deletes++
				}
			default:
				leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<7))
				_, stats, err := d.SearchExplicit(catalog.Key(rng.Intn(32000)), bt.RootPath(leaf), 256)
				if err != nil {
					panic(err)
				}
				querySteps += int64(stats.Steps)
				queries++
			}
		}
		fmt.Printf("capacity=%4d: %d ins, %d del, %d queries (avg %d steps), %d rebuilds\n",
			capacity, inserts, deletes, queries, querySteps/int64(queries), d.Rebuilds())
	}
}
