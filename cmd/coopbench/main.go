// Command coopbench runs the reproduction experiments E1–E25 (see
// DESIGN.md for the per-experiment index) and prints the tables recorded
// in EXPERIMENTS.md. Each experiment regenerates one of the paper's
// claims: a time/processor tradeoff, a space bound, or a structural lemma.
//
// Usage:
//
//	coopbench -experiment=all        # run everything
//	coopbench -experiment=e1        # one experiment
//	coopbench -experiment=fig5      # the Fig. 5 branch-function table
//	coopbench -seed=7               # change workload seed
//	coopbench -chaos                # shorthand for -experiment=e19
//	coopbench -experiment=e17 -executor=barrier # run PRAM programs on the goroutine machine
//	coopbench -experiment=e22 -executor=wall    # time the flat hot path on native goroutines
//	coopbench -experiment=all -json             # write BENCH_<EXP>.json next to the tables
//	coopbench -experiment=e20 -metrics          # dump the obs snapshot after the run
//	coopbench -experiment=e20 -cpuprofile=cpu.pb.gz -memprofile=mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"fraccascade/internal/obs"
	"fraccascade/internal/pram"
)

// obsRegistry is non-nil when -metrics is set; instrumented experiments
// (E17's PRAM machines, E20's batch engine) attach to it. Everywhere else
// the nil registry hands out nil handles, so the flag costs nothing when
// off.
var obsRegistry *obs.Registry

// execKind selects the pram.Executor used by machine-executing experiments
// (E17 and any PRAM verification passes). The virtual executor is the
// default: it produces step counts, work, and conflict verdicts identical
// to the barrier machine (asserted by the executor differential tests) at
// a fraction of the wall-clock cost.
var execKind = pram.KindVirtual

// wallMode is set by -executor=wall. The wall executor is native (real
// goroutines over the flat layout, no simulated machine), so it cannot
// back the PRAM experiments; simulated passes fall back to the virtual
// executor — bit-identical step counts by the differential tests — while
// the host-time experiment (E22) times the wall pool itself. The JSON
// recorder still tags the run "wall" so baselines taken under each
// executor stay distinguishable.
var wallMode bool

// stepsProfile is non-nil when -stepsprofile is set: every PRAM machine
// built by newPRAM attaches to it, so phase-attributed step counts
// accumulate across machines into one aggregate profile written as a
// gzipped pprof profile.proto at exit.
var stepsProfile *pram.Profile

// newPRAM builds a fresh executor of the selected kind.
func newPRAM(model pram.Model, procs int) pram.Executor {
	x := pram.MustNewExecutor(execKind, model, procs)
	if stepsProfile != nil {
		x.SetProfile(stepsProfile)
	}
	return x
}

type experiment struct {
	name  string
	title string
	run   func(seed int64)
}

func main() {
	expFlag := flag.String("experiment", "all", "experiment id (e1..e25, fig5, all)")
	seed := flag.Int64("seed", 1, "workload seed")
	chaos := flag.Bool("chaos", false, "run the chaos-mode fault sweep (alias for -experiment=e19)")
	executor := flag.String("executor", "virtual", "executor for machine-executing experiments: barrier, virtual, or wall (native goroutines over the flat layout; simulated passes fall back to virtual)")
	jsonOut := flag.Bool("json", false, "write BENCH_<EXP>.json (wall time plus instrumented rows) for each experiment run")
	metrics := flag.Bool("metrics", false, "collect obs metrics during the run and print a text snapshot at the end")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	stepsprofile := flag.String("stepsprofile", "", "write a pprof profile of simulated parallel time (phase-attributed PRAM steps) to this file")
	flag.Parse()
	if *chaos {
		*expFlag = "e19"
	}
	kind, err := pram.ParseExecutorKind(*executor)
	if err != nil {
		log.Fatal(err)
	}
	if kind == pram.KindUncosted {
		log.Fatal("coopbench: the uncosted executor skips cost tracing; experiments need barrier, virtual, or wall")
	}
	if kind == pram.KindWall {
		wallMode = true
		execKind = pram.KindVirtual
	} else {
		execKind = kind
	}
	if *metrics {
		obsRegistry = obs.NewRegistry()
	}
	if *stepsprofile != "" {
		stepsProfile = pram.NewProfile()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	experiments := []experiment{
		{"e1", "E1 (Theorem 1): explicit cooperative search, steps vs (log n)/log p", runE1},
		{"e2", "E2 (Theorem 1): implicit cooperative search", runE2},
		{"e3", "E3 (Theorem 1): preprocessing rounds and work", runE3},
		{"e4", "E4 (Lemma 2): space of T' is O(n)", runE4},
		{"e5", "E5 (Theorem 2): long-path search in bounded-degree trees", runE5},
		{"e6", "E6 (Theorem 3): degree-d trees, log d factor", runE6},
		{"e7", "E7 (Theorem 4): cooperative planar point location", runE7},
		{"e8", "E8 (Theorem 5 / Corollary 1): spatial point location", runE8},
		{"e9", "E9 (Theorem 6): retrieval — segment intersection, enclosure, range search", runE9},
		{"e10", "E10 (Corollary 2): d-dimensional range search", runE10},
		{"e11", "E11 (Lemma 1): skeleton forest disjointness", runE11},
		{"e12", "E12 (Lemma 3): window containment", runE12},
		{"e13", "E13 (Section 2.2/2.3): per-hop processor demand", runE13},
		{"e14", "E14 (Snir bound): cooperative binary search rounds", runE14},
		{"fig5", "Fig. 5: branch-function inconsistency on the separator tree", runFig5},
		{"e15", "E15 (extension, open problem 3): generalized search paths (subtrees)", runE15},
		{"e16", "E16 (extension, open problem 4): dynamic updates, amortized rebuilds", runE16},
		{"e17", "E17: whole searches executed on the conflict-checked CREW simulator", runE17},
		{"e18", "E18: Snir lower-bound adversary game (optimality)", runE18},
		{"e19", "E19 (chaos mode): fault-injected degrading cooperative search", runE19},
		{"e20", "E20 (extension): batched multi-query engine throughput", runE20},
		{"e21", "E21 (robustness): crash-safe snapshot persistence under disk faults", runE21},
		{"e22", "E22 (extension): flat-layout hot path, host ns/op and allocs/op vs the pointer structure", runE22},
		{"e23", "E23 (extension): construction throughput, sequential vs parallel build and flat freeze", runE23},
		{"e24", "E24 (extension): snapshot cold-start, mmap vs deserialized vs refrozen restore per backend kind", runE24},
		{"e25", "E25 (extension): serving-telemetry overhead, flight recorder and latency windows on vs off", runE25},
	}
	want := strings.ToLower(*expFlag)
	ran := 0
	for _, e := range experiments {
		if want == "all" || want == e.name {
			fmt.Printf("\n=== %s ===\n", e.title)
			if *jsonOut {
				benchOut = newBenchRecorder(e.name, *seed, kind.String())
			}
			start := time.Now()
			e.run(*seed)
			if benchOut != nil {
				if err := benchOut.flush(time.Since(start)); err != nil {
					log.Fatal(err)
				}
				benchOut = nil
			}
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		var names []string
		for _, e := range experiments {
			names = append(names, e.name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "available: all %s\n", strings.Join(names, " "))
		os.Exit(2)
	}
	if stepsProfile != nil {
		// Publish the aggregated phase profile as pram.phase.* metrics (so
		// -metrics snapshots include it) and write the pprof file.
		if obsRegistry != nil {
			stepsProfile.PublishTo(obsRegistry)
		}
		f, err := os.Create(*stepsprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := stepsProfile.WritePprof(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d phases, %d simulated steps)\n",
			*stepsprofile, len(stepsProfile.Phases()), stepsProfile.TotalSteps())
	}
	if *metrics {
		fmt.Println("\n=== metrics snapshot ===")
		if err := obsRegistry.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}
