#!/usr/bin/env sh
# Fail if .golangci.yml enables a linter that golangci-lint has deprecated
# and removed. The pinned runner silently drops unknown linters (or errors,
# depending on the version), so a stale config can quietly stop linting a
# class of bugs; this guard turns that into a loud CI failure.
set -eu

CONFIG="${1:-.golangci.yml}"
if [ ! -f "$CONFIG" ]; then
    echo "lint_config_check: $CONFIG not found" >&2
    exit 1
fi

# Linters removed from golangci-lint (superseded by staticcheck/unused,
# revive, copyloopvar, mnd, ...). Matched as whole words so e.g. the
# "unused" linter never trips the "varcheck" pattern.
DEPRECATED="deadcode exhaustivestruct golint ifshort interfacer maligned \
nosnakecase scopelint structcheck varcheck execinquery exportloopref gomnd"

status=0
for linter in $DEPRECATED; do
    if grep -nE "(^|[^a-z0-9_-])${linter}([^a-z0-9_-]|$)" "$CONFIG"; then
        echo "lint_config_check: $CONFIG references deprecated linter '$linter'" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "lint_config_check: FAIL — remove the linters above (see golangci-lint deprecations)" >&2
    exit 1
fi
echo "lint_config_check: ok ($CONFIG references no deprecated linters)"
