#!/usr/bin/env bash
# chaos-smoke: deterministic end-to-end robustness check.
#
# Part 1 runs experiment E21 (the kill/restart/corrupt loop over snapshot
# save/load under injected disk faults) at a fixed seed; it panics on any
# undetected fault or wrong recovered answer, so completing is the check.
#
# Part 2 exercises the real daemon lifecycle: boot coopserve with -snapshot,
# wait for ready, serve a query batch, SIGTERM it, and assert that it exits 0
# having written a loadable snapshot; then boot a second instance against the
# same path and assert it restores from the snapshot instead of rebuilding,
# and serves queries again.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
ADDR=${CHAOS_SMOKE_ADDR:-localhost:8123}
WORK=$(mktemp -d)
SNAP="$WORK/shards.snap"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -9 "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== chaos-smoke: E21 kill/restart/corrupt loop =="
$GO run ./cmd/coopbench -experiment=e21 -seed=1

echo
echo "== chaos-smoke: coopserve SIGTERM drain + restore =="
$GO build -o "$WORK/coopserve" ./cmd/coopserve

SERVE_FLAGS=(-addr="$ADDR" -snapshot="$SNAP" -leaves=16 -entries=800 -regions=24 -tiles=20 -shards=2 -drain-timeout=5s)

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fs "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos-smoke: daemon never became ready" >&2
    return 1
}

query() {
    curl -fs -d '{"queries":[{"kind":"catalog","shard":0,"key":400,"leaf":3},{"kind":"point","x":11,"y":7}]}' \
        "http://$ADDR/query"
}

# First boot: builds from scratch and saves a snapshot.
"$WORK/coopserve" "${SERVE_FLAGS[@]}" >"$WORK/boot1.log" 2>&1 &
SERVE_PID=$!
wait_ready
FIRST=$(query)
echo "first boot answers: $FIRST"

# SIGTERM: must drain, write the final snapshot, and exit 0.
kill -TERM "$SERVE_PID"
EXIT=0
wait "$SERVE_PID" || EXIT=$?
SERVE_PID=""
if [ "$EXIT" -ne 0 ]; then
    echo "chaos-smoke: coopserve exited $EXIT on SIGTERM" >&2
    cat "$WORK/boot1.log" >&2
    exit 1
fi
grep -q 'drained, exiting' "$WORK/boot1.log"
grep -q "final snapshot written to $SNAP" "$WORK/boot1.log"
test -s "$SNAP"

# Second boot: must restore from the snapshot (no rebuild) and serve the
# same answers the first boot did.
"$WORK/coopserve" "${SERVE_FLAGS[@]}" >"$WORK/boot2.log" 2>&1 &
SERVE_PID=$!
wait_ready
grep -q "restored from $SNAP" "$WORK/boot2.log"
SECOND=$(query)
echo "second boot answers: $SECOND"
if [ "$FIRST" != "$SECOND" ]; then
    echo "chaos-smoke: restored daemon served different answers" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""

echo
echo "chaos-smoke: ok"
