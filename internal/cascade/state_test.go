package cascade

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

func buildForState(t *testing.T) (*Structure, *tree.Tree) {
	t.Helper()
	tr, err := tree.NewBalancedBinary(8)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	native := make([]catalog.Catalog, tr.N())
	for v := range native {
		keys := make([]catalog.Key, 12)
		for i := range keys {
			keys[i] = catalog.Key(v*1000 + i*7 + rng.Intn(3))
		}
		c, err := catalog.FromKeys(dedup(keys), nil)
		if err != nil {
			t.Fatalf("catalog: %v", err)
		}
		native[v] = c
	}
	s, err := Build(tr, native, Options{Bidirectional: true})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s, tr
}

func dedup(keys []catalog.Key) []catalog.Key {
	seen := make(map[catalog.Key]bool)
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestPartsRoundTrip(t *testing.T) {
	s, tr := buildForState(t)
	got, err := FromParts(tr, s.ExportParts())
	if err != nil {
		t.Fatalf("FromParts: %v", err)
	}
	if got.Stride() != s.Stride() || got.B() != s.B() || got.Bidirectional() != s.Bidirectional() {
		t.Fatalf("constants diverge")
	}
	if got.Stats() != s.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", got.Stats(), s.Stats())
	}
	var leaf tree.NodeID
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(tree.NodeID(v)) {
			leaf = tree.NodeID(v)
			break
		}
	}
	path := tr.RootPath(leaf)
	for y := catalog.Key(0); y < 8000; y += 311 {
		want, err1 := s.SearchPath(y, path)
		gotRes, err2 := got.SearchPath(y, path)
		if err1 != nil || err2 != nil {
			t.Fatalf("search: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(want, gotRes) {
			t.Fatalf("y=%d: results diverge", y)
		}
	}
	if err := got.CheckProperties([]catalog.Key{0, 100, 5000}); err != nil {
		t.Fatalf("properties: %v", err)
	}
}

func TestFromPartsRejectsDamage(t *testing.T) {
	s, tr := buildForState(t)
	base := s.ExportParts()
	cases := []struct {
		name   string
		mutate func(p *Parts)
	}{
		{"nil tree is separate", nil},
		{"bad stride", func(p *Parts) { p.Stride = 1 }},
		{"missing node", func(p *Parts) { p.Aug = p.Aug[:len(p.Aug)-1] }},
		{"short bridge array", func(p *Parts) {
			brs := cloneBridges(p.Bridges)
			brs[tr.Root()][0] = brs[tr.Root()][0][:1]
			p.Bridges = brs
		}},
		{"bridge out of range", func(p *Parts) {
			brs := cloneBridges(p.Bridges)
			arr := append([]int32{}, brs[tr.Root()][0]...)
			arr[len(arr)-1] = int32(1 << 28)
			brs[tr.Root()][0] = arr
			p.Bridges = brs
		}},
		{"bridges cross", func(p *Parts) {
			brs := cloneBridges(p.Bridges)
			arr := append([]int32{}, brs[tr.Root()][0]...)
			if len(arr) > 2 {
				arr[1], arr[len(arr)-1] = arr[len(arr)-1], 0
			}
			brs[tr.Root()][0] = arr
			p.Bridges = brs
		}},
	}
	if _, err := FromParts(nil, base); err == nil {
		t.Fatalf("nil tree accepted")
	}
	for _, tc := range cases[1:] {
		p := base
		tc.mutate(&p)
		if _, err := FromParts(tr, p); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func cloneBridges(b [][][]int32) [][][]int32 {
	out := make([][][]int32, len(b))
	for v := range b {
		out[v] = append([][]int32{}, b[v]...)
	}
	return out
}
