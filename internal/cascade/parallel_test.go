package cascade

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fraccascade/internal/tree"
)

// TestParallelBuildDeterministic pins the build pool's output contract:
// Build fans the per-level merges out over host workers, but the resulting
// structure — catalogs, bridges, and recomputed statistics — must be
// bit-identical to the sequential build for every parallelism value, on
// seeded random trees in both construction modes. Failures print the seed
// so a shrinking reproduction is one -run invocation away.
func TestParallelBuildDeterministic(t *testing.T) {
	pars := []int{2, 3, 8, 0, runtime.NumCPU()}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		leaves := 8 << (seed % 3) // 8, 16, 32 leaves
		bt, err := tree.NewBalancedBinary(leaves)
		if err != nil {
			t.Fatal(err)
		}
		cats := randCatalogs(bt, 600, rng)
		for _, bidir := range []bool{false, true} {
			seq, err := Build(bt, cats, Options{Parallelism: 1, Bidirectional: bidir})
			if err != nil {
				t.Fatalf("seed %d bidir %v: sequential build: %v", seed, bidir, err)
			}
			for _, par := range pars {
				got, err := Build(bt, cats, Options{Parallelism: par, Bidirectional: bidir})
				if err != nil {
					t.Fatalf("seed %d bidir %v par %d: %v", seed, bidir, par, err)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("seed %d bidir %v: build with parallelism %d differs from sequential", seed, bidir, par)
				}
			}
			// Sequential forces parallelism 1 regardless of the knob.
			forced, err := Build(bt, cats, Options{Parallelism: 8, Sequential: true, Bidirectional: bidir})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(forced, seq) {
				t.Fatalf("seed %d bidir %v: Sequential build differs", seed, bidir)
			}
		}
	}
}

// TestFromPartsParallelDeterministic pins the parallel restore path: the
// reassembled structure and — when several nodes are corrupt — the
// reported error must match the sequential scan's for every parallelism.
func TestFromPartsParallelDeterministic(t *testing.T) {
	s, bt, _, _ := buildRandom(t, 32, 800, 7)
	parts := s.ExportParts()
	seq, err := FromParts(bt, parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
		got, err := FromPartsParallel(bt, parts, par)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("FromPartsParallel(par=%d) differs from FromParts", par)
		}
	}

	// Corrupt the bridges of two non-leaf nodes; every parallelism must
	// report the lowest-index node, like the sequential scan.
	bad := Parts{
		Stride:        parts.Stride,
		Bidirectional: parts.Bidirectional,
		Native:        parts.Native,
		Aug:           parts.Aug,
		Bridges:       append([][][]int32(nil), parts.Bridges...),
	}
	corrupted := 0
	lowest := -1
	for v := 0; v < bt.N() && corrupted < 2; v++ {
		if len(bad.Bridges[v]) == 0 {
			continue
		}
		bad.Bridges[v] = [][]int32{} // wrong bridge-array count
		if lowest < 0 {
			lowest = v
		}
		corrupted++
	}
	if corrupted < 2 {
		t.Fatal("workload has fewer than two internal nodes")
	}
	_, seqErr := FromParts(bt, bad)
	if seqErr == nil {
		t.Fatal("corrupted parts imported cleanly")
	}
	for _, par := range []int{2, 8, 0} {
		_, err := FromPartsParallel(bt, bad, par)
		if err == nil {
			t.Fatalf("par %d: corrupted parts imported cleanly", par)
		}
		if err.Error() != seqErr.Error() {
			t.Fatalf("par %d: error %q differs from sequential %q", par, err, seqErr)
		}
		if !strings.Contains(err.Error(), "bridge") {
			t.Fatalf("par %d: unexpected error %q", par, err)
		}
	}
}
