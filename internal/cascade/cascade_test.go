package cascade

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// randCatalogs builds one random native catalog per node with highly
// variable sizes (including empty), mimicking the paper's point that
// individual catalogs may hold Θ(n) of the n total entries.
func randCatalogs(t *tree.Tree, totalTarget int, rng *rand.Rand) []catalog.Catalog {
	n := t.N()
	cats := make([]catalog.Catalog, n)
	for v := 0; v < n; v++ {
		var size int
		switch rng.Intn(4) {
		case 0:
			size = 0
		case 1:
			size = rng.Intn(4)
		case 2:
			size = rng.Intn(2*totalTarget/(n+1) + 1)
		default:
			size = rng.Intn(totalTarget/4 + 1)
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(totalTarget * 4))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		payloads := make([]int32, len(keys))
		for i := range payloads {
			payloads[i] = int32(v)*1000 + int32(i)
		}
		cats[v] = catalog.MustFromKeys(keys, payloads)
	}
	return cats
}

func buildRandom(tb testing.TB, leaves, total int, seed int64) (*Structure, *tree.Tree, []catalog.Catalog, *rand.Rand) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	cats := randCatalogs(bt, total, rng)
	s, err := Build(bt, cats, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return s, bt, cats, rng
}

func TestBuildRejectsMismatch(t *testing.T) {
	bt, _ := tree.NewBalancedBinary(2)
	if _, err := Build(bt, nil, Options{}); err == nil {
		t.Error("catalog count mismatch should fail")
	}
	if _, err := Build(bt, make([]catalog.Catalog, bt.N()), Options{Stride: 1}); err == nil {
		t.Error("stride < 2 should fail")
	}
}

func TestProperties(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s, _, _, rng := buildRandom(t, 16, 400, seed)
		probes := make([]catalog.Key, 50)
		for i := range probes {
			probes[i] = catalog.Key(rng.Intn(2000))
		}
		probes = append(probes, 0, catalog.PlusInf)
		if err := s.CheckProperties(probes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSpaceBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s, bt, _, _ := buildRandom(t, 64, 3000, seed)
		st := s.Stats()
		bound := 2*st.NativeEntries + 2*int64(bt.N())
		if st.AugEntries > bound {
			t.Errorf("seed %d: augmented size %d exceeds 2n+2N bound %d (native %d, nodes %d)",
				seed, st.AugEntries, bound, st.NativeEntries, bt.N())
		}
	}
}

func TestBuildRounds(t *testing.T) {
	s, bt, _, _ := buildRandom(t, 32, 500, 1)
	// height+1 bottom-up rounds plus one bridge-installation round.
	if got, want := s.Stats().Rounds, bt.Height()+2; got != want {
		t.Errorf("rounds = %d, want height+2 = %d", got, want)
	}
}

func TestSearchPathMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, bt, cats, rng := buildRandom(t, 32, 800, seed)
		// All root-to-leaf paths, several probe keys each.
		for v := tree.NodeID(0); int(v) < bt.N(); v++ {
			if !bt.IsLeaf(v) {
				continue
			}
			path := bt.RootPath(v)
			for q := 0; q < 10; q++ {
				y := catalog.Key(rng.Intn(4000))
				got, err := s.SearchPath(y, path)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := NaiveSearchPath(bt, cats, y, path)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
						t.Fatalf("seed %d leaf %d y %d node %d: cascade (%d,%d) != naive (%d,%d)",
							seed, v, y, path[i], got[i].Key, got[i].Payload, want[i].Key, want[i].Payload)
					}
				}
			}
		}
	}
}

func TestSearchPathValidation(t *testing.T) {
	s, bt, _, _ := buildRandom(t, 4, 100, 2)
	if _, err := s.SearchPath(5, nil); err == nil {
		t.Error("empty path should fail")
	}
	leaf := tree.NodeID(bt.N() - 1)
	if _, err := s.SearchPath(5, []tree.NodeID{leaf}); err == nil {
		t.Error("path not starting at root should fail")
	}
}

func TestDescendWalkBound(t *testing.T) {
	s, bt, _, rng := buildRandom(t, 64, 2000, 3)
	for trial := 0; trial < 2000; trial++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		if bt.IsLeaf(v) {
			continue
		}
		y := catalog.Key(rng.Intn(8000))
		pos := s.Aug(v).Succ(y)
		for ci := range bt.Children(v) {
			_, walked := s.Descend(y, v, ci, pos)
			if walked > s.B() {
				t.Fatalf("descend walked %d > B=%d at node %d", walked, s.B(), v)
			}
		}
	}
}

func TestCascadeBeatsNaiveOnComparisons(t *testing.T) {
	// On a tall tree, cascading's O(log n + m) comparisons must beat the
	// naive O(m log n).
	rng := rand.New(rand.NewSource(4))
	bt, err := tree.NewBalancedBinary(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	cats := randCatalogs(bt, 1<<13, rng)
	s, err := Build(bt, cats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.NodeID(bt.N() - 1)
	path := bt.RootPath(leaf)
	var cascadeC, naiveC int
	for q := 0; q < 50; q++ {
		y := catalog.Key(rng.Intn(1 << 15))
		_, c1, err := s.SearchPathCounted(y, path)
		if err != nil {
			t.Fatal(err)
		}
		_, c2, err := NaiveSearchPath(bt, cats, y, path)
		if err != nil {
			t.Fatal(err)
		}
		cascadeC += c1
		naiveC += c2
	}
	if cascadeC >= naiveC {
		t.Errorf("cascade comparisons %d not below naive %d", cascadeC, naiveC)
	}
}

func TestGeneralTreeCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		deg := 2 + rng.Intn(5)
		tr, err := tree.NewRandom(100+rng.Intn(200), deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		cats := randCatalogs(tr, 1000, rng)
		s, err := Build(tr, cats, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Stride() < 2*tr.MaxDegree() && s.Stride() != 4 {
			t.Errorf("stride %d too small for degree %d", s.Stride(), tr.MaxDegree())
		}
		probes := []catalog.Key{0, 17, 500, 999, catalog.PlusInf}
		if err := s.CheckProperties(probes); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Space bound for degree-d stride 2d: aug <= 2*native + 2*nodes.
		st := s.Stats()
		if st.AugEntries > 2*st.NativeEntries+2*int64(tr.N()) {
			t.Errorf("trial %d: aug %d exceeds linear bound", trial, st.AugEntries)
		}
		// Random downward paths match naive search.
		for q := 0; q < 20; q++ {
			v := tree.NodeID(rng.Intn(tr.N()))
			path := tr.RootPath(v)
			y := catalog.Key(rng.Intn(4000))
			got, err := s.SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			want, _, _ := NaiveSearchPath(tr, cats, y, path)
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("trial %d: mismatch at %d", trial, i)
				}
			}
		}
	}
}

func TestSequentialBuildMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bt, _ := tree.NewBalancedBinary(32)
	cats := randCatalogs(bt, 600, rng)
	a, err := Build(bt, cats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(bt, cats, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < bt.N(); v++ {
		ea, eb := a.Aug(tree.NodeID(v)).Entries(), b.Aug(tree.NodeID(v)).Entries()
		if len(ea) != len(eb) {
			t.Fatalf("node %d: aug sizes differ", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d entry %d differs", v, i)
			}
		}
	}
}

func TestEmptyCatalogsEverywhere(t *testing.T) {
	bt, _ := tree.NewBalancedBinary(8)
	cats := make([]catalog.Catalog, bt.N())
	for i := range cats {
		cats[i] = catalog.Empty()
	}
	s, err := Build(bt, cats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := bt.RootPath(tree.NodeID(bt.N() - 1))
	res, err := s.SearchPath(42, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Key != catalog.PlusInf {
			t.Errorf("empty catalogs must answer +inf, got %d", r.Key)
		}
	}
}

func TestStrideSweep(t *testing.T) {
	// Properties 1–3 must hold at every stride >= 2; larger strides give
	// smaller structures but larger fan-out constants.
	rng := rand.New(rand.NewSource(31))
	bt, _ := tree.NewBalancedBinary(32)
	cats := randCatalogs(bt, 800, rng)
	var prevAug int64 = 1 << 62
	for _, stride := range []int{2, 4, 6, 8, 16} {
		s, err := Build(bt, cats, Options{Stride: stride, Bidirectional: true})
		if err != nil {
			t.Fatal(err)
		}
		if s.B() != stride-1 {
			t.Errorf("stride %d: B = %d, want %d", stride, s.B(), stride-1)
		}
		probes := make([]catalog.Key, 30)
		for i := range probes {
			probes[i] = catalog.Key(rng.Intn(4000))
		}
		if err := s.CheckProperties(probes); err != nil {
			t.Fatalf("stride %d: %v", stride, err)
		}
		aug := s.Stats().AugEntries
		if aug > prevAug {
			t.Errorf("stride %d: augmented size %d grew from %d (larger stride must shrink)", stride, aug, prevAug)
		}
		prevAug = aug
		// Searches stay correct.
		path := bt.RootPath(tree.NodeID(bt.N() - 1))
		for q := 0; q < 20; q++ {
			y := catalog.Key(rng.Intn(4000))
			got, err := s.SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			want, _, _ := NaiveSearchPath(bt, cats, y, path)
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("stride %d: mismatch", stride)
				}
			}
		}
	}
}

func TestBidirectionalProperties(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bt, _ := tree.NewBalancedBinary(32)
		cats := randCatalogs(bt, 800, rng)
		s, err := Build(bt, cats, Options{Bidirectional: true})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Bidirectional() {
			t.Fatal("Bidirectional flag lost")
		}
		probes := make([]catalog.Key, 40)
		for i := range probes {
			probes[i] = catalog.Key(rng.Intn(4000))
		}
		if err := s.CheckProperties(probes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBidirectionalSearchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bt, _ := tree.NewBalancedBinary(32)
	cats := randCatalogs(bt, 800, rng)
	s, err := Build(bt, cats, Options{Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		leaf := tree.NodeID(31 + rng.Intn(32))
		path := bt.RootPath(leaf)
		y := catalog.Key(rng.Intn(4000))
		got, err := s.SearchPath(y, path)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := NaiveSearchPath(bt, cats, y, path)
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
				t.Fatalf("q %d node %d: (%d,%d) != (%d,%d)", q, path[i],
					got[i].Key, got[i].Payload, want[i].Key, want[i].Payload)
			}
		}
	}
}

func TestBidirectionalSpaceLinear(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bt, _ := tree.NewBalancedBinary(64)
		cats := randCatalogs(bt, 3000, rng)
		s, err := Build(bt, cats, Options{Bidirectional: true})
		if err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		// Geometric analysis: bottom-up gives <= 2n + 2N; the top-down pass
		// adds at most a 1/(1-1/stride) factor: total <= (8/3)(2n + 2N).
		bound := 3 * (2*st.NativeEntries + 2*int64(bt.N()))
		if st.AugEntries > bound {
			t.Errorf("seed %d: bidirectional size %d exceeds bound %d", seed, st.AugEntries, bound)
		}
	}
}

func TestQuickPathSearch(t *testing.T) {
	type input struct {
		Seed int64
		Y    uint32
	}
	bt, _ := tree.NewBalancedBinary(16)
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		cats := randCatalogs(bt, 300, rng)
		s, err := Build(bt, cats, Options{})
		if err != nil {
			return false
		}
		leaf := tree.NodeID(15 + rng.Intn(16))
		path := bt.RootPath(leaf)
		y := catalog.Key(in.Y % 2000)
		got, err := s.SearchPath(y, path)
		if err != nil {
			return false
		}
		want, _, err := NaiveSearchPath(bt, cats, y, path)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
