package cascade_test

import (
	"fmt"
	"log"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Example shows the sequential fractional cascading search: one binary
// search at the root, then constant-time bridge walks.
func Example() {
	bt, err := tree.NewBalancedBinary(2) // 3 nodes: root 0, leaves 1 and 2
	if err != nil {
		log.Fatal(err)
	}
	cats := []catalog.Catalog{
		catalog.MustFromKeys([]catalog.Key{5, 25, 45}, nil),
		catalog.MustFromKeys([]catalog.Key{10, 30}, nil),
		catalog.MustFromKeys([]catalog.Key{20, 40}, nil),
	}
	s, err := cascade.Build(bt, cats, cascade.Options{})
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.SearchPath(22, []tree.NodeID{0, 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("find(22, node %d) = %d\n", r.Node, r.Key)
	}
	fmt.Printf("fan-out constant b = %d\n", s.B())
	// Output:
	// find(22, node 0) = 25
	// find(22, node 2) = 40
	// fan-out constant b = 3
}
