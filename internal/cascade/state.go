package cascade

import (
	"fmt"
	"sync"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Parts is the complete built state of a Structure, exposed for
// serialization (see internal/snapshot). The slices alias the structure's
// own backing arrays; callers must treat them as read-only. BuildStats are
// deliberately absent: FromParts recomputes them, so they cannot drift from
// the catalogs they describe.
type Parts struct {
	// Stride is the sampling stride the structure was built with.
	Stride int
	// Bidirectional reports whether the top-down merge pass ran.
	Bidirectional bool
	// Native[v] is node v's native catalog.
	Native []catalog.Catalog
	// Aug[v] is node v's augmented catalog.
	Aug []catalog.Catalog
	// Bridges[v][ci][j] is the position in child ci's augmented catalog of
	// the smallest entry with key >= Aug[v].Key(j); nil at leaves.
	Bridges [][][]int32
}

// ExportParts returns the structure's built state for serialization.
func (s *Structure) ExportParts() Parts {
	return Parts{
		Stride:        s.stride,
		Bidirectional: s.bidir,
		Native:        s.native,
		Aug:           s.aug,
		Bridges:       s.bridges,
	}
}

// FromParts reassembles a Structure over tree t from previously exported
// parts, without re-running the cascade merge. Every invariant a search
// relies on is validated — catalog terminals, bridge array shapes, bridge
// monotonicity (property 3), and bridge range — so corrupted or mismatched
// parts are reported as an error, never as a later panic or a silently
// wrong answer. Build statistics are recomputed from the catalogs.
func FromParts(t *tree.Tree, p Parts) (*Structure, error) {
	return FromPartsParallel(t, p, 1)
}

// FromPartsParallel is FromParts with the per-node invariant validation
// fanned out over parallelism host workers (0 = all cores). Validation is
// read-only per node, so the outcome is identical for every parallelism
// value; when several nodes are invalid, the error for the lowest node
// index is reported, matching the sequential scan.
func FromPartsParallel(t *tree.Tree, p Parts, parallelism int) (*Structure, error) {
	if t == nil {
		return nil, fmt.Errorf("cascade: nil tree")
	}
	n := t.N()
	if len(p.Native) != n || len(p.Aug) != n || len(p.Bridges) != n {
		return nil, fmt.Errorf("cascade: parts for %d/%d/%d nodes, tree has %d",
			len(p.Native), len(p.Aug), len(p.Bridges), n)
	}
	if p.Stride < 2 {
		return nil, fmt.Errorf("cascade: stride %d < 2", p.Stride)
	}
	s := &Structure{
		t:       t,
		native:  p.Native,
		aug:     p.Aug,
		bridges: p.Bridges,
		b:       p.Stride - 1,
		stride:  p.Stride,
		bidir:   p.Bidirectional,
	}
	var (
		errMu   sync.Mutex
		errNode = n
		errVal  error
	)
	report := func(v int, err error) {
		errMu.Lock()
		if v < errNode {
			errNode, errVal = v, err
		}
		errMu.Unlock()
	}
	buildpool.ForEach(parallelism, n, 64, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if err := validateNode(t, p, v); err != nil {
				report(v, err)
				return
			}
		}
	})
	if errVal != nil {
		return nil, errVal
	}
	// Recompute statistics; Rounds mirrors the Build schedule (height+1
	// bottom-up rounds, height top-down rounds when bidirectional, one
	// bridge round).
	s.stats.Rounds = t.Height() + 2
	if s.bidir {
		s.stats.Rounds += t.Height()
	}
	for v := 0; v < n; v++ {
		s.stats.NativeEntries += int64(p.Native[v].Len())
		a := int64(p.Aug[v].Len())
		s.stats.AugEntries += a
		s.stats.Work += a
	}
	return s, nil
}

// validateNode checks every search-bearing invariant of node v in isolation:
// catalog terminals, bridge array shapes, bridge monotonicity (property 3),
// and bridge range. It reads only v's own parts plus the lengths of its
// children's catalogs, so nodes validate independently.
func validateNode(t *tree.Tree, p Parts, v int) error {
	for _, c := range []catalog.Catalog{p.Native[v], p.Aug[v]} {
		if c.Len() == 0 {
			return fmt.Errorf("cascade: node %d: empty catalog", v)
		}
		if last := c.At(c.Len() - 1); last.Key != catalog.PlusInf || !last.Native {
			return fmt.Errorf("cascade: node %d: catalog missing native +inf terminal", v)
		}
	}
	ch := t.Children(tree.NodeID(v))
	if len(ch) == 0 {
		if len(p.Bridges[v]) != 0 {
			return fmt.Errorf("cascade: leaf %d has %d bridge arrays", v, len(p.Bridges[v]))
		}
		return nil
	}
	if len(p.Bridges[v]) != len(ch) {
		return fmt.Errorf("cascade: node %d: %d bridge arrays for %d children", v, len(p.Bridges[v]), len(ch))
	}
	avLen := p.Aug[v].Len()
	for ci, c := range ch {
		br := p.Bridges[v][ci]
		if len(br) != avLen {
			return fmt.Errorf("cascade: node %d child %d: %d bridges for %d entries", v, ci, len(br), avLen)
		}
		limit := int32(p.Aug[c].Len())
		prev := int32(0)
		for j, b := range br {
			if b < prev || b >= limit {
				return fmt.Errorf("cascade: node %d child %d pos %d: bridge %d outside [%d, %d)", v, ci, j, b, prev, limit)
			}
			prev = b
		}
	}
	return nil
}
