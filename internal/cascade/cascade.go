// Package cascade implements fractional cascading over a rooted tree
// (Chazelle–Guibas), the substrate of the cooperative search structure.
//
// Every tree node carries a native catalog. The builder augments each
// node's catalog with sampled dummy entries from its children's augmented
// catalogs and installs bridge pointers from every augmented entry to its
// successor position in each child. The resulting structure satisfies the
// three properties the paper relies on (Section 2):
//
//  1. Fan-out: for consecutive search-path nodes v, w, the true successor
//     find(y, w) lies within B entries of bridge[v, w, find(y, v)].
//  2. Adjacent entries of v bridge to entries at most B+1 apart in w.
//  3. Bridges do not cross (they are monotone in the entry position).
//
// With sampling stride k (every k-th child entry is lifted), B = k−1; the
// default stride 4 for binary trees gives B = 3 and total augmented size
// at most 2·(native size) + 2·(node count).
//
// Construction proceeds bottom-up in height-many parallel rounds; within a
// round all nodes of a level are independent, mirroring the EREW schedule
// of Atallah–Cole–Goodrich cascading divide-and-conquer (the paper's
// Step 1 preprocessing).
package cascade

import (
	"fmt"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Structure is a fractional cascaded tree of catalogs.
type Structure struct {
	t      *tree.Tree
	native []catalog.Catalog
	aug    []catalog.Catalog
	// bridges[v][ci][j] is the position in child ci's augmented catalog of
	// the smallest entry with key >= aug[v].Key(j).
	bridges [][][]int32
	b       int
	stride  int
	bidir   bool
	stats   BuildStats
}

// BuildStats records construction cost in PRAM terms.
type BuildStats struct {
	// Rounds is the number of bottom-up parallel rounds (tree height + 1).
	Rounds int
	// Work is the total number of entry writes across all rounds; with
	// n/log n processors the schedule length is O(Work/(n/log n) + Rounds).
	Work int64
	// AugEntries is the total augmented catalog size (the O(n) of Lemma 2's
	// input structure).
	AugEntries int64
	// NativeEntries is the total native catalog size (the paper's n).
	NativeEntries int64
}

// Result is the outcome of find(y, v) for one node on a search path.
type Result struct {
	// Node is the catalog's tree node.
	Node tree.NodeID
	// AugPos is the successor position within the node's augmented catalog.
	AugPos int
	// Key is the smallest native key >= y (possibly +∞).
	Key catalog.Key
	// Payload is the native entry's payload, or catalog.NoPayload.
	Payload int32
}

// Options configures Build.
type Options struct {
	// Stride overrides the sampling stride; 0 selects the default
	// max(4, 2·maxDegree).
	Stride int
	// Sequential disables host-level parallelism during construction.
	Sequential bool
	// Parallelism bounds the host workers used for construction: 0 selects
	// all cores (GOMAXPROCS), 1 is sequential, higher values are taken
	// literally. Sequential forces 1 regardless. The built structure is
	// bit-identical for every value — parallelism only changes wall time.
	Parallelism int
	// Bidirectional applies the paper's construction on the bidirectional
	// version of the tree: after the bottom-up pass, a top-down pass merges
	// a sample of each node's (already augmented) parent catalog into the
	// node. This gives the reverse density property — between consecutive
	// entries of a child's catalog at most Stride−1 parent entries lie
	// strictly inside — which Lemma 1 (skeleton-tree disjointness) needs.
	Bidirectional bool
}

// Build constructs the fractional cascaded structure for tree t whose node
// v stores native[v]. len(native) must equal t.N().
func Build(t *tree.Tree, native []catalog.Catalog, opts Options) (*Structure, error) {
	if len(native) != t.N() {
		return nil, fmt.Errorf("cascade: %d catalogs for %d nodes", len(native), t.N())
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 2 * t.MaxDegree()
		if stride < 4 {
			stride = 4
		}
	}
	if stride < 2 {
		return nil, fmt.Errorf("cascade: stride %d < 2", stride)
	}
	s := &Structure{
		t:       t,
		native:  native,
		aug:     make([]catalog.Catalog, t.N()),
		bridges: make([][][]int32, t.N()),
		b:       stride - 1,
		stride:  stride,
		bidir:   opts.Bidirectional,
	}
	for _, c := range native {
		s.stats.NativeEntries += int64(c.Len())
	}
	levels := t.LevelNodes()
	par := opts.Parallelism
	if opts.Sequential {
		par = 1
	}
	const grain = 8
	// Bottom-up rounds: children's augmented catalogs exist before parents'.
	for d := len(levels) - 1; d >= 0; d-- {
		nodes := levels[d]
		buildpool.ForEach(par, len(nodes), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.buildBottomUp(nodes[i])
			}
		})
		s.stats.Rounds++
	}
	if opts.Bidirectional {
		// Top-down rounds: each node absorbs a sample of its parent's
		// final catalog. Level d only depends on level d−1, so within a
		// round all merges are independent.
		for d := 1; d < len(levels); d++ {
			nodes := levels[d]
			buildpool.ForEach(par, len(nodes), grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := nodes[i]
					// Stride is validated ≥ 2 in Build, so the error path
					// is unreachable here.
					sample, _ := s.aug[s.t.Parent(v)].SampleEvery(s.stride)
					s.aug[v] = catalog.MergeForCascade(s.aug[v], dummied(sample))
				}
			})
			s.stats.Rounds++
		}
	}
	// Bridge installation: one merge-walk per edge over the final catalogs.
	all := t.LevelOrder()
	buildpool.ForEach(par, len(all), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.buildBridges(all[i])
		}
	})
	s.stats.Rounds++
	for v := range s.aug {
		s.stats.Work += int64(s.aug[v].Len())
		s.stats.AugEntries += int64(s.aug[v].Len())
	}
	return s, nil
}

// dummied strips native flags and payloads from sampled entries so they
// merge as dummies one level away.
func dummied(sample []catalog.Entry) []catalog.Entry {
	out := make([]catalog.Entry, len(sample))
	for i, e := range sample {
		out[i] = catalog.Entry{Key: e.Key, Payload: catalog.NoPayload, Native: false}
	}
	return out
}

func (s *Structure) buildBottomUp(v tree.NodeID) {
	ch := s.t.Children(v)
	if len(ch) == 0 {
		s.aug[v] = s.native[v]
		return
	}
	samples := make([][]catalog.Entry, len(ch))
	for i, c := range ch {
		// Stride is validated ≥ 2 in Build, so the error path is
		// unreachable here.
		sample, _ := s.aug[c].SampleEvery(s.stride)
		samples[i] = dummied(sample)
	}
	s.aug[v] = catalog.MergeForCascade(s.native[v], samples...)
}

func (s *Structure) buildBridges(v tree.NodeID) {
	ch := s.t.Children(v)
	if len(ch) == 0 {
		return
	}
	s.bridges[v] = make([][]int32, len(ch))
	av := s.aug[v]
	for ci, c := range ch {
		ac := s.aug[c]
		br := make([]int32, av.Len())
		j := 0
		for i := 0; i < av.Len(); i++ {
			k := av.Key(i)
			for j < ac.Len() && ac.Key(j) < k {
				j++
			}
			br[i] = int32(j)
		}
		s.bridges[v][ci] = br
	}
}

// Tree returns the underlying tree.
func (s *Structure) Tree() *tree.Tree { return s.t }

// B returns the fan-out constant of property 1.
func (s *Structure) B() int { return s.b }

// Stride returns the sampling stride used during construction.
func (s *Structure) Stride() int { return s.stride }

// Bidirectional reports whether the structure was built on the
// bidirectional version of the tree.
func (s *Structure) Bidirectional() bool { return s.bidir }

// Stats returns construction statistics.
func (s *Structure) Stats() BuildStats { return s.stats }

// Native returns node v's native catalog.
func (s *Structure) Native(v tree.NodeID) catalog.Catalog { return s.native[v] }

// Aug returns node v's augmented catalog.
func (s *Structure) Aug(v tree.NodeID) catalog.Catalog { return s.aug[v] }

// BridgePos returns the bridge target of entry position pos of node v into
// its ci-th child's augmented catalog.
func (s *Structure) BridgePos(v tree.NodeID, ci, pos int) int {
	return int(s.bridges[v][ci][pos])
}

// SearchRoot performs the initial successor search in the root's augmented
// catalog, returning the position of the smallest entry >= y.
func (s *Structure) SearchRoot(y catalog.Key) int {
	return s.aug[s.t.Root()].Succ(y)
}

// Descend converts the successor position pos of y in v's augmented catalog
// into the successor position of y in the ci-th child's augmented catalog,
// using the bridge and at most B left steps (the constant-time walk of
// fractional cascading). It also reports the number of left steps taken.
func (s *Structure) Descend(y catalog.Key, v tree.NodeID, ci, pos int) (childPos, walked int) {
	w := s.t.Children(v)[ci]
	j := int(s.bridges[v][ci][pos])
	ac := s.aug[w]
	for j > 0 && ac.Key(j-1) >= y {
		j--
		walked++
	}
	return j, walked
}

// ResultAt materialises the Result for node v given the successor position
// in its augmented catalog.
func (s *Structure) ResultAt(v tree.NodeID, pos int) Result {
	k, pl := s.aug[v].NativeResult(pos)
	return Result{Node: v, AugPos: pos, Key: k, Payload: pl}
}

// SearchPath performs the sequential fractional cascading search: one
// successor search at the root followed by constant-time bridge walks along
// the given downward path (O(log n + len(path)) total). It returns
// find(y, v) for every node on the path.
func (s *Structure) SearchPath(y catalog.Key, path []tree.NodeID) ([]Result, error) {
	if err := s.t.ValidatePath(path); err != nil {
		return nil, err
	}
	if path[0] != s.t.Root() {
		return nil, fmt.Errorf("cascade: path must start at the root")
	}
	out := make([]Result, len(path))
	pos := s.SearchRoot(y)
	out[0] = s.ResultAt(path[0], pos)
	for i := 1; i < len(path); i++ {
		ci := s.t.ChildIndex(path[i-1], path[i])
		pos, _ = s.Descend(y, path[i-1], ci, pos)
		out[i] = s.ResultAt(path[i], pos)
	}
	return out, nil
}

// SearchPathCounted is SearchPath plus an exact count of key comparisons,
// for the work comparisons in the benchmark harness.
func (s *Structure) SearchPathCounted(y catalog.Key, path []tree.NodeID) ([]Result, int, error) {
	if err := s.t.ValidatePath(path); err != nil {
		return nil, 0, err
	}
	comparisons := 0
	rootCat := s.aug[path[0]]
	lo, hi := 0, rootCat.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		comparisons++
		if rootCat.Key(mid) >= y {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	pos := lo
	out := make([]Result, len(path))
	out[0] = s.ResultAt(path[0], pos)
	for i := 1; i < len(path); i++ {
		ci := s.t.ChildIndex(path[i-1], path[i])
		var walked int
		pos, walked = s.Descend(y, path[i-1], ci, pos)
		comparisons += walked + 1
		out[i] = s.ResultAt(path[i], pos)
	}
	return out, comparisons, nil
}

// NaiveSearchPath is the no-cascading baseline: an independent binary
// search in every native catalog along the path (O(len(path)·log n)). It
// returns results identical to SearchPath and the comparison count.
func NaiveSearchPath(t *tree.Tree, native []catalog.Catalog, y catalog.Key, path []tree.NodeID) ([]Result, int, error) {
	if err := t.ValidatePath(path); err != nil {
		return nil, 0, err
	}
	out := make([]Result, len(path))
	comparisons := 0
	for i, v := range path {
		c := native[v]
		lo, hi := 0, c.Len()
		for lo < hi {
			mid := (lo + hi) / 2
			comparisons++
			if c.Key(mid) >= y {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		e := c.At(lo)
		out[i] = Result{Node: v, AugPos: lo, Key: e.Key, Payload: e.Payload}
	}
	return out, comparisons, nil
}

// CheckProperties validates properties 1–3 on the built structure for the
// given probe keys, returning an error describing the first violation.
// Tests use it as the executable statement of the paper's Section 2
// invariants.
func (s *Structure) CheckProperties(probes []catalog.Key) error {
	// Property 3: bridge monotonicity (non-crossing).
	for v := 0; v < s.t.N(); v++ {
		for ci := range s.bridges[v] {
			br := s.bridges[v][ci]
			for j := 1; j < len(br); j++ {
				if br[j] < br[j-1] {
					return fmt.Errorf("cascade: bridges cross at node %d child %d pos %d", v, ci, j)
				}
			}
			// Property 2: adjacent entries bridge at most B+1 apart.
			for j := 1; j < len(br); j++ {
				if int(br[j]-br[j-1]) > s.b+1 {
					return fmt.Errorf("cascade: adjacent bridges %d apart (> %d) at node %d child %d pos %d",
						br[j]-br[j-1], s.b+1, v, ci, j)
				}
			}
		}
	}
	// Property 1: fan-out within B for probe keys on all edges.
	for _, y := range probes {
		for v := 0; v < s.t.N(); v++ {
			pos := s.aug[v].Succ(y)
			for ci, w := range s.t.Children(tree.NodeID(v)) {
				bridge := int(s.bridges[v][ci][pos])
				truth := s.aug[w].Succ(y)
				if truth > bridge || bridge-truth > s.b {
					return fmt.Errorf("cascade: fan-out violated at edge %d->%d for y=%d: bridge %d, true %d, b %d",
						v, w, y, bridge, truth, s.b)
				}
			}
		}
	}
	if s.bidir {
		return s.checkReverseDensity()
	}
	return nil
}

// checkReverseDensity verifies the bidirectional property that between two
// consecutive entries of a child's catalog at most Stride−1 entries of the
// parent's catalog lie strictly inside the key gap. This is the property
// Lemma 1 (disjointness of sampled skeleton trees) relies on.
func (s *Structure) checkReverseDensity() error {
	for v := 0; v < s.t.N(); v++ {
		p := s.t.Parent(tree.NodeID(v))
		if p == tree.Nil {
			continue
		}
		child, parent := s.aug[v], s.aug[p]
		j := 0
		for i := 1; i < child.Len(); i++ {
			lo, hi := child.Key(i-1), child.Key(i)
			for j < parent.Len() && parent.Key(j) <= lo {
				j++
			}
			count := 0
			for k := j; k < parent.Len() && parent.Key(k) < hi; k++ {
				count++
			}
			if count > s.stride-1 {
				return fmt.Errorf("cascade: reverse density violated at node %d gap %d: %d parent entries (max %d)",
					v, i, count, s.stride-1)
			}
		}
	}
	return nil
}
