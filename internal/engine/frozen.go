package engine

import (
	"context"
	"fmt"
	"sync"

	"fraccascade/internal/flat"
	"fraccascade/internal/spatial"
)

// FrozenBackend is the engine's uniform view over every backend served
// from a frozen flat layout, whatever the structure kind. It is what the
// snapshot sidecar path programs against: save iterates FrozenBackends and
// writes one (kind, blob) pair per backend; restore routes each sidecar
// blob back to the matching backend by kind. The per-kind special-casing
// this replaces lived in coopserve, which knew that "flat" meant exactly
// the catalog shards.
type FrozenBackend interface {
	// FrozenKind returns the flat store kind of the backend's blob
	// (flat.StoreKindCatalog and friends).
	FrozenKind() uint32
	// Generation returns the generation of the structure the current
	// frozen layout was built from.
	Generation() uint64
	// Refreezes reports how many times the backend froze its pointer
	// structure (0 means it is still serving a preloaded layout).
	Refreezes() uint64
	// FrozenBlob returns the current frozen layout's wire encoding, for
	// sidecar export.
	FrozenBlob() ([]byte, error)
}

// FrozenKind implements FrozenBackend.
func (fs *FlatShard) FrozenKind() uint32 { return flat.StoreKindCatalog }

// FrozenBlob implements FrozenBackend.
func (fs *FlatShard) FrozenBlob() ([]byte, error) {
	f, err := fs.current()
	if err != nil {
		return nil, err
	}
	return f.MarshalBinary()
}

// spatialBackend is the engine's routing view over spatial locators; the
// pointer Locator and FlatSpatial satisfy it with identical answers and
// stats.
type spatialBackend interface {
	LocateCoop(x, y, z int64, p int) (int, spatial.Stats, error)
	LocateCoopContext(ctx context.Context, x, y, z int64, p int) (int, spatial.Stats, error)
}

// FlatSpatial serves spatial point-location from the frozen flat layout of
// an inner locator: a drop-in spatial backend with bit-identical cells and
// Stats, running on the SoA arrays with zero allocations per query (the
// scratch is pooled across goroutines). The locator is static — there is
// no generation to track and never a refreeze after construction — so the
// FrozenBackend surface reports generation 0 and a freeze count of 0 or 1.
type FlatSpatial struct {
	inner *spatial.Locator
	f     *spatial.Frozen
	froze uint64
	pool  sync.Pool // *spatial.Scratch
}

// NewFlatSpatial freezes the locator and wraps it.
func NewFlatSpatial(sp *spatial.Locator) (*FlatSpatial, error) {
	f, err := sp.Freeze()
	if err != nil {
		return nil, fmt.Errorf("engine: freeze spatial locator: %w", err)
	}
	return newFlatSpatial(sp, f, 1), nil
}

// NewFlatSpatialFrom wraps the locator around an already-decoded frozen
// layout (a snapshot sidecar), skipping the freeze when the preloaded
// layout matches the locator's shape. A mismatch is rejected — the caller
// should fall back to NewFlatSpatial.
func NewFlatSpatialFrom(sp *spatial.Locator, f *spatial.Frozen) (*FlatSpatial, error) {
	if f == nil {
		return nil, fmt.Errorf("engine: nil preloaded frozen spatial layout")
	}
	if f.Cells() != sp.Cells() {
		return nil, fmt.Errorf("engine: preloaded spatial layout has %d cells, locator has %d", f.Cells(), sp.Cells())
	}
	return newFlatSpatial(sp, f, 0), nil
}

func newFlatSpatial(sp *spatial.Locator, f *spatial.Frozen, froze uint64) *FlatSpatial {
	fsp := &FlatSpatial{inner: sp, f: f, froze: froze}
	fsp.pool.New = func() any { return f.NewScratch() }
	return fsp
}

// LocateCoop implements spatialBackend on the frozen layout.
func (fsp *FlatSpatial) LocateCoop(x, y, z int64, p int) (int, spatial.Stats, error) {
	sc := fsp.pool.Get().(*spatial.Scratch)
	cell, stats, err := fsp.f.LocateCoopInto(x, y, z, p, sc)
	fsp.pool.Put(sc)
	return cell, stats, err
}

// LocateCoopContext implements spatialBackend. The flat locate runs in
// microseconds host-side, so cancellation is checked once up front (with
// the pointer path's error shape) rather than between hops.
func (fsp *FlatSpatial) LocateCoopContext(ctx context.Context, x, y, z int64, p int) (int, spatial.Stats, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, spatial.Stats{}, fmt.Errorf("spatial: locate cancelled: %w", err)
		}
	}
	return fsp.LocateCoop(x, y, z, p)
}

// Frozen returns the served frozen layout, for tests and sidecar export.
func (fsp *FlatSpatial) Frozen() *spatial.Frozen { return fsp.f }

// FrozenKind implements FrozenBackend.
func (fsp *FlatSpatial) FrozenKind() uint32 { return flat.StoreKindSpatial }

// Generation implements FrozenBackend; the locator is static.
func (fsp *FlatSpatial) Generation() uint64 { return 0 }

// Refreezes implements FrozenBackend: 1 when construction froze the
// locator, 0 when a preloaded layout is serving.
func (fsp *FlatSpatial) Refreezes() uint64 { return fsp.froze }

// FrozenBlob implements FrozenBackend.
func (fsp *FlatSpatial) FrozenBlob() ([]byte, error) { return fsp.f.MarshalBinary() }

var _ FrozenBackend = (*FlatShard)(nil)
var _ FrozenBackend = (*FlatSpatial)(nil)
var _ spatialBackend = (*spatial.Locator)(nil)
var _ spatialBackend = (*FlatSpatial)(nil)

// FrozenBackends returns every backend the engine serves from a frozen
// layout, in a deterministic order: the catalog shards in shard order,
// then the spatial locator. Empty unless the engine was built with
// Config.Flat (or pre-wrapped flat shards).
func (e *Engine) FrozenBackends() []FrozenBackend {
	var out []FrozenBackend
	for _, s := range e.shards {
		if fb, ok := s.(FrozenBackend); ok {
			out = append(out, fb)
		}
	}
	if fsp, ok := e.sp.(*FlatSpatial); ok {
		out = append(out, fsp)
	}
	return out
}
