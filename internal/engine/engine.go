// Package engine is the batched multi-query layer over the cooperative
// search structures: it accepts a stream of heterogeneous queries —
// iterative catalog-graph searches (internal/core, internal/dynamic),
// planar point location (internal/pointloc), and spatial point location
// (internal/spatial) — groups them into batches, and executes each batch
// over a shared work-stealing pool.
//
// The paper (Theorems 1–5) prices a *single* search with p processors.
// Under concurrent traffic the p processors are the contended resource, so
// the engine splits the budget per the same p-way cost model: a batch of b
// queries runs each query on a disjoint group of p = max(1, P/b)
// processors, concurrently, making the batch's parallel time the *maximum*
// per-query step count instead of the sum. Because a cooperative search
// takes O((log n)/log p) steps, shrinking p from P to P/b inflates a
// query only by the ratio log P / log(P/b) while b queries now finish per
// batch — throughput in queries/step grows almost linearly in b, which is
// exactly what experiment E20 measures.
//
// Two locality mechanisms ride on top. A per-shard LRU entry-point cache
// remembers recently resolved cascade entry positions keyed by query-path
// prefix (the entry node) and key interval; batches with key locality skip
// the top-of-skeleton entry rounds and pay one verification step. The
// catalog graph may also be sharded into independent substructures
// (CatalogBackend per shard), which the pool serves concurrently with no
// shared state. Dynamic backends invalidate the cache across Flush via the
// generation counter of internal/dynamic; hits additionally re-validate
// the hinted position in O(1) against the live catalog, so a stale hit is
// impossible even if a generation check were bypassed.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/obs"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/spatial"
	"fraccascade/internal/tree"
)

// Kind identifies a query's target structure.
type Kind uint8

const (
	// KindCatalog is an iterative cooperative search on a catalog-graph
	// shard (key + root path).
	KindCatalog Kind = iota
	// KindPoint is planar point location in the engine's subdivision.
	KindPoint
	// KindSpatial is spatial point location in the engine's cell complex.
	KindSpatial
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCatalog:
		return "catalog"
	case KindPoint:
		return "point"
	case KindSpatial:
		return "spatial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Query is one search request. Only the fields of its Kind are read.
type Query struct {
	Kind Kind
	// Shard routes a catalog query to a backend; 0 for unsharded engines.
	Shard int
	// Key and Path define a catalog query (Path starts at the shard root).
	Key  catalog.Key
	Path []tree.NodeID
	// Point is the planar point-location query.
	Point geom.Point
	// SX, SY, SZ are the spatial point-location coordinates.
	SX, SY, SZ int64
}

// CatalogQuery builds a catalog-graph query.
func CatalogQuery(shard int, y catalog.Key, path []tree.NodeID) Query {
	return Query{Kind: KindCatalog, Shard: shard, Key: y, Path: path}
}

// PointQuery builds a planar point-location query.
func PointQuery(pt geom.Point) Query { return Query{Kind: KindPoint, Point: pt} }

// SpatialQuery builds a spatial point-location query.
func SpatialQuery(x, y, z int64) Query { return Query{Kind: KindSpatial, SX: x, SY: y, SZ: z} }

// Answer is one query's result.
type Answer struct {
	// Query echoes the request.
	Query Query
	// P is the processor share the query ran with.
	P int
	// Steps is the simulated parallel time of this query.
	Steps int
	// CacheHit reports whether a catalog query entered through the
	// entry-point cache.
	CacheHit bool
	// CacheStale reports a cache lookup that hit but whose hinted position
	// failed O(1) revalidation (a flush raced the lookup); the query fell
	// back to the full entry search, so CacheHit is false.
	CacheStale bool
	// FingerHit reports a catalog query whose exact cache lookup missed
	// but which entered by galloping from a nearby cached entry position
	// (distance-sensitive finger search, Config.FingerCache). CacheHit is
	// false — the finger makes the miss path cheap, it is not a hit.
	FingerHit bool
	// PhaseSteps decomposes Steps by algorithm phase per the Stats cost
	// model — catalog and planar queries: "root-coop" (Step-1 cooperative
	// rounds), "hop-descent" (block-jump steps), "seq-tail" (sequential
	// levels); spatial queries: "discrim" (per-node discrimination rounds)
	// and "descent" (the rest). Values sum to Steps; zero phases are
	// omitted. Nil on error.
	PhaseSteps map[string]int
	// Rounds is the query's cooperative root-search round count (catalog
	// and planar queries: Stats.RootRounds; spatial: the summed per-node
	// discrimination rounds) — the quantity the entry cache absorbs.
	Rounds int
	// Results holds find(y, v) per path node for catalog queries.
	Results []cascade.Result
	// Region is the located region for point queries (1-based).
	Region int
	// Cell is the located cell for spatial queries (1-based).
	Cell int
	// Err is the per-query failure, nil on success.
	Err error
	// RequestID is the serving-layer correlation id carried by the batch
	// context (obs.WithRequestID); empty when the caller attached none.
	RequestID string
	// WallNS is the query's host wall time in nanoseconds, measured only
	// when a flight recorder is attached (Config.Recorder); 0 otherwise —
	// the uninstrumented hot path takes no clock readings per query.
	WallNS int64
	// FingerDist is the key distance d between the query key and the
	// cached finger entry a FingerHit galloped from (the O(log d) cost
	// driver); 0 unless FingerHit.
	FingerDist int64
}

// BatchReport summarises one executed batch.
type BatchReport struct {
	// B is the batch size and PTotal the engine's processor budget.
	B, PTotal int
	// PShare is the per-query processor group size max(1, PTotal/B).
	PShare int
	// Steps is the batch's parallel time: the maximum per-query step
	// count (queries run concurrently on disjoint processor groups).
	Steps int
	// CacheHits and CacheMisses count catalog queries by entry outcome.
	CacheHits, CacheMisses int
	// FingerHits counts the subset of CacheMisses served by galloping from
	// a nearby cached entry (Config.FingerCache).
	FingerHits int
	// Errors counts failed queries.
	Errors int
}

// Throughput returns the batch's queries/step (0 for an empty batch).
func (r BatchReport) Throughput() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.B) / float64(r.Steps)
}

// Config parameterises an Engine.
type Config struct {
	// Procs is the total simulated processor budget P shared by each
	// batch (required, ≥ 1).
	Procs int
	// BatchSize is the grouping size b used by Submit/Flush (default 16).
	BatchSize int
	// CacheSize is the per-shard entry-point cache capacity: 0 selects
	// the default (256), negative disables caching.
	CacheSize int
	// Workers is the host pool size (default GOMAXPROCS).
	Workers int
	// Obs, when non-nil, mirrors engine, pool, and cache counters into
	// the registry (see Metrics for the authoritative per-engine view and
	// internal/obs for the metric-name inventory). Nil disables metrics
	// with zero hot-path cost.
	Obs *obs.Registry
	// Tracer, when non-nil, receives one obs.Span per executed query
	// (batched path only). It must be safe for concurrent Emit calls.
	Tracer obs.Tracer
	// Recorder, when non-nil, retains per-query flight records (batched
	// path only): request id, shard, kind, host wall ns, phase steps,
	// cache outcome, finger distance, and error text, under the recorder's
	// tail-sampling keep policy. Also enables per-query wall timing (see
	// Answer.WallNS). Nil disables recording with zero hot-path cost.
	Recorder *obs.FlightRecorder
	// Flat serves every catalog shard from its frozen flat layout
	// (internal/flat) instead of the pointer structures: each shard is
	// wrapped in a FlatShard at construction, so answers and Stats stay
	// bit-identical while the hot path runs allocation-free on index
	// arrays. Requires every shard to implement FlatSource.
	Flat bool
	// BuildParallelism bounds the host workers used when Flat shards freeze
	// or refreeze the pointer structure (0 = all cores, 1 = sequential).
	// The frozen layout is bit-identical for every value.
	BuildParallelism int
	// FingerCache upgrades the entry cache to distance-sensitive finger
	// search: when a lookup misses exactly but a cached entry exists near
	// the key on the same entry node, the search gallops from that finger
	// position in O(log d) probes for key-distance d instead of paying the
	// full O(log n) cooperative root search. Answers stay oracle-exact;
	// only the charged entry rounds shrink. Off by default.
	FingerCache bool
	// FrozenSpatial, under Flat, preloads the spatial locator's frozen
	// layout (a decoded snapshot-sidecar blob) instead of freezing at
	// construction. A shape mismatch with the locator fails New — callers
	// restoring from an untrusted sidecar should validate first and fall
	// back to a nil FrozenSpatial. Ignored unless Flat is set and a
	// locator is supplied.
	FrozenSpatial *spatial.Frozen
}

// defaultCacheSize is the per-shard entry cache capacity when unset.
const defaultCacheSize = 256

// defaultBatchSize is the Submit/Flush grouping size when unset.
const defaultBatchSize = 16

// Engine executes batched heterogeneous queries; construct with New. All
// methods are safe for concurrent use, but mutations to dynamic backends
// must be serialised with batch execution by the caller (the backends
// themselves are single-writer structures).
type Engine struct {
	cfg    Config
	shards []CatalogBackend
	caches []*entryCache
	pl     *pointloc.Locator
	sp     spatialBackend
	pool   *Pool

	mu      sync.Mutex
	pending []Query
	queries uint64
	batches uint64
	errors  uint64
	steps   uint64

	// Observability (all handles nil-safe; see Config.Obs / Config.Tracer).
	tracer    obs.Tracer
	recorder  *obs.FlightRecorder
	qid       atomic.Uint64 // engine-unique query ids for spans
	bid       atomic.Uint64 // engine-unique batch ids for spans
	obsBatch  *obs.Counter
	obsQuery  *obs.Counter
	obsErr    *obs.Counter
	obsKind   [3]*obs.Counter // indexed by Kind
	obsShardQ []*obs.Counter  // per-shard catalog query counts
	obsSteps  *obs.Histogram  // batch parallel time
	obsSize   *obs.Histogram  // batch size
	obsWall   *obs.Histogram  // host wall time per batch, ns
	obsPhase  map[string]*obs.Counter
}

// phaseOrder fixes the emission order of per-phase child spans and the
// counter set created in New: first the catalog/planar decomposition, then
// the spatial one.
var phaseOrder = [...]string{"root-coop", "hop-descent", "seq-tail", "discrim", "descent"}

// New builds an engine over the given shards and locators. Any backend may
// be absent (nil locators, empty shard list); queries of an unserved kind
// fail individually with a routing error.
func New(cfg Config, shards []CatalogBackend, pl *pointloc.Locator, sp *spatial.Locator) (*Engine, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("engine: processor budget must be positive, got %d", cfg.Procs)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("engine: batch size must be positive, got %d", cfg.BatchSize)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = defaultCacheSize
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("engine: shard %d is nil", i)
		}
	}
	if cfg.Flat {
		// Build a fresh slice so the caller's backing array is untouched.
		// Shards the caller already wrapped (coopserve's sidecar preload
		// path) pass through untouched, so Flat is idempotent.
		wrapped := make([]CatalogBackend, len(shards))
		for i, s := range shards {
			if fs, ok := s.(*FlatShard); ok {
				wrapped[i] = fs
				continue
			}
			fs, err := NewFlatShardParallel(s, cfg.BuildParallelism)
			if err != nil {
				return nil, fmt.Errorf("engine: flat shard %d: %w", i, err)
			}
			wrapped[i] = fs
		}
		shards = wrapped
	}
	if cfg.BuildParallelism > 0 {
		// Shards pre-wrapped by the caller (coopserve's snapshot preload
		// path) adopt the engine's refreeze parallelism too.
		for _, s := range shards {
			if fs, ok := s.(*FlatShard); ok {
				fs.SetBuildParallelism(cfg.BuildParallelism)
			}
		}
	}
	// The spatial locator goes through the same flat unification as the
	// catalog shards: under Config.Flat it is served from its frozen twin,
	// preloaded from a sidecar when the caller provides one.
	var spb spatialBackend
	if sp != nil {
		spb = sp
		if cfg.Flat {
			var fsp *FlatSpatial
			var err error
			if cfg.FrozenSpatial != nil {
				fsp, err = NewFlatSpatialFrom(sp, cfg.FrozenSpatial)
			} else {
				fsp, err = NewFlatSpatial(sp)
			}
			if err != nil {
				return nil, err
			}
			spb = fsp
		}
	}
	e := &Engine{
		cfg:    cfg,
		shards: shards,
		caches: make([]*entryCache, len(shards)),
		pl:     pl,
		sp:     spb,
		pool:     NewPool(cfg.Workers),
		tracer:   cfg.Tracer,
		recorder: cfg.Recorder,
	}
	for i := range e.caches {
		e.caches[i] = newEntryCache(cfg.CacheSize, cfg.Obs, i)
	}
	if r := cfg.Obs; r != nil {
		e.obsBatch = r.Counter("engine.batches")
		e.obsQuery = r.Counter("engine.queries")
		e.obsErr = r.Counter("engine.errors")
		for k := KindCatalog; k <= KindSpatial; k++ {
			e.obsKind[k] = r.Counter("engine.queries." + k.String())
		}
		e.obsShardQ = make([]*obs.Counter, len(shards))
		for i := range shards {
			e.obsShardQ[i] = r.Counter(fmt.Sprintf("engine.shard.%d.queries", i))
		}
		e.obsSteps = r.Histogram("engine.batch.steps")
		e.obsSize = r.Histogram("engine.batch.size")
		e.obsWall = r.Histogram("engine.batch.wall_ns")
		e.obsPhase = make(map[string]*obs.Counter, len(phaseOrder))
		for _, label := range phaseOrder {
			e.obsPhase[label] = r.Counter("engine.phase." + label + ".steps")
		}
		// Pool and queue depths are pulled at snapshot time rather than
		// mirrored per event — the pool's own atomics stay the ground
		// truth and the batch hot path is untouched.
		r.RegisterFunc("engine.pool.workers", func() int64 { return int64(e.pool.Workers()) })
		r.RegisterFunc("engine.pool.tasks", e.pool.Tasks)
		r.RegisterFunc("engine.pool.steals", e.pool.Steals)
		r.RegisterFunc("engine.pool.idle", e.pool.Idle)
		r.RegisterFunc("engine.pending", func() int64 { return int64(e.Pending()) })
	}
	return e, nil
}

// NumShards returns the number of catalog shards.
func (e *Engine) NumShards() int { return len(e.shards) }

// Pool exposes the engine's work-stealing pool (for metrics).
func (e *Engine) Pool() *Pool { return e.pool }

// ExecuteBatch runs the queries as one batch: each gets a disjoint group of
// max(1, Procs/len(qs)) simulated processors and all run concurrently on
// the pool. Per-query failures land in the answers; the error return is
// reserved for empty batches.
func (e *Engine) ExecuteBatch(qs []Query) ([]Answer, BatchReport, error) {
	return e.execute(nil, qs)
}

// ExecuteBatchContext is ExecuteBatch honouring cancellation and deadlines:
// ctx is checked before each query starts and threaded into the
// context-aware search paths of every backend kind, so a fired context
// surfaces promptly as per-query errors (counted in the report) rather
// than hanging the batch. A nil ctx runs the plain uncancellable path and
// is behaviourally identical to ExecuteBatch. Cache-hit catalog entries
// stay uncancellable — the hinted search skips the expensive cooperative
// rounds the context guard exists to bound.
func (e *Engine) ExecuteBatchContext(ctx context.Context, qs []Query) ([]Answer, BatchReport, error) {
	return e.execute(ctx, qs)
}

// execute runs one batch; a nil ctx selects the plain search paths.
func (e *Engine) execute(ctx context.Context, qs []Query) ([]Answer, BatchReport, error) {
	if len(qs) == 0 {
		return nil, BatchReport{}, fmt.Errorf("engine: empty batch")
	}
	var wallStart time.Time
	if e.obsWall != nil {
		wallStart = time.Now()
	}
	pShare := e.cfg.Procs / len(qs)
	if pShare < 1 {
		pShare = 1
	}
	answers := make([]Answer, len(qs))
	tasks := make([]func(), len(qs))
	for i := range qs {
		i := i
		tasks[i] = func() { answers[i] = e.runQuery(ctx, qs[i], pShare, true) }
	}
	e.pool.Run(tasks)
	if reqID := obs.RequestIDFrom(ctx); reqID != "" {
		for i := range answers {
			answers[i].RequestID = reqID
		}
	}
	rep := BatchReport{B: len(qs), PTotal: e.cfg.Procs, PShare: pShare}
	for i := range answers {
		if answers[i].Steps > rep.Steps {
			rep.Steps = answers[i].Steps
		}
		if answers[i].Err != nil {
			rep.Errors++
		} else if answers[i].Query.Kind == KindCatalog {
			if answers[i].CacheHit {
				rep.CacheHits++
			} else {
				rep.CacheMisses++
				if answers[i].FingerHit {
					rep.FingerHits++
				}
			}
		}
	}
	e.mu.Lock()
	stepBase := e.steps
	e.queries += uint64(len(qs))
	e.batches++
	e.errors += uint64(rep.Errors)
	e.steps += uint64(rep.Steps)
	e.mu.Unlock()
	e.observeBatch(answers, rep, stepBase, wallStart)
	return answers, rep, nil
}

// observeBatch mirrors a finished batch into the metrics registry and
// emits one span per query. Every handle is a nil-safe no-op, so with
// observability disabled this is a handful of nil checks.
func (e *Engine) observeBatch(answers []Answer, rep BatchReport, stepBase uint64, wallStart time.Time) {
	e.obsBatch.Inc()
	e.obsQuery.Add(int64(rep.B))
	e.obsErr.Add(int64(rep.Errors))
	e.obsSteps.Observe(int64(rep.Steps))
	e.obsSize.Observe(int64(rep.B))
	if e.obsWall != nil {
		e.obsWall.Observe(time.Since(wallStart).Nanoseconds())
	}
	for i := range answers {
		q := answers[i].Query
		if q.Kind <= KindSpatial {
			e.obsKind[q.Kind].Inc()
		}
		if q.Kind == KindCatalog && e.obsShardQ != nil && q.Shard >= 0 && q.Shard < len(e.obsShardQ) {
			e.obsShardQ[q.Shard].Inc()
		}
		if e.obsPhase != nil {
			for label, n := range answers[i].PhaseSteps {
				e.obsPhase[label].Add(int64(n))
			}
		}
	}
	if e.tracer == nil && e.recorder == nil {
		return
	}
	// Spans of one batch share the batch id and overlap on the engine's
	// cumulative step clock: each query occupied [stepBase, stepBase+Steps)
	// of the batch's [stepBase, stepBase+rep.Steps) window, concurrently on
	// its own processor group. Flight records share the span's query id so
	// a slowlog entry correlates with /spans output.
	bid := e.bid.Add(1)
	for i := range answers {
		a := &answers[i]
		qid := e.qid.Add(1)
		var cacheOutcome, errText string
		if a.Query.Kind == KindCatalog && a.Err == nil {
			switch {
			case a.CacheHit:
				cacheOutcome = "hit"
			case a.CacheStale:
				cacheOutcome = "stale"
			case a.FingerHit:
				cacheOutcome = "finger"
			default:
				cacheOutcome = "miss"
			}
		}
		if a.Err != nil {
			errText = a.Err.Error()
		}
		if e.recorder != nil {
			rec := obs.FlightRecord{
				ID:        qid,
				Batch:     bid,
				RequestID: a.RequestID,
				Kind:      a.Query.Kind.String(),
				Shard:     a.Query.Shard,
				P:         a.P,
				Steps:     a.Steps,
				Rounds:    a.Rounds,
				WallNS:    a.WallNS,
				Cache:     cacheOutcome,
				FingerD:   a.FingerDist,
				Err:       errText,
			}
			pi := 0
			for _, label := range phaseOrder {
				if n := a.PhaseSteps[label]; n > 0 && pi < len(rec.Phases) {
					rec.Phases[pi] = obs.PhaseCount{Label: label, Steps: n}
					pi++
				}
			}
			e.recorder.Record(&rec)
		}
		if e.tracer == nil {
			continue
		}
		s := obs.Span{
			ID:        qid,
			Batch:     bid,
			Kind:      a.Query.Kind.String(),
			Shard:     a.Query.Shard,
			P:         a.P,
			Rounds:    a.Rounds,
			Steps:     a.Steps,
			StepLo:    stepBase,
			StepHi:    stepBase + uint64(a.Steps),
			Cache:     cacheOutcome,
			CacheHit:  a.CacheHit,
			Err:       errText,
			RequestID: a.RequestID,
		}
		e.tracer.Emit(s)
		// Per-phase child spans partition the parent's window in the fixed
		// phase order, each carrying the parent's id.
		off := s.StepLo
		for _, label := range phaseOrder {
			n := a.PhaseSteps[label]
			if n == 0 {
				continue
			}
			e.tracer.Emit(obs.Span{
				ID:        e.qid.Add(1),
				Batch:     bid,
				Parent:    s.ID,
				Kind:      s.Kind,
				Shard:     s.Shard,
				Phase:     label,
				P:         a.P,
				Steps:     n,
				StepLo:    off,
				StepHi:    off + uint64(n),
				RequestID: a.RequestID,
			})
			off += uint64(n)
		}
	}
}

// ExecuteSequential runs the queries one at a time, each with the full
// processor budget and no entry cache — the one-query-at-a-time baseline
// batched execution is measured against. The returned total is the sum of
// per-query steps (queries occupy the machine back to back).
func (e *Engine) ExecuteSequential(qs []Query) ([]Answer, int, error) {
	if len(qs) == 0 {
		return nil, 0, fmt.Errorf("engine: empty query list")
	}
	answers := make([]Answer, len(qs))
	total := 0
	for i := range qs {
		answers[i] = e.runQuery(nil, qs[i], e.cfg.Procs, false)
		total += answers[i].Steps
	}
	return answers, total, nil
}

// Submit enqueues a query for the next Flush.
func (e *Engine) Submit(q Query) {
	e.mu.Lock()
	e.pending = append(e.pending, q)
	e.mu.Unlock()
}

// Pending returns the number of queued queries.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Flush drains the submission queue in batches of Config.BatchSize,
// returning all answers in submission order with one report per batch.
func (e *Engine) Flush() ([]Answer, []BatchReport, error) {
	e.mu.Lock()
	qs := e.pending
	e.pending = nil
	e.mu.Unlock()
	var answers []Answer
	var reports []BatchReport
	for lo := 0; lo < len(qs); lo += e.cfg.BatchSize {
		hi := lo + e.cfg.BatchSize
		if hi > len(qs) {
			hi = len(qs)
		}
		ans, rep, err := e.ExecuteBatch(qs[lo:hi])
		if err != nil {
			return answers, reports, err
		}
		answers = append(answers, ans...)
		reports = append(reports, rep)
	}
	return answers, reports, nil
}

// catalogPhases decomposes a catalog/planar search's step count by the
// Stats identity Steps = RootRounds + hop steps + SeqLevels (checked by
// the cost-model tests); zero phases are omitted so empty components don't
// clutter spans.
func catalogPhases(s core.Stats) map[string]int {
	hop := s.Steps - s.RootRounds - s.SeqLevels
	if hop < 0 {
		hop = 0
	}
	m := make(map[string]int, 3)
	if s.RootRounds > 0 {
		m["root-coop"] = s.RootRounds
	}
	if hop > 0 {
		m["hop-descent"] = hop
	}
	if s.SeqLevels > 0 {
		m["seq-tail"] = s.SeqLevels
	}
	return m
}

// spatialPhases decomposes a spatial location into the per-node planar
// discrimination rounds and the remaining descent steps.
func spatialPhases(s spatial.Stats) map[string]int {
	discrim := s.DiscrimRounds
	if discrim > s.Steps {
		discrim = s.Steps
	}
	m := make(map[string]int, 2)
	if discrim > 0 {
		m["discrim"] = discrim
	}
	if rest := s.Steps - discrim; rest > 0 {
		m["descent"] = rest
	}
	return m
}

// runQuery executes one query with processor share p. useCache gates the
// entry-point cache (the sequential baseline runs without it). A nil ctx
// selects the plain uncancellable search paths; a non-nil ctx is checked
// up front and threaded into each backend's context-aware variant.
func (e *Engine) runQuery(ctx context.Context, q Query, p int, useCache bool) (a Answer) {
	a = Answer{Query: q, P: p}
	// Per-query clock readings are paid only when a flight recorder wants
	// the wall time; the uninstrumented path stays free of time syscalls.
	if e.recorder != nil {
		wallStart := time.Now()
		defer func() { a.WallNS = time.Since(wallStart).Nanoseconds() }()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			a.Err = err
			return a
		}
	}
	switch q.Kind {
	case KindCatalog:
		e.runCatalog(ctx, &a, q, p, useCache)
	case KindPoint:
		if e.pl == nil {
			a.Err = fmt.Errorf("engine: no point-location backend configured")
			return a
		}
		var (
			region int
			stats  core.Stats
			err    error
		)
		if ctx != nil {
			region, stats, err = e.pl.LocateCoopContext(ctx, q.Point, p)
		} else {
			region, stats, err = e.pl.LocateCoop(q.Point, p)
		}
		a.Region, a.Steps, a.Rounds, a.Err = region, stats.Steps, stats.RootRounds, err
		if err == nil {
			a.PhaseSteps = catalogPhases(stats)
		}
	case KindSpatial:
		if e.sp == nil {
			a.Err = fmt.Errorf("engine: no spatial backend configured")
			return a
		}
		var (
			cell  int
			stats spatial.Stats
			err   error
		)
		if ctx != nil {
			cell, stats, err = e.sp.LocateCoopContext(ctx, q.SX, q.SY, q.SZ, p)
		} else {
			cell, stats, err = e.sp.LocateCoop(q.SX, q.SY, q.SZ, p)
		}
		a.Cell, a.Steps, a.Rounds, a.Err = cell, stats.Steps, stats.DiscrimRounds, err
		if err == nil {
			a.PhaseSteps = spatialPhases(stats)
		}
	default:
		a.Err = fmt.Errorf("engine: unknown query kind %d", q.Kind)
	}
	return a
}

// runCatalog executes a catalog query, consulting and filling the shard's
// entry cache. A non-nil ctx makes the cache-miss search cancellable; the
// cache-hit path runs uncancellable because the hint already skips the
// cooperative entry rounds the guard exists to bound.
func (e *Engine) runCatalog(ctx context.Context, a *Answer, q Query, p int, useCache bool) {
	if q.Shard < 0 || q.Shard >= len(e.shards) {
		a.Err = fmt.Errorf("engine: catalog shard %d out of range [0, %d)", q.Shard, len(e.shards))
		return
	}
	if len(q.Path) == 0 {
		a.Err = fmt.Errorf("engine: catalog query with empty path")
		return
	}
	be := e.shards[q.Shard]
	cache := e.caches[q.Shard]
	if useCache {
		gen := be.Generation()
		if pos, ok := cache.lookup(q.Path[0], q.Key, gen); ok {
			results, stats, used, err := be.SearchExplicitWithEntry(q.Key, q.Path, p, pos)
			a.Results, a.Steps, a.Rounds, a.Err = results, stats.Steps, stats.RootRounds, err
			if err == nil {
				a.PhaseSteps = catalogPhases(stats)
			}
			if used {
				a.CacheHit = true
				return
			}
			a.CacheStale = true
			// The hint failed validation (a flush raced between the
			// generation read and the search): the full entry search
			// already ran inside SearchExplicitWithEntry, so the answer
			// stands; just refresh the cached slot below.
			if err != nil {
				return
			}
			e.fillEntry(be, cache, q)
			return
		}
		if e.cfg.FingerCache {
			if finger, dist, ok := cache.nearest(q.Path[0], q.Key, gen); ok {
				// Exact miss with a nearby cached entry: gallop from the
				// finger instead of paying the cooperative root search.
				// Like the hit path this runs uncancellable — the gallop
				// already skips the rounds the context guard bounds.
				results, stats, used, err := be.SearchExplicitFromFinger(q.Key, q.Path, p, finger)
				a.Results, a.Steps, a.Rounds, a.Err = results, stats.Steps, stats.RootRounds, err
				if err == nil {
					a.PhaseSteps = catalogPhases(stats)
					e.fillEntry(be, cache, q)
				}
				if used {
					a.FingerHit = true
					a.FingerDist = int64(dist)
					cache.fingerHit()
				}
				return
			}
		}
	}
	var (
		results []cascade.Result
		stats   core.Stats
		err     error
	)
	if ctx != nil {
		results, stats, err = be.SearchExplicitContext(ctx, q.Key, q.Path, p)
	} else {
		results, stats, err = be.SearchExplicit(q.Key, q.Path, p)
	}
	a.Results, a.Steps, a.Rounds, a.Err = results, stats.Steps, stats.RootRounds, err
	if err == nil {
		a.PhaseSteps = catalogPhases(stats)
		if useCache {
			e.fillEntry(be, cache, q)
		}
	}
}

// fillEntry caches the entry interval resolved for q. Host-side: it redoes
// the O(log n) successor probe the search performed, which the PRAM cost
// model already charged.
func (e *Engine) fillEntry(be CatalogBackend, cache *entryCache, q Query) {
	gen := be.Generation()
	pos := be.EntryProbe(q.Path[0], q.Key)
	lo, hi, err := be.EntryInterval(q.Path[0], pos)
	if err != nil {
		return
	}
	cache.insert(q.Path[0], lo, hi, pos, gen)
}

// Metrics is a point-in-time snapshot of engine counters.
type Metrics struct {
	// Queries, Batches, Errors count since construction; StepsTotal sums
	// batch parallel times.
	Queries, Batches, Errors, StepsTotal uint64
	// Cache holds one snapshot per shard.
	Cache []CacheStats
	// Steals, Tasks, and Idle are pool counters.
	Steals, Tasks, Idle int64
}

// Metrics returns current counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	m := Metrics{Queries: e.queries, Batches: e.batches, Errors: e.errors, StepsTotal: e.steps}
	e.mu.Unlock()
	for _, c := range e.caches {
		m.Cache = append(m.Cache, c.statsSnapshot())
	}
	m.Steals = e.pool.Steals()
	m.Tasks = e.pool.Tasks()
	m.Idle = e.pool.Idle()
	return m
}

// CacheStatsFor returns shard i's cache snapshot.
func (e *Engine) CacheStatsFor(i int) CacheStats {
	if i < 0 || i >= len(e.caches) {
		return CacheStats{}
	}
	return e.caches[i].statsSnapshot()
}
