package engine

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// noSource hides the FlatSource method of a backend behind the bare
// CatalogBackend interface.
type noSource struct{ CatalogBackend }

func TestFlatConfigRejectsNonSource(t *testing.T) {
	fx := buildFixture(t, 600, 1<<4, 800)
	_, err := New(Config{Procs: 64, Flat: true},
		[]CatalogBackend{noSource{StaticShard{St: fx.static}}}, nil, nil)
	if err == nil {
		t.Fatal("Flat engine accepted a backend without FlatSource")
	}
}

// TestFlatEngineMatchesPointer runs identical batches through a pointer
// engine and a Flat engine over the same backends: every answer — results,
// steps, phase decomposition, cache behaviour — must agree, since the flat
// search replicates the cost model bit for bit.
func TestFlatEngineMatchesPointer(t *testing.T) {
	fx := buildFixture(t, 601, 1<<5, 2400)
	rng := seededRNG(t, 601)
	shards := func() []CatalogBackend {
		return []CatalogBackend{StaticShard{St: fx.static}, DynamicShard{D: fx.dyn}}
	}
	ptr, err := New(Config{Procs: 256}, shards(), fx.pl, fx.sp)
	if err != nil {
		t.Fatal(err)
	}
	flt, err := New(Config{Procs: 256, Flat: true}, shards(), fx.pl, fx.sp)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		qs := make([]Query, 1+rng.Intn(24))
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		wantAns, wantRep, err := ptr.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		gotAns, gotRep, err := flt.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		if gotRep != wantRep {
			t.Fatalf("round %d: report %+v, want %+v", round, gotRep, wantRep)
		}
		for i := range wantAns {
			w, g := wantAns[i], gotAns[i]
			if (g.Err == nil) != (w.Err == nil) {
				t.Fatalf("round %d query %d: err %v, want %v", round, i, g.Err, w.Err)
			}
			if g.P != w.P || g.Steps != w.Steps || g.Rounds != w.Rounds ||
				g.CacheHit != w.CacheHit || g.Region != w.Region || g.Cell != w.Cell {
				t.Fatalf("round %d query %d: answer %+v, want %+v", round, i, g, w)
			}
			if len(g.Results) != len(w.Results) {
				t.Fatalf("round %d query %d: %d results, want %d", round, i, len(g.Results), len(w.Results))
			}
			for j := range w.Results {
				if g.Results[j] != w.Results[j] {
					t.Fatalf("round %d query %d: result[%d] = %+v, want %+v",
						round, i, j, g.Results[j], w.Results[j])
				}
			}
		}
	}
}

// TestFlatShardCacheValidityAcrossFlush pins the per-shard entry-cache fix
// under the flat backend: cache fills resolve through the FlatShard, so a
// dynamic flush must both bump the generation (purging stale slots) and
// refreeze the flat layout before the next fill — a FlatShard that kept
// serving the old arrays would populate the new generation's cache with
// positions from the previous build. The test drives cache-friendly
// batches across repeated mutate+flush cycles and cross-checks every
// answer against the live pointer structure.
func TestFlatShardCacheValidityAcrossFlush(t *testing.T) {
	fx := buildFixture(t, 602, 1<<5, 2400)
	rng := seededRNG(t, 602)
	e, err := New(Config{Procs: 128, CacheSize: 64, Flat: true},
		[]CatalogBackend{DynamicShard{D: fx.dyn}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := e.shards[0].(*FlatShard)
	if !ok {
		t.Fatalf("flat engine serves %T, want *FlatShard", e.shards[0])
	}

	bt := fx.trees[1]
	// A narrow key band against a fixed leaf set keeps the entry cache hot.
	keys := make([]catalog.Key, 8)
	for i := range keys {
		keys[i] = catalog.Key(1000 + rng.Int63n(64))
	}
	runBatch := func(cycle int) {
		qs := make([]Query, 16)
		for i := range qs {
			qs[i] = CatalogQuery(0, keys[rng.Intn(len(keys))], randomPath(bt, rng))
		}
		ans, _, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for i, a := range ans {
			if a.Err != nil {
				t.Fatalf("cycle %d query %d: %v", cycle, i, a.Err)
			}
			if a.CacheHit {
				hits++
			}
			want, _, err := fx.dyn.Static().SearchExplicit(qs[i].Key, qs[i].Path, a.P)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if a.Results[j] != want[j] {
					t.Fatalf("cycle %d query %d: result[%d] = %+v, want %+v (stale flat layout?)",
						cycle, i, j, a.Results[j], want[j])
				}
			}
		}
		if cycle >= 0 && hits == 0 {
			// Warm batches against an unchanged generation must hit: the
			// whole point of the test is that hits resolve correctly.
			t.Fatalf("cycle %d: no cache hits; the validity check exercised nothing", cycle)
		}
	}

	gen := fx.dyn.Generation()
	frozen := fs.Refreezes()
	for cycle := 0; cycle < 4; cycle++ {
		runBatch(-1) // fill
		runBatch(cycle)
		// Mutate inside the hot key band so post-flush positions shift,
		// then flush to a new generation.
		for i := 0; i < 20; i++ {
			v := tree.NodeID(rng.Intn(bt.N()))
			// Globally unique keys inside/near the hot band, so inserts
			// never collide with pending or already-flushed entries.
			if err := fx.dyn.Insert(v, catalog.Key(1000+cycle*20+i), int32(cycle*100+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fx.dyn.Flush(); err != nil {
			t.Fatal(err)
		}
		if g := fx.dyn.Generation(); g == gen {
			t.Fatal("flush did not advance the generation")
		} else {
			gen = g
		}
		runBatch(-1)
		runBatch(cycle)
		if fr := fs.Refreezes(); fr <= frozen {
			t.Fatalf("cycle %d: flat shard never refroze after flush (refreezes %d)", cycle, fr)
		} else {
			frozen = fr
		}
	}
}

// TestNewFlatShardFrom covers the snapshot-sidecar preload path.
func TestNewFlatShardFrom(t *testing.T) {
	fx := buildFixture(t, 603, 1<<4, 900)
	inner := StaticShard{St: fx.static}
	f, err := flat.Freeze(fx.static)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFlatShardFrom(inner, f)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Refreezes() != 0 {
		t.Errorf("preloaded shard froze %d times, want 0", fs.Refreezes())
	}
	path := fx.trees[0].RootPath(tree.NodeID(fx.trees[0].N() - 1))
	got, gotStats, err := fs.SearchExplicit(42, path, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := fx.static.SearchExplicit(42, path, 16)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats || len(got) != len(want) {
		t.Fatalf("preloaded shard stats %+v, want %+v", gotStats, wantStats)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("preloaded shard result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Shape mismatch: a layout frozen from a smaller fixture.
	small := buildFixture(t, 604, 1<<3, 300)
	fSmall, err := flat.Freeze(small.static)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFlatShardFrom(inner, fSmall); err == nil {
		t.Error("preload accepted a shape-mismatched structure")
	}
	if _, err := NewFlatShardFrom(noSource{inner}, f); err == nil {
		t.Error("preload accepted a backend without FlatSource")
	}
	if _, err := NewFlatShardFrom(inner, nil); err == nil {
		t.Error("preload accepted a nil structure")
	}
}
