package engine

import (
	"testing"

	"fraccascade/internal/flat"
	"fraccascade/internal/spatial"
)

// TestFrozenBackendsInventory pins the unified frozen surface: a Flat
// engine exposes one FrozenBackend per catalog shard plus one for the
// spatial locator, in that order, each exporting a decodable blob of its
// declared kind.
func TestFrozenBackendsInventory(t *testing.T) {
	fx := buildFixture(t, 610, 1<<4, 900)
	shards := []CatalogBackend{StaticShard{St: fx.static}, DynamicShard{D: fx.dyn}}
	e, err := New(Config{Procs: 128, Flat: true}, shards, fx.pl, fx.sp)
	if err != nil {
		t.Fatal(err)
	}
	fbs := e.FrozenBackends()
	if len(fbs) != len(shards)+1 {
		t.Fatalf("%d frozen backends, want %d", len(fbs), len(shards)+1)
	}
	wantKinds := []uint32{flat.StoreKindCatalog, flat.StoreKindCatalog, flat.StoreKindSpatial}
	for i, fb := range fbs {
		if fb.FrozenKind() != wantKinds[i] {
			t.Fatalf("backend %d kind %d, want %d", i, fb.FrozenKind(), wantKinds[i])
		}
		blob, err := fb.FrozenBlob()
		if err != nil {
			t.Fatalf("backend %d blob: %v", i, err)
		}
		switch fb.FrozenKind() {
		case flat.StoreKindCatalog:
			if _, _, err := flat.OpenStructure(blob); err != nil {
				t.Fatalf("backend %d catalog blob undecodable: %v", i, err)
			}
		case flat.StoreKindSpatial:
			if _, _, err := spatial.OpenFrozen(blob); err != nil {
				t.Fatalf("backend %d spatial blob undecodable: %v", i, err)
			}
		}
		if fb.Refreezes() == 0 {
			t.Fatalf("backend %d reports 0 freezes after a non-preloaded build", i)
		}
	}

	// A pointer engine exposes none.
	ptr, err := New(Config{Procs: 128}, []CatalogBackend{StaticShard{St: fx.static}}, fx.pl, fx.sp)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ptr.FrozenBackends()); n != 0 {
		t.Fatalf("pointer engine exposes %d frozen backends", n)
	}
}

// TestFlatSpatialPreload pins the sidecar restore path for the spatial
// backend: a matching frozen layout is adopted without freezing, answers
// stay bit-identical, and a mismatched layout is rejected.
func TestFlatSpatialPreload(t *testing.T) {
	fx := buildFixture(t, 611, 1<<4, 900)
	f, err := fx.sp.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Procs: 128, Flat: true, FrozenSpatial: f},
		[]CatalogBackend{StaticShard{St: fx.static}}, fx.pl, fx.sp)
	if err != nil {
		t.Fatal(err)
	}
	fbs := e.FrozenBackends()
	sp := fbs[len(fbs)-1]
	if sp.FrozenKind() != flat.StoreKindSpatial || sp.Refreezes() != 0 {
		t.Fatalf("preloaded spatial backend: kind %d, %d freezes; want spatial kind, 0 freezes", sp.FrozenKind(), sp.Refreezes())
	}
	rng := seededRNG(t, 611)
	for i := 0; i < 50; i++ {
		x, y, z, _ := fx.cx.RandomInteriorPoint(rng)
		q := SpatialQuery(x, y, z)
		wantCell, wantStats, wantErr := fx.sp.LocateCoop(x, y, z, 128)
		ans, _, err := e.ExecuteBatch([]Query{q})
		if err != nil {
			t.Fatal(err)
		}
		if (ans[0].Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d err %v, want %v", i, ans[0].Err, wantErr)
		}
		if ans[0].Cell != wantCell || ans[0].Steps != wantStats.Steps {
			t.Fatalf("query %d: cell/steps (%d, %d), want (%d, %d)", i, ans[0].Cell, ans[0].Steps, wantCell, wantStats.Steps)
		}
	}

	// Mismatched preload: frozen layout from a different complex.
	other := buildFixture(t, 612, 1<<4, 900)
	wrong, err := other.sp.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if wrong.Cells() != fx.sp.Cells() {
		if _, err := New(Config{Procs: 128, Flat: true, FrozenSpatial: wrong},
			[]CatalogBackend{StaticShard{St: fx.static}}, fx.pl, fx.sp); err == nil {
			t.Fatal("mismatched frozen spatial layout accepted")
		}
	}
}
