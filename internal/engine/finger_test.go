package engine

import (
	"reflect"
	"testing"
)

// TestFingerCacheOracle pins Config.FingerCache end to end: on a
// key-local catalog workload with a deliberately tiny cache (so exact
// interval hits are rare but nearby fingers abound), every answer must
// equal the uncached backend oracle bit for bit, finger hits must
// actually occur, and the per-answer flag, per-batch report, and
// per-shard cache counters must agree — on both the pointer and the flat
// serving paths.
func TestFingerCacheOracle(t *testing.T) {
	fx := buildFixture(t, 21, 1<<5, 4000)
	for _, flatMode := range []bool{false, true} {
		e := fx.newEngine(t, Config{Procs: 4096, BatchSize: 16, CacheSize: 4, FingerCache: true, Flat: flatMode})
		rng := seededRNG(t, 22)
		qs := make([]Query, 400)
		for i := range qs {
			qs[i] = CatalogQuery(0, fx.clusteredKey(rng), randomPath(fx.trees[0], rng))
		}
		fingerHits := 0
		reportHits := 0
		for lo := 0; lo < len(qs); lo += 16 {
			ans, rep, err := e.ExecuteBatch(qs[lo : lo+16])
			if err != nil {
				t.Fatalf("flat=%v: %v", flatMode, err)
			}
			reportHits += rep.FingerHits
			for i, a := range ans {
				if a.Err != nil {
					t.Fatalf("flat=%v query %d: %v", flatMode, lo+i, a.Err)
				}
				want, _, err := fx.static.SearchExplicit(a.Query.Key, a.Query.Path, a.P)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Results, want) {
					t.Fatalf("flat=%v query %d (finger=%v): results differ from uncached oracle", flatMode, lo+i, a.FingerHit)
				}
				if a.FingerHit {
					fingerHits++
					if a.CacheHit {
						t.Fatalf("flat=%v query %d: FingerHit and CacheHit both set", flatMode, lo+i)
					}
				}
			}
		}
		if fingerHits == 0 {
			t.Fatalf("flat=%v: key-local workload produced no finger hits", flatMode)
		}
		if reportHits != fingerHits {
			t.Fatalf("flat=%v: batch reports count %d finger hits, answers %d", flatMode, reportHits, fingerHits)
		}
		if cs := e.CacheStatsFor(0); cs.FingerHits != uint64(fingerHits) {
			t.Fatalf("flat=%v: cache counter has %d finger hits, answers %d", flatMode, cs.FingerHits, fingerHits)
		}
	}
}

// TestFingerCacheOffByDefault guards the E20 baseline: with FingerCache
// unset, misses must run the plain search and never set the flag.
func TestFingerCacheOffByDefault(t *testing.T) {
	fx := buildFixture(t, 23, 1<<5, 2000)
	e := fx.newEngine(t, Config{Procs: 1024, BatchSize: 8, CacheSize: 4})
	rng := seededRNG(t, 24)
	for batch := 0; batch < 10; batch++ {
		qs := make([]Query, 8)
		for i := range qs {
			qs[i] = CatalogQuery(0, fx.clusteredKey(rng), randomPath(fx.trees[0], rng))
		}
		ans, rep, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FingerHits != 0 {
			t.Fatalf("FingerHits %d with the finger cache disabled", rep.FingerHits)
		}
		for i, a := range ans {
			if a.FingerHit {
				t.Fatalf("query %d flagged FingerHit with the finger cache disabled", i)
			}
		}
	}
	if cs := e.CacheStatsFor(0); cs.FingerHits != 0 {
		t.Fatalf("cache counter has %d finger hits with the finger cache disabled", cs.FingerHits)
	}
}
