package engine

import (
	"fmt"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// TestSharedPoolIntroducesNoConflicts executes whole cooperative searches
// as conflict-checked PRAM programs (core.SearchExplicitPRAM) as tasks of
// the shared work-stealing pool, with per-query CREW machines running their
// processors on goroutines. The machines' conflict detectors mechanically
// verify the claim of the batching design: sharing the host pool across
// queries introduces no concurrent memory access the single-query path did
// not already have — each query's program stays conflict-free, and its
// memory state and step count are identical to a solo (unpooled) run.
func TestSharedPoolIntroducesNoConflicts(t *testing.T) {
	rng := seededRNG(t, 61)
	bt, err := tree.NewBalancedBinary(32)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(bt, randomCatalogs(bt, 1200, 9600, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const b = 24
	const p = 64
	type job struct {
		y    catalog.Key
		path []tree.NodeID
	}
	jobs := make([]job, b)
	for i := range jobs {
		jobs[i] = job{y: catalog.Key(rng.Int63n(9600)), path: randomPath(bt, rng)}
	}
	run := func(pool *Pool) ([][]int64, []core.PRAMSearchReport, []error) {
		mems := make([][]int64, b)
		reps := make([]core.PRAMSearchReport, b)
		errs := make([]error, b)
		tasks := make([]func(), b)
		for i := range jobs {
			i := i
			tasks[i] = func() {
				m := pram.MustNew(pram.CREW, 1<<16)
				m.SetConcurrent(true)
				results, rep, err := st.SearchExplicitPRAM(m, jobs[i].y, jobs[i].path, p)
				if err == nil {
					want, oerr := st.Cascade().SearchPath(jobs[i].y, jobs[i].path)
					if oerr != nil {
						err = oerr
					} else {
						for k := range want {
							if results[k].Key != want[k].Key {
								err = fmt.Errorf("node %d: machine answer %d != oracle %d", jobs[i].path[k], results[k].Key, want[k].Key)
							}
						}
					}
				}
				mems[i] = m.LoadSlice(0, m.MemWords())
				reps[i] = rep
				errs[i] = err
			}
		}
		pool.Run(tasks)
		return mems, reps, errs
	}
	pooledMems, pooledReps, pooledErrs := run(NewPool(8))
	soloMems, soloReps, soloErrs := run(NewPool(1))
	for i := range jobs {
		if pooledErrs[i] != nil {
			t.Fatalf("query %d under the shared pool: %v", i, pooledErrs[i])
		}
		if soloErrs[i] != nil {
			t.Fatalf("query %d solo: %v", i, soloErrs[i])
		}
		if pooledReps[i] != soloReps[i] {
			t.Errorf("query %d: pooled report %+v differs from solo %+v", i, pooledReps[i], soloReps[i])
		}
		if len(pooledMems[i]) != len(soloMems[i]) {
			t.Fatalf("query %d: machine memory sizes differ (%d vs %d)", i, len(pooledMems[i]), len(soloMems[i]))
		}
		for a := range pooledMems[i] {
			if pooledMems[i][a] != soloMems[i][a] {
				t.Fatalf("query %d: memory word %d differs under the pool (%d vs %d)",
					i, a, pooledMems[i][a], soloMems[i][a])
			}
		}
	}
}

// TestPoolPreservesModelRejection pins the EREW side of the conflict
// discipline: the cooperative search declares itself CREW, and running it
// through the shared pool must preserve exactly the single-query model
// check — every pooled attempt on an EREW machine is rejected with the
// model error before any step executes, never converted into a concurrent
// access on a weaker machine.
func TestPoolPreservesModelRejection(t *testing.T) {
	rng := seededRNG(t, 62)
	bt, err := tree.NewBalancedBinary(16)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(bt, randomCatalogs(bt, 400, 3200, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	const b = 12
	errs := make([]error, b)
	steps := make([]int, b)
	tasks := make([]func(), b)
	for i := 0; i < b; i++ {
		i := i
		y := catalog.Key(rng.Int63n(3200))
		path := randomPath(bt, rng)
		tasks[i] = func() {
			m := pram.MustNew(pram.EREW, 1<<12)
			_, _, errs[i] = st.SearchExplicitPRAM(m, y, path, 16)
			steps[i] = m.Time()
		}
	}
	pool.Run(tasks)
	for i := 0; i < b; i++ {
		if errs[i] == nil {
			t.Fatalf("query %d: EREW machine accepted a CREW program", i)
		}
		if steps[i] != 0 {
			t.Errorf("query %d: EREW machine executed %d steps before rejection", i, steps[i])
		}
	}
}
