package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// FuzzBatchSearch drives the batched engine with fuzzer-chosen workload
// seed, batch size, processor budget, and query mix, replaying every answer
// against the sequential oracles — the fuzz companion of the
// oracle-differential harness, in the style of core.FuzzDegradedSearch.
func FuzzBatchSearch(f *testing.F) {
	f.Add(int64(1), uint8(8), uint16(256), uint8(0))
	f.Add(int64(2), uint8(1), uint16(1), uint8(77))
	f.Add(int64(3), uint8(64), uint16(4096), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, bRaw uint8, pRaw uint16, mix uint8) {
		fx := buildFixture(t, seed, 8, 200)
		procs := int(pRaw)%4096 + 1
		e := fx.newEngine(t, Config{Procs: procs, CacheSize: 16})
		rng := rand.New(rand.NewSource(seed ^ int64(mix)))
		b := int(bRaw)%48 + 1
		for round := 0; round < 3; round++ {
			qs := make([]Query, b)
			for i := range qs {
				qs[i] = fx.randomQuery(rng)
			}
			answers, rep, err := e.ExecuteBatch(qs)
			if err != nil {
				t.Fatalf("seed=%d b=%d procs=%d: %v", seed, b, procs, err)
			}
			if rep.Errors != 0 {
				t.Fatalf("seed=%d b=%d procs=%d: %d query errors", seed, b, procs, rep.Errors)
			}
			for i := range answers {
				fx.checkAnswer(t, fmt.Sprintf("seed=%d b=%d procs=%d round=%d query=%d", seed, b, procs, round, i), qs[i], answers[i])
			}
			fx.churnDynamic(t, rng)
		}
	})
}

// FuzzEntryCache interleaves clustered catalog queries on a dynamic shard
// with fuzzer-driven mutations and Flush invalidations, asserting no stale
// entry-point cache hit can ever surface: every answer is compared with the
// dynamic.Find oracle, which always reflects committed + pending state.
func FuzzEntryCache(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 0, 3, 0})
	f.Add(int64(9), []byte{3, 3, 3, 0, 0})
	f.Add(int64(42), []byte{0, 2, 0, 2, 3, 0, 1, 3, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		fx := buildFixture(t, seed, 8, 200)
		e := fx.newEngine(t, Config{Procs: 64, CacheSize: 8})
		rng := rand.New(rand.NewSource(seed))
		n := fx.trees[1].N()
		for step, op := range ops {
			switch op % 4 {
			case 0: // a small batch of clustered dynamic-shard queries
				qs := make([]Query, 4)
				for i := range qs {
					qs[i] = CatalogQuery(1, fx.clusteredKey(rng), randomPath(fx.trees[1], rng))
				}
				answers, _, err := e.ExecuteBatch(qs)
				if err != nil {
					t.Fatalf("seed=%d step=%d: %v", seed, step, err)
				}
				for i := range answers {
					fx.checkAnswer(t, fmt.Sprintf("seed=%d step=%d query=%d", seed, step, i), qs[i], answers[i])
				}
			case 1:
				_ = fx.dyn.Insert(tree.NodeID(rng.Intn(n)), catalog.Key(rng.Int63n(fx.bound)), int32(step))
			case 2:
				v := tree.NodeID(rng.Intn(n))
				if k, _ := fx.dyn.Find(v, catalog.Key(rng.Int63n(fx.bound))); k != catalog.PlusInf {
					_ = fx.dyn.Delete(v, k)
				}
			case 3:
				if err := fx.dyn.Flush(); err != nil {
					t.Fatalf("seed=%d step=%d flush: %v", seed, step, err)
				}
			}
		}
	})
}
