package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the shared work-stealing executor behind batch execution. Tasks
// are distributed round-robin across per-worker deques; each worker drains
// its own deque LIFO and, when empty, steals FIFO from the other deques, so
// a batch of heterogeneous queries (cheap cache hits next to deep spatial
// locations) keeps every worker busy until the batch is done.
//
// The pool's workers are host goroutines multiplexing the *simulated* PRAM
// processors: the paper-level resource is the processor budget P, which the
// engine splits across the queries of a batch (p = P/b each, the p-way cost
// model); the pool merely executes those per-query searches concurrently on
// whatever host parallelism is available. Simulated cost (Stats.Steps) is
// therefore independent of the worker count.
type Pool struct {
	workers int
	deques  []wsDeque
	steals  atomic.Int64
	tasks   atomic.Int64
	idle    atomic.Int64
}

// wsDeque is one worker's task queue. A mutex per deque keeps the stealing
// protocol trivially correct under -race; contention is negligible because
// query execution dwarfs queue operations.
type wsDeque struct {
	mu    sync.Mutex
	items []func()
}

func (d *wsDeque) push(t func()) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottom takes the most recently pushed task (owner side).
func (d *wsDeque) popBottom() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t, true
}

// stealTop takes the oldest task (thief side).
func (d *wsDeque) stealTop() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	t := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return t, true
}

// NewPool returns a pool with the given worker count (≤ 0 selects
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, deques: make([]wsDeque, workers)}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Steals returns the cumulative number of successful steals.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// Tasks returns the cumulative number of tasks executed.
func (p *Pool) Tasks() int64 { return p.tasks.Load() }

// Idle returns the cumulative number of empty steal sweeps: a worker found
// its own deque and every victim empty and went idle. The ratio
// idle/tasks indicates how starved the pool runs (high when batches are
// smaller than the worker count).
func (p *Pool) Idle() int64 { return p.idle.Load() }

// Run executes every task and blocks until all have finished. Tasks must
// not add further tasks; that invariant is what makes the workers' empty
// sweep a safe exit condition.
//
// Run may be called concurrently: the deques are shared, so a worker
// spawned by one call can execute tasks pushed by another. Completion
// tracking is therefore attached to each task, not to the worker that
// happens to run it — a batch's Run returns exactly when its own tasks are
// done, whoever ran them. Every Run pushes before spawning at least one
// worker, and workers only exit on a sweep that finds all deques empty, so
// each pushed task is claimed by some live worker.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for i, t := range tasks {
		t := t
		p.deques[i%p.workers].push(func() {
			defer wg.Done()
			t()
		})
	}
	active := p.workers
	if active > len(tasks) {
		active = len(tasks)
	}
	for w := 0; w < active; w++ {
		go func(w int) {
			for {
				t, ok := p.deques[w].popBottom()
				if !ok {
					t, ok = p.steal(w)
					if !ok {
						return
					}
				}
				t()
				p.tasks.Add(1)
			}
		}(w)
	}
	wg.Wait()
}

// steal scans the other deques once for a task.
func (p *Pool) steal(self int) (func(), bool) {
	for off := 1; off < p.workers; off++ {
		victim := (self + off) % p.workers
		if t, ok := p.deques[victim].stealTop(); ok {
			p.steals.Add(1)
			return t, true
		}
	}
	p.idle.Add(1)
	return nil, false
}
