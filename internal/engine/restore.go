package engine

import (
	"fmt"

	"fraccascade/internal/snapshot"
)

// BackendsFromStore adapts a decoded snapshot store into catalog backends,
// in shard order. It is the engine-side half of the crash-safe restore
// path: snapshot.Load validates the bytes, this maps the reconstructed
// structures onto the live serving interface, and New accepts the result
// exactly like freshly built shards.
func BackendsFromStore(store *snapshot.Store) ([]CatalogBackend, error) {
	if store == nil {
		return nil, fmt.Errorf("engine: nil snapshot store")
	}
	shards := make([]CatalogBackend, len(store.Shards))
	for i, sh := range store.Shards {
		switch sh.Kind {
		case snapshot.KindStatic:
			if sh.Static == nil {
				return nil, fmt.Errorf("engine: snapshot shard %d is static with no structure", i)
			}
			shards[i] = StaticShard{St: sh.Static}
		case snapshot.KindDynamic:
			if sh.Dynamic == nil {
				return nil, fmt.Errorf("engine: snapshot shard %d is dynamic with no structure", i)
			}
			shards[i] = DynamicShard{D: sh.Dynamic}
		default:
			return nil, fmt.Errorf("engine: snapshot shard %d has unknown kind %d", i, sh.Kind)
		}
	}
	return shards, nil
}
