package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/geom"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/spatial"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// randomCatalogs builds per-node random catalogs totalling roughly `total`
// native entries with keys below keyBound.
func randomCatalogs(t *tree.Tree, total int, keyBound int64, rng *rand.Rand) []catalog.Catalog {
	cats := make([]catalog.Catalog, t.N())
	per := total / t.N()
	if per < 1 {
		per = 1
	}
	for v := range cats {
		size := rng.Intn(2*per + 2)
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Int63n(keyBound))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	return cats
}

// seededRNG returns a deterministic rng for the given seed and logs the
// seed, so a randomized-test failure names the exact standalone replay
// (the seed-audit convention for every randomized test in this repo).
func seededRNG(tb testing.TB, seed int64) *rand.Rand {
	tb.Logf("seed %d", seed)
	return rand.New(rand.NewSource(seed))
}

// fixture bundles one of every backend kind: a static catalog shard, a
// dynamic catalog shard, a planar locator, and a spatial locator.
type fixture struct {
	trees  []*tree.Tree
	static *core.Structure
	dyn    *dynamic.Structure
	sub    *subdivision.Subdivision
	pl     *pointloc.Locator
	cx     *spatial.Complex
	sp     *spatial.Locator
	bound  int64
}

func buildFixture(tb testing.TB, seed int64, leaves, total int) *fixture {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	fx := &fixture{bound: int64(total) * 8}
	t0, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	t1, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	fx.trees = []*tree.Tree{t0, t1}
	fx.static, err = core.Build(t0, randomCatalogs(t0, total, fx.bound, rng), core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	fx.dyn, err = dynamic.New(t1, randomCatalogs(t1, total, fx.bound, rng), core.Config{}, 0)
	if err != nil {
		tb.Fatal(err)
	}
	fx.sub, err = subdivision.Generate(24, 12, rng)
	if err != nil {
		tb.Fatal(err)
	}
	fx.pl, err = pointloc.Build(fx.sub, core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	fx.cx, err = spatial.Generate(30, 4, rng)
	if err != nil {
		tb.Fatal(err)
	}
	fx.sp, err = spatial.NewLocator(fx.cx)
	if err != nil {
		tb.Fatal(err)
	}
	return fx
}

func (fx *fixture) newEngine(tb testing.TB, cfg Config) *Engine {
	tb.Helper()
	e, err := New(cfg, []CatalogBackend{StaticShard{St: fx.static}, DynamicShard{D: fx.dyn}}, fx.pl, fx.sp)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// randomPath returns a root path to a uniformly random node of t.
func randomPath(t *tree.Tree, rng *rand.Rand) []tree.NodeID {
	return t.RootPath(tree.NodeID(rng.Intn(t.N())))
}

// randomQuery draws one query of a random kind; catalog keys are clustered
// around a few centres so batches have key locality for the entry cache.
func (fx *fixture) randomQuery(rng *rand.Rand) Query {
	switch rng.Intn(4) {
	case 0:
		return CatalogQuery(0, fx.clusteredKey(rng), randomPath(fx.trees[0], rng))
	case 1:
		return CatalogQuery(1, fx.clusteredKey(rng), randomPath(fx.trees[1], rng))
	case 2:
		pt, _ := fx.sub.RandomInteriorPoint(rng)
		return PointQuery(pt)
	default:
		x, y, z, _ := fx.cx.RandomInteriorPoint(rng)
		return SpatialQuery(x, y, z)
	}
}

// clusteredKey draws keys from a handful of narrow bands (half the time) or
// uniformly (the other half).
func (fx *fixture) clusteredKey(rng *rand.Rand) catalog.Key {
	if rng.Intn(2) == 0 {
		centre := (fx.bound / 8) * int64(1+rng.Intn(7))
		return catalog.Key(centre + rng.Int63n(64) - 32)
	}
	return catalog.Key(rng.Int63n(fx.bound))
}

// checkAnswer verifies one answer against the sequential oracles.
func (fx *fixture) checkAnswer(tb testing.TB, label string, q Query, a Answer) {
	tb.Helper()
	if a.Err != nil {
		tb.Fatalf("%s: query %v failed: %v", label, q.Kind, a.Err)
	}
	switch q.Kind {
	case KindCatalog:
		if q.Shard == 0 {
			want, err := fx.static.Cascade().SearchPath(q.Key, q.Path)
			if err != nil {
				tb.Fatal(err)
			}
			for i := range want {
				if a.Results[i].Key != want[i].Key || a.Results[i].Payload != want[i].Payload {
					tb.Fatalf("%s: static shard node %d: got (%d,%d) want (%d,%d)",
						label, q.Path[i], a.Results[i].Key, a.Results[i].Payload, want[i].Key, want[i].Payload)
				}
			}
			return
		}
		for i, v := range q.Path {
			wantKey, wantPayload := fx.dyn.Find(v, q.Key)
			if a.Results[i].Key != wantKey || a.Results[i].Payload != wantPayload {
				tb.Fatalf("%s: dynamic shard node %d: got (%d,%d) want (%d,%d)",
					label, v, a.Results[i].Key, a.Results[i].Payload, wantKey, wantPayload)
			}
		}
	case KindPoint:
		want, err := fx.sub.LocateBrute(q.Point)
		if err != nil {
			tb.Fatal(err)
		}
		if a.Region != want {
			tb.Fatalf("%s: point %v: got region %d want %d", label, q.Point, a.Region, want)
		}
	case KindSpatial:
		want, err := fx.cx.LocateBrute(q.SX, q.SY, q.SZ)
		if err != nil {
			tb.Fatal(err)
		}
		if a.Cell != want {
			tb.Fatalf("%s: spatial (%d,%d,%d): got cell %d want %d", label, q.SX, q.SY, q.SZ, a.Cell, want)
		}
	}
}

func TestPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		pool := NewPool(workers)
		const n = 200
		var counts [n]atomic.Int32
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { counts[i].Add(1) }
		}
		pool.Run(tasks)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		if pool.Tasks() != n {
			t.Errorf("workers=%d: pool counted %d tasks, want %d", workers, pool.Tasks(), n)
		}
	}
}

func TestPoolStealsUnderSkew(t *testing.T) {
	pool := NewPool(4)
	// Worker 0's deque gets a long stall plus a pile of quick tasks (64
	// tasks round-robin over 4 deques: indices ≡ 0 mod 4 land on worker
	// 0); other workers drain fast and must steal worker 0's backlog.
	var mu sync.Mutex
	order := 0
	block := make(chan struct{})
	tasks := make([]func(), 64)
	for i := range tasks {
		if i == 0 {
			tasks[i] = func() { <-block }
			continue
		}
		tasks[i] = func() {
			mu.Lock()
			order++
			if order == 62 {
				close(block) // release the staller once the rest drained
			}
			mu.Unlock()
		}
	}
	pool.Run(tasks)
	if pool.Steals() == 0 {
		t.Errorf("no steals recorded under a skewed load")
	}
}

func TestEntryCacheBasics(t *testing.T) {
	c := newEntryCache(3, nil, 0)
	node := tree.NodeID(0)
	c.insert(node, 10, 20, 4, 0)
	if pos, ok := c.lookup(node, 15, 0); !ok || pos != 4 {
		t.Fatalf("lookup(15) = (%d, %v), want (4, true)", pos, ok)
	}
	if pos, ok := c.lookup(node, 20, 0); !ok || pos != 4 {
		t.Fatalf("lookup(20) = (%d, %v): hi is inclusive", pos, ok)
	}
	if _, ok := c.lookup(node, 10, 0); ok {
		t.Fatal("lookup(10) hit: lo must be exclusive")
	}
	if _, ok := c.lookup(node, 21, 0); ok {
		t.Fatal("lookup(21) hit outside interval")
	}
	// Fill to capacity and evict: slot (10,20] was most recently used via
	// the hits above; (30,40] inserted then never touched is the LRU.
	c.insert(node, 30, 40, 7, 0)
	c.insert(node, 50, 60, 9, 0)
	if _, ok := c.lookup(node, 15, 0); !ok {
		t.Fatal("refresh hit failed")
	}
	c.insert(node, 70, 80, 11, 0) // overflow: evicts (30,40]
	if _, ok := c.lookup(node, 35, 0); ok {
		t.Fatal("evicted slot still hit")
	}
	if s := c.statsSnapshot(); s.Evictions != 1 || s.Size != 3 {
		t.Fatalf("stats = %+v, want 1 eviction at size 3", s)
	}
	// Generation change purges everything.
	if _, ok := c.lookup(node, 55, 1); ok {
		t.Fatal("hit across a generation change")
	}
	if s := c.statsSnapshot(); s.Stale != 1 || s.Size != 0 {
		t.Fatalf("stats after purge = %+v, want Stale=1 Size=0", s)
	}
}

func TestEntryCacheMinKey(t *testing.T) {
	c := newEntryCache(4, nil, 0)
	c.insert(0, catalog.MinusInf, 100, 0, 0)
	if pos, ok := c.lookup(0, 5, 0); !ok || pos != 0 {
		t.Fatalf("lookup below first key = (%d, %v), want (0, true)", pos, ok)
	}
	if _, ok := c.lookup(0, catalog.MinusInf, 0); ok {
		t.Fatal("MinusInf itself must miss (lo is exclusive)")
	}
}

func TestBatchAnswersMatchOracles(t *testing.T) {
	fx := buildFixture(t, 7, 32, 1200)
	e := fx.newEngine(t, Config{Procs: 1024, BatchSize: 16})
	rng := seededRNG(t, 99)
	for batch := 0; batch < 30; batch++ {
		qs := make([]Query, 1+rng.Intn(24))
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		answers, rep, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("batch %d: %d errors", batch, rep.Errors)
		}
		for i := range answers {
			fx.checkAnswer(t, fmt.Sprintf("batch %d query %d", batch, i), qs[i], answers[i])
		}
	}
	m := e.Metrics()
	if m.Cache[0].Hits+m.Cache[1].Hits == 0 {
		t.Errorf("clustered workload produced no cache hits: %+v", m.Cache)
	}
}

func TestCacheHitSkipsEntryRounds(t *testing.T) {
	fx := buildFixture(t, 3, 64, 4000)
	// A small budget keeps the Step-1 entry search at several rounds, so a
	// cache hit (one verification step) is visibly cheaper.
	e := fx.newEngine(t, Config{Procs: 4})
	path := fx.trees[0].RootPath(tree.NodeID(fx.trees[0].N() - 1))
	q := CatalogQuery(0, 12345, path)
	first, _, err := e.ExecuteBatch([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	second, rep, err := e.ExecuteBatch([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].CacheHit || rep.CacheHits != 1 {
		t.Fatalf("repeat execution missed the cache (hit=%v, report=%+v)", second[0].CacheHit, rep)
	}
	if second[0].Steps >= first[0].Steps {
		t.Errorf("cache hit did not reduce steps: %d -> %d", first[0].Steps, second[0].Steps)
	}
	fx.checkAnswer(t, "cached", q, second[0])
}

func TestFlushInvalidatesEntryCache(t *testing.T) {
	fx := buildFixture(t, 11, 32, 1500)
	e := fx.newEngine(t, Config{Procs: 256})
	rng := seededRNG(t, 5)
	path := fx.trees[1].RootPath(tree.NodeID(fx.trees[1].N() - 1))
	y := catalog.Key(4000)
	q := CatalogQuery(1, y, path)
	if _, _, err := e.ExecuteBatch([]Query{q}); err != nil {
		t.Fatal(err)
	}
	ans, _, err := e.ExecuteBatch([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if !ans[0].CacheHit {
		t.Fatal("expected a warm cache before the flush")
	}
	// Mutate the root's catalog so the entry interval around y moves, then
	// flush: the generation bump must purge the cache, and the next answer
	// must reflect the new structure.
	gen := fx.dyn.Generation()
	root := fx.trees[1].Root()
	for i := 0; i < 3; i++ {
		// Duplicate-key errors are fine; at least one insert lands.
		_ = fx.dyn.Insert(root, y+catalog.Key(rng.Intn(50))+catalog.Key(i*1000), int32(i))
	}
	if err := fx.dyn.Flush(); err != nil {
		t.Fatal(err)
	}
	if fx.dyn.Generation() == gen {
		t.Fatal("Flush did not bump the generation")
	}
	ans, _, err = e.ExecuteBatch([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if ans[0].CacheHit {
		t.Fatal("stale entry cache hit across a flush")
	}
	fx.checkAnswer(t, "post-flush", q, ans[0])
	if s := e.CacheStatsFor(1); s.Stale == 0 {
		t.Errorf("cache never recorded the generation purge: %+v", s)
	}
}

func TestBatchedThroughputBeatsSequential(t *testing.T) {
	fx := buildFixture(t, 21, 64, 4000)
	e := fx.newEngine(t, Config{Procs: 4096})
	rng := seededRNG(t, 17)
	for _, b := range []int{8, 32, 64} {
		qs := make([]Query, b)
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		_, rep, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		_, seqSteps, err := e.ExecuteSequential(qs)
		if err != nil {
			t.Fatal(err)
		}
		batched := rep.Throughput()
		sequential := float64(b) / float64(seqSteps)
		if batched <= sequential {
			t.Errorf("b=%d: batched throughput %.3f q/step not above sequential %.3f", b, batched, sequential)
		}
	}
}

func TestSubmitFlushGroupsIntoBatches(t *testing.T) {
	fx := buildFixture(t, 31, 16, 600)
	e := fx.newEngine(t, Config{Procs: 128, BatchSize: 8})
	rng := seededRNG(t, 2)
	qs := make([]Query, 21)
	for i := range qs {
		qs[i] = fx.randomQuery(rng)
		e.Submit(qs[i])
	}
	if e.Pending() != 21 {
		t.Fatalf("pending = %d, want 21", e.Pending())
	}
	answers, reports, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 21 || len(reports) != 3 {
		t.Fatalf("flush returned %d answers in %d batches, want 21 in 3", len(answers), len(reports))
	}
	if reports[0].B != 8 || reports[1].B != 8 || reports[2].B != 5 {
		t.Fatalf("batch sizes %d/%d/%d, want 8/8/5", reports[0].B, reports[1].B, reports[2].B)
	}
	for i := range answers {
		fx.checkAnswer(t, fmt.Sprintf("flush answer %d", i), qs[i], answers[i])
	}
	if e.Pending() != 0 {
		t.Errorf("pending after flush = %d", e.Pending())
	}
}

func TestRoutingErrors(t *testing.T) {
	fx := buildFixture(t, 41, 16, 600)
	bare, err := New(Config{Procs: 64}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := []Query{
		CatalogQuery(0, 1, randomPath(fx.trees[0], rand.New(rand.NewSource(1)))),
		PointQuery(geom.Point{X: 1, Y: 1}),
		SpatialQuery(1, 1, 1),
	}
	answers, rep, err := bare.ExecuteBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 3 {
		t.Fatalf("report.Errors = %d, want 3", rep.Errors)
	}
	for i, a := range answers {
		if a.Err == nil {
			t.Errorf("query %d on an empty engine succeeded", i)
		}
	}
	if _, _, err := bare.ExecuteBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := New(Config{Procs: 0}, nil, nil, nil); err == nil {
		t.Error("zero processor budget accepted")
	}
}

func TestConcurrentBatchesOnSharedEngine(t *testing.T) {
	fx := buildFixture(t, 51, 32, 1200)
	e := fx.newEngine(t, Config{Procs: 512})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := seededRNG(t, int64(1000+g))
			for round := 0; round < 10; round++ {
				qs := make([]Query, 1+rng.Intn(12))
				for i := range qs {
					// Static shard + read-only locators: no dynamic
					// mutations, so concurrent batches are safe.
					switch rng.Intn(3) {
					case 0:
						qs[i] = CatalogQuery(0, fx.clusteredKey(rng), randomPath(fx.trees[0], rng))
					case 1:
						pt, _ := fx.sub.RandomInteriorPoint(rng)
						qs[i] = PointQuery(pt)
					default:
						x, y, z, _ := fx.cx.RandomInteriorPoint(rng)
						qs[i] = SpatialQuery(x, y, z)
					}
				}
				answers, rep, err := e.ExecuteBatch(qs)
				if err != nil {
					errs <- err
					return
				}
				if rep.Errors != 0 {
					errs <- fmt.Errorf("goroutine %d round %d: %d query errors", g, round, rep.Errors)
					return
				}
				for i := range answers {
					if answers[i].Err != nil {
						errs <- answers[i].Err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
