package engine

import (
	"context"
	"fmt"
	"sync"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// FlatSource is implemented by backends whose current static structure can
// be frozen into the flat layout. Both shipped backends qualify; a custom
// CatalogBackend must implement it to be wrapped by Config.Flat.
type FlatSource interface {
	// CurrentStructure returns the pointer structure backing the shard's
	// current generation.
	CurrentStructure() *core.Structure
}

// CurrentStructure implements FlatSource.
func (s StaticShard) CurrentStructure() *core.Structure { return s.St }

// CurrentStructure implements FlatSource.
func (s DynamicShard) CurrentStructure() *core.Structure { return s.D.Static() }

var _ FlatSource = StaticShard{}
var _ FlatSource = DynamicShard{}

// FlatShard serves catalog queries from the frozen flat layout of an inner
// backend. It is a drop-in CatalogBackend — answers and Stats are
// bit-identical to the inner shard's (the flat search replicates the cost
// model exactly) — but the hot path runs on the index-based arrays with
// zero allocations per level.
//
// The frozen layout is itself a generation-keyed cache of the inner
// structure: every method that touches catalog positions goes through
// current(), which refreezes when the inner generation moved (a dynamic
// Flush replaced the static build). This matters for the engine's entry
// cache: EntryProbe/EntryInterval fill cache slots tagged with the inner
// generation, so they must resolve against the matching frozen layout — a
// stale flat would hand out positions from the previous build under the
// new generation's tag, poisoning the cache (covered by the flat cache-
// validity tests).
type FlatShard struct {
	inner CatalogBackend
	src   FlatSource

	mu  sync.RWMutex
	f   *flat.Structure
	gen uint64

	refreezes uint64 // guarded by mu; freeze count since construction
	buildPar  int    // guarded by mu; freeze parallelism (0 = all cores)
}

// NewFlatShard wraps inner, freezing its current structure sequentially.
// inner must implement FlatSource.
func NewFlatShard(inner CatalogBackend) (*FlatShard, error) {
	return NewFlatShardParallel(inner, 1)
}

// NewFlatShardParallel is NewFlatShard with the initial freeze and every
// later refreeze fanned out over parallelism host workers (0 = all cores).
// The frozen layout is bit-identical for every value; only the freeze wall
// time changes.
func NewFlatShardParallel(inner CatalogBackend, parallelism int) (*FlatShard, error) {
	src, ok := inner.(FlatSource)
	if !ok {
		return nil, fmt.Errorf("engine: backend %T cannot serve flat (no FlatSource)", inner)
	}
	fs := &FlatShard{inner: inner, src: src, buildPar: parallelism}
	if _, err := fs.current(); err != nil {
		return nil, err
	}
	return fs, nil
}

// SetBuildParallelism changes the host parallelism used by later
// refreezes (0 = all cores). Safe for concurrent use.
func (fs *FlatShard) SetBuildParallelism(parallelism int) {
	fs.mu.Lock()
	fs.buildPar = parallelism
	fs.mu.Unlock()
}

// NewFlatShardFrom wraps inner around an already-decoded flat structure
// (a snapshot sidecar), skipping the initial freeze when the preloaded
// layout matches the inner structure's shape. A mismatched preload is
// rejected — the caller should fall back to NewFlatShard.
func NewFlatShardFrom(inner CatalogBackend, f *flat.Structure) (*FlatShard, error) {
	src, ok := inner.(FlatSource)
	if !ok {
		return nil, fmt.Errorf("engine: backend %T cannot serve flat (no FlatSource)", inner)
	}
	st := src.CurrentStructure()
	if f == nil {
		return nil, fmt.Errorf("engine: nil preloaded flat structure")
	}
	if f.NumNodes() != st.Tree().N() || f.Root() != st.Tree().Root() {
		return nil, fmt.Errorf("engine: preloaded flat structure shape mismatch (%d nodes root %d, want %d nodes root %d)",
			f.NumNodes(), f.Root(), st.Tree().N(), st.Tree().Root())
	}
	return &FlatShard{inner: inner, src: src, f: f, gen: inner.Generation(), buildPar: 1}, nil
}

// current returns the frozen layout for the inner backend's current
// generation, refreezing under the write lock if a flush moved it.
func (fs *FlatShard) current() (*flat.Structure, error) {
	gen := fs.inner.Generation()
	fs.mu.RLock()
	f := fs.f
	ok := f != nil && fs.gen == gen
	fs.mu.RUnlock()
	if ok {
		return f, nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Double-check: another goroutine may have refrozen while we waited,
	// and the generation may have moved again under it.
	gen = fs.inner.Generation()
	if fs.f != nil && fs.gen == gen {
		return fs.f, nil
	}
	f, err := flat.FreezeParallel(fs.src.CurrentStructure(), fs.buildPar)
	if err != nil {
		return nil, fmt.Errorf("engine: refreeze flat shard: %w", err)
	}
	fs.f = f
	fs.gen = gen
	fs.refreezes++
	return f, nil
}

// Refreezes reports how many times the shard froze the inner structure
// (initial freeze included unless preloaded), for tests and metrics.
func (fs *FlatShard) Refreezes() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.refreezes
}

// Flat returns the current frozen layout (refreezing if stale), for
// snapshot export.
func (fs *FlatShard) Flat() (*flat.Structure, error) { return fs.current() }

// SearchExplicit implements CatalogBackend on the flat layout.
func (fs *FlatShard) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	f, err := fs.current()
	if err != nil {
		return nil, core.Stats{}, err
	}
	return f.SearchExplicit(y, path, p)
}

// SearchExplicitContext implements CatalogBackend. The flat search runs in
// microseconds host-side, so cancellation is checked once up front rather
// than between simulated rounds; nil-error answers equal SearchExplicit.
func (fs *FlatShard) SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, core.Stats{}, err
		}
	}
	return fs.SearchExplicit(y, path, p)
}

// SearchExplicitWithEntry implements CatalogBackend.
func (fs *FlatShard) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error) {
	f, err := fs.current()
	if err != nil {
		return nil, core.Stats{}, false, err
	}
	return f.SearchExplicitWithEntry(y, path, p, entryPos)
}

// SearchExplicitFromFinger implements CatalogBackend.
func (fs *FlatShard) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error) {
	f, err := fs.current()
	if err != nil {
		return nil, core.Stats{}, false, err
	}
	return f.SearchExplicitFromFinger(y, path, p, finger)
}

// EntryProbe implements CatalogBackend. It resolves against the current
// generation's frozen layout (see the type comment; a freeze error
// degrades to the inner backend so cache fills never dereference a stale
// layout).
func (fs *FlatShard) EntryProbe(v tree.NodeID, y catalog.Key) int {
	f, err := fs.current()
	if err != nil {
		return fs.inner.EntryProbe(v, y)
	}
	return f.EntryProbe(v, y)
}

// EntryInterval implements CatalogBackend.
func (fs *FlatShard) EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error) {
	f, err := fs.current()
	if err != nil {
		return 0, 0, err
	}
	return f.EntryInterval(v, pos)
}

// Root implements CatalogBackend.
func (fs *FlatShard) Root() tree.NodeID { return fs.inner.Root() }

// Generation implements CatalogBackend, forwarding the inner generation so
// the engine's entry-cache invalidation keys match the layout served.
func (fs *FlatShard) Generation() uint64 { return fs.inner.Generation() }
