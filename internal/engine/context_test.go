package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"fraccascade/internal/snapshot"
)

// TestExecuteBatchContextMatchesPlain: with a live background context the
// context path must be answer-identical to ExecuteBatch — same results,
// steps, phase decomposition, and cache behaviour. Two engines over the
// same fixture isolate the entry caches.
func TestExecuteBatchContextMatchesPlain(t *testing.T) {
	fx := buildFixture(t, 71, 16, 600)
	plain := fx.newEngine(t, Config{Procs: 256})
	ctxEng := fx.newEngine(t, Config{Procs: 256})
	rng := seededRNG(t, 72)
	for batch := 0; batch < 4; batch++ {
		qs := make([]Query, 12)
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		want, wantRep, err := plain.ExecuteBatch(qs)
		if err != nil {
			t.Fatalf("plain batch: %v", err)
		}
		got, gotRep, err := ctxEng.ExecuteBatchContext(context.Background(), qs)
		if err != nil {
			t.Fatalf("context batch: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch %d: answers diverge between plain and context paths", batch)
		}
		if wantRep != gotRep {
			t.Fatalf("batch %d: reports diverge: %+v vs %+v", batch, wantRep, gotRep)
		}
	}
}

// TestExecuteBatchContextCanceled: a context canceled before the batch (the
// client-disconnect case) fails every query promptly with the context's
// error and counts them in the report — no hangs, no partial successes.
func TestExecuteBatchContextCanceled(t *testing.T) {
	fx := buildFixture(t, 73, 16, 600)
	e := fx.newEngine(t, Config{Procs: 256})
	rng := seededRNG(t, 74)
	qs := make([]Query, 10)
	for i := range qs {
		qs[i] = fx.randomQuery(rng)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	answers, rep, err := e.ExecuteBatchContext(ctx, qs)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled batch took %v", elapsed)
	}
	if rep.Errors != len(qs) {
		t.Fatalf("report errors = %d, want %d", rep.Errors, len(qs))
	}
	for i, a := range answers {
		if !errors.Is(a.Err, context.Canceled) {
			t.Fatalf("answer %d: err = %v, want context.Canceled", i, a.Err)
		}
	}
	// The engine stays healthy after a canceled batch.
	ok, okRep, err := e.ExecuteBatchContext(context.Background(), qs)
	if err != nil || okRep.Errors != 0 {
		t.Fatalf("post-cancel batch: err=%v, errors=%d", err, okRep.Errors)
	}
	for i := range ok {
		fx.checkAnswer(t, "post-cancel", qs[i], ok[i])
	}
}

// TestExecuteBatchContextDeadline: an expired deadline behaves like
// cancellation and reports context.DeadlineExceeded per query.
func TestExecuteBatchContextDeadline(t *testing.T) {
	fx := buildFixture(t, 75, 16, 600)
	e := fx.newEngine(t, Config{Procs: 256})
	rng := seededRNG(t, 76)
	qs := []Query{fx.randomQuery(rng), fx.randomQuery(rng)}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	answers, _, err := e.ExecuteBatchContext(ctx, qs)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	for i, a := range answers {
		if !errors.Is(a.Err, context.DeadlineExceeded) {
			t.Fatalf("answer %d: err = %v, want context.DeadlineExceeded", i, a.Err)
		}
	}
}

// TestBackendsFromStore: an engine over snapshot-restored backends answers
// exactly like the engine over the originally built ones.
func TestBackendsFromStore(t *testing.T) {
	fx := buildFixture(t, 77, 16, 600)
	store := &snapshot.Store{Generation: 3, Shards: []snapshot.Shard{
		{Kind: snapshot.KindStatic, Static: fx.static},
		{Kind: snapshot.KindDynamic, Dynamic: fx.dyn},
	}}
	data, err := snapshot.Encode(store)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored, err := BackendsFromStore(decoded)
	if err != nil {
		t.Fatalf("BackendsFromStore: %v", err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %d backends, want 2", len(restored))
	}
	orig := fx.newEngine(t, Config{Procs: 256, CacheSize: -1})
	fromSnap, err := New(Config{Procs: 256, CacheSize: -1}, restored, fx.pl, fx.sp)
	if err != nil {
		t.Fatalf("engine over restored backends: %v", err)
	}
	rng := seededRNG(t, 78)
	qs := make([]Query, 40)
	for i := range qs {
		qs[i] = fx.randomQuery(rng)
	}
	want, _, err := orig.ExecuteBatch(qs)
	if err != nil {
		t.Fatalf("original batch: %v", err)
	}
	got, _, err := fromSnap.ExecuteBatch(qs)
	if err != nil {
		t.Fatalf("restored batch: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored engine diverges from original")
	}
}

// TestBackendsFromStoreRejectsBadStores: nil stores and malformed shards
// fail construction instead of producing a half-wired engine.
func TestBackendsFromStoreRejectsBadStores(t *testing.T) {
	if _, err := BackendsFromStore(nil); err == nil {
		t.Fatalf("nil store accepted")
	}
	bad := []snapshot.Store{
		{Shards: []snapshot.Shard{{Kind: snapshot.KindStatic}}},
		{Shards: []snapshot.Shard{{Kind: snapshot.KindDynamic}}},
		{Shards: []snapshot.Shard{{Kind: snapshot.Kind(9)}}},
	}
	for i := range bad {
		if _, err := BackendsFromStore(&bad[i]); err == nil {
			t.Fatalf("case %d: malformed shard accepted", i)
		}
	}
}
