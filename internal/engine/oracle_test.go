package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// TestOracleDifferential1000Batches is the oracle-differential harness: it
// replays every answer of 1000 randomized heterogeneous batches against the
// sequential brute-force oracles (cascade.SearchPath for the static catalog
// shard, dynamic.Find for the dynamic shard, subdivision.LocateBrute for
// planar point location, Complex.LocateBrute for spatial location). Between
// batches it churns the dynamic shard — inserts, deletes, and explicit
// flushes — so cache invalidation across generations is exercised under the
// same differential check. Each case derives its own seed from the base
// seed; failures print it so any divergence replays standalone.
func TestOracleDifferential1000Batches(t *testing.T) {
	const baseSeed int64 = 20260806
	t.Logf("oracle-differential base seed %d", baseSeed)
	fx := buildFixture(t, baseSeed, 16, 700)
	e := fx.newEngine(t, Config{Procs: 2048, BatchSize: 16, CacheSize: 64})
	churn := rand.New(rand.NewSource(baseSeed ^ 0x5eed))

	batches := 1000
	if testing.Short() {
		batches = 100
	}
	for c := 0; c < batches; c++ {
		caseSeed := baseSeed + int64(c)
		rng := rand.New(rand.NewSource(caseSeed))
		qs := make([]Query, 1+rng.Intn(24))
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		answers, rep, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatalf("case seed %d: %v", caseSeed, err)
		}
		if rep.Errors != 0 {
			t.Fatalf("case seed %d: %d query errors", caseSeed, rep.Errors)
		}
		for i := range answers {
			fx.checkAnswer(t, fmt.Sprintf("case seed %d query %d", caseSeed, i), qs[i], answers[i])
		}
		fx.churnDynamic(t, churn)
	}
	m := e.Metrics()
	t.Logf("served %d queries in %d batches; cache: static %+v dynamic %+v; pool steals %d",
		m.Queries, m.Batches, m.Cache[0], m.Cache[1], m.Steals)
	if m.Cache[0].Hits == 0 {
		t.Errorf("static shard cache never hit across %d batches", batches)
	}
	if m.Cache[1].Stale == 0 {
		t.Errorf("dynamic shard cache never saw a generation purge despite churn")
	}
}

// churnDynamic applies a small random mutation burst to the dynamic shard:
// inserts, oracle-guided deletes, and occasionally an explicit flush.
func (fx *fixture) churnDynamic(tb testing.TB, rng *rand.Rand) {
	tb.Helper()
	n := fx.trees[1].N()
	for op := 0; op < 3; op++ {
		v := tree.NodeID(rng.Intn(n))
		switch rng.Intn(5) {
		case 0, 1:
			// Duplicate keys are rejected by Insert; that is fine here.
			_ = fx.dyn.Insert(v, catalog.Key(rng.Int63n(fx.bound)), int32(rng.Intn(1000)))
		case 2:
			if k, _ := fx.dyn.Find(v, catalog.Key(rng.Int63n(fx.bound))); k != catalog.PlusInf {
				if err := fx.dyn.Delete(v, k); err != nil {
					tb.Fatalf("delete of found key %d at node %d: %v", k, v, err)
				}
			}
		case 3:
			if rng.Intn(4) == 0 {
				if err := fx.dyn.Flush(); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
}
