package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fraccascade/internal/obs"
)

// TestObsCountersMatchEngineGroundTruth runs concurrent batches on one
// instrumented engine and checks that the registry agrees with the
// engine's own accounting (the acceptance criterion: metrics vs ground
// truth). Run under -race via `make race` / the CI race job.
func TestObsCountersMatchEngineGroundTruth(t *testing.T) {
	fx := buildFixture(t, 77, 1<<4, 1500)
	reg := obs.NewRegistry()
	ring := obs.NewRing(4096)
	e := fx.newEngine(t, Config{Procs: 1024, Obs: reg, Tracer: ring})

	const goroutines, batchesPer, batchSize = 4, 6, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalSteps, totalErrs uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := seededRNG(t, int64(1000+g))
			for b := 0; b < batchesPer; b++ {
				qs := make([]Query, batchSize)
				for i := range qs {
					qs[i] = fx.randomQuery(rng)
				}
				_, rep, err := e.ExecuteBatch(qs)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				totalSteps += uint64(rep.Steps)
				totalErrs += uint64(rep.Errors)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	const wantQueries = goroutines * batchesPer * batchSize
	m := e.Metrics()
	snap := reg.Snapshot()

	if m.Queries != wantQueries {
		t.Fatalf("engine.Metrics().Queries = %d, want %d", m.Queries, wantQueries)
	}
	if got := snap.Counters["engine.queries"]; got != int64(m.Queries) {
		t.Fatalf("engine.queries metric = %d, ground truth %d", got, m.Queries)
	}
	if got := snap.Counters["engine.batches"]; got != int64(m.Batches) {
		t.Fatalf("engine.batches metric = %d, ground truth %d", got, m.Batches)
	}
	if got := snap.Counters["engine.errors"]; got != int64(totalErrs) || m.Errors != totalErrs {
		t.Fatalf("errors: metric %d, Metrics %d, reports %d", got, m.Errors, totalErrs)
	}

	// The batch-steps histogram sums exactly the per-batch parallel times —
	// the oracle step counts accumulated from the reports and mirrored in
	// Metrics().StepsTotal.
	h := snap.Histograms["engine.batch.steps"]
	if h.Count != int64(m.Batches) || h.Sum != int64(totalSteps) || uint64(h.Sum) != m.StepsTotal {
		t.Fatalf("engine.batch.steps: count=%d sum=%d, want count=%d sum=%d (StepsTotal=%d)",
			h.Count, h.Sum, m.Batches, totalSteps, m.StepsTotal)
	}

	// Per-kind counters partition the query count.
	var kinds int64
	for _, k := range []string{"engine.queries.catalog", "engine.queries.point", "engine.queries.spatial"} {
		kinds += snap.Counters[k]
	}
	if kinds != wantQueries {
		t.Fatalf("per-kind counters sum to %d, want %d", kinds, wantQueries)
	}

	// Per-shard cache mirrors equal the caches' own CacheStats.
	for i := 0; i < e.NumShards(); i++ {
		cs := e.CacheStatsFor(i)
		prefix := fmt.Sprintf("engine.shard.%d.cache.", i)
		hits := snap.Counters[prefix+"hits"]
		misses := snap.Counters[prefix+"misses"]
		if hits != int64(cs.Hits) || misses != int64(cs.Misses) {
			t.Fatalf("shard %d cache mirror: metric %d/%d, CacheStats %d/%d",
				i, hits, misses, cs.Hits, cs.Misses)
		}
	}

	// Pool pull-gauges read the pool's own atomics.
	if got := snap.Funcs["engine.pool.tasks"]; got != m.Tasks {
		t.Fatalf("engine.pool.tasks = %d, want %d", got, m.Tasks)
	}
	if got := snap.Funcs["engine.pool.steals"]; got != m.Steals {
		t.Fatalf("engine.pool.steals = %d, want %d", got, m.Steals)
	}

	// One query span (Parent == 0) per query, plus per-phase children; all
	// step ranges are internally consistent.
	var querySpans int64
	for _, s := range ring.Spans() {
		if s.Parent == 0 {
			querySpans++
		} else if s.Phase == "" {
			t.Fatalf("child span %d lacks a phase label: %+v", s.ID, s)
		}
		if s.StepHi-s.StepLo != uint64(s.Steps) {
			t.Fatalf("span %d: step range [%d,%d) inconsistent with Steps=%d", s.ID, s.StepLo, s.StepHi, s.Steps)
		}
		if s.Kind == "" || s.P < 1 {
			t.Fatalf("span %d: missing kind/p: %+v", s.ID, s)
		}
	}
	if querySpans != int64(wantQueries) {
		t.Fatalf("query spans emitted = %d, want %d", querySpans, wantQueries)
	}

	// Per-phase step counters partition the summed per-query step counts
	// (each query's phase decomposition sums to its Steps).
	var phaseSum, answerSteps int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "engine.phase.") && strings.HasSuffix(name, ".steps") {
			phaseSum += v
		}
	}
	for _, s := range ring.Spans() {
		if s.Parent == 0 && s.Err == "" {
			answerSteps += int64(s.Steps)
		}
	}
	if phaseSum != answerSteps {
		t.Fatalf("engine.phase.*.steps sum to %d, successful query steps sum to %d", phaseSum, answerSteps)
	}
}

// TestObsDisabledStepInvariance pins the zero-perturbation guarantee: the
// same query stream on an instrumented and an uninstrumented engine yields
// bit-identical simulated costs and answers (single-worker pools make the
// cache fill order deterministic so the comparison is exact).
func TestObsDisabledStepInvariance(t *testing.T) {
	fx := buildFixture(t, 42, 1<<4, 1500)
	plain := fx.newEngine(t, Config{Procs: 2048, Workers: 1})
	observed := fx.newEngine(t, Config{Procs: 2048, Workers: 1,
		Obs: obs.NewRegistry(), Tracer: obs.NewRing(1024)})

	rng := seededRNG(t, 7)
	for round := 0; round < 8; round++ {
		qs := make([]Query, 24)
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		ap, rp, err := plain.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		ao, ro, err := observed.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Steps != ro.Steps || rp.CacheHits != ro.CacheHits || rp.Errors != ro.Errors {
			t.Fatalf("round %d: reports diverge with obs enabled: %+v vs %+v", round, rp, ro)
		}
		for i := range ap {
			if ap[i].Steps != ao[i].Steps || ap[i].Rounds != ao[i].Rounds || ap[i].CacheHit != ao[i].CacheHit {
				t.Fatalf("round %d query %d: cost diverges with obs enabled: steps %d/%d rounds %d/%d hit %v/%v",
					round, i, ap[i].Steps, ao[i].Steps, ap[i].Rounds, ao[i].Rounds, ap[i].CacheHit, ao[i].CacheHit)
			}
		}
	}
}

// TestSpanStepClockAbutsAcrossBatches: with batches executed sequentially,
// consecutive batches occupy abutting windows of the engine's cumulative
// step clock.
func TestSpanStepClockAbutsAcrossBatches(t *testing.T) {
	fx := buildFixture(t, 9, 1<<4, 1200)
	ring := obs.NewRing(1024)
	e := fx.newEngine(t, Config{Procs: 512, Obs: obs.NewRegistry(), Tracer: ring})

	rng := seededRNG(t, 3)
	var clock uint64
	for round := 0; round < 5; round++ {
		qs := make([]Query, 8)
		for i := range qs {
			qs[i] = fx.randomQuery(rng)
		}
		_, rep, err := e.ExecuteBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		var batchSpans, children []obs.Span
		for _, s := range ring.Spans() {
			if s.Parent == 0 {
				batchSpans = append(batchSpans, s)
			} else {
				children = append(children, s)
			}
		}
		batchSpans = batchSpans[len(batchSpans)-len(qs):]
		var maxHi uint64
		for _, s := range batchSpans {
			if s.StepLo != clock {
				t.Fatalf("round %d: span StepLo = %d, want batch base %d", round, s.StepLo, clock)
			}
			if s.StepHi > maxHi {
				maxHi = s.StepHi
			}
			// Phase children partition the parent's window exactly.
			off := s.StepLo
			var phased int
			for _, c := range children {
				if c.Parent != s.ID {
					continue
				}
				if c.StepLo != off {
					t.Fatalf("round %d: child %q StepLo = %d, want %d", round, c.Phase, c.StepLo, off)
				}
				if c.Phase == "" {
					t.Fatalf("round %d: child of span %d has empty phase", round, s.ID)
				}
				off = c.StepHi
				phased += c.Steps
			}
			if s.Err == "" && phased != s.Steps {
				t.Fatalf("round %d: phase children sum to %d steps, parent has %d", round, phased, s.Steps)
			}
		}
		if maxHi != clock+uint64(rep.Steps) {
			t.Fatalf("round %d: widest span ends at %d, want %d", round, maxHi, clock+uint64(rep.Steps))
		}
		clock += uint64(rep.Steps)
	}
}
