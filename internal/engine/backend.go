package engine

import (
	"context"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/tree"
)

// CatalogBackend is one shard of the catalog graph: an independently built
// cooperative search structure (static or dynamic) serving the iterative
// catalog-graph queries routed to it. Shards share nothing — no tree, no
// catalogs, no cache — so the engine executes their batches concurrently on
// the pool without any cross-shard coordination.
type CatalogBackend interface {
	// SearchExplicit is the Theorem 1 cooperative search along path with p
	// processors.
	SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error)
	// SearchExplicitContext is SearchExplicit honouring cancellation and
	// deadlines: it checks ctx between simulated rounds and returns the
	// context's error with partial stats once it fires. Answers on the
	// nil-error path are identical to SearchExplicit.
	SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error)
	// SearchExplicitWithEntry seeds the search with a cached entry
	// position; used reports whether the hint validated and the Step-1
	// cooperative search was skipped.
	SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error)
	// SearchExplicitFromFinger enters the search by galloping from a
	// nearby root-catalog position (a finger) instead of the Step-1
	// cooperative search, spending O(log d) probes for key-distance d;
	// used reports whether the finger was in range and seeded the gallop.
	// Answers are always identical to SearchExplicit.
	SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error)
	// EntryProbe returns Aug(v).Succ(y): the entry position a Step-1
	// search at node v resolves for key y. Host-side, used to fill the
	// entry cache after a miss.
	EntryProbe(v tree.NodeID, y catalog.Key) int
	// EntryInterval returns the (lo, hi] key interval sharing entry
	// position pos at node v (see core.EntryInterval).
	EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error)
	// Root returns the shard tree's root (every query path starts there).
	Root() tree.NodeID
	// Generation identifies the backend's current static structure; it
	// changes whenever cached entry positions may have gone stale (for
	// dynamic backends, on every successful Flush). Static backends
	// return a constant.
	Generation() uint64
}

// StaticShard adapts a static core.Structure as a CatalogBackend. The
// structure is immutable, so the generation is constant and cached entry
// positions never go stale.
type StaticShard struct {
	St *core.Structure
}

// SearchExplicit implements CatalogBackend.
func (s StaticShard) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	return s.St.SearchExplicit(y, path, p)
}

// SearchExplicitContext implements CatalogBackend.
func (s StaticShard) SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	return s.St.SearchExplicitContext(ctx, y, path, p)
}

// SearchExplicitWithEntry implements CatalogBackend.
func (s StaticShard) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error) {
	return s.St.SearchExplicitWithEntry(y, path, p, entryPos)
}

// SearchExplicitFromFinger implements CatalogBackend.
func (s StaticShard) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error) {
	return s.St.SearchExplicitFromFinger(y, path, p, finger)
}

// EntryProbe implements CatalogBackend.
func (s StaticShard) EntryProbe(v tree.NodeID, y catalog.Key) int {
	return s.St.Cascade().Aug(v).Succ(y)
}

// EntryInterval implements CatalogBackend.
func (s StaticShard) EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error) {
	return s.St.EntryInterval(v, pos)
}

// Root implements CatalogBackend.
func (s StaticShard) Root() tree.NodeID { return s.St.Tree().Root() }

// Generation implements CatalogBackend: static structures never change.
func (s StaticShard) Generation() uint64 { return 0 }

// DynamicShard adapts a dynamic.Structure as a CatalogBackend. Entry
// positions refer to the structure's current static build, so the
// generation tracks dynamic.Generation(): every successful Flush purges the
// shard's entry cache. Mutations (Insert/Delete/Flush) must not run
// concurrently with engine batches — dynamic.Structure is single-writer,
// like the underlying package.
type DynamicShard struct {
	D *dynamic.Structure
}

// SearchExplicit implements CatalogBackend.
func (s DynamicShard) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	return s.D.SearchExplicit(y, path, p)
}

// SearchExplicitContext implements CatalogBackend.
func (s DynamicShard) SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	return s.D.SearchExplicitContext(ctx, y, path, p)
}

// SearchExplicitWithEntry implements CatalogBackend.
func (s DynamicShard) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error) {
	return s.D.SearchExplicitWithEntry(y, path, p, entryPos)
}

// SearchExplicitFromFinger implements CatalogBackend.
func (s DynamicShard) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error) {
	return s.D.SearchExplicitFromFinger(y, path, p, finger)
}

// EntryProbe implements CatalogBackend.
func (s DynamicShard) EntryProbe(v tree.NodeID, y catalog.Key) int {
	return s.D.Static().Cascade().Aug(v).Succ(y)
}

// EntryInterval implements CatalogBackend.
func (s DynamicShard) EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error) {
	return s.D.Static().EntryInterval(v, pos)
}

// Root implements CatalogBackend.
func (s DynamicShard) Root() tree.NodeID { return s.D.Static().Tree().Root() }

// Generation implements CatalogBackend.
func (s DynamicShard) Generation() uint64 { return s.D.Generation() }
