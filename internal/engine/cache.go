package engine

import (
	"fmt"
	"sort"
	"sync"

	"fraccascade/internal/catalog"
	"fraccascade/internal/obs"
	"fraccascade/internal/tree"
)

// entryCache is one shard's LRU entry-point cache. Each cached slot records
// that every query key in the half-open interval (lo, hi] enters the
// cascade at position pos of the entry node's augmented catalog — hi is the
// catalog key at pos and lo its predecessor, so the intervals of one node
// are disjoint and a hit reproduces exactly what the Step-1 cooperative
// binary search would compute. A hit therefore lets the search skip the
// top-of-skeleton entry rounds and pay a single verification step.
//
// Slots are keyed by the query-path prefix (the entry node, i.e. path[0])
// and looked up by key with a binary search over the node's interval list.
// Eviction is least-recently-used across the whole shard. Every slot also
// carries the backend generation observed when it was filled; a lookup
// under a newer generation purges the cache wholesale (the backend's static
// structure was replaced by dynamic.Flush, so every cached position is
// potentially stale). Correctness never rests on this: the search
// re-validates the hinted position against the live catalog in O(1) and
// falls back to the full entry search if it fails — the generation check
// exists so stale hits cost a purge, not a useless validation per query.
type entryCache struct {
	mu      sync.Mutex
	cap     int
	gen     uint64
	clock   uint64
	size    int
	perNode map[tree.NodeID][]entrySlot

	hits, misses, stale, evictions, fingerHits uint64

	// obs mirrors (nil-safe no-ops when no registry is attached): the
	// struct counters above stay the CacheStats ground truth; these export
	// the same increments under engine.shard.<i>.cache.* names.
	obsHits, obsMisses, obsStale, obsEvictions, obsFingerHits *obs.Counter
}

// entrySlot caches one resolved entry interval (lo, hi] → pos.
type entrySlot struct {
	lo, hi  catalog.Key
	pos     int
	lastUse uint64
}

// CacheStats is a point-in-time snapshot of one shard's cache counters.
type CacheStats struct {
	// Hits and Misses count lookups; Stale counts wholesale purges caused
	// by a generation change; Evictions counts LRU evictions.
	Hits, Misses, Stale, Evictions uint64
	// FingerHits counts exact misses that were instead served by galloping
	// from a nearby cached entry (distance-sensitive finger search). A
	// finger hit is also counted as a Miss — it is the miss path made
	// cheap, not a cache hit.
	FingerHits uint64
	// Size is the current number of cached entry intervals.
	Size int
}

// HitRate returns Hits/(Hits+Misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// newEntryCache builds shard's cache. With a non-nil registry the counters
// are mirrored as metrics and the live size exported as a func gauge.
func newEntryCache(capacity int, r *obs.Registry, shard int) *entryCache {
	c := &entryCache{cap: capacity, perNode: make(map[tree.NodeID][]entrySlot)}
	if r != nil {
		prefix := fmt.Sprintf("engine.shard.%d.cache.", shard)
		c.obsHits = r.Counter(prefix + "hits")
		c.obsMisses = r.Counter(prefix + "misses")
		c.obsStale = r.Counter(prefix + "stale_purges")
		c.obsEvictions = r.Counter(prefix + "evictions")
		c.obsFingerHits = r.Counter(prefix + "finger_hits")
		r.RegisterFunc(prefix+"size", func() int64 { return int64(c.statsSnapshot().Size) })
	}
	return c
}

// syncGen purges everything if the backend generation moved. Callers hold mu.
func (c *entryCache) syncGen(gen uint64) {
	if gen == c.gen {
		return
	}
	if c.size > 0 {
		c.perNode = make(map[tree.NodeID][]entrySlot)
		c.size = 0
	}
	c.stale++
	c.obsStale.Inc()
	c.gen = gen
}

// lookup returns the cached entry position for (node, y) under the given
// backend generation.
func (c *entryCache) lookup(node tree.NodeID, y catalog.Key, gen uint64) (int, bool) {
	if c == nil || c.cap <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGen(gen)
	slots := c.perNode[node]
	i := sort.Search(len(slots), func(i int) bool { return slots[i].hi >= y })
	if i < len(slots) && slots[i].lo < y {
		c.clock++
		slots[i].lastUse = c.clock
		c.hits++
		c.obsHits.Inc()
		return slots[i].pos, true
	}
	c.misses++
	c.obsMisses.Inc()
	return 0, false
}

// nearest returns the cached slot position whose interval endpoint is
// key-closest to y at node, as a finger for the gallop entry after an
// exact lookup miss, along with the key distance d = |y − endpoint| (the
// quantity the finger gallop's O(log d) bound is sensitive to — the
// flight recorder retains it so live traffic can confirm the bound). It
// never counts as a hit or miss — the preceding lookup already counted
// the miss — and touches no LRU state: the finger only seeds a gallop, it
// is not an answer.
func (c *entryCache) nearest(node tree.NodeID, y catalog.Key, gen uint64) (pos int, dist catalog.Key, ok bool) {
	if c == nil || c.cap <= 0 {
		return 0, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGen(gen)
	slots := c.perNode[node]
	if len(slots) == 0 {
		return 0, 0, false
	}
	i := sort.Search(len(slots), func(i int) bool { return slots[i].hi >= y })
	switch {
	case i == len(slots):
		return slots[i-1].pos, y - slots[i-1].hi, true
	case i == 0:
		return slots[0].pos, slots[0].hi - y, true
	}
	if y-slots[i-1].hi <= slots[i].hi-y {
		return slots[i-1].pos, y - slots[i-1].hi, true
	}
	return slots[i].pos, slots[i].hi - y, true
}

// fingerHit records a miss that was served through the finger gallop.
func (c *entryCache) fingerHit() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.fingerHits++
	c.mu.Unlock()
	c.obsFingerHits.Inc()
}

// insert caches (lo, hi] → pos for node under the given generation,
// evicting the least-recently-used slot of the shard on overflow.
func (c *entryCache) insert(node tree.NodeID, lo, hi catalog.Key, pos int, gen uint64) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGen(gen)
	slots := c.perNode[node]
	i := sort.Search(len(slots), func(i int) bool { return slots[i].hi >= hi })
	c.clock++
	if i < len(slots) && slots[i].hi == hi {
		slots[i] = entrySlot{lo: lo, hi: hi, pos: pos, lastUse: c.clock}
		return
	}
	slots = append(slots, entrySlot{})
	copy(slots[i+1:], slots[i:])
	slots[i] = entrySlot{lo: lo, hi: hi, pos: pos, lastUse: c.clock}
	c.perNode[node] = slots
	c.size++
	if c.size > c.cap {
		c.evictLRU()
	}
}

// evictLRU removes the globally least-recently-used slot. Linear in the
// cache size, which is bounded by the (small) capacity. Callers hold mu.
func (c *entryCache) evictLRU() {
	var victimNode tree.NodeID
	victimIdx := -1
	victimUse := c.clock + 1
	for node, slots := range c.perNode {
		for i := range slots {
			if slots[i].lastUse < victimUse {
				victimUse = slots[i].lastUse
				victimNode, victimIdx = node, i
			}
		}
	}
	if victimIdx < 0 {
		return
	}
	slots := c.perNode[victimNode]
	slots = append(slots[:victimIdx], slots[victimIdx+1:]...)
	if len(slots) == 0 {
		delete(c.perNode, victimNode)
	} else {
		c.perNode[victimNode] = slots
	}
	c.size--
	c.evictions++
	c.obsEvictions.Inc()
}

// statsSnapshot returns the current counters.
func (c *entryCache) statsSnapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Stale: c.stale, Evictions: c.evictions, FingerHits: c.fingerHits, Size: c.size}
}
