package engine

import (
	"context"
	"testing"
	"time"

	"fraccascade/internal/obs"
)

// TestFlightRecorderPropagation pins the correlation chain: a request id
// attached to the batch context must surface on every Answer, on every
// span (query and phase children), and on every flight record, with the
// record sharing the query span's id; records must carry the host wall
// time and the phase step split.
func TestFlightRecorderPropagation(t *testing.T) {
	fx := buildFixture(t, 31, 1<<4, 1500)
	rec := obs.NewFlightRecorder(obs.FlightRecorderConfig{Reservoir: 256})
	ring := obs.NewRing(4096)
	e := fx.newEngine(t, Config{Procs: 1024, Tracer: ring, Recorder: rec})

	ctx := obs.WithRequestID(context.Background(), "req-abc123")
	rng := seededRNG(t, 32)
	qs := make([]Query, 16)
	for i := range qs {
		qs[i] = fx.randomQuery(rng)
	}
	answers, rep, err := e.ExecuteBatchContext(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	for i, a := range answers {
		if a.RequestID != "req-abc123" {
			t.Fatalf("answer %d request id = %q", i, a.RequestID)
		}
		if a.WallNS <= 0 {
			t.Fatalf("answer %d wall ns = %d, want > 0 with a recorder attached", i, a.WallNS)
		}
	}

	spanIDs := map[uint64]bool{}
	for _, s := range ring.Spans() {
		if s.RequestID != "req-abc123" {
			t.Fatalf("span %d request id = %q", s.ID, s.RequestID)
		}
		if s.Parent == 0 {
			spanIDs[s.ID] = true
		}
	}
	recs := rec.Records()
	if len(recs) != len(qs) {
		t.Fatalf("retained %d records, want %d", len(recs), len(qs))
	}
	for _, r := range recs {
		if !spanIDs[r.ID] {
			t.Fatalf("record id %d has no matching query span", r.ID)
		}
		if r.RequestID != "req-abc123" || r.Batch == 0 || r.Kind == "" {
			t.Fatalf("record incomplete: %+v", r)
		}
		if r.WallNS <= 0 || r.Time == 0 {
			t.Fatalf("record %d missing wall/time: %+v", r.ID, r)
		}
		if r.Err == "" && r.Steps > 0 {
			sum := 0
			for _, p := range r.Phases {
				sum += p.Steps
			}
			if sum != r.Steps {
				t.Fatalf("record %d phase steps sum %d != steps %d", r.ID, sum, r.Steps)
			}
		}
	}

	// Without a context request id, nothing is stamped.
	answers, _, err = e.ExecuteBatch(qs[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		if a.RequestID != "" {
			t.Fatalf("answer %d request id = %q without a context id", i, a.RequestID)
		}
	}
}

// TestFlightRecorderFingerDistance checks a key-local workload produces
// finger-hit records carrying the gallop distance d ≥ 1 (d = 0 would have
// been an exact cache hit).
func TestFlightRecorderFingerDistance(t *testing.T) {
	fx := buildFixture(t, 33, 1<<5, 4000)
	rec := obs.NewFlightRecorder(obs.FlightRecorderConfig{Reservoir: 4096})
	e := fx.newEngine(t, Config{Procs: 4096, CacheSize: 4, FingerCache: true, Recorder: rec})
	rng := seededRNG(t, 34)
	for batch := 0; batch < 20; batch++ {
		qs := make([]Query, 16)
		for i := range qs {
			qs[i] = CatalogQuery(0, fx.clusteredKey(rng), randomPath(fx.trees[0], rng))
		}
		if _, _, err := e.ExecuteBatch(qs); err != nil {
			t.Fatal(err)
		}
	}
	fingers := 0
	for _, r := range rec.Records() {
		switch r.Cache {
		case "finger":
			fingers++
			if r.FingerD < 1 {
				t.Fatalf("finger record %d has distance %d, want ≥ 1", r.ID, r.FingerD)
			}
		case "hit", "stale", "miss", "":
		default:
			t.Fatalf("record %d has unknown cache outcome %q", r.ID, r.Cache)
		}
		if r.Cache != "finger" && r.FingerD != 0 {
			t.Fatalf("non-finger record %d carries distance %d", r.ID, r.FingerD)
		}
	}
	if fingers == 0 {
		t.Fatal("key-local workload produced no finger records")
	}
}

// TestFlightRecorderErrorAgreement pins the failure-count contract the
// serving layer relies on: the batch report, the recorder's error pool,
// and the spans' error attributes must all count the same failures, with
// identical error text on each surface.
func TestFlightRecorderErrorAgreement(t *testing.T) {
	fx := buildFixture(t, 35, 1<<4, 1000)
	rec := obs.NewFlightRecorder(obs.FlightRecorderConfig{Reservoir: 64})
	ring := obs.NewRing(1024)
	e := fx.newEngine(t, Config{Procs: 256, Tracer: ring, Recorder: rec})

	rng := seededRNG(t, 36)
	qs := []Query{
		fx.randomQuery(rng),
		{Kind: KindCatalog, Shard: 99, Key: 1, Path: randomPath(fx.trees[0], rng)}, // shard out of range
		{Kind: Kind(42)}, // unknown kind
		fx.randomQuery(rng),
	}
	_, rep, err := e.ExecuteBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 2 {
		t.Fatalf("report errors = %d, want 2", rep.Errors)
	}
	spanErrs := map[string]bool{}
	n := 0
	for _, s := range ring.Spans() {
		if s.Parent == 0 && s.Err != "" {
			spanErrs[s.Err] = true
			n++
		}
	}
	if n != 2 {
		t.Fatalf("spans carry %d errors, want 2", n)
	}
	if st := rec.Stats(); st.Errored != 2 {
		t.Fatalf("recorder errored = %d, want 2", st.Errored)
	}
	recErrs := 0
	for _, r := range rec.Records() {
		if r.Err != "" {
			recErrs++
			if !spanErrs[r.Err] {
				t.Fatalf("record error %q not present on any span", r.Err)
			}
		}
	}
	if recErrs != 2 {
		t.Fatalf("retained %d error records, want 2", recErrs)
	}

	// Context-cancelled batches surface the same way on every surface.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, rep, err = e.ExecuteBatchContext(ctx, qs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 2 {
		t.Fatalf("cancelled batch report errors = %d, want 2", rep.Errors)
	}
	if st := rec.Stats(); st.Errored != 4 {
		t.Fatalf("recorder errored = %d after cancelled batch, want 4", st.Errored)
	}
}
