package dynamic

import (
	"fmt"
	"sort"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// PendingInsert is one buffered insertion awaiting the next flush.
type PendingInsert struct {
	Key     catalog.Key
	Payload int32
}

// NodePending is one node's pending overlay, in canonical (sorted) form.
type NodePending struct {
	Node tree.NodeID
	// Ins is sorted strictly by key.
	Ins []PendingInsert
	// Del is sorted strictly ascending.
	Del []catalog.Key
}

// State is the persisted shape of a dynamic Structure minus the built
// static structure, which is serialized separately (see core.ExportState).
// It captures the committed catalogs, the pending overlays, and the flush
// generation, so a mid-churn snapshot restores to exactly the same
// answers, buffered count, and cache-invalidation state.
type State struct {
	Capacity   int
	Generation uint64
	// Keys[v]/Payloads[v] are node v's committed native keys, sorted.
	Keys     [][]catalog.Key
	Payloads [][]int32
	// Pending lists nodes with non-empty overlays, sorted by node.
	Pending []NodePending
}

// ExportState returns the structure's mutable state for serialization.
// The committed key/payload slices alias live state; callers must treat
// them as read-only.
func (d *Structure) ExportState() State {
	st := State{
		Capacity:   d.capacity,
		Generation: d.Generation(),
		Keys:       d.curKeys,
		Payloads:   d.curPayloads,
	}
	nodes := make([]tree.NodeID, 0, len(d.overlays))
	for v, o := range d.overlays {
		if len(o.ins) == 0 && len(o.del) == 0 {
			continue
		}
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, v := range nodes {
		o := d.overlays[v]
		np := NodePending{Node: v}
		for _, ie := range o.ins {
			np.Ins = append(np.Ins, PendingInsert{Key: ie.key, Payload: ie.payload})
		}
		for k := range o.del {
			np.Del = append(np.Del, k)
		}
		sort.Slice(np.Del, func(i, j int) bool { return np.Del[i] < np.Del[j] })
		st.Pending = append(st.Pending, np)
	}
	return st
}

// FromParts reassembles a dynamic Structure around an already-restored
// static structure. The committed catalogs are cross-checked entry by
// entry against the static structure's native catalogs (they are the same
// data, stored once in each representation), overlays are validated for
// canonical form, and the flush generation is stamped back so externally
// cached artifacts keyed by Generation() stay correctly invalidated.
func FromParts(st *core.Structure, state State) (*Structure, error) {
	if st == nil {
		return nil, fmt.Errorf("dynamic: nil static structure")
	}
	t := st.Tree()
	if len(state.Keys) != t.N() || len(state.Payloads) != t.N() {
		return nil, fmt.Errorf("dynamic: state covers %d/%d nodes, tree has %d", len(state.Keys), len(state.Payloads), t.N())
	}
	if state.Capacity < 1 {
		return nil, fmt.Errorf("dynamic: capacity %d < 1", state.Capacity)
	}
	d := &Structure{
		t:           t,
		cfg:         st.Config(),
		st:          st,
		curKeys:     state.Keys,
		curPayloads: state.Payloads,
		overlays:    make(map[tree.NodeID]*overlay),
		capacity:    state.Capacity,
		maxAttempts: defaultRebuildAttempts,
		sleep:       time.Sleep,
	}
	for v := 0; v < t.N(); v++ {
		ks, ps := state.Keys[v], state.Payloads[v]
		if len(ks) != len(ps) {
			return nil, fmt.Errorf("dynamic: node %d: %d keys, %d payloads", v, len(ks), len(ps))
		}
		native := st.Cascade().Native(tree.NodeID(v))
		if native.Len() != len(ks)+1 {
			return nil, fmt.Errorf("dynamic: node %d: %d committed keys, static catalog has %d entries", v, len(ks), native.Len())
		}
		for i, k := range ks {
			if k == catalog.PlusInf {
				return nil, fmt.Errorf("dynamic: node %d: committed +inf key", v)
			}
			if i > 0 && ks[i-1] >= k {
				return nil, fmt.Errorf("dynamic: node %d: committed keys not strictly increasing at %d", v, i)
			}
			if e := native.At(i); e.Key != k || e.Payload != ps[i] {
				return nil, fmt.Errorf("dynamic: node %d entry %d: committed (%d,%d) disagrees with static (%d,%d)",
					v, i, k, ps[i], e.Key, e.Payload)
			}
		}
	}
	prevNode := tree.Nil
	for _, np := range state.Pending {
		if np.Node <= prevNode || int(np.Node) >= t.N() {
			return nil, fmt.Errorf("dynamic: pending overlay node %d out of order or range", np.Node)
		}
		prevNode = np.Node
		if len(np.Ins) == 0 && len(np.Del) == 0 {
			return nil, fmt.Errorf("dynamic: node %d: empty pending overlay", np.Node)
		}
		o := &overlay{del: make(map[catalog.Key]bool, len(np.Del))}
		for i, ie := range np.Ins {
			if ie.Key == catalog.PlusInf {
				return nil, fmt.Errorf("dynamic: node %d: pending insert of +inf", np.Node)
			}
			if i > 0 && np.Ins[i-1].Key >= ie.Key {
				return nil, fmt.Errorf("dynamic: node %d: pending inserts not strictly increasing at %d", np.Node, i)
			}
			o.ins = append(o.ins, insEntry{key: ie.Key, payload: ie.Payload})
		}
		for i, k := range np.Del {
			if k == catalog.PlusInf {
				return nil, fmt.Errorf("dynamic: node %d: pending delete of +inf", np.Node)
			}
			if i > 0 && np.Del[i-1] >= k {
				return nil, fmt.Errorf("dynamic: node %d: pending deletes not strictly increasing at %d", np.Node, i)
			}
			o.del[k] = true
		}
		d.overlays[np.Node] = o
		d.buffered += len(np.Ins) + len(np.Del)
	}
	d.gen.Store(state.Generation)
	return d, nil
}
