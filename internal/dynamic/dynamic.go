// Package dynamic adds catalog updates to the cooperative search structure
// — the paper's open problem 4 ("study cooperative update in dynamic data
// structures").
//
// The design is the straightforward lazy/amortized scheme rather than the
// pointer-surgery approach of Mehlhorn–Näher dynamic fractional cascading
// (which achieves O(log log n) sequential update but does not obviously
// compose with the skeleton forests): mutations are buffered per node in
// small sorted overlays; a query runs the static cooperative search and
// corrects each path result against the overlays in O(log B + D_v) extra
// work per node, where B is the buffer capacity and D_v the node's pending
// deletions; when the buffer reaches its capacity (default √n, at least
// 16), the structure is rebuilt from scratch — O(n) work amortized over B
// updates. Queries therefore keep the Theorem 1 step shape with a small
// additive overlay term, and updates cost amortized O(n/B + log B).
package dynamic

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/obs"
	"fraccascade/internal/tree"
)

// overlay is one node's pending mutations.
type overlay struct {
	// ins is sorted by key; del is a small set of currently-native keys.
	ins []insEntry
	del map[catalog.Key]bool
}

type insEntry struct {
	key     catalog.Key
	payload int32
}

// Structure is a dynamic cooperative search structure.
type Structure struct {
	t   *tree.Tree
	cfg core.Config
	st  *core.Structure

	// cur holds each node's committed native keys/payloads, sorted.
	curKeys     [][]catalog.Key
	curPayloads [][]int32

	overlays map[tree.NodeID]*overlay
	buffered int
	capacity int
	rebuilds int

	// gen counts successful flushes. Every Flush replaces the static
	// structure, so any externally cached artifact derived from it (entry
	// positions, catalog offsets) is stale once gen changes. Readers
	// snapshot Generation() when they cache and compare before reuse;
	// gen is monotone, so a stale snapshot can never compare equal again.
	gen atomic.Uint64

	// rebuildHook, when set, runs before every rebuild attempt; an error
	// aborts that attempt as if the build itself had failed. Tests use it
	// to inject transient and permanent rebuild faults.
	rebuildHook func(attempt int) error
	// maxAttempts and sleep parameterize the retry loop; sleep is
	// injectable so tests need not wait out real backoff.
	maxAttempts int
	sleep       func(time.Duration)

	// Observability handles (nil-safe no-ops without SetMetrics).
	obsFlushes     *obs.Counter
	obsAttempts    *obs.Counter
	obsAttemptFail *obs.Counter
	obsFlushFail   *obs.Counter
	obsFlushNs     *obs.Histogram
}

// Rebuild retry parameters: up to defaultRebuildAttempts tries with
// exponential backoff starting at rebuildBackoffBase, capped at
// rebuildBackoffCap.
const defaultRebuildAttempts = 3

const (
	rebuildBackoffBase = time.Millisecond
	rebuildBackoffCap  = 50 * time.Millisecond
)

// New builds a dynamic structure over the initial catalogs. capacity 0
// selects the default max(16, ⌈√n⌉).
func New(t *tree.Tree, native []catalog.Catalog, cfg core.Config, capacity int) (*Structure, error) {
	d := &Structure{
		t:           t,
		cfg:         cfg,
		overlays:    make(map[tree.NodeID]*overlay),
		maxAttempts: defaultRebuildAttempts,
		sleep:       time.Sleep,
	}
	d.curKeys = make([][]catalog.Key, t.N())
	d.curPayloads = make([][]int32, t.N())
	total := 0
	for v := range native {
		for _, e := range native[v].Entries() {
			if e.Native && e.Key != catalog.PlusInf {
				d.curKeys[v] = append(d.curKeys[v], e.Key)
				d.curPayloads[v] = append(d.curPayloads[v], e.Payload)
				total++
			}
		}
	}
	if capacity <= 0 {
		capacity = int(math.Ceil(math.Sqrt(float64(total))))
		if capacity < 16 {
			capacity = 16
		}
	}
	d.capacity = capacity
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	d.rebuilds = 0 // the initial build is not an amortized rebuild
	return d, nil
}

// SetMetrics attaches (or, with nil, detaches) an observability registry.
// Flush activity is mirrored into it:
//
//	dynamic.flushes              successful flushes (== generation churn)
//	dynamic.flush_failures       flushes that exhausted every attempt
//	dynamic.rebuild.attempts     individual rebuild attempts
//	dynamic.rebuild.failures     failed individual attempts (then retried)
//	dynamic.flush_ns             wall time of successful flushes (histogram)
//	dynamic.generation           current flush generation (pull gauge)
//	dynamic.buffered             pending mutations (pull gauge)
//	dynamic.capacity             rebuild threshold (pull gauge)
//
// The pull gauges read this structure's accessors at snapshot time, which
// is safe under the package's single-writer discipline (snapshots and
// mutations must not race, same as queries). With no registry every
// mirror write is a nil-handle no-op and Flush takes no timestamps.
func (d *Structure) SetMetrics(r *obs.Registry) {
	if r == nil {
		d.obsFlushes, d.obsAttempts, d.obsAttemptFail, d.obsFlushFail, d.obsFlushNs = nil, nil, nil, nil, nil
		return
	}
	d.obsFlushes = r.Counter("dynamic.flushes")
	d.obsFlushFail = r.Counter("dynamic.flush_failures")
	d.obsAttempts = r.Counter("dynamic.rebuild.attempts")
	d.obsAttemptFail = r.Counter("dynamic.rebuild.failures")
	d.obsFlushNs = r.Histogram("dynamic.flush_ns")
	r.RegisterFunc("dynamic.generation", func() int64 { return int64(d.Generation()) })
	r.RegisterFunc("dynamic.buffered", func() int64 { return int64(d.Buffered()) })
	r.RegisterFunc("dynamic.capacity", func() int64 { return int64(d.Capacity()) })
}

// Rebuilds reports how many amortized rebuilds have occurred.
func (d *Structure) Rebuilds() int { return d.rebuilds }

// Buffered reports the number of pending mutations.
func (d *Structure) Buffered() int { return d.buffered }

// Capacity reports the rebuild threshold.
func (d *Structure) Capacity() int { return d.capacity }

// Static exposes the current underlying static structure (invalidated by
// the next rebuild).
func (d *Structure) Static() *core.Structure { return d.st }

func (d *Structure) ov(v tree.NodeID) *overlay {
	o := d.overlays[v]
	if o == nil {
		o = &overlay{del: make(map[catalog.Key]bool)}
		d.overlays[v] = o
	}
	return o
}

// committedHas reports whether key is a committed native key of node v.
func (d *Structure) committedHas(v tree.NodeID, key catalog.Key) bool {
	ks := d.curKeys[v]
	i := sort.Search(len(ks), func(j int) bool { return ks[j] >= key })
	return i < len(ks) && ks[i] == key
}

// Insert adds key (with payload) to node v's catalog.
func (d *Structure) Insert(v tree.NodeID, key catalog.Key, payload int32) error {
	if key == catalog.PlusInf {
		return fmt.Errorf("dynamic: cannot insert the +inf terminal")
	}
	o := d.ov(v)
	if o.del[key] {
		// Reinsertion of a pending-deleted committed key.
		delete(o.del, key)
		d.buffered--
		// Payload may differ: route through the insert overlay by
		// treating it as delete+insert.
		if d.committedHas(v, key) {
			// Committed payload wins unless it differs; replace via
			// del+ins to honour the new payload.
			i := sort.Search(len(d.curKeys[v]), func(j int) bool { return d.curKeys[v][j] >= key })
			if d.curPayloads[v][i] != payload {
				o.del[key] = true
				d.buffered++
				return d.insertPending(v, o, key, payload)
			}
		}
		return d.maybeRebuild()
	}
	if d.committedHas(v, key) {
		return fmt.Errorf("dynamic: key %d already present at node %d", key, v)
	}
	return d.insertPending(v, o, key, payload)
}

func (d *Structure) insertPending(v tree.NodeID, o *overlay, key catalog.Key, payload int32) error {
	i := sort.Search(len(o.ins), func(j int) bool { return o.ins[j].key >= key })
	if i < len(o.ins) && o.ins[i].key == key {
		return fmt.Errorf("dynamic: key %d already pending at node %d", key, v)
	}
	o.ins = append(o.ins, insEntry{})
	copy(o.ins[i+1:], o.ins[i:])
	o.ins[i] = insEntry{key: key, payload: payload}
	d.buffered++
	return d.maybeRebuild()
}

// Delete removes key from node v's catalog.
func (d *Structure) Delete(v tree.NodeID, key catalog.Key) error {
	if key == catalog.PlusInf {
		return fmt.Errorf("dynamic: cannot delete the +inf terminal")
	}
	o := d.ov(v)
	i := sort.Search(len(o.ins), func(j int) bool { return o.ins[j].key >= key })
	if i < len(o.ins) && o.ins[i].key == key {
		// Deleting a pending insert cancels it.
		o.ins = append(o.ins[:i], o.ins[i+1:]...)
		d.buffered--
		return nil
	}
	if !d.committedHas(v, key) {
		return fmt.Errorf("dynamic: key %d not present at node %d", key, v)
	}
	if o.del[key] {
		return fmt.Errorf("dynamic: key %d already deleted at node %d", key, v)
	}
	o.del[key] = true
	d.buffered++
	return d.maybeRebuild()
}

func (d *Structure) maybeRebuild() error {
	if d.buffered < d.capacity {
		return nil
	}
	return d.Flush()
}

// SetRebuildHook installs a hook run before every rebuild attempt; a
// non-nil error from it fails that attempt (and is retried like any other
// rebuild failure). Pass nil to remove the hook. Intended for fault
// injection in tests and chaos experiments.
func (d *Structure) SetRebuildHook(hook func(attempt int) error) { d.rebuildHook = hook }

// Flush commits all pending mutations and rebuilds the static structure
// transactionally: merged catalogs are staged in fresh slices and the new
// static structure is built from the staged state; only after the build
// succeeds are the committed keys, overlays, and static structure swapped.
// A failed build attempt (for example one interrupted by an injected
// fault) is retried with capped exponential backoff; if every attempt
// fails, Flush returns the last error and the structure is unchanged —
// pending mutations stay buffered and queries keep answering from the old
// static structure corrected by the overlays.
func (d *Structure) Flush() error {
	var flushStart time.Time
	if d.obsFlushNs != nil {
		flushStart = time.Now()
	}
	newKeys := make([][]catalog.Key, len(d.curKeys))
	newPayloads := make([][]int32, len(d.curPayloads))
	copy(newKeys, d.curKeys)
	copy(newPayloads, d.curPayloads)
	for v, o := range d.overlays {
		if len(o.ins) == 0 && len(o.del) == 0 {
			continue
		}
		ks, ps := d.curKeys[v], d.curPayloads[v]
		newKs := make([]catalog.Key, 0, len(ks)+len(o.ins))
		newPs := make([]int32, 0, len(ks)+len(o.ins))
		i, j := 0, 0
		for i < len(ks) || j < len(o.ins) {
			if j >= len(o.ins) || (i < len(ks) && ks[i] < o.ins[j].key) {
				if !o.del[ks[i]] {
					newKs = append(newKs, ks[i])
					newPs = append(newPs, ps[i])
				}
				i++
			} else {
				newKs = append(newKs, o.ins[j].key)
				newPs = append(newPs, o.ins[j].payload)
				j++
			}
		}
		newKeys[v], newPayloads[v] = newKs, newPs
	}
	st, err := d.rebuildFrom(newKeys, newPayloads)
	if err != nil {
		d.obsFlushFail.Inc()
		return err
	}
	d.curKeys, d.curPayloads = newKeys, newPayloads
	d.overlays = make(map[tree.NodeID]*overlay)
	d.buffered = 0
	d.st = st
	d.rebuilds++
	d.gen.Add(1)
	d.obsFlushes.Inc()
	if d.obsFlushNs != nil {
		d.obsFlushNs.Observe(time.Since(flushStart).Nanoseconds())
	}
	return nil
}

// Generation returns the flush generation: a counter incremented by every
// successful Flush (including capacity-triggered ones). Cache the value
// alongside anything derived from Static() and treat a changed generation
// as invalidation; failed flush attempts leave the static structure — and
// the generation — untouched.
func (d *Structure) Generation() uint64 { return d.gen.Load() }

// rebuildFrom builds a static structure over the given staged catalogs,
// retrying failed attempts with capped exponential backoff. It never
// mutates d beyond consuming backoff sleeps.
func (d *Structure) rebuildFrom(keys [][]catalog.Key, payloads [][]int32) (*core.Structure, error) {
	backoff := rebuildBackoffBase
	var lastErr error
	for attempt := 1; attempt <= d.maxAttempts; attempt++ {
		if attempt > 1 {
			d.sleep(backoff)
			backoff *= 2
			if backoff > rebuildBackoffCap {
				backoff = rebuildBackoffCap
			}
		}
		d.obsAttempts.Inc()
		st, err := d.buildOnce(attempt, keys, payloads)
		if err == nil {
			return st, nil
		}
		d.obsAttemptFail.Inc()
		lastErr = err
	}
	return nil, fmt.Errorf("dynamic: rebuild failed after %d attempts: %w", d.maxAttempts, lastErr)
}

func (d *Structure) buildOnce(attempt int, keys [][]catalog.Key, payloads [][]int32) (*core.Structure, error) {
	if d.rebuildHook != nil {
		if err := d.rebuildHook(attempt); err != nil {
			return nil, err
		}
	}
	cats := make([]catalog.Catalog, d.t.N())
	for v := range cats {
		c, err := catalog.FromKeys(keys[v], payloads[v])
		if err != nil {
			return nil, fmt.Errorf("dynamic: node %d: %w", v, err)
		}
		cats[v] = c
	}
	return core.Build(d.t, cats, d.cfg)
}

func (d *Structure) rebuild() error {
	st, err := d.rebuildFrom(d.curKeys, d.curPayloads)
	if err != nil {
		return err
	}
	d.st = st
	return nil
}

// correct adjusts a static search result for node v against the overlays:
// it skips pending-deleted native successors and folds in the smallest
// pending insert ≥ y.
func (d *Structure) correct(v tree.NodeID, y catalog.Key, r cascade.Result) cascade.Result {
	o := d.overlays[v]
	if o == nil || (len(o.ins) == 0 && len(o.del) == 0) {
		return r
	}
	// Walk right past deleted natives.
	cat := d.st.Cascade().Aug(v)
	pos := r.AugPos
	key, payload := cat.NativeResult(pos)
	for o.del[key] && key != catalog.PlusInf {
		pos = int(cat.At(pos).NativeSucc) + 1
		if pos >= cat.Len() {
			pos = cat.Len() - 1
		}
		key, payload = cat.NativeResult(pos)
	}
	// Fold in pending inserts.
	i := sort.Search(len(o.ins), func(j int) bool { return o.ins[j].key >= y })
	if i < len(o.ins) && o.ins[i].key < key {
		return cascade.Result{Node: v, AugPos: r.AugPos, Key: o.ins[i].key, Payload: o.ins[i].payload}
	}
	return cascade.Result{Node: v, AugPos: pos, Key: key, Payload: payload}
}

// SearchExplicit runs the cooperative search on the static structure and
// corrects every result against the pending overlays.
func (d *Structure) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	results, stats, err := d.st.SearchExplicit(y, path, p)
	if err != nil {
		return nil, stats, err
	}
	for i := range results {
		results[i] = d.correct(path[i], y, results[i])
	}
	return results, stats, nil
}

// SearchExplicitWithEntry is SearchExplicit seeded with a cached entry
// position for the current static structure (see
// core.SearchExplicitWithEntry); overlay corrections are applied to every
// result exactly as in SearchExplicit. Entry positions refer to the static
// structure, so a cached position is only meaningful while Generation() is
// unchanged — a stale one simply fails the validity check and the full
// entry search runs (used = false). Pending overlay mutations never affect
// entry validity: they are corrections applied after the static descent.
func (d *Structure) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error) {
	results, stats, used, err := d.st.SearchExplicitWithEntry(y, path, p, entryPos)
	if err != nil {
		return nil, stats, used, err
	}
	for i := range results {
		results[i] = d.correct(path[i], y, results[i])
	}
	return results, stats, used, err
}

// SearchExplicitFromFinger is SearchExplicit entered by galloping from a
// finger position in the root catalog (see core.SearchExplicitFromFinger);
// overlay corrections are applied to every result exactly as in
// SearchExplicit. Like cached entry positions, fingers refer to the static
// structure and are only meaningful while Generation() is unchanged.
func (d *Structure) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error) {
	results, stats, used, err := d.st.SearchExplicitFromFinger(y, path, p, finger)
	if err != nil {
		return nil, stats, used, err
	}
	for i := range results {
		results[i] = d.correct(path[i], y, results[i])
	}
	return results, stats, used, err
}

// SearchExplicitContext is SearchExplicit honouring cancellation and
// deadlines between hops of the underlying static search.
func (d *Structure) SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	results, stats, err := d.st.SearchExplicitContext(ctx, y, path, p)
	if err != nil {
		return nil, stats, err
	}
	for i := range results {
		results[i] = d.correct(path[i], y, results[i])
	}
	return results, stats, nil
}

// Find returns the current find(y, v) for a single node (an O(log n)
// dictionary operation against committed + pending state, used by tests
// as the oracle-facing accessor).
func (d *Structure) Find(v tree.NodeID, y catalog.Key) (catalog.Key, int32) {
	ks, ps := d.curKeys[v], d.curPayloads[v]
	bestKey, bestPayload := catalog.PlusInf, catalog.NoPayload
	i := sort.Search(len(ks), func(j int) bool { return ks[j] >= y })
	o := d.overlays[v]
	for ; i < len(ks); i++ {
		if o != nil && o.del[ks[i]] {
			continue
		}
		bestKey, bestPayload = ks[i], ps[i]
		break
	}
	if o != nil {
		j := sort.Search(len(o.ins), func(k int) bool { return o.ins[k].key >= y })
		if j < len(o.ins) && o.ins[j].key < bestKey {
			bestKey, bestPayload = o.ins[j].key, o.ins[j].payload
		}
	}
	return bestKey, bestPayload
}
