package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

func churnedStructure(t *testing.T) *Structure {
	t.Helper()
	tr, err := tree.NewBalancedBinary(8)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(41))
	native := make([]catalog.Catalog, tr.N())
	for v := range native {
		keys := make([]catalog.Key, 10)
		for i := range keys {
			keys[i] = catalog.Key(v*10000 + i*20) // even spacing, gaps for inserts
		}
		c, err := catalog.FromKeys(keys, nil)
		if err != nil {
			t.Fatalf("catalog: %v", err)
		}
		native[v] = c
	}
	d, err := New(tr, native, core.Config{}, 500)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 30; i++ {
		v := tree.NodeID(rng.Intn(tr.N()))
		if err := d.Insert(v, catalog.Key(int(v)*10000+i*20+7), int32(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < 15; i++ {
		v := tree.NodeID(rng.Intn(tr.N()))
		if i%3 == 0 {
			if err := d.Delete(v, catalog.Key(int(v)*10000+(i%10)*20)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		} else if err := d.Insert(v, catalog.Key(int(v)*10000+i*20+11), int32(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if d.Buffered() == 0 {
		t.Fatalf("expected pending overlays")
	}
	return d
}

func TestStateRoundTrip(t *testing.T) {
	d := churnedStructure(t)
	state := d.ExportState()
	got, err := FromParts(d.Static(), state)
	if err != nil {
		t.Fatalf("FromParts: %v", err)
	}
	if got.Generation() != d.Generation() || got.Buffered() != d.Buffered() || got.Capacity() != d.Capacity() {
		t.Fatalf("metadata diverges")
	}
	if !reflect.DeepEqual(got.ExportState(), state) {
		t.Fatalf("re-exported state diverges")
	}
	tr := d.Static().Tree()
	for v := 0; v < tr.N(); v++ {
		for y := catalog.Key(0); y < 80000; y += 333 {
			wk, wp := d.Find(tree.NodeID(v), y)
			gk, gp := got.Find(tree.NodeID(v), y)
			if wk != gk || wp != gp {
				t.Fatalf("node %d y=%d: find diverges", v, y)
			}
		}
	}
	// Restored structures stay fully updatable: flushing pending overlays
	// advances the generation past the stamped value.
	gen := got.Generation()
	if err := got.Flush(); err != nil {
		t.Fatalf("flush restored: %v", err)
	}
	if got.Generation() != gen+1 {
		t.Fatalf("generation after flush = %d, want %d", got.Generation(), gen+1)
	}
}

func TestFromPartsRejectsDamage(t *testing.T) {
	d := churnedStructure(t)
	base := d.ExportState()
	clone := func() State {
		s := State{Capacity: base.Capacity, Generation: base.Generation}
		s.Keys = make([][]catalog.Key, len(base.Keys))
		s.Payloads = make([][]int32, len(base.Payloads))
		for v := range base.Keys {
			s.Keys[v] = append([]catalog.Key{}, base.Keys[v]...)
			s.Payloads[v] = append([]int32{}, base.Payloads[v]...)
		}
		for _, np := range base.Pending {
			s.Pending = append(s.Pending, NodePending{
				Node: np.Node,
				Ins:  append([]PendingInsert{}, np.Ins...),
				Del:  append([]catalog.Key{}, np.Del...),
			})
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(s *State)
	}{
		{"zero capacity", func(s *State) { s.Capacity = 0 }},
		{"node count", func(s *State) { s.Keys = s.Keys[:len(s.Keys)-1] }},
		{"key/payload mismatch", func(s *State) { s.Payloads[0] = s.Payloads[0][:len(s.Payloads[0])-1] }},
		{"key disagrees with static", func(s *State) { s.Keys[0][0]++ }},
		{"committed +inf", func(s *State) { s.Keys[0][len(s.Keys[0])-1] = catalog.PlusInf }},
		{"unsorted pending nodes", func(s *State) {
			if len(s.Pending) > 1 {
				s.Pending[0], s.Pending[1] = s.Pending[1], s.Pending[0]
			} else {
				s.Pending = append(s.Pending, s.Pending[0])
			}
		}},
		{"unsorted pending inserts", func(s *State) {
			for i := range s.Pending {
				if len(s.Pending[i].Ins) > 1 {
					s.Pending[i].Ins[0], s.Pending[i].Ins[1] = s.Pending[i].Ins[1], s.Pending[i].Ins[0]
					return
				}
			}
			s.Pending[0].Ins = append(s.Pending[0].Ins, s.Pending[0].Ins...)
		}},
	}
	for _, tc := range cases {
		s := clone()
		tc.mutate(&s)
		if _, err := FromParts(d.Static(), s); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, err := FromParts(nil, base); err == nil {
		t.Fatalf("nil static accepted")
	}
}
