package dynamic

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// fullPaths returns every root-to-leaf path of the tree.
func fullPaths(t *tree.Tree) [][]tree.NodeID {
	var paths [][]tree.NodeID
	for v := tree.NodeID(0); int(v) < t.N(); v++ {
		if t.IsLeaf(v) {
			paths = append(paths, t.RootPath(v))
		}
	}
	return paths
}

func TestFlushRetriesTransientRebuildFailure(t *testing.T) {
	d, m, bt, rng := setup(t, 8, 200, 41, 8)
	d.sleep = func(time.Duration) {} // no real backoff in tests
	var attempts []int
	d.SetRebuildHook(func(attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 3 {
			return fmt.Errorf("injected transient fault (attempt %d)", attempt)
		}
		return nil
	})
	v := tree.NodeID(rng.Intn(bt.N()))
	k := catalog.Key(1_000_001)
	if err := d.Insert(v, k, 7); err != nil {
		t.Fatal(err)
	}
	m.keys[v][k] = 7
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush should survive transient faults: %v", err)
	}
	if len(attempts) != 3 {
		t.Errorf("rebuild attempts = %v, want [1 2 3]", attempts)
	}
	if d.Buffered() != 0 {
		t.Errorf("Buffered = %d after successful flush, want 0", d.Buffered())
	}
	if gk, gp := d.Find(v, k); gk != k || gp != 7 {
		t.Errorf("Find(%d, %d) = (%d, %d), want (%d, 7)", v, k, gk, gp, k)
	}
}

func TestFlushPermanentFailureLeavesStateIntact(t *testing.T) {
	d, m, bt, rng := setup(t, 8, 200, 42, 8)
	d.sleep = func(time.Duration) {}
	permanent := errors.New("injected permanent fault")
	d.SetRebuildHook(func(int) error { return permanent })

	v := tree.NodeID(rng.Intn(bt.N()))
	k := catalog.Key(2_000_003)
	if err := d.Insert(v, k, 9); err != nil {
		t.Fatal(err)
	}
	buffered := d.Buffered()
	oldStatic := d.Static()
	err := d.Flush()
	if !errors.Is(err, permanent) {
		t.Fatalf("Flush error = %v, want wrapped %v", err, permanent)
	}
	// The failed flush must not have committed anything.
	if d.Buffered() != buffered {
		t.Errorf("Buffered = %d after failed flush, want %d (overlays intact)", d.Buffered(), buffered)
	}
	if d.Static() != oldStatic {
		t.Error("failed flush replaced the static structure")
	}
	if d.Rebuilds() != 0 {
		t.Errorf("Rebuilds = %d after failed flush, want 0", d.Rebuilds())
	}
	// Queries must still answer correctly from old static + overlays.
	if gk, gp := d.Find(v, k); gk != k || gp != 9 {
		t.Errorf("Find(%d, %d) = (%d, %d), want pending insert visible", v, k, gk, gp)
	}
	for _, path := range fullPaths(bt) {
		y := catalog.Key(rng.Intn(800))
		results, _, serr := d.SearchExplicit(y, path, 8)
		if serr != nil {
			t.Fatalf("search after failed flush: %v", serr)
		}
		for i, r := range results {
			wk, _ := m.find(path[i], y)
			node := path[i]
			if node == v && k >= y && k < wk {
				wk = k
			}
			if r.Key != wk {
				t.Fatalf("node %d: find(%d) = %d, want %d", node, y, r.Key, wk)
			}
		}
	}
	// Removing the fault lets the same flush succeed.
	d.SetRebuildHook(nil)
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush after clearing hook: %v", err)
	}
	if d.Buffered() != 0 {
		t.Errorf("Buffered = %d, want 0", d.Buffered())
	}
}

func TestFlushBackoffIsCapped(t *testing.T) {
	d, _, _, _ := setup(t, 4, 60, 43, 4)
	var slept []time.Duration
	d.sleep = func(dur time.Duration) { slept = append(slept, dur) }
	d.maxAttempts = 10
	d.SetRebuildHook(func(int) error { return errors.New("always fails") })
	if err := d.Flush(); err == nil {
		t.Fatal("Flush should fail when every attempt fails")
	}
	if len(slept) != 9 {
		t.Fatalf("slept %d times, want 9 (attempts − 1)", len(slept))
	}
	for i, dur := range slept {
		if dur > rebuildBackoffCap {
			t.Errorf("backoff %d = %v exceeds cap %v", i, dur, rebuildBackoffCap)
		}
		if i > 0 && dur < slept[i-1] {
			t.Errorf("backoff %d = %v shrank from %v", i, dur, slept[i-1])
		}
	}
}

func TestDynamicSearchExplicitContext(t *testing.T) {
	d, _, bt, rng := setup(t, 8, 200, 44, 64)
	path := fullPaths(bt)[0]
	y := catalog.Key(rng.Intn(800))

	got, _, err := d.SearchExplicitContext(context.Background(), y, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := d.SearchExplicit(y, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: context variant %+v != plain %+v", i, got[i], want[i])
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := d.SearchExplicitContext(cancelled, y, path, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled search error = %v, want context.Canceled", err)
	}
}
