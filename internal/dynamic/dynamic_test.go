package dynamic

import (
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// model is a reference implementation over plain maps.
type model struct {
	keys map[tree.NodeID]map[catalog.Key]int32
}

func newModel(t *tree.Tree, native []catalog.Catalog) *model {
	m := &model{keys: make(map[tree.NodeID]map[catalog.Key]int32)}
	for v := range native {
		mm := map[catalog.Key]int32{}
		for _, e := range native[v].Entries() {
			if e.Native && e.Key != catalog.PlusInf {
				mm[e.Key] = e.Payload
			}
		}
		m.keys[tree.NodeID(v)] = mm
	}
	return m
}

func (m *model) find(v tree.NodeID, y catalog.Key) (catalog.Key, int32) {
	best, payload := catalog.PlusInf, catalog.NoPayload
	for k, pl := range m.keys[v] {
		if k >= y && k < best {
			best, payload = k, pl
		}
	}
	return best, payload
}

func setup(tb testing.TB, leaves, total int, seed int64, capacity int) (*Structure, *model, *tree.Tree, *rand.Rand) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	native := make([]catalog.Catalog, bt.N())
	for v := range native {
		seen := map[catalog.Key]bool{}
		var keys []catalog.Key
		for len(keys) < rng.Intn(2*total/(bt.N()+1)+2) {
			k := catalog.Key(rng.Intn(total * 4))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		payloads := make([]int32, len(keys))
		for i := range payloads {
			payloads[i] = int32(v)*1000 + int32(i)
		}
		native[v] = catalog.MustFromKeys(keys, payloads)
	}
	d, err := New(bt, native, core.Config{}, capacity)
	if err != nil {
		tb.Fatal(err)
	}
	return d, newModel(bt, native), bt, rng
}

func TestDynamicMatchesModelUnderChurn(t *testing.T) {
	d, m, bt, rng := setup(t, 1<<5, 600, 1, 32)
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < bt.N(); v++ {
		if bt.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	for op := 0; op < 1500; op++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		switch rng.Intn(3) {
		case 0: // insert
			k := catalog.Key(rng.Intn(2400))
			pl := int32(op)
			if _, exists := m.keys[v][k]; exists {
				if err := d.Insert(v, k, pl); err == nil {
					t.Fatalf("op %d: duplicate insert of %d at %d succeeded", op, k, v)
				}
			} else {
				if err := d.Insert(v, k, pl); err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				m.keys[v][k] = pl
			}
		case 1: // delete
			var victim catalog.Key = -1
			for k := range m.keys[v] {
				victim = k
				break
			}
			if victim < 0 {
				if err := d.Delete(v, 42); err == nil && len(m.keys[v]) == 0 {
					t.Fatalf("op %d: delete from empty node succeeded", op)
				}
				continue
			}
			if err := d.Delete(v, victim); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			delete(m.keys[v], victim)
		default: // query
			leaf := leaves[rng.Intn(len(leaves))]
			path := bt.RootPath(leaf)
			y := catalog.Key(rng.Intn(2400))
			results, _, err := d.SearchExplicit(y, path, 1+rng.Intn(1024))
			if err != nil {
				t.Fatalf("op %d: search: %v", op, err)
			}
			for i, node := range path {
				wantK, wantP := m.find(node, y)
				if results[i].Key != wantK || (wantK != catalog.PlusInf && results[i].Payload != wantP) {
					t.Fatalf("op %d node %d y %d: got (%d,%d), want (%d,%d)",
						op, node, y, results[i].Key, results[i].Payload, wantK, wantP)
				}
			}
		}
	}
	if d.Rebuilds() == 0 {
		t.Error("expected at least one amortized rebuild under churn")
	}
}

func TestDynamicFindMatchesModel(t *testing.T) {
	d, m, bt, rng := setup(t, 1<<4, 300, 2, 0)
	for op := 0; op < 400; op++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		k := catalog.Key(rng.Intn(1200))
		if _, exists := m.keys[v][k]; !exists && rng.Intn(2) == 0 {
			if err := d.Insert(v, k, int32(op)); err != nil {
				t.Fatal(err)
			}
			m.keys[v][k] = int32(op)
		}
		qv := tree.NodeID(rng.Intn(bt.N()))
		y := catalog.Key(rng.Intn(1200))
		gk, gp := d.Find(qv, y)
		wk, wp := m.find(qv, y)
		if gk != wk || (wk != catalog.PlusInf && gp != wp) {
			t.Fatalf("op %d: Find(%d,%d) = (%d,%d), want (%d,%d)", op, qv, y, gk, gp, wk, wp)
		}
	}
}

func TestDynamicRejections(t *testing.T) {
	d, _, _, _ := setup(t, 4, 50, 3, 0)
	if err := d.Insert(0, catalog.PlusInf, 1); err == nil {
		t.Error("+inf insert should fail")
	}
	if err := d.Delete(0, catalog.PlusInf); err == nil {
		t.Error("+inf delete should fail")
	}
	if err := d.Insert(0, 123456, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(0, 123456, 2); err == nil {
		t.Error("duplicate pending insert should fail")
	}
	if err := d.Delete(0, 999999); err == nil {
		t.Error("deleting absent key should fail")
	}
}

func TestDynamicDeleteCancelsPendingInsert(t *testing.T) {
	d, _, _, _ := setup(t, 4, 50, 4, 1000)
	if err := d.Insert(1, 500, 7); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", d.Buffered())
	}
	if err := d.Delete(1, 500); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered = %d after cancel, want 0", d.Buffered())
	}
	if k, _ := d.Find(1, 500); k == 500 {
		t.Error("cancelled insert still visible")
	}
}

func TestDynamicReinsertAfterDelete(t *testing.T) {
	d, m, bt, rng := setup(t, 8, 200, 5, 1000)
	// Pick a committed key and delete+reinsert with a new payload.
	var v tree.NodeID
	var k catalog.Key = -1
	for vv := tree.NodeID(0); int(vv) < bt.N() && k < 0; vv++ {
		for kk := range m.keys[vv] {
			v, k = vv, kk
			break
		}
	}
	if k < 0 {
		t.Skip("no committed keys in this seed")
	}
	if err := d.Delete(v, k); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(v, k, 9999); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	gk, gp := d.Find(v, k)
	if gk != k || gp != 9999 {
		t.Fatalf("Find = (%d,%d), want (%d,9999)", gk, gp, k)
	}
	// Survives a flush.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	gk, gp = d.Find(v, k)
	if gk != k || gp != 9999 {
		t.Fatalf("after flush: Find = (%d,%d), want (%d,9999)", gk, gp, k)
	}
	_ = rng
}

func TestDynamicFlushIdempotent(t *testing.T) {
	d, _, _, _ := setup(t, 4, 50, 6, 1000)
	if err := d.Insert(2, 777, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	r1 := d.Rebuilds()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 0 {
		t.Error("buffer should be empty after flush")
	}
	if d.Rebuilds() != r1+1 {
		t.Errorf("Rebuilds = %d, want %d", d.Rebuilds(), r1+1)
	}
	if k, _ := d.Find(2, 777); k != 777 {
		t.Error("committed key lost by flush")
	}
}

func TestDynamicAmortizedRebuildCadence(t *testing.T) {
	d, _, bt, rng := setup(t, 1<<4, 200, 7, 50)
	inserted := 0
	for inserted < 500 {
		v := tree.NodeID(rng.Intn(bt.N()))
		k := catalog.Key(rng.Intn(1 << 30))
		if err := d.Insert(v, k, 1); err == nil {
			inserted++
		}
	}
	// 500 inserts at capacity 50: about 10 rebuilds.
	if d.Rebuilds() < 8 || d.Rebuilds() > 12 {
		t.Errorf("Rebuilds = %d, want ~10", d.Rebuilds())
	}
}
