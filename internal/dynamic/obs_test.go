package dynamic

import (
	"errors"
	"testing"
	"time"

	"fraccascade/internal/catalog"
	"fraccascade/internal/obs"
	"fraccascade/internal/tree"
)

// TestFlushMetricsMatchGroundTruth churns an instrumented structure
// through capacity-triggered and explicit flushes and checks every mirror
// against the structure's own accessors.
func TestFlushMetricsMatchGroundTruth(t *testing.T) {
	d, _, bt, rng := setup(t, 1<<4, 400, 5, 8)
	r := obs.NewRegistry()
	d.SetMetrics(r)

	genBefore := d.Generation()
	inserted := 0
	for inserted < 30 {
		v := tree.NodeID(rng.Intn(bt.N()))
		k := catalog.Key(rng.Intn(1 << 20))
		if err := d.Insert(v, k, int32(inserted)); err != nil {
			continue // duplicate key; try again
		}
		inserted++
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := r.Snapshot()
	flushes := int64(d.Generation() - genBefore)
	if flushes == 0 {
		t.Fatal("no flush happened; test is vacuous")
	}
	if got := snap.Counters["dynamic.flushes"]; got != flushes {
		t.Fatalf("dynamic.flushes = %d, generation advanced by %d", got, flushes)
	}
	if got := snap.Funcs["dynamic.generation"]; got != int64(d.Generation()) {
		t.Fatalf("dynamic.generation gauge = %d, Generation() = %d", got, d.Generation())
	}
	if got := snap.Funcs["dynamic.buffered"]; got != int64(d.Buffered()) {
		t.Fatalf("dynamic.buffered gauge = %d, Buffered() = %d", got, d.Buffered())
	}
	if got := snap.Funcs["dynamic.capacity"]; got != int64(d.Capacity()) {
		t.Fatalf("dynamic.capacity gauge = %d, Capacity() = %d", got, d.Capacity())
	}
	// Every successful flush ran at least one rebuild attempt and timed it.
	if snap.Counters["dynamic.rebuild.attempts"] < flushes {
		t.Fatalf("rebuild attempts %d < flushes %d", snap.Counters["dynamic.rebuild.attempts"], flushes)
	}
	h := snap.Histograms["dynamic.flush_ns"]
	if h.Count != flushes || h.Sum <= 0 {
		t.Fatalf("dynamic.flush_ns: count=%d sum=%d, want count=%d with positive sum", h.Count, h.Sum, flushes)
	}
}

// TestFlushFailureMetrics injects a permanently failing rebuild hook and
// checks the failure counters move while the success ones do not.
func TestFlushFailureMetrics(t *testing.T) {
	d, _, _, _ := setup(t, 1<<4, 400, 6, 1<<20)
	r := obs.NewRegistry()
	d.SetMetrics(r)
	d.sleep = func(time.Duration) {} // no real backoff in tests

	boom := errors.New("injected rebuild failure")
	d.SetRebuildHook(func(attempt int) error { return boom })
	if err := d.Insert(0, catalog.Key(42), 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err == nil {
		t.Fatal("flush should have failed under the failing hook")
	}
	snap := r.Snapshot()
	if snap.Counters["dynamic.flushes"] != 0 {
		t.Fatal("failed flush must not count as a flush")
	}
	if snap.Counters["dynamic.flush_failures"] != 1 {
		t.Fatalf("dynamic.flush_failures = %d, want 1", snap.Counters["dynamic.flush_failures"])
	}
	if got := snap.Counters["dynamic.rebuild.failures"]; got != int64(d.maxAttempts) {
		t.Fatalf("dynamic.rebuild.failures = %d, want %d (every attempt failed)", got, d.maxAttempts)
	}
	if snap.Histograms["dynamic.flush_ns"].Count != 0 {
		t.Fatal("failed flush must not record a duration")
	}

	// Recovery: clear the hook, flush, and the success counters move.
	d.SetRebuildHook(nil)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Counters["dynamic.flushes"]; got != 1 {
		t.Fatalf("dynamic.flushes after recovery = %d, want 1", got)
	}
}
