package faults

import (
	"reflect"
	"testing"
)

func TestNewPlanValidation(t *testing.T) {
	for _, procs := range []int{0, -5} {
		if _, err := NewPlan(procs); err == nil {
			t.Errorf("NewPlan(%d) should return an error", procs)
		}
	}
	p, err := NewPlan(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Procs() != 4 || p.Seed() != -1 {
		t.Errorf("fresh plan: procs=%d seed=%d", p.Procs(), p.Seed())
	}
	for step := 0; step < 10; step++ {
		if p.LiveAt(step) != 4 {
			t.Fatalf("empty plan LiveAt(%d) = %d, want 4", step, p.LiveAt(step))
		}
	}
}

func TestCrashIsPermanentAndKeepsEarliest(t *testing.T) {
	p, _ := NewPlan(3)
	if err := p.Crash(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(1, 9); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		if !p.ProcLive(step, 1) {
			t.Fatalf("proc 1 should live before step 5 (step %d)", step)
		}
	}
	for step := 5; step < 20; step++ {
		if p.ProcLive(step, 1) {
			t.Fatalf("proc 1 should stay dead from step 5 (step %d)", step)
		}
	}
	if got := p.LiveAt(7); got != 2 {
		t.Errorf("LiveAt(7) = %d, want 2", got)
	}
	// The later crash must not have overridden the earlier one.
	if p.ProcLive(6, 1) {
		t.Error("Crash(1, 9) after Crash(1, 5) must keep the earlier step")
	}
}

func TestStallIsTransient(t *testing.T) {
	p, _ := NewPlan(2)
	if err := p.Stall(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	wantLive := map[int]bool{2: true, 3: false, 4: false, 5: true}
	for step, want := range wantLive {
		if got := p.ProcLive(step, 0); got != want {
			t.Errorf("ProcLive(%d, 0) = %v, want %v", step, got, want)
		}
	}
	if got := p.MinLive(10); got != 1 {
		t.Errorf("MinLive(10) = %d, want 1", got)
	}
	if err := p.Stall(0, 1, 0); err == nil {
		t.Error("zero-delay stall should be rejected")
	}
}

func TestCorruptReadXORsExactlyOnce(t *testing.T) {
	p, _ := NewPlan(2)
	if err := p.CorruptRead(1, 4, 0xff); err != nil {
		t.Fatal(err)
	}
	if got := p.PerturbRead(4, 1, 0, 0x0f); got != 0xf0 {
		t.Errorf("PerturbRead at the scheduled (step, proc) = %#x, want 0xf0", got)
	}
	if got := p.PerturbRead(4, 0, 0, 0x0f); got != 0x0f {
		t.Errorf("other processor must read clean, got %#x", got)
	}
	if got := p.PerturbRead(5, 1, 0, 0x0f); got != 0x0f {
		t.Errorf("other step must read clean, got %#x", got)
	}
	if err := p.CorruptRead(1, 4, 0); err == nil {
		t.Error("zero mask should be rejected")
	}
	if err := p.CorruptRead(7, 4, 1); err == nil {
		t.Error("out-of-range processor should be rejected")
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	opts := Options{CrashRate: 0.5, StragglerRate: 0.5, CorruptRate: 0.5, Horizon: 32}
	a, err := Random(99, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(99, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Errorf("same seed produced different plans:\n%v\n%v", a.Events(), b.Events())
	}
	c, err := Random(100, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) && len(a.Events()) > 0 {
		t.Error("different seeds produced identical non-empty plans")
	}
	for step := 0; step < 32; step++ {
		if a.LiveAt(step) != b.LiveAt(step) {
			t.Fatalf("LiveAt(%d) differs between identically seeded plans", step)
		}
	}
}

func TestRandomRejectsBadRates(t *testing.T) {
	bad := []Options{
		{CrashRate: -0.1},
		{CrashRate: 1.5},
		{StragglerRate: 2},
		{CorruptRate: -1},
	}
	for _, opts := range bad {
		if _, err := Random(1, 4, opts); err == nil {
			t.Errorf("Random with %+v should return an error", opts)
		}
	}
	if _, err := Random(1, 0, Options{}); err == nil {
		t.Error("Random with zero processors should return an error")
	}
}

func TestRandomRatesProduceEvents(t *testing.T) {
	// With rate 1 every processor gets one event of each kind.
	p, err := Random(7, 8, Options{CrashRate: 1, StragglerRate: 1, CorruptRate: 1, Horizon: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Events()); got != 3*8 {
		t.Errorf("expected 24 events at rate 1, got %d: %v", got, p.Events())
	}
	if p.MinLive(64) != 0 {
		t.Errorf("all-crash plan should reach zero live processors, MinLive = %d", p.MinLive(64))
	}
}
