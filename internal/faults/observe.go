package faults

import "fraccascade/internal/obs"

// Hook is the fault-injection surface this package instruments — the same
// method set as pram.FaultHook, declared consumer-side so faults does not
// import pram (mirroring how Census is declared by its consumers).
type Hook interface {
	ProcLive(step, proc int) bool
	PerturbRead(step, proc, addr int, v int64) int64
}

// ObservedHook wraps a fault hook and counts the fault events it actually
// delivers — the machine-facing view of a chaos run, complementing the
// plan's declared schedule (a crash declared at step 5 produces one skip
// event per subsequent step the processor was scheduled, and a corruption
// only counts if the read actually happened):
//
//	faults.skips             processor-steps suppressed (crashes + stalls)
//	faults.corrupted_reads   reads whose observed value was perturbed
//
// The wrapper is stateless beyond the atomic counters, so it is safe for
// the concurrent per-step calls pram.Machine makes, and one wrapped plan
// can drive many machines. A nil registry yields nil counters, making the
// wrapper transparent (the usual obs disabled-path contract).
type ObservedHook struct {
	inner    Hook
	skips    *obs.Counter
	corrupts *obs.Counter
}

// Observe wraps h with event counters registered in r. h must be non-nil.
func Observe(h Hook, r *obs.Registry) *ObservedHook {
	return &ObservedHook{
		inner:    h,
		skips:    r.Counter("faults.skips"),
		corrupts: r.Counter("faults.corrupted_reads"),
	}
}

// ProcLive implements the hook interface, counting suppressed
// processor-steps.
func (o *ObservedHook) ProcLive(step, proc int) bool {
	live := o.inner.ProcLive(step, proc)
	if !live {
		o.skips.Inc()
	}
	return live
}

// PerturbRead implements the hook interface, counting reads whose value
// was changed.
func (o *ObservedHook) PerturbRead(step, proc, addr int, v int64) int64 {
	w := o.inner.PerturbRead(step, proc, addr, v)
	if w != v {
		o.corrupts.Inc()
	}
	return w
}
