package faults

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
)

// DiskPlan is a deterministic disk fault schedule for snapshot
// persistence, the storage-side sibling of Plan. It implements the
// snapshot writer's filesystem seam (snapshot.FS — satisfied structurally,
// so this package stays free of a dependency on the code it sabotages) and
// perturbs the crash-safe write path:
//
//   - Torn writes and tail truncation shorten the temp file's contents
//     (a crash after a partial write, or an fsync the firmware lied
//     about) while the rename still goes through.
//   - Bit flips corrupt one bit of the written data (media rot, a torn
//     sector rewrite).
//   - Rename failures abort the atomic replace (a crash between the temp
//     write and the rename), leaving any previous snapshot intact.
//
// Faults are scheduled per call index — the i-th WriteTemp or the i-th
// Rename observed by the plan — either explicitly or pseudo-randomly from
// a seed, so every chaos run is replayable. The zero value is unusable;
// construct with NewDiskPlan or RandomDisk.
type DiskPlan struct {
	mu      sync.Mutex
	seed    int64
	writes  int
	renames int

	tornFrac   map[int]float64
	truncTail  map[int]int
	flipBit    map[int]int
	failRename map[int]bool
}

// NewDiskPlan returns an empty (fault-free) disk plan, to be populated
// with TornWrite, TruncateTail, BitFlip, and FailRename.
func NewDiskPlan() *DiskPlan {
	return &DiskPlan{
		seed:       -1,
		tornFrac:   make(map[int]float64),
		truncTail:  make(map[int]int),
		flipBit:    make(map[int]int),
		failRename: make(map[int]bool),
	}
}

// DiskOptions configures random disk plan generation. Rates are
// probabilities in [0, 1] applied independently per call index.
type DiskOptions struct {
	// TornRate tears the write, keeping a uniform 10–90% prefix.
	TornRate float64
	// TruncateRate cuts 1..16 bytes off the written tail.
	TruncateRate float64
	// FlipRate flips one pseudo-random bit of the written data.
	FlipRate float64
	// RenameFailRate fails the atomic replace.
	RenameFailRate float64
	// Horizon is the number of call indices covered (default 8).
	Horizon int
}

// RandomDisk generates a seeded pseudo-random disk plan; the same
// (seed, opts) pair always yields the identical schedule.
func RandomDisk(seed int64, opts DiskOptions) (*DiskPlan, error) {
	for _, rate := range []float64{opts.TornRate, opts.TruncateRate, opts.FlipRate, opts.RenameFailRate} {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faults: rates must lie in [0,1]: %+v", opts)
		}
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 8
	}
	p := NewDiskPlan()
	p.seed = seed
	rng := rand.New(rand.NewSource(seed))
	for call := 0; call < horizon; call++ {
		if opts.TornRate > 0 && rng.Float64() < opts.TornRate {
			p.tornFrac[call] = 0.1 + 0.8*rng.Float64()
		}
		if opts.TruncateRate > 0 && rng.Float64() < opts.TruncateRate {
			p.truncTail[call] = 1 + rng.Intn(16)
		}
		if opts.FlipRate > 0 && rng.Float64() < opts.FlipRate {
			p.flipBit[call] = rng.Intn(1 << 20)
		}
		if opts.RenameFailRate > 0 && rng.Float64() < opts.RenameFailRate {
			p.failRename[call] = true
		}
	}
	return p, nil
}

// Seed returns the generation seed, or -1 for explicitly built plans.
func (p *DiskPlan) Seed() int64 { return p.seed }

// TornWrite schedules the call-th WriteTemp to persist only the first
// frac of its data (0 < frac < 1); the rename still succeeds.
func (p *DiskPlan) TornWrite(call int, frac float64) error {
	if call < 0 || frac <= 0 || frac >= 1 {
		return fmt.Errorf("faults: bad torn write (call=%d, frac=%g)", call, frac)
	}
	p.tornFrac[call] = frac
	return nil
}

// TruncateTail schedules the call-th WriteTemp to lose its last n bytes.
func (p *DiskPlan) TruncateTail(call, n int) error {
	if call < 0 || n < 1 {
		return fmt.Errorf("faults: bad truncation (call=%d, n=%d)", call, n)
	}
	p.truncTail[call] = n
	return nil
}

// BitFlip schedules the call-th WriteTemp to flip one bit; bit is an
// absolute bit index reduced modulo the data length.
func (p *DiskPlan) BitFlip(call, bit int) error {
	if call < 0 || bit < 0 {
		return fmt.Errorf("faults: bad bit flip (call=%d, bit=%d)", call, bit)
	}
	p.flipBit[call] = bit
	return nil
}

// FailRename schedules the call-th Rename to fail.
func (p *DiskPlan) FailRename(call int) error {
	if call < 0 {
		return fmt.Errorf("faults: negative rename call %d", call)
	}
	p.failRename[call] = true
	return nil
}

// Injected reports the number of scheduled fault events.
func (p *DiskPlan) Injected() int {
	return len(p.tornFrac) + len(p.truncTail) + len(p.flipBit) + len(p.failRename)
}

// Writes reports how many WriteTemp calls the plan has observed.
func (p *DiskPlan) Writes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

// Events returns a human-readable, deterministic summary of the schedule,
// for logging alongside a replay seed.
func (p *DiskPlan) Events() []string {
	var out []string
	for call, frac := range p.tornFrac {
		out = append(out, fmt.Sprintf("torn-write call=%d frac=%.2f", call, frac))
	}
	for call, n := range p.truncTail {
		out = append(out, fmt.Sprintf("truncate call=%d bytes=%d", call, n))
	}
	for call, bit := range p.flipBit {
		out = append(out, fmt.Sprintf("bit-flip call=%d bit=%d", call, bit))
	}
	for call := range p.failRename {
		out = append(out, fmt.Sprintf("rename-fail call=%d", call))
	}
	sort.Strings(out)
	return out
}

func (p *DiskPlan) String() string {
	return fmt.Sprintf("faults.DiskPlan{seed:%d events:%d}", p.seed, p.Injected())
}

// sabotage applies this call's scheduled data corruptions.
func (p *DiskPlan) sabotage(call int, data []byte) []byte {
	out := data
	if frac, ok := p.tornFrac[call]; ok {
		out = out[:int(float64(len(out))*frac)]
	}
	if n, ok := p.truncTail[call]; ok {
		if n > len(out) {
			n = len(out)
		}
		out = out[:len(out)-n]
	}
	if bit, ok := p.flipBit[call]; ok && len(out) > 0 {
		// Copy before flipping: the slice may alias the caller's buffer.
		mut := append([]byte{}, out...)
		idx := (bit / 8) % len(mut)
		mut[idx] ^= 1 << (bit % 8)
		out = mut
	}
	return out
}

// WriteTemp implements the snapshot filesystem seam: it performs a real
// temp-file write of the (possibly sabotaged) data so the downstream
// rename and load paths run against the actual filesystem.
func (p *DiskPlan) WriteTemp(dir, pattern string, data []byte) (string, error) {
	p.mu.Lock()
	call := p.writes
	p.writes++
	data = p.sabotage(call, data)
	p.mu.Unlock()
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	name := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(name)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(name)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(name)
		return "", err
	}
	return name, nil
}

// Rename implements the snapshot filesystem seam with scheduled failures.
func (p *DiskPlan) Rename(oldpath, newpath string) error {
	p.mu.Lock()
	call := p.renames
	p.renames++
	fail := p.failRename[call]
	p.mu.Unlock()
	if fail {
		return fmt.Errorf("faults: injected rename failure (call %d)", call)
	}
	return os.Rename(oldpath, newpath)
}

// SyncDir implements the snapshot filesystem seam.
func (p *DiskPlan) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Remove implements the snapshot filesystem seam.
func (p *DiskPlan) Remove(path string) error { return os.Remove(path) }
