package faults

import (
	"testing"

	"fraccascade/internal/obs"
)

// TestObservedHookCountsDeliveredEvents wraps a plan and checks the
// counters track events actually delivered, not merely declared: a crash
// counts once per suppressed step, a corruption only when the read fires.
func TestObservedHookCountsDeliveredEvents(t *testing.T) {
	plan, err := NewPlan(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Crash(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := plan.CorruptRead(2, 3, 0xFF); err != nil { // proc 2, step 3
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	h := Observe(plan, r)

	// Drive the hook as a machine would across 5 steps × 4 processors.
	for step := 0; step < 5; step++ {
		for proc := 0; proc < 4; proc++ {
			if !h.ProcLive(step, proc) {
				continue
			}
			h.PerturbRead(step, proc, 7, 100)
		}
	}
	snap := r.Snapshot()
	// Processor 1 dies at step 2 → suppressed at steps 2, 3, 4.
	if got := snap.Counters["faults.skips"]; got != 3 {
		t.Fatalf("faults.skips = %d, want 3", got)
	}
	// The corruption fires exactly once (processor 2's read at step 3).
	if got := snap.Counters["faults.corrupted_reads"]; got != 1 {
		t.Fatalf("faults.corrupted_reads = %d, want 1", got)
	}
}

// TestObservedHookDisabled: with a nil registry the wrapper is transparent
// and never panics (nil-handle contract).
func TestObservedHookDisabled(t *testing.T) {
	plan, err := NewPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Crash(0, 0); err != nil {
		t.Fatal(err)
	}
	h := Observe(plan, nil)
	if h.ProcLive(0, 0) {
		t.Fatal("wrapper changed ProcLive semantics")
	}
	if got := h.PerturbRead(0, 1, 0, 5); got != 5 {
		t.Fatalf("wrapper changed PerturbRead semantics: %d", got)
	}
}
