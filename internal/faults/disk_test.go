package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func readBack(t *testing.T, p *DiskPlan, data []byte) []byte {
	t.Helper()
	dir := t.TempDir()
	tmp, err := p.WriteTemp(dir, "x-*.tmp", data)
	if err != nil {
		t.Fatalf("WriteTemp: %v", err)
	}
	dst := filepath.Join(dir, "out")
	if err := p.Rename(tmp, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := p.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return got
}

func TestDiskPlanFaultKinds(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5}, 100)

	p := NewDiskPlan()
	if err := p.TornWrite(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, p, data); len(got) != 50 {
		t.Fatalf("torn write kept %d bytes, want 50", len(got))
	}

	p = NewDiskPlan()
	if err := p.TruncateTail(0, 7); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, p, data); len(got) != 93 {
		t.Fatalf("truncation kept %d bytes, want 93", len(got))
	}

	p = NewDiskPlan()
	if err := p.BitFlip(0, 8*13+2); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, p, data)
	if len(got) != len(data) {
		t.Fatalf("bit flip changed length")
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
			if got[i] != data[i]^(1<<2) || i != 13 {
				t.Fatalf("wrong flip at byte %d: %#x", i, got[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
	// The caller's buffer must be untouched.
	if !bytes.Equal(data, bytes.Repeat([]byte{0xA5}, 100)) {
		t.Fatalf("bit flip mutated the caller's buffer")
	}

	p = NewDiskPlan()
	if err := p.FailRename(0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tmp, err := p.WriteTemp(dir, "x-*.tmp", data)
	if err != nil {
		t.Fatalf("WriteTemp: %v", err)
	}
	if err := p.Rename(tmp, filepath.Join(dir, "out")); err == nil {
		t.Fatalf("scheduled rename did not fail")
	}
	// A later, unscheduled rename succeeds.
	if err := p.Rename(tmp, filepath.Join(dir, "out")); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

func TestDiskPlanSchedulesByCall(t *testing.T) {
	p := NewDiskPlan()
	if err := p.TornWrite(1, 0.2); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{1}, 10)
	if got := readBack(t, p, data); len(got) != 10 {
		t.Fatalf("call 0 was sabotaged")
	}
	if got := readBack(t, p, data); len(got) != 2 {
		t.Fatalf("call 1 kept %d bytes, want 2", len(got))
	}
	if p.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2", p.Writes())
	}
}

func TestDiskPlanValidation(t *testing.T) {
	p := NewDiskPlan()
	bad := []error{
		p.TornWrite(-1, 0.5),
		p.TornWrite(0, 0),
		p.TornWrite(0, 1),
		p.TruncateTail(0, 0),
		p.BitFlip(-1, 0),
		p.FailRename(-1),
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("case %d: bad schedule accepted", i)
		}
	}
	if _, err := RandomDisk(1, DiskOptions{TornRate: 1.5}); err == nil {
		t.Fatalf("out-of-range rate accepted")
	}
}

func TestRandomDiskDeterministic(t *testing.T) {
	opts := DiskOptions{TornRate: 0.4, TruncateRate: 0.4, FlipRate: 0.4, RenameFailRate: 0.3, Horizon: 16}
	a, err := RandomDisk(99, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomDisk(99, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same seed produced different schedules")
	}
	if a.Injected() == 0 {
		t.Fatalf("no events at these rates (seed-sensitive fixture broke)")
	}
	c, err := RandomDisk(100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatalf("different seeds produced identical schedules")
	}
	if a.Seed() != 99 || NewDiskPlan().Seed() != -1 {
		t.Fatalf("seed accessors wrong")
	}
}
