// Package faults provides deterministic, seeded fault injection for the
// PRAM substrate and the cooperative search algorithms.
//
// The paper's bounds assume p perfectly reliable, lock-step processors. A
// production deployment does not: processors crash mid-computation, stall
// behind their peers, and occasionally return corrupted reads. This package
// makes those failures a first-class, *replayable* input: a Plan is a
// declared schedule of fault events, generated either explicitly (one event
// at a time, for tests that need a specific scenario) or pseudo-randomly
// from a seed (for chaos sweeps). Because a Plan is pure data — no clocks,
// no global randomness — any run that misbehaved under a plan can be
// re-executed under the identical fault schedule by reusing the seed.
//
// A Plan plugs into the machinery at two levels:
//
//   - pram.Machine accepts a Plan as its FaultHook: crashed or stalled
//     processors skip their step bodies (their buffered writes are lost,
//     exactly like a processor that died before the barrier), and reads can
//     be transiently corrupted (a single-step XOR perturbation).
//   - The analytic searches (core.SearchExplicitDegraded and friends)
//     consult a Plan as a Census: LiveAt(step) reports how many processor
//     slots survive at a synchronous step, which is the signal the
//     degrading search uses to re-derive its substructure for p' < p.
//
// The fault model is crash-stop with transient stalls: a crashed processor
// never returns; a straggler returns after its delay. Memory is reliable
// at the cell level (writes that committed stay committed); only in-flight
// reads are corrupted. This matches the asynchronous-adversary models used
// by work on resilient search structures (see PAPERS.md: Gilbert–Lim,
// parallel finger search under asynchrony).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
)

// stall is a half-open inactivity interval [From, Until) for one processor.
type stall struct {
	proc        int
	from, until int
}

// corruption is a transient XOR perturbation of every read issued by one
// processor during one step.
type corruption struct {
	proc, step int
	mask       int64
}

// Plan is a deterministic fault schedule over a fixed processor budget.
// The zero value is a no-fault plan for zero processors; construct with
// NewPlan or Random.
type Plan struct {
	procs     int
	seed      int64
	crashStep []int // per processor: step at which it dies, or -1
	stalls    []stall
	corrupt   map[[2]int]int64 // (step, proc) -> XOR mask

	// liveCache memoises LiveAt by step (plans are immutable after build).
	liveCache map[int]int
}

// NewPlan returns an empty (fault-free) plan for procs processors, to be
// populated with Crash, Stall, and CorruptRead. procs must be positive.
func NewPlan(procs int) (*Plan, error) {
	if procs < 1 {
		return nil, fmt.Errorf("faults: processor count must be positive, got %d", procs)
	}
	p := &Plan{procs: procs, seed: -1}
	p.crashStep = make([]int, procs)
	for i := range p.crashStep {
		p.crashStep[i] = -1
	}
	p.corrupt = make(map[[2]int]int64)
	p.liveCache = make(map[int]int)
	return p, nil
}

// Options configures random plan generation. All rates are probabilities
// in [0, 1]; zero values inject nothing of that kind.
type Options struct {
	// CrashRate is the per-processor probability of a permanent crash at a
	// uniformly random step in [0, Horizon).
	CrashRate float64
	// StragglerRate is the per-processor probability of one stall interval
	// starting at a uniformly random step, lasting 1..MaxStall steps.
	StragglerRate float64
	// MaxStall bounds the straggler delay in steps (default 4).
	MaxStall int
	// CorruptRate is the per-processor probability of one transient
	// read-corruption event at a uniformly random step.
	CorruptRate float64
	// Horizon is the number of steps the schedule covers (default 64).
	// Crashes scheduled inside the horizon persist beyond it.
	Horizon int
}

// Random generates a seeded pseudo-random plan. The same (seed, procs,
// opts) triple always yields the identical plan, so a failure observed
// under a random plan is replayed by printing the seed.
func Random(seed int64, procs int, opts Options) (*Plan, error) {
	p, err := NewPlan(procs)
	if err != nil {
		return nil, err
	}
	if opts.CrashRate < 0 || opts.CrashRate > 1 ||
		opts.StragglerRate < 0 || opts.StragglerRate > 1 ||
		opts.CorruptRate < 0 || opts.CorruptRate > 1 {
		return nil, fmt.Errorf("faults: rates must lie in [0,1]: %+v", opts)
	}
	p.seed = seed
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 64
	}
	maxStall := opts.MaxStall
	if maxStall <= 0 {
		maxStall = 4
	}
	rng := rand.New(rand.NewSource(seed))
	for proc := 0; proc < procs; proc++ {
		if opts.CrashRate > 0 && rng.Float64() < opts.CrashRate {
			p.crashStep[proc] = rng.Intn(horizon)
		}
		if opts.StragglerRate > 0 && rng.Float64() < opts.StragglerRate {
			from := rng.Intn(horizon)
			p.stalls = append(p.stalls, stall{proc: proc, from: from, until: from + 1 + rng.Intn(maxStall)})
		}
		if opts.CorruptRate > 0 && rng.Float64() < opts.CorruptRate {
			// A non-zero mask guarantees the read really is perturbed.
			mask := rng.Int63() | 1
			p.corrupt[[2]int{rng.Intn(horizon), proc}] = mask
		}
	}
	return p, nil
}

// Seed returns the generation seed, or -1 for explicitly built plans.
func (p *Plan) Seed() int64 { return p.seed }

// Procs returns the processor budget the plan covers.
func (p *Plan) Procs() int { return p.procs }

// Crash schedules processor proc to die permanently at step (it still
// participates in steps < step). Scheduling a second crash for the same
// processor keeps the earlier one.
func (p *Plan) Crash(proc, step int) error {
	if err := p.checkProc(proc); err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("faults: negative crash step %d", step)
	}
	if p.crashStep[proc] < 0 || step < p.crashStep[proc] {
		p.crashStep[proc] = step
	}
	p.liveCache = make(map[int]int)
	return nil
}

// Stall makes processor proc inactive for delay steps starting at step.
func (p *Plan) Stall(proc, step, delay int) error {
	if err := p.checkProc(proc); err != nil {
		return err
	}
	if step < 0 || delay < 1 {
		return fmt.Errorf("faults: bad stall (step=%d, delay=%d)", step, delay)
	}
	p.stalls = append(p.stalls, stall{proc: proc, from: step, until: step + delay})
	p.liveCache = make(map[int]int)
	return nil
}

// CorruptRead XORs mask into every value processor proc reads during step.
// The corruption is transient: the underlying memory cell is untouched.
func (p *Plan) CorruptRead(proc, step int, mask int64) error {
	if err := p.checkProc(proc); err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("faults: negative corruption step %d", step)
	}
	if mask == 0 {
		return fmt.Errorf("faults: zero corruption mask is a no-op")
	}
	p.corrupt[[2]int{step, proc}] = mask
	return nil
}

func (p *Plan) checkProc(proc int) error {
	if proc < 0 || proc >= p.procs {
		return fmt.Errorf("faults: processor %d outside [0, %d)", proc, p.procs)
	}
	return nil
}

// ProcLive reports whether processor proc participates in step. It is the
// pram.FaultHook liveness query; Plan is immutable during execution, so
// concurrent calls are safe.
func (p *Plan) ProcLive(step, proc int) bool {
	if proc < 0 || proc >= p.procs {
		return true // processors outside the plan's budget are unmanaged
	}
	if cs := p.crashStep[proc]; cs >= 0 && step >= cs {
		return false
	}
	for _, s := range p.stalls {
		if s.proc == proc && s.from <= step && step < s.until {
			return false
		}
	}
	return true
}

// PerturbRead returns the possibly corrupted value of a read of addr by
// proc at step. It is the pram.FaultHook read interceptor.
func (p *Plan) PerturbRead(step, proc, addr int, v int64) int64 {
	if mask, ok := p.corrupt[[2]int{step, proc}]; ok {
		return v ^ mask
	}
	return v
}

// LiveAt returns the number of processors participating at step — the
// census a degrading cooperative search consults at each barrier.
func (p *Plan) LiveAt(step int) int {
	if n, ok := p.liveCache[step]; ok {
		return n
	}
	n := 0
	for proc := 0; proc < p.procs; proc++ {
		if p.ProcLive(step, proc) {
			n++
		}
	}
	p.liveCache[step] = n
	return n
}

// MinLive returns the minimum of LiveAt over steps [0, horizon).
func (p *Plan) MinLive(horizon int) int {
	min := p.procs
	for s := 0; s < horizon; s++ {
		if n := p.LiveAt(s); n < min {
			min = n
		}
	}
	return min
}

// Events returns a human-readable, deterministic summary of the schedule,
// for logging alongside a replay seed.
func (p *Plan) Events() []string {
	var out []string
	for proc, cs := range p.crashStep {
		if cs >= 0 {
			out = append(out, fmt.Sprintf("crash proc=%d step=%d", proc, cs))
		}
	}
	for _, s := range p.stalls {
		out = append(out, fmt.Sprintf("stall proc=%d steps=[%d,%d)", s.proc, s.from, s.until))
	}
	for k, mask := range p.corrupt {
		out = append(out, fmt.Sprintf("corrupt proc=%d step=%d mask=%#x", k[1], k[0], mask))
	}
	sort.Strings(out)
	return out
}

func (p *Plan) String() string {
	return fmt.Sprintf("faults.Plan{procs:%d seed:%d events:%d}", p.procs, p.seed, len(p.Events()))
}
