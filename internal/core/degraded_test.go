package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/faults"
	"fraccascade/internal/tree"
)

// degradedStepBound is the asserted constant factor on the Theorem 1 shape
// under degradation: steps ≤ bound·(log n / log(p′+1)) + slack, where p′ is
// the smallest surviving processor count. The additive slack absorbs the
// O(1) hop constants and the substructure-switch realignment descents.
func degradedStepBound(logN, minLive int) int {
	shape := float64(logN) / math.Log2(float64(minLive)+1)
	return int(6*shape) + 16
}

func randomLeafPath(tr *tree.Tree, rng *rand.Rand) []tree.NodeID {
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < tr.N(); v++ {
		if tr.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	return tr.RootPath(leaves[rng.Intn(len(leaves))])
}

// TestDegradedMatchesOracleManyTrees is the acceptance property test: on
// ≥1000 randomized trees, under a seeded fault plan leaving at least one
// live processor, the degraded search returns exactly the sequential
// fractional-cascading walk's answers and stays within a constant factor
// of the (log n)/log p′ step shape.
func TestDegradedMatchesOracleManyTrees(t *testing.T) {
	trees := 1000
	if testing.Short() {
		trees = 100
	}
	for trial := 0; trial < trees; trial++ {
		seed := int64(trial) + 1
		leaves := 1 << (2 + trial%4) // 4..32 leaves
		st, _, rng := buildStructure(t, leaves, 200, seed, Config{})
		tr := st.Tree()

		p := 2 + rng.Intn(63)
		plan, err := faults.Random(seed, p, faults.Options{
			CrashRate:     0.4,
			StragglerRate: 0.3,
			MaxStall:      3,
			Horizon:       32,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.MinLive(64) < 1 {
			continue // plans killing everyone are covered by TestDegradedAllDead
		}

		path := randomLeafPath(tr, rng)
		for q := 0; q < 3; q++ {
			y := catalog.Key(rng.Intn(900))
			got, ds, err := st.SearchExplicitDegraded(y, path, p, plan)
			if err != nil {
				t.Fatalf("trial %d seed %d p %d: %v\nplan: %v", trial, seed, p, err, plan.Events())
			}
			want, err := st.Cascade().SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
					t.Fatalf("trial %d seed %d p %d y %d node %d: degraded (%d,%d) != oracle (%d,%d)\nplan: %v",
						trial, seed, p, y, path[i], got[i].Key, got[i].Payload, want[i].Key, want[i].Payload, plan.Events())
				}
			}
			if ds.MinLiveP < 1 || ds.MinLiveP > p {
				t.Fatalf("trial %d: MinLiveP = %d outside [1, %d]", trial, ds.MinLiveP, p)
			}
			if bound := degradedStepBound(st.Params().LogN, ds.MinLiveP); ds.Steps > bound {
				t.Fatalf("trial %d seed %d: %d steps exceeds degraded bound %d (logN=%d, minLive=%d)\nplan: %v",
					trial, seed, ds.Steps, bound, st.Params().LogN, ds.MinLiveP, plan.Events())
			}
		}
	}
}

// TestDegradedNoFaultsMatchesPlain: with a fault-free plan (or nil census)
// the degraded search is exactly SearchExplicit.
func TestDegradedNoFaultsMatchesPlain(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1500, 7, Config{})
	plan, err := faults.NewPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		path := randomLeafPath(st.Tree(), rng)
		y := catalog.Key(rng.Intn(6000))
		plain, ps, err := st.SearchExplicit(y, path, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, census := range []Census{nil, plan} {
			got, ds, err := st.SearchExplicitDegraded(y, path, 16, census)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Steps != ps.Steps || ds.Redrives != 0 || ds.MinLiveP != 16 {
				t.Fatalf("fault-free degraded stats %+v diverge from plain %+v", ds, ps)
			}
			for i := range plain {
				if got[i] != plain[i] {
					t.Fatalf("fault-free degraded result %d differs", i)
				}
			}
		}
	}
}

// TestDegradedCrashToSingleSurvivor: a plan that kills all but one
// processor mid-search must still answer correctly, re-deriving down to
// the p′ = 1 substructure.
func TestDegradedCrashToSingleSurvivor(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<6, 4000, 11, Config{})
	p := 1 << 10
	plan, err := faults.NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 1; proc < p; proc++ {
		if err := plan.Crash(proc, 2); err != nil {
			t.Fatal(err)
		}
	}
	sawRedrive := false
	for q := 0; q < 30; q++ {
		path := randomLeafPath(st.Tree(), rng)
		y := catalog.Key(rng.Intn(16000))
		got, ds, err := st.SearchExplicitDegraded(y, path, p, plan)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.Cascade().SearchPath(y, path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("y %d node %d: degraded %d != oracle %d", y, path[i], got[i].Key, want[i].Key)
			}
		}
		if ds.MinLiveP != 1 {
			t.Fatalf("MinLiveP = %d, want 1", ds.MinLiveP)
		}
		if ds.Redrives > 0 {
			sawRedrive = true
		}
	}
	if !sawRedrive {
		t.Error("mass crash from p=1024 to p=1 never re-derived the substructure")
	}
}

// TestDegradedAllDead: a plan with zero survivors is an error, not a wrong
// answer.
func TestDegradedAllDead(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<4, 500, 13, Config{})
	p := 8
	plan, err := faults.NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < p; proc++ {
		if err := plan.Crash(proc, 0); err != nil {
			t.Fatal(err)
		}
	}
	path := randomLeafPath(st.Tree(), rng)
	if _, _, err := st.SearchExplicitDegraded(100, path, p, plan); err == nil {
		t.Error("search with zero live processors should fail")
	}

	// Death mid-search (after step 3) must also surface as an error.
	late, err := faults.NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < p; proc++ {
		if err := late.Crash(proc, 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.SearchExplicitDegraded(100, path, p, late); err == nil {
		t.Error("search outliving every processor should fail")
	}
}

// TestSearchExplicitContext: background context matches plain; cancelled
// context fails with context.Canceled; deadline in the past likewise.
func TestSearchExplicitContext(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1500, 17, Config{})
	path := randomLeafPath(st.Tree(), rng)
	y := catalog.Key(rng.Intn(6000))

	got, gs, err := st.SearchExplicitContext(context.Background(), y, path, 32)
	if err != nil {
		t.Fatal(err)
	}
	want, ws, err := st.SearchExplicit(y, path, 32)
	if err != nil {
		t.Fatal(err)
	}
	if gs != ws {
		t.Errorf("context stats %+v != plain %+v", gs, ws)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs", i)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := st.SearchExplicitContext(cancelled, y, path, 32); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled search error = %v, want context.Canceled", err)
	}
	if _, _, err := st.SearchExplicitDegradedContext(cancelled, y, path, 32, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled degraded search error = %v, want context.Canceled", err)
	}
}
