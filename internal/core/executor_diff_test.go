package core

import (
	"fmt"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/faults"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// pramOutcome captures everything observable about one SearchExplicitPRAM
// run for cross-executor comparison, including a host-side panic (possible
// under fault injection when a hop window loses its winner), so that both
// executors can be required to fail identically, not just succeed
// identically.
type pramOutcome struct {
	results []string // Key/Payload per path node, "" when errored
	report  PRAMSearchReport
	err     string
	panicMsg string
	time    int
	work    int64
	skipped int64
	peak    int
	profile string
	phases  map[string]pram.PhaseStats
}

func runSearchPRAM(st *Structure, x pram.Executor, hook pram.FaultHook, y catalog.Key, path []tree.NodeID, p int) (out pramOutcome) {
	if hook != nil {
		x.SetFaultHook(hook)
	}
	prof := pram.NewProfile()
	x.SetProfile(prof)
	func() {
		defer func() {
			if r := recover(); r != nil {
				out.panicMsg = fmt.Sprint(r)
			}
		}()
		results, rep, err := st.SearchExplicitPRAM(x, y, path, p)
		out.report = rep
		if err != nil {
			out.err = err.Error()
			return
		}
		for _, r := range results {
			out.results = append(out.results, fmt.Sprintf("%d/%d/%d", r.Node, r.Key, r.Payload))
		}
	}()
	out.time = x.Time()
	out.work = x.Work()
	out.skipped = x.Skipped()
	out.peak = x.PeakActive()
	out.profile = prof.String()
	out.phases = make(map[string]pram.PhaseStats)
	for _, pr := range prof.Phases() {
		out.phases[pr.Label] = pr.PhaseStats
	}
	return out
}

func compareOutcomes(t *testing.T, label string, a, b pramOutcome) {
	t.Helper()
	if a.err != b.err || a.panicMsg != b.panicMsg {
		t.Fatalf("%s: failure mismatch: err %q/%q panic %q/%q", label, a.err, b.err, a.panicMsg, b.panicMsg)
	}
	if a.time != b.time || a.work != b.work || a.skipped != b.skipped || a.peak != b.peak {
		t.Fatalf("%s: cost mismatch: time %d/%d work %d/%d skipped %d/%d peak %d/%d",
			label, a.time, b.time, a.work, b.work, a.skipped, b.skipped, a.peak, b.peak)
	}
	if a.report != b.report {
		t.Fatalf("%s: report mismatch: %+v vs %+v", label, a.report, b.report)
	}
	if len(a.results) != len(b.results) {
		t.Fatalf("%s: result lengths %d vs %d", label, len(a.results), len(b.results))
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			t.Fatalf("%s: result %d differs: %s vs %s", label, i, a.results[i], b.results[i])
		}
	}
	if a.profile != b.profile {
		t.Fatalf("%s: phase profiles differ:\n%s\nvs\n%s", label, a.profile, b.profile)
	}
}

// checkPhaseDecomposition ties the profiler to the search's own step
// report: the sum of phase steps is exactly the machine's Time(), and each
// phase equals the corresponding report component.
func checkPhaseDecomposition(t *testing.T, label string, o pramOutcome) {
	t.Helper()
	sum := 0
	for _, ps := range o.phases {
		sum += ps.Steps
	}
	if sum != o.time {
		t.Fatalf("%s: phase steps sum to %d, Time is %d:\n%s", label, sum, o.time, o.profile)
	}
	if got := o.phases["root-coop"].Steps; got != o.report.RootSteps {
		t.Fatalf("%s: root-coop phase %d != RootSteps %d", label, got, o.report.RootSteps)
	}
	if got := o.phases["hop-descent"].Steps; got != o.report.HopSteps {
		t.Fatalf("%s: hop-descent phase %d != HopSteps %d", label, got, o.report.HopSteps)
	}
	if got := o.phases["seq-tail"].Steps; got != o.report.SeqSteps {
		t.Fatalf("%s: seq-tail phase %d != SeqSteps %d", label, got, o.report.SeqSteps)
	}
}

// TestSearchExplicitPRAMExecutorDifferential is the end-to-end half of the
// executor harness: complete cooperative searches must produce identical
// results, step reports, work, and peak processor counts on the sequential
// Machine, the goroutine-barrier Machine, and the VirtualMachine. With
// this in place the E17 experiment numbers are executor-invariant by
// construction and the benchmarks can default to the fast virtual
// executor.
func TestSearchExplicitPRAMExecutorDifferential(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1500, 430, Config{})
	tr := st.Tree()
	oracle := st.Cascade()
	for _, p := range []int{1, 4, 17, 300} {
		for q := 0; q < 8; q++ {
			leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<5))
			path := tr.RootPath(leaf)
			y := catalog.Key(rng.Intn(8000))
			label := fmt.Sprintf("p=%d q=%d y=%d", p, q, y)

			seq := runSearchPRAM(st, pram.MustNew(pram.CREW, 1<<20), nil, y, path, p)
			barrier := pram.MustNew(pram.CREW, 1<<20)
			barrier.SetConcurrent(true)
			conc := runSearchPRAM(st, barrier, nil, y, path, p)
			virt := runSearchPRAM(st, pram.MustNewVirtual(pram.CREW, 1<<20), nil, y, path, p)

			compareOutcomes(t, label+"/seq-vs-barrier", seq, conc)
			compareOutcomes(t, label+"/seq-vs-virtual", seq, virt)
			if seq.err != "" || seq.panicMsg != "" {
				t.Fatalf("%s: fault-free search failed: err=%q panic=%q", label, seq.err, seq.panicMsg)
			}
			checkPhaseDecomposition(t, label, seq)
			// And the shared answer must be the true one.
			want, err := oracle.SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				got := fmt.Sprintf("%d/%d/%d", w.Node, w.Key, w.Payload)
				if seq.results[i] != got {
					t.Fatalf("%s: node %d: executors agree on %s but oracle says %s", label, path[i], seq.results[i], got)
				}
			}
		}
	}
}

// TestSearchExplicitPRAMFaultExecutorDifferential replays seeded fault
// plans through end-to-end machine searches on both the barrier and the
// virtual executor: the hook must fire at the same (step, processor)
// points on both, so Skipped(), the step report, and the outcome — answers
// when the search survives, the identical error or host failure when it
// does not — must match exactly. Plans here are stall-only: a stalled
// processor misses steps exactly like a crashed one, but the probe
// addresses the search derives from read-back values stay in range, so
// the differential is well-defined for every seed.
//
// Alongside each plan the analytic degraded search runs under the same
// census; it plans around the failures instead of replaying them, so its
// answers must equal the fault-free oracle whenever one processor
// survives — tying the machine-level skip accounting to the
// degraded-search outcome for the same fault plan.
func TestSearchExplicitPRAMFaultExecutorDifferential(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1500, 431, Config{})
	tr := st.Tree()
	oracle := st.Cascade()
	var totalSkipped int64
	for seed := int64(1); seed <= 12; seed++ {
		p := []int{4, 16, 64}[int(seed)%3]
		plan, err := faults.Random(seed, p, faults.Options{
			StragglerRate: 0.3,
			MaxStall:      4,
			Horizon:       40,
		})
		if err != nil {
			t.Fatal(err)
		}
		leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<5))
		path := tr.RootPath(leaf)
		y := catalog.Key(rng.Intn(8000))
		label := fmt.Sprintf("seed=%d p=%d y=%d", seed, p, y)
		t.Logf("%s", label)

		barrier := pram.MustNew(pram.CREW, 1<<20)
		barrier.SetConcurrent(true)
		conc := runSearchPRAM(st, barrier, plan, y, path, p)
		virt := runSearchPRAM(st, pram.MustNewVirtual(pram.CREW, 1<<20), plan, y, path, p)
		compareOutcomes(t, label, conc, virt)
		totalSkipped += virt.skipped

		// Degraded search under the same plan-as-census: answers equal the
		// fault-free oracle as long as a processor survives.
		if plan.MinLive(40) >= 1 {
			got, _, err := st.SearchExplicitDegraded(y, path, p, plan)
			if err != nil {
				t.Fatalf("%s: degraded search: %v", label, err)
			}
			want, err := oracle.SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
					t.Fatalf("%s: degraded result %d = (%d,%d), oracle (%d,%d)",
						label, i, got[i].Key, got[i].Payload, want[i].Key, want[i].Payload)
				}
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("no processor-steps were skipped across any seed: the fault plans never fired and the differential is vacuous")
	}
}
