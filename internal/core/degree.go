package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// DegreeDSearcher implements Theorem 3: cooperative search in trees of
// degree d by expanding each level into ⌈log d⌉ binary levels, paying a
// log d factor in search time. Original catalogs sit at the images of the
// original nodes; auxiliary splitter nodes carry empty catalogs.
type DegreeDSearcher struct {
	orig *tree.Tree
	exp  *tree.Tree
	fwd  []tree.NodeID // original -> expanded
	rev  []tree.NodeID // expanded -> original (Nil at auxiliary nodes)
	st   *Structure
}

// BuildDegreeD preprocesses a degree-d tree per Theorem 3.
func BuildDegreeD(t *tree.Tree, native []catalog.Catalog, cfg Config) (*DegreeDSearcher, error) {
	if len(native) != t.N() {
		return nil, fmt.Errorf("core: %d catalogs for %d nodes", len(native), t.N())
	}
	exp, fwd, rev, err := tree.ExpandDegree(t)
	if err != nil {
		return nil, err
	}
	expNative := make([]catalog.Catalog, exp.N())
	for v := range expNative {
		if o := rev[v]; o != tree.Nil {
			expNative[v] = native[o]
		} else {
			expNative[v] = catalog.Empty()
		}
	}
	st, err := Build(exp, expNative, cfg)
	if err != nil {
		return nil, err
	}
	return &DegreeDSearcher{orig: t, exp: exp, fwd: fwd, rev: rev, st: st}, nil
}

// Structure exposes the underlying cooperative search structure over the
// expanded binary tree.
func (ds *DegreeDSearcher) Structure() *Structure { return ds.st }

// Expanded returns the binary expansion of the original tree.
func (ds *DegreeDSearcher) Expanded() *tree.Tree { return ds.exp }

// SearchExplicit searches along a path of original-tree nodes, returning
// one result per original path node (auxiliary nodes are searched too —
// they contribute the log d time factor — but filtered from the output).
func (ds *DegreeDSearcher) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, Stats, error) {
	if err := ds.orig.ValidatePath(path); err != nil {
		return nil, Stats{}, err
	}
	epath := tree.ExpandPath(ds.exp, ds.fwd, path)
	expResults, stats, err := ds.st.SearchExplicit(y, epath, p)
	if err != nil {
		return nil, stats, err
	}
	out := make([]cascade.Result, 0, len(path))
	for i, r := range expResults {
		if o := ds.rev[epath[i]]; o != tree.Nil {
			r.Node = o
			out = append(out, r)
		}
	}
	return out, stats, nil
}

// SearchLongPath is the Theorem 3 variant of the Theorem 2 long-path
// search on degree-d trees: O((log n)/log p + k·(log d)/(p^{1−ε}·log p)).
func (ds *DegreeDSearcher) SearchLongPath(y catalog.Key, path []tree.NodeID, p int, eps float64) ([]cascade.Result, Stats, error) {
	if err := ds.orig.ValidatePath(path); err != nil {
		return nil, Stats{}, err
	}
	epath := tree.ExpandPath(ds.exp, ds.fwd, path)
	expResults, stats, err := ds.st.SearchLongPath(y, epath, p, eps)
	if err != nil {
		return nil, stats, err
	}
	out := make([]cascade.Result, 0, len(path))
	for i, r := range expResults {
		if o := ds.rev[epath[i]]; o != tree.Nil {
			r.Node = o
			out = append(out, r)
		}
	}
	return out, stats, nil
}
