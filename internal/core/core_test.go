package core

import (
	"math/rand"
	"testing"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// randCatalogs builds random native catalogs with skewed sizes.
func randCatalogs(t *tree.Tree, totalTarget int, rng *rand.Rand) []catalog.Catalog {
	n := t.N()
	cats := make([]catalog.Catalog, n)
	for v := 0; v < n; v++ {
		var size int
		switch rng.Intn(4) {
		case 0:
			size = 0
		case 1:
			size = rng.Intn(4)
		case 2:
			size = rng.Intn(2*totalTarget/(n+1) + 1)
		default:
			size = rng.Intn(totalTarget/4 + 1)
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(totalTarget * 4))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		payloads := make([]int32, len(keys))
		for i := range payloads {
			payloads[i] = int32(v)*10000 + int32(i)
		}
		cats[v] = catalog.MustFromKeys(keys, payloads)
	}
	return cats
}

func buildStructure(tb testing.TB, leaves, total int, seed int64, cfg Config) (*Structure, []catalog.Catalog, *rand.Rand) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	cats := randCatalogs(bt, total, rng)
	st, err := Build(bt, cats, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return st, cats, rng
}

func TestParamsDerivation(t *testing.T) {
	p := deriveParams(3, 1<<16)
	if p.F != 4 {
		t.Errorf("F = %d, want 4", p.F)
	}
	// Alpha = 1/(1+2*log2(4)) = 1/5.
	if p.Alpha < 0.199 || p.Alpha > 0.201 {
		t.Errorf("Alpha = %v, want 0.2", p.Alpha)
	}
	if p.LogN != 16 {
		t.Errorf("LogN = %d, want 16", p.LogN)
	}
	if p.NumSubs != 4 {
		t.Errorf("NumSubs = %d, want ceil(log2(16)) = 4", p.NumSubs)
	}
	// Hop heights are non-decreasing in i.
	prev := 0
	for i := 0; i < p.NumSubs; i++ {
		h := p.HopHeight(i)
		if h < 1 || h < prev {
			t.Errorf("HopHeight(%d) = %d (prev %d)", i, h, prev)
		}
		prev = h
	}
	// SampleStride = 2*F^h.
	if s := p.SampleStride(1); s != 8 {
		t.Errorf("SampleStride(1) = %d, want 8", s)
	}
	if s := p.SampleStride(3); s != 128 {
		t.Errorf("SampleStride(3) = %d, want 128", s)
	}
}

func TestSubstructureFor(t *testing.T) {
	p := deriveParams(3, 1<<20) // NumSubs = ceil(log2(20)) = 5
	cases := []struct{ procs, want int }{
		{0, 0}, {1, 0}, {4, 0}, {5, 1}, {16, 1}, {17, 2}, {256, 2},
		{257, 3}, {65536, 3}, {65537, 4}, {1 << 30, 4},
	}
	for _, c := range cases {
		if got := p.SubstructureFor(c.procs); got != c.want {
			t.Errorf("SubstructureFor(%d) = %d, want %d", c.procs, got, c.want)
		}
	}
}

func TestTruncDepth(t *testing.T) {
	p := deriveParams(3, 1<<16) // LogN 16
	if d := p.TruncDepth(0, 100); d != 0 {
		t.Errorf("TruncDepth(0) = %d, want 0", d)
	}
	if d := p.TruncDepth(1, 100); d != 8 {
		t.Errorf("TruncDepth(1) = %d, want 8", d)
	}
	if d := p.TruncDepth(4, 100); d != 15 {
		t.Errorf("TruncDepth(4) = %d, want 15", d)
	}
	if d := p.TruncDepth(3, 10); d != 10 {
		t.Errorf("TruncDepth clamps to height: %d, want 10", d)
	}
}

func TestBuildRequiresBidirectional(t *testing.T) {
	bt, _ := tree.NewBalancedBinary(4)
	cats := make([]catalog.Catalog, bt.N())
	for i := range cats {
		cats[i] = catalog.Empty()
	}
	s, err := cascade.Build(bt, cats, cascade.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromCascade(s, Config{}); err == nil {
		t.Error("unidirectional cascade should be rejected")
	}
}

func TestBlockPartition(t *testing.T) {
	st, _, _ := buildStructure(t, 1<<8, 5000, 1, Config{})
	tr := st.Tree()
	for i := 0; i < st.NumSubstructures(); i++ {
		sub := st.Substructure(i)
		for _, blk := range sub.Blocks() {
			d := tr.Depth(blk.Root)
			if d%sub.H != 0 {
				t.Errorf("sub %d: block root %d at unaligned depth %d (h=%d)", i, blk.Root, d, sub.H)
			}
			if d >= sub.TruncDepth && sub.TruncDepth > 0 {
				t.Errorf("sub %d: block root below truncation depth", i)
			}
			if blk.Height < 1 || blk.Height > sub.H {
				t.Errorf("sub %d: block height %d out of range", i, blk.Height)
			}
			if d+blk.Height > sub.TruncDepth && blk.Height == sub.H {
				t.Errorf("sub %d: full-height block crosses truncation", i)
			}
			// KeyPos indices are valid catalog positions.
			for j := 0; j < blk.M; j++ {
				for z, v := range blk.Nodes {
					kp := int(blk.KeyPos[j][z])
					if kp < 0 || kp >= st.Cascade().Aug(v).Len() {
						t.Fatalf("sub %d block %d tree %d node %d: KeyPos %d out of range", i, blk.Root, j, z, kp)
					}
				}
			}
		}
	}
}

// TestLemma1Disjointness is experiment E11: within every block, the
// skeleton trees U_1..U_m assign distinct key values to every node.
func TestLemma1Disjointness(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		st, _, _ := buildStructure(t, 1<<8, 20000, seed, Config{})
		for i := 0; i < st.NumSubstructures(); i++ {
			sub := st.Substructure(i)
			for _, blk := range sub.Blocks() {
				if blk.M < 2 {
					continue
				}
				for z, v := range blk.Nodes {
					cat := st.Cascade().Aug(v)
					seen := map[catalog.Key]int{}
					for j := 0; j < blk.M; j++ {
						k := cat.Key(int(blk.KeyPos[j][z]))
						if prev, dup := seen[k]; dup {
							t.Fatalf("seed %d sub %d block %d node %d: trees %d and %d share key %d (Lemma 1 violated)",
								seed, i, blk.Root, v, prev, j, k)
						}
						seen[k] = j
					}
				}
			}
		}
	}
}

func TestExplicitMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		st, _, rng := buildStructure(t, 1<<6, 3000, seed, Config{})
		tr := st.Tree()
		leaves := []tree.NodeID{}
		for v := tree.NodeID(0); int(v) < tr.N(); v++ {
			if tr.IsLeaf(v) {
				leaves = append(leaves, v)
			}
		}
		for _, p := range []int{1, 2, 3, 7, 16, 100, 1000, 1 << 20} {
			for q := 0; q < 25; q++ {
				leaf := leaves[rng.Intn(len(leaves))]
				path := tr.RootPath(leaf)
				y := catalog.Key(rng.Intn(13000))
				got, stats, err := st.SearchExplicit(y, path, p)
				if err != nil {
					t.Fatalf("seed %d p %d: %v", seed, p, err)
				}
				want, err := st.Cascade().SearchPath(y, path)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
						t.Fatalf("seed %d p %d y %d node %d: coop (%d,%d) != seq (%d,%d)",
							seed, p, y, path[i], got[i].Key, got[i].Payload, want[i].Key, want[i].Payload)
					}
				}
				if stats.Steps <= 0 {
					t.Fatalf("no steps recorded")
				}
			}
		}
	}
}

func TestExplicitStepsShape(t *testing.T) {
	// Theorem 1 shape: steps at large p sit well below steps at p = 1, and
	// no processor count is more than a small constant factor worse than
	// sequential (with the paper's constants, hops only beat the
	// sequential walk once h_i ≥ 2; the ablation test below shows the
	// clean (log n)/log p curve with taller hops).
	st, _, rng := buildStructure(t, 1<<10, 150000, 7, Config{})
	tr := st.Tree()
	leaf := tree.NodeID(tr.N() - 1)
	path := tr.RootPath(leaf)
	y := catalog.Key(rng.Intn(600000))
	steps := map[int]int{}
	for _, p := range []int{1, 16, 256, 65536, 1 << 20} {
		_, stats, err := st.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatal(err)
		}
		steps[p] = stats.Steps
	}
	t.Logf("steps by p: %v", steps)
	if steps[1<<20] >= steps[1] {
		t.Errorf("steps(p=2^20) = %d not below steps(p=1) = %d", steps[1<<20], steps[1])
	}
	for p, s := range steps {
		if s > steps[1]*2 {
			t.Errorf("steps(p=%d) = %d more than doubles sequential %d", p, s, steps[1])
		}
	}
}

func TestAblationHopHeightShape(t *testing.T) {
	// With hop height forced to h, the hop count is ~depth/h, so parallel
	// steps must fall as h grows — the (log n)/log p curve in isolation.
	rng := rand.New(rand.NewSource(77))
	bt, _ := tree.NewBalancedBinary(1 << 10)
	cats := randCatalogs(bt, 60000, rng)
	var prevSteps int
	for hi, h := range []int{1, 2, 3, 5} {
		st, err := Build(bt, cats, Config{
			MaxSubs:      1,
			NoTruncation: true,
			HOverride:    func(int) int { return h },
		})
		if err != nil {
			t.Fatal(err)
		}
		// Force a fully truncation-free hop regime.
		sub := st.Substructure(0)
		path := bt.RootPath(tree.NodeID(bt.N() - 1))
		y := catalog.Key(rng.Intn(200000))
		got, stats, err := st.SearchExplicit(y, path, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := st.Cascade().SearchPath(y, path)
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("h=%d: wrong result at %d", h, i)
			}
		}
		hopPart := stats.Steps - stats.RootRounds
		t.Logf("h=%d trunc=%d: steps=%d (root %d, hops %d, seq %d)",
			h, sub.TruncDepth, stats.Steps, stats.RootRounds, stats.Hops, stats.SeqLevels)
		if hi > 0 && hopPart > prevSteps {
			t.Errorf("h=%d: hop steps %d did not shrink from %d", h, hopPart, prevSteps)
		}
		prevSteps = hopPart
	}
}

// TestSlotsBound is experiment E13: the per-hop processor demand stays
// within the analytic bound 4F^{2h} + 2F^h + s and, for the substructures
// whose hop height is not clamped to 1, within O(p).
func TestSlotsBound(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<9, 40000, 8, Config{})
	tr := st.Tree()
	params := st.Params()
	for i := 0; i < st.NumSubstructures(); i++ {
		sub := st.Substructure(i)
		f, h := params.F, sub.H
		fh := 1
		for l := 0; l < h; l++ {
			fh *= f
		}
		bound := 4*fh*fh + 2*fh + sub.S + 4*h // slack for per-level rounding
		pMin := 2
		if i > 0 {
			exp := uint(1) << uint(i)
			if exp < 30 {
				pMin = 1<<exp + 1
			} else {
				pMin = 1 << 30
			}
		}
		for q := 0; q < 30; q++ {
			leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<9))
			path := tr.RootPath(leaf)
			y := catalog.Key(rng.Intn(200000))
			_, stats, err := st.SearchExplicit(y, path, pMin)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Sub != i {
				continue
			}
			if stats.SlotsPeak > bound {
				t.Errorf("sub %d: SlotsPeak %d exceeds analytic bound %d", i, stats.SlotsPeak, bound)
			}
		}
	}
}

func TestSingleNodeTree(t *testing.T) {
	bt, _ := tree.NewBalancedBinary(1)
	cats := []catalog.Catalog{catalog.MustFromKeys([]catalog.Key{5, 10}, nil)}
	st, err := Build(bt, cats, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := st.SearchExplicit(7, []tree.NodeID{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Key != 10 {
		t.Errorf("res = %+v", res)
	}
	if stats.Hops != 0 {
		t.Errorf("single node should not hop")
	}
}

func TestExplicitPathValidation(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 9, Config{})
	if _, _, err := st.SearchExplicit(5, nil, 4); err == nil {
		t.Error("empty path should fail")
	}
	if _, _, err := st.SearchExplicit(5, []tree.NodeID{3}, 4); err == nil {
		t.Error("non-root path should fail")
	}
	if _, _, err := st.SearchExplicit(5, []tree.NodeID{0, 5}, 4); err == nil {
		t.Error("broken path should fail")
	}
}

func plantedBranch(t *tree.Tree, inorder []int32, target tree.NodeID) BranchFunc {
	ti := inorder[target]
	return func(r cascade.Result) Branch {
		if inorder[r.Node] < ti {
			return Right
		}
		return Left
	}
}

func TestImplicitMatchesExplicit(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		st, _, rng := buildStructure(t, 1<<6, 3000, seed+20, Config{})
		tr := st.Tree()
		inorder, err := tr.InorderIndex()
		if err != nil {
			t.Fatal(err)
		}
		var leaves []tree.NodeID
		for v := tree.NodeID(0); int(v) < tr.N(); v++ {
			if tr.IsLeaf(v) {
				leaves = append(leaves, v)
			}
		}
		for _, p := range []int{1, 5, 64, 5000} {
			for q := 0; q < 15; q++ {
				target := leaves[rng.Intn(len(leaves))]
				branch := plantedBranch(tr, inorder, target)
				y := catalog.Key(rng.Intn(13000))
				if err := st.CheckConsistency(y, branch); err != nil {
					t.Fatalf("branch function inconsistent: %v", err)
				}
				results, leaf, stats, err := st.SearchImplicit(y, branch, p)
				if err != nil {
					t.Fatalf("seed %d p %d: %v", seed, p, err)
				}
				if leaf != target {
					t.Fatalf("seed %d p %d: implicit search reached %d, want %d", seed, p, leaf, target)
				}
				path := tr.RootPath(target)
				want, err := st.Cascade().SearchPath(y, path)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != len(want) {
					t.Fatalf("result count %d != %d", len(results), len(want))
				}
				for i := range want {
					if results[i].Key != want[i].Key || results[i].Node != want[i].Node {
						t.Fatalf("node %d: implicit %d != seq %d", path[i], results[i].Key, want[i].Key)
					}
				}
				if stats.Steps <= 0 {
					t.Fatal("no steps recorded")
				}
			}
		}
	}
}

func TestImplicitRejectsNonBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tr, _ := tree.NewRandom(50, 3, rng)
	cats := randCatalogs(tr, 300, rng)
	st, err := Build(tr, cats, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.SearchImplicit(5, func(cascade.Result) Branch { return Left }, 4)
	if err == nil {
		t.Error("implicit search on degree-3 tree should fail")
	}
}

func TestLongPathMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	tr, err := tree.NewPath(400)
	if err != nil {
		t.Fatal(err)
	}
	cats := randCatalogs(tr, 3000, rng)
	st, err := Build(tr, cats, Config{NoTruncation: true})
	if err != nil {
		t.Fatal(err)
	}
	full := tr.RootPath(tree.NodeID(tr.N() - 1))
	for _, p := range []int{1, 4, 64, 1024} {
		for q := 0; q < 10; q++ {
			y := catalog.Key(rng.Intn(13000))
			got, stats, err := st.SearchLongPath(y, full, p, 0.5)
			if err != nil {
				t.Fatalf("p %d: %v", p, err)
			}
			want, err := st.Cascade().SearchPath(y, full)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("p %d: %d results, want %d", p, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Node != want[i].Node {
					t.Fatalf("p %d i %d: %d != %d", p, i, got[i].Key, want[i].Key)
				}
			}
			if stats.Steps <= 0 {
				t.Fatal("no steps")
			}
		}
	}
}

func TestLongPathStepsDecreaseWithP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr, _ := tree.NewPath(2000)
	cats := randCatalogs(tr, 8000, rng)
	st, err := Build(tr, cats, Config{NoTruncation: true})
	if err != nil {
		t.Fatal(err)
	}
	full := tr.RootPath(tree.NodeID(tr.N() - 1))
	y := catalog.Key(5000)
	var prev int
	for i, p := range []int{1, 16, 256, 4096} {
		_, stats, err := st.SearchLongPath(y, full, p, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && stats.Steps > prev {
			t.Errorf("steps grew from %d to %d at p=%d", prev, stats.Steps, p)
		}
		prev = stats.Steps
	}
}

func TestLongPathEpsValidation(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 42, Config{})
	path := st.Tree().RootPath(3)
	if _, _, err := st.SearchLongPath(5, path, 4, 0); err == nil {
		t.Error("eps = 0 should fail")
	}
	if _, _, err := st.SearchLongPath(5, path, 4, 1.5); err == nil {
		t.Error("eps > 1 should fail")
	}
}

func TestDegreeDSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 3; trial++ {
		d := 3 + rng.Intn(6)
		tr, err := tree.NewRandom(150, d, rng)
		if err != nil {
			t.Fatal(err)
		}
		cats := randCatalogs(tr, 1500, rng)
		ds, err := BuildDegreeD(tr, cats, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Expanded().MaxDegree() > 2 {
			t.Fatal("expansion not binary")
		}
		for q := 0; q < 30; q++ {
			v := tree.NodeID(rng.Intn(tr.N()))
			path := tr.RootPath(v)
			y := catalog.Key(rng.Intn(6000))
			got, _, err := ds.SearchExplicit(y, path, 16)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := cascade.NaiveSearchPath(tr, cats, y, path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d results, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload || got[i].Node != want[i].Node {
					t.Fatalf("trial %d node %d: (%d,%d) != (%d,%d)", trial, want[i].Node,
						got[i].Key, got[i].Payload, want[i].Key, want[i].Payload)
				}
			}
		}
	}
}

// TestLemma2Space is experiment E4: skeleton storage stays linear in the
// structure size, and per-substructure sizes are dominated by the largest.
func TestLemma2Space(t *testing.T) {
	for _, leaves := range []int{1 << 6, 1 << 8, 1 << 10} {
		st, _, _ := buildStructure(t, leaves, leaves*40, 60, Config{})
		r := st.SpaceReport()
		budget := 8 * (r.AugEntries + int64(st.Tree().N()))
		if r.SkeletonSlots > budget {
			t.Errorf("leaves %d: skeleton slots %d exceed linear budget %d (aug %d)",
				leaves, r.SkeletonSlots, budget, r.AugEntries)
		}
		t.Logf("leaves=%d native=%d aug=%d skeleton=%d per-sub=%v",
			leaves, r.NativeEntries, r.AugEntries, r.SkeletonSlots, r.PerSub)
	}
}

func TestHOverride(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<6, 2000, 70, Config{
		HOverride: func(i int) int { return 2 },
	})
	for i := 0; i < st.NumSubstructures(); i++ {
		if h := st.Substructure(i).H; h != 2 {
			t.Errorf("sub %d: h = %d, want 2 (overridden)", i, h)
		}
	}
	// Searches still correct under the override.
	tr := st.Tree()
	for q := 0; q < 30; q++ {
		leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<6))
		path := tr.RootPath(leaf)
		y := catalog.Key(rng.Intn(8000))
		got, _, err := st.SearchExplicit(y, path, 64)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := st.Cascade().SearchPath(y, path)
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("override search mismatch at %d", i)
			}
		}
	}
}

func TestExplicitOnGeneralTrees(t *testing.T) {
	// Theorem 2's machinery must run directly on bounded-degree trees
	// (no binary expansion), including partial paths ending at internal
	// nodes and ragged leaf depths.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 4; trial++ {
		deg := 2 + rng.Intn(4)
		tr, err := tree.NewRandom(200+rng.Intn(400), deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		cats := randCatalogs(tr, 3000, rng)
		st, err := Build(tr, cats, Config{NoTruncation: true})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 40; q++ {
			v := tree.NodeID(rng.Intn(tr.N())) // any node: partial paths too
			path := tr.RootPath(v)
			y := catalog.Key(rng.Intn(13000))
			p := 1 + rng.Intn(1<<14)
			got, _, err := st.SearchExplicit(y, path, p)
			if err != nil {
				t.Fatalf("trial %d deg %d: %v", trial, deg, err)
			}
			want, err := st.Cascade().SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
					t.Fatalf("trial %d node %d: (%d) != (%d)", trial, path[i], got[i].Key, want[i].Key)
				}
			}
		}
	}
}

func TestCascadeStrideOverride(t *testing.T) {
	// The whole pipeline (derived α, s_i, windows) must adapt to a
	// different fan-out constant.
	rng := rand.New(rand.NewSource(90))
	bt, _ := tree.NewBalancedBinary(1 << 6)
	cats := randCatalogs(bt, 3000, rng)
	for _, stride := range []int{2, 8} {
		st, err := Build(bt, cats, Config{CascadeStride: stride})
		if err != nil {
			t.Fatal(err)
		}
		if st.Params().B != stride-1 {
			t.Errorf("stride %d: derived B = %d", stride, st.Params().B)
		}
		for q := 0; q < 40; q++ {
			leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<6))
			path := bt.RootPath(leaf)
			y := catalog.Key(rng.Intn(13000))
			got, _, err := st.SearchExplicit(y, path, 1+rng.Intn(1<<16))
			if err != nil {
				t.Fatalf("stride %d: %v", stride, err)
			}
			want, _ := st.Cascade().SearchPath(y, path)
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("stride %d: mismatch at %d", stride, i)
				}
			}
		}
	}
}

func TestMaxSubs(t *testing.T) {
	st, _, _ := buildStructure(t, 1<<8, 10000, 80, Config{MaxSubs: 2})
	if st.NumSubstructures() != 2 {
		t.Errorf("NumSubstructures = %d, want 2", st.NumSubstructures())
	}
	if st.SelectSub(1<<20) != 1 {
		t.Errorf("SelectSub must clamp to built range")
	}
}
