package core

import (
	"math"
	"reflect"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// fingerProbeBound is the distance-sensitivity claim: galloping from a
// finger at position distance d from the true successor costs at most
// 2⌈log₂(d+1)⌉ + c probes (one finger probe, a doubling gallop, and a
// binary search over the final bracket).
func fingerProbeBound(d int) int {
	return 2*int(math.Ceil(math.Log2(float64(d)+1))) + 4
}

// TestFingerSearchMatchesOracle is the acceptance differential: over 1000
// randomized cases — arbitrary fingers, in and out of range, stale and
// exact — SearchExplicitFromFinger must return exactly SearchExplicit's
// results. Only the charged entry rounds may differ.
func TestFingerSearchMatchesOracle(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 100
	}
	st, _, rng := buildStructure(t, 32, 1200, 11, Config{})
	tr := st.Tree()
	head := st.Cascade().Aug(tr.Root())
	for i := 0; i < cases; i++ {
		y := catalog.Key(rng.Intn(5000))
		path := tr.RootPath(tree.NodeID(rng.Intn(tr.N())))
		p := 1 + rng.Intn(256)
		finger := rng.Intn(head.Len()+8) - 4 // includes out-of-range
		want, _, err := st.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatalf("case %d seed 11: oracle: %v", i, err)
		}
		got, stats, used, err := st.SearchExplicitFromFinger(y, path, p, finger)
		if err != nil {
			t.Fatalf("case %d seed 11 y %d finger %d: %v", i, y, finger, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d seed 11 y %d finger %d (used %v): finger results differ from oracle", i, y, finger, used)
		}
		if inRange := finger >= 0 && finger < head.Len(); used != inRange {
			t.Fatalf("case %d: used = %v for finger %d (catalog len %d)", i, used, finger, head.Len())
		}
		if used && stats.RootRounds < 1 {
			t.Fatalf("case %d: finger entry charged %d rounds", i, stats.RootRounds)
		}
	}
}

// TestFingerSearchDistanceSensitive pins the O(log d) claim on a
// key-local workload: when the finger is the entry position of a nearby
// earlier query, the charged entry rounds grow with the log of the
// position distance, not with log n.
func TestFingerSearchDistanceSensitive(t *testing.T) {
	st, _, rng := buildStructure(t, 64, 20000, 13, Config{})
	tr := st.Tree()
	head := st.Cascade().Aug(tr.Root())
	n := head.Len()
	if n < 256 {
		t.Fatalf("workload too small for distance sweep: head catalog has %d entries", n)
	}
	path := randomLeafPath(tr, rng)
	maxD := 0
	for trial := 0; trial < 400; trial++ {
		finger := rng.Intn(n)
		d := rng.Intn(n / 4)
		target := finger + d
		if trial%2 == 0 {
			target = finger - d
		}
		if target < 0 || target >= n {
			continue
		}
		// The entry key at target is the exact successor of itself, so the
		// gallop must land on target having covered position distance d.
		y := head.At(target).Key
		if target > 0 && head.At(target-1).Key == y {
			continue
		}
		got, stats, used, err := st.SearchExplicitFromFinger(y, path, 16, finger)
		if err != nil {
			t.Fatalf("trial %d seed 13: %v", trial, err)
		}
		if !used {
			t.Fatalf("trial %d: in-range finger %d not used", trial, finger)
		}
		want, _, err := st.SearchExplicit(y, path, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d seed 13: results differ from oracle", trial)
		}
		if bound := fingerProbeBound(d); stats.RootRounds > bound {
			t.Fatalf("trial %d seed 13: distance %d cost %d entry rounds, bound %d (not distance-sensitive)",
				trial, d, stats.RootRounds, bound)
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		t.Fatal("sweep never exercised a nonzero distance")
	}
}
