package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// PRAMSearchReport ties a machine execution to the Stats cost model.
type PRAMSearchReport struct {
	// MachineSteps is the PRAM's synchronous step count for the whole
	// search program.
	MachineSteps int
	// RootSteps, HopSteps, SeqSteps decompose it.
	RootSteps, HopSteps, SeqSteps int
	// Hops and SeqLevels mirror Stats.
	Hops, SeqLevels int
	// PeakProcs is the largest processor count used in any step.
	PeakProcs int
}

// SearchExplicitPRAM executes the full explicit cooperative search as a
// program on a CREW PRAM machine: the Step-1 cooperative binary search,
// one single-step window kernel per hop, and one step per sequential tail
// level, with all key data staged in shared memory. It returns the same
// results as SearchExplicit plus a report reconciling real machine steps
// with the Stats cost model — the end-to-end mechanical check of
// Theorem 1's time bound.
//
// Host-side work between steps is limited to uniform control flow
// (choosing the next hop's windows from positions read out of shared
// memory), per the standard PRAM convention.
func (st *Structure) SearchExplicitPRAM(m pram.Executor, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, PRAMSearchReport, error) {
	var rep PRAMSearchReport
	if !m.Model().AllowsConcurrentRead() {
		return nil, rep, fmt.Errorf("core: the cooperative search is CREW; machine is %s", m.Model())
	}
	if err := st.t.ValidatePath(path); err != nil {
		return nil, rep, err
	}
	if path[0] != st.t.Root() {
		return nil, rep, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	results := make([]cascade.Result, len(path))

	// Step 1: cooperative binary search in the root catalog, on-machine.
	rootCat := st.s.Aug(path[0])
	keysBase := m.Alloc(rootCat.Len())
	for i := 0; i < rootCat.Len(); i++ {
		m.Store(keysBase+i, rootCat.Key(i))
	}
	scratch := m.Alloc(p + 2)
	posAddr := m.Alloc(1)
	before := m.Time()
	if err := parallel.CoopSearchPRAM(m, keysBase, rootCat.Len(), y, p, scratch, posAddr); err != nil {
		return nil, rep, err
	}
	rep.RootSteps = m.Time() - before
	pos := int(m.Load(posAddr))
	results[0] = st.s.ResultAt(path[0], pos)

	idx := 0
	for idx < len(path)-1 {
		v := path[idx]
		block := sub.BlockAt(v)
		if block == nil || st.t.Depth(v) >= sub.TruncDepth {
			// Sequential tail level: one processor does the bridge
			// descent (bridge target plus at most B left probes) in one
			// machine step.
			ci := st.t.ChildIndex(v, path[idx+1])
			w := st.t.Children(v)[ci]
			childCat := st.s.Aug(w)
			bridge := st.s.BridgePos(v, ci, pos)
			cBase := m.Alloc(childCat.Len() + 1)
			for i := 0; i < childCat.Len(); i++ {
				m.Store(cBase+i, childCat.Key(i))
			}
			outAddr := m.Alloc(1)
			before = m.Time()
			m.Phase("seq-tail")
			err := m.Step(1, func(proc *pram.Proc) {
				j := bridge
				for j > 0 && proc.Read(cBase+j-1) >= y {
					j--
				}
				proc.Write(outAddr, int64(j))
			})
			if err != nil {
				return nil, rep, err
			}
			rep.SeqSteps += m.Time() - before
			rep.SeqLevels++
			pos = int(m.Load(outAddr))
			idx++
			results[idx] = st.s.ResultAt(path[idx], pos)
			continue
		}
		// One hop: a single window-kernel step resolves all block levels.
		end := idx + block.Height
		if end > len(path)-1 {
			end = len(path) - 1
		}
		windows, err := st.HopWindows(sub, block, path[idx:end+1], pos)
		if err != nil {
			return nil, rep, err
		}
		before = m.Time()
		found, err := st.RunHopKernelPRAM(m, y, windows)
		if err != nil {
			return nil, rep, err
		}
		rep.HopSteps += m.Time() - before
		rep.Hops++
		for l, fp := range found {
			results[idx+1+l] = st.s.ResultAt(path[idx+1+l], fp)
		}
		pos = found[len(found)-1]
		idx = end
	}
	rep.MachineSteps = m.Time()
	rep.PeakProcs = m.PeakActive()
	return results, rep, nil
}
