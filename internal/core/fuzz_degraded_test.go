package core

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/faults"
)

// FuzzDegradedSearch drives SearchExplicitDegraded with a fuzzer-chosen
// tree, query, processor budget, and fault plan, asserting the degraded
// answers always equal the sequential fractional-cascading walk whenever
// at least one processor survives.
func FuzzDegradedSearch(f *testing.F) {
	f.Add(int64(1), int64(100), uint8(8), int64(2), uint8(40), uint8(30))
	f.Add(int64(3), int64(0), uint8(1), int64(9), uint8(100), uint8(0))
	f.Add(int64(5), int64(999999), uint8(255), int64(7), uint8(0), uint8(100))
	f.Fuzz(func(t *testing.T, treeSeed, y int64, pRaw uint8, faultSeed int64, crashPct, stallPct uint8) {
		leaves := 4 << (uint(treeSeed%3+3) % 3) // 4, 8, or 16
		st, _, rng := buildStructure(t, leaves, 150, treeSeed, Config{})
		p := int(pRaw)%64 + 1
		plan, err := faults.Random(faultSeed, p, faults.Options{
			CrashRate:     float64(crashPct%101) / 100,
			StragglerRate: float64(stallPct%101) / 100,
			MaxStall:      3,
			Horizon:       32,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := randomLeafPath(st.Tree(), rng)
		key := catalog.Key(y)
		got, ds, err := st.SearchExplicitDegraded(key, path, p, plan)
		if plan.MinLive(64) < 1 {
			if err == nil && ds.MinLiveP < 1 {
				t.Fatalf("all-dead plan returned success with MinLiveP=%d", ds.MinLiveP)
			}
			return // zero survivors: an error (or a finish before the die-off) is fine
		}
		if err != nil {
			t.Fatalf("treeSeed=%d faultSeed=%d p=%d: %v\nplan: %v", treeSeed, faultSeed, p, err, plan.Events())
		}
		want, err := st.Cascade().SearchPath(key, path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
				t.Fatalf("treeSeed=%d faultSeed=%d p=%d y=%d node %d: degraded (%d,%d) != oracle (%d,%d)\nplan: %v",
					treeSeed, faultSeed, p, y, path[i], got[i].Key, got[i].Payload, want[i].Key, want[i].Payload, plan.Events())
			}
		}
	})
}
