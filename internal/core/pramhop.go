package core

import (
	"fmt"

	"fraccascade/internal/catalog"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// WindowAssignment describes the processor allocation of one hop level:
// processors test consecutive positions [Lo, Hi] of a node's catalog.
type WindowAssignment struct {
	// Node is the tree node whose catalog is probed.
	Node tree.NodeID
	// Lo and Hi bound the probed positions, inclusive and pre-clamped.
	Lo, Hi int
}

// HopWindows reconstructs the Step-3 window assignment an explicit hop
// would use for query key y arriving at block root position pos: one
// window per path node per block level. It mirrors hopExplicit without
// executing the search, for PRAM-kernel validation and the slot-accounting
// experiments.
func (st *Structure) HopWindows(sub *Substructure, block *Block, pathInBlock []tree.NodeID, pos int) ([]WindowAssignment, error) {
	j, offset := block.sampleFor(pos, sub.S)
	kp := block.KeyPos[j]
	lo := -offset
	local := int32(0)
	var out []WindowAssignment
	for l := 1; l < len(pathInBlock); l++ {
		v := pathInBlock[l]
		ci := st.t.ChildIndex(pathInBlock[l-1], v)
		if ci < 0 || ci >= len(block.Children[local]) {
			return nil, fmt.Errorf("core: path leaves block at level %d", l)
		}
		local = block.Children[local][ci]
		lo = st.params.WindowLo(lo)
		anchor := int(kp[local])
		winLo := anchor + lo
		if winLo < 0 {
			winLo = 0
		}
		hi := anchor
		if n := st.s.Aug(v).Len() - 1; hi > n {
			hi = n
		}
		out = append(out, WindowAssignment{Node: v, Lo: winLo, Hi: hi})
	}
	return out, nil
}

// RunHopKernelPRAM executes one hop's Step 3 on a CREW PRAM machine: one
// processor per window position tests c_{g−1} < y ≤ c_g; the unique winner
// per window writes the answer (an exclusive write). It runs in exactly
// one machine step regardless of window sizes — the mechanical content of
// "a subtree of height Θ(log p) is processed in constant time" — and
// returns the found position for each window.
//
// The kernel is CREW: all processors read the shared y cell concurrently;
// adjacent processors read overlapping catalog cells.
func (st *Structure) RunHopKernelPRAM(m pram.Executor, y catalog.Key, windows []WindowAssignment) ([]int, error) {
	if !m.Model().AllowsConcurrentRead() {
		return nil, fmt.Errorf("core: hop kernel requires concurrent reads (CREW); machine is %s", m.Model())
	}
	// Stage catalogs and the query into PRAM memory.
	type slot struct {
		winIdx int
		pos    int
		base   int // catalog base address
		lo     int
	}
	var slots []slot
	yAddr := m.Alloc(1)
	m.Store(yAddr, y)
	resBase := m.Alloc(len(windows))
	for i := range windows {
		m.Store(resBase+i, -1)
	}
	for wi, w := range windows {
		cat := st.s.Aug(w.Node)
		base := m.Alloc(cat.Len())
		for i := 0; i < cat.Len(); i++ {
			m.Store(base+i, cat.Key(i))
		}
		for g := w.Lo; g <= w.Hi; g++ {
			slots = append(slots, slot{winIdx: wi, pos: g, base: base, lo: w.Lo})
		}
	}
	if len(slots) > m.Procs() {
		return nil, fmt.Errorf("core: hop needs %d processors, machine has %d", len(slots), m.Procs())
	}
	m.Phase("hop-descent")
	err := m.Step(len(slots), func(p *pram.Proc) {
		s := slots[p.ID]
		yv := p.Read(yAddr)
		cg := p.Read(s.base + s.pos)
		var prev catalog.Key
		if s.pos == 0 {
			prev = -(1 << 62)
		} else {
			prev = p.Read(s.base + s.pos - 1)
		}
		// The window's left boundary acts as position lo with the
		// convention that the answer is the first in-window success; a
		// processor at lo with prev >= y would mean the window missed,
		// which Lemma 3 excludes for correctly seeded windows.
		if prev < yv && yv <= cg {
			p.Write(resBase+s.winIdx, int64(s.pos))
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(windows))
	for i := range windows {
		out[i] = int(m.Load(resBase + i))
	}
	return out, nil
}
