package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// entryHitSteps is the parallel time charged when a search enters through a
// cached entry position instead of the Step-1 cooperative binary search:
// one synchronous round in which two processors probe the catalog entries
// bounding the cached position to confirm it is still the successor of y.
const entryHitSteps = 1

// ValidEntry reports whether pos is exactly Aug(v).Succ(y): the catalog key
// at pos is ≥ y and the key before it (if any) is < y. Because successor
// positions are unique, a position that passes this O(1) check is the one
// the Step-1 cooperative search would have produced, so seeding a search
// with it can never change an answer — at worst a stale hint fails the
// check and the caller falls back to the full entry search.
func (st *Structure) ValidEntry(v tree.NodeID, pos int, y catalog.Key) bool {
	cat := st.s.Aug(v)
	if pos < 0 || pos >= cat.Len() {
		return false
	}
	return cat.Key(pos) >= y && (pos == 0 || cat.Key(pos-1) < y)
}

// EntryInterval returns the half-open key interval (lo, hi] of query keys
// whose Step-1 entry search at node v resolves to position pos; lo is the
// catalog key before pos (or catalog.MinusInf for pos 0) and hi the key at
// pos. Engines cache (pos, lo, hi] triples: any later query with lo < y ≤ hi
// shares the entry position and may skip the cooperative binary search.
func (st *Structure) EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error) {
	cat := st.s.Aug(v)
	if pos < 0 || pos >= cat.Len() {
		return 0, 0, fmt.Errorf("core: entry position %d outside catalog of node %d (len %d)", pos, v, cat.Len())
	}
	lo = catalog.MinusInf
	if pos > 0 {
		lo = cat.Key(pos - 1)
	}
	return lo, cat.Key(pos), nil
}

// SearchExplicitWithEntry is SearchExplicit seeded with a previously
// resolved entry position for the path head's augmented catalog (from an
// entry-point cache). If entryPos passes the O(1) ValidEntry check the
// Step-1 cooperative binary search is skipped and replaced by a single
// verification step (used = true); otherwise the full entry search runs and
// the answer is identical to SearchExplicit (used = false). Either way the
// results match SearchExplicit exactly — the hint only ever changes the
// charged entry cost, never the descent.
func (st *Structure) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, Stats, bool, error) {
	if err := st.t.ValidatePath(path); err != nil {
		return nil, Stats{}, false, err
	}
	if path[0] != st.t.Root() {
		return nil, Stats{}, false, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}
	if !st.ValidEntry(path[0], entryPos, y) {
		results, err := st.searchSegmentCtl(sub, y, path, p, &stats, nil)
		return results, stats, false, err
	}
	stats.RootRounds += entryHitSteps
	stats.Steps += entryHitSteps
	results, err := st.descendFromCtl(sub, y, path, p, entryPos, &stats, nil)
	return results, stats, true, err
}
