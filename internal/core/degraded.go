package core

import (
	"context"
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Census reports how many processor slots are still live at a given
// synchronous step. It is the analytic-side view of a fault plan: the
// cost-model searches do not execute on a pram.Machine, so instead of
// skipping dead processors write by write they consult the census between
// hops and re-plan for the survivors. faults.Plan satisfies Census.
type Census interface {
	// LiveAt returns the number of processors able to act at the given
	// step. Implementations may count transiently stalled processors as
	// dead for the steps they miss.
	LiveAt(step int) int
}

// DegradedStats extends Stats with graceful-degradation accounting.
type DegradedStats struct {
	Stats
	// StartP is the processor budget the search was launched with.
	StartP int
	// MinLiveP is the smallest live processor count the search planned
	// for at any point; the Theorem 1 shape degrades to
	// O((log n)/log MinLiveP) steps.
	MinLiveP int
	// Redrives counts substructure re-derivations: hops at which the
	// surviving processor count selected a different T_i than the one the
	// search was running in, forcing new window widths, skeleton stride,
	// and truncation depth.
	Redrives int
}

// searchControl carries the optional cancellation and degradation hooks
// threaded through the explicit search loop. A nil control — or nil
// fields — reproduces the plain SearchExplicit behaviour exactly.
type searchControl struct {
	ctx    context.Context
	census Census
	ds     *DegradedStats
}

// check runs between hops (and before the first): it honours context
// cancellation, then consults the census and re-derives the substructure
// for the surviving processor count. It returns the possibly-switched
// substructure and the live processor count to plan the next hop with.
func (ctl *searchControl) check(st *Structure, sub *Substructure, p int, stats *Stats) (*Substructure, int, error) {
	if ctl.ctx != nil {
		if err := ctl.ctx.Err(); err != nil {
			return sub, p, fmt.Errorf("core: search cancelled after %d steps: %w", stats.Steps, err)
		}
	}
	if ctl.census != nil {
		live := ctl.census.LiveAt(stats.Steps)
		if live < 1 {
			return sub, p, fmt.Errorf("core: no live processors at step %d", stats.Steps)
		}
		if ctl.ds != nil && live < ctl.ds.MinLiveP {
			ctl.ds.MinLiveP = live
		}
		if live != p {
			si := st.SelectSub(live)
			if st.subs[si] != sub {
				// The current node need not be a block root of the new
				// T_i; BlockAt then returns nil and the loop descends
				// sequentially until it realigns on a block boundary.
				sub = st.subs[si]
				stats.Sub = si
				if ctl.ds != nil {
					ctl.ds.Redrives++
				}
			}
			p = live
		}
	}
	return sub, p, nil
}

// SearchExplicitDegraded is SearchExplicit under processor failures: the
// census is consulted between hops, and whenever the surviving count p′
// has left the current substructure's service range the search re-derives
// the substructure index, window widths, and truncation depth for p′ and
// continues. Answers are identical to the fault-free search as long as at
// least one processor survives; the step count degrades gracefully to the
// Theorem 1 shape for the smallest surviving count.
func (st *Structure) SearchExplicitDegraded(y catalog.Key, path []tree.NodeID, p int, census Census) ([]cascade.Result, DegradedStats, error) {
	return st.searchDegraded(nil, y, path, p, census)
}

// SearchExplicitDegradedContext is SearchExplicitDegraded that additionally
// honours context cancellation between hops.
func (st *Structure) SearchExplicitDegradedContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int, census Census) ([]cascade.Result, DegradedStats, error) {
	return st.searchDegraded(ctx, y, path, p, census)
}

func (st *Structure) searchDegraded(ctx context.Context, y catalog.Key, path []tree.NodeID, p int, census Census) ([]cascade.Result, DegradedStats, error) {
	if err := st.t.ValidatePath(path); err != nil {
		return nil, DegradedStats{}, err
	}
	if path[0] != st.t.Root() {
		return nil, DegradedStats{}, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	start := p
	if census != nil {
		live := census.LiveAt(0)
		if live < 1 {
			return nil, DegradedStats{StartP: start}, fmt.Errorf("core: no live processors at step 0")
		}
		if live < p {
			p = live
		}
	}
	ds := DegradedStats{StartP: start, MinLiveP: p}
	si := st.SelectSub(p)
	sub := st.subs[si]
	ds.Stats = Stats{Sub: si, P: start}
	ctl := &searchControl{ctx: ctx, census: census, ds: &ds}
	results, err := st.searchSegmentCtl(sub, y, path, p, &ds.Stats, ctl)
	if err != nil {
		return nil, ds, err
	}
	return results, ds, nil
}

// SearchExplicitContext is SearchExplicit that honours cancellation and
// deadlines: the context is checked before the entry search and between
// hops, so a cancelled search returns promptly with ctx's error instead of
// finishing the walk.
func (st *Structure) SearchExplicitContext(ctx context.Context, y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, fmt.Errorf("core: search cancelled: %w", err)
	}
	if err := st.t.ValidatePath(path); err != nil {
		return nil, Stats{}, err
	}
	if path[0] != st.t.Root() {
		return nil, Stats{}, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}
	ctl := &searchControl{ctx: ctx}
	results, err := st.searchSegmentCtl(sub, y, path, p, &stats, ctl)
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}
