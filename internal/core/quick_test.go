package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// TestQuickExplicitEqualsSequential is the package's central property:
// for arbitrary catalogs, queries, and processor counts, the cooperative
// search agrees with the sequential fractional cascading walk.
func TestQuickExplicitEqualsSequential(t *testing.T) {
	type input struct {
		Seed  int64
		Y     uint32
		P     uint16
		Leaf  uint16
		Total uint8
	}
	bt, err := tree.NewBalancedBinary(32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		cats := randCatalogs(bt, 100+int(in.Total)*10, rng)
		st, err := Build(bt, cats, Config{})
		if err != nil {
			return false
		}
		leaf := tree.NodeID(31 + int(in.Leaf)%32)
		path := bt.RootPath(leaf)
		y := catalog.Key(in.Y % 8000)
		p := int(in.P)%70000 + 1
		got, _, err := st.SearchExplicit(y, path, p)
		if err != nil {
			return false
		}
		want, err := st.Cascade().SearchPath(y, path)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Payload != want[i].Payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowRecurrenceContainment property-tests Lemma 3 directly:
// seeded with any non-positive slack, the recurrence window anchored at a
// bridged position always contains the true successor one level down.
func TestQuickWindowRecurrenceContainment(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<6, 4000, 300, Config{})
	tr := st.Tree()
	params := st.Params()
	f := func(yRaw uint32, nodeRaw uint16, slackRaw uint8) bool {
		v := tree.NodeID(int(nodeRaw) % tr.N())
		if tr.IsLeaf(v) {
			return true
		}
		y := catalog.Key(yRaw % 20000)
		cat := st.Cascade().Aug(v)
		truePos := cat.Succ(y)
		// Any anchor at or right of the true position with slack covering
		// the gap models a skeleton key position.
		slack := int(slackRaw) % 16
		anchor := truePos + slack
		if anchor >= cat.Len() {
			anchor = cat.Len() - 1
			slack = anchor - truePos
		}
		lo := -slack
		for ci := range tr.Children(v) {
			w := tr.Children(v)[ci]
			childAnchor := st.Cascade().BridgePos(v, ci, anchor)
			childLo := params.WindowLo(lo)
			childTrue := st.Cascade().Aug(w).Succ(y)
			if childTrue > childAnchor || childTrue < childAnchor+childLo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestQuickSampleForInvariants property-tests the Step-2 sample selection:
// the chosen skeleton tree's root key position is always >= pos, within
// catalog range, and the offset is exact.
func TestQuickSampleForInvariants(t *testing.T) {
	st, _, _ := buildStructure(t, 1<<6, 4000, 301, Config{})
	var blocks []*Block
	var subs []*Substructure
	for i := 0; i < st.NumSubstructures(); i++ {
		sub := st.Substructure(i)
		bs := sub.Blocks()
		for bi := range bs {
			blocks = append(blocks, &bs[bi])
			subs = append(subs, sub)
		}
	}
	if len(blocks) == 0 {
		t.Skip("no blocks at this size")
	}
	f := func(blockRaw uint16, posRaw uint16) bool {
		bi := int(blockRaw) % len(blocks)
		block, sub := blocks[bi], subs[bi]
		tLen := st.Cascade().Aug(block.Root).Len()
		pos := int(posRaw) % tLen
		j, offset := block.sampleFor(pos, sub.S)
		if j < 0 || j >= block.M {
			return false
		}
		sampled := int(block.KeyPos[j][0])
		if sampled < pos || sampled >= tLen {
			return false
		}
		return offset == sampled-pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsInvariants checks structural stats invariants over random
// searches: steps decompose into root + hops + tail, slots are consistent.
func TestQuickStatsInvariants(t *testing.T) {
	st, _, _ := buildStructure(t, 1<<7, 8000, 302, Config{})
	bt := st.Tree()
	f := func(yRaw uint32, pRaw uint32, leafRaw uint16) bool {
		leaf := tree.NodeID(bt.N() - 1 - int(leafRaw)%(1<<7))
		path := bt.RootPath(leaf)
		p := int(pRaw)%(1<<22) + 1
		_, stats, err := st.SearchExplicit(catalog.Key(yRaw%40000), path, p)
		if err != nil {
			return false
		}
		if stats.Steps != stats.RootRounds+hopCostSteps*stats.Hops+stats.SeqLevels {
			return false
		}
		if stats.SlotsPeak > 0 && int64(stats.SlotsPeak) > stats.SlotsTotal {
			return false
		}
		if stats.Hops == 0 && stats.SlotsTotal != 0 {
			return false
		}
		sub := st.Substructure(stats.Sub)
		// Every hop advances at most H levels; hops*H + seq covers the path.
		if stats.Hops*sub.H+stats.SeqLevels < len(path)-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
