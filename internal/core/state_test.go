package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

func buildForExport(t *testing.T, cfg Config) *Structure {
	t.Helper()
	tr, err := tree.NewBalancedBinary(16)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	native := make([]catalog.Catalog, tr.N())
	for v := range native {
		keys := make([]catalog.Key, 0, 20)
		seen := make(map[catalog.Key]bool)
		for len(keys) < 20 {
			k := catalog.Key(rng.Int63n(1 << 20))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		c, err := catalog.FromKeys(keys, nil)
		if err != nil {
			t.Fatalf("catalog: %v", err)
		}
		native[v] = c
	}
	st, err := Build(tr, native, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return st
}

func TestExportStateRoundTrip(t *testing.T) {
	for _, cfg := range []Config{{}, {NoTruncation: true, MaxSubs: 2}} {
		st := buildForExport(t, cfg)
		state, err := st.ExportState()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		got, err := FromParts(st.Cascade(), state)
		if err != nil {
			t.Fatalf("FromParts: %v", err)
		}
		if got.NumSubstructures() != st.NumSubstructures() {
			t.Fatalf("substructure counts diverge")
		}
		if !reflect.DeepEqual(got.SpaceReport(), st.SpaceReport()) {
			t.Fatalf("space reports diverge")
		}
		for i := 0; i < st.NumSubstructures(); i++ {
			w, g := st.Substructure(i), got.Substructure(i)
			if w.H != g.H || w.S != g.S || w.TruncDepth != g.TruncDepth || w.SkeletonSlots != g.SkeletonSlots {
				t.Fatalf("sub %d metadata diverges", i)
			}
			if !reflect.DeepEqual(w.Blocks(), g.Blocks()) {
				t.Fatalf("sub %d blocks diverge", i)
			}
		}
		tr := st.Tree()
		var leaf tree.NodeID
		for v := 0; v < tr.N(); v++ {
			if tr.IsLeaf(tree.NodeID(v)) {
				leaf = tree.NodeID(v)
			}
		}
		path := tr.RootPath(leaf)
		for _, p := range []int{2, 32, 512} {
			for y := catalog.Key(0); y < 1<<20; y += 99991 {
				wr, ws, err1 := st.SearchExplicit(y, path, p)
				gr, gs, err2 := got.SearchExplicit(y, path, p)
				if err1 != nil || err2 != nil {
					t.Fatalf("search: %v / %v", err1, err2)
				}
				if !reflect.DeepEqual(wr, gr) || ws != gs {
					t.Fatalf("p=%d y=%d: answers diverge", p, y)
				}
			}
		}
	}
}

func TestExportStateRefusesHOverride(t *testing.T) {
	st := buildForExport(t, Config{HOverride: func(int) int { return 2 }})
	if _, err := st.ExportState(); err == nil {
		t.Fatalf("HOverride structure exported")
	}
}

func TestFromPartsRejectsDamage(t *testing.T) {
	st := buildForExport(t, Config{})
	base, err := st.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	clone := func() State {
		s := State{Cfg: base.Cfg, Subs: make([]SubState, len(base.Subs))}
		for i, sub := range base.Subs {
			s.Subs[i].Blocks = make([]BlockState, len(sub.Blocks))
			for bi, b := range sub.Blocks {
				kp := make([][]int32, len(b.KeyPos))
				for j := range b.KeyPos {
					kp[j] = append([]int32{}, b.KeyPos[j]...)
				}
				s.Subs[i].Blocks[bi] = BlockState{Root: b.Root, KeyPos: kp}
			}
		}
		return s
	}
	// Substructures with a zero truncation depth hold no blocks; aim the
	// block-level mutations at the first one that does.
	si := -1
	for i, sub := range base.Subs {
		if len(sub.Blocks) > 0 {
			si = i
			break
		}
	}
	if si < 0 {
		t.Fatalf("no substructure with blocks")
	}
	if len(base.Subs[si].Blocks[0].KeyPos) < 2 {
		t.Fatalf("fixture block needs at least two skeleton trees")
	}
	cases := []struct {
		name   string
		mutate func(s *State)
	}{
		{"sub count", func(s *State) { s.Subs = s.Subs[:len(s.Subs)-1] }},
		{"block count", func(s *State) { s.Subs[si].Blocks = s.Subs[si].Blocks[:len(s.Subs[si].Blocks)-1] }},
		{"wrong root", func(s *State) { s.Subs[si].Blocks[0].Root++ }},
		{"skeleton count", func(s *State) { s.Subs[si].Blocks[0].KeyPos = s.Subs[si].Blocks[0].KeyPos[:1] }},
		{"skeleton shape", func(s *State) {
			kp := s.Subs[si].Blocks[0].KeyPos
			kp[len(kp)-1] = kp[len(kp)-1][:1]
		}},
		{"root position", func(s *State) { s.Subs[si].Blocks[0].KeyPos[0][0]++ }},
		{"position out of range", func(s *State) {
			kp := s.Subs[si].Blocks[0].KeyPos[0]
			kp[len(kp)-1] = 1 << 29
		}},
	}
	for _, tc := range cases {
		s := clone()
		tc.mutate(&s)
		if _, err := FromParts(st.Cascade(), s); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, err := FromParts(nil, base); err == nil {
		t.Fatalf("nil cascade accepted")
	}
}
