package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// SearchSubtree extends the explicit cooperative search to generalized
// search paths (the paper's open problem 3, for the tree case): it
// returns find(y, v) for every node of the root-anchored subtree spanned
// by the given target nodes — the union of their root paths.
//
// The search proceeds band-synchronously: all branches of the subtree
// inside one depth band advance together, by a block hop where blocks
// exist and by one bridge descent elsewhere, so the parallel time is that
// of the deepest single path — O((log n)/log p) for targets at leaf depth
// — while the processor-slot demand grows with the subtree's breadth
// (reported in Stats; the band's slots are the sum over its branches).
func (st *Structure) SearchSubtree(y catalog.Key, targets []tree.NodeID, p int) (map[tree.NodeID]cascade.Result, Stats, error) {
	if len(targets) == 0 {
		return nil, Stats{}, fmt.Errorf("core: no target nodes")
	}
	if p < 1 {
		p = 1
	}
	// Closure under parent.
	member := make(map[tree.NodeID]bool)
	for _, v := range targets {
		if int(v) < 0 || int(v) >= st.t.N() {
			return nil, Stats{}, fmt.Errorf("core: target %d out of range", v)
		}
		for x := v; x != tree.Nil && !member[x]; x = st.t.Parent(x) {
			member[x] = true
		}
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}

	results := make(map[tree.NodeID]cascade.Result, len(member))
	root := st.t.Root()
	rootCat := st.s.Aug(root)
	pos := rootCat.Succ(y)
	stats.RootRounds = parallel.CoopSearchSteps(rootCat.Len(), p)
	stats.Steps += stats.RootRounds
	results[root] = st.s.ResultAt(root, pos)

	frontier := []frontierItem{{root, pos}}
	for len(frontier) > 0 {
		depth := st.t.Depth(frontier[0].v)
		blockBand := false
		for _, it := range frontier {
			if st.t.Depth(it.v) != depth {
				return nil, stats, fmt.Errorf("core: frontier depth skew")
			}
			if sub.BlockAt(it.v) != nil && depth < sub.TruncDepth {
				blockBand = true
			}
		}
		var next []frontierItem
		bandSlots := int64(0)
		hopped := false
		for _, it := range frontier {
			block := sub.BlockAt(it.v)
			if blockBand && block != nil && depth < sub.TruncDepth {
				exits, slots, err := st.hopSubtree(sub, block, y, it.pos, member, results)
				if err != nil {
					return nil, stats, err
				}
				bandSlots += slots
				next = append(next, exits...)
				hopped = true
				continue
			}
			// Sequential band (or a branch that ended where no block
			// starts): advance one level.
			for ci, c := range st.t.Children(it.v) {
				if !member[c] {
					continue
				}
				cPos, _ := st.s.Descend(y, it.v, ci, it.pos)
				results[c] = st.s.ResultAt(c, cPos)
				next = append(next, frontierItem{c, cPos})
			}
		}
		if hopped {
			stats.Hops++
			stats.Steps += hopCostSteps
		} else if len(next) > 0 {
			stats.SeqLevels++
			stats.Steps++
		}
		stats.SlotsTotal += bandSlots
		if int(bandSlots) > stats.SlotsPeak {
			stats.SlotsPeak = int(bandSlots)
		}
		// Mixed bands cannot happen when the whole frontier advanced by a
		// hop, because block roots share alignment; when blockBand is true
		// but some branch lacked a block (ended at a leaf), that branch
		// simply produced no exits.
		frontier = next
	}
	return results, stats, nil
}

// frontierItem is one active branch of a subtree search: a node and the
// successor position of the query key in its catalog.
type frontierItem struct {
	v   tree.NodeID
	pos int
}

// hopSubtree resolves find(y, ·) for every member node of the block and
// returns the member exits at the block's leaf level.
func (st *Structure) hopSubtree(sub *Substructure, block *Block, y catalog.Key, pos int, member map[tree.NodeID]bool, results map[tree.NodeID]cascade.Result) (exits []frontierItem, slots int64, err error) {
	j, offset := block.sampleFor(pos, sub.S)
	kp := block.KeyPos[j]
	slots = int64(sub.S)
	lo := -offset
	curLevel := int8(0)
	findPos := make([]int32, len(block.Nodes))
	findPos[0] = int32(pos)
	for z := 1; z < len(block.Nodes); z++ {
		if block.Level[z] != curLevel {
			curLevel = block.Level[z]
			lo = st.params.WindowLo(lo)
		}
		v := block.Nodes[z]
		if !member[v] {
			continue
		}
		anchor := int(kp[z])
		winLo, winHi := anchor+lo, anchor
		cat := st.s.Aug(v)
		found := cat.SuccInWindow(y, winLo, winHi)
		if found > winHi {
			return nil, 0, fmt.Errorf("core: Lemma 3 window [%d,%d] missed find(y,%d)", winLo, winHi, v)
		}
		findPos[z] = int32(found)
		results[v] = st.s.ResultAt(v, found)
		slots += int64(winHi - max(0, winLo) + 1)
	}
	for z, v := range block.Nodes {
		if int(block.Level[z]) == block.Height && member[v] && !st.t.IsLeaf(v) {
			exits = append(exits, frontierItem{v, int(findPos[z])})
		}
	}
	return exits, slots, nil
}
