package core

import (
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// TestStressLargeScale builds a ~1M-entry structure — large enough for
// log n = 20, five substructures, and derived hop heights up to 3 — and
// validates searches across the full processor range, including the
// h ≥ 2 regime that small tests cannot reach with the paper's constants.
func TestStressLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale stress test skipped in -short mode")
	}
	const stressSeed int64 = 1234
	t.Logf("stress seed %d", stressSeed)
	rng := rand.New(rand.NewSource(stressSeed))
	leaves := 1 << 12
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		t.Fatal(err)
	}
	// ~1M entries spread over 8191 nodes.
	cats := make([]catalog.Catalog, bt.N())
	for v := range cats {
		size := rng.Intn(260)
		seen := make(map[catalog.Key]bool, size)
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Int63n(1 << 40))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cats[v] = catalog.MustFromKeys(keys, nil)
	}
	st, err := Build(bt, cats, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := st.Cascade().Stats().NativeEntries
	if n < 900_000 {
		t.Fatalf("workload too small: %d entries", n)
	}
	t.Logf("n = %d entries, %d substructures", n, st.NumSubstructures())
	// The top substructure must have hop height >= 2 at this scale —
	// the genuinely multi-level-hop regime.
	top := st.Substructure(st.NumSubstructures() - 1)
	if top.H < 2 {
		t.Errorf("top substructure h = %d; expected >= 2 at n ~ 1M", top.H)
	}
	maxH := 0
	stepsByP := map[int]int{}
	for _, p := range []int{1, 256, 65536, 1 << 19} {
		for q := 0; q < 25; q++ {
			leaf := tree.NodeID(bt.N() - 1 - rng.Intn(leaves))
			path := bt.RootPath(leaf)
			y := catalog.Key(rng.Int63n(1 << 40))
			got, stats, err := st.SearchExplicit(y, path, p)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			want, err := st.Cascade().SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("p=%d: mismatch at node %d", p, path[i])
				}
			}
			if h := st.Substructure(stats.Sub).H; h > maxH {
				maxH = h
			}
			stepsByP[p] += stats.Steps
		}
	}
	t.Logf("steps by p (sum of 25): %v; deepest hop height used: %d", stepsByP, maxH)
	if maxH < 2 {
		t.Errorf("searches never used an h >= 2 substructure")
	}
	if stepsByP[1<<19] >= stepsByP[1] {
		t.Errorf("steps at p=2^19 (%d) not below p=1 (%d)", stepsByP[1<<19], stepsByP[1])
	}
}
