package core

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// TestSearchExplicitPRAMEndToEnd runs complete searches on the simulator
// and checks (a) results equal the host implementation, (b) machine time
// matches the cost-model decomposition, (c) hops really take one step.
func TestSearchExplicitPRAMEndToEnd(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1500, 400, Config{})
	tr := st.Tree()
	for _, p := range []int{1, 4, 17, 300, 70000} {
		for q := 0; q < 15; q++ {
			leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<5))
			path := tr.RootPath(leaf)
			y := catalog.Key(rng.Intn(8000))

			hostResults, stats, err := st.SearchExplicit(y, path, p)
			if err != nil {
				t.Fatal(err)
			}
			m := pram.MustNew(pram.CREW, 1<<20)
			pramResults, rep, err := st.SearchExplicitPRAM(m, y, path, p)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			for i := range hostResults {
				if pramResults[i].Key != hostResults[i].Key || pramResults[i].Payload != hostResults[i].Payload {
					t.Fatalf("p=%d node %d: PRAM (%d,%d) != host (%d,%d)", p, path[i],
						pramResults[i].Key, pramResults[i].Payload, hostResults[i].Key, hostResults[i].Payload)
				}
			}
			// Decomposition sanity.
			if rep.MachineSteps != rep.RootSteps+rep.HopSteps+rep.SeqSteps {
				t.Fatalf("machine steps %d != %d+%d+%d", rep.MachineSteps, rep.RootSteps, rep.HopSteps, rep.SeqSteps)
			}
			if rep.Hops != stats.Hops || rep.SeqLevels != stats.SeqLevels {
				t.Fatalf("p=%d: PRAM hops/seq (%d,%d) != host stats (%d,%d)",
					p, rep.Hops, rep.SeqLevels, stats.Hops, stats.SeqLevels)
			}
			// Each hop is exactly one machine step; each tail level one.
			if rep.HopSteps != rep.Hops {
				t.Fatalf("p=%d: %d hop steps for %d hops (hops must be O(1))", p, rep.HopSteps, rep.Hops)
			}
			if rep.SeqSteps != rep.SeqLevels {
				t.Fatalf("p=%d: %d seq steps for %d levels", p, rep.SeqSteps, rep.SeqLevels)
			}
			// Root search within the Snir bound (2 machine steps/round).
			rootCat := st.Cascade().Aug(path[0])
			bound := 2 * (parallel.CoopSearchSteps(rootCat.Len(), p) + 2)
			if rep.RootSteps > bound {
				t.Fatalf("p=%d: root search %d steps exceeds bound %d", p, rep.RootSteps, bound)
			}
		}
	}
}

// TestSearchExplicitPRAMRejectsEREW confirms the declared CREW
// requirement.
func TestSearchExplicitPRAMRejectsEREW(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 401, Config{})
	m := pram.MustNew(pram.EREW, 64)
	path := st.Tree().RootPath(tree.NodeID(st.Tree().N() - 1))
	if _, _, err := st.SearchExplicitPRAM(m, 5, path, 4); err == nil {
		t.Error("EREW machine should be rejected")
	}
}

// TestSearchExplicitPRAMTimeDropsWithP is Theorem 1 measured on the
// machine itself: real synchronous steps fall as p grows.
func TestSearchExplicitPRAMTimeDropsWithP(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<6, 6000, 402, Config{})
	tr := st.Tree()
	leaf := tree.NodeID(tr.N() - 1)
	path := tr.RootPath(leaf)
	y := catalog.Key(rng.Intn(30000))
	m1 := pram.MustNew(pram.CREW, 1<<20)
	_, rep1, err := st.SearchExplicitPRAM(m1, y, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	mBig := pram.MustNew(pram.CREW, 1<<20)
	_, repBig, err := st.SearchExplicitPRAM(mBig, y, path, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if repBig.RootSteps >= rep1.RootSteps {
		t.Errorf("root steps did not drop: %d vs %d", repBig.RootSteps, rep1.RootSteps)
	}
	t.Logf("p=1: %d steps (root %d); p=2^18: %d steps (root %d, peak %d procs)",
		rep1.MachineSteps, rep1.RootSteps, repBig.MachineSteps, repBig.RootSteps, repBig.PeakProcs)
}
