package core

import (
	"reflect"
	"runtime"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/faults"
)

// TestParallelBuildStateIdentical pins the tentpole contract at the core
// layer: Config.Parallelism fans catalog merges, block construction, and
// bridge installation over the build pool, but the exported state and the
// underlying cascade parts must be bit-identical to the sequential build
// for every value, on seeded random workloads.
func TestParallelBuildStateIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seq, _, _ := buildStructure(t, 32, 1200, seed, Config{Parallelism: 1})
		seqState, err := seq.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		seqParts := seq.Cascade().ExportParts()
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			st, _, _ := buildStructure(t, 32, 1200, seed, Config{Parallelism: par})
			state, err := st.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(state, seqState) {
				t.Fatalf("seed %d: state built with parallelism %d differs from sequential", seed, par)
			}
			if !reflect.DeepEqual(st.Cascade().ExportParts(), seqParts) {
				t.Fatalf("seed %d: cascade parts built with parallelism %d differ from sequential", seed, par)
			}
		}
	}
}

// TestCoreFromPartsParallelDeterministic pins the parallel restore path:
// importing the same exported state at any parallelism yields a structure
// whose re-export is bit-identical to the sequential import's.
func TestCoreFromPartsParallelDeterministic(t *testing.T) {
	st, _, _ := buildStructure(t, 32, 1200, 5, Config{})
	state, err := st.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := FromParts(st.Cascade(), state)
	if err != nil {
		t.Fatal(err)
	}
	seqState, err := seq.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
		got, err := FromPartsParallel(st.Cascade(), state, par)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		gotState, err := got.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotState, seqState) {
			t.Fatalf("FromPartsParallel(par=%d) re-export differs from sequential import", par)
		}
	}
}

// TestParallelBuildDegradedEquivalence closes the loop with the fault
// injector: a structure built in parallel must behave identically to the
// sequential build even under degraded execution — the same seeded fault
// plan yields the same answers and the same degraded statistics on both.
func TestParallelBuildDegradedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seq, _, rng := buildStructure(t, 16, 400, seed, Config{Parallelism: 1})
		par, _, _ := buildStructure(t, 16, 400, seed, Config{Parallelism: 0})
		p := 4 + rng.Intn(28)
		plan, err := faults.Random(seed, p, faults.Options{
			CrashRate:     0.3,
			StragglerRate: 0.3,
			MaxStall:      3,
			Horizon:       32,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.MinLive(64) < 1 {
			continue
		}
		path := randomLeafPath(seq.Tree(), rng)
		for q := 0; q < 5; q++ {
			y := catalog.Key(rng.Intn(1800))
			gotSeq, dsSeq, errSeq := seq.SearchExplicitDegraded(y, path, p, plan)
			gotPar, dsPar, errPar := par.SearchExplicitDegraded(y, path, p, plan)
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("seed %d y %d: error mismatch: seq %v, par %v", seed, y, errSeq, errPar)
			}
			if errSeq != nil {
				continue
			}
			if !reflect.DeepEqual(gotSeq, gotPar) {
				t.Fatalf("seed %d y %d: degraded results differ between sequential and parallel builds", seed, y)
			}
			if !reflect.DeepEqual(dsSeq, dsPar) {
				t.Fatalf("seed %d y %d: degraded stats differ: seq %+v, par %+v", seed, y, dsSeq, dsPar)
			}
		}
	}
}
