// Package core implements the paper's primary contribution: preprocessing a
// fractional cascaded tree T into the cooperative search structure T′, and
// the explicit and implicit cooperative search procedures of Sections
// 2.2–2.4 (Theorems 1–3, Lemmas 1–3).
//
// The structure contains ⌈log log n⌉ search substructures T_i. Substructure
// T_i serves processor counts p in the range 2^{2^i} < p ≤ 2^{2^{i+1}} and
// is built over the truncated tree S′ (levels 0..⌈(1−2^{-i})·log n⌉ of S):
// the tree is partitioned into subtree blocks of height h_i = Θ(log p), and
// for each block the catalog of its root is sampled with stride s_i; each
// sampled entry grows a skeleton tree (same shape as the block, one
// precomputed catalog position per node, induced by bridges). A cooperative
// search jumps one block per O(1)-time hop by assigning processors to
// position windows around the skeleton keys (Lemma 3), finishing the
// truncated tail sequentially.
package core

import (
	"fmt"
	"math"

	"fraccascade/internal/parallel"
)

// Params are the derived constants of the construction, all functions of
// the cascade's fan-out constant b (Section 2.1).
type Params struct {
	// B is the fan-out constant of fractional cascading property 1.
	B int
	// F = B+1 is the per-level expansion factor: adjacent catalog entries
	// bridge to entries at most F apart (property 2 for this construction),
	// so a position uncertainty of d at one level grows to at most F·d+B
	// one level down.
	F int
	// Alpha relates hop height to the processor budget:
	// h_i = max(1, ⌊Alpha·2^i⌋) with Alpha = 1/(1 + 2·log₂F), the analogue
	// of the paper's (2(2b+1)²)^α = 2. It guarantees that the implicit
	// hop's processor demand 2^{h_i}·s_i² stays O(p) for p > 2^{2^i}.
	Alpha float64
	// NumSubs = ⌈log log n⌉ is the number of substructures T_i.
	NumSubs int
	// LogN = ⌈log₂ n⌉ where n is the total native catalog size.
	LogN int
}

// deriveParams computes the construction constants for fan-out b and total
// native catalog size n.
func deriveParams(b, n int) Params {
	f := b + 1
	alpha := 1.0 / (1.0 + 2.0*math.Log2(float64(f)))
	logn := parallel.CeilLog2(n)
	if logn < 1 {
		logn = 1
	}
	numSubs := parallel.CeilLog2(logn)
	if numSubs < 1 {
		numSubs = 1
	}
	return Params{B: b, F: f, Alpha: alpha, NumSubs: numSubs, LogN: logn}
}

// HopHeight returns h_i = max(1, ⌊Alpha·2^i⌋), the block height of
// substructure i.
func (p Params) HopHeight(i int) int {
	h := int(p.Alpha * float64(int64(1)<<uint(i)))
	if h < 1 {
		h = 1
	}
	return h
}

// SampleStride returns s_i = 2·F^{h_i}, the root-catalog sampling stride of
// substructure i. Two entries s_i apart in a block root's catalog cannot
// induce the same skeleton key anywhere in the block (Lemma 1 for this
// construction: the reverse-density recurrence r_{l−1} ≤ F·(r_l + 1) sums
// to less than (F/(F−1))·F^h < s_i).
func (p Params) SampleStride(h int) int {
	s := 2
	for l := 0; l < h; l++ {
		if s > 1<<28 {
			return s // clamp: larger strides never sample anything anyway
		}
		s *= p.F
	}
	return s
}

// TruncDepth returns the deepest tree level covered by substructure i:
// ⌈(1−2^{-i})·log n⌉, clamped to the tree height. Levels below it are
// searched sequentially in O(2^{-i}·log n) = O((log n)/log p) time.
func (p Params) TruncDepth(i, height int) int {
	frac := 1.0 - math.Pow(2, -float64(i))
	d := int(math.Ceil(frac * float64(p.LogN)))
	if d > height {
		d = height
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SubstructureFor returns the index i of the substructure serving p
// processors: the smallest i with p ≤ 2^{2^{i+1}}, clamped to the built
// range (Section 2.2: "searching is confined to the substructure T_i for
// which 2^{2^i} < p ≤ 2^{2^{i+1}}").
func (p Params) SubstructureFor(procs int) int {
	if procs < 1 {
		procs = 1
	}
	for i := 0; i < p.NumSubs-1; i++ {
		exp := uint(1) << uint(i+1)
		if exp >= 63 || procs <= 1<<exp {
			return i
		}
	}
	return p.NumSubs - 1
}

// WindowLo advances the Lemma 3 window recurrence one level:
// lo′ = F·lo − B, where lo ≤ 0 is the (non-positive) left slack of the
// current level's window relative to the skeleton key position. The true
// successor position never lies right of the skeleton key (bridges point
// to successors), so the window is always [key+lo, key].
func (p Params) WindowLo(lo int) int {
	next := p.F*lo - p.B
	if next < -(1 << 30) {
		return -(1 << 30) // clamp; windows are intersected with catalogs
	}
	return next
}

func (p Params) String() string {
	return fmt.Sprintf("Params{B:%d F:%d α:%.4f subs:%d logN:%d}", p.B, p.F, p.Alpha, p.NumSubs, p.LogN)
}
