package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// Stats reports the simulated PRAM cost of one cooperative search. Steps is
// the quantity Theorem 1 bounds by O((log n)/log p).
type Stats struct {
	// Steps is the total simulated parallel time: root-search rounds, a
	// constant per hop, and one step per sequentially searched level.
	Steps int
	// RootRounds is the cooperative binary search time of Step 1 (summed
	// over segments for long-path searches).
	RootRounds int
	// Hops is the number of O(1)-time block jumps.
	Hops int
	// SeqLevels counts levels searched sequentially (the truncated tail
	// and, for unaligned entry points, block-boundary alignment).
	SeqLevels int
	// SlotsPeak is the largest processor-slot demand of any single hop —
	// the number of catalog positions examined simultaneously. The paper
	// bounds it by O(p) (Section 2.2 for explicit, 2.3 for implicit).
	SlotsPeak int
	// SlotsTotal sums slot demand over all hops.
	SlotsTotal int64
	// Sub is the substructure index used.
	Sub int
	// P is the processor count the search was planned for.
	P int
}

// hopCostSteps is the constant number of synchronous steps charged per
// explicit hop: one round of window tests (the Step-2 sample location runs
// as an independent test in the same round) and one round collecting the
// unique winner per window.
const hopCostSteps = 2

// implicitHopCostSteps adds the branch evaluation round and the
// right→left transition identification round of Section 2.3.
const implicitHopCostSteps = 4

// SearchExplicit performs a cooperative search for y along the given
// root-anchored downward path using p processors, returning find(y, v) for
// every path node. The returned Stats hold the simulated parallel cost
// (Theorem 1: O((log n)/log p) steps).
func (st *Structure) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, Stats, error) {
	if err := st.t.ValidatePath(path); err != nil {
		return nil, Stats{}, err
	}
	if path[0] != st.t.Root() {
		return nil, Stats{}, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}
	results, err := st.searchSegment(sub, y, path, p, &stats)
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// searchSegment runs the explicit cooperative search over one downward
// path segment: an entry search in the segment head's catalog, hops through
// aligned blocks, and sequential bridge descents elsewhere. The segment
// head may be any tree node (long-path searches enter mid-tree).
func (st *Structure) searchSegment(sub *Substructure, y catalog.Key, seg []tree.NodeID, p int, stats *Stats) ([]cascade.Result, error) {
	return st.searchSegmentCtl(sub, y, seg, p, stats, nil)
}

// searchSegmentCtl is searchSegment with an optional control hook checked
// between hops: context cancellation and census-driven substructure
// re-derivation (see degraded.go). A nil ctl is the fault-free fast path.
func (st *Structure) searchSegmentCtl(sub *Substructure, y catalog.Key, seg []tree.NodeID, p int, stats *Stats, ctl *searchControl) ([]cascade.Result, error) {
	head := st.s.Aug(seg[0])
	pos := head.Succ(y)
	rounds := parallel.CoopSearchSteps(head.Len(), p)
	stats.RootRounds += rounds
	stats.Steps += rounds
	return st.descendFromCtl(sub, y, seg, p, pos, stats, ctl)
}

// descendFromCtl runs the explicit search below the Step-1 entry: pos must
// be Aug(seg[0]).Succ(y). Splitting it from the entry search lets callers
// that already know the entry position (the engine's entry-point cache)
// skip the cooperative binary search while reusing the hop machinery.
func (st *Structure) descendFromCtl(sub *Substructure, y catalog.Key, seg []tree.NodeID, p, pos int, stats *Stats, ctl *searchControl) ([]cascade.Result, error) {
	results := make([]cascade.Result, len(seg))
	results[0] = st.s.ResultAt(seg[0], pos)

	idx := 0 // index into seg of the node whose find position is `pos`
	for idx < len(seg)-1 {
		if ctl != nil {
			var err error
			if sub, p, err = ctl.check(st, sub, p, stats); err != nil {
				return nil, err
			}
		}
		v := seg[idx]
		block := sub.BlockAt(v)
		if block == nil || st.t.Depth(v) >= sub.TruncDepth {
			// Sequential descent (Step 5 tail, or block alignment).
			ci := st.t.ChildIndex(v, seg[idx+1])
			pos, _ = st.s.Descend(y, v, ci, pos)
			idx++
			stats.SeqLevels++
			stats.Steps++
			results[idx] = st.s.ResultAt(seg[idx], pos)
			continue
		}
		// Steps 2–4: one hop through the block.
		exitPos, levels, err := st.hopExplicit(sub, block, seg, idx, y, pos, results, stats)
		if err != nil {
			return nil, err
		}
		pos = exitPos
		idx += levels
		stats.Hops++
		stats.Steps += hopCostSteps
	}
	return results, nil
}

// hopExplicit processes one block: it moves from the true successor
// position pos at the block root to the sampled skeleton tree (Step 2),
// then resolves find(y, ·) at every path node in the block via the Lemma 3
// windows (Step 3). It fills results for seg[idx+1 .. idx+levels] and
// returns the successor position at the exit node and the number of levels
// advanced.
func (st *Structure) hopExplicit(sub *Substructure, block *Block, seg []tree.NodeID, idx int, y catalog.Key, pos int, results []cascade.Result, stats *Stats) (exitPos, levels int, err error) {
	// Step 2: smallest sampled catalog entry ≥ pos.
	j, offset := block.sampleFor(pos, sub.S)
	kp := block.KeyPos[j]

	hopSlots := int64(sub.S) // Step 2 assigns s_i processors to find the sample
	lo := -offset            // window left slack, non-positive
	local := int32(0)
	exitPos = pos
	maxLevel := block.Height
	if idx+maxLevel > len(seg)-1 {
		maxLevel = len(seg) - 1 - idx
	}
	for l := 1; l <= maxLevel; l++ {
		v := seg[idx+l]
		ci := st.t.ChildIndex(seg[idx+l-1], v)
		if ci < 0 || int(local) >= len(block.Children) || ci >= len(block.Children[local]) {
			return 0, 0, fmt.Errorf("core: path leaves block at level %d", l)
		}
		local = block.Children[local][ci]
		lo = st.params.WindowLo(lo)
		anchor := int(kp[local])
		winLo, winHi := anchor+lo, anchor
		cat := st.s.Aug(v)
		found := cat.SuccInWindow(y, winLo, winHi)
		if found > winHi {
			return 0, 0, fmt.Errorf("core: Lemma 3 window [%d,%d] missed find(y,%d) (y=%d)", winLo, winHi, v, y)
		}
		width := winHi - max(0, winLo) + 1
		hopSlots += int64(width)
		results[idx+l] = st.s.ResultAt(v, found)
		exitPos = found
	}
	stats.SlotsTotal += hopSlots
	if int(hopSlots) > stats.SlotsPeak {
		stats.SlotsPeak = int(hopSlots)
	}
	return exitPos, maxLevel, nil
}

// sampleFor returns the skeleton tree index j whose root key is the
// smallest sampled catalog entry at or after pos, and the offset
// (sampledPos − pos ≥ 0) that seeds the Lemma 3 window recurrence.
func (b *Block) sampleFor(pos, s int) (j, offset int) {
	k := pos / s
	if k > b.M-1 {
		k = b.M - 1
	}
	sampled := int(b.KeyPos[k][0])
	if sampled < pos {
		// pos lies beyond the last regular sample; use the +∞ tree.
		k = b.M - 1
		sampled = int(b.KeyPos[k][0])
	}
	return k, sampled - pos
}
