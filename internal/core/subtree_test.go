package core

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

func TestSearchSubtreeMatchesPaths(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		st, _, rng := buildStructure(t, 1<<6, 3000, seed+200, Config{})
		tr := st.Tree()
		var leaves []tree.NodeID
		for v := tree.NodeID(0); int(v) < tr.N(); v++ {
			if tr.IsLeaf(v) {
				leaves = append(leaves, v)
			}
		}
		for _, p := range []int{1, 16, 4096} {
			for q := 0; q < 15; q++ {
				k := 1 + rng.Intn(8)
				targets := make([]tree.NodeID, k)
				for i := range targets {
					targets[i] = leaves[rng.Intn(len(leaves))]
				}
				y := catalog.Key(rng.Intn(13000))
				got, stats, err := st.SearchSubtree(y, targets, p)
				if err != nil {
					t.Fatalf("seed %d p %d: %v", seed, p, err)
				}
				// Union of root paths, each validated against the
				// sequential search.
				want := map[tree.NodeID]catalog.Key{}
				for _, target := range targets {
					path := tr.RootPath(target)
					res, err := st.Cascade().SearchPath(y, path)
					if err != nil {
						t.Fatal(err)
					}
					for i, v := range path {
						want[v] = res[i].Key
					}
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
				}
				for v, wk := range want {
					r, ok := got[v]
					if !ok {
						t.Fatalf("seed %d: node %d missing from subtree results", seed, v)
					}
					if r.Key != wk {
						t.Fatalf("seed %d node %d: got %d, want %d", seed, v, r.Key, wk)
					}
				}
				if stats.Steps <= 0 {
					t.Fatal("no steps")
				}
			}
		}
	}
}

func TestSearchSubtreeInternalTargets(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 1000, 210, Config{})
	tr := st.Tree()
	// Internal nodes as targets: results cover exactly their root paths.
	targets := []tree.NodeID{tree.NodeID(rng.Intn(tr.N())), tree.NodeID(rng.Intn(tr.N()))}
	got, _, err := st.SearchSubtree(77, targets, 64)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[tree.NodeID]bool{}
	for _, v := range targets {
		for x := v; x != tree.Nil; x = tr.Parent(x) {
			expect[x] = true
		}
	}
	if len(got) != len(expect) {
		t.Fatalf("%d results, want %d", len(got), len(expect))
	}
}

func TestSearchSubtreeDepthDoesNotGrowWithBreadth(t *testing.T) {
	// Band-synchronous advance: searching 8 paths costs the same number
	// of steps as 1 path (only slots grow).
	st, _, rng := buildStructure(t, 1<<8, 10000, 220, Config{})
	tr := st.Tree()
	var leaves []tree.NodeID
	for v := tree.NodeID(0); int(v) < tr.N(); v++ {
		if tr.IsLeaf(v) {
			leaves = append(leaves, v)
		}
	}
	y := catalog.Key(rng.Intn(40000))
	_, one, err := st.SearchSubtree(y, leaves[:1], 256)
	if err != nil {
		t.Fatal(err)
	}
	many := make([]tree.NodeID, 8)
	for i := range many {
		many[i] = leaves[rng.Intn(len(leaves))]
	}
	_, eight, err := st.SearchSubtree(y, many, 256)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Steps > one.Steps+2 {
		t.Errorf("steps grew with breadth: %d vs %d", eight.Steps, one.Steps)
	}
	if eight.SlotsPeak < one.SlotsPeak {
		t.Errorf("slots should grow with breadth: %d vs %d", eight.SlotsPeak, one.SlotsPeak)
	}
}

func TestSearchSubtreeValidation(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 230, Config{})
	if _, _, err := st.SearchSubtree(5, nil, 4); err == nil {
		t.Error("no targets should fail")
	}
	if _, _, err := st.SearchSubtree(5, []tree.NodeID{999}, 4); err == nil {
		t.Error("out-of-range target should fail")
	}
}
