package core

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// TestExtremeQueryKeys exercises the boundaries of the key space: keys
// below every catalog entry, above every entry, and the +∞ terminal
// itself.
func TestExtremeQueryKeys(t *testing.T) {
	st, _, _ := buildStructure(t, 1<<5, 1200, 500, Config{})
	tr := st.Tree()
	path := tr.RootPath(tree.NodeID(tr.N() - 1))
	for _, y := range []catalog.Key{-1 << 62, -1, 0, catalog.PlusInf - 1, catalog.PlusInf} {
		for _, p := range []int{1, 64, 1 << 18} {
			got, _, err := st.SearchExplicit(y, path, p)
			if err != nil {
				t.Fatalf("y=%d p=%d: %v", y, p, err)
			}
			want, err := st.Cascade().SearchPath(y, path)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("y=%d node %d: %d != %d", y, path[i], got[i].Key, want[i].Key)
				}
			}
			if y == catalog.PlusInf {
				for i := range got {
					if got[i].Key != catalog.PlusInf {
						t.Fatalf("find(+inf) must be the terminal, got %d", got[i].Key)
					}
				}
			}
		}
	}
}

// TestHugeProcessorCounts checks p far beyond n: substructure selection
// clamps and searches stay correct.
func TestHugeProcessorCounts(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<4, 400, 501, Config{})
	tr := st.Tree()
	path := tr.RootPath(tree.NodeID(tr.N() - 1))
	for _, p := range []int{1 << 30, 1 << 50, 1<<62 - 1} {
		y := catalog.Key(rng.Intn(2000))
		got, stats, err := st.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if stats.Sub >= st.NumSubstructures() {
			t.Fatalf("substructure index %d out of range", stats.Sub)
		}
		want, _ := st.Cascade().SearchPath(y, path)
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("p=%d: mismatch", p)
			}
		}
	}
}

// TestZeroAndNegativeProcessorCounts clamp to 1.
func TestZeroAndNegativeProcessorCounts(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 502, Config{})
	path := st.Tree().RootPath(tree.NodeID(st.Tree().N() - 1))
	for _, p := range []int{0, -5} {
		if _, _, err := st.SearchExplicit(7, path, p); err != nil {
			t.Fatalf("p=%d should clamp to 1: %v", p, err)
		}
	}
}

// TestPathToEveryNode: explicit search works for a path ending at every
// single node of the tree, not just leaves.
func TestPathToEveryNode(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<4, 600, 503, Config{})
	tr := st.Tree()
	for v := tree.NodeID(0); int(v) < tr.N(); v++ {
		path := tr.RootPath(v)
		y := catalog.Key(rng.Intn(3000))
		got, _, err := st.SearchExplicit(y, path, 64)
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		want, _ := st.Cascade().SearchPath(y, path)
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("node %d: mismatch at %d", v, i)
			}
		}
	}
}
