package core

import (
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// TestHopKernelPRAM mechanically validates the Theorem 1 claim that one hop
// runs in O(1) time on a CREW PRAM: the Step-3 window tests of a whole
// block execute in exactly one machine step, with the unique winner per
// window performing an exclusive write.
func TestHopKernelPRAM(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 2000, 90, Config{
		NoTruncation: true,
		MaxSubs:      1,
		HOverride:    func(int) int { return 2 },
	})
	tr := st.Tree()
	sub := st.Substructure(0)
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		leaf := tree.NodeID(tr.N() - 1 - rng.Intn(1<<5))
		path := tr.RootPath(leaf)
		y := catalog.Key(rng.Intn(8000))
		block := sub.BlockAt(path[0])
		if block == nil {
			t.Fatal("no block at root")
		}
		pos := st.Cascade().Aug(path[0]).Succ(y)
		end := block.Height
		if end > len(path)-1 {
			end = len(path) - 1
		}
		windows, err := st.HopWindows(sub, block, path[:end+1], pos)
		if err != nil {
			t.Fatal(err)
		}
		slots := 0
		for _, w := range windows {
			slots += w.Hi - w.Lo + 1
		}
		m := pram.MustNew(pram.CREW, slots)
		got, err := st.RunHopKernelPRAM(m, y, windows)
		if err != nil {
			t.Fatalf("hop kernel: %v", err)
		}
		if m.Time() != 1 {
			t.Fatalf("hop kernel took %d steps, want exactly 1", m.Time())
		}
		for i, w := range windows {
			want := st.Cascade().Aug(w.Node).Succ(y)
			if got[i] != want {
				t.Fatalf("window %d (node %d): kernel found %d, want %d", i, w.Node, got[i], want)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no hops checked")
	}
}

// TestHopKernelRejectsEREW confirms the kernel declares its CREW
// requirement instead of silently producing conflicts.
func TestHopKernelRejectsEREW(t *testing.T) {
	st, _, _ := buildStructure(t, 4, 100, 91, Config{})
	m := pram.MustNew(pram.EREW, 16)
	if _, err := st.RunHopKernelPRAM(m, 5, nil); err == nil {
		t.Error("EREW machine should be rejected")
	}
}

// TestHopKernelProcessorBudget verifies the kernel fails cleanly when the
// machine has fewer processors than window slots.
func TestHopKernelProcessorBudget(t *testing.T) {
	st, _, rng := buildStructure(t, 1<<5, 2000, 92, Config{
		NoTruncation: true, MaxSubs: 1, HOverride: func(int) int { return 2 },
	})
	tr := st.Tree()
	sub := st.Substructure(0)
	path := tr.RootPath(tree.NodeID(tr.N() - 1))
	y := catalog.Key(rng.Intn(8000))
	block := sub.BlockAt(path[0])
	pos := st.Cascade().Aug(path[0]).Succ(y)
	end := block.Height
	windows, err := st.HopWindows(sub, block, path[:end+1], pos)
	if err != nil {
		t.Fatal(err)
	}
	m := pram.MustNew(pram.CREW, 1)
	if _, err := st.RunHopKernelPRAM(m, y, windows); err == nil {
		t.Error("under-provisioned machine should be rejected")
	}
}
