package core_test

import (
	"fmt"
	"log"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// Example builds a small cooperative search structure and runs one
// explicit search with 16 processors.
func Example() {
	bt, err := tree.NewBalancedBinary(4) // 7 nodes
	if err != nil {
		log.Fatal(err)
	}
	cats := []catalog.Catalog{
		catalog.MustFromKeys([]catalog.Key{10, 40, 80}, nil), // root
		catalog.MustFromKeys([]catalog.Key{20, 60}, nil),
		catalog.MustFromKeys([]catalog.Key{30, 70}, nil),
		catalog.MustFromKeys([]catalog.Key{15, 55}, nil), // leaves...
		catalog.MustFromKeys([]catalog.Key{25, 65}, nil),
		catalog.MustFromKeys([]catalog.Key{35, 75}, nil),
		catalog.MustFromKeys([]catalog.Key{45, 85}, nil),
	}
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	path := bt.RootPath(5) // root -> node 2 -> node 5
	results, _, err := st.SearchExplicit(50, path, 16)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("find(50, node %d) = %d\n", path[i], r.Key)
	}
	// Output:
	// find(50, node 0) = 80
	// find(50, node 2) = 70
	// find(50, node 5) = 75
}

// ExampleStructure_SearchImplicit shows an implicit search steered by a
// branch function that satisfies the consistency assumption (always
// branch left: the path hugs the leftmost spine).
func ExampleStructure_SearchImplicit() {
	bt, _ := tree.NewBalancedBinary(4)
	cats := make([]catalog.Catalog, bt.N())
	for v := range cats {
		cats[v] = catalog.MustFromKeys([]catalog.Key{catalog.Key(10 * (v + 1))}, nil)
	}
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	branch := func(cascade.Result) core.Branch { return core.Left }
	_, leaf, _, err := st.SearchImplicit(5, branch, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("always-left lands at leaf %d\n", leaf)
	// Output:
	// always-left lands at leaf 3
}
