package core

import (
	"fmt"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Config controls preprocessing.
type Config struct {
	// NoTruncation builds every substructure over the full tree depth, as
	// required for the long-path searches of Theorem 2 (which visit nodes
	// far below level log n). It costs up to a log log n space factor,
	// which Theorem 2's O(n) claim absorbs by building only the needed
	// substructures; see MaxSubs.
	NoTruncation bool
	// MaxSubs limits the number of substructures T_i built (0 = all
	// ⌈log log n⌉ of them). Useful with NoTruncation to keep space linear
	// when the query processor range is known in advance.
	MaxSubs int
	// HOverride, when non-nil, replaces the derived hop height h_i for
	// substructure i by HOverride(i) (values < 1 fall back to the derived
	// value). Used by the ablation benchmarks to sweep the hop height.
	HOverride func(i int) int
	// Sequential disables host-level parallelism during construction.
	Sequential bool
	// Parallelism bounds the host workers used for construction: 0 selects
	// all cores, 1 is sequential, higher values are taken literally.
	// Sequential forces 1. The built structure is identical for every value
	// (only wall time changes), so the knob is not persisted in snapshots —
	// restored structures adopt whatever the restoring host asks for.
	Parallelism int
	// CascadeOptions tunes the underlying fractional cascading build.
	// Bidirectional is forced on: Lemma 1 requires the bidirectional
	// structure.
	CascadeStride int
}

// Structure is the preprocessed cooperative search structure T′ of
// Theorem 1: the fractional cascaded tree S plus the search substructures
// T_0, …, T_{⌈log log n⌉−1}.
type Structure struct {
	s      *cascade.Structure
	t      *tree.Tree
	params Params
	subs   []*Substructure
	cfg    Config
}

// Substructure is one T_i: a partition of the truncated tree into height-h
// blocks, each carrying a forest of sampled skeleton trees.
type Substructure struct {
	// I is the substructure index.
	I int
	// H is the hop (block) height h_i.
	H int
	// S is the sampling stride s_i.
	S int
	// TruncDepth is the deepest covered level.
	TruncDepth int
	// blockOf[v] indexes blocks for block-root nodes, −1 otherwise.
	blockOf []int32
	blocks  []Block
	// SkeletonSlots counts stored skeleton key positions (Lemma 2 space).
	SkeletonSlots int64
}

// Block is one height-h subtree U of the partition, with its skeleton
// forest U_1, …, U_m.
type Block struct {
	// Root is the block's root node in the global tree.
	Root tree.NodeID
	// Nodes lists the block's nodes in BFS order (Nodes[0] == Root);
	// within each level nodes appear left to right.
	Nodes []tree.NodeID
	// Children holds, per local node index, the local indices of its
	// children inside the block (empty at block leaves).
	Children [][]int32
	// Parent holds the local parent index (−1 for the root).
	Parent []int32
	// Level holds each local node's depth within the block.
	Level []int8
	// Height is the block's height (levels 0..Height present).
	Height int
	// M is the number of skeleton trees; M == 1 with a sparse root when
	// the root catalog is too small to sample (key +∞).
	M int
	// Sparse reports the M == 1 too-small-to-sample case.
	Sparse bool
	// KeyPos[j][z] is the position in Aug(Nodes[z]) of skeleton tree U_j's
	// key at local node z (Fig. 3). KeyPos[j][0] is the sampled root
	// position; descendants follow bridges.
	KeyPos [][]int32
}

// Build preprocesses tree t with the given native catalogs into T′.
func Build(t *tree.Tree, native []catalog.Catalog, cfg Config) (*Structure, error) {
	s, err := cascade.Build(t, native, cascade.Options{
		Stride:        cfg.CascadeStride,
		Sequential:    cfg.Sequential,
		Parallelism:   cfg.Parallelism,
		Bidirectional: true,
	})
	if err != nil {
		return nil, err
	}
	return BuildFromCascade(s, cfg)
}

// BuildFromCascade builds T′ on top of an existing bidirectional cascade
// structure.
func BuildFromCascade(s *cascade.Structure, cfg Config) (*Structure, error) {
	if !s.Bidirectional() {
		return nil, fmt.Errorf("core: cascade structure must be bidirectional (Lemma 1)")
	}
	t := s.Tree()
	n := int(s.Stats().NativeEntries)
	params := deriveParams(s.B(), n)
	numSubs := params.NumSubs
	if cfg.MaxSubs > 0 && cfg.MaxSubs < numSubs {
		numSubs = cfg.MaxSubs
	}
	st := &Structure{s: s, t: t, params: params, cfg: cfg}
	for i := 0; i < numSubs; i++ {
		h := params.HopHeight(i)
		if cfg.HOverride != nil {
			if o := cfg.HOverride(i); o >= 1 {
				h = o
			}
		}
		trunc := params.TruncDepth(i, t.Height())
		if cfg.NoTruncation {
			trunc = t.Height()
		}
		sub := &Substructure{
			I:          i,
			H:          h,
			S:          params.SampleStride(h),
			TruncDepth: trunc,
			blockOf:    make([]int32, t.N()),
		}
		for v := range sub.blockOf {
			sub.blockOf[v] = -1
		}
		st.buildSubstructure(sub)
		st.subs = append(st.subs, sub)
	}
	return st, nil
}

// buildSubstructure partitions the truncated tree into height-h blocks
// rooted at depths 0, h, 2h, … and builds each block's skeleton forest.
func (st *Structure) buildSubstructure(sub *Substructure) {
	roots := st.blockRoots(sub)
	sub.blocks = make([]Block, len(roots))
	par := st.cfg.Parallelism
	if st.cfg.Sequential {
		par = 1
	}
	buildpool.ForEach(par, len(roots), 4, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			sub.blocks[bi] = st.buildBlock(roots[bi], sub.H, sub.TruncDepth, sub.S)
		}
	})
	for bi := range sub.blocks {
		sub.blockOf[roots[bi]] = int32(bi)
		sub.SkeletonSlots += int64(sub.blocks[bi].M) * int64(len(sub.blocks[bi].Nodes))
	}
}

// blockRoots collects the block roots of a substructure: nodes at depth
// ≡ 0 (mod h), strictly above the truncation boundary, in level order.
func (st *Structure) blockRoots(sub *Substructure) []tree.NodeID {
	t := st.t
	var roots []tree.NodeID
	for _, v := range t.LevelOrder() {
		d := t.Depth(v)
		if d >= sub.TruncDepth {
			continue
		}
		if d%sub.H == 0 && !t.IsLeaf(v) {
			roots = append(roots, v)
		}
	}
	return roots
}

// blockTopology collects by BFS the block rooted at u with height
// min(h, trunc − depth(u)): its nodes, local parent/child links, and
// levels. The skeleton forest (M, Sparse, KeyPos) is filled in separately
// by buildBlock or, on snapshot import, validated against stored state.
func (st *Structure) blockTopology(u tree.NodeID, h, trunc int) Block {
	t := st.t
	baseDepth := t.Depth(u)
	maxLevel := h
	if baseDepth+maxLevel > trunc {
		maxLevel = trunc - baseDepth
	}
	b := Block{Root: u}
	b.Nodes = append(b.Nodes, u)
	b.Parent = append(b.Parent, -1)
	b.Level = append(b.Level, 0)
	for qi := 0; qi < len(b.Nodes); qi++ {
		v := b.Nodes[qi]
		lvl := b.Level[qi]
		b.Children = append(b.Children, nil)
		if int(lvl) >= maxLevel {
			continue
		}
		for _, c := range t.Children(v) {
			b.Children[qi] = append(b.Children[qi], int32(len(b.Nodes)))
			b.Nodes = append(b.Nodes, c)
			b.Parent = append(b.Parent, int32(qi))
			b.Level = append(b.Level, lvl+1)
		}
	}
	b.Height = maxLevel
	return b
}

// buildBlock builds one block rooted at u with height min(h, trunc −
// depth(u)) and its skeleton forest with stride s.
func (st *Structure) buildBlock(u tree.NodeID, h, trunc, s int) Block {
	b := st.blockTopology(u, h, trunc)
	// Skeleton forest: sample the root catalog with stride s.
	tLen := st.s.Aug(u).Len()
	m := tLen / s
	if m < 1 {
		m = 1
		b.Sparse = true
	}
	b.M = m
	b.KeyPos = make([][]int32, m)
	for j := 0; j < m; j++ {
		kp := make([]int32, len(b.Nodes))
		if j < m-1 {
			kp[0] = int32((j+1)*s - 1)
		} else {
			kp[0] = int32(tLen - 1) // +∞ terminal (sparse root when m == 1)
		}
		// Induce descendant keys via bridges (key[w,U_j] = bridge of
		// key[parent, U_j]); BFS order guarantees parents precede children.
		for z := 0; z < len(b.Nodes); z++ {
			v := b.Nodes[z]
			for ci, cz := range b.Children[z] {
				kp[cz] = int32(st.s.BridgePos(v, ci, int(kp[z])))
			}
		}
		b.KeyPos[j] = kp
	}
	return b
}

// Params returns the derived construction constants.
func (st *Structure) Params() Params { return st.params }

// Cascade returns the underlying fractional cascaded structure S.
func (st *Structure) Cascade() *cascade.Structure { return st.s }

// Tree returns the underlying tree.
func (st *Structure) Tree() *tree.Tree { return st.t }

// NumSubstructures returns how many T_i were built.
func (st *Structure) NumSubstructures() int { return len(st.subs) }

// Substructure returns T_i.
func (st *Structure) Substructure(i int) *Substructure { return st.subs[i] }

// SelectSub returns the substructure index used for p processors, clamped
// to the built range.
func (st *Structure) SelectSub(p int) int {
	i := st.params.SubstructureFor(p)
	if i >= len(st.subs) {
		i = len(st.subs) - 1
	}
	return i
}

// BlockAt returns the block rooted at node v in substructure i, or nil.
func (sub *Substructure) BlockAt(v tree.NodeID) *Block {
	bi := sub.blockOf[v]
	if bi < 0 {
		return nil
	}
	return &sub.blocks[bi]
}

// Blocks exposes all blocks of the substructure (read-only).
func (sub *Substructure) Blocks() []Block { return sub.blocks }

// SpaceReport summarises memory for the Lemma 2 experiment.
type SpaceReport struct {
	// NativeEntries is the paper's n.
	NativeEntries int64
	// AugEntries is the size of the cascaded structure S.
	AugEntries int64
	// PerSub[i] is the number of skeleton slots stored by T_i.
	PerSub []int64
	// SkeletonSlots is the total over all substructures.
	SkeletonSlots int64
}

// SpaceReport measures the structure's space in entry/slot units.
func (st *Structure) SpaceReport() SpaceReport {
	r := SpaceReport{
		NativeEntries: st.s.Stats().NativeEntries,
		AugEntries:    st.s.Stats().AugEntries,
	}
	for _, sub := range st.subs {
		r.PerSub = append(r.PerSub, sub.SkeletonSlots)
		r.SkeletonSlots += sub.SkeletonSlots
	}
	return r
}
