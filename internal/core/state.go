package core

import (
	"fmt"
	"sync"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/cascade"
	"fraccascade/internal/tree"
)

// ConfigState is the serializable subset of Config. HOverride is a
// function value and cannot be persisted; ExportState refuses structures
// built with one.
type ConfigState struct {
	NoTruncation  bool
	MaxSubs       int
	Sequential    bool
	CascadeStride int
}

// Config reconstitutes the build configuration the state describes.
func (c ConfigState) Config() Config {
	return Config{
		NoTruncation:  c.NoTruncation,
		MaxSubs:       c.MaxSubs,
		Sequential:    c.Sequential,
		CascadeStride: c.CascadeStride,
	}
}

// BlockState is the persisted skeleton of one block. The topology (nodes,
// local links, levels) is reconstructed from the tree at import; only the
// root — kept as a corruption tripwire — and the skeleton key positions
// are stored.
type BlockState struct {
	Root   tree.NodeID
	KeyPos [][]int32
}

// SubState is the persisted shape of one substructure T_i. Hop height,
// stride, and truncation depth are derived from the params at import.
type SubState struct {
	Blocks []BlockState
}

// State is the persisted shape of a Structure minus the underlying cascade,
// which is serialized separately (see cascade.ExportParts).
type State struct {
	Cfg  ConfigState
	Subs []SubState
}

// Config returns the configuration the structure was built with.
func (st *Structure) Config() Config { return st.cfg }

// ExportState returns the structure's built state for serialization.
// KeyPos slices alias the live blocks; callers must treat them as
// read-only.
func (st *Structure) ExportState() (State, error) {
	if st.cfg.HOverride != nil {
		return State{}, fmt.Errorf("core: structures built with Config.HOverride cannot be exported")
	}
	out := State{Cfg: ConfigState{
		NoTruncation:  st.cfg.NoTruncation,
		MaxSubs:       st.cfg.MaxSubs,
		Sequential:    st.cfg.Sequential,
		CascadeStride: st.cfg.CascadeStride,
	}}
	for _, sub := range st.subs {
		ss := SubState{Blocks: make([]BlockState, len(sub.blocks))}
		for bi := range sub.blocks {
			b := &sub.blocks[bi]
			ss.Blocks[bi] = BlockState{Root: b.Root, KeyPos: b.KeyPos}
		}
		out.Subs = append(out.Subs, ss)
	}
	return out, nil
}

// FromParts reassembles a Structure over an already-restored cascade
// structure. Everything derivable — params, hop heights, strides,
// truncation depths, block roots, and block topology — is recomputed from
// the cascade and the config and cross-checked against the stored state:
// a mismatched block count or root, a wrong skeleton shape, or an
// out-of-range key position is reported as an error, never as a later
// panic or a silently wrong answer.
func FromParts(s *cascade.Structure, state State) (*Structure, error) {
	return FromPartsParallel(s, state, 1)
}

// FromPartsParallel is FromParts with the per-block topology rebuild and
// skeleton validation fanned out over parallelism host workers (0 = all
// cores). Blocks import independently, so the outcome is identical for
// every parallelism value; when several blocks are invalid, the error for
// the lowest block index is reported, matching the sequential scan.
func FromPartsParallel(s *cascade.Structure, state State, parallelism int) (*Structure, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil cascade structure")
	}
	if !s.Bidirectional() {
		return nil, fmt.Errorf("core: cascade structure must be bidirectional (Lemma 1)")
	}
	cfg := state.Cfg.Config()
	t := s.Tree()
	n := int(s.Stats().NativeEntries)
	params := deriveParams(s.B(), n)
	numSubs := params.NumSubs
	if cfg.MaxSubs > 0 && cfg.MaxSubs < numSubs {
		numSubs = cfg.MaxSubs
	}
	if len(state.Subs) != numSubs {
		return nil, fmt.Errorf("core: state has %d substructures, config derives %d", len(state.Subs), numSubs)
	}
	st := &Structure{s: s, t: t, params: params, cfg: cfg}
	for i := 0; i < numSubs; i++ {
		h := params.HopHeight(i)
		trunc := params.TruncDepth(i, t.Height())
		if cfg.NoTruncation {
			trunc = t.Height()
		}
		sub := &Substructure{
			I:          i,
			H:          h,
			S:          params.SampleStride(h),
			TruncDepth: trunc,
			blockOf:    make([]int32, t.N()),
		}
		for v := range sub.blockOf {
			sub.blockOf[v] = -1
		}
		roots := st.blockRoots(sub)
		if len(state.Subs[i].Blocks) != len(roots) {
			return nil, fmt.Errorf("core: sub %d: state has %d blocks, tree derives %d", i, len(state.Subs[i].Blocks), len(roots))
		}
		sub.blocks = make([]Block, len(roots))
		var (
			errMu    sync.Mutex
			errBlock = len(roots)
			errVal   error
		)
		stored := state.Subs[i].Blocks
		buildpool.ForEach(parallelism, len(roots), 4, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				blk, err := st.importBlock(roots[bi], sub.H, sub.TruncDepth, sub.S, stored[bi])
				if err != nil {
					errMu.Lock()
					if bi < errBlock {
						errBlock, errVal = bi, fmt.Errorf("core: sub %d block %d: %w", i, bi, err)
					}
					errMu.Unlock()
					return
				}
				sub.blocks[bi] = blk
			}
		})
		if errVal != nil {
			return nil, errVal
		}
		for bi := range sub.blocks {
			blk := &sub.blocks[bi]
			sub.blockOf[blk.Root] = int32(bi)
			sub.SkeletonSlots += int64(blk.M) * int64(len(blk.Nodes))
		}
		st.subs = append(st.subs, sub)
	}
	return st, nil
}

// importBlock rebuilds one block's topology and validates the stored
// skeleton forest against it.
func (st *Structure) importBlock(u tree.NodeID, h, trunc, s int, stored BlockState) (Block, error) {
	if stored.Root != u {
		return Block{}, fmt.Errorf("stored root %d, derived %d", stored.Root, u)
	}
	b := st.blockTopology(u, h, trunc)
	tLen := st.s.Aug(u).Len()
	m := tLen / s
	if m < 1 {
		m = 1
		b.Sparse = true
	}
	b.M = m
	if len(stored.KeyPos) != m {
		return Block{}, fmt.Errorf("%d skeleton trees stored, %d derived", len(stored.KeyPos), m)
	}
	for j, kp := range stored.KeyPos {
		if len(kp) != len(b.Nodes) {
			return Block{}, fmt.Errorf("skeleton %d: %d positions for %d nodes", j, len(kp), len(b.Nodes))
		}
		want := int32((j+1)*s - 1)
		if j == m-1 {
			want = int32(tLen - 1)
		}
		if kp[0] != want {
			return Block{}, fmt.Errorf("skeleton %d: root position %d, want %d", j, kp[0], want)
		}
		for z, v := range b.Nodes {
			if kp[z] < 0 || int(kp[z]) >= st.s.Aug(v).Len() {
				return Block{}, fmt.Errorf("skeleton %d node %d: position %d outside catalog of len %d", j, z, kp[z], st.s.Aug(v).Len())
			}
		}
	}
	b.KeyPos = stored.KeyPos
	return b, nil
}
