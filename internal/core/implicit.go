package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// Branch is the outcome of the secondary comparison steering an implicit
// search.
type Branch int8

const (
	// Left selects the left child.
	Left Branch = iota
	// Right selects the right child.
	Right
)

func (b Branch) String() string {
	if b == Left {
		return "left"
	}
	return "right"
}

// BranchFunc is the paper's branch(q, find(y, v)) secondary comparison: it
// inspects the catalog entry found at a node and decides the branch. For
// the basic implicit search it must satisfy the consistency assumption of
// Section 2: at any node w left (right) of the search path it returns
// right (left), and at the path's leaf it returns left.
type BranchFunc func(r cascade.Result) Branch

// SearchImplicit performs a basic implicit cooperative search with p
// processors on a binary tree: the root-to-leaf path is discovered during
// the search via branch. It returns find(y, v) for every node on the
// discovered path, the leaf reached, and the simulated cost.
//
// Within each block the implementation evaluates find and branch at every
// block node (Section 2.3 assigns processors to all of U), then resolves
// the block-internal path from the internal nodes' branches; the
// consistency assumption makes the per-level right→left transition unique,
// which the CREW machine exploits to identify the path in O(1) — charged
// here as a constant number of steps.
func (st *Structure) SearchImplicit(y catalog.Key, branch BranchFunc, p int) ([]cascade.Result, tree.NodeID, Stats, error) {
	if st.t.MaxDegree() > 2 {
		return nil, tree.Nil, Stats{}, fmt.Errorf("core: implicit search requires a binary tree (degree %d)", st.t.MaxDegree())
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}

	v := st.t.Root()
	rootCat := st.s.Aug(v)
	pos := rootCat.Succ(y)
	stats.RootRounds = parallel.CoopSearchSteps(rootCat.Len(), p)
	stats.Steps += stats.RootRounds
	results := []cascade.Result{st.s.ResultAt(v, pos)}

	for !st.t.IsLeaf(v) {
		block := sub.BlockAt(v)
		if block == nil || st.t.Depth(v) >= sub.TruncDepth {
			// Sequential: branch from the current result, then one bridge
			// descent.
			br := branch(results[len(results)-1])
			ci := 0
			if br == Right {
				ci = 1
			}
			ch := st.t.Children(v)
			if len(ch) != 2 {
				return nil, tree.Nil, stats, fmt.Errorf("core: node %d has %d children on an implicit path", v, len(ch))
			}
			pos, _ = st.s.Descend(y, v, ci, pos)
			v = ch[ci]
			results = append(results, st.s.ResultAt(v, pos))
			stats.SeqLevels++
			stats.Steps++
			continue
		}
		var err error
		v, pos, err = st.hopImplicit(sub, block, y, pos, branch, &results, &stats)
		if err != nil {
			return nil, tree.Nil, stats, err
		}
		stats.Hops++
		stats.Steps += implicitHopCostSteps
	}
	return results, v, stats, nil
}

// FindAllInBlock computes find(y, ·) positions for every node of the block
// (Section 2.3 assigns processors to all of U) from the true successor
// position pos at the block root, via the Lemma 3 window recurrence. It
// returns the per-local-node positions and the processor-slot demand.
// It is exported for searches with non-basic branch functions — point
// location builds its own hop on top of it.
func (st *Structure) FindAllInBlock(sub *Substructure, block *Block, y catalog.Key, pos int) ([]int32, int64, error) {
	j, offset := block.sampleFor(pos, sub.S)
	kp := block.KeyPos[j]

	findPos := make([]int32, len(block.Nodes))
	findPos[0] = int32(pos)
	hopSlots := int64(sub.S)
	// Window slack per block level (identical recurrence for all nodes of
	// a level, seeded by the Step-2 sampling offset).
	lo := -offset
	curLevel := int8(0)
	for z := 1; z < len(block.Nodes); z++ {
		if block.Level[z] != curLevel {
			curLevel = block.Level[z]
			lo = st.params.WindowLo(lo)
		}
		anchor := int(kp[z])
		winLo, winHi := anchor+lo, anchor
		cat := st.s.Aug(block.Nodes[z])
		found := cat.SuccInWindow(y, winLo, winHi)
		if found > winHi {
			return nil, 0, fmt.Errorf("core: Lemma 3 window [%d,%d] missed find(y,%d) (y=%d)", winLo, winHi, block.Nodes[z], y)
		}
		findPos[z] = int32(found)
		width := winHi - max(0, winLo) + 1
		hopSlots += int64(width)
	}
	return findPos, hopSlots, nil
}

// hopImplicit evaluates find and branch over all nodes of the block,
// resolves the block-internal path, appends its results, and returns the
// exit node with its successor position.
func (st *Structure) hopImplicit(sub *Substructure, block *Block, y catalog.Key, pos int, branch BranchFunc, results *[]cascade.Result, stats *Stats) (tree.NodeID, int, error) {
	findPos, hopSlots, err := st.FindAllInBlock(sub, block, y, pos)
	if err != nil {
		return tree.Nil, 0, err
	}
	stats.SlotsTotal += hopSlots
	if int(hopSlots) > stats.SlotsPeak {
		stats.SlotsPeak = int(hopSlots)
	}

	// Resolve the block-internal path from internal branches; collect
	// results along it. Also verify the consistency assumption's unique
	// right→left transition at each level (the basis of the O(1) CREW
	// identification).
	local := int32(0)
	for int(block.Level[local]) < block.Height {
		r := st.s.ResultAt(block.Nodes[local], int(findPos[local]))
		br := branch(r)
		ch := block.Children[local]
		if len(ch) != 2 {
			return tree.Nil, 0, fmt.Errorf("core: block node %d lacks two children", block.Nodes[local])
		}
		if br == Left {
			local = ch[0]
		} else {
			local = ch[1]
		}
		*results = append(*results, st.s.ResultAt(block.Nodes[local], int(findPos[local])))
	}
	return block.Nodes[local], int(findPos[local]), nil
}

// CheckConsistency evaluates branch over every node of the tree for the
// query (y, branch) and verifies the consistency assumption relative to
// the path the implicit search would take: nodes strictly left of the path
// must return Right, nodes strictly right must return Left. Tests use it
// to validate generated branch functions before trusting search results.
func (st *Structure) CheckConsistency(y catalog.Key, branch BranchFunc) error {
	if st.t.MaxDegree() > 2 {
		return fmt.Errorf("core: consistency check requires a binary tree")
	}
	// Reference path by sequential descent.
	v := st.t.Root()
	pos := st.s.Aug(v).Succ(y)
	onPath := map[tree.NodeID]bool{v: true}
	for !st.t.IsLeaf(v) {
		br := branch(st.s.ResultAt(v, pos))
		ci := 0
		if br == Right {
			ci = 1
		}
		pos, _ = st.s.Descend(y, v, ci, pos)
		v = st.t.Children(v)[ci]
		onPath[v] = true
	}
	inorder, err := st.t.InorderIndex()
	if err != nil {
		return err
	}
	pathLeafIdx := inorder[v]
	for w := tree.NodeID(0); int(w) < st.t.N(); w++ {
		if onPath[w] {
			continue
		}
		wPos := st.s.Aug(w).Succ(y)
		br := branch(st.s.ResultAt(w, wPos))
		if inorder[w] < pathLeafIdx && br != Right {
			return fmt.Errorf("core: node %d left of path branches %v", w, br)
		}
		if inorder[w] > pathLeafIdx && br != Left {
			return fmt.Errorf("core: node %d right of path branches %v", w, br)
		}
	}
	if branch(st.s.ResultAt(v, pos)) != Left {
		return fmt.Errorf("core: path leaf %d must branch left", v)
	}
	return nil
}
