package core

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// SearchExplicitFromFinger is SearchExplicit entered through a finger: a
// previously resolved position in the path head's augmented catalog
// (typically the entry position of an earlier nearby query). Instead of
// the Step-1 cooperative binary search, the entry position is located by
// galloping from the finger (catalog.SuccFromFinger), whose probe count
// grows as O(log d) for key-distance d between the finger and the true
// successor — distance-sensitive entry in the style of Gilbert–Lim's
// parallel finger search structures. The probes are charged as entry
// rounds, so Stats reflect the saving while the descent below the entry
// is byte-for-byte the SearchExplicit machinery: results are always
// oracle-exact regardless of how stale the finger is.
//
// A finger outside the head catalog cannot seed a gallop; the search
// falls back to the full Step-1 entry (used = false), still returning
// exact results.
func (st *Structure) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, Stats, bool, error) {
	if err := st.t.ValidatePath(path); err != nil {
		return nil, Stats{}, false, err
	}
	if path[0] != st.t.Root() {
		return nil, Stats{}, false, fmt.Errorf("core: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := st.SelectSub(p)
	sub := st.subs[si]
	stats := Stats{Sub: si, P: p}
	head := st.s.Aug(path[0])
	if finger < 0 || finger >= head.Len() {
		results, err := st.searchSegmentCtl(sub, y, path, p, &stats, nil)
		return results, stats, false, err
	}
	pos, probes := head.SuccFromFinger(y, finger)
	stats.RootRounds += probes
	stats.Steps += probes
	results, err := st.descendFromCtl(sub, y, path, p, pos, &stats, nil)
	return results, stats, true, err
}
