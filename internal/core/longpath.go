package core

import (
	"fmt"
	"math"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// SearchLongPath performs the Theorem 2 explicit cooperative search along
// an arbitrary downward path of length k in a bounded-degree tree:
// the path is partitioned into subpaths of length log n; p^ε processors
// handle each subpath, so ⌊p^{1−ε}⌋ subpaths proceed concurrently, giving
// O((log n)/log p + k/(p^{1−ε}·log p)) total time. The structure should be
// built with NoTruncation (long paths descend below the truncation depth
// of root-to-leaf substructures).
//
// The returned Stats aggregate the simulated schedule: Steps is the sum
// over concurrent batches of the slowest subpath in the batch.
func (st *Structure) SearchLongPath(y catalog.Key, path []tree.NodeID, p int, eps float64) ([]cascade.Result, Stats, error) {
	if err := st.t.ValidatePath(path); err != nil {
		return nil, Stats{}, err
	}
	if eps <= 0 || eps > 1 {
		return nil, Stats{}, fmt.Errorf("core: eps must be in (0, 1], got %v", eps)
	}
	if p < 1 {
		p = 1
	}
	pe := int(math.Floor(math.Pow(float64(p), eps)))
	if pe < 1 {
		pe = 1
	}
	groupSize := p / pe
	if groupSize < 1 {
		groupSize = 1
	}
	segLen := st.params.LogN
	if segLen < 1 {
		segLen = 1
	}
	si := st.SelectSub(pe)
	sub := st.subs[si]
	total := Stats{Sub: si, P: p}

	// Partition into subpaths; adjacent subpaths share their boundary node
	// so each segment is self-contained (its head search replaces the
	// bridge that a purely sequential walk would use).
	var segments [][]tree.NodeID
	for lo := 0; lo < len(path)-1 || lo == 0; lo += segLen {
		hi := lo + segLen
		if hi > len(path)-1 {
			hi = len(path) - 1
		}
		segments = append(segments, path[lo:hi+1])
		if hi == len(path)-1 {
			break
		}
	}

	results := make([]cascade.Result, 0, len(path))
	// Process groups of groupSize segments "concurrently": charge the max
	// step count within each batch.
	for lo := 0; lo < len(segments); lo += groupSize {
		hi := lo + groupSize
		if hi > len(segments) {
			hi = len(segments)
		}
		batchMax := 0
		for six := lo; six < hi; six++ {
			seg := segments[six]
			var segStats Stats
			segResults, err := st.searchSegment(sub, y, seg, pe, &segStats)
			if err != nil {
				return nil, total, err
			}
			if six == 0 {
				results = append(results, segResults...)
			} else {
				results = append(results, segResults[1:]...) // boundary node already reported
			}
			if segStats.Steps > batchMax {
				batchMax = segStats.Steps
			}
			total.RootRounds += segStats.RootRounds
			total.Hops += segStats.Hops
			total.SeqLevels += segStats.SeqLevels
			total.SlotsTotal += segStats.SlotsTotal
			if segStats.SlotsPeak > total.SlotsPeak {
				total.SlotsPeak = segStats.SlotsPeak
			}
		}
		total.Steps += batchMax
	}
	return results, total, nil
}
