// Package geom provides the exact integer geometric primitives used by the
// point-location and retrieval structures: points, y-monotone segments, and
// sign-exact orientation predicates (128-bit intermediate arithmetic, no
// floating point).
package geom

import "math/bits"

// Point is a point with integer coordinates.
type Point struct {
	X, Y int64
}

// Segment is a directed segment; the point-location structures keep the
// invariant A.Y < B.Y (y-monotone, pointing up).
type Segment struct {
	A, B Point
}

// mul128 returns the signed 128-bit product of a and b as (hi, lo).
func mul128(a, b int64) (hi int64, lo uint64) {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	h, l := bits.Mul64(ua, ub)
	if neg {
		// Two's complement negate the 128-bit value.
		l = ^l + 1
		h = ^h
		if l == 0 {
			h++
		}
	}
	return int64(h), l
}

// add128 adds two signed 128-bit values.
func add128(ah int64, al uint64, bh int64, bl uint64) (int64, uint64) {
	lo, carry := bits.Add64(al, bl, 0)
	hi := ah + bh + int64(carry)
	return hi, lo
}

// sign128 returns the sign of a signed 128-bit value.
func sign128(hi int64, lo uint64) int {
	if hi < 0 {
		return -1
	}
	if hi > 0 || lo > 0 {
		return 1
	}
	return 0
}

// Orient returns the orientation of the ordered triple (a, b, c):
// +1 if c lies left of the directed line a→b (counter-clockwise),
// −1 if right (clockwise), and 0 if collinear. Exact for all int64
// coordinates.
func Orient(a, b, c Point) int {
	// sign((b-a) × (c-a)) with 128-bit products.
	p1h, p1l := mul128(b.X-a.X, c.Y-a.Y)
	p2h, p2l := mul128(b.Y-a.Y, c.X-a.X)
	// p1 - p2.
	nh, nl := p2h, p2l
	nl = ^nl + 1
	nh = ^nh
	if nl == 0 {
		nh++
	}
	h, l := add128(p1h, p1l, nh, nl)
	return sign128(h, l)
}

// SideOf classifies query point q against the upward y-monotone segment s
// (s.A.Y < s.B.Y): −1 if q is strictly left, +1 if strictly right, 0 if q
// lies on the supporting line.
func SideOf(q Point, s Segment) int {
	// Left of the upward directed line A→B means Orient(A, B, q) > 0.
	return -Orient(s.A, s.B, q)
}

// SpansY reports whether segment s's closed y-extent contains y.
func (s Segment) SpansY(y int64) bool {
	return s.A.Y <= y && y <= s.B.Y
}

// YMonotone reports whether the segment points strictly upward.
func (s Segment) YMonotone() bool { return s.A.Y < s.B.Y }
