package geom

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func orientBig(a, b, c Point) int {
	bx := new(big.Int).SetInt64(b.X - a.X)
	cy := new(big.Int).SetInt64(c.Y - a.Y)
	by := new(big.Int).SetInt64(b.Y - a.Y)
	cx := new(big.Int).SetInt64(c.X - a.X)
	left := new(big.Int).Mul(bx, cy)
	right := new(big.Int).Mul(by, cx)
	return left.Sub(left, right).Sign()
}

func TestOrientBasic(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	if Orient(a, b, Point{5, 5}) != 1 {
		t.Error("point above x-axis should be CCW (+1)")
	}
	if Orient(a, b, Point{5, -5}) != -1 {
		t.Error("point below x-axis should be CW (-1)")
	}
	if Orient(a, b, Point{20, 0}) != 0 {
		t.Error("collinear point should give 0")
	}
}

func TestOrientMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ranges := []int64{10, 1000, 1 << 30, 1 << 40, math.MaxInt64 / 4}
	for _, r := range ranges {
		for trial := 0; trial < 500; trial++ {
			p := func() Point {
				return Point{rng.Int63n(2*r+1) - r, rng.Int63n(2*r+1) - r}
			}
			a, b, c := p(), p(), p()
			if got, want := Orient(a, b, c), orientBig(a, b, c); got != want {
				t.Fatalf("Orient(%v,%v,%v) = %d, want %d", a, b, c, got, want)
			}
		}
	}
}

func TestOrientExtremes(t *testing.T) {
	const m = math.MaxInt64 / 2
	cases := [][3]Point{
		{{-m, -m}, {m, m}, {m, -m}},
		{{-m, -m}, {m, m}, {-m, m}},
		{{-m, -m}, {m, m}, {0, 0}},
		{{0, 0}, {m, 1}, {m, 1}},
	}
	for _, c := range cases {
		if got, want := Orient(c[0], c[1], c[2]), orientBig(c[0], c[1], c[2]); got != want {
			t.Errorf("Orient(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestQuickOrient(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int32) bool {
		a := Point{int64(ax), int64(ay)}
		b := Point{int64(bx), int64(by)}
		c := Point{int64(cx), int64(cy)}
		return Orient(a, b, c) == orientBig(a, b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := func() Point { return Point{rng.Int63n(1000) - 500, rng.Int63n(1000) - 500} }
		a, b, c := p(), p(), p()
		if Orient(a, b, c) != -Orient(b, a, c) {
			t.Fatalf("antisymmetry violated for %v %v %v", a, b, c)
		}
		if Orient(a, b, c) != Orient(b, c, a) {
			t.Fatalf("cyclic invariance violated for %v %v %v", a, b, c)
		}
	}
}

func TestSideOf(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{0, 10}} // vertical, pointing up
	if SideOf(Point{-5, 5}, s) != -1 {
		t.Error("point with smaller x should be left of upward vertical segment")
	}
	if SideOf(Point{5, 5}, s) != 1 {
		t.Error("point with larger x should be right")
	}
	if SideOf(Point{0, 3}, s) != 0 {
		t.Error("point on segment should be 0")
	}
	slanted := Segment{A: Point{0, 0}, B: Point{10, 10}}
	if SideOf(Point{1, 9}, slanted) != -1 {
		t.Error("above the diagonal is left")
	}
	if SideOf(Point{9, 1}, slanted) != 1 {
		t.Error("below the diagonal is right")
	}
}

func TestSpansY(t *testing.T) {
	s := Segment{A: Point{0, 2}, B: Point{5, 8}}
	for _, c := range []struct {
		y    int64
		want bool
	}{{1, false}, {2, true}, {5, true}, {8, true}, {9, false}} {
		if got := s.SpansY(c.y); got != c.want {
			t.Errorf("SpansY(%d) = %v, want %v", c.y, got, c.want)
		}
	}
	if !s.YMonotone() {
		t.Error("segment should be y-monotone")
	}
	if (Segment{A: Point{0, 5}, B: Point{1, 5}}).YMonotone() {
		t.Error("horizontal segment is not y-monotone")
	}
}
