package geom

import "testing"

// FuzzOrient cross-checks the 128-bit orientation predicate against the
// big.Int reference on arbitrary coordinates (also runs its seed corpus as
// ordinary tests under `go test`).
func FuzzOrient(f *testing.F) {
	f.Add(int64(0), int64(0), int64(10), int64(0), int64(5), int64(5))
	f.Add(int64(-1<<62), int64(1<<62), int64(1<<62), int64(-1<<62), int64(0), int64(0))
	f.Add(int64(1), int64(1), int64(2), int64(2), int64(3), int64(3))
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy int64) {
		// Keep differences within int64 (the predicate's documented
		// domain): clamp to half range.
		clamp := func(v int64) int64 {
			const m = 1 << 62
			if v > m {
				return m
			}
			if v < -m {
				return -m
			}
			return v
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if got, want := Orient(a, b, c), orientBig(a, b, c); got != want {
			t.Fatalf("Orient(%v,%v,%v) = %d, want %d", a, b, c, got, want)
		}
	})
}
