package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// FS abstracts the four filesystem operations of a crash-safe snapshot
// write. The method signatures use only stdlib types so fault injectors
// (internal/faults.DiskPlan) can implement the interface without importing
// this package.
type FS interface {
	// WriteTemp creates a uniquely named file in dir from pattern (as
	// os.CreateTemp), writes data, fsyncs, closes, and returns the path.
	WriteTemp(dir, pattern string, data []byte) (string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs the directory so the rename itself is durable.
	SyncDir(dir string) error
	// Remove deletes a file; used to clean up a temp file whose rename
	// failed.
	Remove(path string) error
}

// OSFS is the real-filesystem FS.
type OSFS struct{}

// WriteTemp implements FS using os.CreateTemp + Write + Sync.
func (OSFS) WriteTemp(dir, pattern string, data []byte) (string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	name := f.Name()
	cleanup := func(err error) (string, error) {
		f.Close()
		os.Remove(name)
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(name)
		return "", err
	}
	return name, nil
}

// Rename implements FS with os.Rename.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir implements FS by fsyncing the directory file descriptor.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Remove implements FS with os.Remove.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Save writes the store to path crash-safely: encode, write to a
// same-directory temp file, fsync, atomically rename over path, fsync the
// directory. A crash at any point leaves either the old snapshot or the
// new one, never a torn file at path.
func Save(path string, st *Store) error {
	return SaveFS(OSFS{}, path, st)
}

// SaveFS is Save over an injectable filesystem, for fault testing.
func SaveFS(fsys FS, path string, st *Store) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.WriteTemp(dir, ".snapshot-*.tmp", data)
	if err != nil {
		return fmt.Errorf("snapshot: write temp in %s: %w", dir, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		// Best effort: the temp file is garbage either way; the previous
		// snapshot at path is untouched.
		_ = fsys.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s -> %s: %w", tmp, path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: sync %s: %w", dir, err)
	}
	return nil
}

// Load reads and decodes the snapshot at path. A missing or unreadable
// file returns the underlying I/O error (IsCorrupt reports false);
// undecodable contents return a *CorruptionError (IsCorrupt reports
// true). Either way the caller's move is the same: rebuild from source.
func Load(path string) (*Store, error) {
	return LoadParallel(path, 1)
}

// LoadParallel is Load with the restore re-validation fanned out over
// parallelism host workers (0 = all cores); see DecodeParallel.
func LoadParallel(path string, parallelism int) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeParallel(data, parallelism)
}
