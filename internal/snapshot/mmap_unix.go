//go:build linux || darwin

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapped bytes plus the
// unmap closure. Empty files are returned as an empty non-mapped slice
// (mmap of length 0 is an error on every platform) so the caller's decode
// still sees the truncation. The mapping is MAP_PRIVATE: a concurrent
// rewrite of the sidecar (which always goes through rename) never mutates
// the pages a running view is serving from.
func mmapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return []byte{}, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
