package snapshot

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// buildStaticParallel is buildStatic with an explicit build parallelism.
func buildStaticParallel(tb testing.TB, leaves, perNode int, seed int64, parallelism int) *core.Structure {
	tb.Helper()
	t, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	st, err := core.Build(t, randomCatalogs(tb, t, perNode, rng), core.Config{Parallelism: parallelism})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	return st
}

// TestEncodeBitIdenticalAcrossBuildParallelism is the end-to-end
// determinism pin: structures built at any parallelism must serialize to
// byte-identical snapshots. The wire format has no room for schedule
// noise — if a parallel merge ever reordered an entry, the encoded bytes
// would diverge here before any query-level test noticed.
func TestEncodeBitIdenticalAcrossBuildParallelism(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seqBytes := encodeOne(t, buildStaticParallel(t, 16, 24, seed, 1))
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			parBytes := encodeOne(t, buildStaticParallel(t, 16, 24, seed, par))
			if !bytes.Equal(seqBytes, parBytes) {
				t.Fatalf("seed %d: snapshot of build with parallelism %d differs from sequential (%d vs %d bytes)",
					seed, par, len(parBytes), len(seqBytes))
			}
		}
	}
}

func encodeOne(tb testing.TB, st *core.Structure) []byte {
	tb.Helper()
	data, err := Encode(&Store{Shards: []Shard{{Kind: KindStatic, Static: st}}})
	if err != nil {
		tb.Fatalf("encode: %v", err)
	}
	return data
}

// TestDecodeParallelDeterministic pins the parallel restore: decoding the
// same snapshot at any parallelism yields shards whose re-encoded bytes
// and exported state match the sequential decode's, and whose answers
// match the original structure's.
func TestDecodeParallelDeterministic(t *testing.T) {
	st := buildStatic(t, 16, 24, 7)
	data := encodeOne(t, st)
	seq, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	seqState, err := seq.Shards[0].Static.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
		got, err := DecodeParallel(data, par)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		gotState, err := got.Shards[0].Static.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotState, seqState) {
			t.Fatalf("DecodeParallel(par=%d) state differs from sequential decode", par)
		}
		if !bytes.Equal(encodeOne(t, got.Shards[0].Static), data) {
			t.Fatalf("DecodeParallel(par=%d) re-encode differs from the original snapshot", par)
		}
		assertSameAnswers(t, st, got.Shards[0].Static, 7)
	}
}
