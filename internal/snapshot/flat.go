// Flat sidecar (version 2): a page-aligned, offset-table container for
// frozen flat.Store blobs, designed so a restore can mmap the file and
// serve straight out of the mapping.
//
//	magic (8 bytes)  89 46 43 46 4C 41 54 0A   ("\x89FCFLAT\n")
//	version (u32 LE) currently 2
//	blob count (u32 LE)
//	generation (u64 LE) of the snapshot the sidecar was frozen against
//	blob table, one 24-byte row per blob:
//	    kind (u32 LE)    the blob's flat store kind (catalog, spatial, ...)
//	    reserved (u32)   zero
//	    offset (u64 LE)  file offset of the blob, 4096-aligned
//	    length (u64 LE)  blob length in bytes
//	header CRC (u32 LE, Castagnoli over everything above)
//	zero padding to the first 4096 boundary
//	blobs, each starting on a 4096 boundary
//
// Page alignment is what makes the zero-copy path work: mmap bases are
// page-aligned, so a 4096-aligned blob offset lands every blob — and the
// 8-byte-aligned arena inside it — at its natural alignment inside the
// mapping, which is exactly what flat.OpenStore needs to alias the mapped
// bytes instead of copying them.
//
// The header CRC covers only the table; each blob carries its own
// full-content CRC inside the flat.Store container, which flat.OpenStore
// verifies on first touch. The sidecar stays a pure cache: any defect at
// either level surfaces as a typed error and the caller refreezes from the
// snapshot proper.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	flatMagic     = "\x89FCFLAT\n"
	flatVersion   = 2
	flatPageAlign = 4096
	// flatHeaderFixed is magic + version + blob count + generation.
	flatHeaderFixed = len(flatMagic) + 4 + 4 + 8
	flatTableEntry  = 24
	// flatMaxBlobs bounds the table before any allocation is sized from a
	// hostile count field.
	flatMaxBlobs = 1 << 20
)

// FlatBlob is one frozen structure in the sidecar: the flat store blob and
// its kind (flat.StoreKindCatalog and friends), so a restore can route
// each blob to the right decoder without sniffing the payload.
type FlatBlob struct {
	Kind uint32
	Data []byte
}

// EncodeFlat serialises a v2 sidecar. Blob payloads are laid out on 4096
// boundaries in table order.
func EncodeFlat(generation uint64, blobs []FlatBlob) []byte {
	headerLen := flatHeaderFixed + flatTableEntry*len(blobs) + 4
	offsets := make([]uint64, len(blobs))
	size := alignUp(headerLen, flatPageAlign)
	if len(blobs) == 0 {
		size = headerLen
	}
	for i, b := range blobs {
		offsets[i] = uint64(size)
		size += len(b.Data)
		if i+1 < len(blobs) {
			size = alignUp(size, flatPageAlign)
		}
	}
	data := make([]byte, 0, size)
	data = append(data, flatMagic...)
	data = binary.LittleEndian.AppendUint32(data, flatVersion)
	data = binary.LittleEndian.AppendUint32(data, uint32(len(blobs)))
	data = binary.LittleEndian.AppendUint64(data, generation)
	for i, b := range blobs {
		data = binary.LittleEndian.AppendUint32(data, b.Kind)
		data = binary.LittleEndian.AppendUint32(data, 0)
		data = binary.LittleEndian.AppendUint64(data, offsets[i])
		data = binary.LittleEndian.AppendUint64(data, uint64(len(b.Data)))
	}
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(data, castagnoli))
	for i, b := range blobs {
		for len(data) < int(offsets[i]) {
			data = append(data, 0)
		}
		data = append(data, b.Data...)
	}
	return data
}

// DecodeFlat parses a v2 sidecar, returning the generation it was written
// against and the per-structure blobs. Blob payloads alias data — callers
// that decode from a mapping must keep the mapping alive for as long as
// any zero-copy structure opened from a blob. The blobs themselves are not
// checksummed here; flat.OpenStore is the gatekeeper for their contents.
func DecodeFlat(data []byte) (generation uint64, blobs []FlatBlob, err error) {
	if len(data) < len(flatMagic) {
		if string(data) == flatMagic[:len(data)] {
			return 0, nil, corruptf(ErrTruncated, "sidecar %d bytes, header needs %d", len(data), flatHeaderFixed+4)
		}
		return 0, nil, corruptf(ErrBadMagic, "sidecar got % x", data)
	}
	if string(data[:len(flatMagic)]) != flatMagic {
		return 0, nil, corruptf(ErrBadMagic, "sidecar got % x", data[:len(flatMagic)])
	}
	if len(data) < flatHeaderFixed+4 {
		return 0, nil, corruptf(ErrTruncated, "sidecar %d bytes, header needs %d", len(data), flatHeaderFixed+4)
	}
	ver := binary.LittleEndian.Uint32(data[len(flatMagic):])
	if ver != flatVersion {
		return 0, nil, corruptf(ErrVersion, "sidecar version %d, supported %d", ver, flatVersion)
	}
	count := binary.LittleEndian.Uint32(data[len(flatMagic)+4:])
	if count > flatMaxBlobs {
		return 0, nil, corruptf(ErrCorrupt, "sidecar claims %d blobs, cap %d", count, flatMaxBlobs)
	}
	generation = binary.LittleEndian.Uint64(data[len(flatMagic)+8:])
	headerLen := flatHeaderFixed + flatTableEntry*int(count) + 4
	if len(data) < headerLen {
		return 0, nil, corruptf(ErrTruncated, "sidecar %d bytes, %d-blob table needs %d", len(data), count, headerLen)
	}
	sum := binary.LittleEndian.Uint32(data[headerLen-4:])
	if crc32.Checksum(data[:headerLen-4], castagnoli) != sum {
		return 0, nil, corruptf(ErrChecksum, "sidecar header")
	}
	blobs = make([]FlatBlob, 0, count)
	expectEnd := headerLen
	if count > 0 {
		expectEnd = alignUp(headerLen, flatPageAlign)
	}
	for i := uint32(0); i < count; i++ {
		row := flatHeaderFixed + flatTableEntry*int(i)
		kind := binary.LittleEndian.Uint32(data[row:])
		off := binary.LittleEndian.Uint64(data[row+8:])
		length := binary.LittleEndian.Uint64(data[row+16:])
		if off%flatPageAlign != 0 {
			return 0, nil, corruptf(ErrCorrupt, "sidecar blob %d at offset %d, not page-aligned", i, off)
		}
		if off != uint64(expectEnd) {
			return 0, nil, corruptf(ErrCorrupt, "sidecar blob %d at offset %d, want %d", i, off, expectEnd)
		}
		// Alignment padding carries no checksum of its own; require it to
		// be zero so a torn write or flip there still surfaces as typed
		// corruption. padStart tracks the end of the previous region.
		padStart := headerLen
		if i > 0 {
			prev := flatHeaderFixed + flatTableEntry*int(i-1)
			padStart = int(binary.LittleEndian.Uint64(data[prev+8:]) + binary.LittleEndian.Uint64(data[prev+16:]))
		}
		for j := padStart; j < int(off); j++ {
			if data[j] != 0 {
				return 0, nil, corruptf(ErrCorrupt, "sidecar padding byte %d is %#x, want 0", j, data[j])
			}
		}
		end := off + length
		if end < off || end > uint64(len(data)) {
			return 0, nil, corruptf(ErrTruncated, "sidecar blob %d spans [%d, %d) of %d bytes", i, off, end, len(data))
		}
		blobs = append(blobs, FlatBlob{Kind: kind, Data: data[off:end]})
		expectEnd = int(end)
		if i+1 < count {
			expectEnd = alignUp(expectEnd, flatPageAlign)
		}
	}
	if expectEnd != len(data) {
		return 0, nil, corruptf(ErrCorrupt, "%d trailing bytes after sidecar blobs", len(data)-expectEnd)
	}
	return generation, blobs, nil
}

func alignUp(n, align int) int {
	return (n + align - 1) &^ (align - 1)
}

// SaveFlat writes the sidecar crash-safely next to the snapshot (same
// temp + rename + dir-sync discipline as Save).
func SaveFlat(path string, generation uint64, blobs []FlatBlob) error {
	return SaveFlatFS(OSFS{}, path, generation, blobs)
}

// SaveFlatFS is SaveFlat over an injectable filesystem.
func SaveFlatFS(fsys FS, path string, generation uint64, blobs []FlatBlob) error {
	data := EncodeFlat(generation, blobs)
	dir := filepath.Dir(path)
	tmp, err := fsys.WriteTemp(dir, ".snapshot-flat-*.tmp", data)
	if err != nil {
		return fmt.Errorf("snapshot: write flat temp in %s: %w", dir, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s -> %s: %w", tmp, path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: sync %s: %w", dir, err)
	}
	return nil
}

// LoadFlat reads and parses the sidecar at path into private memory (no
// mapping — blobs are safe to hold indefinitely). Missing files surface
// the I/O error (IsCorrupt false); undecodable contents a
// *CorruptionError. Either way the caller refreezes from the pointer
// structures. Restores that want the zero-copy path use OpenFlat instead.
func LoadFlat(path string) (generation uint64, blobs []FlatBlob, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	return DecodeFlat(data)
}

// FlatView is an opened sidecar: the decoded table plus the backing bytes,
// which may be a read-only file mapping. Blob payloads alias the backing
// bytes, so the view must stay open for as long as any structure opened
// zero-copy from a blob is in use. Close is idempotent.
type FlatView struct {
	Generation uint64
	Blobs      []FlatBlob
	// Mapped reports whether the backing bytes are a file mapping (true)
	// or private memory from a plain read (false).
	Mapped bool

	unmap func() error
}

// Close releases the file mapping, if any. After Close every blob — and
// every zero-copy structure opened from one — is invalid.
func (v *FlatView) Close() error {
	if v.unmap == nil {
		return nil
	}
	f := v.unmap
	v.unmap = nil
	v.Blobs = nil
	return f()
}

// OpenFlat opens the sidecar at path for restore, mapping it read-only
// when the platform supports it and falling back to a plain read
// otherwise. The decoded view's blobs point straight into the mapping, so
// flat.OpenStore on a blob yields structures that serve queries out of the
// page cache — no deserialisation, no private copy, cold-start cost
// proportional to the pages actually touched.
func OpenFlat(path string) (*FlatView, error) {
	data, unmap, err := mmapFile(path)
	if err == nil {
		gen, blobs, derr := DecodeFlat(data)
		if derr != nil {
			_ = unmap()
			return nil, derr
		}
		return &FlatView{Generation: gen, Blobs: blobs, Mapped: true, unmap: unmap}, nil
	}
	if os.IsNotExist(err) {
		return nil, err
	}
	gen, blobs, err := LoadFlat(path)
	if err != nil {
		return nil, err
	}
	return &FlatView{Generation: gen, Blobs: blobs, Mapped: false}, nil
}
