package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// secFlat is the sidecar section id: one section per shard, payload is the
// shard's flat.Structure MarshalBinary blob (which carries its own magic,
// version, and CRC on top of the section checksum here).
const secFlat uint32 = 6

// EncodeFlat serialises a flat-layout sidecar: the generation of the
// snapshot it accompanies and one frozen-structure blob per shard, in
// shard order. The sidecar is a pure cache — a loader that finds it
// missing, corrupt, or generation-skewed refreezes from the snapshot
// proper — so it reuses the container format but stays a separate file:
// the snapshot's crash-safety story is untouched by sidecar writes.
func EncodeFlat(generation uint64, blobs [][]byte) []byte {
	size := headerSize
	for _, b := range blobs {
		size += 4 + 8 + len(b) + 4
	}
	data := make([]byte, 0, size)
	data = appendHeader(data, generation, len(blobs))
	for _, b := range blobs {
		data = appendSection(data, secFlat, b)
	}
	return data
}

// DecodeFlat parses a sidecar produced by EncodeFlat, returning the
// generation it was written against and the per-shard flat blobs. The
// blobs are returned as-is; callers hand them to flat.UnmarshalBinary,
// whose bounds-validated decoder is the real gatekeeper.
func DecodeFlat(data []byte) (generation uint64, blobs [][]byte, err error) {
	generation, sections, off, err := parseHeader(data)
	if err != nil {
		return 0, nil, err
	}
	blobs = make([][]byte, 0, minInt(int(sections), 1024))
	for i := uint32(0); i < sections; i++ {
		id, payload, next, err := nextSection(data, off)
		if err != nil {
			return 0, nil, err
		}
		if id != secFlat {
			return 0, nil, corruptf(ErrCorrupt, "sidecar section %d has id %d, want %d", i, id, secFlat)
		}
		blobs = append(blobs, payload)
		off = next
	}
	if off != len(data) {
		return 0, nil, corruptf(ErrCorrupt, "%d trailing bytes after %d sidecar sections", len(data)-off, sections)
	}
	return generation, blobs, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SaveFlat writes the sidecar crash-safely next to the snapshot (same
// temp + rename + dir-sync discipline as Save).
func SaveFlat(path string, generation uint64, blobs [][]byte) error {
	return SaveFlatFS(OSFS{}, path, generation, blobs)
}

// SaveFlatFS is SaveFlat over an injectable filesystem.
func SaveFlatFS(fsys FS, path string, generation uint64, blobs [][]byte) error {
	data := EncodeFlat(generation, blobs)
	dir := filepath.Dir(path)
	tmp, err := fsys.WriteTemp(dir, ".snapshot-flat-*.tmp", data)
	if err != nil {
		return fmt.Errorf("snapshot: write flat temp in %s: %w", dir, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s -> %s: %w", tmp, path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: sync %s: %w", dir, err)
	}
	return nil
}

// LoadFlat reads and parses the sidecar at path. Missing files surface the
// I/O error (IsCorrupt false); undecodable contents a *CorruptionError.
// Either way the caller refreezes from the pointer structures.
func LoadFlat(path string) (generation uint64, blobs [][]byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	return DecodeFlat(data)
}
