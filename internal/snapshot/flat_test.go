package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// frozenBlobs builds a couple of frozen shard blobs for sidecar tests.
func frozenBlobs(tb testing.TB, seed int64) ([]*flat.Structure, [][]byte) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var structs []*flat.Structure
	var blobs [][]byte
	for _, leaves := range []int{8, 16} {
		bt, err := tree.NewBalancedBinary(leaves)
		if err != nil {
			tb.Fatal(err)
		}
		st, err := core.Build(bt, randomCatalogs(tb, bt, 12, rng), core.Config{})
		if err != nil {
			tb.Fatal(err)
		}
		f, err := flat.Freeze(st)
		if err != nil {
			tb.Fatal(err)
		}
		blob, err := f.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		structs = append(structs, f)
		blobs = append(blobs, blob)
	}
	return structs, blobs
}

func TestFlatSidecarRoundTrip(t *testing.T) {
	structs, blobs := frozenBlobs(t, 71)
	data := EncodeFlat(42, blobs)
	gen, got, err := DecodeFlat(data)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 {
		t.Errorf("generation %d, want 42", gen)
	}
	if len(got) != len(blobs) {
		t.Fatalf("%d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		var g flat.Structure
		if err := g.UnmarshalBinary(got[i]); err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if g.NumNodes() != structs[i].NumNodes() {
			t.Fatalf("blob %d: %d nodes, want %d", i, g.NumNodes(), structs[i].NumNodes())
		}
	}

	// Empty sidecar (no shards) round-trips too.
	gen, got, err = DecodeFlat(EncodeFlat(7, nil))
	if err != nil || gen != 7 || len(got) != 0 {
		t.Fatalf("empty sidecar: gen=%d blobs=%d err=%v", gen, len(got), err)
	}
}

func TestFlatSidecarRejectsCorruption(t *testing.T) {
	_, blobs := frozenBlobs(t, 72)
	data := EncodeFlat(9, blobs)

	if _, _, err := DecodeFlat(nil); !IsCorrupt(err) {
		t.Errorf("nil input: %v", err)
	}
	if _, _, err := DecodeFlat(data[:headerSize-2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header: %v", err)
	}
	if _, _, err := DecodeFlat(data[:len(data)-5]); !IsCorrupt(err) {
		t.Errorf("truncated body: %v", err)
	}
	if _, _, err := DecodeFlat(append(append([]byte{}, data...), 1, 2, 3)); !IsCorrupt(err) {
		t.Errorf("trailing bytes: %v", err)
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0x10
	if _, _, err := DecodeFlat(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	rng := rand.New(rand.NewSource(720))
	for i := 0; i < 64; i++ {
		bad := append([]byte{}, data...)
		bit := rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << uint(bit%8)
		if _, _, err := DecodeFlat(bad); err == nil {
			// The flip may land inside a blob payload: the section CRC
			// catches it here, but assert it did.
			t.Fatalf("bit flip at %d went undetected by the sidecar container", bit)
		}
	}
}

func TestFlatSidecarSaveLoad(t *testing.T) {
	_, blobs := frozenBlobs(t, 73)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.flat")
	if err := SaveFlat(path, 17, blobs); err != nil {
		t.Fatal(err)
	}
	gen, got, err := LoadFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 17 || len(got) != len(blobs) {
		t.Fatalf("gen=%d blobs=%d, want 17/%d", gen, len(got), len(blobs))
	}
	// Overwrite is atomic-replace: a second save with a new generation wins.
	if err := SaveFlat(path, 18, blobs[:1]); err != nil {
		t.Fatal(err)
	}
	gen, got, err = LoadFlat(path)
	if err != nil || gen != 18 || len(got) != 1 {
		t.Fatalf("after rewrite: gen=%d blobs=%d err=%v", gen, len(got), err)
	}
	// Missing file: plain not-exist I/O error, not corruption.
	if _, _, err := LoadFlat(filepath.Join(dir, "absent.flat")); !os.IsNotExist(err) || IsCorrupt(err) {
		t.Errorf("missing file: %v", err)
	}
}
