package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// frozenBlobs builds a couple of frozen shard blobs for sidecar tests.
func frozenBlobs(tb testing.TB, seed int64) ([]*flat.Structure, []FlatBlob) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var structs []*flat.Structure
	var blobs []FlatBlob
	for _, leaves := range []int{8, 16} {
		bt, err := tree.NewBalancedBinary(leaves)
		if err != nil {
			tb.Fatal(err)
		}
		st, err := core.Build(bt, randomCatalogs(tb, bt, 12, rng), core.Config{})
		if err != nil {
			tb.Fatal(err)
		}
		f, err := flat.Freeze(st)
		if err != nil {
			tb.Fatal(err)
		}
		blob, err := f.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		structs = append(structs, f)
		blobs = append(blobs, FlatBlob{Kind: flat.StoreKindCatalog, Data: blob})
	}
	return structs, blobs
}

func TestFlatSidecarRoundTrip(t *testing.T) {
	structs, blobs := frozenBlobs(t, 71)
	data := EncodeFlat(42, blobs)
	gen, got, err := DecodeFlat(data)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 {
		t.Errorf("generation %d, want 42", gen)
	}
	if len(got) != len(blobs) {
		t.Fatalf("%d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if got[i].Kind != flat.StoreKindCatalog {
			t.Fatalf("blob %d: kind %d, want catalog", i, got[i].Kind)
		}
		var g flat.Structure
		if err := g.UnmarshalBinary(got[i].Data); err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if g.NumNodes() != structs[i].NumNodes() {
			t.Fatalf("blob %d: %d nodes, want %d", i, g.NumNodes(), structs[i].NumNodes())
		}
	}

	// Empty sidecar (no shards) round-trips too.
	gen, got, err = DecodeFlat(EncodeFlat(7, nil))
	if err != nil || gen != 7 || len(got) != 0 {
		t.Fatalf("empty sidecar: gen=%d blobs=%d err=%v", gen, len(got), err)
	}
}

// TestFlatSidecarBlobAlignment pins the property the zero-copy restore
// rests on: every blob offset is a multiple of the page size, so blobs in
// a page-aligned mapping keep the flat store's natural 8-byte alignment.
func TestFlatSidecarBlobAlignment(t *testing.T) {
	_, blobs := frozenBlobs(t, 74)
	data := EncodeFlat(3, blobs)
	_, got, err := DecodeFlat(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if len(b.Data) == 0 {
			continue
		}
		// Alignment is asserted through behaviour: a zero-copy open
		// silently degrades to copying if the blob is misaligned.
		f, zeroCopy, err := flat.OpenStructure(b.Data)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if !zeroCopy {
			t.Errorf("blob %d: zero-copy open degraded to copying (misaligned blob?)", i)
		}
		if f.NumNodes() == 0 {
			t.Errorf("blob %d: empty structure", i)
		}
	}
}

func TestFlatSidecarRejectsCorruption(t *testing.T) {
	_, blobs := frozenBlobs(t, 72)
	data := EncodeFlat(9, blobs)

	if _, _, err := DecodeFlat(nil); !IsCorrupt(err) {
		t.Errorf("nil input: %v", err)
	}
	if _, _, err := DecodeFlat(data[:flatHeaderFixed-2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header: %v", err)
	}
	if _, _, err := DecodeFlat(data[:len(data)-5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
	if _, _, err := DecodeFlat(append(append([]byte{}, data...), 1, 2, 3)); !IsCorrupt(err) {
		t.Errorf("trailing bytes: %v", err)
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0x10
	if _, _, err := DecodeFlat(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Every bit flip is caught at one of the two levels: the sidecar
	// header CRC (table flips) or the flat store CRC on first touch
	// (payload flips).
	rng := rand.New(rand.NewSource(720))
	for i := 0; i < 64; i++ {
		bad := append([]byte{}, data...)
		bit := rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << uint(bit%8)
		_, got, err := DecodeFlat(bad)
		if err != nil {
			continue
		}
		caught := false
		for _, b := range got {
			if err := new(flat.Structure).UnmarshalBinary(b.Data); err != nil {
				caught = true
			}
		}
		if !caught {
			t.Fatalf("bit flip at %d went undetected by both container and blob CRC", bit)
		}
	}
}

func TestFlatSidecarSaveLoad(t *testing.T) {
	_, blobs := frozenBlobs(t, 73)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.flat")
	if err := SaveFlat(path, 17, blobs); err != nil {
		t.Fatal(err)
	}
	gen, got, err := LoadFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 17 || len(got) != len(blobs) {
		t.Fatalf("gen=%d blobs=%d, want 17/%d", gen, len(got), len(blobs))
	}
	// Overwrite is atomic-replace: a second save with a new generation wins.
	if err := SaveFlat(path, 18, blobs[:1]); err != nil {
		t.Fatal(err)
	}
	gen, got, err = LoadFlat(path)
	if err != nil || gen != 18 || len(got) != 1 {
		t.Fatalf("after rewrite: gen=%d blobs=%d err=%v", gen, len(got), err)
	}
	// Missing file: plain not-exist I/O error, not corruption.
	if _, _, err := LoadFlat(filepath.Join(dir, "absent.flat")); !os.IsNotExist(err) || IsCorrupt(err) {
		t.Errorf("missing file: %v", err)
	}
}

// TestFlatSidecarOpenMmap exercises the zero-copy restore path end to end:
// save, open as a view, decode a structure straight out of the mapping,
// query it, close.
func TestFlatSidecarOpenMmap(t *testing.T) {
	structs, blobs := frozenBlobs(t, 75)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.flat")
	if err := SaveFlat(path, 21, blobs); err != nil {
		t.Fatal(err)
	}
	v, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	wantMapped := runtime.GOOS == "linux" || runtime.GOOS == "darwin"
	if v.Mapped != wantMapped {
		t.Errorf("Mapped=%v on %s, want %v", v.Mapped, runtime.GOOS, wantMapped)
	}
	if v.Generation != 21 || len(v.Blobs) != len(blobs) {
		t.Fatalf("view gen=%d blobs=%d, want 21/%d", v.Generation, len(v.Blobs), len(blobs))
	}
	for i, b := range v.Blobs {
		f, zeroCopy, err := flat.OpenStructure(b.Data)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if v.Mapped && !zeroCopy {
			t.Errorf("blob %d: mapped open degraded to copying", i)
		}
		if f.NumNodes() != structs[i].NumNodes() {
			t.Errorf("blob %d: %d nodes, want %d", i, f.NumNodes(), structs[i].NumNodes())
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Opening a missing path surfaces not-exist, never corruption.
	if _, err := OpenFlat(filepath.Join(dir, "absent.flat")); !os.IsNotExist(err) {
		t.Errorf("missing file: %v", err)
	}
	// Opening a corrupt sidecar fails typed and leaks no mapping.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(flatMagic)+6] ^= 0xFF // blob-count field
	badPath := filepath.Join(dir, "bad.flat")
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFlat(badPath); !IsCorrupt(err) {
		t.Errorf("corrupt sidecar: %v", err)
	}
}
