// Package snapshot persists built cooperative search structures to disk
// and restores them without re-running construction.
//
// The on-disk format is a versioned, checksummed container:
//
//	magic (8 bytes)  89 46 43 53 4E 41 50 0A   ("\x89FCSNAP\n")
//	u32le            format version (currently 1)
//	u64le            structure generation (caller-defined)
//	u32le            section count
//	u32le            CRC32C of the 24 header bytes above
//	sections         section count times:
//	    u32le        section id
//	    u64le        payload length
//	    bytes        payload (varint-encoded structure state)
//	    u32le        CRC32C of the 12-byte section header + payload
//
// The magic byte 0x89 (high bit set, as in PNG) catches text-mode and
// 7-bit transmission damage; the trailing \n catches newline translation.
// Every length is validated against the remaining input before any
// allocation, so truncated or hostile inputs fail fast with a typed error
// instead of a panic or an over-allocation.
//
// Corruption handling: any defect — bad magic, version skew, truncation,
// checksum mismatch, or a structural invariant violation discovered while
// reassembling the structures — is reported as a *CorruptionError wrapping
// one of the sentinel reasons below. Callers test errors.Is against a
// sentinel for specifics or IsCorrupt for the whole family, and fall back
// to rebuild-from-source. A snapshot never loads into a structure that
// could answer incorrectly: everything not cross-checked here is
// re-validated by the cascade/core/dynamic import constructors.
//
// Versioning rules: the format version is bumped on any change to the
// section layout or payload encodings; readers reject other versions
// (ErrVersion) rather than guessing, and unknown or out-of-order section
// ids within a supported version are corruption. Compatibility across
// versions is intentionally not attempted — a snapshot is a cache of
// derivable state, so the fallback to rebuilding is always safe.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// FormatVersion is the current on-disk format version.
const FormatVersion = 1

// magic identifies a snapshot file.
const magic = "\x89FCSNAP\n"

// headerSize is magic + version + generation + section count + header CRC.
const headerSize = len(magic) + 4 + 8 + 4 + 4

// Section ids. Sections appear as: one manifest, then per shard in
// manifest order: tree, cascade, core, and (dynamic shards only) dynamic.
const (
	secManifest uint32 = 1
	secTree     uint32 = 2
	secCascade  uint32 = 3
	secCore     uint32 = 4
	secDynamic  uint32 = 5
)

// Sentinel reasons for snapshot corruption. They are always wrapped in a
// *CorruptionError; match with errors.Is, or IsCorrupt for the family.
var (
	ErrBadMagic  = errors.New("snapshot: bad magic")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrTruncated = errors.New("snapshot: truncated")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrCorrupt   = errors.New("snapshot: corrupt")
)

// CorruptionError is the typed error for every way a snapshot can fail to
// load from bytes. Reason is one of the sentinel errors above; Detail
// locates the defect.
type CorruptionError struct {
	Reason error
	Detail string
}

func (e *CorruptionError) Error() string {
	if e.Detail == "" {
		return e.Reason.Error()
	}
	return e.Reason.Error() + ": " + e.Detail
}

func (e *CorruptionError) Unwrap() error { return e.Reason }

// IsCorrupt reports whether err is a snapshot corruption error of any
// kind — the signal to fall back to rebuild-from-source. I/O errors (file
// missing, permission) are not corruption and return false.
func IsCorrupt(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

func corruptf(reason error, format string, args ...any) error {
	return &CorruptionError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writer accumulates one section payload in varint encoding.
type writer struct {
	buf []byte
}

func (w *writer) u64(v uint64)  { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) i64(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) uint(v int)    { w.u64(uint64(v)) }
func (w *writer) byteVal(b byte) { w.buf = append(w.buf, b) }
func (w *writer) boolVal(b bool) {
	if b {
		w.byteVal(1)
	} else {
		w.byteVal(0)
	}
}

// reader decodes one section payload with a sticky error: after the first
// failure every read returns zero values, so decode loops need only one
// error check at the end.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(reason error, format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(reason, format, args...)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated, "uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated, "varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated, "byte at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) boolVal() bool {
	b := r.byteVal()
	if b > 1 {
		r.fail(ErrCorrupt, "bool byte %d at offset %d", b, r.off-1)
	}
	return b == 1
}

// count reads an element count and validates it against the remaining
// payload assuming each element occupies at least elemBytes bytes, so a
// hostile count can never trigger a large allocation.
func (r *reader) count(elemBytes int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(math.MaxInt32) || int64(v)*int64(elemBytes) > int64(r.remaining()) {
		r.fail(ErrTruncated, "count %d exceeds %d remaining bytes", v, r.remaining())
		return 0
	}
	return int(v)
}

// finish reports the sticky error, flagging undecoded trailing bytes.
func (r *reader) finish() error {
	if r.err == nil && r.off != len(r.buf) {
		r.fail(ErrCorrupt, "%d trailing bytes in section payload", r.remaining())
	}
	return r.err
}

// appendHeader writes the container header for the given generation and
// section count.
func appendHeader(dst []byte, generation uint64, sections int) []byte {
	dst = append(dst, magic...)
	dst = binary.LittleEndian.AppendUint32(dst, FormatVersion)
	dst = binary.LittleEndian.AppendUint64(dst, generation)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sections))
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, castagnoli))
}

// appendSection frames one section: header, payload, and a CRC32C over
// both.
func appendSection(dst []byte, id uint32, payload []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
}

// parseHeader validates magic, version, and header checksum, returning the
// generation, the declared section count, and the offset where sections
// begin.
func parseHeader(data []byte) (generation uint64, sections uint32, off int, err error) {
	if len(data) < len(magic) {
		if string(data) == magic[:len(data)] {
			return 0, 0, 0, corruptf(ErrTruncated, "%d bytes, header needs %d", len(data), headerSize)
		}
		return 0, 0, 0, corruptf(ErrBadMagic, "%d-byte input", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, 0, 0, corruptf(ErrBadMagic, "got % x", data[:len(magic)])
	}
	if len(data) < headerSize {
		return 0, 0, 0, corruptf(ErrTruncated, "%d bytes, header needs %d", len(data), headerSize)
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != FormatVersion {
		return 0, 0, 0, corruptf(ErrVersion, "file version %d, reader supports %d", ver, FormatVersion)
	}
	generation = binary.LittleEndian.Uint64(data[len(magic)+4:])
	sections = binary.LittleEndian.Uint32(data[len(magic)+12:])
	sum := binary.LittleEndian.Uint32(data[headerSize-4:])
	if crc32.Checksum(data[:headerSize-4], castagnoli) != sum {
		return 0, 0, 0, corruptf(ErrChecksum, "header")
	}
	return generation, sections, headerSize, nil
}

// nextSection parses the section starting at off, verifying its checksum.
func nextSection(data []byte, off int) (id uint32, payload []byte, next int, err error) {
	const secHeader = 4 + 8
	if len(data)-off < secHeader+4 {
		return 0, nil, 0, corruptf(ErrTruncated, "section header at offset %d", off)
	}
	id = binary.LittleEndian.Uint32(data[off:])
	plen := binary.LittleEndian.Uint64(data[off+4:])
	if plen > uint64(len(data)-off-secHeader-4) {
		return 0, nil, 0, corruptf(ErrTruncated, "section %d payload of %d bytes at offset %d", id, plen, off)
	}
	payload = data[off+secHeader : off+secHeader+int(plen)]
	sumOff := off + secHeader + int(plen)
	sum := binary.LittleEndian.Uint32(data[sumOff:])
	if crc32.Checksum(data[off:sumOff], castagnoli) != sum {
		return 0, nil, 0, corruptf(ErrChecksum, "section %d at offset %d", id, off)
	}
	return id, payload, sumOff + 4, nil
}
