package snapshot

import (
	"fmt"
	"math"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/tree"
)

// Kind identifies what a persisted shard restores into; it mirrors the
// engine's shard kinds.
type Kind uint8

const (
	// KindStatic is a built static structure (engine.StaticShard).
	KindStatic Kind = 1
	// KindDynamic is a dynamic structure with committed catalogs and
	// pending overlays (engine.DynamicShard).
	KindDynamic Kind = 2
)

// Shard is one persisted catalog shard. Exactly one of Static and Dynamic
// is non-nil, according to Kind.
type Shard struct {
	Kind    Kind
	Static  *core.Structure
	Dynamic *dynamic.Structure
}

// Store is the unit of persistence: an ordered set of shards plus a
// caller-defined generation stamp (coopserve uses the sum of dynamic shard
// generations) surfaced in the file header for cheap inspection.
type Store struct {
	Generation uint64
	Shards     []Shard
}

// Encode serializes the store into the snapshot wire format.
func Encode(st *Store) ([]byte, error) {
	if st == nil || len(st.Shards) == 0 {
		return nil, fmt.Errorf("snapshot: empty store")
	}
	var ids []uint32
	var payloads [][]byte
	add := func(id uint32, w *writer) {
		ids = append(ids, id)
		payloads = append(payloads, w.buf)
	}
	manifest := &writer{}
	manifest.uint(len(st.Shards))
	for _, sh := range st.Shards {
		manifest.byteVal(byte(sh.Kind))
	}
	add(secManifest, manifest)
	for i, sh := range st.Shards {
		var stc *core.Structure
		switch sh.Kind {
		case KindStatic:
			stc = sh.Static
		case KindDynamic:
			if sh.Dynamic == nil {
				return nil, fmt.Errorf("snapshot: shard %d: nil dynamic structure", i)
			}
			stc = sh.Dynamic.Static()
		default:
			return nil, fmt.Errorf("snapshot: shard %d: unknown kind %d", i, sh.Kind)
		}
		if stc == nil {
			return nil, fmt.Errorf("snapshot: shard %d: nil structure", i)
		}
		coreState, err := stc.ExportState()
		if err != nil {
			return nil, fmt.Errorf("snapshot: shard %d: %w", i, err)
		}
		add(secTree, encodeTree(stc.Tree()))
		add(secCascade, encodeCascade(stc.Cascade().ExportParts()))
		add(secCore, encodeCore(coreState))
		if sh.Kind == KindDynamic {
			add(secDynamic, encodeDynamic(sh.Dynamic.ExportState()))
		}
	}
	out := appendHeader(nil, st.Generation, len(ids))
	for i := range ids {
		out = appendSection(out, ids[i], payloads[i])
	}
	return out, nil
}

// Decode reassembles a store from snapshot bytes. Every defect returns a
// *CorruptionError (see IsCorrupt); Decode never panics on hostile input.
func Decode(data []byte) (*Store, error) {
	return DecodeParallel(data, 1)
}

// DecodeParallel is Decode with the restore re-validation — the cascade
// bridge checks and the core block topology rebuild, the dominant cost of
// a restore — fanned out over parallelism host workers (0 = all cores).
// The restored store and every error are identical to Decode's for every
// parallelism value.
func DecodeParallel(data []byte, parallelism int) (*Store, error) {
	generation, nsec, off, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	// Each section occupies at least its 16-byte framing, which bounds a
	// hostile section count before the loop runs.
	const minSection = 16
	if uint64(nsec)*minSection > uint64(len(data)-off) {
		return nil, corruptf(ErrTruncated, "%d sections declared in %d bytes", nsec, len(data)-off)
	}
	type section struct {
		id      uint32
		payload []byte
	}
	secs := make([]section, 0, nsec)
	for i := uint32(0); i < nsec; i++ {
		id, payload, next, err := nextSection(data, off)
		if err != nil {
			return nil, err
		}
		secs = append(secs, section{id, payload})
		off = next
	}
	if off != len(data) {
		return nil, corruptf(ErrCorrupt, "%d trailing bytes after last section", len(data)-off)
	}
	if len(secs) == 0 || secs[0].id != secManifest {
		return nil, corruptf(ErrCorrupt, "first section is not the manifest")
	}
	kinds, err := decodeManifest(secs[0].payload)
	if err != nil {
		return nil, err
	}
	st := &Store{Generation: generation}
	idx := 1
	take := func(want uint32) ([]byte, error) {
		if idx >= len(secs) {
			return nil, corruptf(ErrTruncated, "missing section %d", want)
		}
		if secs[idx].id != want {
			return nil, corruptf(ErrCorrupt, "section %d where %d expected", secs[idx].id, want)
		}
		p := secs[idx].payload
		idx++
		return p, nil
	}
	for si, kind := range kinds {
		sh, err := decodeShard(kind, take, parallelism)
		if err != nil {
			return nil, &CorruptionError{Reason: errReason(err), Detail: fmt.Sprintf("shard %d: %s", si, errDetail(err))}
		}
		st.Shards = append(st.Shards, sh)
	}
	if idx != len(secs) {
		return nil, corruptf(ErrCorrupt, "%d sections beyond the manifest's shards", len(secs)-idx)
	}
	return st, nil
}

// errReason and errDetail re-wrap a nested corruption error so shard
// context prepends to the detail while the sentinel reason survives for
// errors.Is.
func errReason(err error) error {
	if ce, ok := err.(*CorruptionError); ok {
		return ce.Reason
	}
	return ErrCorrupt
}

func errDetail(err error) string {
	if ce, ok := err.(*CorruptionError); ok {
		return ce.Detail
	}
	return err.Error()
}

func decodeShard(kind Kind, take func(uint32) ([]byte, error), parallelism int) (Shard, error) {
	treePayload, err := take(secTree)
	if err != nil {
		return Shard{}, err
	}
	t, err := decodeTree(treePayload)
	if err != nil {
		return Shard{}, err
	}
	cascadePayload, err := take(secCascade)
	if err != nil {
		return Shard{}, err
	}
	cs, err := decodeCascade(t, cascadePayload, parallelism)
	if err != nil {
		return Shard{}, err
	}
	corePayload, err := take(secCore)
	if err != nil {
		return Shard{}, err
	}
	stc, err := decodeCore(cs, corePayload, parallelism)
	if err != nil {
		return Shard{}, err
	}
	if kind == KindStatic {
		return Shard{Kind: KindStatic, Static: stc}, nil
	}
	dynPayload, err := take(secDynamic)
	if err != nil {
		return Shard{}, err
	}
	d, err := decodeDynamic(stc, dynPayload)
	if err != nil {
		return Shard{}, err
	}
	return Shard{Kind: KindDynamic, Dynamic: d}, nil
}

func decodeManifest(payload []byte) ([]Kind, error) {
	r := &reader{buf: payload}
	n := r.count(1)
	kinds := make([]Kind, 0, n)
	for i := 0; i < n; i++ {
		k := Kind(r.byteVal())
		if r.err == nil && k != KindStatic && k != KindDynamic {
			r.fail(ErrCorrupt, "shard %d: unknown kind %d", i, k)
		}
		kinds = append(kinds, k)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		return nil, corruptf(ErrCorrupt, "manifest declares no shards")
	}
	return kinds, nil
}

// i32 narrows a varint to int32, failing the reader on overflow.
func (r *reader) i32() int32 {
	v := r.i64()
	if r.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		r.fail(ErrCorrupt, "value %d overflows int32", v)
	}
	return int32(v)
}

// u32i narrows a uvarint to a non-negative int32, failing on overflow.
func (r *reader) u32i() int32 {
	v := r.u64()
	if r.err == nil && v > math.MaxInt32 {
		r.fail(ErrCorrupt, "value %d overflows int32", v)
	}
	return int32(v)
}

func encodeTree(t *tree.Tree) *writer {
	parent, order := t.ExportParents()
	w := &writer{}
	w.uint(len(parent))
	for _, p := range parent {
		w.i64(int64(p))
	}
	for _, o := range order {
		w.u64(uint64(o))
	}
	return w
}

func decodeTree(payload []byte) (*tree.Tree, error) {
	r := &reader{buf: payload}
	n := r.count(2) // one parent varint and one order varint per node
	parent := make([]tree.NodeID, n)
	for i := range parent {
		parent[i] = r.i32()
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = r.u32i()
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	t, err := tree.Build(parent, order)
	if err != nil {
		return nil, corruptf(ErrCorrupt, "tree: %v", err)
	}
	return t, nil
}

// encodeCascade stores stride, bidirectionality, and per node the
// augmented catalog plus bridge arrays. Native catalogs are not stored:
// a node's native catalog is exactly the native-flagged subsequence of
// its augmented catalog, so decode reconstructs it.
func encodeCascade(p cascade.Parts) *writer {
	w := &writer{}
	w.uint(p.Stride)
	w.boolVal(p.Bidirectional)
	w.uint(len(p.Aug))
	for v := range p.Aug {
		entries := p.Aug[v].Entries()
		w.uint(len(entries))
		for _, e := range entries {
			w.i64(e.Key)
			w.i64(int64(e.Payload))
			w.boolVal(e.Native)
		}
		for _, br := range p.Bridges[v] {
			for _, b := range br {
				w.u64(uint64(b))
			}
		}
	}
	return w
}

func decodeCascade(t *tree.Tree, payload []byte, parallelism int) (*cascade.Structure, error) {
	r := &reader{buf: payload}
	parts := cascade.Parts{
		Stride:        int(r.u32i()),
		Bidirectional: r.boolVal(),
	}
	n := r.count(1)
	if r.err == nil && n != t.N() {
		r.fail(ErrCorrupt, "cascade covers %d nodes, tree has %d", n, t.N())
	}
	parts.Native = make([]catalog.Catalog, 0, n)
	parts.Aug = make([]catalog.Catalog, 0, n)
	parts.Bridges = make([][][]int32, 0, n)
	for v := 0; v < n && r.err == nil; v++ {
		aug, native, err := decodeCatalogPair(r)
		if err != nil {
			return nil, err
		}
		parts.Aug = append(parts.Aug, aug)
		parts.Native = append(parts.Native, native)
		ch := t.Children(tree.NodeID(v))
		var brs [][]int32
		if len(ch) > 0 {
			brs = make([][]int32, len(ch))
			for ci := range ch {
				br := make([]int32, aug.Len())
				for j := range br {
					br[j] = r.u32i()
				}
				brs[ci] = br
			}
		}
		parts.Bridges = append(parts.Bridges, brs)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	cs, err := cascade.FromPartsParallel(t, parts, parallelism)
	if err != nil {
		return nil, corruptf(ErrCorrupt, "cascade: %v", err)
	}
	return cs, nil
}

// decodeCatalogPair reads one augmented catalog and derives the native
// catalog from its native-flagged entries. NativeSucc indices are
// recomputed, then both catalogs pass the package's own validation.
func decodeCatalogPair(r *reader) (aug, native catalog.Catalog, err error) {
	count := r.count(3) // key + payload + native flag per entry
	entries := make([]catalog.Entry, count)
	for i := range entries {
		entries[i] = catalog.Entry{
			Key:     r.i64(),
			Payload: r.i32(),
			Native:  r.boolVal(),
		}
	}
	if r.err != nil {
		return aug, native, r.err
	}
	var nativeEntries []catalog.Entry
	next := int32(len(entries) - 1)
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Native {
			next = int32(i)
		}
		entries[i].NativeSucc = next
	}
	for _, e := range entries {
		if e.Native {
			nativeEntries = append(nativeEntries, e)
		}
	}
	for i := range nativeEntries {
		nativeEntries[i].NativeSucc = int32(i)
	}
	if aug, err = catalog.FromEntries(entries); err != nil {
		return aug, native, corruptf(ErrCorrupt, "augmented catalog: %v", err)
	}
	if native, err = catalog.FromEntries(nativeEntries); err != nil {
		return aug, native, corruptf(ErrCorrupt, "native catalog: %v", err)
	}
	return aug, native, nil
}

func encodeCore(st core.State) *writer {
	w := &writer{}
	w.boolVal(st.Cfg.NoTruncation)
	w.uint(st.Cfg.MaxSubs)
	w.boolVal(st.Cfg.Sequential)
	w.uint(st.Cfg.CascadeStride)
	w.uint(len(st.Subs))
	for _, sub := range st.Subs {
		w.uint(len(sub.Blocks))
		for _, b := range sub.Blocks {
			w.u64(uint64(b.Root))
			w.uint(len(b.KeyPos))
			numNodes := 0
			if len(b.KeyPos) > 0 {
				numNodes = len(b.KeyPos[0])
			}
			w.uint(numNodes)
			for _, kp := range b.KeyPos {
				for _, pos := range kp {
					w.u64(uint64(pos))
				}
			}
		}
	}
	return w
}

func decodeCore(cs *cascade.Structure, payload []byte, parallelism int) (*core.Structure, error) {
	r := &reader{buf: payload}
	state := core.State{Cfg: core.ConfigState{
		NoTruncation:  r.boolVal(),
		MaxSubs:       int(r.u32i()),
		Sequential:    r.boolVal(),
		CascadeStride: int(r.u32i()),
	}}
	numSubs := r.count(1)
	for i := 0; i < numSubs && r.err == nil; i++ {
		numBlocks := r.count(2) // root + skeleton count per block at minimum
		sub := core.SubState{Blocks: make([]core.BlockState, 0, numBlocks)}
		for bi := 0; bi < numBlocks && r.err == nil; bi++ {
			b := core.BlockState{Root: r.u32i()}
			m := r.count(1)
			numNodes := r.count(1)
			if r.err == nil && int64(m)*int64(numNodes) > int64(r.remaining()) {
				r.fail(ErrTruncated, "skeleton of %d x %d positions exceeds %d remaining bytes", m, numNodes, r.remaining())
			}
			b.KeyPos = make([][]int32, 0, m)
			for j := 0; j < m && r.err == nil; j++ {
				kp := make([]int32, numNodes)
				for z := range kp {
					kp[z] = r.u32i()
				}
				b.KeyPos = append(b.KeyPos, kp)
			}
			sub.Blocks = append(sub.Blocks, b)
		}
		state.Subs = append(state.Subs, sub)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	stc, err := core.FromPartsParallel(cs, state, parallelism)
	if err != nil {
		return nil, corruptf(ErrCorrupt, "%v", err)
	}
	return stc, nil
}

func encodeDynamic(st dynamic.State) *writer {
	w := &writer{}
	w.uint(st.Capacity)
	w.u64(st.Generation)
	w.uint(len(st.Keys))
	for v := range st.Keys {
		w.uint(len(st.Keys[v]))
		for i := range st.Keys[v] {
			w.i64(st.Keys[v][i])
			w.i64(int64(st.Payloads[v][i]))
		}
	}
	w.uint(len(st.Pending))
	for _, np := range st.Pending {
		w.u64(uint64(np.Node))
		w.uint(len(np.Ins))
		for _, ie := range np.Ins {
			w.i64(ie.Key)
			w.i64(int64(ie.Payload))
		}
		w.uint(len(np.Del))
		for _, k := range np.Del {
			w.i64(k)
		}
	}
	return w
}

func decodeDynamic(stc *core.Structure, payload []byte) (*dynamic.Structure, error) {
	r := &reader{buf: payload}
	state := dynamic.State{
		Capacity:   int(r.u32i()),
		Generation: r.u64(),
	}
	n := r.count(1)
	state.Keys = make([][]catalog.Key, n)
	state.Payloads = make([][]int32, n)
	for v := 0; v < n && r.err == nil; v++ {
		count := r.count(2) // key + payload per entry
		ks := make([]catalog.Key, count)
		ps := make([]int32, count)
		for i := 0; i < count; i++ {
			ks[i] = r.i64()
			ps[i] = r.i32()
		}
		state.Keys[v], state.Payloads[v] = ks, ps
	}
	pending := r.count(3) // node + two counts per overlay at minimum
	for pi := 0; pi < pending && r.err == nil; pi++ {
		np := dynamic.NodePending{Node: r.u32i()}
		insCount := r.count(2)
		for i := 0; i < insCount; i++ {
			np.Ins = append(np.Ins, dynamic.PendingInsert{Key: r.i64(), Payload: r.i32()})
		}
		delCount := r.count(1)
		for i := 0; i < delCount; i++ {
			np.Del = append(np.Del, r.i64())
		}
		state.Pending = append(state.Pending, np)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	d, err := dynamic.FromParts(stc, state)
	if err != nil {
		return nil, corruptf(ErrCorrupt, "%v", err)
	}
	return d, nil
}
