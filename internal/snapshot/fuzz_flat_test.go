package snapshot

import (
	"testing"

	"fraccascade/internal/flat"
)

// FuzzFlatMmap feeds arbitrary bytes to the sidecar reader that backs the
// mmap restore path (OpenFlat decodes the mapped bytes with exactly this
// code). The contract under fuzzing is strict: DecodeFlat either succeeds
// or returns a typed corruption error — never a panic, never an untyped
// error, never an allocation sized from a hostile length field — and
// every blob that decodes is safe to hand to the flat store opener, whose
// own CRC/bounds validation is the second gate before anything serves
// queries. A failure at either gate is what makes the server fall back to
// refreezing from the snapshot proper.
func FuzzFlatMmap(f *testing.F) {
	_, blobs := frozenBlobs(f, 76)
	valid := EncodeFlat(11, blobs)
	f.Add(valid)
	f.Add(EncodeFlat(0, nil))
	f.Add([]byte{})
	f.Add([]byte(flatMagic))
	f.Add(valid[:flatHeaderFixed+4])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipHeader := append([]byte{}, valid...)
	flipHeader[flatHeaderFixed+3] ^= 0x20 // table row
	f.Add(flipHeader)
	flipBlob := append([]byte{}, valid...)
	flipBlob[len(flipBlob)-64] ^= 0x20 // blob payload
	f.Add(flipBlob)
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, got, err := DecodeFlat(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("untyped sidecar decode error: %v", err)
			}
			return
		}
		_ = gen
		for i, b := range got {
			// Both open modes must survive arbitrary payloads; a zero-copy
			// open is the exact restore path over a mapping.
			st, _, err := flat.OpenStructure(b.Data)
			if err != nil {
				continue // refreeze fallback
			}
			if st.NumNodes() < 1 {
				t.Fatalf("blob %d: decoded structure has %d nodes", i, st.NumNodes())
			}
		}
	})
}
