package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/dynamic"
	"fraccascade/internal/tree"
)

// randomCatalogs builds one sorted catalog per node with keys drawn from
// the even integers (tests insert odd keys to avoid collisions).
func randomCatalogs(tb testing.TB, t *tree.Tree, perNode int, rng *rand.Rand) []catalog.Catalog {
	tb.Helper()
	cats := make([]catalog.Catalog, t.N())
	for v := range cats {
		seen := make(map[catalog.Key]bool, perNode)
		keys := make([]catalog.Key, 0, perNode)
		payloads := make([]int32, 0, perNode)
		for len(keys) < perNode {
			k := catalog.Key(rng.Int63n(1 << 30) * 2)
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			payloads = append(payloads, int32(rng.Intn(1<<20)))
		}
		c, err := catalog.FromKeys(keys, payloads)
		if err != nil {
			tb.Fatalf("FromKeys: %v", err)
		}
		cats[v] = c
	}
	return cats
}

func buildStatic(tb testing.TB, leaves, perNode int, seed int64) *core.Structure {
	tb.Helper()
	t, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	st, err := core.Build(t, randomCatalogs(tb, t, perNode, rng), core.Config{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	return st
}

// queryKeys returns a deterministic probe set spanning the key range.
func queryKeys(rng *rand.Rand, n int) []catalog.Key {
	out := make([]catalog.Key, n)
	for i := range out {
		out[i] = catalog.Key(rng.Int63n(1 << 31))
	}
	return out
}

// assertSameAnswers requires bit-identical results and step statistics
// from both structures over seeded root-to-leaf queries.
func assertSameAnswers(tb testing.TB, want, got *core.Structure, seed int64) {
	tb.Helper()
	t := want.Tree()
	var leaves []tree.NodeID
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(tree.NodeID(v)) {
			leaves = append(leaves, tree.NodeID(v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range []int{4, 64, 1024} {
		for _, y := range queryKeys(rng, 16) {
			path := t.RootPath(leaves[rng.Intn(len(leaves))])
			wr, ws, err := want.SearchExplicit(y, path, p)
			if err != nil {
				tb.Fatalf("search on original: %v", err)
			}
			gr, gs, err := got.SearchExplicit(y, path, p)
			if err != nil {
				tb.Fatalf("search on restored: %v", err)
			}
			if !reflect.DeepEqual(wr, gr) {
				tb.Fatalf("p=%d y=%d: results diverge:\n  want %v\n  got  %v", p, y, wr, gr)
			}
			if ws != gs {
				tb.Fatalf("p=%d y=%d: stats diverge: want %+v, got %+v", p, y, ws, gs)
			}
		}
	}
}

func TestRoundTripStatic(t *testing.T) {
	st := buildStatic(t, 16, 24, 1)
	data, err := Encode(&Store{Generation: 7, Shards: []Shard{{Kind: KindStatic, Static: st}}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Generation != 7 {
		t.Fatalf("generation = %d, want 7", got.Generation)
	}
	if len(got.Shards) != 1 || got.Shards[0].Kind != KindStatic || got.Shards[0].Static == nil {
		t.Fatalf("bad shards: %+v", got.Shards)
	}
	restored := got.Shards[0].Static
	if st.Params() != restored.Params() {
		t.Fatalf("params diverge: %v vs %v", st.Params(), restored.Params())
	}
	if !reflect.DeepEqual(st.Cascade().Stats(), restored.Cascade().Stats()) {
		t.Fatalf("cascade stats diverge: %+v vs %+v", st.Cascade().Stats(), restored.Cascade().Stats())
	}
	if !reflect.DeepEqual(st.SpaceReport(), restored.SpaceReport()) {
		t.Fatalf("space reports diverge")
	}
	assertSameAnswers(t, st, restored, 2)
}

// churn makes a dynamic structure with committed history, an advanced
// generation, and pending overlays that must survive the round trip.
func churn(tb testing.TB, leaves, perNode int, seed int64) *dynamic.Structure {
	tb.Helper()
	t, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatalf("tree: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	cats := randomCatalogs(tb, t, perNode, rng)
	d, err := dynamic.New(t, cats, core.Config{}, 1000)
	if err != nil {
		tb.Fatalf("dynamic.New: %v", err)
	}
	mutate := func(rounds int) {
		for i := 0; i < rounds; i++ {
			v := tree.NodeID(rng.Intn(t.N()))
			if rng.Intn(2) == 0 {
				key := catalog.Key(rng.Int63n(1<<30)*2 + 1) // odd: never committed initially
				if err := d.Insert(v, key, int32(i)); err != nil && !strings.Contains(err.Error(), "already") {
					tb.Fatalf("insert: %v", err)
				}
			} else {
				// Delete the committed successor of a random probe, if any.
				k, _ := d.Find(v, catalog.Key(rng.Int63n(1<<31)))
				if k == catalog.PlusInf {
					continue
				}
				if err := d.Delete(v, k); err != nil && !strings.Contains(err.Error(), "not present") {
					tb.Fatalf("delete: %v", err)
				}
			}
		}
	}
	mutate(40)
	if err := d.Flush(); err != nil {
		tb.Fatalf("flush: %v", err)
	}
	mutate(25) // leave pending overlays buffered
	if d.Buffered() == 0 {
		tb.Fatalf("expected pending overlays after churn")
	}
	return d
}

func TestRoundTripDynamic(t *testing.T) {
	d := churn(t, 8, 16, 3)
	data, err := Encode(&Store{Generation: d.Generation(), Shards: []Shard{{Kind: KindDynamic, Dynamic: d}}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rd := got.Shards[0].Dynamic
	if rd == nil {
		t.Fatalf("no dynamic shard restored")
	}
	if rd.Generation() != d.Generation() {
		t.Fatalf("generation = %d, want %d", rd.Generation(), d.Generation())
	}
	if rd.Buffered() != d.Buffered() || rd.Capacity() != d.Capacity() {
		t.Fatalf("buffered/capacity = %d/%d, want %d/%d", rd.Buffered(), rd.Capacity(), d.Buffered(), d.Capacity())
	}
	if !reflect.DeepEqual(d.ExportState(), rd.ExportState()) {
		t.Fatalf("exported states diverge")
	}
	// Overlay-corrected cooperative answers must match, pending state
	// included.
	tr := d.Static().Tree()
	var leaves []tree.NodeID
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(tree.NodeID(v)) {
			leaves = append(leaves, tree.NodeID(v))
		}
	}
	rng := rand.New(rand.NewSource(4))
	for _, y := range queryKeys(rng, 32) {
		path := tr.RootPath(leaves[rng.Intn(len(leaves))])
		wr, ws, err := d.SearchExplicit(y, path, 16)
		if err != nil {
			t.Fatalf("search original: %v", err)
		}
		gr, gs, err := rd.SearchExplicit(y, path, 16)
		if err != nil {
			t.Fatalf("search restored: %v", err)
		}
		if !reflect.DeepEqual(wr, gr) || ws != gs {
			t.Fatalf("y=%d: answers diverge", y)
		}
	}
	assertSameAnswers(t, d.Static(), rd.Static(), 5)
}

func TestRoundTripMultiShard(t *testing.T) {
	st := buildStatic(t, 8, 12, 11)
	d := churn(t, 4, 8, 12)
	store := &Store{Generation: 1, Shards: []Shard{
		{Kind: KindStatic, Static: st},
		{Kind: KindDynamic, Dynamic: d},
	}}
	data, err := Encode(store)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Shards) != 2 || got.Shards[0].Static == nil || got.Shards[1].Dynamic == nil {
		t.Fatalf("bad shards: %+v", got.Shards)
	}
	assertSameAnswers(t, st, got.Shards[0].Static, 13)
	assertSameAnswers(t, d.Static(), got.Shards[1].Dynamic.Static(), 14)
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.snap")
	st := buildStatic(t, 8, 10, 21)
	store := &Store{Generation: 42, Shards: []Shard{{Kind: KindStatic, Static: st}}}
	if err := Save(path, store); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Generation != 42 {
		t.Fatalf("generation = %d, want 42", got.Generation)
	}
	assertSameAnswers(t, st, got.Shards[0].Static, 22)
	// Overwrite in place; no temp files may remain.
	store.Generation = 43
	if err := Save(path, store); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	got, err = Load(path)
	if err != nil || got.Generation != 43 {
		t.Fatalf("reload: gen=%d err=%v", got.Generation, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "shards.snap" {
		t.Fatalf("stray files in snapshot dir: %v", entries)
	}
	if _, err := Load(filepath.Join(dir, "missing.snap")); err == nil || IsCorrupt(err) {
		t.Fatalf("missing file should be a plain I/O error, got %v", err)
	}
}

func encodeFixture(tb testing.TB) []byte {
	tb.Helper()
	d := churn(tb, 4, 8, 31)
	data, err := Encode(&Store{Generation: 5, Shards: []Shard{{Kind: KindDynamic, Dynamic: d}}})
	if err != nil {
		tb.Fatalf("encode: %v", err)
	}
	return data
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encodeFixture(t)
	check := func(name string, data []byte, want error) {
		t.Helper()
		_, err := Decode(data)
		if err == nil {
			t.Fatalf("%s: decode accepted corrupt input", name)
		}
		if !IsCorrupt(err) {
			t.Fatalf("%s: error %v is not typed corruption", name, err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: error %v, want %v", name, err, want)
		}
	}
	check("empty", nil, nil)
	check("bad magic", append([]byte{'X'}, valid[1:]...), ErrBadMagic)
	check("magic prefix only", valid[:4], ErrTruncated)
	check("header truncated", valid[:headerSize-2], ErrTruncated)
	check("body truncated", valid[:len(valid)/2], nil)
	check("tail truncated", valid[:len(valid)-3], nil)
	check("trailing garbage", append(append([]byte{}, valid...), 0xAB, 0xCD), ErrCorrupt)

	// Version skew with a recomputed header checksum must be ErrVersion.
	skew := append([]byte{}, valid...)
	skew[len(magic)] = FormatVersion + 1
	crc := crc32.Checksum(skew[:headerSize-4], castagnoli)
	binary.LittleEndian.PutUint32(skew[headerSize-4:], crc)
	check("version skew", skew, ErrVersion)

	// Any single flipped bit must be caught. Sampling every few bytes
	// keeps the test fast while covering header, framing, and payloads.
	for off := 0; off < len(valid); off += 7 {
		mut := append([]byte{}, valid...)
		mut[off] ^= 0x10
		if off < len(magic) {
			check("bit flip in magic", mut, ErrBadMagic)
		} else {
			check("bit flip", mut, nil)
		}
	}
}

