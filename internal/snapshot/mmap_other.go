//go:build !linux && !darwin

package snapshot

import "errors"

// errMmapUnsupported makes OpenFlat fall through to the plain-read path on
// platforms without a wired-up mmap.
var errMmapUnsupported = errors.New("snapshot: mmap unsupported on this platform")

func mmapFile(path string) (data []byte, unmap func() error, err error) {
	return nil, nil, errMmapUnsupported
}
