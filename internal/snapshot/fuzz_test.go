package snapshot

import "testing"

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot reader. The
// contract under fuzzing is strict: Decode either succeeds or returns a
// typed corruption error — it never panics, never over-allocates on a
// hostile length, and never returns an untyped error.
func FuzzSnapshotDecode(f *testing.F) {
	valid := encodeFixture(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-5])
	truncSec := append([]byte{}, valid[:headerSize+8]...)
	f.Add(truncSec)
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if st == nil || len(st.Shards) == 0 {
			t.Fatalf("nil/empty store with nil error")
		}
	})
}
