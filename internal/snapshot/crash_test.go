package snapshot

import (
	"path/filepath"
	"testing"

	"fraccascade/internal/faults"
)

// TestSaveFaultsDetectedAtLoad drives the crash-safe write path through
// the disk fault injector: every in-flight corruption must surface as a
// typed error at load (the rebuild-from-source signal), and a failed
// rename must leave the previous snapshot intact.
func TestSaveFaultsDetectedAtLoad(t *testing.T) {
	st := buildStatic(t, 8, 10, 51)
	store := &Store{Generation: 1, Shards: []Shard{{Kind: KindStatic, Static: st}}}

	corrupting := []struct {
		name     string
		schedule func(p *faults.DiskPlan) error
	}{
		{"torn write", func(p *faults.DiskPlan) error { return p.TornWrite(0, 0.6) }},
		{"truncation", func(p *faults.DiskPlan) error { return p.TruncateTail(0, 5) }},
		{"bit flip", func(p *faults.DiskPlan) error { return p.BitFlip(0, 12345) }},
	}
	for _, tc := range corrupting {
		dir := t.TempDir()
		path := filepath.Join(dir, "s.snap")
		plan := faults.NewDiskPlan()
		if err := tc.schedule(plan); err != nil {
			t.Fatalf("%s: schedule: %v", tc.name, err)
		}
		if err := SaveFS(plan, path, store); err != nil {
			t.Fatalf("%s: save reported %v (corruption is silent until load)", tc.name, err)
		}
		if _, err := Load(path); err == nil || !IsCorrupt(err) {
			t.Fatalf("%s: load err = %v, want typed corruption", tc.name, err)
		}
	}

	// Rename failure: Save errors, and an existing good snapshot at path
	// survives untouched (atomic-replace durability).
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	if err := Save(path, store); err != nil {
		t.Fatalf("seed save: %v", err)
	}
	plan := faults.NewDiskPlan()
	if err := plan.FailRename(0); err != nil {
		t.Fatal(err)
	}
	newer := &Store{Generation: 2, Shards: store.Shards}
	if err := SaveFS(plan, path, newer); err == nil {
		t.Fatalf("save with failed rename reported success")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("previous snapshot unreadable after failed rename: %v", err)
	}
	if got.Generation != 1 {
		t.Fatalf("previous snapshot generation = %d, want 1", got.Generation)
	}
	assertSameAnswers(t, st, got.Shards[0].Static, 52)
}

// TestRandomDiskSweep replays seeded random fault schedules: every save
// either loads back exactly or fails typed — never a silent wrong load.
func TestRandomDiskSweep(t *testing.T) {
	st := buildStatic(t, 8, 10, 61)
	store := &Store{Generation: 9, Shards: []Shard{{Kind: KindStatic, Static: st}}}
	detected, clean := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		plan, err := faults.RandomDisk(seed, faults.DiskOptions{
			TornRate: 0.3, TruncateRate: 0.3, FlipRate: 0.3, RenameFailRate: 0.2, Horizon: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "s.snap")
		saveErr := SaveFS(plan, path, store)
		loaded, loadErr := Load(path)
		switch {
		case saveErr != nil:
			// Rename failed: nothing at path is acceptable.
			detected++
		case loadErr != nil:
			if !IsCorrupt(loadErr) {
				t.Fatalf("seed %d: untyped load error %v (events %v)", seed, loadErr, plan.Events())
			}
			detected++
		default:
			assertSameAnswers(t, st, loaded.Shards[0].Static, seed)
			clean++
		}
	}
	if detected == 0 || clean == 0 {
		t.Fatalf("sweep not exercising both outcomes: %d detected, %d clean", detected, clean)
	}
}
