package catalog

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromKeysSortsAndTerminates(t *testing.T) {
	c, err := FromKeys([]Key{30, 10, 20}, []int32{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (3 keys + terminal)", c.Len())
	}
	wantKeys := []Key{10, 20, 30, PlusInf}
	wantPayloads := []int32{1, 2, 3, NoPayload}
	for i := range wantKeys {
		if c.Key(i) != wantKeys[i] {
			t.Errorf("Key(%d) = %d, want %d", i, c.Key(i), wantKeys[i])
		}
		if c.At(i).Payload != wantPayloads[i] {
			t.Errorf("Payload(%d) = %d, want %d", i, c.At(i).Payload, wantPayloads[i])
		}
		if !c.At(i).Native {
			t.Errorf("entry %d should be native", i)
		}
	}
}

func TestFromKeysRejectsDuplicates(t *testing.T) {
	if _, err := FromKeys([]Key{1, 2, 1}, nil); err == nil {
		t.Error("expected duplicate-key error")
	}
}

func TestFromKeysRejectsPayloadMismatch(t *testing.T) {
	if _, err := FromKeys([]Key{1, 2}, []int32{1}); err == nil {
		t.Error("expected payload-length error")
	}
}

func TestFromKeysExplicitInf(t *testing.T) {
	c, err := FromKeys([]Key{5, PlusInf}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (no double terminal)", c.Len())
	}
}

func TestEmpty(t *testing.T) {
	c := Empty()
	if c.Len() != 1 || c.Key(0) != PlusInf || !c.At(0).Native {
		t.Errorf("Empty() = %+v", c.Entries())
	}
	if c.Succ(42) != 0 {
		t.Errorf("Succ on empty catalog should hit terminal")
	}
}

func TestSucc(t *testing.T) {
	c := MustFromKeys([]Key{10, 20, 30}, nil)
	cases := []struct {
		y    Key
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {20, 1}, {30, 2}, {31, 3}, {PlusInf, 3}}
	for _, cse := range cases {
		if got := c.Succ(cse.y); got != cse.want {
			t.Errorf("Succ(%d) = %d, want %d", cse.y, got, cse.want)
		}
	}
}

func TestSuccInWindow(t *testing.T) {
	c := MustFromKeys([]Key{10, 20, 30, 40, 50}, nil)
	if got := c.SuccInWindow(25, 0, 5); got != 2 {
		t.Errorf("full window: got %d, want 2", got)
	}
	if got := c.SuccInWindow(25, 2, 4); got != 2 {
		t.Errorf("window [2,4]: got %d, want 2", got)
	}
	if got := c.SuccInWindow(25, -5, 100); got != 2 {
		t.Errorf("clamped window: got %d, want 2", got)
	}
	if got := c.SuccInWindow(100, 0, 2); got != 3 {
		t.Errorf("no hit in window: got %d, want hi+1 = 3", got)
	}
	if got := c.SuccInWindow(5, 3, 2); got != 3 {
		t.Errorf("inverted window: got %d, want hi+1", got)
	}
}

func TestNativeResult(t *testing.T) {
	native := MustFromKeys([]Key{10, 30}, []int32{100, 300})
	merged := MergeForCascade(native, []Entry{{Key: 20, Native: false, Payload: NoPayload}})
	// merged keys: 10, 20(dummy), 30, +inf
	pos := merged.Succ(15) // hits dummy 20
	if merged.At(pos).Native {
		t.Fatalf("expected dummy at pos %d", pos)
	}
	k, pl := merged.NativeResult(pos)
	if k != 30 || pl != 300 {
		t.Errorf("NativeResult = (%d, %d), want (30, 300)", k, pl)
	}
	k, pl = merged.NativeResult(merged.Succ(5))
	if k != 10 || pl != 100 {
		t.Errorf("NativeResult = (%d, %d), want (10, 100)", k, pl)
	}
}

func TestSampleEvery(t *testing.T) {
	c := MustFromKeys([]Key{1, 2, 3, 4, 5, 6, 7, 8, 9}, nil) // +inf makes 10 entries
	s, err := c.SampleEvery(4)
	if err != nil {
		t.Fatal(err)
	}
	// 1-indexed positions 4, 8 -> keys 4, 8; position 12 out of range.
	if len(s) != 2 || s[0].Key != 4 || s[1].Key != 8 {
		t.Errorf("SampleEvery(4) = %+v", s)
	}
	s1, err := c.SampleEvery(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != c.Len() {
		t.Errorf("SampleEvery(1) len = %d, want %d", len(s1), c.Len())
	}
	for _, k := range []int{0, -3} {
		if _, err := c.SampleEvery(k); err == nil {
			t.Errorf("SampleEvery(%d) should return an error", k)
		}
	}
}

func TestMergeForCascadePrefersNative(t *testing.T) {
	native := MustFromKeys([]Key{10, 20}, []int32{1, 2})
	dummies := []Entry{{Key: 10, Native: false}, {Key: 15, Native: false}, {Key: PlusInf, Native: false}}
	merged := MergeForCascade(native, dummies)
	// Keys: 10 (native wins), 15 (dummy), 20 (native), +inf (native wins).
	if merged.Len() != 4 {
		t.Fatalf("Len = %d, want 4; entries %+v", merged.Len(), merged.Entries())
	}
	if !merged.At(0).Native || merged.At(0).Payload != 1 {
		t.Errorf("entry 0 should be the native 10: %+v", merged.At(0))
	}
	if merged.At(1).Native {
		t.Errorf("entry 1 should be the dummy 15: %+v", merged.At(1))
	}
	if !merged.At(3).Native || merged.At(3).Key != PlusInf {
		t.Errorf("terminal should be native +inf: %+v", merged.At(3))
	}
}

func TestMergeForCascadeMultipleSources(t *testing.T) {
	native := MustFromKeys([]Key{50}, nil)
	a := []Entry{{Key: 10}, {Key: 30}}
	b := []Entry{{Key: 20}, {Key: 30}, {Key: 60}}
	merged := MergeForCascade(native, a, b)
	want := []Key{10, 20, 30, 50, 60, PlusInf}
	if merged.Len() != len(want) {
		t.Fatalf("Len = %d, want %d: %+v", merged.Len(), len(want), merged.Entries())
	}
	for i, k := range want {
		if merged.Key(i) != k {
			t.Errorf("key[%d] = %d, want %d", i, merged.Key(i), k)
		}
	}
	// Validate invariants via FromEntries round trip.
	if _, err := FromEntries(merged.Entries()); err != nil {
		t.Errorf("merged catalog fails validation: %v", err)
	}
}

func TestFromEntriesValidation(t *testing.T) {
	if _, err := FromEntries(nil); err == nil {
		t.Error("empty list should fail")
	}
	bad := []Entry{{Key: 5, Native: true, NativeSucc: 0}, {Key: 5, Native: true, NativeSucc: 1}}
	if _, err := FromEntries(bad); err == nil {
		t.Error("non-increasing keys should fail")
	}
	noTerm := []Entry{{Key: 5, Native: true, NativeSucc: 0}}
	if _, err := FromEntries(noTerm); err == nil {
		t.Error("missing terminal should fail")
	}
	badSucc := []Entry{
		{Key: 5, Native: true, NativeSucc: 1},
		{Key: PlusInf, Native: true, NativeSucc: 1},
	}
	if _, err := FromEntries(badSucc); err == nil {
		t.Error("wrong NativeSucc should fail")
	}
}

func TestNativeLen(t *testing.T) {
	native := MustFromKeys([]Key{1, 2, 3}, nil)
	merged := MergeForCascade(native, []Entry{{Key: 10}, {Key: 20}})
	if got := merged.NativeLen(); got != 4 {
		t.Errorf("NativeLen = %d, want 4", got)
	}
	if got := merged.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
}

func TestQuickSuccMatchesReference(t *testing.T) {
	f := func(raw []uint16, y uint16) bool {
		seen := map[Key]bool{}
		var keys []Key
		for _, r := range raw {
			k := Key(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		c := MustFromKeys(keys, nil)
		got := c.Succ(Key(y))
		all := c.Keys()
		want := sort.Search(len(all), func(i int) bool { return all[i] >= Key(y) })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nNative := rng.Intn(20)
		keys := make([]Key, 0, nNative)
		seen := map[Key]bool{}
		for len(keys) < nNative {
			k := Key(rng.Intn(100))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		native := MustFromKeys(keys, nil)
		mkSample := func() []Entry {
			var s []Entry
			last := Key(-1)
			for i := 0; i < rng.Intn(15); i++ {
				last += 1 + Key(rng.Intn(20))
				s = append(s, Entry{Key: last})
			}
			return s
		}
		merged := MergeForCascade(native, mkSample(), mkSample())
		if _, err := FromEntries(merged.Entries()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every native key must survive as a native entry.
		for _, k := range keys {
			pos := merged.Succ(k)
			if merged.Key(pos) != k || !merged.At(pos).Native {
				t.Fatalf("trial %d: native key %d lost in merge", trial, k)
			}
		}
	}
}
