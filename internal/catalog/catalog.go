// Package catalog implements the sorted catalogs stored at the nodes of a
// fractional cascaded data structure.
//
// A catalog is an ordered sequence of distinct entries. Following the
// paper's convention, every catalog ends with the terminal entry +∞, so a
// successor search find(y, v) — the smallest entry not smaller than y —
// always succeeds.
//
// Catalogs distinguish native entries (present in the original, caller-
// supplied catalog) from dummy entries introduced by fractional cascading.
// Each entry records the position of the nearest native entry at or after
// it, so a search result in the augmented catalog converts to the original
// catalog's answer in O(1).
package catalog

import (
	"fmt"
	"math"
	"sort"
)

// Key is the ordered key type of catalog entries.
type Key = int64

// PlusInf is the terminal +∞ key present in every catalog.
const PlusInf Key = math.MaxInt64

// MinusInf is the −∞ sentinel used by callers to express "no lower bound"
// (for example the left end of an entry-point cache interval). It is never
// stored in a catalog.
const MinusInf Key = math.MinInt64

// NoPayload marks entries without caller data (dummy entries and the
// terminal +∞).
const NoPayload int32 = -1

// Entry is one element of a catalog.
type Entry struct {
	// Key is the entry's primary value.
	Key Key
	// Payload is caller-defined secondary information for native entries
	// (for example an edge index in point location); NoPayload otherwise.
	Payload int32
	// NativeSucc is the index within the same catalog of the smallest
	// native entry whose key is >= Key. Because every catalog contains a
	// native +∞ terminal, NativeSucc is always a valid index.
	NativeSucc int32
	// Native reports whether the entry belongs to the original catalog
	// (true) or was introduced as a dummy by cascading (false).
	Native bool
}

// Catalog is an immutable sorted sequence of distinct entries ending in +∞.
type Catalog struct {
	entries []Entry
}

// FromKeys builds a native catalog from keys with optional payloads.
// Keys need not be sorted; duplicates are rejected. payloads may be nil
// (all entries get NoPayload) or must have len(keys). A native +∞ terminal
// is appended if absent.
func FromKeys(keys []Key, payloads []int32) (Catalog, error) {
	if payloads != nil && len(payloads) != len(keys) {
		return Catalog{}, fmt.Errorf("catalog: %d keys but %d payloads", len(keys), len(payloads))
	}
	entries := make([]Entry, 0, len(keys)+1)
	for i, k := range keys {
		pl := NoPayload
		if payloads != nil {
			pl = payloads[i]
		}
		entries = append(entries, Entry{Key: k, Payload: pl, Native: true})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	for i := 1; i < len(entries); i++ {
		if entries[i].Key == entries[i-1].Key {
			return Catalog{}, fmt.Errorf("catalog: duplicate key %d", entries[i].Key)
		}
	}
	if len(entries) == 0 || entries[len(entries)-1].Key != PlusInf {
		entries = append(entries, Entry{Key: PlusInf, Payload: NoPayload, Native: true})
	}
	for i := range entries {
		entries[i].NativeSucc = int32(i)
	}
	return Catalog{entries: entries}, nil
}

// MustFromKeys is FromKeys that panics on error, for tests and examples.
func MustFromKeys(keys []Key, payloads []int32) Catalog {
	c, err := FromKeys(keys, payloads)
	if err != nil {
		panic(err)
	}
	return c
}

// Empty returns a catalog holding only the native +∞ terminal.
func Empty() Catalog {
	return Catalog{entries: []Entry{{Key: PlusInf, Payload: NoPayload, NativeSucc: 0, Native: true}}}
}

// FromEntries builds a catalog from pre-sorted entries; it validates order,
// distinctness, the +∞ terminal, and NativeSucc consistency. Intended for
// the cascade builder.
func FromEntries(entries []Entry) (Catalog, error) {
	if len(entries) == 0 {
		return Catalog{}, fmt.Errorf("catalog: empty entry list")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			return Catalog{}, fmt.Errorf("catalog: entries not strictly increasing at %d", i)
		}
	}
	last := entries[len(entries)-1]
	if last.Key != PlusInf || !last.Native {
		return Catalog{}, fmt.Errorf("catalog: missing native +inf terminal")
	}
	nextNative := int32(len(entries) - 1)
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Native {
			nextNative = int32(i)
		}
		if entries[i].NativeSucc != nextNative {
			return Catalog{}, fmt.Errorf("catalog: bad NativeSucc at %d: %d, want %d", i, entries[i].NativeSucc, nextNative)
		}
	}
	return Catalog{entries: entries}, nil
}

// Len returns the number of entries, including dummies and the terminal.
func (c Catalog) Len() int { return len(c.entries) }

// NativeLen returns the number of native entries, including the terminal.
func (c Catalog) NativeLen() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].Native {
			n++
		}
	}
	return n
}

// At returns the entry at position i.
func (c Catalog) At(i int) Entry { return c.entries[i] }

// Key returns the key at position i.
func (c Catalog) Key(i int) Key { return c.entries[i].Key }

// Entries exposes the underlying slice; callers must not modify it.
func (c Catalog) Entries() []Entry { return c.entries }

// Succ returns the position of the smallest entry with key >= y.
// It always succeeds thanks to the +∞ terminal.
func (c Catalog) Succ(y Key) int {
	return sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Key >= y })
}

// SuccInWindow returns the position of the smallest entry with key >= y
// restricted to positions [lo, hi] (inclusive, clamped to the catalog).
// It returns hi+1 > hi only if no entry in the window qualifies; callers
// that have established the answer lies in the window get the true
// successor position.
func (c Catalog) SuccInWindow(y Key, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.entries)-1 {
		hi = len(c.entries) - 1
	}
	if lo > hi {
		return hi + 1
	}
	i := sort.Search(hi-lo+1, func(k int) bool { return c.entries[lo+k].Key >= y })
	return lo + i
}

// NativeResult resolves position pos (typically a Succ result in an
// augmented catalog) to the original catalog's answer: the key and payload
// of the smallest native entry >= the entry at pos.
func (c Catalog) NativeResult(pos int) (Key, int32) {
	e := c.entries[c.entries[pos].NativeSucc]
	return e.Key, e.Payload
}

// SampleEvery returns the entries at positions k-1, 2k-1, 3k-1, ... (every
// k-th entry, 1-indexed as in the paper). The returned keys are used as
// dummy entries one level up. A non-positive stride is reported as an
// error rather than a panic, per the repository-wide constructor
// convention.
func (c Catalog) SampleEvery(k int) ([]Entry, error) {
	if k <= 0 {
		return nil, fmt.Errorf("catalog: non-positive sampling stride %d", k)
	}
	var out []Entry
	for i := k - 1; i < len(c.entries); i += k {
		out = append(out, c.entries[i])
	}
	return out, nil
}

// MergeForCascade builds the augmented catalog of a node: the node's native
// catalog merged with sampled dummy keys from its children's augmented
// catalogs. Duplicate keys collapse, preferring the native entry.
// NativeSucc indices are recomputed. The result always ends in native +∞.
func MergeForCascade(native Catalog, samples ...[]Entry) Catalog {
	type cursor struct {
		entries []Entry
		i       int
	}
	cursors := make([]cursor, 0, len(samples)+1)
	cursors = append(cursors, cursor{entries: native.entries})
	for _, s := range samples {
		cursors = append(cursors, cursor{entries: s})
	}
	total := 0
	for _, cu := range cursors {
		total += len(cu.entries)
	}
	out := make([]Entry, 0, total)
	for {
		best := -1
		var bestKey Key
		for ci := range cursors {
			cu := &cursors[ci]
			if cu.i >= len(cu.entries) {
				continue
			}
			k := cu.entries[cu.i].Key
			if best == -1 || k < bestKey {
				best, bestKey = ci, k
			}
		}
		if best == -1 {
			break
		}
		// Collect all cursors matching bestKey; prefer the native source
		// (cursor 0) when present.
		var chosen Entry
		chosenNative := false
		for ci := range cursors {
			cu := &cursors[ci]
			if cu.i < len(cu.entries) && cu.entries[cu.i].Key == bestKey {
				e := cu.entries[cu.i]
				cu.i++
				if ci == 0 {
					chosen = e
					chosenNative = true
				} else if !chosenNative {
					chosen = Entry{Key: e.Key, Payload: NoPayload, Native: false}
				}
			}
		}
		if !chosenNative {
			chosen = Entry{Key: bestKey, Payload: NoPayload, Native: false}
		}
		out = append(out, chosen)
	}
	// The native catalog always contributes a native +∞; a sampled +∞
	// collapses into it, so the terminal is native.
	nextNative := int32(len(out) - 1)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i].Native {
			nextNative = int32(i)
		}
		out[i].NativeSucc = nextNative
	}
	return Catalog{entries: out}
}

// Keys returns a copy of all keys, mostly for tests and the cooperative
// binary-search primitive.
func (c Catalog) Keys() []Key {
	out := make([]Key, len(c.entries))
	for i := range c.entries {
		out[i] = c.entries[i].Key
	}
	return out
}

// SuccFromFinger returns Succ(y) located by galloping from an in-range
// finger position (Gilbert–Lim finger search), plus the number of key
// comparisons spent. The gallop doubles its stride away from the finger
// until it brackets y, then binary-searches the bracket, so probes grows
// as 2·⌈log₂(d+1)⌉ + O(1) for key-distance d = |finger − Succ(y)| — a
// finger near the answer beats the full O(log n) search regardless of how
// stale it is. The finger is clamped into range, so any value yields the
// exact Succ(y); only the probe count depends on it.
func (c Catalog) SuccFromFinger(y Key, finger int) (pos, probes int) {
	n := len(c.entries)
	if finger < 0 {
		finger = 0
	} else if finger >= n {
		finger = n - 1
	}
	// lo and hi bracket the successor: Key(lo) < y (lo == -1 virtual) and
	// Key(hi) >= y.
	var lo, hi int
	probes = 1
	if c.entries[finger].Key >= y {
		hi = finger
		step := 1
		for {
			i := finger - step
			if i < 0 {
				lo = -1
				break
			}
			probes++
			if c.entries[i].Key < y {
				lo = i
				break
			}
			hi = i
			step <<= 1
		}
	} else {
		lo = finger
		step := 1
		for {
			i := finger + step
			if i >= n-1 {
				// The +∞ terminal always satisfies Key >= y.
				hi = n - 1
				break
			}
			probes++
			if c.entries[i].Key >= y {
				hi = i
				break
			}
			lo = i
			step <<= 1
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		probes++
		if c.entries[mid].Key >= y {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, probes
}
