// Package subdivision represents monotone planar subdivisions in the form
// the bridged separator tree consumes: regions r_1..r_f ordered left to
// right, and y-monotone edges, each knowing the regions on its two sides.
//
// The random generator builds a subdivision from f−1 pairwise non-crossing
// y-monotone chains over a shared grid of y-levels; consecutive chains may
// coincide over arbitrary level intervals, which is exactly what produces
// shared edges (edges proper to a range of separators) and the "gaps" that
// make point-location branch functions inconsistent (Fig. 5).
//
// Coordinates are kept on even lattices (chain x ≡ 0 mod 4, vertex y even)
// so that query points with odd coordinates never lie on a chain, keeping
// every orientation test strict.
package subdivision

import (
	"fmt"
	"math/rand"

	"fraccascade/internal/geom"
)

// Edge is a y-monotone subdivision edge with its two incident regions.
type Edge struct {
	// Seg points upward (Seg.A.Y < Seg.B.Y).
	Seg geom.Segment
	// Left and Right are the 1-based indices of the regions left and
	// right of the edge; Left < Right always holds in a left-to-right
	// region numbering. The edge belongs to separators σ_Left..σ_{Right−1}.
	Left, Right int32
}

// MinSep returns the smallest separator index containing the edge.
func (e Edge) MinSep() int32 { return e.Left }

// MaxSep returns the largest separator index containing the edge.
func (e Edge) MaxSep() int32 { return e.Right - 1 }

// Subdivision is a monotone planar subdivision.
type Subdivision struct {
	// Edges lists all edges; the edge index is the identity used in
	// catalogs and query answers.
	Edges []Edge
	// NumRegions is f, the number of regions.
	NumRegions int
	// YMin and YMax bound the vertex y-range; queries must satisfy
	// YMin < q.Y < YMax.
	YMin, YMax int64

	// chains[c][k] is the x-coordinate of chain c+1 (separator σ_{c+1})
	// at level k; retained for the brute-force oracle.
	chains [][]int64
	levelY []int64
}

// Generate builds a random monotone subdivision with f regions over the
// given number of y-levels. It returns an error for invalid parameters
// (f < 1 or levels < 2).
func Generate(f, levels int, rng *rand.Rand) (*Subdivision, error) {
	if f < 1 || levels < 2 {
		return nil, fmt.Errorf("subdivision: invalid parameters f=%d levels=%d (need f ≥ 1, levels ≥ 2)", f, levels)
	}
	m := levels
	levelY := make([]int64, m)
	for k := range levelY {
		levelY[k] = int64(2 * k)
	}
	chains := make([][]int64, f-1)
	base := make([]int64, m)
	for k := 1; k < m; k++ {
		base[k] = base[k-1] + int64(4*(rng.Intn(3)-1)) // steps −4, 0, +4
	}
	prev := base
	for c := 0; c < f-1; c++ {
		x := make([]int64, m)
		copy(x, prev)
		// Push right over 1–3 random intervals (at least one level).
		nIv := 1 + rng.Intn(3)
		pushed := false
		for iv := 0; iv < nIv; iv++ {
			a := rng.Intn(m)
			b := a + rng.Intn(m-a)
			for k := a; k <= b; k++ {
				x[k] += int64(4 * (1 + rng.Intn(2)))
				pushed = true
			}
		}
		if !pushed {
			x[rng.Intn(m)] += 4
		}
		chains[c] = x
		prev = x
	}
	s := &Subdivision{
		NumRegions: f,
		YMin:       levelY[0],
		YMax:       levelY[m-1],
		chains:     chains,
		levelY:     levelY,
	}
	// Extract edges: per level-gap, group maximal runs of chains with an
	// identical segment.
	for k := 0; k+1 < m; k++ {
		c := 0
		for c < len(chains) {
			run := c
			for run+1 < len(chains) &&
				chains[run+1][k] == chains[c][k] && chains[run+1][k+1] == chains[c][k+1] {
				run++
			}
			s.Edges = append(s.Edges, Edge{
				Seg: geom.Segment{
					A: geom.Point{X: chains[c][k], Y: levelY[k]},
					B: geom.Point{X: chains[c][k+1], Y: levelY[k+1]},
				},
				Left:  int32(c + 1),
				Right: int32(run + 2),
			})
			c = run + 1
		}
	}
	return s, nil
}

// GenerateNested builds a monotone subdivision by hierarchical insertion:
// each new chain copies a random existing chain, pushes right over random
// intervals, and is clamped below its right neighbour. Compared with
// Generate, this yields regions nested to arbitrary depth, gaps bounded
// on both sides, and possibly empty (pinched-away) regions — a stress
// shape for the separator tree's inactive-node machinery. It returns an
// error for invalid parameters (f < 1 or levels < 2).
func GenerateNested(f, levels int, rng *rand.Rand) (*Subdivision, error) {
	if f < 1 || levels < 2 {
		return nil, fmt.Errorf("subdivision: invalid parameters f=%d levels=%d (need f ≥ 1, levels ≥ 2)", f, levels)
	}
	m := levels
	levelY := make([]int64, m)
	for k := range levelY {
		levelY[k] = int64(2 * k)
	}
	base := make([]int64, m)
	for k := 1; k < m; k++ {
		base[k] = base[k-1] + int64(4*(rng.Intn(3)-1))
	}
	chains := make([][]int64, 0, f-1)
	if f > 1 {
		chains = append(chains, base)
	}
	for len(chains) < f-1 {
		j := rng.Intn(len(chains))
		x := append([]int64(nil), chains[j]...)
		nIv := 1 + rng.Intn(3)
		for iv := 0; iv < nIv; iv++ {
			a := rng.Intn(m)
			b := a + rng.Intn(m-a)
			for k := a; k <= b; k++ {
				x[k] += int64(4 * (1 + rng.Intn(2)))
			}
		}
		// Clamp below the right neighbour to stay sorted.
		if j+1 < len(chains) {
			for k := range x {
				if x[k] > chains[j+1][k] {
					x[k] = chains[j+1][k]
				}
			}
		}
		chains = append(chains[:j+1], append([][]int64{x}, chains[j+1:]...)...)
	}
	s := &Subdivision{
		NumRegions: f,
		YMin:       levelY[0],
		YMax:       levelY[m-1],
		chains:     chains,
		levelY:     levelY,
	}
	for k := 0; k+1 < m; k++ {
		c := 0
		for c < len(chains) {
			run := c
			for run+1 < len(chains) &&
				chains[run+1][k] == chains[c][k] && chains[run+1][k+1] == chains[c][k+1] {
				run++
			}
			s.Edges = append(s.Edges, Edge{
				Seg: geom.Segment{
					A: geom.Point{X: chains[c][k], Y: levelY[k]},
					B: geom.Point{X: chains[c][k+1], Y: levelY[k+1]},
				},
				Left:  int32(c + 1),
				Right: int32(run + 2),
			})
			c = run + 1
		}
	}
	return s, nil
}

// Validate checks structural invariants; tests call it after Generate.
func (s *Subdivision) Validate() error {
	for i, e := range s.Edges {
		if !e.Seg.YMonotone() {
			return fmt.Errorf("subdivision: edge %d not y-monotone", i)
		}
		if e.Left < 1 || e.Right <= e.Left || int(e.Right) > s.NumRegions {
			return fmt.Errorf("subdivision: edge %d has bad regions (%d, %d)", i, e.Left, e.Right)
		}
	}
	for c := 1; c < len(s.chains); c++ {
		for k := range s.chains[c] {
			if s.chains[c][k] < s.chains[c-1][k] {
				return fmt.Errorf("subdivision: chains %d and %d cross at level %d", c, c+1, k)
			}
		}
	}
	return nil
}

// chainSegmentAt returns chain c's segment containing height y
// (s.YMin < y < s.YMax).
func (s *Subdivision) chainSegmentAt(c int, y int64) geom.Segment {
	// levelY[k] = 2k.
	k := int((y - s.levelY[0]) / 2)
	if k >= len(s.levelY)-1 {
		k = len(s.levelY) - 2
	}
	return geom.Segment{
		A: geom.Point{X: s.chains[c][k], Y: s.levelY[k]},
		B: geom.Point{X: s.chains[c][k+1], Y: s.levelY[k+1]},
	}
}

// LocateBrute returns the region containing q by testing q against every
// chain: the oracle used to validate the separator-tree locators. A point
// on a chain belongs to the region right of it (the same convention the
// tree locators use).
func (s *Subdivision) LocateBrute(q geom.Point) (int, error) {
	if q.Y <= s.YMin || q.Y >= s.YMax {
		return 0, fmt.Errorf("subdivision: query y=%d outside (%d, %d)", q.Y, s.YMin, s.YMax)
	}
	region := 1
	for c := range s.chains {
		if geom.SideOf(q, s.chainSegmentAt(c, q.Y)) >= 0 {
			region++
		}
	}
	return region, nil
}

// RandomInteriorPoint returns a query point with odd coordinates that lies
// strictly inside some region, plus that region's index. It retries until
// it finds a spot where the enclosing chains leave room.
func (s *Subdivision) RandomInteriorPoint(rng *rand.Rand) (geom.Point, int) {
	for {
		y := s.YMin + 1 + 2*int64(rng.Intn(int((s.YMax-s.YMin)/2)))
		// x range spanning all chains with margin.
		lo, hi := int64(-8), int64(8)
		for c := range s.chains {
			seg := s.chainSegmentAt(c, y)
			if seg.A.X < lo {
				lo = seg.A.X - 8
			}
			if seg.B.X > hi {
				hi = seg.B.X + 8
			}
		}
		x := lo + int64(rng.Intn(int(hi-lo+1)))
		if x%2 == 0 {
			x++
		}
		q := geom.Point{X: x, Y: y}
		r, err := s.LocateBrute(q)
		if err != nil {
			continue
		}
		return q, r
	}
}

// EdgeAt returns, for separator index sep (1-based) and height y, the edge
// of that separator's chain whose y-span contains y. It is the oracle for
// active-node checks in tests.
func (s *Subdivision) EdgeAt(sep int, y int64) (Edge, error) {
	if sep < 1 || sep > len(s.chains) {
		return Edge{}, fmt.Errorf("subdivision: separator %d out of range", sep)
	}
	for _, e := range s.Edges {
		if e.MinSep() <= int32(sep) && int32(sep) <= e.MaxSep() &&
			e.Seg.A.Y <= y && y <= e.Seg.B.Y {
			return e, nil
		}
	}
	return Edge{}, fmt.Errorf("subdivision: no edge of separator %d at y=%d", sep, y)
}

// TotalVertices estimates n (the subdivision complexity) as the number of
// chain vertices.
func (s *Subdivision) TotalVertices() int {
	return len(s.chains) * len(s.levelY)
}
