package subdivision

import (
	"math/rand"
	"testing"

	"fraccascade/internal/geom"
)

func TestGenerateValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		f := 1 + rng.Intn(40)
		levels := 2 + rng.Intn(30)
		s := mustGen(t, f, levels, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("f=%d levels=%d: %v", f, levels, err)
		}
		if s.NumRegions != f {
			t.Fatalf("NumRegions = %d, want %d", s.NumRegions, f)
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ f, levels int }{{0, 2}, {-1, 5}, {3, 1}, {3, 0}}
	for _, cse := range cases {
		if _, err := Generate(cse.f, cse.levels, rng); err == nil {
			t.Errorf("Generate(%d, %d) should return an error", cse.f, cse.levels)
		}
		if _, err := GenerateNested(cse.f, cse.levels, rng); err == nil {
			t.Errorf("GenerateNested(%d, %d) should return an error", cse.f, cse.levels)
		}
	}
}

func TestSingleRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := mustGen(t, 1, 5, rng)
	if len(s.Edges) != 0 {
		t.Errorf("single region should have no edges, got %d", len(s.Edges))
	}
	q := geom.Point{X: 1, Y: 3}
	r, err := s.LocateBrute(q)
	if err != nil || r != 1 {
		t.Errorf("LocateBrute = (%d, %v), want (1, nil)", r, err)
	}
}

func TestSharedEdgesExist(t *testing.T) {
	// With many chains over few levels, shared edges (gaps in separators)
	// must appear.
	rng := rand.New(rand.NewSource(3))
	shared := false
	for trial := 0; trial < 20 && !shared; trial++ {
		s := mustGen(t, 30, 20, rng)
		for _, e := range s.Edges {
			if e.Right-e.Left >= 2 {
				shared = true
				break
			}
		}
	}
	if !shared {
		t.Error("generator never produced an edge shared by multiple separators")
	}
}

func TestLocateBruteRejectsOutOfBand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := mustGen(t, 5, 10, rng)
	if _, err := s.LocateBrute(geom.Point{X: 0, Y: s.YMin}); err == nil {
		t.Error("query at YMin should fail")
	}
	if _, err := s.LocateBrute(geom.Point{X: 0, Y: s.YMax + 5}); err == nil {
		t.Error("query above YMax should fail")
	}
}

func TestRandomInteriorPointConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		s := mustGen(t, 2+rng.Intn(30), 2+rng.Intn(20), rng)
		for q := 0; q < 50; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			if pt.X%2 == 0 || pt.Y%2 == 0 {
				t.Fatalf("interior point %v has even coordinate", pt)
			}
			got, err := s.LocateBrute(pt)
			if err != nil || got != want {
				t.Fatalf("LocateBrute(%v) = (%d, %v), want %d", pt, got, err, want)
			}
		}
	}
}

func TestRegionCoverage(t *testing.T) {
	// Random interior points eventually hit every region: regions are all
	// nonempty.
	rng := rand.New(rand.NewSource(6))
	s := mustGen(t, 8, 12, rng)
	seen := map[int]bool{}
	for q := 0; q < 3000 && len(seen) < s.NumRegions; q++ {
		_, r := s.RandomInteriorPoint(rng)
		if r < 1 || r > s.NumRegions {
			t.Fatalf("region %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) < s.NumRegions {
		t.Errorf("only %d of %d regions reachable", len(seen), s.NumRegions)
	}
}

func TestEdgeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := mustGen(t, 10, 10, rng)
	for sep := 1; sep < s.NumRegions; sep++ {
		for y := s.YMin + 1; y < s.YMax; y += 2 {
			e, err := s.EdgeAt(sep, y)
			if err != nil {
				t.Fatalf("separator %d has no edge at y=%d: %v (chains must span the whole band)", sep, y, err)
			}
			if !(e.MinSep() <= int32(sep) && int32(sep) <= e.MaxSep()) {
				t.Fatalf("EdgeAt returned edge of separators [%d,%d] for separator %d", e.MinSep(), e.MaxSep(), sep)
			}
		}
	}
	if _, err := s.EdgeAt(0, 1); err == nil {
		t.Error("separator 0 should be rejected")
	}
}

func TestEdgeSideConsistency(t *testing.T) {
	// A point just left (right) of a chain must land in the edge's Left
	// (Right) region... more precisely in a region <= Left (>= Right)
	// since other chains may coincide.
	rng := rand.New(rand.NewSource(8))
	s := mustGen(t, 12, 8, rng)
	for _, e := range s.Edges {
		midY := (e.Seg.A.Y + e.Seg.B.Y) / 2
		if midY%2 == 0 {
			midY++
		}
		if midY <= e.Seg.A.Y || midY >= e.Seg.B.Y {
			continue
		}
		midX := (e.Seg.A.X + e.Seg.B.X) / 2
		left := geom.Point{X: midX - 1, Y: midY}
		right := geom.Point{X: midX + 1, Y: midY}
		if geom.SideOf(left, e.Seg) >= 0 || geom.SideOf(right, e.Seg) <= 0 {
			continue // probe too close to a slanted edge; skip
		}
		rl, err := s.LocateBrute(left)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := s.LocateBrute(right)
		if err != nil {
			t.Fatal(err)
		}
		if rl > int(e.Left) {
			t.Fatalf("point left of edge (%d,%d) located in region %d", e.Left, e.Right, rl)
		}
		if rr < int(e.Right) {
			t.Fatalf("point right of edge (%d,%d) located in region %d", e.Left, e.Right, rr)
		}
	}
}

func TestGenerateNestedValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		f := 1 + rng.Intn(40)
		levels := 2 + rng.Intn(30)
		s := mustGenNested(t, f, levels, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("f=%d levels=%d: %v", f, levels, err)
		}
		// Brute-force location remains consistent with interior sampling.
		for q := 0; q < 30; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, err := s.LocateBrute(pt)
			if err != nil || got != want {
				t.Fatalf("trial %d: LocateBrute(%v) = (%d, %v), want %d", trial, pt, got, err, want)
			}
		}
	}
}

func TestGenerateNestedSharesBothSides(t *testing.T) {
	// Nested insertion with clamping produces edges shared across wide
	// separator ranges.
	rng := rand.New(rand.NewSource(22))
	widest := int32(0)
	for trial := 0; trial < 20; trial++ {
		s := mustGenNested(t, 24, 15, rng)
		for _, e := range s.Edges {
			if w := e.Right - e.Left; w > widest {
				widest = w
			}
		}
	}
	if widest < 3 {
		t.Errorf("nested generator never produced a widely shared edge (max span %d)", widest)
	}
}

func TestTotalVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := mustGen(t, 6, 11, rng)
	if s.TotalVertices() != 5*11 {
		t.Errorf("TotalVertices = %d, want 55", s.TotalVertices())
	}
}

func mustGen(tb testing.TB, f, levels int, rng *rand.Rand) *Subdivision {
	tb.Helper()
	s, err := Generate(f, levels, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func mustGenNested(tb testing.TB, f, levels int, rng *rand.Rand) *Subdivision {
	tb.Helper()
	s, err := GenerateNested(f, levels, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
