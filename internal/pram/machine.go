package pram

import (
	"runtime"
	"sync"
)

// Machine is the goroutine-barrier executor: a synchronous PRAM with a
// fixed processor budget and a shared memory whose processors can run as
// real goroutines within each step (SetConcurrent) or in a deterministic
// in-order loop. Both modes — and the other executors — produce identical
// memory states and cost counters. The zero value is not usable; construct
// with New.
type Machine struct {
	base
	concurrent bool
}

// Machine implements Executor.
var _ Executor = (*Machine)(nil)

// New returns a Machine with the given model and processor budget.
// The memory starts empty; use Alloc to reserve words.
//
// Invalid input (a non-positive processor count) is reported as an error,
// never a panic: exported constructors across this repository return errors
// for caller mistakes, reserving panics for internal invariant violations
// that indicate a bug in this package itself (see checkActive's
// negative-active check for the canonical example of the latter).
func New(model Model, procs int) (*Machine, error) {
	b, err := newBase(model, procs)
	if err != nil {
		return nil, err
	}
	return &Machine{base: b}, nil
}

// MustNew is New that panics on error, a convenience for tests and
// examples whose processor counts are compile-time constants.
func MustNew(model Model, procs int) *Machine {
	m, err := New(model, procs)
	if err != nil {
		panic(err)
	}
	return m
}

// SetConcurrent chooses whether Step executes processors on goroutines
// (true) or in a deterministic in-order loop (false, the default). Results
// are identical in both modes.
func (m *Machine) SetConcurrent(c bool) { m.concurrent = c }

// Step runs one synchronous step with `active` processors executing body.
// It returns a *ConflictError if the access pattern violates the model.
// On conflict, memory is left in the pre-step state and the step is not
// charged.
//
// With a fault hook installed, processors the hook reports dead or stalled
// for this step never execute body: their reads and writes simply do not
// happen, and they are excluded from conflict detection and work charging.
func (m *Machine) Step(active int, body func(p *Proc)) error {
	if err := m.checkActive(active); err != nil {
		return err
	}
	trace := !m.model.AllowsConcurrentRead()
	views := make([]Proc, active)
	skippedNow := 0
	for i := range views {
		views[i] = Proc{ID: i, b: &m.base, traceReads: trace}
		if m.faults != nil && !m.faults.ProcLive(m.steps, i) {
			views[i].halted = true
			skippedNow++
		}
	}
	if m.concurrent && active > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > active {
			workers = active
		}
		var wg sync.WaitGroup
		chunk := (active + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > active {
				hi = active
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if !views[i].halted {
						body(&views[i])
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := 0; i < active; i++ {
			if !views[i].halted {
				body(&views[i])
			}
		}
	}

	// Conflict detection and commit, in deterministic processor order:
	// all reads are validated before any writes, so a step that violates
	// both rules always reports the read conflict.
	m.beginStep()
	if trace {
		for i := range views {
			if err := m.checkReads(i, views[i].reads); err != nil {
				return err
			}
		}
	}
	for i := range views {
		if err := m.admitWrites(views[i].writes); err != nil {
			return err
		}
	}
	m.commitWrites(m.writeBuf)
	m.chargeStep(active, skippedNow)
	return nil
}
