package pram

import "sync/atomic"

// VirtualMachine is the virtual-time executor: it replays processors in a
// deterministic sequential loop per step — processor 0 first, then 1, and
// so on — with conflict detection, cost accounting, and fault-hook
// semantics identical to Machine. No goroutines are launched and the
// per-step scratch is reused, so on a single-CPU host it runs the same
// program an order of magnitude faster than the goroutine barrier while
// measuring exactly the same step counts (the paper's quantities are
// model-level, not host-level).
//
// Semantics match Machine exactly on every observable: final memory,
// Time/Work/Skipped/PeakActive, metric values, and conflict verdicts
// (reads are traced in processor order and validated before any write is
// admitted, so the reported conflict pair is the same one Machine finds).
// The one deliberate difference is unobservable at the PRAM level: a step
// that ends in a read conflict aborts before later processors' bodies run,
// so host-side closure state touched by those bodies may differ from the
// barrier executor — on a conflict the whole computation errors out, and
// PRAM memory is left untouched either way.
//
// A VirtualMachine is not safe for concurrent use; Step panics if invoked
// while another Step is in flight (see the -race covered guard test).
// The zero value is not usable; construct with NewVirtual.
type VirtualMachine struct {
	base
	inStep  atomic.Bool
	view    Proc
	pending []writeOp // step-wide write buffer, reused across steps
}

// VirtualMachine implements Executor.
var _ Executor = (*VirtualMachine)(nil)

// NewVirtual returns a VirtualMachine with the given model and processor
// budget. The memory starts empty; use Alloc to reserve words.
func NewVirtual(model Model, procs int) (*VirtualMachine, error) {
	b, err := newBase(model, procs)
	if err != nil {
		return nil, err
	}
	return &VirtualMachine{base: b}, nil
}

// MustNewVirtual is NewVirtual that panics on error.
func MustNewVirtual(model Model, procs int) *VirtualMachine {
	vm, err := NewVirtual(model, procs)
	if err != nil {
		panic(err)
	}
	return vm
}

// Step runs one synchronous step with `active` processors executing body,
// sequentially in ascending ID order. It returns a *ConflictError if the
// access pattern violates the model; on conflict, memory is left in the
// pre-step state and the step is not charged.
//
// With a fault hook installed, processors the hook reports dead or stalled
// for this step never execute body, exactly as on Machine.
func (vm *VirtualMachine) Step(active int, body func(p *Proc)) error {
	if err := vm.checkActive(active); err != nil {
		return err
	}
	if !vm.inStep.CompareAndSwap(false, true) {
		panic("pram: VirtualMachine is not safe for concurrent use (Step called during Step)")
	}
	defer vm.inStep.Store(false)

	vm.beginStep()
	vm.pending = vm.pending[:0]
	if cap(vm.pending) < active {
		// Most kernels write about one word per processor per step; a single
		// up-front reservation sized to the step avoids copy-doubling growth
		// inside the processor loop.
		vm.pending = make([]writeOp, 0, active)
	}
	trace := !vm.model.AllowsConcurrentRead()
	skippedNow := 0
	hook := vm.faults
	p := &vm.view
	p.b = &vm.base
	p.traceReads = trace
	p.halted = false
	// One shared write buffer serves every processor; the header is synced
	// back only after the loop (appends that stay within capacity mutate the
	// backing array in place, so per-processor header copies would be pure
	// write-barrier traffic).
	p.writes = vm.pending
	for i := 0; i < active; i++ {
		if hook != nil && !hook.ProcLive(vm.steps, i) {
			skippedNow++
			continue
		}
		p.ID = i
		if trace {
			p.reads = p.reads[:0]
			body(p)
			// Reads can be validated as soon as the processor retires —
			// processor order here equals the order Machine's read pass
			// uses, so the first conflict found is the same pair.
			if err := vm.checkReads(i, p.reads); err != nil {
				vm.pending = p.writes
				return err
			}
		} else {
			body(p)
		}
	}
	vm.pending = p.writes
	// Write admission is deferred until every processor has run, mirroring
	// Machine's all-reads-before-any-writes pass so a step violating both
	// rules reports the read conflict on both executors.
	winners, err := vm.admitWritesInPlace(vm.pending)
	if err != nil {
		return err
	}
	vm.commitWrites(winners)
	vm.chargeStep(active, skippedNow)
	return nil
}
