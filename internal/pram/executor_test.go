package pram

import (
	"errors"
	"math/rand"
	"testing"

	"fraccascade/internal/faults"
	"fraccascade/internal/obs"
)

// stepOp is one processor's pre-generated accesses for one step. Programs
// are generated up front so the bodies are pure table lookups: no shared
// rng is touched inside a body, which keeps them legal under Machine's
// concurrent (goroutine) mode.
type stepOp struct {
	reads  []int
	writes []struct {
		addr int
		val  int64
	}
}

// randProgram is a deterministic random step program: program[s][p] holds
// processor p's accesses in step s. Values written mix in the sum of the
// processor's reads so memory contents depend on execution semantics, not
// just on the final write table.
type randProgram struct {
	procs int
	words int
	steps [][]stepOp
}

func genProgram(rng *rand.Rand, procs, words, steps, maxOps int) randProgram {
	prog := randProgram{procs: procs, words: words}
	for s := 0; s < steps; s++ {
		ops := make([]stepOp, procs)
		for p := range ops {
			nr := rng.Intn(maxOps + 1)
			for i := 0; i < nr; i++ {
				ops[p].reads = append(ops[p].reads, rng.Intn(words))
			}
			nw := rng.Intn(maxOps + 1)
			for i := 0; i < nw; i++ {
				ops[p].writes = append(ops[p].writes, struct {
					addr int
					val  int64
				}{rng.Intn(words), int64(rng.Intn(1000))})
			}
		}
		prog.steps = append(prog.steps, ops)
	}
	return prog
}

// run executes the program on x until completion or first error, returning
// the error (nil on success). Steps are labelled in blocks of three so the
// phase profiler sees multiple phases and phase switches on every program.
func (prog randProgram) run(x Executor) error {
	base := x.Alloc(prog.words)
	for i := 0; i < prog.words; i++ {
		x.Store(base+i, int64(7*i+1))
	}
	for s := range prog.steps {
		x.Phase("phase-" + itoa(int64(s/3)))
		ops := prog.steps[s]
		err := x.Step(prog.procs, func(p *Proc) {
			op := ops[p.ID]
			var sum int64
			for _, a := range op.reads {
				sum += p.Read(base + a)
			}
			for _, w := range op.writes {
				p.Write(base+w.addr, w.val+sum%17)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// execState snapshots everything observable about an executor after a run.
type execState struct {
	err        error
	mem        []int64
	time       int
	work       int64
	skipped    int64
	peakActive int
	metrics    string
	profile    string
}

func snapshot(x Executor, err error, reg *obs.Registry) execState {
	st := execState{
		err:        err,
		mem:        x.LoadSlice(0, x.MemWords()),
		time:       x.Time(),
		work:       x.Work(),
		skipped:    x.Skipped(),
		peakActive: x.PeakActive(),
	}
	if reg != nil {
		st.metrics = metricsText(reg)
	}
	if p := x.Profile(); p != nil {
		st.profile = p.String()
		if err == nil && p.TotalSteps() != x.Time() {
			panic("profile steps do not sum to Time on a legal run")
		}
	}
	return st
}

func metricsText(reg *obs.Registry) string {
	var sb stringsBuilder
	if err := reg.WriteText(&sb); err != nil {
		panic(err)
	}
	return sb.String()
}

// stringsBuilder avoids importing strings just for a Builder in this file.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }

func sameConflict(t *testing.T, label string, a, b error) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", label, a, b)
	}
	if a == nil {
		return
	}
	var ca, cb *ConflictError
	if !errors.As(a, &ca) || !errors.As(b, &cb) {
		t.Fatalf("%s: non-conflict errors: %v vs %v", label, a, b)
	}
	if *ca != *cb {
		t.Fatalf("%s: conflict verdicts differ: %+v vs %+v", label, *ca, *cb)
	}
}

func diffStates(t *testing.T, label string, a, b execState) {
	t.Helper()
	sameConflict(t, label, a.err, b.err)
	if a.time != b.time || a.work != b.work || a.skipped != b.skipped || a.peakActive != b.peakActive {
		t.Fatalf("%s: cost mismatch: time %d/%d work %d/%d skipped %d/%d peak %d/%d",
			label, a.time, b.time, a.work, b.work, a.skipped, b.skipped, a.peakActive, b.peakActive)
	}
	if len(a.mem) != len(b.mem) {
		t.Fatalf("%s: memory size mismatch: %d vs %d", label, len(a.mem), len(b.mem))
	}
	for i := range a.mem {
		if a.mem[i] != b.mem[i] {
			t.Fatalf("%s: memory differs at word %d: %d vs %d", label, i, a.mem[i], b.mem[i])
		}
	}
	if a.metrics != b.metrics {
		t.Fatalf("%s: metrics snapshots differ:\n%s\nvs\n%s", label, a.metrics, b.metrics)
	}
	if a.profile != b.profile {
		t.Fatalf("%s: phase profiles differ:\n%s\nvs\n%s", label, a.profile, b.profile)
	}
}

// TestExecutorDifferentialRandomPrograms replays seeded random step
// programs — across all four models, with and without fault plans — on the
// sequential Machine, the concurrent (goroutine-barrier) Machine, and the
// VirtualMachine, asserting identical memory, cost counters, metric
// snapshots, and conflict verdicts. This is the core guarantee that lets
// experiments default to the virtual executor: any drift between the
// executors' semantics fails here.
func TestExecutorDifferentialRandomPrograms(t *testing.T) {
	models := []Model{EREW, CREW, CRCWCommon, CRCWArbitrary}
	const seeds = 40
	for _, model := range models {
		for seed := int64(1); seed <= seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			procs := 1 + rng.Intn(8)
			words := 1 + rng.Intn(12)
			steps := 1 + rng.Intn(10)
			prog := genProgram(rng, procs, words, steps, 3)

			var plan *faults.Plan
			if seed%2 == 0 {
				var err error
				plan, err = faults.Random(seed, procs, faults.Options{
					CrashRate:     0.15,
					StragglerRate: 0.2,
					MaxStall:      4,
					CorruptRate:   0.1,
					Horizon:       steps + 2,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}

			run := func(x Executor) execState {
				reg := obs.NewRegistry()
				x.SetMetrics(reg)
				x.SetProfile(NewProfile())
				if plan != nil {
					x.SetFaultHook(plan)
				}
				return snapshot(x, prog.run(x), reg)
			}

			seq := run(MustNew(model, procs))
			conc := MustNew(model, procs)
			conc.SetConcurrent(true)
			concSt := run(conc)
			virt := run(MustNewVirtual(model, procs))

			label := func(pair string) string {
				return model.String() + "/seed=" + itoa(seed) + "/" + pair
			}
			diffStates(t, label("seq-vs-conc"), seq, concSt)
			diffStates(t, label("seq-vs-virtual"), seq, virt)

			// Uncosted matches on result and cost whenever the program is
			// legal (no conflict): it cannot report verdicts by design.
			if seq.err == nil {
				unc := run(MustNewUncosted(model, procs))
				if unc.err != nil {
					t.Fatalf("%s: uncosted errored on legal program: %v", label("uncosted"), unc.err)
				}
				// Conflict counters are never incremented on a legal run,
				// so the full metric snapshot comparison applies too.
				diffStates(t, label("seq-vs-uncosted"), seq, unc)
			}
			if t.Failed() {
				t.Logf("reproduce with seed=%d model=%s", seed, model)
				return
			}
		}
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestVirtualMatchesMachineOnContractCases mirrors the hand-written
// contract cases from pram_test.go on the VirtualMachine: the verdict
// kinds, the memory-untouched-on-conflict rule, and the not-charged rule.
func TestVirtualMatchesMachineOnContractCases(t *testing.T) {
	// EREW concurrent read -> read conflict.
	vm := MustNewVirtual(EREW, 4)
	a := vm.Alloc(1)
	err := vm.Step(2, func(p *Proc) { p.Read(a) })
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Kind != "read" || ce.Addr != a {
		t.Fatalf("EREW read conflict: got %v", err)
	}
	if vm.Time() != 0 {
		t.Fatalf("conflicting step was charged: Time=%d", vm.Time())
	}

	// CREW write conflict leaves memory unchanged.
	vm = MustNewVirtual(CREW, 4)
	a = vm.Alloc(1)
	vm.Store(a, 42)
	err = vm.Step(2, func(p *Proc) { p.Write(a, int64(p.ID)) })
	if !errors.As(err, &ce) || ce.Kind != "write" {
		t.Fatalf("CREW write conflict: got %v", err)
	}
	if got := vm.Load(a); got != 42 {
		t.Fatalf("memory changed on conflict: %d", got)
	}

	// CRCW-Arbitrary: lowest processor wins.
	vm = MustNewVirtual(CRCWArbitrary, 8)
	a = vm.Alloc(1)
	if err := vm.Step(8, func(p *Proc) { p.Write(a, int64(100+p.ID)) }); err != nil {
		t.Fatal(err)
	}
	if got := vm.Load(a); got != 100 {
		t.Fatalf("CRCW-Arbitrary winner: got %d, want 100", got)
	}

	// CRCW-Common: same value ok, different values conflict.
	vm = MustNewVirtual(CRCWCommon, 4)
	a = vm.Alloc(1)
	if err := vm.Step(4, func(p *Proc) { p.Write(a, 9) }); err != nil {
		t.Fatal(err)
	}
	err = vm.Step(4, func(p *Proc) { p.Write(a, int64(p.ID)) })
	if !errors.As(err, &ce) || ce.Kind != "write" {
		t.Fatalf("CRCW-Common differing values: got %v", err)
	}
}

// TestUncostedPriorityWriteSemantics pins the Uncosted executor to the
// same write-resolution rules as the tracing executors: first processor
// wins across processors, last write wins within a processor.
func TestUncostedPriorityWriteSemantics(t *testing.T) {
	u := MustNewUncosted(CRCWArbitrary, 8)
	a := u.Alloc(1)
	if err := u.Step(8, func(p *Proc) { p.Write(a, int64(100+p.ID)) }); err != nil {
		t.Fatal(err)
	}
	if got := u.Load(a); got != 100 {
		t.Fatalf("cross-processor priority: got %d, want 100", got)
	}
	b := u.Alloc(1)
	if err := u.Step(1, func(p *Proc) { p.Write(b, 1); p.Write(b, 2) }); err != nil {
		t.Fatal(err)
	}
	if got := u.Load(b); got != 2 {
		t.Fatalf("same-processor overwrite: got %d, want 2", got)
	}
}

// TestVirtualMachineReentrantStepPanics is the deterministic half of the
// concurrent-use guard: calling Step from inside a running Step must
// panic rather than corrupt the shared scratch.
func TestVirtualMachineReentrantStepPanics(t *testing.T) {
	vm := MustNewVirtual(CREW, 2)
	vm.Alloc(1)
	defer func() {
		if recover() == nil {
			t.Fatal("reentrant Step did not panic")
		}
	}()
	_ = vm.Step(1, func(p *Proc) {
		_ = vm.Step(1, func(p *Proc) {})
	})
}

// TestVirtualMachineConcurrentUseGuard drives two goroutines into Step at
// once and requires that at least one of them panics with the guard
// message. It runs under `make race` (internal/pram is in the race
// target), so the guard itself is also checked for data races.
func TestVirtualMachineConcurrentUseGuard(t *testing.T) {
	vm := MustNewVirtual(CREW, 2)
	addr := vm.Alloc(1)
	start := make(chan struct{})
	inside := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan bool, 2)

	// First goroutine parks inside a Step body; the second then calls
	// Step and must hit the CAS guard.
	go func() {
		defer func() { panicked <- recover() != nil }()
		<-start
		_ = vm.Step(1, func(p *Proc) {
			close(inside)
			<-release
			p.Write(addr, 1)
		})
	}()
	go func() {
		defer func() { panicked <- recover() != nil }()
		<-start
		<-inside
		defer close(release)
		_ = vm.Step(1, func(p *Proc) {})
	}()
	close(start)
	a, b := <-panicked, <-panicked
	if !a && !b {
		t.Fatal("concurrent Step calls did not trip the guard")
	}
}

// TestExecutorKindRoundTrip covers the flag plumbing used by
// cmd/coopbench and cmd/plquery.
func TestExecutorKindRoundTrip(t *testing.T) {
	for _, name := range []string{"barrier", "virtual", "uncosted"} {
		k, err := ParseExecutorKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Fatalf("round trip: %q -> %v", name, k)
		}
		x, err := NewExecutor(k, CREW, 4)
		if err != nil {
			t.Fatal(err)
		}
		if x.Procs() != 4 || x.Model() != CREW {
			t.Fatalf("NewExecutor(%v) misconfigured: procs=%d model=%v", k, x.Procs(), x.Model())
		}
	}
	// KindWall parses and prints like the simulated kinds but is native:
	// NewExecutor must refuse to build a simulated machine for it.
	k, err := ParseExecutorKind("wall")
	if err != nil {
		t.Fatal(err)
	}
	if k != KindWall || k.String() != "wall" {
		t.Fatalf("round trip: %q -> %v", "wall", k)
	}
	if _, err := NewExecutor(KindWall, CREW, 4); err == nil {
		t.Fatal("NewExecutor built a simulated machine for the native wall kind")
	}
	if _, err := ParseExecutorKind("warp"); err == nil {
		t.Fatal("unknown executor name accepted")
	}
	if _, err := NewExecutor(KindVirtual, CREW, 0); err == nil {
		t.Fatal("NewExecutor accepted zero processors")
	}
}
