package pram

import (
	"fmt"
	"io"
	"strings"

	"fraccascade/internal/obs"
)

// PhaseStats accumulates the cost of all steps attributed to one phase
// label: the same quantities the executor's whole-machine accessors report,
// broken down by where in the algorithm they were spent.
type PhaseStats struct {
	// Steps counts charged synchronous steps; Work the processor-steps.
	Steps int
	Work  int64
	// Skipped counts processor-steps lost to the fault hook.
	Skipped int64
	// PeakActive is the largest per-step live processor count.
	PeakActive int
	// ReadConflicts and WriteConflicts count model violations detected
	// during this phase (the violating step itself is never charged, so a
	// phase can have conflicts with zero steps).
	ReadConflicts, WriteConflicts int64
}

// add folds one charged step into the phase.
func (ps *PhaseStats) add(live, skippedNow int) {
	ps.Steps++
	ps.Work += int64(live)
	ps.Skipped += int64(skippedNow)
	if live > ps.PeakActive {
		ps.PeakActive = live
	}
}

// PhaseReport is one labelled entry of a Profile listing.
type PhaseReport struct {
	Label string
	PhaseStats
}

// Profile is a phase-attributed cost accumulator. Attach one to an
// executor with SetProfile; programs then mark algorithm phases with
// Executor.Phase(label), and every subsequently charged step — its work,
// peak processor count, fault skips, and any detected conflicts — is
// attributed to the current label. Steps charged before the first Phase
// call land under "unlabeled".
//
// Because attribution happens inside the shared conflict core (the same
// chargeStep/checkReads/admitOne passes every executor runs), profiles are
// bit-identical across the barrier, virtual, and uncosted executors for
// any legal program — asserted by the executor differential harnesses.
//
// A Profile is not safe for concurrent use by multiple executors running
// simultaneously; like the sequential executors it assumes one host
// control thread. The zero value is not usable; construct with NewProfile.
// A nil *Profile disables profiling (the attached-executor hot path is a
// nil check, and Phase() on an unprofiled executor performs no work and no
// allocations).
type Profile struct {
	phases map[string]*PhaseStats
	order  []string
	cur    *PhaseStats
	label  string
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{phases: make(map[string]*PhaseStats)}
}

// enter makes label the current phase, creating its stats on first use.
func (p *Profile) enter(label string) {
	if p == nil || label == p.label && p.cur != nil {
		return
	}
	ps := p.phases[label]
	if ps == nil {
		ps = &PhaseStats{}
		p.phases[label] = ps
		p.order = append(p.order, label)
	}
	p.cur = ps
	p.label = label
}

// current returns the stats of the phase in force, lazily (re)creating the
// entry — "unlabeled" if no Phase call has happened yet, the retained
// label after a Reset. Laziness keeps never-charged phases out of
// listings.
func (p *Profile) current() *PhaseStats {
	if p.cur == nil {
		label := p.label
		if label == "" {
			label = "unlabeled"
		}
		p.enter(label)
	}
	return p.cur
}

// Label returns the label of the phase currently in force ("" before the
// first step or Phase call).
func (p *Profile) Label() string {
	if p == nil {
		return ""
	}
	return p.label
}

// Get returns the accumulated stats for label (zero value if the label
// never ran).
func (p *Profile) Get(label string) PhaseStats {
	if p == nil {
		return PhaseStats{}
	}
	if ps := p.phases[label]; ps != nil {
		return *ps
	}
	return PhaseStats{}
}

// Phases lists every phase in first-use order.
func (p *Profile) Phases() []PhaseReport {
	if p == nil {
		return nil
	}
	out := make([]PhaseReport, 0, len(p.order))
	for _, label := range p.order {
		out = append(out, PhaseReport{Label: label, PhaseStats: *p.phases[label]})
	}
	return out
}

// TotalSteps sums charged steps over all phases. With a profile attached
// for an executor's whole run this equals the executor's Time() — every
// charged step is attributed to exactly one phase.
func (p *Profile) TotalSteps() int {
	if p == nil {
		return 0
	}
	total := 0
	for _, ps := range p.phases {
		total += ps.Steps
	}
	return total
}

// TotalWork sums processor-steps over all phases (equals Work()).
func (p *Profile) TotalWork() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for _, ps := range p.phases {
		total += ps.Work
	}
	return total
}

// Reset clears all accumulated phases (the attached executor keeps
// attributing to the label in force).
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	clear(p.phases)
	p.order = p.order[:0]
	p.cur = nil
}

// Equal reports whether two profiles hold identical phases with identical
// stats in identical first-use order — the relation the executor
// differential harnesses assert.
func (p *Profile) Equal(q *Profile) bool {
	po, qo := p.Phases(), q.Phases()
	if len(po) != len(qo) {
		return false
	}
	for i := range po {
		if po[i] != qo[i] {
			return false
		}
	}
	return true
}

// String renders the profile as one "label: stats" line per phase in
// first-use order, for test diffs and CLI output.
func (p *Profile) String() string {
	var sb strings.Builder
	for _, pr := range p.Phases() {
		fmt.Fprintf(&sb, "%s: steps=%d work=%d skipped=%d peak=%d rconf=%d wconf=%d\n",
			pr.Label, pr.Steps, pr.Work, pr.Skipped, pr.PeakActive, pr.ReadConflicts, pr.WriteConflicts)
	}
	return sb.String()
}

// PublishTo mirrors the profile's current totals into an obs registry
// under the per-phase names
//
//	pram.phase.<label>.steps
//	pram.phase.<label>.work
//	pram.phase.<label>.skipped
//	pram.phase.<label>.conflicts      (read + write)
//	pram.phase.<label>.peak_active    (gauge, raised not overwritten)
//
// Counters are incremented by the profile's totals, so publishing distinct
// profiles (or fresh runs) into one registry aggregates, matching the
// registry-global semantics of the executor's own pram.* metrics. Publish
// each profile at most once per accumulation; no-op on a nil registry or
// nil profile.
func (p *Profile) PublishTo(r *obs.Registry) {
	if p == nil || r == nil {
		return
	}
	for _, pr := range p.Phases() {
		prefix := "pram.phase." + pr.Label + "."
		r.Counter(prefix + "steps").Add(int64(pr.Steps))
		r.Counter(prefix + "work").Add(pr.Work)
		r.Counter(prefix + "skipped").Add(pr.Skipped)
		r.Counter(prefix + "conflicts").Add(pr.ReadConflicts + pr.WriteConflicts)
		r.Gauge(prefix + "peak_active").Max(int64(pr.PeakActive))
	}
}

// WritePprof exports the profile as a gzipped pprof profile.proto with
// sample types steps/count and work/count; each phase becomes one sample
// whose stack is the phase path (labels split on "/", so "search/root-coop"
// renders as a two-frame stack). The output loads in `go tool pprof` —
// -top, -tree, and flamegraphs work on simulated parallel time.
func (p *Profile) WritePprof(w io.Writer) error {
	steps := make(map[string]int64)
	work := make(map[string]int64)
	for _, pr := range p.Phases() {
		steps[pr.Label] += int64(pr.Steps)
		work[pr.Label] += pr.Work
	}
	return obs.WriteStepsProfile(w, steps, work)
}
