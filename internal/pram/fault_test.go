package pram

import (
	"errors"
	"testing"

	"fraccascade/internal/faults"
)

// TestFaultHookSkipsDeadProcessors: a crashed processor's step body never
// runs, so its writes are lost and it stops being charged as work.
func TestFaultHookSkipsDeadProcessors(t *testing.T) {
	m := MustNew(EREW, 4)
	base := m.Alloc(4)
	plan, err := faults.NewPlan(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Crash(2, 1); err != nil {
		t.Fatal(err)
	}
	m.SetFaultHook(plan)
	if !m.FaultHookInstalled() {
		t.Fatal("hook should be installed")
	}
	for step := 0; step < 3; step++ {
		err := m.Step(4, func(p *Proc) {
			p.Write(base+p.ID, p.Read(base+p.ID)+1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Processor 2 participated only in step 0.
	want := []int64{3, 3, 1, 3}
	for i, w := range want {
		if got := m.Load(base + i); got != w {
			t.Errorf("cell %d = %d, want %d", i, got, w)
		}
	}
	if m.Skipped() != 2 {
		t.Errorf("Skipped = %d, want 2 (proc 2 in steps 1 and 2)", m.Skipped())
	}
	if m.Work() != 10 {
		t.Errorf("Work = %d, want 10 (4+3+3)", m.Work())
	}
	if m.PeakActive() != 4 {
		t.Errorf("PeakActive = %d, want 4", m.PeakActive())
	}
}

// TestFaultHookStalledProcessorResumes: a straggler misses its stall window
// but participates on both sides of it.
func TestFaultHookStalledProcessorResumes(t *testing.T) {
	m := MustNew(EREW, 2)
	base := m.Alloc(2)
	plan, err := faults.NewPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Stall(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	m.SetFaultHook(plan)
	for step := 0; step < 4; step++ {
		if err := m.Step(2, func(p *Proc) {
			p.Write(base+p.ID, p.Read(base+p.ID)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Load(base + 1); got != 2 {
		t.Errorf("stalled processor wrote %d times, want 2 (steps 0 and 3)", got)
	}
	if got := m.Load(base); got != 4 {
		t.Errorf("healthy processor wrote %d times, want 4", got)
	}
}

// TestCRCWCommonLegalSameValueWrites: concurrent writes of the same value
// to one cell are legal on CRCW-Common, with and without a fault hook.
func TestCRCWCommonLegalSameValueWrites(t *testing.T) {
	for _, withHook := range []bool{false, true} {
		m := MustNew(CRCWCommon, 8)
		base := m.Alloc(2)
		m.Store(base, 42)
		if withHook {
			plan, err := faults.NewPlan(8)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Crash(3, 0); err != nil {
				t.Fatal(err)
			}
			m.SetFaultHook(plan)
		}
		// Every live processor reads the same source cell and writes the
		// value it observed to a common destination: a legal common write.
		err := m.Step(8, func(p *Proc) {
			p.Write(base+1, p.Read(base))
		})
		if err != nil {
			t.Fatalf("withHook=%v: legal common write rejected: %v", withHook, err)
		}
		if got := m.Load(base + 1); got != 42 {
			t.Errorf("withHook=%v: destination = %d, want 42", withHook, got)
		}
	}
}

// TestCRCWCommonCorruptedReadBreaksCommonWrite: a transient read corruption
// makes one writer disagree, and the Common-model conflict detector reports
// it — the detection path the fault injector is designed to exercise.
func TestCRCWCommonCorruptedReadBreaksCommonWrite(t *testing.T) {
	m := MustNew(CRCWCommon, 8)
	base := m.Alloc(2)
	m.Store(base, 42)
	plan, err := faults.NewPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CorruptRead(5, 0, 0xff); err != nil {
		t.Fatal(err)
	}
	m.SetFaultHook(plan)
	err = m.Step(8, func(p *Proc) {
		p.Write(base+1, p.Read(base))
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted common write should conflict, got %v", err)
	}
	if ce.Kind != "write" || ce.Addr != base+1 {
		t.Errorf("conflict = %+v, want write conflict at %d", ce, base+1)
	}
	// The conflicting step must not have committed anything.
	if got := m.Load(base + 1); got != 0 {
		t.Errorf("destination = %d after conflict, want 0 (no commit)", got)
	}
}

// TestCREWInjectedWriteConflict: same-cell writes by two processors violate
// CREW even when the values agree, and the error names both processors.
func TestCREWInjectedWriteConflict(t *testing.T) {
	m := MustNew(CREW, 4)
	base := m.Alloc(1)
	err := m.Step(4, func(p *Proc) {
		p.Write(base, 7)
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("CREW same-cell write should conflict, got %v", err)
	}
	if ce.Kind != "write" || ce.Model != CREW {
		t.Errorf("conflict = %+v, want CREW write conflict", ce)
	}
	if ce.ProcA == ce.ProcB {
		t.Errorf("conflict must involve two distinct processors, got %d and %d", ce.ProcA, ce.ProcB)
	}
}

// TestCREWFaultHookCanMaskConflict: if all but one same-cell writer is dead,
// the surviving write is exclusive and legal — dead processors must be
// excluded from conflict detection.
func TestCREWFaultHookCanMaskConflict(t *testing.T) {
	m := MustNew(CREW, 4)
	base := m.Alloc(1)
	plan, err := faults.NewPlan(4)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 1; proc < 4; proc++ {
		if err := plan.Crash(proc, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.SetFaultHook(plan)
	if err := m.Step(4, func(p *Proc) {
		p.Write(base, int64(p.ID)+100)
	}); err != nil {
		t.Fatalf("single surviving writer should be exclusive: %v", err)
	}
	if got := m.Load(base); got != 100 {
		t.Errorf("cell = %d, want 100 (processor 0's write)", got)
	}
}

// TestFaultHookConcurrentModeMatchesSequential: the goroutine execution
// path must honour the hook identically to the in-order loop.
func TestFaultHookConcurrentModeMatchesSequential(t *testing.T) {
	run := func(concurrent bool) []int64 {
		m := MustNew(CREW, 16)
		base := m.Alloc(16)
		plan, err := faults.Random(5, 16, faults.Options{CrashRate: 0.4, StragglerRate: 0.4, Horizon: 8})
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultHook(plan)
		m.SetConcurrent(concurrent)
		for step := 0; step < 8; step++ {
			if err := m.Step(16, func(p *Proc) {
				p.Write(base+p.ID, p.Read(base+p.ID)+1)
			}); err != nil {
				t.Fatal(err)
			}
		}
		return m.LoadSlice(base, 16)
	}
	seqMem := run(false)
	conMem := run(true)
	for i := range seqMem {
		if seqMem[i] != conMem[i] {
			t.Fatalf("cell %d: sequential %d != concurrent %d", i, seqMem[i], conMem[i])
		}
	}
}
