package pram

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"fraccascade/internal/obs"
)

// TestProfileGroundTruth runs a small phased program and checks the
// attribution against hand-computed per-phase costs, plus the invariant
// that phase totals equal the machine's whole-run accessors.
func TestProfileGroundTruth(t *testing.T) {
	m, err := New(CREW, 8)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfile()
	m.SetProfile(prof)
	buf := m.Alloc(8)

	m.Phase("fill")
	for r := 0; r < 3; r++ {
		if err := m.Step(8, func(p *Proc) { p.Write(buf+p.ID, int64(p.ID+r)) }); err != nil {
			t.Fatal(err)
		}
	}
	m.Phase("tail")
	if err := m.Step(2, func(p *Proc) { p.Write(buf+p.ID, p.Read(buf+p.ID)+1) }); err != nil {
		t.Fatal(err)
	}

	fill := prof.Get("fill")
	if fill != (PhaseStats{Steps: 3, Work: 24, PeakActive: 8}) {
		t.Fatalf("fill stats = %+v", fill)
	}
	tail := prof.Get("tail")
	if tail != (PhaseStats{Steps: 1, Work: 2, PeakActive: 2}) {
		t.Fatalf("tail stats = %+v", tail)
	}
	if got := prof.TotalSteps(); got != m.Time() {
		t.Fatalf("TotalSteps = %d, Time = %d", got, m.Time())
	}
	if got := prof.TotalWork(); got != m.Work() {
		t.Fatalf("TotalWork = %d, Work = %d", got, m.Work())
	}
	if labels := prof.Phases(); len(labels) != 2 || labels[0].Label != "fill" || labels[1].Label != "tail" {
		t.Fatalf("phase order = %v", labels)
	}
}

// TestProfileUnlabeledAndConflicts checks that steps before any Phase call
// land under "unlabeled" and that a detected conflict is attributed to the
// phase in force even though the violating step is never charged.
func TestProfileUnlabeledAndConflicts(t *testing.T) {
	m, err := New(EREW, 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfile()
	m.SetProfile(prof)
	addr := m.Alloc(4)

	if err := m.Step(4, func(p *Proc) { p.Write(addr+p.ID, 1) }); err != nil {
		t.Fatal(err)
	}
	if got := prof.Get("unlabeled"); got.Steps != 1 || got.Work != 4 {
		t.Fatalf("unlabeled = %+v", got)
	}

	m.Phase("clash")
	if err := m.Step(2, func(p *Proc) { p.Read(addr) }); err == nil {
		t.Fatal("want EREW read conflict")
	}
	clash := prof.Get("clash")
	if clash.ReadConflicts != 1 || clash.Steps != 0 {
		t.Fatalf("clash = %+v, want 1 read conflict and 0 charged steps", clash)
	}
	if prof.TotalSteps() != m.Time() {
		t.Fatalf("TotalSteps %d != Time %d after conflict", prof.TotalSteps(), m.Time())
	}
}

// TestProfileFaultSkips checks skipped processor-steps are attributed to
// the current phase.
func TestProfileFaultSkips(t *testing.T) {
	m, err := New(CREW, 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfile()
	m.SetProfile(prof)
	m.SetFaultHook(stallHook{dead: 2})
	buf := m.Alloc(4)

	m.Phase("lossy")
	if err := m.Step(4, func(p *Proc) { p.Write(buf+p.ID, 7) }); err != nil {
		t.Fatal(err)
	}
	got := prof.Get("lossy")
	if got != (PhaseStats{Steps: 1, Work: 3, Skipped: 1, PeakActive: 3}) {
		t.Fatalf("lossy = %+v", got)
	}
	if got.Skipped != m.Skipped() {
		t.Fatalf("phase skipped %d != machine skipped %d", got.Skipped, m.Skipped())
	}
}

// TestPhaseDisabledZeroAlloc is the ISSUE's 0-alloc guard: Phase on an
// executor without a profile — the production default — must not allocate,
// and neither must re-entering the current phase with a profile attached.
func TestPhaseDisabledZeroAlloc(t *testing.T) {
	for _, kind := range []ExecutorKind{KindBarrier, KindVirtual, KindUncosted} {
		e := MustNewExecutor(kind, CREW, 4)
		if n := testing.AllocsPerRun(100, func() {
			e.Phase("root-coop")
			e.Phase("hop-descent")
		}); n != 0 {
			t.Errorf("%v: Phase with no profile allocates %.1f/op", kind, n)
		}
		e.SetProfile(NewProfile())
		e.Phase("steady")
		if n := testing.AllocsPerRun(100, func() { e.Phase("steady") }); n != 0 {
			t.Errorf("%v: re-entering current phase allocates %.1f/op", kind, n)
		}
	}
}

// TestProfileEqualAndReset covers the comparison used by the differential
// harnesses and Reset's keep-current-label contract.
func TestProfileEqualAndReset(t *testing.T) {
	a, b := NewProfile(), NewProfile()
	a.enter("x")
	a.current().add(4, 1)
	b.enter("x")
	b.current().add(4, 1)
	if !a.Equal(b) {
		t.Fatalf("equal profiles compare unequal:\n%s\nvs\n%s", a, b)
	}
	b.current().add(2, 0)
	if a.Equal(b) {
		t.Fatal("diverged profiles compare equal")
	}
	b.enter("y")
	b.Reset()
	if len(b.Phases()) != 0 || b.TotalSteps() != 0 {
		t.Fatalf("Reset left data: %v", b.Phases())
	}
	if b.Label() != "y" {
		t.Fatalf("Reset dropped current label: %q", b.Label())
	}
	b.current().add(1, 0)
	if b.Get("y").Steps != 1 {
		t.Fatal("attribution after Reset did not land in retained label")
	}
}

// TestProfilePublishTo checks the obs metric names and values.
func TestProfilePublishTo(t *testing.T) {
	m := MustNewExecutor(KindVirtual, CREW, 4)
	prof := NewProfile()
	m.SetProfile(prof)
	buf := m.Alloc(4)
	m.Phase("root-coop")
	for r := 0; r < 2; r++ {
		if err := m.Step(4, func(p *Proc) { p.Write(buf+p.ID, int64(r)) }); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	prof.PublishTo(reg)
	s := reg.Snapshot()
	if got := s.Counters["pram.phase.root-coop.steps"]; got != 2 {
		t.Fatalf("steps counter = %d", got)
	}
	if got := s.Counters["pram.phase.root-coop.work"]; got != 8 {
		t.Fatalf("work counter = %d", got)
	}
	if got := s.Gauges["pram.phase.root-coop.peak_active"]; got != 4 {
		t.Fatalf("peak gauge = %d", got)
	}
	if got := s.Counters["pram.phase.root-coop.conflicts"]; got != 0 {
		t.Fatalf("conflicts counter = %d", got)
	}
}

// TestProfileWritePprof checks the pprof export gunzips and carries the
// phase frames.
func TestProfileWritePprof(t *testing.T) {
	prof := NewProfile()
	prof.enter("search/root-coop")
	prof.current().add(8, 0)
	prof.enter("seq-tail")
	prof.current().add(1, 0)

	var buf bytes.Buffer
	if err := prof.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("not gzipped: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steps", "work", "root-coop", "seq-tail"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("profile lacks %q", want)
		}
	}
}
