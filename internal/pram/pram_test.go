package pram

import (
	"errors"
	"testing"
)

func TestModelString(t *testing.T) {
	cases := map[Model]string{
		EREW:          "EREW",
		CREW:          "CREW",
		CRCWCommon:    "CRCW-Common",
		CRCWArbitrary: "CRCW-Arbitrary",
		Model(42):     "Model(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Model(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestModelCapabilities(t *testing.T) {
	if EREW.AllowsConcurrentRead() {
		t.Error("EREW must not allow concurrent reads")
	}
	if !CREW.AllowsConcurrentRead() {
		t.Error("CREW must allow concurrent reads")
	}
	if CREW.AllowsConcurrentWrite() {
		t.Error("CREW must not allow concurrent writes")
	}
	if !CRCWCommon.AllowsConcurrentWrite() || !CRCWArbitrary.AllowsConcurrentWrite() {
		t.Error("CRCW variants must allow concurrent writes")
	}
}

func TestAllocAndHostAccess(t *testing.T) {
	m := MustNew(EREW, 4)
	a := m.Alloc(10)
	b := m.Alloc(5)
	if a != 0 || b != 10 {
		t.Fatalf("Alloc bases = %d, %d; want 0, 10", a, b)
	}
	if m.MemWords() != 15 {
		t.Fatalf("MemWords = %d, want 15", m.MemWords())
	}
	m.Store(a+3, 42)
	if got := m.Load(a + 3); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	m.StoreSlice(b, []int64{1, 2, 3})
	got := m.LoadSlice(b, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("LoadSlice = %v", got)
	}
}

func TestStepBasicWriteVisibility(t *testing.T) {
	m := MustNew(EREW, 8)
	base := m.Alloc(8)
	err := m.Step(8, func(p *Proc) {
		p.Write(base+p.ID, int64(p.ID*p.ID))
	})
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	for i := 0; i < 8; i++ {
		if got := m.Load(base + i); got != int64(i*i) {
			t.Errorf("mem[%d] = %d, want %d", i, got, i*i)
		}
	}
	if m.Time() != 1 || m.Work() != 8 || m.PeakActive() != 8 {
		t.Errorf("cost = (t=%d, w=%d, peak=%d), want (1, 8, 8)", m.Time(), m.Work(), m.PeakActive())
	}
}

func TestStepReadsSeePreStepState(t *testing.T) {
	// Synchronous semantics: a rotation via simultaneous read+write must
	// read the old values, not a partially updated array.
	m := MustNew(EREW, 8)
	base := m.Alloc(8)
	for i := 0; i < 8; i++ {
		m.Store(base+i, int64(i))
	}
	err := m.Step(8, func(p *Proc) {
		v := p.Read(base + (p.ID+1)%8)
		p.Write(base+p.ID, v)
	})
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	for i := 0; i < 8; i++ {
		want := int64((i + 1) % 8)
		if got := m.Load(base + i); got != want {
			t.Errorf("mem[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestEREWReadConflictDetected(t *testing.T) {
	m := MustNew(EREW, 2)
	base := m.Alloc(1)
	err := m.Step(2, func(p *Proc) {
		p.Read(base)
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if ce.Kind != "read" || ce.Addr != base {
		t.Errorf("conflict = %+v, want read of %d", ce, base)
	}
}

func TestCREWAllowsConcurrentRead(t *testing.T) {
	m := MustNew(CREW, 16)
	base := m.Alloc(1)
	m.Store(base, 7)
	sum := m.Alloc(16)
	err := m.Step(16, func(p *Proc) {
		v := p.Read(base)
		p.Write(sum+p.ID, v)
	})
	if err != nil {
		t.Fatalf("CREW concurrent read should succeed: %v", err)
	}
}

func TestCREWWriteConflictDetected(t *testing.T) {
	m := MustNew(CREW, 2)
	base := m.Alloc(1)
	err := m.Step(2, func(p *Proc) {
		p.Write(base, int64(p.ID))
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if ce.Kind != "write" {
		t.Errorf("conflict kind = %q, want write", ce.Kind)
	}
}

func TestConflictLeavesMemoryUnchanged(t *testing.T) {
	m := MustNew(CREW, 2)
	base := m.Alloc(2)
	m.Store(base, 100)
	m.Store(base+1, 200)
	err := m.Step(2, func(p *Proc) {
		p.Write(base, 1) // both write addr base: conflict
	})
	if err == nil {
		t.Fatal("expected conflict")
	}
	if m.Load(base) != 100 || m.Load(base+1) != 200 {
		t.Errorf("memory changed after failed step: [%d %d]", m.Load(base), m.Load(base+1))
	}
	if m.Time() != 0 {
		t.Errorf("failed step should not be charged, Time = %d", m.Time())
	}
}

func TestCRCWCommonSameValueOK(t *testing.T) {
	m := MustNew(CRCWCommon, 8)
	base := m.Alloc(1)
	err := m.Step(8, func(p *Proc) {
		p.Write(base, 5)
	})
	if err != nil {
		t.Fatalf("CRCW-Common equal-value writes should succeed: %v", err)
	}
	if m.Load(base) != 5 {
		t.Errorf("mem = %d, want 5", m.Load(base))
	}
}

func TestCRCWCommonDifferentValuesConflict(t *testing.T) {
	m := MustNew(CRCWCommon, 2)
	base := m.Alloc(1)
	err := m.Step(2, func(p *Proc) {
		p.Write(base, int64(p.ID))
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
}

func TestCRCWArbitraryLowestWins(t *testing.T) {
	m := MustNew(CRCWArbitrary, 8)
	base := m.Alloc(1)
	err := m.Step(8, func(p *Proc) {
		p.Write(base, int64(10+p.ID))
	})
	if err != nil {
		t.Fatalf("CRCW-Arbitrary writes should succeed: %v", err)
	}
	if m.Load(base) != 10 {
		t.Errorf("mem = %d, want 10 (lowest processor wins)", m.Load(base))
	}
}

func TestStepOverBudget(t *testing.T) {
	m := MustNew(EREW, 4)
	if err := m.Step(5, func(p *Proc) {}); err == nil {
		t.Error("expected error when exceeding processor budget")
	}
}

func TestConcurrentModeMatchesSequential(t *testing.T) {
	run := func(concurrent bool) []int64 {
		m := MustNew(CRCWArbitrary, 64)
		m.SetConcurrent(concurrent)
		base := m.Alloc(64)
		acc := m.Alloc(1)
		for s := 0; s < 10; s++ {
			err := m.Step(64, func(p *Proc) {
				v := p.Read(base + (p.ID*7+s)%64)
				p.Write(base+p.ID, v+int64(p.ID))
				p.Write(acc, v) // CRCW: lowest proc wins deterministically
			})
			if err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
		return m.LoadSlice(0, m.MemWords())
	}
	seq := run(false)
	con := run(true)
	for i := range seq {
		if seq[i] != con[i] {
			t.Fatalf("mem[%d]: sequential %d != concurrent %d", i, seq[i], con[i])
		}
	}
}

func TestResetCost(t *testing.T) {
	m := MustNew(EREW, 2)
	m.Alloc(2)
	if err := m.Step(2, func(p *Proc) { p.Write(p.ID, 1) }); err != nil {
		t.Fatal(err)
	}
	m.ResetCost()
	if m.Time() != 0 || m.Work() != 0 || m.PeakActive() != 0 {
		t.Error("ResetCost did not zero counters")
	}
	if m.Load(0) != 1 {
		t.Error("ResetCost must not touch memory")
	}
}

func TestRunPropagatesError(t *testing.T) {
	m := MustNew(EREW, 2)
	base := m.Alloc(1)
	i := 0
	err := m.Run(func() (bool, error) {
		i++
		err := m.Step(2, func(p *Proc) { p.Read(base) }) // conflict
		return i < 5, err
	})
	if err == nil {
		t.Error("Run should propagate step error")
	}
	if i != 1 {
		t.Errorf("Run continued after error, i = %d", i)
	}
}

func TestZeroActiveStep(t *testing.T) {
	m := MustNew(EREW, 4)
	if err := m.Step(0, func(p *Proc) { t.Error("body must not run") }); err != nil {
		t.Fatalf("zero-active step: %v", err)
	}
	if m.Time() != 1 {
		t.Errorf("zero-active step should still cost a time unit, Time = %d", m.Time())
	}
}

func TestNewRejectsNonPositiveProcs(t *testing.T) {
	for _, procs := range []int{0, -1, -100} {
		if _, err := New(EREW, procs); err == nil {
			t.Errorf("New(EREW, %d) should return an error", procs)
		}
	}
	if m, err := New(CREW, 1); err != nil || m == nil {
		t.Errorf("New(CREW, 1) = (%v, %v), want a machine", m, err)
	}
}

func TestMustNewPanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(EREW, 0) should panic")
		}
	}()
	MustNew(EREW, 0)
}
