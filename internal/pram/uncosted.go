package pram

// Uncosted is the result-only executor: processors run sequentially in ID
// order like VirtualMachine, but no access tracing is performed and no
// conflict errors are ever reported — Step always succeeds for in-budget
// requests. It exists for pure-computation uses (the plain-function
// adapters in internal/parallel) where only the final memory state
// matters.
//
// Result semantics still match the tracing executors on any program that
// is legal under the declared model: reads observe pre-step state, writes
// commit at the barrier, and concurrent writes resolve first-writer-wins
// per address (which is the CRCW-Arbitrary lowest-processor rule, and is
// value-identical under CRCW-Common's all-equal requirement), while a
// processor overwriting its own earlier write in the same step keeps the
// last value, as on Machine. Time, Work, Skipped, and the fault hook are
// honoured so loop-shaped kernels that read the step counter behave
// identically; what is skipped is the per-access bookkeeping that makes
// the tracing executors able to *reject* illegal programs.
//
// Like VirtualMachine, an Uncosted executor is not safe for concurrent
// use. The zero value is not usable; construct with NewUncosted.
type Uncosted struct {
	base
	view    Proc
	pending []writeOp // step-wide write buffer, reused across steps
}

// Uncosted implements Executor.
var _ Executor = (*Uncosted)(nil)

// NewUncosted returns an Uncosted executor with the given model and
// processor budget. The memory starts empty; use Alloc to reserve words.
func NewUncosted(model Model, procs int) (*Uncosted, error) {
	b, err := newBase(model, procs)
	if err != nil {
		return nil, err
	}
	return &Uncosted{base: b}, nil
}

// MustNewUncosted is NewUncosted that panics on error.
func MustNewUncosted(model Model, procs int) *Uncosted {
	u, err := NewUncosted(model, procs)
	if err != nil {
		panic(err)
	}
	return u
}

// Step runs one synchronous step with `active` processors executing body,
// sequentially in ascending ID order, without access tracing. The only
// error it can return is an over-budget request.
func (u *Uncosted) Step(active int, body func(p *Proc)) error {
	if err := u.checkActive(active); err != nil {
		return err
	}
	u.beginStep()
	u.pending = u.pending[:0]
	if cap(u.pending) < active {
		u.pending = make([]writeOp, 0, active)
	}
	skippedNow := 0
	hook := u.faults
	p := &u.view
	p.b = &u.base
	p.traceReads = false
	p.halted = false
	p.writes = u.pending
	for i := 0; i < active; i++ {
		if hook != nil && !hook.ProcLive(u.steps, i) {
			skippedNow++
			continue
		}
		p.ID = i
		body(p)
	}
	u.pending = p.writes
	// Commit with the shared resolution rule but no error paths: the
	// first writer of an address wins against other processors (CRCW
	// semantics), while repeat writes by the same processor overwrite.
	for _, w := range u.pending {
		if e := u.wlog[w.addr]; uint32(e) == u.epoch && int32(e>>32) != w.proc {
			continue
		}
		u.wlog[w.addr] = u.logEntry(w.proc)
		u.mem[w.addr] = w.val
	}
	u.chargeStep(active, skippedNow)
	return nil
}
