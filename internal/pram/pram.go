// Package pram implements a synchronous PRAM (Parallel Random Access
// Machine) simulator used as the execution substrate for the cooperative
// search algorithms of Tamassia and Vitter.
//
// The simulator models the three classic memory-access disciplines:
//
//   - EREW: exclusive read, exclusive write
//   - CREW: concurrent read, exclusive write
//   - CRCW: concurrent read, concurrent write (Common and Arbitrary variants)
//
// A computation is a sequence of synchronous steps. In each step every
// active processor (1) reads any number of shared-memory words, (2) computes
// locally, and (3) buffers writes; all writes commit atomically at the end of
// the step. Access conflicts are detected against the declared model and
// reported as errors, which lets tests mechanically verify, for example,
// that a preprocessing phase claimed to be EREW really never issues a
// concurrent read.
//
// Cost accounting follows the standard PRAM conventions: Time is the number
// of steps executed, and Work is the sum over steps of the number of active
// processors. These are exactly the quantities bounded by the paper's
// theorems, independent of host hardware.
//
// Processors can run as goroutines (Concurrent mode) or be simulated in a
// deterministic sequential loop. Both modes produce identical memory states
// because writes are buffered per processor and committed in processor-ID
// order with model-dependent conflict resolution.
package pram

import (
	"fmt"
	"runtime"
	"sync"

	"fraccascade/internal/obs"
)

// Model selects the memory-access discipline enforced by a Machine.
type Model int

const (
	// EREW forbids both concurrent reads and concurrent writes to the
	// same address within one step.
	EREW Model = iota
	// CREW allows concurrent reads but forbids concurrent writes.
	CREW
	// CRCWCommon allows concurrent writes only if all writers write the
	// same value.
	CRCWCommon
	// CRCWArbitrary allows concurrent writes; the lowest-numbered
	// processor wins (a deterministic refinement of "arbitrary").
	CRCWArbitrary
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCommon:
		return "CRCW-Common"
	case CRCWArbitrary:
		return "CRCW-Arbitrary"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// AllowsConcurrentRead reports whether the model permits two processors to
// read the same address in one step.
func (m Model) AllowsConcurrentRead() bool { return m != EREW }

// AllowsConcurrentWrite reports whether the model permits two processors to
// write the same address in one step (subject to the variant's value rule).
func (m Model) AllowsConcurrentWrite() bool { return m == CRCWCommon || m == CRCWArbitrary }

// A FaultHook injects processor failures and read perturbations into a
// Machine's execution. Hooks are consulted inside Step: a processor for
// which ProcLive returns false skips the step entirely (its body does not
// run, so its reads and buffered writes never happen — the behaviour of a
// processor that died or stalled before the barrier), and every Read by a
// live processor passes through PerturbRead.
//
// Implementations must be safe for concurrent calls: in Concurrent mode
// the hook is invoked from multiple goroutines within one step. Plans that
// are immutable during execution (such as faults.Plan) satisfy this
// trivially.
type FaultHook interface {
	// ProcLive reports whether processor proc participates in step.
	ProcLive(step, proc int) bool
	// PerturbRead maps the true value v read from addr by proc at step to
	// the value the processor observes.
	PerturbRead(step, proc, addr int, v int64) int64
}

// A ConflictError reports a memory-access violation of the machine's model.
type ConflictError struct {
	Model Model  // model in force
	Kind  string // "read" or "write"
	Addr  int    // conflicting address
	Step  int    // step index (0-based) at which the conflict occurred
	ProcA int    // first involved processor
	ProcB int    // second involved processor
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("pram: concurrent %s of address %d by processors %d and %d at step %d violates %s",
		e.Kind, e.Addr, e.ProcA, e.ProcB, e.Step, e.Model)
}

// Machine is a synchronous PRAM with a fixed processor budget and a shared
// memory. The zero value is not usable; construct with New.
type Machine struct {
	model      Model
	procs      int
	mem        []int64
	steps      int
	work       int64
	peakActive int
	concurrent bool
	faults     FaultHook
	skipped    int64

	// Observability handles (nil when no registry is attached; every use
	// is nil-safe, so the disabled hot path is a nil check — see
	// SetMetrics and internal/obs).
	obsSteps      *obs.Counter
	obsWork       *obs.Counter
	obsSkipped    *obs.Counter
	obsPeakActive *obs.Gauge
	obsReadConf   *obs.Counter
	obsWriteConf  *obs.Counter

	// scratch reused across steps
	writeBuf []writeOp
	readLog  map[int]int32 // addr -> first reader (EREW checking)
	writeLog map[int]int32 // addr -> first writer
}

type writeOp struct {
	addr int
	val  int64
	proc int32
}

// New returns a Machine with the given model and processor budget.
// The memory starts empty; use Alloc to reserve words.
//
// Invalid input (a non-positive processor count) is reported as an error,
// never a panic: exported constructors across this repository return errors
// for caller mistakes, reserving panics for internal invariant violations
// that indicate a bug in this package itself (see Step's negative-active
// check for the canonical example of the latter).
func New(model Model, procs int) (*Machine, error) {
	if procs < 1 {
		return nil, fmt.Errorf("pram: processor count must be positive, got %d", procs)
	}
	return &Machine{
		model:    model,
		procs:    procs,
		readLog:  make(map[int]int32),
		writeLog: make(map[int]int32),
	}, nil
}

// MustNew is New that panics on error, a convenience for tests and
// examples whose processor counts are compile-time constants.
func MustNew(model Model, procs int) *Machine {
	m, err := New(model, procs)
	if err != nil {
		panic(err)
	}
	return m
}

// SetConcurrent chooses whether Step executes processors on goroutines
// (true) or in a deterministic in-order loop (false, the default). Results
// are identical in both modes.
func (m *Machine) SetConcurrent(c bool) { m.concurrent = c }

// SetFaultHook installs (or, with nil, removes) a fault-injection hook.
// Every subsequent Step consults it; see FaultHook. The machine never
// mutates the hook, so one plan can drive many machines.
func (m *Machine) SetFaultHook(h FaultHook) { m.faults = h }

// FaultHookInstalled reports whether a fault hook is active.
func (m *Machine) FaultHookInstalled() bool { return m.faults != nil }

// SetMetrics attaches (or, with nil, detaches) an observability registry.
// Subsequent Steps mirror the machine's cost accounting into it:
//
//	pram.steps                      synchronous steps executed
//	pram.work                       processor-steps charged
//	pram.fault.skipped              processor-steps lost to the fault hook
//	pram.peak_active                largest per-step live processor count
//	pram.conflicts.<model>.read     detected read conflicts, per model
//	pram.conflicts.<model>.write    detected write conflicts, per model
//
// Names are registry-global, so machines sharing a registry aggregate —
// the view a metrics snapshot wants — while Machine's own Time/Work/
// Skipped accessors remain the per-machine ground truth. With no registry
// attached every mirror write is a nil-handle no-op: the hot path stays
// allocation-free and the simulated step counts are bit-identical
// (verified by obs_test.go and the engine's invariance test).
func (m *Machine) SetMetrics(r *obs.Registry) {
	if r == nil {
		m.obsSteps, m.obsWork, m.obsSkipped = nil, nil, nil
		m.obsPeakActive, m.obsReadConf, m.obsWriteConf = nil, nil, nil
		return
	}
	m.obsSteps = r.Counter("pram.steps")
	m.obsWork = r.Counter("pram.work")
	m.obsSkipped = r.Counter("pram.fault.skipped")
	m.obsPeakActive = r.Gauge("pram.peak_active")
	m.obsReadConf = r.Counter("pram.conflicts." + m.model.String() + ".read")
	m.obsWriteConf = r.Counter("pram.conflicts." + m.model.String() + ".write")
}

// Skipped returns the cumulative number of processor-steps lost to the
// fault hook (processors scheduled in a step but reported dead or stalled).
func (m *Machine) Skipped() int64 { return m.skipped }

// Model returns the machine's memory-access model.
func (m *Machine) Model() Model { return m.model }

// Procs returns the machine's processor budget.
func (m *Machine) Procs() int { return m.procs }

// Time returns the number of synchronous steps executed so far.
func (m *Machine) Time() int { return m.steps }

// Work returns the cumulative processor-steps (sum of active processors
// over all steps).
func (m *Machine) Work() int64 { return m.work }

// PeakActive returns the largest number of processors active in any step.
func (m *Machine) PeakActive() int { return m.peakActive }

// ResetCost zeroes the time/work counters without touching memory.
func (m *Machine) ResetCost() {
	m.steps = 0
	m.work = 0
	m.peakActive = 0
}

// Alloc reserves n fresh words of shared memory, zero-initialised, and
// returns the base address of the block.
func (m *Machine) Alloc(n int) int {
	base := len(m.mem)
	m.mem = append(m.mem, make([]int64, n)...)
	return base
}

// Load reads a word outside of any step (host access, not charged).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes a word outside of any step (host access, not charged).
// It is intended for input staging before a computation begins.
func (m *Machine) Store(addr int, v int64) { m.mem[addr] = v }

// LoadSlice copies n words starting at base into a fresh slice
// (host access, not charged).
func (m *Machine) LoadSlice(base, n int) []int64 {
	out := make([]int64, n)
	copy(out, m.mem[base:base+n])
	return out
}

// StoreSlice stages the words of src into memory starting at base
// (host access, not charged).
func (m *Machine) StoreSlice(base int, src []int64) {
	copy(m.mem[base:base+len(src)], src)
}

// MemWords returns the current shared-memory size in words.
func (m *Machine) MemWords() int { return len(m.mem) }

// Proc is the view a single processor has of the machine during one step.
// Reads observe the memory state at the beginning of the step; writes are
// buffered and commit when the step ends.
type Proc struct {
	// ID is the processor index in [0, active).
	ID int

	m      *Machine
	reads  []int
	writes []writeOp
	halted bool
}

// Read returns the word at addr as of the start of the current step. With
// a fault hook installed, the observed value may be a transient corruption
// of the stored one; the memory cell itself is never altered.
func (p *Proc) Read(addr int) int64 {
	p.reads = append(p.reads, addr)
	v := p.m.mem[addr]
	if h := p.m.faults; h != nil {
		v = h.PerturbRead(p.m.steps, p.ID, addr, v)
	}
	return v
}

// Write buffers a write of v to addr; it becomes visible after the step.
func (p *Proc) Write(addr int, v int64) {
	p.writes = append(p.writes, writeOp{addr: addr, val: v, proc: int32(p.ID)})
}

// Step runs one synchronous step with `active` processors executing body.
// It returns a *ConflictError if the access pattern violates the model.
// On conflict, memory is left in the pre-step state.
//
// With a fault hook installed, processors the hook reports dead or stalled
// for this step never execute body: their reads and writes simply do not
// happen, and they are excluded from conflict detection and work charging.
//
// The negative-active panic below is an internal invariant check, not
// input validation: active counts are computed by this module's callers
// from validated structures, so a negative value means a bug in the
// calling algorithm. Invalid *caller input* (a request exceeding the
// processor budget) is an error, per the package-wide convention.
func (m *Machine) Step(active int, body func(p *Proc)) error {
	if active < 0 {
		panic("pram: negative active processor count")
	}
	if active > m.procs {
		return fmt.Errorf("pram: step requests %d processors but machine has %d", active, m.procs)
	}
	views := make([]Proc, active)
	skippedNow := 0
	for i := range views {
		views[i] = Proc{ID: i, m: m}
		if m.faults != nil && !m.faults.ProcLive(m.steps, i) {
			views[i].halted = true
			skippedNow++
		}
	}
	if m.concurrent && active > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > active {
			workers = active
		}
		var wg sync.WaitGroup
		chunk := (active + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > active {
				hi = active
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if !views[i].halted {
						body(&views[i])
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := 0; i < active; i++ {
			if !views[i].halted {
				body(&views[i])
			}
		}
	}

	// Conflict detection and commit, in deterministic processor order.
	clear(m.readLog)
	clear(m.writeLog)
	if !m.model.AllowsConcurrentRead() {
		for i := range views {
			for _, a := range views[i].reads {
				if prev, ok := m.readLog[a]; ok && prev != int32(i) {
					m.obsReadConf.Inc()
					return &ConflictError{Model: m.model, Kind: "read", Addr: a, Step: m.steps, ProcA: int(prev), ProcB: i}
				}
				m.readLog[a] = int32(i)
			}
		}
	}
	m.writeBuf = m.writeBuf[:0]
	firstVal := make(map[int]int64)
	for i := range views {
		for _, w := range views[i].writes {
			if prev, ok := m.writeLog[w.addr]; ok && prev != int32(i) {
				switch m.model {
				case CRCWCommon:
					if firstVal[w.addr] != w.val {
						m.obsWriteConf.Inc()
						return &ConflictError{Model: m.model, Kind: "write", Addr: w.addr, Step: m.steps, ProcA: int(prev), ProcB: i}
					}
					continue // same value: drop duplicate
				case CRCWArbitrary:
					continue // lowest processor already recorded wins
				default:
					m.obsWriteConf.Inc()
					return &ConflictError{Model: m.model, Kind: "write", Addr: w.addr, Step: m.steps, ProcA: int(prev), ProcB: i}
				}
			}
			m.writeLog[w.addr] = int32(i)
			firstVal[w.addr] = w.val
			m.writeBuf = append(m.writeBuf, w)
		}
	}
	for _, w := range m.writeBuf {
		m.mem[w.addr] = w.val
	}
	m.steps++
	live := active - skippedNow
	m.work += int64(live)
	m.skipped += int64(skippedNow)
	if live > m.peakActive {
		m.peakActive = live
	}
	m.obsSteps.Inc()
	m.obsWork.Add(int64(live))
	if skippedNow > 0 {
		m.obsSkipped.Add(int64(skippedNow))
	}
	m.obsPeakActive.Max(int64(live))
	return nil
}

// Run executes body repeatedly until it returns false, propagating any
// conflict error. It is a convenience for loop-shaped kernels where the
// host-side control flow is considered free (the standard PRAM convention
// for uniform control).
func (m *Machine) Run(body func() (more bool, err error)) error {
	for {
		more, err := body()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}
