// Package pram implements a synchronous PRAM (Parallel Random Access
// Machine) execution layer used as the substrate for the cooperative
// search algorithms of Tamassia and Vitter.
//
// The package models the three classic memory-access disciplines:
//
//   - EREW: exclusive read, exclusive write
//   - CREW: concurrent read, exclusive write
//   - CRCW: concurrent read, concurrent write (Common and Arbitrary variants)
//
// A computation is a sequence of synchronous steps. In each step every
// active processor (1) reads any number of shared-memory words, (2) computes
// locally, and (3) buffers writes; all writes commit atomically at the end of
// the step. Access conflicts are detected against the declared model and
// reported as errors, which lets tests mechanically verify, for example,
// that a preprocessing phase claimed to be EREW really never issues a
// concurrent read.
//
// Cost accounting follows the standard PRAM conventions: Time is the number
// of steps executed, and Work is the sum over steps of the number of active
// processors. These are exactly the quantities bounded by the paper's
// theorems, independent of host hardware.
//
// PRAM programs are written once against the Executor interface and run on
// any of three interchangeable executors:
//
//   - Machine: the goroutine-barrier executor. Processors within a step can
//     run on real goroutines (SetConcurrent), which exercises the program
//     under the race detector.
//   - VirtualMachine: a virtual-time executor that replays processors in a
//     deterministic sequential loop per step — no goroutines, allocation-
//     light, with conflict detection and fault-hook semantics identical to
//     Machine (the differential tests in this package and internal/parallel
//     assert bit-identical steps, work, memory, verdicts, and skip counts).
//   - Uncosted: a result-only executor that skips access tracing for pure
//     computation uses where only the final memory state matters.
//
// All executors produce identical memory states because writes are buffered
// per processor and committed in processor-ID order with model-dependent
// conflict resolution.
package pram

import (
	"fmt"
	"slices"

	"fraccascade/internal/obs"
)

// Model selects the memory-access discipline enforced by an Executor.
type Model int

const (
	// EREW forbids both concurrent reads and concurrent writes to the
	// same address within one step.
	EREW Model = iota
	// CREW allows concurrent reads but forbids concurrent writes.
	CREW
	// CRCWCommon allows concurrent writes only if all writers write the
	// same value.
	CRCWCommon
	// CRCWArbitrary allows concurrent writes; the lowest-numbered
	// processor wins (a deterministic refinement of "arbitrary").
	CRCWArbitrary
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCommon:
		return "CRCW-Common"
	case CRCWArbitrary:
		return "CRCW-Arbitrary"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// AllowsConcurrentRead reports whether the model permits two processors to
// read the same address in one step.
func (m Model) AllowsConcurrentRead() bool { return m != EREW }

// AllowsConcurrentWrite reports whether the model permits two processors to
// write the same address in one step (subject to the variant's value rule).
func (m Model) AllowsConcurrentWrite() bool { return m == CRCWCommon || m == CRCWArbitrary }

// A FaultHook injects processor failures and read perturbations into an
// executor's run. Hooks are consulted inside Step: a processor for which
// ProcLive returns false skips the step entirely (its body does not run, so
// its reads and buffered writes never happen — the behaviour of a processor
// that died or stalled before the barrier), and every Read by a live
// processor passes through PerturbRead.
//
// Implementations must be safe for concurrent calls: on the goroutine-
// barrier Machine in Concurrent mode the hook is invoked from multiple
// goroutines within one step. Plans that are immutable during execution
// (such as faults.Plan) satisfy this trivially.
type FaultHook interface {
	// ProcLive reports whether processor proc participates in step.
	ProcLive(step, proc int) bool
	// PerturbRead maps the true value v read from addr by proc at step to
	// the value the processor observes.
	PerturbRead(step, proc, addr int, v int64) int64
}

// A ConflictError reports a memory-access violation of the executor's model.
type ConflictError struct {
	Model Model  // model in force
	Kind  string // "read" or "write"
	Addr  int    // conflicting address
	Step  int    // step index (0-based) at which the conflict occurred
	ProcA int    // first involved processor
	ProcB int    // second involved processor
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("pram: concurrent %s of address %d by processors %d and %d at step %d violates %s",
		e.Kind, e.Addr, e.ProcA, e.ProcB, e.Step, e.Model)
}

// Executor is the synchronous step/memory/conflict contract that PRAM
// programs are written against. All three implementations — Machine
// (goroutine barrier), VirtualMachine (deterministic sequential replay),
// and Uncosted (no access tracing) — share the same memory layout, cost
// accounting, fault-hook semantics, and host staging API, so a program is
// written once and the executor is chosen at the call site.
type Executor interface {
	// Model returns the executor's memory-access model.
	Model() Model
	// Procs returns the processor budget.
	Procs() int
	// Time returns the number of synchronous steps executed so far.
	Time() int
	// Work returns the cumulative processor-steps charged.
	Work() int64
	// Skipped returns the processor-steps lost to the fault hook.
	Skipped() int64
	// PeakActive returns the largest per-step live processor count.
	PeakActive() int
	// ResetCost zeroes the time/work counters without touching memory.
	ResetCost()
	// Alloc reserves n fresh zeroed words and returns their base address.
	Alloc(n int) int
	// Load reads a word outside of any step (host access, not charged).
	Load(addr int) int64
	// Store writes a word outside of any step (host access, not charged).
	Store(addr int, v int64)
	// LoadSlice copies n words starting at base (host access, not charged).
	LoadSlice(base, n int) []int64
	// StoreSlice stages src into memory at base (host access, not charged).
	StoreSlice(base int, src []int64)
	// MemWords returns the current shared-memory size in words.
	MemWords() int
	// SetFaultHook installs (or, with nil, removes) a fault hook.
	SetFaultHook(h FaultHook)
	// FaultHookInstalled reports whether a fault hook is active.
	FaultHookInstalled() bool
	// SetMetrics attaches (or, with nil, detaches) an obs registry.
	SetMetrics(r *obs.Registry)
	// SetProfile attaches (or, with nil, detaches) a phase-attributed
	// cost profile; see Profile.
	SetProfile(p *Profile)
	// Profile returns the attached profile (nil when none).
	Profile() *Profile
	// Phase marks the start of an algorithm phase: every subsequently
	// charged step is attributed to label in the attached profile. With no
	// profile attached Phase is a free no-op (zero allocations), so
	// programs label phases unconditionally.
	Phase(label string)
	// Step runs one synchronous step with active processors executing body.
	Step(active int, body func(p *Proc)) error
	// Run executes body repeatedly until it returns false, propagating any
	// conflict error.
	Run(body func() (more bool, err error)) error
}

type writeOp struct {
	addr int
	val  int64
	proc int32
}

// base carries the state and mechanics shared by every executor: shared
// memory, cost counters, fault hook, observability handles, and the
// conflict-detection/commit passes. Keeping detection and commit here — as
// code shared by value, not behaviour re-implemented per executor — is what
// makes the differential guarantees cheap: Machine and VirtualMachine cannot
// drift on verdicts or metrics because they run the same passes.
type base struct {
	model      Model
	procs      int
	mem        []int64
	steps      int
	work       int64
	peakActive int
	faults     FaultHook
	skipped    int64
	profile    *Profile

	// Observability handles (nil when no registry is attached; every use
	// is nil-safe, so the disabled hot path is a nil check — see
	// SetMetrics and internal/obs).
	obsSteps      *obs.Counter
	obsWork       *obs.Counter
	obsSkipped    *obs.Counter
	obsPeakActive *obs.Gauge
	obsReadConf   *obs.Counter
	obsWriteConf  *obs.Counter

	// Per-step conflict scratch, reused across steps. The logs are dense
	// arrays indexed by address; each entry packs the owning processor with
	// an epoch stamp (entry = proc<<32 | epoch) and belongs to the current
	// step iff its stamp equals epoch, so beginStep is O(1) instead of
	// clearing per-address state and the admission passes touch one cache
	// line per access instead of map buckets. The arrays lazily track the
	// memory size in beginStep.
	writeBuf []writeOp
	rlog     []uint64 // addr -> last reader this step (EREW checking)
	wlog     []uint64 // addr -> first writer this step
	firstVal []int64  // addr -> latest admitted value (CRCW-Common rule)
	epoch    uint32
}

// logEntry packs a processor id and the current epoch into one log word.
func (b *base) logEntry(proc int32) uint64 {
	return uint64(uint32(proc))<<32 | uint64(b.epoch)
}

func newBase(model Model, procs int) (base, error) {
	if procs < 1 {
		return base{}, fmt.Errorf("pram: processor count must be positive, got %d", procs)
	}
	return base{model: model, procs: procs}, nil
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook.
// Every subsequent Step consults it; see FaultHook. The executor never
// mutates the hook, so one plan can drive many executors.
func (b *base) SetFaultHook(h FaultHook) { b.faults = h }

// FaultHookInstalled reports whether a fault hook is active.
func (b *base) FaultHookInstalled() bool { return b.faults != nil }

// SetMetrics attaches (or, with nil, detaches) an observability registry.
// Subsequent Steps mirror the executor's cost accounting into it:
//
//	pram.steps                      synchronous steps executed
//	pram.work                       processor-steps charged
//	pram.fault.skipped              processor-steps lost to the fault hook
//	pram.peak_active                largest per-step live processor count
//	pram.conflicts.<model>.read     detected read conflicts, per model
//	pram.conflicts.<model>.write    detected write conflicts, per model
//
// Names are registry-global and identical across executors, so machines
// sharing a registry aggregate — the view a metrics snapshot wants — while
// the executor's own Time/Work/Skipped accessors remain the per-machine
// ground truth. With no registry attached every mirror write is a
// nil-handle no-op: the hot path stays allocation-free and the simulated
// step counts are bit-identical (verified by obs_test.go and the engine's
// invariance test).
func (b *base) SetMetrics(r *obs.Registry) {
	if r == nil {
		b.obsSteps, b.obsWork, b.obsSkipped = nil, nil, nil
		b.obsPeakActive, b.obsReadConf, b.obsWriteConf = nil, nil, nil
		return
	}
	b.obsSteps = r.Counter("pram.steps")
	b.obsWork = r.Counter("pram.work")
	b.obsSkipped = r.Counter("pram.fault.skipped")
	b.obsPeakActive = r.Gauge("pram.peak_active")
	b.obsReadConf = r.Counter("pram.conflicts." + b.model.String() + ".read")
	b.obsWriteConf = r.Counter("pram.conflicts." + b.model.String() + ".write")
}

// SetProfile attaches (or, with nil, detaches) a phase-attributed cost
// profile. Attribution happens in the shared charge/conflict passes, so
// the resulting profile is executor-independent; the whole-machine
// accessors (Time, Work, ...) are unaffected. ResetCost does not touch
// the profile — detach or Reset it explicitly.
func (b *base) SetProfile(p *Profile) { b.profile = p }

// Profile returns the attached profile (nil when none).
func (b *base) Profile() *Profile { return b.profile }

// Phase marks the start of an algorithm phase; see Executor.Phase.
func (b *base) Phase(label string) {
	if b.profile != nil {
		b.profile.enter(label)
	}
}

// Skipped returns the cumulative number of processor-steps lost to the
// fault hook (processors scheduled in a step but reported dead or stalled).
func (b *base) Skipped() int64 { return b.skipped }

// Model returns the executor's memory-access model.
func (b *base) Model() Model { return b.model }

// Procs returns the executor's processor budget.
func (b *base) Procs() int { return b.procs }

// Time returns the number of synchronous steps executed so far.
func (b *base) Time() int { return b.steps }

// Work returns the cumulative processor-steps (sum of active processors
// over all steps).
func (b *base) Work() int64 { return b.work }

// PeakActive returns the largest number of processors active in any step.
func (b *base) PeakActive() int { return b.peakActive }

// ResetCost zeroes the time/work counters without touching memory.
func (b *base) ResetCost() {
	b.steps = 0
	b.work = 0
	b.peakActive = 0
}

// Alloc reserves n fresh words of shared memory, zero-initialised, and
// returns the base address of the block.
func (b *base) Alloc(n int) int {
	base := len(b.mem)
	b.mem = append(b.mem, make([]int64, n)...)
	return base
}

// Load reads a word outside of any step (host access, not charged).
func (b *base) Load(addr int) int64 { return b.mem[addr] }

// Store writes a word outside of any step (host access, not charged).
// It is intended for input staging before a computation begins.
func (b *base) Store(addr int, v int64) { b.mem[addr] = v }

// LoadSlice copies n words starting at base into a fresh slice
// (host access, not charged).
func (b *base) LoadSlice(base, n int) []int64 {
	out := make([]int64, n)
	copy(out, b.mem[base:base+n])
	return out
}

// StoreSlice stages the words of src into memory starting at base
// (host access, not charged).
func (b *base) StoreSlice(base int, src []int64) {
	copy(b.mem[base:base+len(src)], src)
}

// MemWords returns the current shared-memory size in words.
func (b *base) MemWords() int { return len(b.mem) }

// Run executes body repeatedly until it returns false, propagating any
// conflict error. It is a convenience for loop-shaped kernels where the
// host-side control flow is considered free (the standard PRAM convention
// for uniform control).
func (b *base) Run(body func() (more bool, err error)) error {
	for {
		more, err := body()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// beginStep advances the scratch epoch (invalidating all prior log entries
// in O(1)) and sizes the logs to the current memory.
func (b *base) beginStep() {
	if n := len(b.mem); len(b.wlog) < n {
		grow := n - len(b.wlog)
		b.wlog = append(b.wlog, make([]uint64, grow)...)
		b.firstVal = append(b.firstVal, make([]int64, grow)...)
		if !b.model.AllowsConcurrentRead() {
			b.rlog = append(b.rlog, make([]uint64, grow)...)
		}
	}
	b.epoch++
	if b.epoch == 0 {
		// Stamp wrap (once per 2^32 steps): flush stale stamps for real.
		clear(b.rlog)
		clear(b.wlog)
		b.epoch = 1
	}
	b.writeBuf = b.writeBuf[:0]
}

// checkReads validates one processor's traced reads against the EREW rule.
// Callers invoke it in ascending processor order, which — together with the
// issue order preserved inside each trace — makes the reported conflict the
// same pair regardless of executor.
func (b *base) checkReads(proc int, reads []int) error {
	for _, a := range reads {
		if e := b.rlog[a]; uint32(e) == b.epoch && int32(e>>32) != int32(proc) {
			b.obsReadConf.Inc()
			if p := b.profile; p != nil {
				p.current().ReadConflicts++
			}
			return &ConflictError{Model: b.model, Kind: "read", Addr: a, Step: b.steps, ProcA: int(int32(e >> 32)), ProcB: proc}
		}
		b.rlog[a] = b.logEntry(int32(proc))
	}
	return nil
}

// admitOne applies the model's write rule to one buffered write, reporting
// whether it wins. Duplicate writes by the same processor are allowed under
// every model and the last one wins; concurrent writes by distinct
// processors resolve per model: CRCW-Common keeps the first value and
// requires all later ones to match, CRCW-Arbitrary keeps the lowest
// processor's value, and the exclusive-write models report a conflict.
// Callers feed writes in ascending processor order (issue order within a
// processor), which makes the verdict executor-independent.
func (b *base) admitOne(w writeOp) (bool, error) {
	if e := b.wlog[w.addr]; uint32(e) == b.epoch && int32(e>>32) != w.proc {
		switch b.model {
		case CRCWCommon:
			if b.firstVal[w.addr] != w.val {
				b.obsWriteConf.Inc()
				if p := b.profile; p != nil {
					p.current().WriteConflicts++
				}
				return false, &ConflictError{Model: b.model, Kind: "write", Addr: w.addr, Step: b.steps, ProcA: int(int32(e >> 32)), ProcB: int(w.proc)}
			}
			return false, nil // same value: drop duplicate
		case CRCWArbitrary:
			return false, nil // lowest processor already recorded wins
		default:
			b.obsWriteConf.Inc()
			if p := b.profile; p != nil {
				p.current().WriteConflicts++
			}
			return false, &ConflictError{Model: b.model, Kind: "write", Addr: w.addr, Step: b.steps, ProcA: int(int32(e >> 32)), ProcB: int(w.proc)}
		}
	}
	b.wlog[w.addr] = b.logEntry(w.proc)
	b.firstVal[w.addr] = w.val
	return true, nil
}

// admitWrites admits a run of buffered writes, appending the winners to
// writeBuf (used by Machine, which admits one processor's buffer at a
// time into the step-wide winner list).
func (b *base) admitWrites(writes []writeOp) error {
	// Reserve up front: admission appends at most len(writes) winners, and a
	// single exact grow avoids the copy-doubling that otherwise dominates
	// large steps.
	b.writeBuf = slices.Grow(b.writeBuf, len(writes))
	for _, w := range writes {
		keep, err := b.admitOne(w)
		if err != nil {
			return err
		}
		if keep {
			b.writeBuf = append(b.writeBuf, w)
		}
	}
	return nil
}

// admitWritesInPlace admits a whole step's writes at once, compacting the
// winners into the input slice (used by the sequential executors, whose
// single step-wide buffer makes the extra winner list unnecessary).
// Memory is untouched either way.
func (b *base) admitWritesInPlace(writes []writeOp) ([]writeOp, error) {
	kept := writes[:0]
	for _, w := range writes {
		keep, err := b.admitOne(w)
		if err != nil {
			return nil, err
		}
		if keep {
			kept = append(kept, w)
		}
	}
	return kept, nil
}

// commitWrites applies admitted writes to shared memory.
func (b *base) commitWrites(writes []writeOp) {
	for _, w := range writes {
		b.mem[w.addr] = w.val
	}
}

// chargeStep updates the cost counters and their obs mirrors for a
// completed step with the given scheduled and skipped processor counts.
func (b *base) chargeStep(active, skippedNow int) {
	b.steps++
	live := active - skippedNow
	b.work += int64(live)
	b.skipped += int64(skippedNow)
	if live > b.peakActive {
		b.peakActive = live
	}
	b.obsSteps.Inc()
	b.obsWork.Add(int64(live))
	if skippedNow > 0 {
		b.obsSkipped.Add(int64(skippedNow))
	}
	b.obsPeakActive.Max(int64(live))
	if p := b.profile; p != nil {
		p.current().add(live, skippedNow)
	}
}

// checkActive validates a Step's processor request against the budget.
// The negative-active panic is an internal invariant check, not input
// validation: active counts are computed by this module's callers from
// validated structures, so a negative value means a bug in the calling
// algorithm. Invalid *caller input* (a request exceeding the processor
// budget) is an error, per the package-wide convention.
func (b *base) checkActive(active int) error {
	if active < 0 {
		panic("pram: negative active processor count")
	}
	if active > b.procs {
		return fmt.Errorf("pram: step requests %d processors but machine has %d", active, b.procs)
	}
	return nil
}

// Proc is the view a single processor has of the executor during one step.
// Reads observe the memory state at the beginning of the step; writes are
// buffered and commit when the step ends. The same Proc type serves every
// executor, which is what lets a PRAM program be written once as a
// func(*Proc) body and run anywhere.
type Proc struct {
	// ID is the processor index in [0, active).
	ID int

	b          *base
	traceReads bool
	reads      []int
	writes     []writeOp
	halted     bool
}

// Read returns the word at addr as of the start of the current step. With
// a fault hook installed, the observed value may be a transient corruption
// of the stored one; the memory cell itself is never altered.
func (p *Proc) Read(addr int) int64 {
	if p.traceReads {
		p.reads = append(p.reads, addr)
	}
	v := p.b.mem[addr]
	if h := p.b.faults; h != nil {
		v = h.PerturbRead(p.b.steps, p.ID, addr, v)
	}
	return v
}

// Write buffers a write of v to addr; it becomes visible after the step.
func (p *Proc) Write(addr int, v int64) {
	p.writes = append(p.writes, writeOp{addr: addr, val: v, proc: int32(p.ID)})
}

// ExecutorKind names a concrete Executor implementation for construction
// from a command-line flag or config string.
type ExecutorKind int

const (
	// KindBarrier is the goroutine-barrier Machine with concurrent
	// processor execution enabled.
	KindBarrier ExecutorKind = iota
	// KindVirtual is the sequential virtual-time VirtualMachine.
	KindVirtual
	// KindUncosted is the tracing-free Uncosted executor.
	KindUncosted
	// KindWall is the native wall-clock executor over the flat layout
	// (internal/flat.Wall): real goroutines, host nanoseconds instead of
	// simulated steps. It parses like the simulated kinds so front ends
	// (coopbench -executor wall) can select it, but it is not a simulated
	// PRAM — NewExecutor rejects it; callers construct flat.NewWall
	// directly.
	KindWall
)

// String returns the flag spelling of the kind.
func (k ExecutorKind) String() string {
	switch k {
	case KindBarrier:
		return "barrier"
	case KindVirtual:
		return "virtual"
	case KindUncosted:
		return "uncosted"
	case KindWall:
		return "wall"
	default:
		return fmt.Sprintf("ExecutorKind(%d)", int(k))
	}
}

// ParseExecutorKind maps a flag value ("barrier", "virtual", "uncosted",
// "wall") to its ExecutorKind.
func ParseExecutorKind(s string) (ExecutorKind, error) {
	switch s {
	case "barrier":
		return KindBarrier, nil
	case "virtual":
		return KindVirtual, nil
	case "uncosted":
		return KindUncosted, nil
	case "wall":
		return KindWall, nil
	default:
		return 0, fmt.Errorf("pram: unknown executor %q (want barrier, virtual, uncosted, or wall)", s)
	}
}

// NewExecutor constructs an executor of the given kind. KindBarrier
// returns a Machine with goroutine execution enabled (the configuration
// the -executor=barrier flags select); use New directly for a sequential
// in-order Machine.
func NewExecutor(kind ExecutorKind, model Model, procs int) (Executor, error) {
	switch kind {
	case KindBarrier:
		m, err := New(model, procs)
		if err != nil {
			return nil, err
		}
		m.SetConcurrent(true)
		return m, nil
	case KindVirtual:
		return NewVirtual(model, procs)
	case KindUncosted:
		return NewUncosted(model, procs)
	case KindWall:
		return nil, fmt.Errorf("pram: the wall executor is native, not a simulated PRAM; construct flat.NewWall directly")
	default:
		return nil, fmt.Errorf("pram: unknown executor kind %d", int(kind))
	}
}

// MustNewExecutor is NewExecutor that panics on error.
func MustNewExecutor(kind ExecutorKind, model Model, procs int) Executor {
	e, err := NewExecutor(kind, model, procs)
	if err != nil {
		panic(err)
	}
	return e
}
