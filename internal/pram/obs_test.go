package pram

import (
	"errors"
	"testing"

	"fraccascade/internal/obs"
)

// stallHook skips one processor at every step (a permanently stalled
// processor) — minimal FaultHook for metric tests.
type stallHook struct{ dead int }

func (h stallHook) ProcLive(step, proc int) bool                    { return proc != h.dead }
func (h stallHook) PerturbRead(step, proc, addr int, v int64) int64 { return v }

// TestMetricsMatchMachineGroundTruth pins the acceptance criterion that
// obs counters agree with the Machine's own cost accounting: after any run
// the registry's pram.steps/work/fault.skipped equal Time/Work/Skipped.
func TestMetricsMatchMachineGroundTruth(t *testing.T) {
	r := obs.NewRegistry()
	m := MustNew(CREW, 8)
	m.SetMetrics(r)
	m.SetFaultHook(stallHook{dead: 3})
	base := m.Alloc(16)
	for s := 0; s < 10; s++ {
		active := 2 + s%7
		err := m.Step(active, func(p *Proc) {
			v := p.Read(base)
			p.Write(base+1+p.ID, v+int64(p.ID))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if got, want := snap.Counters["pram.steps"], int64(m.Time()); got != want {
		t.Fatalf("pram.steps = %d, machine Time = %d", got, want)
	}
	if got, want := snap.Counters["pram.work"], m.Work(); got != want {
		t.Fatalf("pram.work = %d, machine Work = %d", got, want)
	}
	if got, want := snap.Counters["pram.fault.skipped"], m.Skipped(); got != want {
		t.Fatalf("pram.fault.skipped = %d, machine Skipped = %d", got, want)
	}
	if m.Skipped() == 0 {
		t.Fatal("fault hook never fired; test is vacuous")
	}
	if got, want := snap.Gauges["pram.peak_active"], int64(m.PeakActive()); got != want {
		t.Fatalf("pram.peak_active = %d, machine PeakActive = %d", got, want)
	}
}

// TestMetricsAggregateAcrossMachines: two machines sharing one registry
// sum into the same counters (the fleet view), while per-machine accessors
// stay exact.
func TestMetricsAggregateAcrossMachines(t *testing.T) {
	r := obs.NewRegistry()
	m1, m2 := MustNew(CREW, 4), MustNew(CREW, 4)
	m1.SetMetrics(r)
	m2.SetMetrics(r)
	b1, b2 := m1.Alloc(4), m2.Alloc(4)
	for s := 0; s < 3; s++ {
		if err := m1.Step(4, func(p *Proc) { p.Write(b1+p.ID, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 5; s++ {
		if err := m2.Step(2, func(p *Proc) { p.Write(b2+p.ID, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if got, want := snap.Counters["pram.steps"], int64(m1.Time()+m2.Time()); got != want {
		t.Fatalf("aggregated pram.steps = %d, want %d", got, want)
	}
	if got, want := snap.Counters["pram.work"], m1.Work()+m2.Work(); got != want {
		t.Fatalf("aggregated pram.work = %d, want %d", got, want)
	}
}

// TestConflictCountersPerModel: detected conflicts land in the per-model
// counters, split by read/write.
func TestConflictCountersPerModel(t *testing.T) {
	r := obs.NewRegistry()

	erew := MustNew(EREW, 2)
	erew.SetMetrics(r)
	addr := erew.Alloc(1)
	var cerr *ConflictError
	err := erew.Step(2, func(p *Proc) { p.Read(addr) })
	if !errors.As(err, &cerr) || cerr.Kind != "read" {
		t.Fatalf("expected EREW read conflict, got %v", err)
	}

	crew := MustNew(CREW, 2)
	crew.SetMetrics(r)
	waddr := crew.Alloc(1)
	err = crew.Step(2, func(p *Proc) { p.Write(waddr, int64(p.ID)) })
	if !errors.As(err, &cerr) || cerr.Kind != "write" {
		t.Fatalf("expected CREW write conflict, got %v", err)
	}

	snap := r.Snapshot()
	if snap.Counters["pram.conflicts.EREW.read"] != 1 {
		t.Fatalf("EREW read conflicts = %d, want 1", snap.Counters["pram.conflicts.EREW.read"])
	}
	if snap.Counters["pram.conflicts.CREW.write"] != 1 {
		t.Fatalf("CREW write conflicts = %d, want 1", snap.Counters["pram.conflicts.CREW.write"])
	}
	// The failed steps must not have been charged.
	if snap.Counters["pram.steps"] != 0 {
		t.Fatalf("conflicted steps were charged: pram.steps = %d", snap.Counters["pram.steps"])
	}
}

// TestMetricsDetachAndDeterminism: detaching restores the uninstrumented
// machine, and instrumentation never changes simulated results — two
// machines running the same program, one observed and one not, produce
// identical Time/Work/memory.
func TestMetricsDetachAndDeterminism(t *testing.T) {
	run := func(m *Machine) {
		base := m.Alloc(8)
		for s := 0; s < 6; s++ {
			if err := m.Step(4, func(p *Proc) {
				v := p.Read(base + p.ID)
				p.Write(base+4+p.ID%4, v+1)
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	plain := MustNew(CREW, 4)
	run(plain)

	observed := MustNew(CREW, 4)
	observed.SetMetrics(obs.NewRegistry())
	run(observed)

	if plain.Time() != observed.Time() || plain.Work() != observed.Work() {
		t.Fatalf("instrumentation changed cost: %d/%d vs %d/%d",
			plain.Time(), plain.Work(), observed.Time(), observed.Work())
	}
	for a := 0; a < plain.MemWords(); a++ {
		if plain.Load(a) != observed.Load(a) {
			t.Fatalf("instrumentation changed memory at %d", a)
		}
	}

	observed.SetMetrics(nil)
	if observed.obsSteps != nil || observed.obsWriteConf != nil {
		t.Fatal("SetMetrics(nil) must clear every handle")
	}
}
