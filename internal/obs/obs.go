// Package obs is the repository's observability layer: a low-overhead
// metrics registry (atomic counters, gauges, log₂-bucketed histograms,
// pull-style func gauges) and a pluggable per-search tracer, threaded
// through the PRAM simulator (internal/pram), the batched query engine
// (internal/engine), and the dynamic structure (internal/dynamic).
//
// The paper's claims are all *measured* quantities — synchronous step
// counts, processor usage, conflict legality — so the instrumented values
// must never perturb what they measure. The design rule is therefore:
//
//   - Disabled is free. Every handle type (Counter, Gauge, Histogram) and
//     the Registry itself are nil-safe: a nil receiver makes every method a
//     no-op, so instrumented code holds possibly-nil handles and calls them
//     unconditionally. The disabled path is a nil check — zero allocations,
//     verified by TestDisabledPathAllocs and BenchmarkDisabled*.
//   - Enabled is cheap. All mutation is a single atomic op (histograms: a
//     handful); no locks and no allocations on the hot path. Registration
//     (name → handle) takes a mutex, but callers register once and cache
//     the handle.
//   - Values are pulled, not pushed. Snapshot() assembles a point-in-time
//     view (expvar-style: a flat name → value map, exportable as text or
//     JSON), including func gauges that read live state (pool counters,
//     cache sizes, flush generations) only when asked.
//
// Metric names are dot-separated lowercase paths, e.g. "engine.batch.steps"
// or "pram.conflicts.CREW.write". Handles with the same name share state:
// two machines registering "pram.steps" aggregate into one counter.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid disabled counter: all methods are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value gauge. A nil *Gauge is a valid disabled
// gauge: all methods are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger (no-op on nil).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the canonical *disabled*
// registry: every lookup returns a nil handle, whose methods are no-ops —
// components accept a possibly-nil registry and instrument unconditionally.
//
// Lookups are get-or-create: the first request for a name allocates the
// metric, later requests (from any goroutine, any component) return the
// same handle, so identically named metrics aggregate. A name must keep a
// single type; requesting an existing name as a different metric type
// panics, as that is a programming error akin to a duplicate expvar.
type Registry struct {
	mu    sync.Mutex
	types map[string]byte // 'c', 'g', 'h', 'f'

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		types:    make(map[string]byte),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

func (r *Registry) claim(name string, kind byte) {
	if t, ok := r.types[name]; ok && t != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	r.types[name] = kind
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, 'c')
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil (a disabled gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, 'g')
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use. Returns nil (a disabled histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, 'h')
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs a pull-style gauge: f is invoked at snapshot time
// and its result exported under name. Use it for values that already live
// elsewhere (pool atomics, cache sizes, flush generations) so the hot path
// needs no mirroring writes. Re-registering a name replaces the function.
// No-op on a nil registry. f must be safe to call from any goroutine.
func (r *Registry) RegisterFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, 'f')
	r.funcs[name] = f
}
