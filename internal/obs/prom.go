package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a point-in-time snapshot of the registry in the
// Prometheus text exposition format (version 0.0.4) — the surface behind
// coopserve's GET /metrics:
//
//   - counters export as "<name>_total" with "# TYPE ... counter";
//   - gauges and func gauges export as gauges;
//   - log₂ histograms export as native Prometheus histograms with
//     cumulative "_bucket{le=...}" series (bucket upper bounds from the
//     log₂ boundaries), "_sum", and "_count".
//
// Metric names are sanitised to the Prometheus charset (dots and any other
// illegal runes become underscores) and families are emitted in sorted
// order, so the output is deterministic for a fixed snapshot.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	type family struct {
		kind  string // "counter", "gauge", "histogram"
		value int64
		hist  HistogramSnapshot
	}
	fams := map[string]family{}
	for n, v := range s.Counters {
		fams[promName(n)+"_total"] = family{kind: "counter", value: v}
	}
	for n, v := range s.Gauges {
		fams[promName(n)] = family{kind: "gauge", value: v}
	}
	for n, v := range s.Funcs {
		fams[promName(n)] = family{kind: "gauge", value: v}
	}
	for n, h := range s.Histograms {
		fams[promName(n)] = family{kind: "histogram", hist: h}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind); err != nil {
			return err
		}
		switch f.kind {
		case "histogram":
			if err := writePromHistogram(w, n, f.hist); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", n, f.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits the cumulative bucket series for one histogram.
// Only buckets up to the highest non-empty one are listed (plus +Inf),
// keeping the exposition compact while staying cumulative-correct.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	highest := -1
	for i, c := range h.Buckets {
		if c > 0 {
			highest = i
		}
	}
	var cum int64
	for i := 0; i <= highest; i++ {
		cum += h.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// LintProm validates text against the Prometheus text exposition grammar
// this package emits, returning one message per violation (empty when
// clean). It checks that every line is a well-formed comment or sample,
// that sample names are legal and preceded by a TYPE declaration, that no
// family declares TYPE twice, and that histogram families carry the
// mandatory +Inf bucket, _sum, and _count series. Tests use it to lint
// /metrics responses without a prometheus dependency.
func LintProm(text string) []string {
	var errs []string
	types := map[string]string{}
	seen := map[string]bool{}
	histSeries := map[string]map[string]bool{} // family -> {"inf","sum","count"}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						errs = append(errs, fmt.Sprintf("line %d: malformed TYPE comment %q", lineNo, line))
						continue
					}
					name, kind := fields[2], fields[3]
					switch kind {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						errs = append(errs, fmt.Sprintf("line %d: unknown metric type %q", lineNo, kind))
					}
					if _, dup := types[name]; dup {
						errs = append(errs, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
					}
					if seen[name] {
						errs = append(errs, fmt.Sprintf("line %d: TYPE for %s after its samples", lineNo, name))
					}
					types[name] = kind
					if kind == "counter" && !strings.HasSuffix(name, "_total") {
						errs = append(errs, fmt.Sprintf("line %d: counter %s should end in _total", lineNo, name))
					}
				}
				continue
			}
			continue // free-form comment
		}
		// Sample line: name[{labels}] value.
		rest := line
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				errs = append(errs, fmt.Sprintf("line %d: unbalanced braces in %q", lineNo, line))
				continue
			}
			labels = rest[i+1 : j]
			rest = rest[:i] + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 || len(fields) > 3 {
			errs = append(errs, fmt.Sprintf("line %d: malformed sample %q", lineNo, line))
			continue
		}
		name := fields[0]
		if promName(name) != name {
			errs = append(errs, fmt.Sprintf("line %d: illegal metric name %q", lineNo, name))
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && types[trimmed] == "histogram" {
				family = trimmed
				if histSeries[family] == nil {
					histSeries[family] = map[string]bool{}
				}
				switch suffix {
				case "_sum":
					histSeries[family]["sum"] = true
				case "_count":
					histSeries[family]["count"] = true
				case "_bucket":
					if strings.Contains(labels, `le="+Inf"`) {
						histSeries[family]["inf"] = true
					}
				}
				break
			}
		}
		seen[family] = true
		if _, ok := types[family]; !ok {
			errs = append(errs, fmt.Sprintf("line %d: sample %s without TYPE declaration", lineNo, family))
		}
	}
	for fam, kind := range types {
		if !seen[fam] {
			errs = append(errs, fmt.Sprintf("TYPE %s declared but no samples emitted", fam))
		}
		if kind == "histogram" {
			for _, part := range []string{"inf", "sum", "count"} {
				if !histSeries[fam][part] {
					errs = append(errs, fmt.Sprintf("histogram %s missing %s series", fam, part))
				}
			}
		}
	}
	return errs
}

// promName maps a dot-separated metric name onto the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
