package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket 0 holds values ≤ 0, bucket
// i ≥ 1 holds values v with 2^(i-1) ≤ v < 2^i, and the last bucket absorbs
// everything beyond. 63 value buckets cover the whole non-negative int64
// range, so no observation is ever dropped.
const histBuckets = 64

// Histogram is a lock-free log₂-bucketed histogram of int64 observations
// (step counts, latencies in nanoseconds, batch sizes). A nil *Histogram
// is a valid disabled histogram: all methods are no-ops.
//
// Observe is a handful of atomic adds and a CAS loop for the max — no
// locks, no allocations — so it is safe on the engine's batch path and
// under concurrent batches. Quantiles are approximate (bucket upper
// bounds), which is the right fidelity for power-of-two shaped quantities
// like PRAM step counts.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 2^(b-1) ≤ v < 2^b
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// NoData is the sentinel quantile value of a histogram with zero
// observations. Returning a real number (0, or a bucket midpoint) for an
// empty histogram reads as "the service is instantly fast" on a dashboard;
// -1 is unambiguous because every observable quantity here (steps,
// nanoseconds, batch sizes) is non-negative.
const NoData int64 = -1

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations; Max is the largest.
	Count, Sum, Max int64
	// P50, P90, P95, and P99 are approximate quantiles: the upper bound of
	// the log₂ bucket containing the quantile rank (capped at Max). With a
	// single observation every quantile is exactly that value; with zero
	// observations every quantile is NoData.
	P50, P90, P95, P99 int64
	// Buckets holds the per-bucket counts (index per bucketOf).
	Buckets [histBuckets]int64
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketUpper returns the inclusive upper value bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<i - 1
}

// quantile returns the approximate q-quantile (0 < q ≤ 1) of the bucket
// distribution: the upper bound of the first bucket whose cumulative count
// reaches rank ⌈q·Count⌉, or NoData with zero observations.
func (s HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return NoData
	}
	// Proper ceiling, not truncation: p99 of two samples must be the 2nd
	// (rank ⌈1.98⌉ = 2), not silently the median.
	f := q * float64(s.Count)
	rank := int64(f)
	if float64(rank) < f {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if upper := bucketUpper(i); upper < s.Max {
				return upper
			}
			return s.Max
		}
	}
	return s.Max
}

// Snapshot returns the current summary (an empty snapshot on nil, with
// NoData quantiles like any other empty histogram). The snapshot is not
// atomic across fields under concurrent Observe calls, but each field is
// individually consistent — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h != nil {
		s.Count = h.count.Load()
		s.Sum = h.sum.Load()
		s.Max = h.max.Load()
		for i := range h.buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
	}
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}
