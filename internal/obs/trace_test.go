package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Emit(Span{ID: i})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	got := r.Spans()
	if len(got) != 3 || got[0].ID != 3 || got[1].ID != 4 || got[2].ID != 5 {
		t.Fatalf("retained spans = %+v, want IDs 3,4,5 oldest-first", got)
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(Span{ID: uint64(w*1000 + i)})
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*500)
	}
	if len(r.Spans()) != 64 {
		t.Fatalf("retained = %d, want capacity 64", len(r.Spans()))
	}
}

func TestJSONLEmitsParseableLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Span{ID: 1, Kind: "catalog", Shard: 2, P: 64, Rounds: 3, Steps: 9, StepLo: 10, StepHi: 19, CacheHit: true})
	j.Emit(Span{ID: 2, Kind: "point", Steps: 4, Err: "boom"})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if s.ID != 1 || s.Kind != "catalog" || !s.CacheHit || s.StepHi-s.StepLo != uint64(s.Steps) {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil || s.Err != "boom" {
		t.Fatalf("line 2 bad: %v %+v", err, s)
	}
}

func TestFanout(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	tr := Fanout(nil, a, nil, b)
	tr.Emit(Span{ID: 7})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fanout missed a sink: %d %d", a.Total(), b.Total())
	}
	if Fanout(nil, nil) != nil {
		t.Fatal("Fanout of nils must be nil")
	}
	if Fanout(a) != Tracer(a) {
		t.Fatal("Fanout of one tracer must return it unchanged")
	}
}
