package obs

import (
	"sync/atomic"
	"time"
)

// Rolling-window telemetry: the cumulative Histogram answers "since boot",
// which is useless for paging — a latency spike an hour ago pins p99
// forever. WindowedHistogram keeps a ring of sub-windows (e.g. 12×10s)
// with the same log₂ buckets, so a snapshot aggregates only the last
// ~2 minutes and quantiles track *current* tail latency. SLO layers exact
// good/total counters per sub-window on the same ring and turns them into
// multi-window burn rates.
//
// Both are lock-free: Observe is a few atomic adds, rotation is a CAS on
// the slot's epoch. The CAS winner zeroes the slot, so observations racing
// the reset at a sub-window boundary can be lost — a handful per rotation
// at worst, which is fine for monitoring and keeps the hot path free of
// locks and allocations. A nil receiver is a valid disabled instance.

// windowSlot is one sub-window of a WindowedHistogram. epoch holds the
// absolute sub-window index stamped into the slot (-1 = never used) so a
// reader can tell live slots from stale ones left by an idle period.
type windowSlot struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// reset zeroes the slot's data fields (the epoch is published by the
// caller's CAS before the reset; see Observe for the race contract).
func (w *windowSlot) reset() {
	w.count.Store(0)
	w.sum.Store(0)
	w.max.Store(0)
	for i := range w.buckets {
		w.buckets[i].Store(0)
	}
}

// WindowedHistogram is a rolling window of log₂-bucketed sub-histograms.
// A nil *WindowedHistogram is a valid disabled instance: Observe is a
// no-op and Snapshot returns an empty snapshot with NoData quantiles.
type WindowedHistogram struct {
	subNS int64
	slots []windowSlot
	now   func() int64
}

// NewWindowedHistogram returns a histogram covering the last n sub-windows
// of duration sub each (so the visible window is n·sub, and the oldest
// data is at most n·sub old). n < 2 is raised to 2, sub < 1ms to 1ms.
func NewWindowedHistogram(sub time.Duration, n int) *WindowedHistogram {
	if n < 2 {
		n = 2
	}
	if sub < time.Millisecond {
		sub = time.Millisecond
	}
	w := &WindowedHistogram{
		subNS: int64(sub),
		slots: make([]windowSlot, n),
		now:   func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
	}
	return w
}

// slot returns the live slot for the current sub-window, rotating (and
// zeroing) it if it still holds an older epoch.
func (w *WindowedHistogram) slot(nowNS int64) *windowSlot {
	idx := nowNS / w.subNS
	s := &w.slots[int(idx%int64(len(w.slots)))]
	for {
		e := s.epoch.Load()
		if e == idx {
			return s
		}
		if e > idx {
			// A racing writer on a newer clock already rotated past us;
			// dump into its window rather than resurrecting a stale one.
			return s
		}
		if s.epoch.CompareAndSwap(e, idx) {
			s.reset()
			return s
		}
	}
}

// Observe records one value into the current sub-window (no-op on nil).
// Zero allocations; never blocks.
func (w *WindowedHistogram) Observe(v int64) {
	if w == nil {
		return
	}
	s := w.slot(w.now())
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bucketOf(v)].Add(1)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot aggregates the live sub-windows (epochs within the visible
// window ending now) into one HistogramSnapshot. Empty window → zero
// counts and NoData quantiles.
func (w *WindowedHistogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if w != nil {
		nowIdx := w.now() / w.subNS
		minIdx := nowIdx - int64(len(w.slots)) + 1
		for i := range w.slots {
			ws := &w.slots[i]
			e := ws.epoch.Load()
			if e < minIdx || e > nowIdx {
				continue // never used, or stale from before an idle gap
			}
			s.Count += ws.count.Load()
			s.Sum += ws.sum.Load()
			if m := ws.max.Load(); m > s.Max {
				s.Max = m
			}
			for b := range ws.buckets {
				s.Buckets[b] += ws.buckets[b].Load()
			}
		}
	}
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// Window returns the total visible duration (0 on nil).
func (w *WindowedHistogram) Window() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.subNS * int64(len(w.slots)))
}

// SLO tracks a latency objective — "fraction of queries under threshold ≥
// objective" — over the same sub-window ring as WindowedHistogram, but
// with exact per-window good/total counters (the threshold is compared per
// observation, not reconstructed from log₂ buckets, so a 250ms threshold
// is not rounded to a power of two). A nil *SLO is a valid disabled
// instance.
type SLO struct {
	thresholdNS int64
	objective   float64
	subNS       int64
	slots       []sloSlot
	now         func() int64
}

type sloSlot struct {
	epoch atomic.Int64
	good  atomic.Int64
	total atomic.Int64
}

// NewSLO returns a tracker for "latency ≤ threshold for at least
// objective (e.g. 0.99) of queries" over n sub-windows of duration sub.
// The objective is clamped to (0, 1).
func NewSLO(threshold time.Duration, objective float64, sub time.Duration, n int) *SLO {
	if n < 2 {
		n = 2
	}
	if sub < time.Millisecond {
		sub = time.Millisecond
	}
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	s := &SLO{
		thresholdNS: int64(threshold),
		objective:   objective,
		subNS:       int64(sub),
		slots:       make([]sloSlot, n),
		now:         func() int64 { return time.Now().UnixNano() },
	}
	for i := range s.slots {
		s.slots[i].epoch.Store(-1)
	}
	return s
}

// Observe records one query latency (no-op on nil). Zero allocations.
func (s *SLO) Observe(latencyNS int64) {
	if s == nil {
		return
	}
	idx := s.now() / s.subNS
	sl := &s.slots[int(idx%int64(len(s.slots)))]
	for {
		e := sl.epoch.Load()
		if e >= idx {
			break
		}
		if sl.epoch.CompareAndSwap(e, idx) {
			sl.good.Store(0)
			sl.total.Store(0)
			break
		}
	}
	sl.total.Add(1)
	if latencyNS <= s.thresholdNS {
		sl.good.Add(1)
	}
}

// GoodTotal sums the good and total counters over the last k live
// sub-windows (k ≤ ring size; k ≤ 0 means the whole ring).
func (s *SLO) GoodTotal(k int) (good, total int64) {
	if s == nil {
		return 0, 0
	}
	if k <= 0 || k > len(s.slots) {
		k = len(s.slots)
	}
	nowIdx := s.now() / s.subNS
	minIdx := nowIdx - int64(k) + 1
	for i := range s.slots {
		sl := &s.slots[i]
		e := sl.epoch.Load()
		if e < minIdx || e > nowIdx {
			continue
		}
		good += sl.good.Load()
		total += sl.total.Load()
	}
	return good, total
}

// BurnRate returns the error-budget burn rate over the last k sub-windows:
// (bad fraction)/(1 − objective). 1.0 means the budget burns exactly at
// the sustainable rate; 10 means ten times too fast (page); 0 means no
// budget burning. No traffic in the window returns 0 — an idle service is
// not violating its SLO.
func (s *SLO) BurnRate(k int) float64 {
	good, total := s.GoodTotal(k)
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - s.objective)
}

// Threshold returns the latency threshold (0 on nil).
func (s *SLO) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.thresholdNS)
}

// Objective returns the target good fraction (0 on nil).
func (s *SLO) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}
