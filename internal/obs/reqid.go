package obs

import "context"

// reqIDKey is the private context key carrying a request id. Defined here
// (not in the serving layer) so the engine can read the id without
// importing coopserve and so every sink — spans, flight records, answers —
// agrees on one key.
type reqIDKey struct{}

// WithRequestID returns a context carrying id. An empty id returns ctx
// unchanged so callers can pass through unconditionally.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request id carried by ctx, or "" when absent
// (including a nil ctx, which the engine's uncontexted entry points pass).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
