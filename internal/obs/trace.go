package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is one search's trace record, emitted by the engine after the query
// completes: the query identity, the processor share it ran with, its
// Step-1 root rounds, and its position on the engine's cumulative step
// clock — [StepLo, StepHi) is the simulated step range the query occupied
// within its batch's window, so spans of one batch overlap (the queries
// run concurrently on disjoint processor groups) while batches abut.
//
// A query span may be followed by per-phase child spans: Parent carries
// the query span's ID, Phase the phase label ("root-coop", "hop-descent",
// "seq-tail", ...), and [StepLo, StepHi) the phase's sub-range of the
// parent's window. Phase steps of one parent partition the parent's Steps.
type Span struct {
	// ID is the engine-unique query id; Batch the id of the batch that
	// executed it. Parent is 0 for query spans and the parent query span's
	// ID for per-phase child spans.
	ID     uint64 `json:"id"`
	Batch  uint64 `json:"batch"`
	Parent uint64 `json:"parent,omitempty"`
	// Kind is the query kind ("catalog", "point", "spatial"); Shard the
	// catalog shard (0 otherwise). Phase is empty on query spans and the
	// phase label on child spans.
	Kind  string `json:"kind"`
	Shard int    `json:"shard"`
	Phase string `json:"phase,omitempty"`
	// P is the processor share; Rounds the Step-1 cooperative root-search
	// rounds (catalog queries); Steps the query's simulated parallel time.
	P      int `json:"p"`
	Rounds int `json:"rounds"`
	Steps  int `json:"steps"`
	// StepLo/StepHi locate the query on the engine's cumulative batch step
	// clock: StepHi - StepLo == Steps.
	StepLo uint64 `json:"step_lo"`
	StepHi uint64 `json:"step_hi"`
	// Cache is the entry-cache outcome of a catalog query: "hit", "miss",
	// or "stale" (a hit whose hinted position failed O(1) revalidation
	// because a flush raced the lookup; the query fell back to the full
	// entry search). Empty for non-catalog queries, phase children, and
	// uncached execution. CacheHit mirrors Cache == "hit".
	Cache    string `json:"cache,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Err is the failure message, "" on success.
	Err string `json:"err,omitempty"`
	// RequestID is the serving-layer correlation id (minted or honored by
	// coopserve, carried through the batch context). Empty when the caller
	// did not attach one — library use, benchmarks, most tests.
	RequestID string `json:"request_id,omitempty"`
}

// Tracer receives completed search spans. Implementations must be safe for
// concurrent Emit calls (batches may execute concurrently). A nil Tracer
// means tracing is disabled; callers guard with a nil check so the
// disabled path does not even build the Span.
type Tracer interface {
	Emit(Span)
}

// Ring is an in-memory ring-buffer Tracer holding the most recent spans —
// the always-on flight recorder: cheap enough to leave attached, inspected
// after the fact by tests and the -trace CLI surfaces.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewRing returns a ring tracer retaining the last n spans (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Span, 0, n)}
}

// Emit implements Tracer.
func (r *Ring) Emit(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever emitted (retained or not).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns the retained spans, oldest first.
func (r *Ring) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONL is a Tracer writing one JSON object per span per line to an
// io.Writer — the durable sink behind `plquery -trace=<file>`. Writes are
// serialised by a mutex; errors are sticky and reported by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL tracer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Tracer.
func (j *JSONL) Emit(s Span) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(s)
	}
	j.mu.Unlock()
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Fanout returns a Tracer duplicating every span to each of the given
// tracers (nils skipped); nil if none remain.
func Fanout(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return fanout(live)
	}
}

type fanout []Tracer

// Emit implements Tracer.
func (f fanout) Emit(s Span) {
	for _, t := range f {
		t.Emit(s)
	}
}
