package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

// TestHistogramP95 pins the new p95 estimate: like the other quantiles it
// is the containing bucket's upper bound, capped at the observed max.
func TestHistogramP95(t *testing.T) {
	h := &Histogram{}
	// 100 observations: 94 land in bucket (16,32], 6 in (1024,2048].
	for i := 0; i < 94; i++ {
		h.Observe(20)
	}
	for i := 0; i < 6; i++ {
		h.Observe(1500)
	}
	s := h.Snapshot()
	if s.P50 != 31 {
		t.Fatalf("P50 = %d, want 31 (bucket upper bound)", s.P50)
	}
	// Rank ⌈0.95·100⌉ = 95 falls in the high bucket, capped at max 1500.
	if s.P95 != 1500 {
		t.Fatalf("P95 = %d, want 1500", s.P95)
	}
	if s.P99 != 1500 {
		t.Fatalf("P99 = %d, want 1500", s.P99)
	}
}

// TestWriteTextInterleavesDeterministically exercises the merged-name
// ordering: func gauges and histograms sort into one sequence, each name
// appearing exactly once, p95 included on histogram lines.
func TestWriteTextInterleavesDeterministically(t *testing.T) {
	r := NewRegistry()
	r.Histogram("m.b.hist").Observe(7)
	r.RegisterFunc("m.a.func", func() int64 { return 3 })
	r.RegisterFunc("m.c.func", func() int64 { return 4 })
	r.Counter("m.d.count").Add(9)

	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("snapshot text changed between renders:\n%s\nvs\n%s", first, buf.String())
		}
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	wantOrder := []string{"m.a.func 3", "m.b.hist count=1", "m.c.func 4", "m.d.count 9"}
	if len(lines) != len(wantOrder) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantOrder), first)
	}
	for i, prefix := range wantOrder {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	if !strings.Contains(lines[1], "p95=") {
		t.Fatalf("histogram line lacks p95: %q", lines[1])
	}
}

// TestWritePromFormat checks the Prometheus exposition against the text
// format's grammar: TYPE lines precede their family, counters end in
// _total, histograms expose cumulative buckets with a +Inf terminator, and
// all names are in the legal charset.
func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.queries").Add(12)
	r.Gauge("pram.peak_active").Set(64)
	r.RegisterFunc("engine.pool.workers", func() int64 { return 8 })
	h := r.Histogram("engine.batch.steps")
	h.Observe(3)
	h.Observe(17)
	h.Observe(17)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if errs := LintProm(out); len(errs) > 0 {
		t.Fatalf("prom lint failed: %v\noutput:\n%s", errs, out)
	}
	for _, want := range []string{
		"# TYPE engine_queries_total counter",
		"engine_queries_total 12",
		"# TYPE pram_peak_active gauge",
		"engine_pool_workers 8",
		"# TYPE engine_batch_steps histogram",
		`engine_batch_steps_bucket{le="+Inf"} 3`,
		"engine_batch_steps_sum 37",
		"engine_batch_steps_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="3" covers the 3 observation, le="31"
	// all three.
	if !strings.Contains(out, `engine_batch_steps_bucket{le="3"} 1`) {
		t.Fatalf("non-cumulative low bucket:\n%s", out)
	}
	if !strings.Contains(out, `engine_batch_steps_bucket{le="31"} 3`) {
		t.Fatalf("non-cumulative high bucket:\n%s", out)
	}
}

// TestWriteProfilePprofParseable decodes the gzipped profile.proto output
// with a minimal reader: it must gunzip, and the string table must contain
// the sample type and every phase frame.
func TestWriteProfilePprofParseable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteStepsProfile(&buf,
		map[string]int64{"search/root-coop": 11, "search/hop-descent": 4, "seq-tail": 2},
		map[string]int64{"search/root-coop": 44, "search/hop-descent": 16, "seq-tail": 2})
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range []string{"steps", "work", "count", "search", "root-coop", "hop-descent", "seq-tail"} {
		if !bytes.Contains(raw, []byte(frame)) {
			t.Fatalf("decoded profile lacks string %q", frame)
		}
	}
}

// TestSplitPhasePath pins the path-to-stack rules, including the
// degenerate inputs.
func TestSplitPhasePath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"root-coop", []string{"root-coop"}},
		{"search/root-coop", []string{"search", "root-coop"}},
		{"a/b/c", []string{"a", "b", "c"}},
		{"", []string{"unlabeled"}},
		{"//", []string{"unlabeled"}},
		{"/x/", []string{"x"}},
	}
	for _, c := range cases {
		got := splitPhasePath(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("splitPhasePath(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitPhasePath(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
