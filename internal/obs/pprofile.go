package obs

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file is a minimal, dependency-free encoder for the pprof
// profile.proto wire format (github.com/google/pprof/proto/profile.proto),
// used to export *simulated* cost profiles — PRAM steps attributed to
// algorithm phases — in a shape `go tool pprof` understands: sample values
// are phase step/work totals and the call stack is the phase path, so
// -top, -tree, and flamegraph views work on simulated parallel time the
// same way they work on CPU seconds.
//
// Only the message fields pprof requires are emitted: sample types,
// samples, locations (one synthetic location per distinct phase-path
// frame), functions, and the string table. The output is gzipped, which is
// the framing every pprof consumer accepts.

// ProfileSample is one weighted stack for BuildProfile: Stack is the phase
// path ordered root-first (e.g. ["search", "root-coop"]), Values holds one
// value per sample type passed to BuildProfile.
type ProfileSample struct {
	Stack  []string
	Values []int64
}

// protoBuf is a tiny protobuf writer: varints and length-delimited fields
// appended to a byte slice.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key; wire type 0 = varint, 2 = length-delimited.
func (p *protoBuf) tag(field int, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(v)
}

func (p *protoBuf) int64Field(field int, v int64) { p.uint64Field(field, uint64(v)) }

func (p *protoBuf) bytesField(field int, data []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *protoBuf) stringField(field int, s string) { p.bytesField(field, []byte(s)) }

// WriteProfile encodes samples as a gzipped pprof profile with the given
// sample types (name/unit pairs, e.g. {"steps","count"}). Every sample must
// carry exactly len(sampleTypes) values and a non-empty stack. Output is
// deterministic for a given input order.
func WriteProfile(w io.Writer, sampleTypes [][2]string, samples []ProfileSample) error {
	if len(sampleTypes) == 0 {
		return fmt.Errorf("obs: profile needs at least one sample type")
	}
	// String table: index 0 must be the empty string.
	strIdx := map[string]int{"": 0}
	strTab := []string{""}
	intern := func(s string) int {
		if i, ok := strIdx[s]; ok {
			return i
		}
		strIdx[s] = len(strTab)
		strTab = append(strTab, s)
		return len(strTab) - 1
	}

	// One synthetic function+location per distinct frame name, ids dense
	// from 1 in first-use order so encoding is deterministic.
	locIdx := map[string]uint64{}
	var locNames []string
	locOf := func(frame string) uint64 {
		if id, ok := locIdx[frame]; ok {
			return id
		}
		id := uint64(len(locNames) + 1)
		locIdx[frame] = id
		locNames = append(locNames, frame)
		return id
	}

	var body protoBuf
	// Field 1: sample_type (ValueType{type=1, unit=2}).
	for _, st := range sampleTypes {
		var vt protoBuf
		vt.int64Field(1, int64(intern(st[0])))
		vt.int64Field(2, int64(intern(st[1])))
		body.bytesField(1, vt.b)
	}
	// Field 2: sample (Sample{location_id=1 repeated, value=2 repeated}).
	for _, s := range samples {
		if len(s.Stack) == 0 {
			return fmt.Errorf("obs: profile sample with empty stack")
		}
		if len(s.Values) != len(sampleTypes) {
			return fmt.Errorf("obs: profile sample has %d values, want %d", len(s.Values), len(sampleTypes))
		}
		var sm protoBuf
		// Locations are leaf-first in the wire format; Stack is root-first.
		for i := len(s.Stack) - 1; i >= 0; i-- {
			sm.uint64Field(1, locOf(s.Stack[i]))
		}
		var vals protoBuf
		for _, v := range s.Values {
			vals.varint(uint64(v))
		}
		sm.bytesField(2, vals.b) // packed int64s
		body.bytesField(2, sm.b)
	}
	// Field 4: location (Location{id=1, line=4 Line{function_id=1}}), and
	// field 5: function (Function{id=1, name=2, system_name=3}).
	for i, name := range locNames {
		id := uint64(i + 1)
		var line protoBuf
		line.uint64Field(1, id)
		var loc protoBuf
		loc.uint64Field(1, id)
		loc.bytesField(4, line.b)
		body.bytesField(4, loc.b)

		var fn protoBuf
		fn.uint64Field(1, id)
		fn.int64Field(2, int64(intern(name)))
		fn.int64Field(3, int64(intern(name)))
		body.bytesField(5, fn.b)
	}
	// Field 6: string_table.
	for _, s := range strTab {
		body.stringField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(body.b); err != nil {
		return err
	}
	return gz.Close()
}

// WriteStepsProfile renders a flat label → (steps, work) profile — the
// shape the PRAM phase profiler and the engine's phase counters produce —
// as a pprof profile. Labels may embed "/" to express a phase path
// ("search/root-coop" becomes a two-frame stack). Samples are emitted in
// sorted label order so the output is reproducible. Steps is the LAST
// sample type because pprof defaults to the last one: `go tool pprof -top`
// shows simulated parallel time out of the box, with work reachable via
// -sample_index=work (the cpu-profile samples/cpu convention).
func WriteStepsProfile(w io.Writer, steps map[string]int64, work map[string]int64) error {
	labels := make([]string, 0, len(steps))
	for l := range steps {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	samples := make([]ProfileSample, 0, len(labels))
	for _, l := range labels {
		samples = append(samples, ProfileSample{
			Stack:  splitPhasePath(l),
			Values: []int64{work[l], steps[l]},
		})
	}
	return WriteProfile(w, [][2]string{{"work", "count"}, {"steps", "count"}}, samples)
}

// splitPhasePath splits a phase label on "/" into a root-first stack,
// treating empty segments and an empty label as the "unlabeled" frame.
func splitPhasePath(label string) []string {
	if label == "" {
		return []string{"unlabeled"}
	}
	var out []string
	start := 0
	for i := 0; i <= len(label); i++ {
		if i == len(label) || label[i] == '/' {
			if i > start {
				out = append(out, label[start:i])
			}
			start = i + 1
		}
	}
	if len(out) == 0 {
		return []string{"unlabeled"}
	}
	return out
}
