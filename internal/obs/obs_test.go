package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentSum checks that counters aggregate exactly under
// concurrent writers — the property the engine relies on when concurrent
// batches share one registry.
func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.hits") // get-or-create from every goroutine
			h := r.Histogram("test.lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("test.lat").Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestDisabledPathAllocs pins the tentpole invariant: with observability
// disabled (nil registry → nil handles), every hot-path operation is
// allocation-free, so instrumentation cannot perturb the E1–E20 cost
// measurements.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry // disabled
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		g.Set(3)
		g.Max(9)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f bytes-worth of objects per run, want 0", allocs)
	}
}

// TestEnabledPathAllocs: the enabled path must also be allocation-free
// (pure atomics) once handles exist.
func TestEnabledPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled path allocates %.1f objects per run, want 0", allocs)
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.RegisterFunc("d", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Funcs)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestGetOrCreateSharesHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("same") != r.Counter("same") {
		t.Fatal("same name must return the same counter")
	}
	r.Counter("same").Add(2)
	r.Counter("same").Add(3)
	if got := r.Snapshot().Counters["same"]; got != 5 {
		t.Fatalf("aggregated counter = %d, want 5", got)
	}
}

func TestTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic re-registering a counter as a gauge")
		}
	}()
	r.Gauge("name")
}

func TestGaugeMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	g.Max(5)
	g.Max(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("Max kept %d, want 5", got)
	}
	g.Max(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("Max kept %d, want 11", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 1000*1001/2 || s.Max != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	// Quantiles are log₂-bucket upper bounds: p50 of 1..1000 is 500, whose
	// bucket is [512,1023] → reported 511..1023 range; assert bracketing.
	if s.P50 < 500/2 || s.P50 > 1000 {
		t.Fatalf("p50 = %d out of plausible range", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > s.Max {
		t.Fatalf("p99 = %d not in [p50=%d, max=%d]", s.P99, s.P50, s.Max)
	}
	// Zero and huge observations stay in range.
	h.Observe(0)
	h.Observe(1 << 62)
	s = h.Snapshot()
	if s.Buckets[0] != 1 || s.Max != 1<<62 {
		t.Fatalf("edge buckets: zero-bucket=%d max=%d", s.Buckets[0], s.Max)
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("a.depth").Set(7)
	r.Histogram("a.lat").Observe(100)
	r.RegisterFunc("a.live", func() int64 { return 42 })

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.hits 3", "a.depth 7", "a.live 42", "a.lat count=1"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text export missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(js.Bytes(), &s); err != nil {
		t.Fatalf("JSON export not parseable: %v", err)
	}
	if s.Counters["a.hits"] != 3 || s.Funcs["a.live"] != 42 || s.Histograms["a.lat"].Count != 1 {
		t.Fatalf("JSON round-trip lost values: %+v", s)
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var r *Registry
	h := r.Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
