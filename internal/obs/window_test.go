package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable nanosecond clock for driving window rotation
// deterministically in tests.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) set(ns int64) {
	c.mu.Lock()
	c.ns = ns
	c.mu.Unlock()
}

// TestHistogramQuantileEdges pins the empty and single-sample quantile
// boundaries: an empty histogram answers NoData (not 0, which would read
// as "instantly fast"), and a single sample answers exactly that sample
// for every quantile (the bucket upper bound is capped at Max).
func TestHistogramQuantileEdges(t *testing.T) {
	cases := []struct {
		name               string
		obs                []int64
		p50, p90, p95, p99 int64
	}{
		{name: "empty", obs: nil, p50: NoData, p90: NoData, p95: NoData, p99: NoData},
		{name: "single", obs: []int64{1500}, p50: 1500, p90: 1500, p95: 1500, p99: 1500},
		{name: "single-zero", obs: []int64{0}, p50: 0, p90: 0, p95: 0, p99: 0},
		// Non-positive values share bucket 0, whose upper bound is 0 — a
		// single negative sample therefore reports 0, not the raw value.
		{name: "single-negative", obs: []int64{-7}, p50: 0, p90: 0, p95: 0, p99: 0},
		{name: "two", obs: []int64{1, 1 << 20}, p50: 1, p90: 1 << 20, p95: 1 << 20, p99: 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.obs {
				h.Observe(v)
			}
			s := h.Snapshot()
			if s.P50 != tc.p50 || s.P90 != tc.p90 || s.P95 != tc.p95 || s.P99 != tc.p99 {
				t.Fatalf("quantiles = %d/%d/%d/%d, want %d/%d/%d/%d",
					s.P50, s.P90, s.P95, s.P99, tc.p50, tc.p90, tc.p95, tc.p99)
			}
		})
	}
}

// TestHistogramNilSnapshotNoData checks the disabled histogram agrees
// with the empty one: no data means NoData quantiles either way.
func TestHistogramNilSnapshotNoData(t *testing.T) {
	var h *Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != NoData || s.P99 != NoData {
		t.Fatalf("nil snapshot = %+v, want zero counts with NoData quantiles", s)
	}
}

// TestWindowedHistogramRotation drives the clock across sub-windows and
// checks old observations age out of the snapshot exactly when their
// sub-window leaves the visible range.
func TestWindowedHistogramRotation(t *testing.T) {
	clk := &fakeClock{ns: 1}
	w := NewWindowedHistogram(10*time.Second, 3) // 30s visible
	w.now = clk.now

	w.Observe(100)
	w.Observe(200)
	if s := w.Snapshot(); s.Count != 2 || s.Max != 200 {
		t.Fatalf("fresh window: count=%d max=%d, want 2/200", s.Count, s.Max)
	}

	// Two sub-windows later the observations are still visible.
	clk.set(int64(25 * time.Second))
	w.Observe(400)
	if s := w.Snapshot(); s.Count != 3 || s.Max != 400 {
		t.Fatalf("t=25s: count=%d max=%d, want 3/400", s.Count, s.Max)
	}

	// At t=35s the first sub-window (epoch 0) is outside the 3-window
	// range [idx-2, idx]; only the 400 survives.
	clk.set(int64(35 * time.Second))
	if s := w.Snapshot(); s.Count != 1 || s.Max != 400 {
		t.Fatalf("t=35s: count=%d max=%d, want 1/400", s.Count, s.Max)
	}

	// Far in the future everything is stale: empty snapshot, NoData.
	clk.set(int64(10 * time.Minute))
	if s := w.Snapshot(); s.Count != 0 || s.P99 != NoData {
		t.Fatalf("idle: count=%d p99=%d, want 0/NoData", s.Count, s.P99)
	}

	// Slot reuse after the gap must not resurrect stale bucket counts.
	w.Observe(7)
	if s := w.Snapshot(); s.Count != 1 || s.Max != 7 || s.P99 != 7 {
		t.Fatalf("after reuse: count=%d max=%d p99=%d, want 1/7/7", s.Count, s.Max, s.P99)
	}
}

// TestWindowedHistogramNil checks the disabled path: no-ops and an empty
// NoData snapshot.
func TestWindowedHistogramNil(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(5)
	if s := w.Snapshot(); s.Count != 0 || s.P50 != NoData {
		t.Fatalf("nil snapshot = %+v, want empty with NoData quantiles", s)
	}
	if w.Window() != 0 {
		t.Fatalf("nil Window() = %v, want 0", w.Window())
	}
}

// TestWindowedHistogramConcurrent hammers Observe from many goroutines
// while snapshotting; run under -race this pins the lock-free design, and
// the final snapshot must account for every observation (single window, no
// rotation, so nothing may be lost).
func TestWindowedHistogramConcurrent(t *testing.T) {
	clk := &fakeClock{ns: 1}
	w := NewWindowedHistogram(time.Hour, 4)
	w.now = clk.now
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				w.Snapshot()
			}
		}
	}()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if s := w.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

// TestSLOBurnRate pins the burn-rate arithmetic: with a 0.99 objective,
// a 10%% bad fraction burns the 1%% budget at 10x.
func TestSLOBurnRate(t *testing.T) {
	clk := &fakeClock{ns: 1}
	s := NewSLO(100*time.Millisecond, 0.99, 10*time.Second, 12)
	s.now = clk.now

	if got := s.BurnRate(0); got != 0 {
		t.Fatalf("idle burn rate = %v, want 0 (no traffic is not a violation)", got)
	}
	for i := 0; i < 90; i++ {
		s.Observe(int64(time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		s.Observe(int64(time.Second))
	}
	if good, total := s.GoodTotal(0); good != 90 || total != 100 {
		t.Fatalf("good/total = %d/%d, want 90/100", good, total)
	}
	if got := s.BurnRate(0); got < 9.99 || got > 10.01 {
		t.Fatalf("burn rate = %v, want 10", got)
	}
	// A short window ending now sees the same single sub-window.
	if got := s.BurnRate(3); got < 9.99 || got > 10.01 {
		t.Fatalf("short burn rate = %v, want 10", got)
	}
	// Once the window ages out, the burn rate recovers to 0.
	clk.set(int64(10 * time.Minute))
	if got := s.BurnRate(0); got != 0 {
		t.Fatalf("aged burn rate = %v, want 0", got)
	}
	if s.Threshold() != 100*time.Millisecond || s.Objective() != 0.99 {
		t.Fatalf("threshold/objective = %v/%v", s.Threshold(), s.Objective())
	}
}

// TestSLONil checks the disabled SLO path.
func TestSLONil(t *testing.T) {
	var s *SLO
	s.Observe(1)
	if g, tot := s.GoodTotal(0); g != 0 || tot != 0 {
		t.Fatalf("nil GoodTotal = %d/%d", g, tot)
	}
	if s.BurnRate(0) != 0 || s.Threshold() != 0 || s.Objective() != 0 {
		t.Fatal("nil SLO accessors must return zeros")
	}
}

// TestWindowObserveAllocs pins the hot-path allocation contract for both
// the enabled and the disabled (nil) windowed instruments.
func TestWindowObserveAllocs(t *testing.T) {
	w := NewWindowedHistogram(10*time.Second, 12)
	s := NewSLO(100*time.Millisecond, 0.99, 10*time.Second, 12)
	var nilW *WindowedHistogram
	var nilS *SLO
	if n := testing.AllocsPerRun(1000, func() {
		w.Observe(42)
		s.Observe(42)
	}); n != 0 {
		t.Fatalf("enabled windowed Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		nilW.Observe(42)
		nilS.Observe(42)
	}); n != 0 {
		t.Fatalf("disabled windowed Observe allocates %v/op, want 0", n)
	}
}
