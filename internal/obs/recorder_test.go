package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderKeepPolicy checks the three retention pools: every
// error is kept, the slowest-K of a window are kept, and ordinary traffic
// lands in the reservoir.
func TestFlightRecorderKeepPolicy(t *testing.T) {
	clk := &fakeClock{ns: 1}
	r := NewFlightRecorder(FlightRecorderConfig{
		Reservoir: 8, Errors: 16, SlowK: 3, Window: time.Minute, Windows: 2,
	})
	r.now = clk.now

	// 100 fast queries, 5 very slow ones, 4 errors.
	for i := 0; i < 100; i++ {
		r.Record(&FlightRecord{ID: uint64(i + 1), Kind: "catalog", WallNS: 1000})
	}
	for i := 0; i < 5; i++ {
		r.Record(&FlightRecord{ID: uint64(200 + i), Kind: "catalog", WallNS: int64(1e6 * (i + 1))})
	}
	for i := 0; i < 4; i++ {
		r.Record(&FlightRecord{ID: uint64(300 + i), Kind: "spatial", WallNS: 500, Err: "boom"})
	}

	st := r.Stats()
	if st.Total != 109 || st.Errored != 4 {
		t.Fatalf("stats = %+v, want total 109, errored 4", st)
	}
	recs := r.Records()
	var errs, slow int
	for _, rec := range recs {
		if rec.Err != "" {
			errs++
		}
		if rec.WallNS >= 3e6 {
			slow++
		}
	}
	if errs != 4 {
		t.Fatalf("retained errors = %d, want all 4", errs)
	}
	// The slowest 3 of the window (3ms, 4ms, 5ms) must have been kept by
	// the slow pool regardless of reservoir luck.
	if slow != 3 {
		t.Fatalf("retained slowest = %d, want 3", slow)
	}
	if len(recs) > 8+16+2*3 {
		t.Fatalf("retained %d records, beyond pool capacity", len(recs))
	}
	// Newest-first ordering (all same Time here → by descending ID).
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Time < recs[i].Time {
			t.Fatalf("records not newest-first at %d", i)
		}
	}
}

// TestFlightRecorderSlowWindowRotation checks that slow-pool windows
// rotate with the clock and that a full window rejects fast queries via
// the lock-free floor check.
func TestFlightRecorderSlowWindowRotation(t *testing.T) {
	clk := &fakeClock{ns: 1}
	r := NewFlightRecorder(FlightRecorderConfig{
		Reservoir: 1, Errors: 1, SlowK: 2, Window: time.Minute, Windows: 2,
	})
	r.now = clk.now

	r.Record(&FlightRecord{ID: 1, WallNS: 100})
	r.Record(&FlightRecord{ID: 2, WallNS: 300})
	r.Record(&FlightRecord{ID: 3, WallNS: 200}) // floor is 100 → displaces ID 1
	r.Record(&FlightRecord{ID: 4, WallNS: 50})  // under floor (200) → rejected

	ids := map[uint64]bool{}
	for _, rec := range r.Records() {
		ids[rec.ID] = true
	}
	if !ids[2] || !ids[3] {
		t.Fatalf("slow window should retain IDs 2 and 3, got %v", ids)
	}

	// Next window: slots rotate, old slowest stay retained until reuse.
	clk.set(int64(90 * time.Second))
	r.Record(&FlightRecord{ID: 5, WallNS: 10})
	ids = map[uint64]bool{}
	for _, rec := range r.Records() {
		ids[rec.ID] = true
	}
	if !ids[5] || !ids[2] {
		t.Fatalf("want both windows retained, got %v", ids)
	}
}

// TestFlightRecorderNil checks the disabled recorder: no-ops, empty
// dumps, zero stats.
func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record(&FlightRecord{ID: 1})
	if got := r.Records(); got != nil {
		t.Fatalf("nil Records() = %v, want nil", got)
	}
	if st := r.Stats(); st != (FlightStats{}) {
		t.Fatalf("nil Stats() = %+v, want zeros", st)
	}
}

// TestFlightRecorderAllocs pins the acceptance-criteria allocation
// contract: the enabled steady-state recording path and the nil disabled
// path are both exactly 0 allocs per recorded query.
func TestFlightRecorderAllocs(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Reservoir: 64, Errors: 8, SlowK: 4})
	// Prime past the reservoir fill so the measured loop is steady state.
	rec := FlightRecord{
		ID: 1, Kind: "catalog", Shard: 2, P: 64, Steps: 12, WallNS: 1000,
		Cache:  "finger",
		Phases: PhaseList{{Label: "root-coop", Steps: 4}, {Label: "seq-tail", Steps: 8}},
	}
	for i := 0; i < 200; i++ {
		rec.ID++
		r.Record(&rec)
	}
	if n := testing.AllocsPerRun(1000, func() {
		rec.ID++
		rec.WallNS++
		r.Record(&rec)
	}); n != 0 {
		t.Fatalf("enabled steady-state Record allocates %v/op, want 0", n)
	}
	var disabled *FlightRecorder
	if n := testing.AllocsPerRun(1000, func() {
		disabled.Record(&rec)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %v/op, want 0", n)
	}
}

// TestFlightRecorderConcurrent hammers Record from many goroutines while
// a reader dumps — under -race this pins the TryLock slot discipline, and
// total accounting must be exact even when slots are contended.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Reservoir: 32, Errors: 8, SlowK: 4})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Records()
				r.Stats()
			}
		}
	}()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := FlightRecord{Kind: "catalog"}
			for i := 0; i < per; i++ {
				rec.ID = uint64(g*per + i + 1)
				rec.WallNS = int64(i)
				if i%251 == 0 {
					rec.Err = "boom"
				} else {
					rec.Err = ""
				}
				r.Record(&rec)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	st := r.Stats()
	if st.Total != workers*per {
		t.Fatalf("total = %d, want %d", st.Total, workers*per)
	}
	if len(r.Records()) == 0 {
		t.Fatal("no records retained")
	}
}

// TestPhaseListJSON pins the wire shape: only used entries appear, and an
// empty list marshals as [].
func TestPhaseListJSON(t *testing.T) {
	p := PhaseList{{Label: "root-coop", Steps: 3}, {Label: "seq-tail", Steps: 9}}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"label":"root-coop","steps":3},{"label":"seq-tail","steps":9}]`
	if string(b) != want {
		t.Fatalf("PhaseList JSON = %s, want %s", b, want)
	}
	if b, _ = json.Marshal(PhaseList{}); string(b) != "[]" {
		t.Fatalf("empty PhaseList JSON = %s, want []", b)
	}
	var rec FlightRecord
	blob, err := json.Marshal(FlightRecord{ID: 7, Kind: "catalog", Phases: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != 7 || rec.Phases[1].Steps != 9 {
		t.Fatalf("round trip = %+v", rec)
	}
	if strings.Contains(string(blob), `"err"`) {
		t.Fatalf("empty error must be omitted: %s", blob)
	}
}
