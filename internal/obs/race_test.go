package obs

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistrySnapshotWhileWriting hammers one registry from writer
// goroutines — counters, gauges, histograms, and func-gauge registration —
// while reader goroutines continuously take snapshots and render every
// export format. Run under -race (internal/obs is in the race targets)
// this is the proof that the snapshot path takes no torn reads and that
// get-or-create registration is safe against concurrent exporters.
func TestRegistrySnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	var stop atomic.Bool
	var live atomic.Int64
	const writers, readers = 4, 3

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"stress.a", "stress.b", "stress.c"}
			for i := 0; !stop.Load(); i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n + ".gauge").Set(int64(i))
				r.Histogram(n + ".hist").Observe(int64(i % 1000))
				if i%97 == 0 {
					// Re-registering replaces the func — exercised
					// concurrently with snapshots that invoke it.
					r.RegisterFunc(n+".func", func() int64 { return live.Load() })
				}
				live.Add(1)
			}
		}(w)
	}

	var snaps atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := r.Snapshot()
				// Counters only grow; a torn read would show up as an
				// impossible negative value.
				for n, v := range s.Counters {
					if v < 0 {
						t.Errorf("counter %s went negative: %d", n, v)
						return
					}
				}
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				buf.Reset()
				if err := r.WriteProm(&buf); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				snaps.Add(1)
			}
		}()
	}

	// Bounded by iteration count, not wall time, so the test is fast under
	// `go test` and still long enough to interleave under -race.
	for live.Load() < 20000 || snaps.Load() < 50 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if snaps.Load() == 0 {
		t.Fatal("no snapshots completed; race exercise is vacuous")
	}
}
