package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on per-query flight recorder: a fixed set
// of record slots with a tail-sampling keep policy. Metrics say *that*
// p99 spiked; the recorder says *which* queries did it and why (shard,
// cache outcome, finger distance, phase step split, error text).
//
// Keep policy, in priority order:
//   - every error (ring of the most recent Errors failures),
//   - the slowest SlowK queries per Window, for the last Windows windows,
//   - a uniform reservoir of Reservoir records over all traffic since
//     boot (Vitter's algorithm R), so the slowlog always shows what
//     *normal* looks like next to the tail.
//
// Record never blocks the query path and allocates nothing in steady
// state: slots are guarded by per-slot mutexes taken with TryLock, and a
// writer that loses the race drops the record (counted in Dropped) rather
// than waiting. Readers take the slot locks outright, so a dump can at
// worst shed a handful of concurrent writes — never stall them. A nil
// *FlightRecorder is a valid disabled recorder: Record is a no-op and
// stays 0-alloc like the rest of obs.
type FlightRecorder struct {
	reservoir []flightSlot
	errs      []flightSlot
	slow      []slowWindow
	windowNS  int64

	total   atomic.Int64
	errored atomic.Int64
	dropped atomic.Int64
	errHead atomic.Uint64
	rng     atomic.Uint64
	now     func() int64
}

// flightSlot is one retained record. ok distinguishes a written slot from
// a zero one; the mutex is per-slot so writers contend only on collisions.
type flightSlot struct {
	mu  sync.Mutex
	ok  bool
	rec FlightRecord
}

// slowWindow retains the slowest-K records of one time window. epochA
// mirrors epoch so the hot path can reject fast queries without the lock:
// floor is the smallest retained wall time once the window is full (-1
// while filling), so a query at or under the floor can't displace anything.
type slowWindow struct {
	mu     sync.Mutex
	epoch  int64
	n      int
	recs   []FlightRecord
	epochA atomic.Int64
	floor  atomic.Int64
}

// FlightRecorderConfig sizes the recorder's retention pools. Zero fields
// take the defaults noted on each.
type FlightRecorderConfig struct {
	Reservoir int           // uniform sample slots (default 1024)
	Errors    int           // most-recent-errors ring (default 256)
	SlowK     int           // slowest records kept per window (default 32)
	Window    time.Duration // slow-window width (default 1m)
	Windows   int           // slow windows retained (default 5)
}

// NewFlightRecorder returns a recorder with the given retention sizes.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	if cfg.Reservoir <= 0 {
		cfg.Reservoir = 1024
	}
	if cfg.Errors <= 0 {
		cfg.Errors = 256
	}
	if cfg.SlowK <= 0 {
		cfg.SlowK = 32
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Windows < 1 {
		cfg.Windows = 5
	}
	r := &FlightRecorder{
		reservoir: make([]flightSlot, cfg.Reservoir),
		errs:      make([]flightSlot, cfg.Errors),
		slow:      make([]slowWindow, cfg.Windows),
		windowNS:  int64(cfg.Window),
		now:       func() int64 { return time.Now().UnixNano() },
	}
	for i := range r.slow {
		r.slow[i].epoch = -1
		r.slow[i].epochA.Store(-1)
		r.slow[i].floor.Store(-1)
		r.slow[i].recs = make([]FlightRecord, cfg.SlowK)
	}
	return r
}

// PhaseCount is one phase's step attribution within a flight record.
type PhaseCount struct {
	Label string `json:"label"`
	Steps int    `json:"steps"`
}

// PhaseList holds a query's per-phase steps without allocating: no engine
// query runs more than three phases (catalog: root-coop, hop-descent,
// seq-tail; spatial: discrim, descent). Unused entries have an empty
// Label and are omitted from JSON.
type PhaseList [3]PhaseCount

// MarshalJSON emits only the used entries as a JSON array.
func (p PhaseList) MarshalJSON() ([]byte, error) {
	used := make([]PhaseCount, 0, len(p))
	for _, pc := range p {
		if pc.Label != "" {
			used = append(used, pc)
		}
	}
	return json.Marshal(used)
}

// FlightRecord is one query's retained telemetry. IDs match the query
// span IDs, so a slowlog entry can be correlated with /spans output and,
// via RequestID, with the client's request.
type FlightRecord struct {
	ID        uint64    `json:"id"`
	Batch     uint64    `json:"batch"`
	RequestID string    `json:"request_id,omitempty"`
	Time      int64     `json:"time_unix_ns"`
	Kind      string    `json:"kind"`
	Shard     int       `json:"shard"`
	P         int       `json:"p"`
	Steps     int       `json:"steps"`
	Rounds    int       `json:"rounds,omitempty"`
	WallNS    int64     `json:"wall_ns"`
	Cache     string    `json:"cache,omitempty"`
	FingerD   int64     `json:"finger_d,omitempty"`
	Phases    PhaseList `json:"phases"`
	Err       string    `json:"err,omitempty"`
}

// rand is a splitmix64 step over an atomic counter: one uncontended
// atomic add per draw, no locks, no allocation, and statistically fine
// for reservoir victim selection (this is sampling, not cryptography).
func (r *FlightRecorder) rand() uint64 {
	z := r.rng.Add(0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// store copies rec into s unless a concurrent reader or writer holds the
// slot, in which case the record is dropped (never block the query path).
func (r *FlightRecorder) store(s *flightSlot, rec *FlightRecord) {
	if !s.mu.TryLock() {
		r.dropped.Add(1)
		return
	}
	s.rec = *rec
	s.ok = true
	s.mu.Unlock()
}

// Record retains rec according to the keep policy (no-op on nil). rec is
// copied; the caller may reuse it. Time is stamped from the recorder's
// clock when zero. Zero allocations, never blocks.
func (r *FlightRecorder) Record(rec *FlightRecord) {
	if r == nil {
		return
	}
	if rec.Time == 0 {
		rec.Time = r.now()
	}
	n := r.total.Add(1)

	// Uniform reservoir (algorithm R): the first len(reservoir) records
	// fill it; afterwards record n replaces a uniform victim with
	// probability len(reservoir)/n.
	size := int64(len(r.reservoir))
	slot := int64(-1)
	if n <= size {
		slot = n - 1
	} else if j := int64(r.rand() % uint64(n)); j < size {
		slot = j
	}
	if slot >= 0 {
		r.store(&r.reservoir[slot], rec)
	}

	if rec.Err != "" {
		r.errored.Add(1)
		i := r.errHead.Add(1) - 1
		r.store(&r.errs[i%uint64(len(r.errs))], rec)
	}

	r.recordSlow(rec)
}

// recordSlow keeps rec if it is among the slowest K of its time window.
func (r *FlightRecorder) recordSlow(rec *FlightRecord) {
	idx := rec.Time / r.windowNS
	w := &r.slow[int(idx%int64(len(r.slow)))]
	if w.epochA.Load() == idx {
		if f := w.floor.Load(); f >= 0 && rec.WallNS <= f {
			return // window full and rec not slower than the floor
		}
	}
	if !w.mu.TryLock() {
		r.dropped.Add(1)
		return
	}
	if w.epoch != idx {
		if w.epoch > idx {
			// A slow writer carrying a stale timestamp lost the window.
			w.mu.Unlock()
			return
		}
		w.epoch = idx
		w.n = 0
		w.epochA.Store(idx)
		w.floor.Store(-1)
	}
	if w.n < len(w.recs) {
		w.recs[w.n] = *rec
		w.n++
		if w.n == len(w.recs) {
			w.floor.Store(minWall(w.recs))
		}
	} else {
		mi := 0
		for i := 1; i < len(w.recs); i++ {
			if w.recs[i].WallNS < w.recs[mi].WallNS {
				mi = i
			}
		}
		if rec.WallNS > w.recs[mi].WallNS {
			w.recs[mi] = *rec
			w.floor.Store(minWall(w.recs))
		}
	}
	w.mu.Unlock()
}

func minWall(recs []FlightRecord) int64 {
	m := recs[0].WallNS
	for _, rec := range recs[1:] {
		if rec.WallNS < m {
			m = rec.WallNS
		}
	}
	return m
}

// FlightStats summarizes recorder volume.
type FlightStats struct {
	// Total and Errored count every Record call (retained or not);
	// Dropped counts records shed on slot contention.
	Total, Errored, Dropped int64
}

// Stats returns volume counters (zero on nil).
func (r *FlightRecorder) Stats() FlightStats {
	if r == nil {
		return FlightStats{}
	}
	return FlightStats{
		Total:   r.total.Load(),
		Errored: r.errored.Load(),
		Dropped: r.dropped.Load(),
	}
}

// Records returns every retained record, deduplicated across the pools
// (a record can sit in the reservoir, the error ring, and a slow window
// at once) and sorted newest-first. The dump path allocates freely — it
// serves debug endpoints, not the query path.
func (r *FlightRecorder) Records() []FlightRecord {
	if r == nil {
		return nil
	}
	type key struct {
		id uint64
		t  int64
	}
	seen := make(map[key]struct{})
	var out []FlightRecord
	add := func(rec FlightRecord) {
		k := key{rec.ID, rec.Time}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		out = append(out, rec)
	}
	collect := func(slots []flightSlot) {
		for i := range slots {
			s := &slots[i]
			s.mu.Lock()
			if s.ok {
				add(s.rec)
			}
			s.mu.Unlock()
		}
	}
	collect(r.reservoir)
	collect(r.errs)
	for i := range r.slow {
		w := &r.slow[i]
		w.mu.Lock()
		for _, rec := range w.recs[:w.n] {
			add(rec)
		}
		w.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].ID > out[j].ID
	})
	return out
}
