package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time view of every metric in a registry,
// expvar-style: flat name → value maps, stable to marshal and diff.
type Snapshot struct {
	// Counters and Gauges map metric names to current values; Funcs holds
	// the pull-gauge results sampled at snapshot time.
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Funcs    map[string]int64 `json:"funcs,omitempty"`
	// Histograms maps names to bucket summaries.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot assembles the current values of every registered metric,
// invoking func gauges. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Funcs:      map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()

	// Func gauges run outside the registry lock: they read live component
	// state (pool atomics, cache sizes) and may take component locks of
	// their own.
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	for n, f := range funcs {
		s.Funcs[n] = f()
	}
	return s
}

// WriteJSON writes the snapshot as a single indented JSON object — the
// expvar-style machine-readable export.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot as sorted "name value" lines, histograms
// as one summary line each — the human-readable export behind
// `coopbench -metrics`.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	scalar := make(map[string]int64, len(s.Counters)+len(s.Gauges)+len(s.Funcs))
	for n, v := range s.Counters {
		scalar[n] = v
	}
	for n, v := range s.Gauges {
		scalar[n] = v
	}
	for n, v := range s.Funcs {
		scalar[n] = v
	}
	// Merge the two name spaces with dedup: a histogram and a scalar (for
	// example a func gauge) may legitimately share a name across registries
	// over time, and the old concatenation emitted such a name twice —
	// making the interleaved ordering of func gauges and histograms depend
	// on map iteration. One sorted pass over unique names is deterministic.
	names := make([]string, 0, len(scalar)+len(s.Histograms))
	for n := range scalar {
		names = append(names, n)
	}
	for n := range s.Histograms {
		if _, dup := scalar[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if h, ok := s.Histograms[n]; ok {
			_, err := fmt.Fprintf(w, "%s count=%d sum=%d mean=%.1f p50=%d p90=%d p95=%d p99=%d max=%d\n",
				n, h.Count, h.Sum, h.Mean(), h.P50, h.P90, h.P95, h.P99, h.Max)
			if err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, scalar[n]); err != nil {
			return err
		}
	}
	return nil
}
