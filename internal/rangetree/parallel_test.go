package rangetree

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fraccascade/internal/core"
)

// TestNew2DParallelDeterministic pins the build-pool contract for the
// range-tree preprocessing: the level-by-level merges, per-node catalog
// builds, and rank tables fan out over host workers, but the built tree —
// rank tables, the structure's exported state and cascade parts, and the
// frozen wire encoding — must be bit-identical to the sequential build
// for every parallelism value.
func TestNew2DParallelDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(900, 1200, rng)
		seq, err := New2D(pts, core.Config{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		seqState, err := seq.st.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		seqParts := seq.st.Cascade().ExportParts()
		seqFz, err := seq.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		seqBlob, err := seqFz.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			rt, err := New2D(pts, core.Config{Parallelism: par})
			if err != nil {
				t.Fatalf("par %d: %v", par, err)
			}
			if !reflect.DeepEqual(rt.rank, seq.rank) {
				t.Fatalf("seed %d par %d: rank tables differ from sequential", seed, par)
			}
			state, err := rt.st.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(state, seqState) {
				t.Fatalf("seed %d par %d: structure state differs from sequential", seed, par)
			}
			if !reflect.DeepEqual(rt.st.Cascade().ExportParts(), seqParts) {
				t.Fatalf("seed %d par %d: cascade parts differ from sequential", seed, par)
			}
			fz, err := rt.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := fz.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, seqBlob) {
				t.Fatalf("seed %d par %d: frozen encoding differs from sequential", seed, par)
			}
		}
	}
}
