package rangetree

import (
	"math/rand"
	"os"
	"testing"

	"fraccascade/internal/core"
)

// frozen2DBaseSeed anchors the differential: case c runs with seed
// frozen2DBaseSeed + c, so any reported failure replays standalone.
const frozen2DBaseSeed = int64(0x0F1A7_4000)

// TestDifferentialFrozen2DVsPointer pins the frozen range tree to the
// pointer structure: 1000 seeded random point sets, and for every query
// the frozen QueryDirect/QueryIndirect/QueryCount twins — direct, after a
// marshal/unmarshal round trip, and through the zero-copy open — must
// return identical answers and bit-identical Stats.
func TestDifferentialFrozen2DVsPointer(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 100
	}
	for c := 0; c < cases; c++ {
		caseSeed := frozen2DBaseSeed + int64(c)
		runFrozen2DCase(t, caseSeed)
	}
}

func runFrozen2DCase(t *testing.T, caseSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(caseSeed))
	n := 1 + rng.Intn(250)
	pts := randPoints(n, 400, rng)
	rt, err := New2D(pts, core.Config{})
	if err != nil {
		t.Fatalf("case seed %d: New2D: %v", caseSeed, err)
	}
	f, err := rt.Freeze()
	if err != nil {
		t.Fatalf("case seed %d: Freeze: %v", caseSeed, err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("case seed %d: MarshalBinary: %v", caseSeed, err)
	}
	decoded, err := UnmarshalFrozen2D(blob)
	if err != nil {
		t.Fatalf("case seed %d: UnmarshalFrozen2D: %v", caseSeed, err)
	}
	opened, _, err := OpenFrozen2D(blob)
	if err != nil {
		t.Fatalf("case seed %d: OpenFrozen2D: %v", caseSeed, err)
	}
	frozens := []*Frozen2D{f, decoded, opened}
	names := []string{"frozen", "decoded", "opened"}
	scratches := []*Scratch2D{f.NewScratch(), decoded.NewScratch(), opened.NewScratch()}
	var ids []int32
	var ranges []Range

	for q := 0; q < 8; q++ {
		x1, y1 := rng.Int63n(500)-50, rng.Int63n(500)-50
		query := Query2{X1: x1, X2: x1 + rng.Int63n(250), Y1: y1, Y2: y1 + rng.Int63n(250)}
		if q == 7 {
			query.X2 = query.X1 - 1 // empty-rectangle error path
		}
		p := 1 << uint(rng.Intn(14))

		wantIDs, wantStats, wantErr := rt.QueryDirect(query, p)
		for i, fz := range frozens {
			gotIDs, gotStats, gotErr := fz.QueryDirectInto(query, p, scratches[i], ids)
			ids = gotIDs
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("case seed %d: %s QueryDirect err %v, want %v", caseSeed, names[i], gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotStats != wantStats {
				t.Fatalf("case seed %d: %s QueryDirect(%+v, p=%d) stats %+v, want %+v",
					caseSeed, names[i], query, p, gotStats, wantStats)
			}
			diffIDs(t, caseSeed, names[i]+" QueryDirect", gotIDs, wantIDs)
		}

		wantRanges, wantStats2, wantErr2 := rt.QueryIndirect(query, p)
		wantExpand := rt.Expand(wantRanges)
		for i, fz := range frozens {
			gotRanges, gotStats, gotErr := fz.QueryIndirectInto(query, p, scratches[i], ranges)
			ranges = gotRanges
			if (gotErr == nil) != (wantErr2 == nil) {
				t.Fatalf("case seed %d: %s QueryIndirect err %v, want %v", caseSeed, names[i], gotErr, wantErr2)
			}
			if wantErr2 != nil {
				continue
			}
			if gotStats != wantStats2 {
				t.Fatalf("case seed %d: %s QueryIndirect stats %+v, want %+v", caseSeed, names[i], gotStats, wantStats2)
			}
			if len(gotRanges) != len(wantRanges) {
				t.Fatalf("case seed %d: %s QueryIndirect %d ranges, want %d",
					caseSeed, names[i], len(gotRanges), len(wantRanges))
			}
			for j := range wantRanges {
				if gotRanges[j] != wantRanges[j] {
					t.Fatalf("case seed %d: %s QueryIndirect range[%d] = %+v, want %+v",
						caseSeed, names[i], j, gotRanges[j], wantRanges[j])
				}
			}
			ids = fz.ExpandInto(gotRanges, ids)
			diffIDs(t, caseSeed, names[i]+" Expand", ids, wantExpand)
		}

		wantCount, wantStats3, wantErr3 := rt.QueryCount(query, p)
		for i, fz := range frozens {
			gotCount, gotStats, gotErr := fz.QueryCount(query, p, scratches[i])
			if (gotErr == nil) != (wantErr3 == nil) {
				t.Fatalf("case seed %d: %s QueryCount err %v, want %v", caseSeed, names[i], gotErr, wantErr3)
			}
			if wantErr3 != nil {
				continue
			}
			if gotCount != wantCount || gotStats != wantStats3 {
				t.Fatalf("case seed %d: %s QueryCount = (%d, %+v), want (%d, %+v)",
					caseSeed, names[i], gotCount, gotStats, wantCount, wantStats3)
			}
		}
	}
}

func diffIDs(t *testing.T, caseSeed int64, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("case seed %d: %s returned %d ids, want %d", caseSeed, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("case seed %d: %s id[%d] = %d, want %d", caseSeed, what, i, got[i], want[i])
		}
	}
}

// TestFrozen2DZeroAllocs pins the frozen range-query hot paths: once the
// scratch and output buffers have warmed up, direct, indirect, and count
// queries allocate nothing.
func TestFrozen2DZeroAllocs(t *testing.T) {
	if os.Getenv("FRACCASCADE_GUARD") == "skip" {
		t.Skip("allocation guard skipped via FRACCASCADE_GUARD=skip")
	}
	rng := rand.New(rand.NewSource(21))
	pts := randPoints(400, 600, rng)
	rt, err := New2D(pts, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := rt.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sc := f.NewScratch()
	query := Query2{X1: 50, X2: 400, Y1: 50, Y2: 400}
	ids := make([]int32, 0, len(pts))
	ranges := make([]Range, 0, 64)
	for _, p := range []int{1, 16, 1 << 12} {
		// Warm the scratch and buffers.
		if ids, _, err = f.QueryDirectInto(query, p, sc, ids); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if ids, _, err = f.QueryDirectInto(query, p, sc, ids); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("QueryDirectInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			if ranges, _, err = f.QueryIndirectInto(query, p, sc, ranges); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("QueryIndirectInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			if _, _, err := f.QueryCount(query, p, sc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("QueryCount(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
	}
}

// TestFrozen2DDecodeRejectsCorruption bit-flips and truncates an encoded
// frozen range tree: every mutant must fail cleanly or stay queryable —
// never panic.
func TestFrozen2DDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randPoints(60, 300, rng)
	rt, err := New2D(pts, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := rt.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(blob) > 4096 {
		stride = len(blob) / 4096
	}
	for i := 0; i < len(blob); i += stride {
		mutant := append([]byte(nil), blob...)
		mutant[i] ^= 0x10
		g, err := UnmarshalFrozen2D(mutant)
		if err != nil {
			continue
		}
		g.QueryCount(Query2{X1: 0, X2: 200, Y1: 0, Y2: 200}, 8, g.NewScratch())
	}
	for _, n := range []int{0, 8, 24, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalFrozen2D(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}
