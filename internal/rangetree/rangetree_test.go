package rangetree

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/core"
)

func randPoints(n int, coordRange int64, rng *rand.Rand) []Point2 {
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
	}
	return pts
}

func TestTree2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		n := 1 + rng.Intn(300)
		pts := randPoints(n, 500, rng)
		rt, err := New2D(pts, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 8, 1024} {
			for q := 0; q < 40; q++ {
				x1, y1 := rng.Int63n(600)-50, rng.Int63n(600)-50
				query := Query2{X1: x1, X2: x1 + rng.Int63n(300), Y1: y1, Y2: y1 + rng.Int63n(300)}
				want := rt.NaiveQuery(query)
				got, stats, err := rt.QueryDirect(query, p)
				if err != nil {
					t.Fatalf("trial %d p %d: %v", trial, p, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d p %d %+v: got %v, want %v", trial, p, query, got, want)
				}
				if stats.K != len(want) {
					t.Fatalf("K = %d, want %d", stats.K, len(want))
				}
			}
		}
	}
}

func TestTree2DDuplicateCoordinates(t *testing.T) {
	pts := []Point2{{5, 5}, {5, 5}, {5, 7}, {7, 5}}
	rt, err := New2D(pts, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rt.QueryDirect(Query2{X1: 5, X2: 5, Y1: 5, Y2: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("got %v, want [0 1]", got)
	}
}

func TestTree2DEmptyResults(t *testing.T) {
	rt, err := New2D(randPoints(50, 100, rand.New(rand.NewSource(2))), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := rt.QueryDirect(Query2{X1: 1000, X2: 2000, Y1: 0, Y2: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.K != 0 {
		t.Errorf("expected empty result, got %v", got)
	}
	if _, _, err := rt.QueryDirect(Query2{X1: 5, X2: 4, Y1: 0, Y2: 1}, 4); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestTree2DStatsImproveWithP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rt, err := New2D(randPoints(3000, 3000, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query2{X1: 0, X2: 3000, Y1: 0, Y2: 3000}
	_, s1, err := rt.QueryDirect(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, sp, err := rt.QueryDirect(q, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total() >= s1.Total() {
		t.Errorf("total steps p=2^18 (%d) not below p=1 (%d)", sp.Total(), s1.Total())
	}
	if sp.ReportSteps >= s1.ReportSteps {
		t.Errorf("report steps did not shrink: %d vs %d", sp.ReportSteps, s1.ReportSteps)
	}
}

func TestQueryCountMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rt, err := New2D(randPoints(800, 1000, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		x1, y1 := rng.Int63n(1200)-100, rng.Int63n(1200)-100
		query := Query2{X1: x1, X2: x1 + rng.Int63n(600), Y1: y1, Y2: y1 + rng.Int63n(600)}
		ids, _, err := rt.QueryDirect(query, 64)
		if err != nil {
			t.Fatal(err)
		}
		count, stats, err := rt.QueryCount(query, 64)
		if err != nil {
			t.Fatal(err)
		}
		if count != len(ids) {
			t.Fatalf("QueryCount = %d, QueryDirect found %d (%+v)", count, len(ids), query)
		}
		if stats.ReportSteps != 0 {
			t.Fatalf("counting must not pay the k/p report term, got %d", stats.ReportSteps)
		}
	}
}

func TestQueryIndirectExpandsToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rt, err := New2D(randPoints(600, 800, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 80; q++ {
		x1, y1 := rng.Int63n(900)-50, rng.Int63n(900)-50
		query := Query2{X1: x1, X2: x1 + rng.Int63n(500), Y1: y1, Y2: y1 + rng.Int63n(500)}
		direct, _, err := rt.QueryDirect(query, 64)
		if err != nil {
			t.Fatal(err)
		}
		ranges, stats, err := rt.QueryIndirect(query, 64)
		if err != nil {
			t.Fatal(err)
		}
		got := rt.Expand(ranges)
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("indirect expansion %v != direct %v", got, direct)
		}
		if stats.K != len(direct) {
			t.Fatalf("indirect K = %d, want %d", stats.K, len(direct))
		}
		if stats.ReportSteps != 0 {
			t.Fatal("indirect retrieval must not pay k/p")
		}
	}
}

func TestQueryCountIsOutputInsensitive(t *testing.T) {
	// A huge-k query must cost the same steps as a tiny-k query.
	rng := rand.New(rand.NewSource(10))
	rt, err := New2D(randPoints(3000, 3000, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := rt.QueryCount(Query2{X1: 0, X2: 3000, Y1: 0, Y2: 3000}, 256)
	if err != nil {
		t.Fatal(err)
	}
	_, tiny, err := rt.QueryCount(Query2{X1: 0, X2: 10, Y1: 0, Y2: 10}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if all.Total() > 2*tiny.Total()+8 {
		t.Errorf("counting steps grew with k: %d (k=%d) vs %d (k=%d)",
			all.Total(), all.K, tiny.Total(), tiny.K)
	}
}

func randPointsKD(n, d int, coordRange int64, rng *rand.Rand) [][]int64 {
	pts := make([][]int64, n)
	for i := range pts {
		pt := make([]int64, d)
		for c := range pt {
			pt[c] = rng.Int63n(coordRange)
		}
		pts[i] = pt
	}
	return pts
}

func TestTreeKDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 3; trial++ {
			n := 1 + rng.Intn(120)
			pts := randPointsKD(n, d, 200, rng)
			kd, err := NewKD(pts, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if kd.Dim() != d {
				t.Fatalf("Dim = %d, want %d", kd.Dim(), d)
			}
			for _, p := range []int{1, 16, 4096} {
				for q := 0; q < 20; q++ {
					loC := make([]int64, d)
					hiC := make([]int64, d)
					for c := 0; c < d; c++ {
						loC[c] = rng.Int63n(250) - 25
						hiC[c] = loC[c] + rng.Int63n(150)
					}
					query := QueryKD{Lo: loC, Hi: hiC}
					want := kd.NaiveQuery(query)
					got, stats, err := kd.QueryDirect(query, p)
					if err != nil {
						t.Fatalf("d %d trial %d p %d: %v", d, trial, p, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("d %d trial %d p %d: got %v, want %v", d, trial, p, got, want)
					}
					if stats.K != len(want) {
						t.Fatalf("K mismatch")
					}
				}
			}
		}
	}
}

func TestTreeKDValidation(t *testing.T) {
	if _, err := NewKD(nil, core.Config{}); err == nil {
		t.Error("empty point set should fail")
	}
	if _, err := NewKD([][]int64{{1}}, core.Config{}); err == nil {
		t.Error("dimension 1 should fail")
	}
	if _, err := NewKD([][]int64{{1, 2}, {1, 2, 3}}, core.Config{}); err == nil {
		t.Error("ragged points should fail")
	}
	kd, err := NewKD([][]int64{{1, 2, 3}, {4, 5, 6}}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kd.QueryDirect(QueryKD{Lo: []int64{0}, Hi: []int64{9}}, 4); err == nil {
		t.Error("query dimension mismatch should fail")
	}
}
