package rangetree

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/flat"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// Frozen2D is the flat SoA twin of Tree2D: the embedded catalog structure
// frozen through internal/flat plus the x-boundary and id arrays, encoded
// as one rangetree-kind flat.Store blob. The query twins replicate
// QueryDirect/QueryIndirect/QueryCount cell for cell — identical answers,
// bit-identical Stats — with all per-query state in a caller-owned
// Scratch2D, so the steady state allocates nothing.
type Frozen2D struct {
	emb   *flat.Structure
	ids   []int32
	leafX []int64
	nLeaf int32
	// rank mirrors Tree2D.rank flattened: native-entry counts before each
	// catalog position of node v at rank[rankStart[v]+pos]. Rebuilt from the
	// embedded structure at decode time, never trusted from the wire.
	rankStart []int32
	rank      []int32
}

// Scratch2D holds the reusable per-query state of a frozen range query:
// the boundary path buffer, the per-node catalog positions the pointer
// path keeps in maps, the canonical-node list, and the search result
// buffer.
type Scratch2D struct {
	posLo, posHi []int32 // per node; −1 = not on a boundary path
	touched      []int32
	path         []tree.NodeID
	res          []cascade.Result
	canon        []int32
	ranges       []canonRange
}

// NewScratch returns a scratch sized for this structure.
func (f *Frozen2D) NewScratch() *Scratch2D {
	n := f.emb.NumNodes()
	sc := &Scratch2D{
		posLo:   make([]int32, n),
		posHi:   make([]int32, n),
		touched: make([]int32, 0, n),
		path:    make([]tree.NodeID, 0, 64),
		res:     make([]cascade.Result, 0, 64),
		canon:   make([]int32, 0, 64),
		ranges:  make([]canonRange, 0, 64),
	}
	for i := range sc.posLo {
		sc.posLo[i], sc.posHi[i] = -1, -1
	}
	return sc
}

// Freeze re-encodes the range tree into the flat layout.
func (rt *Tree2D) Freeze() (*Frozen2D, error) {
	emb, err := flat.Freeze(rt.st)
	if err != nil {
		return nil, err
	}
	f := &Frozen2D{
		emb:   emb,
		ids:   rt.ids,
		leafX: rt.leafX,
		nLeaf: int32(rt.nLeaf),
	}
	f.buildRank()
	return f, nil
}

// buildRank derives the flattened native-rank prefix sums from the
// embedded structure (the frozen image of Tree2D's rank build).
func (f *Frozen2D) buildRank() {
	n := f.emb.NumNodes()
	f.rankStart = make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		f.rankStart[v] = int32(total)
		total += f.emb.CatalogLen(tree.NodeID(v)) + 1
	}
	f.rankStart[n] = int32(total)
	f.rank = make([]int32, total)
	for v := 0; v < n; v++ {
		base := int(f.rankStart[v])
		run := int32(0)
		cl := f.emb.CatalogLen(tree.NodeID(v))
		for i := 0; i < cl; i++ {
			f.rank[base+i] = run
			if f.emb.IsNative(tree.NodeID(v), i) && f.emb.PayloadAt(tree.NodeID(v), i) >= 0 {
				run++
			}
		}
		f.rank[base+cl] = run
	}
}

// MarshalBinary encodes the frozen range tree as a rangetree-kind store.
func (f *Frozen2D) MarshalBinary() ([]byte, error) {
	b := flat.NewStoreBuilder(flat.StoreKindRangeTree)
	b.Meta(uint64(int64(f.nLeaf)))
	b.I32s(f.ids)
	b.I64s(f.leafX)
	f.emb.AppendToStore(b)
	return b.Marshal()
}

// OpenFrozen2D decodes and fully validates a rangetree-kind store blob,
// with the embedded arrays aliasing data when the host allows zero-copy.
// The returned flag reports whether aliasing happened.
func OpenFrozen2D(data []byte) (*Frozen2D, bool, error) {
	st, err := flat.OpenStore(data, true)
	if err != nil {
		return nil, false, err
	}
	f, err := decodeFrozen2D(st)
	if err != nil {
		return nil, false, err
	}
	return f, st.ZeroCopy(), nil
}

// UnmarshalFrozen2D decodes and fully validates a rangetree-kind store
// blob, copying every array out of data.
func UnmarshalFrozen2D(data []byte) (*Frozen2D, error) {
	st, err := flat.OpenStore(data, false)
	if err != nil {
		return nil, err
	}
	return decodeFrozen2D(st)
}

func decodeFrozen2D(st *flat.Store) (*Frozen2D, error) {
	if st.Kind() != flat.StoreKindRangeTree {
		return nil, fmt.Errorf("rangetree: store kind %d, want rangetree (%d)", st.Kind(), flat.StoreKindRangeTree)
	}
	c := flat.NewStoreCursor(st)
	var f Frozen2D
	f.nLeaf = int32(int64(c.Meta()))
	f.ids = c.I32s()
	f.leafX = c.I64s()
	emb, err := flat.DecodeFromStore(c)
	if err != nil {
		return nil, err
	}
	f.emb = emb
	if err := c.Finish(); err != nil {
		return nil, err
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	f.buildRank()
	return &f, nil
}

// validate pins the invariants the frozen query path relies on beyond the
// embedded structure's own validation: the balanced-binary shape the
// canonical decomposition assumes, the leaf arrays, and the id bounds.
func (f *Frozen2D) validate() error {
	nLeaf := int(f.nLeaf)
	if nLeaf < 1 || nLeaf&(nLeaf-1) != 0 {
		return fmt.Errorf("rangetree: frozen leaf count %d not a positive power of two", nLeaf)
	}
	n := f.emb.NumNodes()
	if n != 2*nLeaf-1 {
		return fmt.Errorf("rangetree: frozen %d nodes for %d leaves", n, nLeaf)
	}
	if f.emb.Root() != 0 {
		return fmt.Errorf("rangetree: frozen root %d, want 0", f.emb.Root())
	}
	if len(f.leafX) != nLeaf {
		return fmt.Errorf("rangetree: frozen leafX length %d, want %d", len(f.leafX), nLeaf)
	}
	for i := 1; i < nLeaf; i++ {
		if f.leafX[i] < f.leafX[i-1] {
			return fmt.Errorf("rangetree: frozen leafX not sorted at %d", i)
		}
	}
	if f.emb.ParentOf(0) != tree.Nil {
		return fmt.Errorf("rangetree: frozen root has parent %d", f.emb.ParentOf(0))
	}
	for v := 0; v < n; v++ {
		internal := v < nLeaf-1
		if internal {
			l, r := tree.NodeID(2*v+1), tree.NodeID(2*v+2)
			if f.emb.ChildIndexOf(tree.NodeID(v), l) != 0 || f.emb.ChildIndexOf(tree.NodeID(v), r) != 1 {
				return fmt.Errorf("rangetree: frozen node %d lacks balanced-binary children", v)
			}
			if f.emb.ParentOf(l) != tree.NodeID(v) || f.emb.ParentOf(r) != tree.NodeID(v) {
				return fmt.Errorf("rangetree: frozen node %d children disown it", v)
			}
		}
		cl := f.emb.CatalogLen(tree.NodeID(v))
		for pos := 0; pos < cl; pos++ {
			if pl := f.emb.PayloadAt(tree.NodeID(v), pos); f.emb.IsNative(tree.NodeID(v), pos) && pl >= 0 && int(pl) >= len(f.ids) {
				return fmt.Errorf("rangetree: frozen node %d entry %d points at id %d out of range", v, pos, pl)
			}
		}
	}
	return nil
}

// rankDiff counts native points in positions [lo, hi) of node v's catalog.
func (f *Frozen2D) rankDiff(v int32, lo, hi int) int {
	base := int(f.rankStart[v])
	return int(f.rank[base+hi] - f.rank[base+lo])
}

// canonicalRangesInto is Tree2D.canonicalRanges on the frozen layout: the
// two boundary paths, two cooperative y-searches each, and one O(1)
// bridge descent per off-path canonical node, with identical Stats
// accrual. The returned slice aliases sc.ranges.
func (f *Frozen2D) canonicalRangesInto(q Query2, p int, sc *Scratch2D) ([]canonRange, Stats, error) {
	if p < 1 {
		p = 1
	}
	var stats Stats
	if q.X1 > q.X2 || q.Y1 > q.Y2 {
		return nil, stats, fmt.Errorf("rangetree: empty query %+v", q)
	}
	defer f.resetScratch(sc)
	nLeaf := int(f.nLeaf)
	lo := searchLeafGE(f.leafX, q.X1)
	hi := searchLeafGT(f.leafX, q.X2)
	stats.SearchSteps += 2 * parallel.CoopSearchSteps(nLeaf, p)
	if lo >= hi {
		return nil, stats, nil
	}
	kLo, kHi := composeLo(q.Y1), composeLo(q.Y2+1)
	leftLeaf := tree.NodeID(nLeaf - 1 + lo)
	rightLeaf := tree.NodeID(nLeaf - 1 + hi - 1)
	for _, leaf := range [2]tree.NodeID{leftLeaf, rightLeaf} {
		sc.path = f.emb.AppendRootPath(leaf, sc.path[:0])
		if cap(sc.res) < len(sc.path) {
			sc.res = make([]cascade.Result, len(sc.path))
		}
		res := sc.res[:len(sc.path)]
		s1, err := f.emb.SearchExplicitInto(kLo, sc.path, p, res)
		if err != nil {
			return nil, stats, err
		}
		for i, v := range sc.path {
			if sc.posLo[v] < 0 && sc.posHi[v] < 0 {
				sc.touched = append(sc.touched, v)
			}
			sc.posLo[v] = int32(res[i].AugPos)
		}
		s2, err := f.emb.SearchExplicitInto(kHi, sc.path, p, res)
		if err != nil {
			return nil, stats, err
		}
		for i, v := range sc.path {
			sc.posHi[v] = int32(res[i].AugPos)
		}
		stats.SearchSteps += s1.Steps + s2.Steps
	}
	sc.canon = f.collect(0, 0, nLeaf, lo, hi, sc.canon[:0])
	sc.ranges = sc.ranges[:0]
	for _, cn := range sc.canon {
		pl, ph := int(sc.posLo[cn]), int(sc.posHi[cn])
		if sc.posLo[cn] < 0 || sc.posHi[cn] < 0 {
			parent := f.emb.ParentOf(cn)
			ci := f.emb.ChildIndexOf(parent, cn)
			if sc.posLo[parent] < 0 || sc.posHi[parent] < 0 {
				return nil, stats, fmt.Errorf("rangetree: canonical node %d has off-path parent", cn)
			}
			pl = f.emb.DescendPos(kLo, parent, ci, int(sc.posLo[parent]))
			ph = f.emb.DescendPos(kHi, parent, ci, int(sc.posHi[parent]))
		}
		if pl > ph {
			ph = pl
		}
		sc.ranges = append(sc.ranges, canonRange{node: cn, lo: pl, hi: ph})
	}
	return sc.ranges, stats, nil
}

// resetScratch clears the boundary-path positions touched by this query.
func (f *Frozen2D) resetScratch(sc *Scratch2D) {
	for _, v := range sc.touched {
		sc.posLo[v], sc.posHi[v] = -1, -1
	}
	sc.touched = sc.touched[:0]
}

// collect appends the canonical decomposition of leaf range [lo, hi) in
// the pointer path's DFS order.
func (f *Frozen2D) collect(v int32, nodeLo, nodeHi, lo, hi int, canon []int32) []int32 {
	if lo <= nodeLo && nodeHi <= hi {
		return append(canon, v)
	}
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		canon = f.collect(2*v+1, nodeLo, mid, lo, hi, canon)
	}
	if hi > mid {
		canon = f.collect(2*v+2, mid, nodeHi, lo, hi, canon)
	}
	return canon
}

// QueryDirectInto is Tree2D.QueryDirect on the frozen layout, appending
// the sorted hit ids to out[:0]. Answers and Stats are bit-identical; the
// steady state allocates nothing once out and the scratch have warmed up.
func (f *Frozen2D) QueryDirectInto(q Query2, p int, sc *Scratch2D, out []int32) ([]int32, Stats, error) {
	canon, stats, err := f.canonicalRangesInto(q, p, sc)
	if err != nil {
		return nil, stats, err
	}
	out = out[:0]
	for _, c := range canon {
		for pos := c.lo; pos < c.hi; pos++ {
			if f.emb.IsNative(c.node, pos) {
				if pl := f.emb.PayloadAt(c.node, pos); pl >= 0 {
					out = append(out, f.ids[pl])
				}
			}
		}
	}
	sortInt32s(out)
	stats.K = len(out)
	stats.AllocSteps = 2 * parallel.CeilLog2(len(canon)+1)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}

// QueryIndirectInto is Tree2D.QueryIndirect on the frozen layout,
// appending the non-empty canonical ranges to out[:0].
func (f *Frozen2D) QueryIndirectInto(q Query2, p int, sc *Scratch2D, out []Range) ([]Range, Stats, error) {
	canon, stats, err := f.canonicalRangesInto(q, p, sc)
	if err != nil {
		return nil, stats, err
	}
	out = out[:0]
	for _, c := range canon {
		if n := f.rankDiff(c.node, c.lo, c.hi); n > 0 {
			out = append(out, Range{Node: c.node, Lo: c.lo, Hi: c.hi})
			stats.K += n
		}
	}
	stats.AllocSteps = 1
	return out, stats, nil
}

// QueryCount is Tree2D.QueryCount on the frozen layout: zero allocations,
// no k/p term.
func (f *Frozen2D) QueryCount(q Query2, p int, sc *Scratch2D) (int, Stats, error) {
	canon, stats, err := f.canonicalRangesInto(q, p, sc)
	if err != nil {
		return 0, stats, err
	}
	count := 0
	for _, c := range canon {
		count += f.rankDiff(c.node, c.lo, c.hi)
	}
	stats.K = count
	stats.AllocSteps = 2 * parallel.CeilLog2(len(canon)+1)
	return count, stats, nil
}

// ExpandInto materialises the points of indirect ranges into out[:0],
// sorted by id (Tree2D.Expand on the frozen layout).
func (f *Frozen2D) ExpandInto(ranges []Range, out []int32) []int32 {
	out = out[:0]
	for _, r := range ranges {
		for pos := r.Lo; pos < r.Hi; pos++ {
			if f.emb.IsNative(r.Node, pos) {
				if pl := f.emb.PayloadAt(r.Node, pos); pl >= 0 {
					out = append(out, f.ids[pl])
				}
			}
		}
	}
	sortInt32s(out)
	return out
}

// searchLeafGE returns the first index with xs[i] ≥ x (sort.Search,
// hand-rolled so the hot path allocates nothing).
func searchLeafGE(xs []int64, x int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchLeafGT returns the first index with xs[i] > x.
func searchLeafGT(xs []int64, x int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// sortInt32s sorts ascending in place with an allocation-free heapsort
// (sort.Slice would allocate its closure on every query).
func sortInt32s(a []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownInt32(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownInt32(a, 0, i)
	}
}

func siftDownInt32(a []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
