// Package rangetree implements orthogonal range search: the layered
// (fractionally cascaded) 2-D range tree of Theorem 6 and its d-dimensional
// extension of Corollary 2.
//
// The 2-D structure is a balanced tree over the points sorted by x; every
// node's catalog holds its subtree's points keyed by y (composite with the
// point id, keeping keys distinct). A query [x1,x2]×[y1,y2] identifies the
// two boundary root-to-leaf paths by dictionary searches on x, runs two
// explicit cooperative searches (Theorem 1) along them with the keys y1
// and y2+1, and converts each canonical node's y-range into catalog
// positions with a single O(1) bridge descent from its on-path parent —
// the textbook use of fractional cascading in range trees, here with the
// cooperative O((log n)/log p) search bound.
//
// For d > 2 dimensions, a balanced tree over the first coordinate stores a
// (d−1)-dimensional structure per node (O(n·log^{d−1} n) space); a query
// recurses into the canonical nodes with the processors split among them,
// giving the Corollary 2 bound O(((log n)/log p)^{d−1} + k/p).
package rangetree

import (
	"fmt"
	"sort"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

const idBits = 21

func compose(value int64, id int32) catalog.Key { return value<<idBits | int64(id) }
func composeLo(value int64) catalog.Key         { return value << idBits }

// Point2 is a planar point.
type Point2 struct {
	X, Y int64
}

// Query2 is a closed axis-parallel query rectangle.
type Query2 struct {
	X1, X2, Y1, Y2 int64
}

// Stats reports the simulated cost of a cooperative range query.
type Stats struct {
	// SearchSteps covers dictionary and cooperative catalog searches.
	SearchSteps int
	// AllocSteps covers prefix-sum processor allocation.
	AllocSteps int
	// ReportSteps is ⌈k/p⌉.
	ReportSteps int
	// K is the number of reported points.
	K int
}

// Total returns the total simulated parallel time.
func (s Stats) Total() int { return s.SearchSteps + s.AllocSteps + s.ReportSteps }

// Tree2D is the layered range tree over 2-D points.
type Tree2D struct {
	pts   []Point2
	ids   []int32 // original ids (the structure may be built on a subset)
	t     *tree.Tree
	st    *core.Structure
	leafX []int64
	nLeaf int
	// rank[v][pos] counts native entries before position pos of v's
	// augmented catalog, so counting queries avoid touching the items.
	rank [][]int32
}

// New2D builds the structure over the points (ids 0..n−1).
func New2D(pts []Point2, cfg core.Config) (*Tree2D, error) {
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	return new2D(pts, ids, cfg)
}

func new2D(pts []Point2, ids []int32, cfg core.Config) (*Tree2D, error) {
	if len(pts) >= 1<<idBits {
		return nil, fmt.Errorf("rangetree: %d points exceed composite-key capacity", len(pts))
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("rangetree: no points")
	}
	rt := &Tree2D{pts: pts, ids: ids}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pts[order[a]].X != pts[order[b]].X {
			return pts[order[a]].X < pts[order[b]].X
		}
		return order[a] < order[b]
	})
	pad := 1
	for pad < len(pts) {
		pad *= 2
	}
	rt.nLeaf = pad
	rt.leafX = make([]int64, pad)
	t, err := tree.NewBalancedBinary(pad)
	if err != nil {
		return nil, err
	}
	rt.t = t
	perNode := make([][]int, t.N()) // indices into pts
	for leaf := 0; leaf < pad; leaf++ {
		v := pad - 1 + leaf
		if leaf < len(order) {
			rt.leafX[leaf] = pts[order[leaf]].X
			perNode[v] = []int{order[leaf]}
		} else {
			rt.leafX[leaf] = 1 << 62
		}
	}
	// Merge upward: each internal node's list is its children's union
	// sorted by (Y, id) — the construction the EREW preprocessing does
	// level by level. Within a level the merges are independent (node v
	// writes only perNode[v], reading its two already-finished children),
	// so each level fans out over the build pool; the level barrier
	// preserves the bottom-up dependency.
	par := cfg.Parallelism
	if cfg.Sequential {
		par = 1
	}
	mergeNode := func(v int) {
		l, r := perNode[2*v+1], perNode[2*v+2]
		merged := make([]int, 0, len(l)+len(r))
		i, j := 0, 0
		less := func(a, b int) bool {
			if pts[a].Y != pts[b].Y {
				return pts[a].Y < pts[b].Y
			}
			return a < b
		}
		for i < len(l) && j < len(r) {
			if less(l[i], r[j]) {
				merged = append(merged, l[i])
				i++
			} else {
				merged = append(merged, r[j])
				j++
			}
		}
		merged = append(merged, l[i:]...)
		merged = append(merged, r[j:]...)
		perNode[v] = merged
	}
	for levelSize := pad / 2; levelSize >= 1; levelSize /= 2 {
		base := levelSize - 1 // level nodes are [base, base+levelSize)
		buildpool.ForEach(par, levelSize, 4, func(loI, hiI int) {
			for i := loI; i < hiI; i++ {
				mergeNode(base + i)
			}
		})
	}
	cats := make([]catalog.Catalog, t.N())
	catErrs := make([]error, t.N())
	buildpool.ForEach(par, t.N(), 32, func(loI, hiI int) {
		for v := loI; v < hiI; v++ {
			list := perNode[v]
			if len(list) == 0 {
				cats[v] = catalog.Empty()
				continue
			}
			keys := make([]catalog.Key, len(list))
			payloads := make([]int32, len(list))
			for i, pi := range list {
				keys[i] = compose(pts[pi].Y, int32(pi))
				payloads[i] = int32(pi)
			}
			cats[v], catErrs[v] = catalog.FromKeys(keys, payloads)
		}
	})
	for _, cerr := range catErrs {
		if cerr != nil {
			return nil, cerr
		}
	}
	st, err := core.Build(t, cats, cfg)
	if err != nil {
		return nil, err
	}
	rt.st = st
	rt.rank = make([][]int32, t.N())
	buildpool.ForEach(par, t.N(), 32, func(loI, hiI int) {
		for v := loI; v < hiI; v++ {
			cat := st.Cascade().Aug(tree.NodeID(v))
			rk := make([]int32, cat.Len()+1)
			run := int32(0)
			for i := 0; i < cat.Len(); i++ {
				rk[i] = run
				e := cat.At(i)
				if e.Native && e.Payload >= 0 {
					run++
				}
			}
			rk[cat.Len()] = run
			rt.rank[v] = rk
		}
	})
	return rt, nil
}

// Structure exposes the underlying cooperative search structure.
func (rt *Tree2D) Structure() *core.Structure { return rt.st }

// NaiveQuery scans all points: the validation oracle. Returned ids are the
// original point ids, sorted.
func (rt *Tree2D) NaiveQuery(q Query2) []int32 {
	var out []int32
	for i, pt := range rt.pts {
		if pt.X >= q.X1 && pt.X <= q.X2 && pt.Y >= q.Y1 && pt.Y <= q.Y2 {
			out = append(out, rt.ids[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// canonRange is a canonical node with the catalog positions of the query
// rectangle's y-interval.
type canonRange struct {
	node   tree.NodeID
	lo, hi int
}

// QueryDirect reports all points in the rectangle with p processors.
func (rt *Tree2D) QueryDirect(q Query2, p int) ([]int32, Stats, error) {
	canon, stats, err := rt.canonicalRanges(q, p)
	if err != nil {
		return nil, stats, err
	}
	var out []int32
	for _, c := range canon {
		cat := rt.st.Cascade().Aug(c.node)
		for pos := c.lo; pos < c.hi; pos++ {
			e := cat.At(pos)
			if e.Native && e.Payload >= 0 {
				out = append(out, rt.ids[e.Payload])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	stats.K = len(out)
	stats.AllocSteps = 2 * parallel.CeilLog2(len(canon)+1)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}

// Range is one canonical-node catalog range for indirect retrieval
// (Theorem 6.2): positions [Lo, Hi) of the node's augmented catalog hold
// the query's hits (interleaved with dummy entries, skipped on expansion).
type Range struct {
	Node   tree.NodeID
	Lo, Hi int
}

// QueryIndirect returns the non-empty canonical ranges without touching
// the items — O((log n)/log p) regardless of k.
func (rt *Tree2D) QueryIndirect(q Query2, p int) ([]Range, Stats, error) {
	canon, stats, err := rt.canonicalRanges(q, p)
	if err != nil {
		return nil, stats, err
	}
	var out []Range
	for _, c := range canon {
		if n := int(rt.rank[c.node][c.hi] - rt.rank[c.node][c.lo]); n > 0 {
			out = append(out, Range{Node: c.node, Lo: c.lo, Hi: c.hi})
			stats.K += n
		}
	}
	stats.AllocSteps = 1 // CRCW linking (see segtree.QueryIndirectPRAM)
	return out, stats, nil
}

// Expand materialises the points of indirect ranges (host-side).
func (rt *Tree2D) Expand(ranges []Range) []int32 {
	var out []int32
	for _, r := range ranges {
		cat := rt.st.Cascade().Aug(r.Node)
		for pos := r.Lo; pos < r.Hi; pos++ {
			e := cat.At(pos)
			if e.Native && e.Payload >= 0 {
				out = append(out, rt.ids[e.Payload])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QueryCount counts the points in the rectangle without reporting them:
// the same O((log n)/log p) search, then one native-rank subtraction per
// canonical node — no k/p term at all.
func (rt *Tree2D) QueryCount(q Query2, p int) (int, Stats, error) {
	canon, stats, err := rt.canonicalRanges(q, p)
	if err != nil {
		return 0, stats, err
	}
	count := 0
	for _, c := range canon {
		count += int(rt.rank[c.node][c.hi] - rt.rank[c.node][c.lo])
	}
	stats.K = count
	stats.AllocSteps = 2 * parallel.CeilLog2(len(canon)+1)
	return count, stats, nil
}

// canonicalRanges runs the shared search phase: the two boundary paths,
// two cooperative y-searches per path, and the per-canonical-node bridge
// descents.
func (rt *Tree2D) canonicalRanges(q Query2, p int) ([]canonRange, Stats, error) {
	if p < 1 {
		p = 1
	}
	var stats Stats
	if q.X1 > q.X2 || q.Y1 > q.Y2 {
		return nil, stats, fmt.Errorf("rangetree: empty query %+v", q)
	}
	lo := sort.Search(rt.nLeaf, func(i int) bool { return rt.leafX[i] >= q.X1 })
	hi := sort.Search(rt.nLeaf, func(i int) bool { return rt.leafX[i] > q.X2 })
	stats.SearchSteps += 2 * parallel.CoopSearchSteps(rt.nLeaf, p)
	if lo >= hi {
		return nil, stats, nil
	}
	// Boundary paths; clamp to existing leaves.
	leftLeaf := tree.NodeID(rt.nLeaf - 1 + lo)
	rightLeaf := tree.NodeID(rt.nLeaf - 1 + hi - 1)
	pathL := rt.t.RootPath(leftLeaf)
	pathR := rt.t.RootPath(rightLeaf)
	kLo, kHi := composeLo(q.Y1), composeLo(q.Y2+1)
	posLo := map[tree.NodeID]int{}
	posHi := map[tree.NodeID]int{}
	for _, pth := range [][]tree.NodeID{pathL, pathR} {
		rl, s1, err := rt.st.SearchExplicit(kLo, pth, p)
		if err != nil {
			return nil, stats, err
		}
		rh, s2, err := rt.st.SearchExplicit(kHi, pth, p)
		if err != nil {
			return nil, stats, err
		}
		stats.SearchSteps += s1.Steps + s2.Steps
		for i, v := range pth {
			posLo[v] = rl[i].AugPos
			posHi[v] = rh[i].AugPos
		}
	}
	// Canonical decomposition of leaf range [lo, hi); each canonical node
	// is either on a boundary path (positions known) or a child of one
	// (one O(1) bridge descent).
	var canon []tree.NodeID
	var collect func(v tree.NodeID, nodeLo, nodeHi int)
	collect = func(v tree.NodeID, nodeLo, nodeHi int) {
		if lo <= nodeLo && nodeHi <= hi {
			canon = append(canon, v)
			return
		}
		mid := (nodeLo + nodeHi) / 2
		if lo < mid {
			collect(2*v+1, nodeLo, mid)
		}
		if hi > mid {
			collect(2*v+2, mid, nodeHi)
		}
	}
	collect(0, 0, rt.nLeaf)
	out := make([]canonRange, 0, len(canon))
	for _, c := range canon {
		pl, okL := posLo[c]
		ph, okH := posHi[c]
		if !okL || !okH {
			parent := rt.t.Parent(c)
			ci := rt.t.ChildIndex(parent, c)
			ppl, ok1 := posLo[parent]
			pph, ok2 := posHi[parent]
			if !ok1 || !ok2 {
				return nil, stats, fmt.Errorf("rangetree: canonical node %d has off-path parent", c)
			}
			pl, _ = rt.st.Cascade().Descend(kLo, parent, ci, ppl)
			ph, _ = rt.st.Cascade().Descend(kHi, parent, ci, pph)
		}
		if pl > ph {
			ph = pl
		}
		out = append(out, canonRange{node: c, lo: pl, hi: ph})
	}
	return out, stats, nil
}
