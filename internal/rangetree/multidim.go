package rangetree

import (
	"fmt"
	"sort"

	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
)

// TreeKD is the d-dimensional range tree of Corollary 2 (d ≥ 2): a
// balanced tree over the first coordinate whose every node carries a
// (d−1)-dimensional structure for its subtree's points, bottoming out at
// the fractionally cascaded Tree2D.
type TreeKD struct {
	d    int
	pts  [][]int64
	ids  []int32
	xs   []int64 // sorted first coordinates (one per real leaf)
	perm []int   // point index by x-rank
	// subs[v] is the (d−1)-dim structure of implicit complete-tree node v
	// (d > 2); sub2 is the fractionally cascaded base structure (d == 2).
	subs  []*node
	sub2  *Tree2D
	nLeaf int
	cfg   core.Config
}

type node struct {
	kd *TreeKD // d−1 > 2 levels
	t2 *Tree2D // d−1 == 2 base
}

// QueryKD is a closed axis-parallel box: Lo and Hi hold d coordinates.
type QueryKD struct {
	Lo, Hi []int64
}

// NewKD builds the structure over n points of dimension d ≥ 2.
func NewKD(pts [][]int64, cfg core.Config) (*TreeKD, error) {
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	return newKD(pts, ids, cfg)
}

func newKD(pts [][]int64, ids []int32, cfg core.Config) (*TreeKD, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("rangetree: no points")
	}
	d := len(pts[0])
	if d < 2 {
		return nil, fmt.Errorf("rangetree: dimension %d < 2", d)
	}
	for _, pt := range pts {
		if len(pt) != d {
			return nil, fmt.Errorf("rangetree: ragged point set")
		}
	}
	if d == 2 {
		p2 := make([]Point2, len(pts))
		for i, pt := range pts {
			p2[i] = Point2{X: pt[0], Y: pt[1]}
		}
		t2, err := new2D(p2, ids, cfg)
		if err != nil {
			return nil, err
		}
		return &TreeKD{d: 2, pts: pts, ids: ids, sub2: t2}, nil
	}
	kd := &TreeKD{d: d, pts: pts, ids: ids, cfg: cfg}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]][0] < pts[order[b]][0] })
	kd.perm = order
	pad := 1
	for pad < len(pts) {
		pad *= 2
	}
	kd.nLeaf = pad
	kd.xs = make([]int64, pad)
	for i := 0; i < pad; i++ {
		if i < len(order) {
			kd.xs[i] = pts[order[i]][0]
		} else {
			kd.xs[i] = 1 << 62
		}
	}
	// One (d−1)-dim structure per implicit-tree node over its leaf span.
	kd.subs = make([]*node, 2*pad-1)
	var build func(v, lo, hi int) error
	build = func(v, lo, hi int) error {
		realHi := hi
		if realHi > len(order) {
			realHi = len(order)
		}
		if lo >= realHi {
			return nil
		}
		subPts := make([][]int64, 0, realHi-lo)
		subIDs := make([]int32, 0, realHi-lo)
		for i := lo; i < realHi; i++ {
			subPts = append(subPts, pts[order[i]][1:])
			subIDs = append(subIDs, ids[order[i]])
		}
		sub, err := newKD(subPts, subIDs, kd.cfg)
		if err != nil {
			return err
		}
		if sub.d == 2 {
			kd.subs[v] = &node{t2: sub.sub2}
		} else {
			kd.subs[v] = &node{kd: sub}
		}
		if hi-lo > 1 {
			mid := (lo + hi) / 2
			if err := build(2*v+1, lo, mid); err != nil {
				return err
			}
			if err := build(2*v+2, mid, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0, 0, pad); err != nil {
		return nil, err
	}
	return kd, nil
}

// Dim returns the dimensionality.
func (kd *TreeKD) Dim() int { return kd.d }

// NaiveQuery scans all points.
func (kd *TreeKD) NaiveQuery(q QueryKD) []int32 {
	var out []int32
	for i, pt := range kd.pts {
		in := true
		for c := 0; c < kd.d; c++ {
			if pt[c] < q.Lo[c] || pt[c] > q.Hi[c] {
				in = false
				break
			}
		}
		if in {
			out = append(out, kd.ids[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QueryDirect reports all points in the box with p processors. Steps
// follow the Corollary 2 recursion: a dictionary-search phase per level of
// the recursion, with processors divided among the canonical subproblems
// that then run concurrently (the max of their costs is charged).
func (kd *TreeKD) QueryDirect(q QueryKD, p int) ([]int32, Stats, error) {
	if p < 1 {
		p = 1
	}
	if len(q.Lo) != kd.d || len(q.Hi) != kd.d {
		return nil, Stats{}, fmt.Errorf("rangetree: query dimension mismatch")
	}
	if kd.d == 2 {
		return kd.sub2.QueryDirect(Query2{X1: q.Lo[0], X2: q.Hi[0], Y1: q.Lo[1], Y2: q.Hi[1]}, p)
	}
	var stats Stats
	lo := sort.Search(kd.nLeaf, func(i int) bool { return kd.xs[i] >= q.Lo[0] })
	hi := sort.Search(kd.nLeaf, func(i int) bool { return kd.xs[i] > q.Hi[0] })
	stats.SearchSteps += 2 * parallel.CoopSearchSteps(kd.nLeaf, p)
	if lo >= hi {
		return nil, stats, nil
	}
	var canon []int
	var collect func(v, nodeLo, nodeHi int)
	collect = func(v, nodeLo, nodeHi int) {
		if lo <= nodeLo && nodeHi <= hi {
			canon = append(canon, v)
			return
		}
		mid := (nodeLo + nodeHi) / 2
		if lo < mid {
			collect(2*v+1, nodeLo, mid)
		}
		if hi > mid {
			collect(2*v+2, mid, nodeHi)
		}
	}
	collect(0, 0, kd.nLeaf)
	pShare := p / len(canon)
	if pShare < 1 {
		pShare = 1
	}
	subQ := QueryKD{Lo: q.Lo[1:], Hi: q.Hi[1:]}
	var out []int32
	maxSub := Stats{}
	for _, v := range canon {
		nd := kd.subs[v]
		if nd == nil {
			continue
		}
		var ids []int32
		var st Stats
		var err error
		if nd.t2 != nil {
			ids, st, err = nd.t2.QueryDirect(Query2{X1: subQ.Lo[0], X2: subQ.Hi[0], Y1: subQ.Lo[1], Y2: subQ.Hi[1]}, pShare)
		} else {
			ids, st, err = nd.kd.QueryDirect(subQ, pShare)
		}
		if err != nil {
			return nil, stats, err
		}
		out = append(out, ids...)
		if st.SearchSteps+st.AllocSteps > maxSub.SearchSteps+maxSub.AllocSteps {
			maxSub = st
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	stats.SearchSteps += maxSub.SearchSteps
	stats.AllocSteps += maxSub.AllocSteps + 2*parallel.CeilLog2(len(canon)+1)
	stats.K = len(out)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}
