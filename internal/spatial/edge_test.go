package spatial

import (
	"math/rand"
	"testing"
)

// TestQueriesNearColumnBoundaries probes just above the bottom sentinel
// and just below the top sentinel of every column's extreme cells.
func TestQueriesNearColumnBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := mustGen(t, 40, 5, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range c.Cells {
		if b.X2-b.X1 < 2 || b.Y2-b.Y1 < 2 {
			continue
		}
		x := b.X1 + 1
		y := b.Y1 + 1
		for _, z := range []int64{b.Z1 + 1, b.Z2 - 1} {
			if z <= c.ZMin || z >= c.ZMax || z%2 == 0 {
				continue
			}
			got, err := l.LocateSeq(x, y, z)
			if err != nil {
				t.Fatalf("cell %d z=%d: %v", i, z, err)
			}
			want, err := c.LocateBrute(x, y, z)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cell %d (%d,%d,%d): got %d, want %d", i, x, y, z, got, want)
			}
		}
	}
}

// TestSingleColumnManyCells: one tile, deep stack — the tree degenerates
// to pure z-search.
func TestSingleColumnManyCells(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := mustGen(t, 1, 40, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		x, y, z, want := c.RandomInteriorPoint(rng)
		for _, p := range []int{1, 64, 1 << 16} {
			got, _, err := l.LocateCoop(x, y, z, p)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			if got != want {
				t.Fatalf("p=%d: got %d, want %d", p, got, want)
			}
		}
	}
}

// TestManyColumnsSingleCellEach: flat complex — every column one cell,
// surfaces have huge facet sets, queries exercise the per-node planar
// structures heavily.
func TestManyColumnsSingleCellEach(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := mustGen(t, 150, 1, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 150; q++ {
		x, y, z, want := c.RandomInteriorPoint(rng)
		got, _, err := l.LocateCoop(x, y, z, 1+rng.Intn(1<<14))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %d, want %d", got, want)
		}
	}
}
